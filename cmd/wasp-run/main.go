// wasp-run executes a VX assembly program as a virtine under an embedded
// Wasp hypervisor — the "smoketest" entry point of the artifact. It
// assembles the source, runs it under a selectable hypercall policy, and
// reports the guest's output and the run's cost breakdown.
//
// Usage:
//
//	wasp-run prog.s                     # deny-all policy
//	wasp-run -policy allow prog.s       # permissive
//	wasp-run -policy 0xFC prog.s        # bit-mask
//	wasp-run -data "payload" prog.s     # preload the get_data channel
//	wasp-run -platform hyper-v prog.s   # run on the WHP cost profile
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/hypercall"
	"repro/internal/obs"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

func main() {
	policy := flag.String("policy", "deny", `hypercall policy: "deny", "allow", or a hex bit mask`)
	data := flag.String("data", "", "payload for the get_data hypercall")
	netIn := flag.String("net", "", "bytes queued on the virtual socket")
	snapshot := flag.Bool("snapshot", false, "enable snapshotting")
	platform := flag.String("platform", "kvm", `hypervisor backend: "kvm" or "hyper-v" (Fig 5 cost profiles)`)
	trials := flag.Int("n", 1, "number of invocations")
	tracePath := flag.String("trace", "", "write the runs' flight as Chrome trace_event JSON to this file, plus a metrics dump to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wasp-run [flags] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := guest.FromAsm(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}

	var pol hypercall.Policy
	switch *policy {
	case "deny":
		pol = hypercall.DenyAll{}
	case "allow":
		pol = hypercall.AllowAll{}
	default:
		mask, err := strconv.ParseUint(*policy, 0, 64)
		if err != nil {
			fatal(fmt.Errorf("bad policy %q", *policy))
		}
		pol = hypercall.Mask(mask)
	}

	plat, ok := vmm.ByName(*platform)
	if !ok {
		fatal(fmt.Errorf("unknown platform %q (want kvm or hyper-v)", *platform))
	}
	var tracer *obs.Tracer
	wopts := []wasp.Option{wasp.WithPlatform(plat)}
	if *tracePath != "" {
		tracer = obs.NewTracer()
		tracer.SetEnabled(true)
		wopts = append(wopts, wasp.WithTracer(tracer))
	}
	w := wasp.New(wopts...)
	if tracer != nil {
		w.RegisterMetrics(tracer.Metrics)
	}
	for i := 0; i < *trials; i++ {
		env := hypercall.NewEnv()
		env.DataIn = []byte(*data)
		env.NetIn = []byte(*netIn)
		clk := cycles.NewClock()
		res, err := w.Run(img, wasp.RunConfig{
			Policy:   pol,
			Env:      env,
			Snapshot: *snapshot,
		}, clk)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("run %d: exit=%d cycles=%d (%.2f us) entries=%d io-exits=%d snapshot=%v\n",
			i, res.ExitCode, res.Cycles, cycles.Micros(res.Cycles), res.Entries, res.IOExits, res.SnapshotUsed)
		if len(res.Stdout) > 0 {
			fmt.Printf("  stdout: %q\n", res.Stdout)
		}
		if len(res.NetOut) > 0 {
			fmt.Printf("  socket: %q\n", res.NetOut)
		}
		if len(res.DataOut) > 0 {
			fmt.Printf("  data:   %q\n", res.DataOut)
		}
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteChromeTrace(f, tracer); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wasp-run: %d trace events -> %s\n", tracer.EventCount(), *tracePath)
		tracer.Metrics.WriteText(os.Stderr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wasp-run:", err)
	os.Exit(1)
}
