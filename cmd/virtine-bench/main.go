// virtine-bench regenerates every table and figure in the paper's
// evaluation from the systems in this repository. It is the analogue of
// the artifact's `make artifacts.tar`.
//
// Usage:
//
//	virtine-bench                 # run everything, aligned-text output
//	virtine-bench -exp fig11      # one experiment
//	virtine-bench -trials 1000    # trial count (paper default: 1000)
//	virtine-bench -csv            # CSV output
//	virtine-bench -cpuprofile cpu.pprof -exp cluster   # profile a run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "", "experiment id (fig2, tab1, fig3, fig4, fig8, tab2, fig11, fig12, fig13, fig14, fig15, sched, wasp-ca, admission, interp, placement, snapshot, rebalance, cluster, sec6.4); empty = all")
	trials := flag.Int("trials", 200, "trials per measurement (clamped per experiment)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	list := flag.Bool("list", false, "list experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file for the selected run")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	tracePath := flag.String("trace", "", "record the run's flight and write Chrome trace_event JSON to this file (chrome://tracing / Perfetto)")
	flag.Parse()

	var tracer *obs.Tracer
	if *tracePath != "" {
		// Deterministic stamping: the bench fleets run in virtual time,
		// and suppressing host timestamps keeps the recorded stream
		// bit-identical run to run, matching the runners' own gates.
		tracer = obs.NewTracer(obs.Deterministic(true))
		tracer.SetEnabled(true)
		bench.SetTracer(tracer)
		defer func() {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "virtine-bench: trace: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := obs.WriteChromeTrace(f, tracer); err != nil {
				fmt.Fprintf(os.Stderr, "virtine-bench: trace: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *list {
		for _, e := range bench.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Paper)
		}
		fmt.Printf("%-8s %s\n", "sec6.4", "§6.4: openssl speed aes-128-cbc, native vs virtine")
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "virtine-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "virtine-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "virtine-bench: memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "virtine-bench: memprofile: %v\n", err)
			os.Exit(1)
		}
	}()

	run := func(id string, r bench.Runner) {
		t, err := r(*trials)
		if err != nil {
			fmt.Fprintf(os.Stderr, "virtine-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
	}

	if *exp != "" {
		if *exp == "sec6.4" {
			run(*exp, bench.Fig64Speed)
			return
		}
		r, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "virtine-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run(*exp, r)
		return
	}
	for _, e := range bench.Registry {
		run(e.ID, e.Run)
	}
	run("sec6.4", bench.Fig64Speed)
}
