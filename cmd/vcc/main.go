// vcc is the virtine C compiler driver — the analogue of the paper's
// clang wrapper (§5.3). It compiles a C-subset source file, reports every
// virtine-annotated function, and can run one directly under an embedded
// Wasp, or dump its generated assembly.
//
// Usage:
//
//	vcc prog.c                         # list virtines and image sizes
//	vcc -run fib -args 20 prog.c       # compile and invoke fib(20)
//	vcc -S -fn fib prog.c              # dump generated assembly
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/vcc"
)

func main() {
	run := flag.String("run", "", "virtine function to invoke")
	args := flag.String("args", "", "comma-separated integer arguments")
	dumpAsm := flag.Bool("S", false, "dump generated assembly")
	fn := flag.String("fn", "", "function for -S (defaults to the only virtine)")
	snapshot := flag.Bool("snapshot", true, "use Wasp snapshotting")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vcc [flags] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := vcc.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	if len(prog.Virtines) == 0 {
		fatal(fmt.Errorf("no virtine-annotated functions in %s", flag.Arg(0)))
	}

	if *dumpAsm {
		name := *fn
		if name == "" {
			for n := range prog.Virtines {
				name = n
				break
			}
		}
		v, ok := prog.Virtines[name]
		if !ok {
			fatal(fmt.Errorf("no virtine %q", name))
		}
		fmt.Print(v.Asm)
		return
	}

	if *run == "" {
		for name, v := range prog.Virtines {
			fmt.Printf("virtine %-20s image %6d bytes  policy %s\n",
				name, len(v.Image.Code), v.Policy)
		}
		return
	}

	client := core.NewClient()
	fns, err := client.CompileC(string(src))
	if err != nil {
		fatal(err)
	}
	f, ok := fns[*run]
	if !ok {
		fatal(fmt.Errorf("no virtine %q", *run))
	}
	f.Snapshot = *snapshot
	var callArgs []int64
	if *args != "" {
		for _, a := range strings.Split(*args, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(a), 0, 64)
			if err != nil {
				fatal(err)
			}
			callArgs = append(callArgs, v)
		}
	}
	clk := cycles.NewClock()
	ret, res, err := f.CallOn(clk, callArgs...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s(%s) = %d\n", *run, *args, ret)
	fmt.Printf("  %d cycles (%.2f us), %d guest entries, %d hypercall exits, snapshot=%v\n",
		res.Cycles, cycles.Micros(res.Cycles), res.Entries, res.IOExits, res.SnapshotUsed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcc:", err)
	os.Exit(1)
}
