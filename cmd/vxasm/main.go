// vxasm assembles VX assembly into a flat virtine image (the NASM of
// this toolchain) and can disassemble the result for inspection.
//
// Usage:
//
//	vxasm boot.s               # assemble, print image summary
//	vxasm -o image.bin boot.s  # write the flat binary
//	vxasm -d boot.s            # disassemble (start-mode section)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/isa"
)

func main() {
	out := flag.String("o", "", "write flat binary to file")
	disasm := flag.Bool("d", false, "disassemble after assembling")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vxasm [flags] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d bytes, origin %#x, entry %#x, start mode %s, %d labels\n",
		flag.Arg(0), len(p.Code), p.Origin, p.Entry, p.StartMode, len(p.Labels))
	if *disasm {
		fmt.Print(isa.Disassemble(p.Code, p.Origin, p.StartMode))
	}
	if *out != "" {
		if err := os.WriteFile(*out, p.Code, 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxasm:", err)
	os.Exit(1)
}
