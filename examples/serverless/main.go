// serverless: the §7.1 scenario — Vespid, a prototype serverless platform
// that runs each function invocation in a distinct virtine instead of a
// container, compared against an OpenWhisk-model baseline under the
// Locust-style ramp-burst-ramp load pattern of Fig 15.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/serverless"
	"repro/internal/wasp"
)

func main() {
	w := wasp.New()
	pattern := serverless.DefaultPattern(20)
	trace, err := serverless.RunFig15(w, pattern, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sec users | vespid p50/p99 (ms) | openwhisk p50/p99 (ms) | load")
	for _, tp := range trace {
		bar := strings.Repeat("#", tp.Users/2)
		fmt.Printf("%3d  %4d | %8.2f / %8.2f | %9.2f / %9.2f | %s\n",
			tp.Sec, tp.Users, tp.VespidP50, tp.VespidP99, tp.WhiskP50, tp.WhiskP99, bar)
	}

	s := serverless.Summarize(trace)
	fmt.Printf("\nsummary:\n")
	fmt.Printf("  vespid:    mean p50 %6.2f ms, worst p99 %8.1f ms, %4.0f requests\n",
		s.VespidMeanP50, s.VespidWorstP99, s.VespidTotal)
	fmt.Printf("  openwhisk: mean p50 %6.2f ms, worst p99 %8.1f ms, %4.0f requests\n",
		s.WhiskMeanP50, s.WhiskWorstP99, s.WhiskTotal)
	fmt.Println("\nthe container platform pays cold starts at each burst onset;")
	fmt.Println("the virtine platform restores a snapshot per invocation instead.")
}
