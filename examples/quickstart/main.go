// Quickstart: the paper's Fig 9 — annotate a C function with the
// `virtine` keyword and call it like a normal function. Every invocation
// runs in its own hardware-isolated virtual context, provisioned (or
// recycled) by the embedded Wasp hypervisor.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cycles"
)

const src = `
// Fig 9: virtine programming in C with compiler support.
virtine int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
`

func main() {
	client := core.NewClient()
	fns, err := client.CompileC(src)
	if err != nil {
		log.Fatal(err)
	}
	fib := fns["fib"]
	fmt.Printf("compiled virtine %q: %d-byte image, policy %s\n\n",
		fib.Name, len(fib.Image.Code), fib.Policy)

	for _, n := range []int64{0, 5, 10, 15, 20} {
		clk := cycles.NewClock()
		v, res, err := fib.CallOn(clk, n)
		if err != nil {
			log.Fatal(err)
		}
		how := "cold boot"
		if res.SnapshotUsed {
			how = "snapshot restore"
		}
		fmt.Printf("fib(%2d) = %6d   %9d cycles (%7.2f us)  via %s\n",
			n, v, res.Cycles, cycles.Micros(res.Cycles), how)
	}

	fmt.Println("\nEach call above executed in an isolated micro-VM:")
	fmt.Println("  - the first call boots real->protected->long mode and snapshots;")
	fmt.Println("  - later calls restore the snapshot (one memcpy) and skip the boot.")
}
