// Command placement walks through the multi-backend placement layer:
// one Wasp runtime spanning KVM and Hyper-V (wasp.WithPlatforms), a
// scheduler fleet with platform-pinned workers
// (sched.WithWorkerPlatforms), and the three placement policies of
// internal/placement deciding where each image may run.
//
//	go run ./examples/placement
package main

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/serverless"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

func main() {
	kvm, hv := vmm.KVM{}, vmm.HyperV{}
	short := serverless.PlacementShortImage()
	long := serverless.PlacementLongImage()

	fmt.Println("-- Fig 5 cost profiles the policies trade off --")
	for _, p := range []vmm.Platform{kvm, hv} {
		fmt.Printf("  %-8s create=%-7d entry=%-5d exit=%d cycles\n",
			p.Name(), p.CreateCost(), p.EntryCost(), p.ExitCost())
	}

	// A 2+2 split fleet under each policy, serving a short/long mix on
	// the deterministic virtual scheduler.
	for _, cfg := range []struct {
		name string
		pl   placement.Placer
	}{
		{"static (shorts pinned to kvm, longs to hyper-v)", placement.Static{Pins: map[string]string{
			short.Name: kvm.Name(),
			long.Name:  hv.Name(),
		}}},
		{"least-loaded (balance queue pressure)", placement.LeastLoaded{}},
		{"cost-model (overhead vs service EWMA)", placement.CostModel{}},
	} {
		w := wasp.New(wasp.WithPlatforms(kvm, hv))
		s := sched.NewVirtual(w, 4,
			sched.WithWorkerPlatforms(kvm, hv),
			sched.WithPlacer(cfg.pl))
		tickets := s.SubmitBatchAt(serverless.PlacementTrace(48, 8))
		if err := sched.WaitAll(tickets...); err != nil {
			panic(err)
		}
		fmt.Printf("\n-- %s --\n", cfg.name)
		for _, bl := range s.BackendLoads() {
			fmt.Printf("  backend %-8s %d workers, %d runs\n", bl.Platform, bl.Workers, bl.Completed)
		}
		for _, wl := range s.WorkerInfo() {
			fmt.Printf("  worker %d (%s): %d runs\n", wl.Worker, wl.Platform, wl.Runs)
		}
		fmt.Printf("  makespan %.3f ms; %s\n", cycles.Millis(s.Makespan()), s)
		s.Close()
	}

	// A pin to a platform outside the fleet fails fast instead of
	// queueing forever.
	w := wasp.New(wasp.WithPlatforms(kvm, hv))
	s := sched.NewVirtual(w, 2,
		sched.WithWorkerPlatforms(kvm, hv),
		sched.WithPlacer(placement.Static{Pins: map[string]string{short.Name: "xen"}}))
	t := s.SubmitAt(0, short, wasp.RunConfig{})
	if _, err := t.Wait(); err != nil {
		fmt.Printf("\n-- unplaceable image -- %v\n", err)
	}
	s.Close()
}
