// jsisolate: the §6.5 scenario — untrusted JavaScript executed in a
// virtine with only three permitted hypercalls (snapshot, get_data,
// return_data). The engine is initialized once and captured in the
// snapshot; each invocation restores it, runs the script against fresh
// input, and is destroyed with the VM (the "no teardown" optimization).
package main

import (
	"fmt"
	"log"

	"repro/internal/cycles"
	"repro/internal/js"
	"repro/internal/wasp"
)

func main() {
	w := wasp.New()

	fmt.Println("running untrusted base64 JS in virtines (snapshot + no-teardown):")
	vm := js.NewVirtineJS(w, true, true)
	for _, payload := range []string{
		"hello, virtines!",
		"a second, completely isolated invocation",
		"the engine heap was restored from the snapshot each time",
	} {
		clk := cycles.NewClock()
		out, err := vm.Encode([]byte(payload), clk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  b64(%-52q) = %-24s %8.1f us\n", payload, out[:min(24, len(out))]+"...", cycles.Micros(clk.Now()))
	}

	fmt.Println("\nFig 14 optimization matrix (512-byte payload):")
	pts, err := js.RunFig14(w, 512, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("  %-22s %8.1f us   slowdown %.2fx\n", p.Name, p.Micros, p.Slowdown)
	}
	fmt.Println("\npaper: native 419 us; fully optimized virtine ≈137 us —")
	fmt.Println("the virtine runs *less code* by snapshotting init and skipping teardown.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
