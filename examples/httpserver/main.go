// httpserver: the §6.3 scenario — a static-file HTTP server whose
// connection-handling function is a virtine. Every request is served in
// a fresh isolated VM with exactly seven host interactions (recv, stat,
// open, read, send, close, exit), each policed by the hypercall mask the
// virtine_config annotation granted.
package main

import (
	"fmt"
	"log"

	"repro/internal/cycles"
	"repro/internal/httpd"
	"repro/internal/wasp"
)

func main() {
	files := map[string][]byte{
		"/index.html": []byte("<html><body>hello from a virtine</body></html>"),
		"/about.html": []byte("<html>virtines: micro-VMs per function call</html>"),
	}

	w := wasp.New()
	srv, err := httpd.NewFileServer(w, files)
	if err != nil {
		log.Fatal(err)
	}
	srv.Snapshot = true
	native := httpd.NewNativeFileServer(files)

	for _, path := range []string{"/index.html", "/about.html", "/missing"} {
		clk := cycles.NewClock()
		resp, err := srv.Serve(httpd.Request(path), clk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GET %-12s -> %d, %3d body bytes, %2d hypercall exits, %7.1f us\n",
			path, resp.Status, len(resp.Body), resp.Exits, cycles.Micros(resp.Cycles))
	}

	// Compare steady-state service time against the native handler.
	req := httpd.Request("/index.html")
	vclk, nclk := cycles.NewClock(), cycles.NewClock()
	const N = 50
	for i := 0; i < N; i++ {
		if _, err := srv.Serve(req, vclk); err != nil {
			log.Fatal(err)
		}
		if _, err := native.Serve(req, nclk); err != nil {
			log.Fatal(err)
		}
	}
	v := cycles.Micros(vclk.Now() / N)
	n := cycles.Micros(nclk.Now() / N)
	fmt.Printf("\nsteady state over %d requests:\n", N)
	fmt.Printf("  virtine+snapshot: %7.1f us/request\n", v)
	fmt.Printf("  native handler:   %7.1f us/request\n", n)
	fmt.Printf("  isolation cost:   %.2fx (paper Fig 13: ≈2x+)\n", v/n)
}
