// udf: the §7.1 database scenario — user-defined functions isolated at
// function granularity. Postgres runs V8-isolated UDFs in one address
// space; "because virtine address spaces are disjoint, they could help
// with this limitation. Furthermore, virtines would allow functions in
// unsafe languages (e.g., C, C++) to be safely used for UDFs."
//
// Here a tiny in-memory table applies a C UDF to every row. The UDF is
// deliberately written in an unsafe style (pointer arithmetic, a buffer
// it could overrun); any damage it does is confined to its own VM, and a
// hostile variant that tries to reach the host is killed by policy.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cycles"
)

const udfSrc = `
/* UDF: risk_score(balance, overdrafts) — plain unsafe C. */
int weights[4];

virtine int risk_score(int balance, int overdrafts) {
	weights[0] = 2;
	weights[1] = 7;
	char scratch[16];
	int i = 0;
	/* pointer arithmetic all over, as C UDFs do */
	char *p = scratch;
	for (i = 0; i < 16; i++) { *(p + i) = i; }
	int score = overdrafts * weights[1] - balance / 100 * weights[0];
	if (score < 0) score = 0;
	return score;
}

/* A hostile UDF: tries to exfiltrate via a host write. */
virtine int evil_udf(int x) {
	write(1, "stolen row!", 11);
	return x;
}
`

type row struct {
	name       string
	balance    int64
	overdrafts int64
}

func main() {
	table := []row{
		{"alice", 12000, 0},
		{"bob", 300, 4},
		{"carol", 5400, 1},
		{"dave", 90, 9},
	}

	client := core.NewClient()
	fns, err := client.CompileC(udfSrc)
	if err != nil {
		log.Fatal(err)
	}
	udf := fns["risk_score"]

	fmt.Println("SELECT name, risk_score(balance, overdrafts) FROM accounts;")
	clk := cycles.NewClock()
	for _, r := range table {
		score, _, err := udf.CallOn(clk, r.balance, r.overdrafts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s  %4d\n", r.name, score)
	}
	fmt.Printf("4 rows, %.1f us total (one micro-VM per row, snapshot-restored)\n\n",
		cycles.Micros(clk.Now()))

	// The hostile UDF is compiled with the same default-deny policy the
	// `virtine` keyword grants; its host write is refused and the
	// virtine is destroyed.
	evil := fns["evil_udf"]
	if _, _, err := evil.CallOn(cycles.NewClock(), 1); err != nil {
		fmt.Printf("evil_udf killed by policy: %v\n", err)
	} else {
		log.Fatal("evil UDF escaped!")
	}
}
