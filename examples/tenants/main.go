// Command tenants demonstrates the scheduler's multi-tenant dispatch
// layer: batched submission (SubmitBatchAt — one lock, one ticket slab,
// one wake per burst) and per-image admission control (WithAdmission).
// One hot tenant floods the node while two quiet tenants trickle small
// requests; plain FIFO lets the flood starve them, the weighted
// per-image queues do not, and a hard cap in reject mode sheds the
// flood's excess instead of queueing it.
package main

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/httpd"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/wasp"
)

// burst builds one tenant's arrival trace: n requests of svc cycles
// each, every gap cycles.
func burst(tenant string, n int, gap, svc uint64) []sched.Request {
	reqs := make([]sched.Request, n)
	for i := range reqs {
		cost := svc
		reqs[i] = sched.Request{
			Arrival: uint64(i) * gap,
			Image:   tenant,
			Fn: func(clk *cycles.Clock) (*wasp.Result, error) {
				clk.Advance(cost)
				return nil, nil
			},
		}
	}
	return reqs
}

func queueP99(tickets []*sched.Ticket, image string) float64 {
	var q []float64
	for _, t := range tickets {
		if t.Image == image {
			q = append(q, float64(t.QueueCycles()))
		}
	}
	return cycles.Millis(uint64(stats.Percentile(q, 99)))
}

func main() {
	trace := append(burst("hot", 96, 1, 8_000_000), // ~3 ms each, all at once
		append(burst("quiet-a", 8, 40_000_000, 500_000),
			burst("quiet-b", 8, 40_000_000, 500_000)...)...)

	fmt.Println("-- FIFO baseline vs weighted per-image queues (virtual time) --")
	for _, cfg := range []struct {
		name string
		opts []sched.Option
	}{
		{"fifo    ", nil},
		{"weighted", []sched.Option{sched.WithAdmission(sched.Admission{})}},
	} {
		s := sched.NewVirtual(wasp.New(), 4, cfg.opts...)
		tickets := s.SubmitBatchAt(append([]sched.Request(nil), trace...))
		if err := sched.WaitAll(tickets...); err != nil {
			panic(err)
		}
		fmt.Printf("%s  p99 queue: hot %7.2f ms   quiet-a %7.2f ms   quiet-b %7.2f ms\n",
			cfg.name, queueP99(tickets, "hot"),
			queueP99(tickets, "quiet-a"), queueP99(tickets, "quiet-b"))
		s.Close()
	}

	fmt.Println("\n-- hard cap, reject mode: the flood sheds, the quiet tenants never notice --")
	s := sched.NewVirtual(wasp.New(), 4,
		sched.WithAdmission(sched.Admission{MaxInFlight: 4, RejectOverflow: true}))
	tickets := s.SubmitBatchAt(append([]sched.Request(nil), trace...))
	for _, t := range tickets {
		t.Wait() // rejected tickets resolve immediately with ErrAdmission
	}
	for _, image := range s.AdmissionImages() {
		st, _ := s.AdmissionStats(image)
		fmt.Printf("%-8s submitted %3d   completed %3d   rejected %3d   svc-ewma %d cy\n",
			image, st.Submitted, st.Completed, st.Rejected, st.SvcEWMA)
	}
	s.Close()

	fmt.Println("\n-- httpd.ServeTenants: per-tenant virtine images over one weighted scheduler --")
	w := wasp.New()
	srv, err := httpd.NewFileServer(w, map[string][]byte{
		"/index.html": []byte("<html>tenant isolation</html>"),
	})
	if err != nil {
		panic(err)
	}
	srv.Snapshot = true
	tenants := map[string][][]byte{}
	for i := 0; i < 24; i++ {
		tenants["hot"] = append(tenants["hot"], httpd.Request("/index.html"))
	}
	for _, name := range []string{"quiet-a", "quiet-b"} {
		for i := 0; i < 3; i++ {
			tenants[name] = append(tenants[name], httpd.Request("/index.html"))
		}
	}
	out, err := srv.ServeTenants(tenants, 4, &sched.Admission{}, nil)
	if err != nil {
		panic(err)
	}
	for _, name := range []string{"hot", "quiet-a", "quiet-b"} {
		ok := 0
		for _, resp := range out[name] {
			if resp != nil && resp.Status == 200 {
				ok++
			}
		}
		fmt.Printf("%-8s %2d/%2d responses 200 OK\n", name, ok, len(out[name]))
	}
}
