// openssl: the §6.4 scenario — an off-the-shelf library's deeply buried,
// heavily optimized function (AES-128-CBC block encryption) moved into
// virtine context by swapping the compiler. The virtine version is
// bit-identical to native; the cost is the per-invocation snapshot copy
// of the ~21 KB image, which `openssl speed` makes visible.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/aes"
	"repro/internal/cycles"
	"repro/internal/wasp"
)

func main() {
	key := []byte("0123456789abcdef")
	iv := []byte("fedcba9876543210")

	w := wasp.New()
	vc, err := aes.NewVirtineCipher(w, key, iv)
	if err != nil {
		log.Fatal(err)
	}
	c, err := aes.New(key)
	if err != nil {
		log.Fatal(err)
	}

	// Correctness: virtine ciphertext must equal native.
	msg := bytes.Repeat([]byte("virtines at the hardware limit! "), 4)
	want := make([]byte, len(msg))
	if err := c.EncryptCBC(want, msg, iv); err != nil {
		log.Fatal(err)
	}
	got, err := vc.Encrypt(msg, cycles.NewClock())
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		log.Fatal("virtine ciphertext mismatch")
	}
	fmt.Printf("encrypted %d bytes in a virtine; ciphertext matches native AES-128-CBC\n\n", len(msg))

	// openssl speed -evp aes-128-cbc, native vs virtine.
	fmt.Println("openssl speed aes-128-cbc (virtual time):")
	pts, err := aes.Speed(w, []int{16, 256, 1024, 4096, 16384}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  block   native MB/s   virtine MB/s   slowdown")
	for _, p := range pts {
		fmt.Printf("  %5d   %11.1f   %12.1f   %7.1fx\n",
			p.BlockBytes, p.NativeBps/1e6, p.VirtineBps/1e6, p.Slowdown)
	}
	fmt.Println("\npaper §6.4: ≈17x at 16KB blocks — virtine creation is memory-bound,")
	fmt.Println("since copying the snapshot comprises the dominant cost.")
}
