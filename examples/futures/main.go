// Command futures demonstrates asynchronous virtines (§2): "virtines
// could, given support in the hypervisor, behave like asynchronous
// functions or futures." Invocations are submitted to the client's
// scheduler (internal/sched) — a bounded worker pool in which every
// worker owns a virtual clock — and collected with Wait, overlapping
// the caller's own work with virtine execution.
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	client := core.NewClient()
	defer client.Close()

	fns, err := client.CompileC(`
virtine int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}`)
	if err != nil {
		panic(err)
	}
	fib := fns["fib"]

	// Fire a batch of asynchronous invocations; each runs in its own
	// isolated virtual context on a scheduler worker.
	futures := make([]*core.Future, 10)
	for i := range futures {
		futures[i] = fib.Go(int64(i + 10))
	}
	fmt.Println("10 virtines in flight; caller keeps working...")

	for i, fu := range futures {
		v, res, err := fu.Wait()
		if err != nil {
			panic(err)
		}
		t := fu.Ticket()
		fmt.Printf("fib(%2d) = %6d   worker %d   backlog %2d at submit   service %8d cy   %s\n",
			i+10, v, t.Worker, t.DepthAtSubmit, t.ServiceCycles(),
			map[bool]string{true: "snapshot restore", false: "cold boot"}[res.SnapshotUsed])
	}

	// GoAll: scatter a tuple batch, gather in order.
	sq, err := fns["fib"].GoAll([]int64{8}, []int64{12}, []int64{16})
	if err != nil {
		panic(err)
	}
	fmt.Printf("GoAll fib(8,12,16) = %v\n", sq)

	s := client.Scheduler()
	fmt.Printf("scheduler: %d workers, %d submitted, %d completed, peak queue depth %d\n",
		s.NumWorkers(), s.Submitted(), s.Completed(), s.PeakQueueDepth())
}
