// Package bench contains one runner per table and figure in the paper's
// evaluation. Each runner executes the real systems in this repository
// (not canned numbers, except where DESIGN.md documents a calibrated
// baseline), reduces the measurements the way the paper does, and returns
// a Table whose rows mirror what the paper reports.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated table or figure.
type Table struct {
	ID     string // "fig2", "tab1", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// Runner produces one experiment's table. Trials is advisory; runners
// clamp it to sane minimums.
type Runner func(trials int) (*Table, error)

// Registry maps experiment IDs to runners, in paper order.
var Registry = []struct {
	ID    string
	Paper string
	Run   Runner
}{
	{"fig2", "Fig 2: lower bounds on execution context creation", Fig2},
	{"tab1", "Table 1: boot time breakdown (minimal runtime)", Table1},
	{"fig3", "Fig 3: fib(20) latency across processor modes", Fig3},
	{"fig4", "Fig 4: echo server startup milestones", Fig4},
	{"fig8", "Fig 8: creation latencies incl. Wasp pooling", Fig8},
	{"tab2", "Table 2: isolation boundary crossing costs", Table2},
	{"fig11", "Fig 11: virtine latency vs computational intensity", Fig11},
	{"fig12", "Fig 12: image size vs start-up latency", Fig12},
	{"fig13", "Fig 13: HTTP server latency and throughput", Fig13},
	{"fig14", "Fig 14: JavaScript virtine slowdowns", Fig14},
	{"fig15", "Fig 15: serverless virtines vs OpenWhisk", Fig15},
	{"sched", "Scheduler saturation: Run throughput vs workers", SchedSaturation},
	{"wasp-ca", "Wasp+C vs Wasp+CA: async cleaning off the critical path", WaspCA},
	{"admission", "Multi-tenant admission control: noisy-neighbor fairness", AdmissionFairness},
	{"interp", "Interpreter host speed: MIPS / ns per guest instruction", InterpSpeed},
	{"placement", "Multi-backend placement: homogeneous vs split fleets", Placement},
	{"snapshot", "Snapshot forest: marginal memory per tenant clone", SnapshotForest},
	{"rebalance", "Live rebalancing: drifting tenant, sticky vs migrating placement", Rebalance},
	{"cluster", "Cluster autoscaling frontier: SLO vs cost, scaling and speedup rows", Cluster},
}

// Lookup finds a runner by experiment ID.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// All runs every experiment.
func All(trials int) ([]*Table, error) {
	var out []*Table
	for _, e := range Registry {
		t, err := e.Run(trials)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}

func clampTrials(trials, lo, hi int) int {
	if trials < lo {
		return lo
	}
	if trials > hi {
		return hi
	}
	return trials
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func d0(v uint64) string  { return fmt.Sprintf("%d", v) }
func di(v int) string     { return fmt.Sprintf("%d", v) }
