package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/aes"
	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/httpd"
	"repro/internal/hypercall"
	"repro/internal/js"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/serverless"
	"repro/internal/stats"
	"repro/internal/vcc"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

// measure collects trials of f into a Tukey-filtered summary, each trial
// on a fresh clock.
func measure(trials int, f func(clk *cycles.Clock) error) (stats.Summary, error) {
	samples := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		clk := cycles.NewClock()
		if err := f(clk); err != nil {
			return stats.Summary{}, err
		}
		samples = append(samples, float64(clk.Now()))
	}
	return stats.Summarize(samples), nil
}

// Fig2 measures the lower bounds on execution-context creation: function
// call, pthread, vmrun round trip, and a real KVM context created and
// halted (§4.2, "create, enter, and exit from the context in a way that
// the hypervisor can observe").
func Fig2(trials int) (*Table, error) {
	trials = clampTrials(trials, 100, 1000)
	noise := cycles.NewNoise(2)
	t := &Table{
		ID:     "fig2",
		Title:  "Lower bounds on execution context creation (cycles)",
		Header: []string{"context", "mean", "sd", "min", "us"},
	}
	addBaseline := func(b vmm.Baseline) {
		clk := cycles.NewClock()
		s := stats.Summarize(stats.FromUint64(b.Measure(clk, noise, trials)))
		t.AddRow(b.String(), f1(s.Mean), f1(s.StdDev), f1(s.Min), f2(cycles.Micros(uint64(s.Mean))))
	}
	addBaseline(vmm.BaselineFunction)
	addBaseline(vmm.BaselinePthread)

	// "KVM": really create a virtual context and execute hlt.
	halt := guest.RealModeHalt()
	s, err := measure(trials, func(clk *cycles.Clock) error {
		ctx := vmm.Create(halt.MemBytes(), clk)
		if err := ctx.Load(halt.Code, halt.Origin, halt.Entry, halt.Mode); err != nil {
			return err
		}
		if ex := ctx.Run(1000); ex.Reason != cpu.ExitHalt {
			return fmt.Errorf("unexpected exit %+v", ex)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("KVM (create+hlt)", f1(s.Mean), f1(s.StdDev), f1(s.Min), f2(cycles.Micros(uint64(s.Mean))))

	addBaseline(vmm.BaselineVMRun)
	t.Note("paper: vmrun is the hardware floor; KVM creation >> pthread >> vmrun >> function")
	return t, nil
}

// Table1 boots the minimal long-mode runtime and reports per-component
// minima from the CPU's event timestamps, as the paper does.
func Table1(trials int) (*Table, error) {
	trials = clampTrials(trials, 20, 200)
	w := wasp.New(wasp.WithPooling(false)) // cold boots: events must populate
	img := guest.MinimalHalt()

	comp := map[string][]float64{}
	record := func(name string, v uint64) {
		if v > 0 {
			comp[name] = append(comp[name], float64(v))
		}
	}
	for i := 0; i < trials; i++ {
		res, err := w.Run(img, wasp.RunConfig{}, cycles.NewClock())
		if err != nil {
			return nil, err
		}
		ev := res.BootEvents
		delta := func(a, b cpu.Event) uint64 {
			if ev[a] == 0 || ev[b] == 0 || ev[b] < ev[a] {
				return 0
			}
			return ev[b] - ev[a]
		}
		record("Paging identity mapping", delta(cpu.EvIdentMapStart, cpu.EvCR3Load))
		record("Load 32-bit GDT (lgdt)", ev[cpu.EvLgdt]-res.GuestEntry)
		record("Protected transition", delta(cpu.EvLgdt, cpu.EvProtected))
		record("Jump to 32-bit (ljmp)", delta(cpu.EvProtected, cpu.EvLjmp32))
		record("Long transition (lgdt)", delta(cpu.EvCR3Load, cpu.EvLongActive))
		record("Jump to 64-bit (ljmp)", delta(cpu.EvLongActive, cpu.EvLjmp64))
		record("First Instruction", delta(cpu.EvLjmp64, cpu.EvFirstInstr64))
	}
	t := &Table{
		ID:     "tab1",
		Title:  "Boot time breakdown, minimum observed cycles per component",
		Header: []string{"component", "min-cycles", "paper"},
	}
	paper := map[string]string{
		"Paging identity mapping": "28109",
		"Protected transition":    "3217",
		"Long transition (lgdt)":  "681",
		"Jump to 32-bit (ljmp)":   "175",
		"Jump to 64-bit (ljmp)":   "190",
		"Load 32-bit GDT (lgdt)":  "4118",
		"First Instruction":       "74",
	}
	for _, name := range []string{
		"Paging identity mapping", "Protected transition", "Long transition (lgdt)",
		"Jump to 32-bit (ljmp)", "Jump to 64-bit (ljmp)", "Load 32-bit GDT (lgdt)",
		"First Instruction",
	} {
		t.AddRow(name, f1(stats.Min(comp[name])), paper[name])
	}
	t.Note("component deltas include the handful of setup instructions between milestones")
	return t, nil
}

// fibAsm builds the recursive fib microbenchmark at a bit width.
func fibAsm(n int) string {
	return fmt.Sprintf(`
	movi rdi, %d
	call vx_fib
	hlt
vx_fib:
	cmp rdi, 2
	jge vx_fib_rec
	mov rax, rdi
	ret
vx_fib_rec:
	push rdi
	sub rdi, 1
	call vx_fib
	pop rdi
	push rax
	sub rdi, 2
	call vx_fib
	pop rbx
	add rax, rbx
	ret
`, n)
}

// Fig3 runs fib(20) in the three canonical modes.
func Fig3(trials int) (*Table, error) {
	trials = clampTrials(trials, 30, 1000)
	noise := cycles.NewNoise(3)
	images := []struct {
		name string
		img  *guest.Image
	}{
		{"16-bit (real)", guest.MustFromAsm("fib16", ".bits 16\n.org 0x8000\n_start:\n"+fibAsm(20))},
		{"32-bit (protected)", guest.MustFromAsm("fib32", guest.WrapProtected(fibAsm(20)))},
		{"64-bit (long)", guest.MustFromAsm("fib64", guest.WrapLongMode(fibAsm(20)))},
	}
	t := &Table{
		ID:     "fig3",
		Title:  "Latency to run fib(20) per processor mode (cycles)",
		Header: []string{"mode", "mean", "sd", "min", "us"},
	}
	for _, entry := range images {
		w := wasp.New()
		// Warm the shell pool so mode setup, not pool misses, dominates.
		if _, err := w.Run(entry.img, wasp.RunConfig{}, cycles.NewClock()); err != nil {
			return nil, err
		}
		samples := make([]float64, 0, trials)
		for i := 0; i < trials; i++ {
			clk := cycles.NewClock()
			if _, err := w.Run(entry.img, wasp.RunConfig{}, clk); err != nil {
				return nil, err
			}
			samples = append(samples, float64(noise.Jitter(clk.Now())))
		}
		s := stats.Summarize(samples)
		t.AddRow(entry.name, f1(s.Mean), f1(s.StdDev), f1(s.Min), f2(cycles.Micros(uint64(s.Mean))))
	}
	t.Note("paper: 16-bit cheapest (skips GDT/paging); protected ≈ long")
	return t, nil
}

// Fig4 measures the echo server startup milestones inside the guest.
func Fig4(trials int) (*Table, error) {
	trials = clampTrials(trials, 30, 1000)
	w := wasp.New()
	img := httpd.EchoImage()
	pol := httpd.EchoPolicy()
	req := []byte("GET /echo HTTP/1.0\r\n\r\n")

	names := map[uint64]string{
		httpd.MarkMainEntry: "main entry (C code reached)",
		httpd.MarkRecvDone:  "request received (recv return)",
		httpd.MarkSendDone:  "response sent (send return)",
	}
	series := map[uint64][]float64{}
	run := func(clk *cycles.Clock) error {
		env := hypercall.NewEnv()
		env.NetIn = append([]byte(nil), req...)
		res, err := w.Run(img, wasp.RunConfig{Policy: pol, Env: env}, clk)
		if err != nil {
			return err
		}
		for _, m := range res.Marks {
			series[m.ID] = append(series[m.ID], float64(m.Cycle))
		}
		return nil
	}
	// Warm-up then measure.
	if err := run(cycles.NewClock()); err != nil {
		return nil, err
	}
	for k := range series {
		delete(series, k)
	}
	for i := 0; i < trials; i++ {
		if err := run(cycles.NewClock()); err != nil {
			return nil, err
		}
	}
	t := &Table{
		ID:     "fig4",
		Title:  "Echo server startup milestones, cycles from guest entry",
		Header: []string{"milestone", "mean", "sd", "us"},
	}
	for _, id := range []uint64{httpd.MarkMainEntry, httpd.MarkRecvDone, httpd.MarkSendDone} {
		s := stats.Summarize(series[id])
		t.AddRow(names[id], f1(s.Mean), f1(s.StdDev), f2(cycles.Micros(uint64(s.Mean))))
	}
	t.Note("paper: main entry ≈10K cycles; full response well under 1 ms")
	return t, nil
}

// Fig8 measures creation latencies with Wasp's pooling configurations
// against the process/pthread/KVM/vmrun/SGX baselines.
func Fig8(trials int) (*Table, error) {
	trials = clampTrials(trials, 100, 1000)
	noise := cycles.NewNoise(8)
	img := guest.RealModeHalt()
	t := &Table{
		ID:     "fig8",
		Title:  "Creation latencies for execution contexts (cycles)",
		Header: []string{"context", "mean", "sd", "us"},
	}
	addBaseline := func(b vmm.Baseline) {
		clk := cycles.NewClock()
		s := stats.Summarize(stats.FromUint64(b.Measure(clk, noise, trials)))
		t.AddRow(b.String(), f1(s.Mean), f1(s.StdDev), f2(cycles.Micros(uint64(s.Mean))))
	}
	waspRow := func(name string, opts ...wasp.Option) error {
		w := wasp.New(opts...)
		// One warm-up populates the pool (when pooling is on).
		if _, err := w.Run(img, wasp.RunConfig{}, cycles.NewClock()); err != nil {
			return err
		}
		s, err := measure(trials, func(clk *cycles.Clock) error {
			_, err := w.Run(img, wasp.RunConfig{}, clk)
			return err
		})
		if err != nil {
			return err
		}
		t.AddRow(name, f1(s.Mean), f1(s.StdDev), f2(cycles.Micros(uint64(s.Mean))))
		return nil
	}

	addBaseline(vmm.BaselineProcess)
	addBaseline(vmm.BaselinePthread)
	addBaseline(vmm.BaselineKVM)
	if err := waspRow("Wasp (no pooling)", wasp.WithPooling(false)); err != nil {
		return nil, err
	}
	if err := waspRow("Wasp+C (pooled, sync clean)"); err != nil {
		return nil, err
	}
	if err := waspRow("Wasp+CA (pooled, async clean)", wasp.WithAsyncClean(true)); err != nil {
		return nil, err
	}
	addBaseline(vmm.BaselineVMRun)
	addBaseline(vmm.BaselineSGXCreate)
	addBaseline(vmm.BaselineSGXECall)
	t.Note("paper: Wasp+CA within ~4%% of bare vmrun; pooled shells beat pthread creation")
	return t, nil
}

// Table2 reports our measured virtine boundary-crossing cost alongside
// the published comparators.
func Table2(trials int) (*Table, error) {
	trials = clampTrials(trials, 100, 1000)
	w := wasp.New()
	img := guest.RealModeHalt()
	if _, err := w.Run(img, wasp.RunConfig{}, cycles.NewClock()); err != nil {
		return nil, err
	}
	s, err := measure(trials, func(clk *cycles.Clock) error {
		_, err := w.Run(img, wasp.RunConfig{}, clk)
		return err
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "tab2",
		Title:  "Cost of crossing isolation boundaries",
		Header: []string{"system", "latency", "mechanism"},
	}
	for _, row := range cycles.Table2Published {
		t.AddRow(row.System, fmt.Sprintf("%.1f us", row.LatencyNS/1000), row.Mechanism)
	}
	t.AddRow("Virtines (measured)", fmt.Sprintf("%.1f us", cycles.Micros(uint64(s.Mean))), "Syscall interface + VMRUN")
	t.Note("published rows quoted from the paper's Table 2; virtine row measured here")
	return t, nil
}

// Fig11 sweeps fib(n) for the vcc-compiled virtine, with and without
// snapshotting, against the native-execution model.
func Fig11(trials int) (*Table, error) {
	trials = clampTrials(trials, 10, 200)
	const fibSrc = `
virtine int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}`
	v, err := vcc.CompileFunc(fibSrc, "fib")
	if err != nil {
		return nil, err
	}
	// NativeHarness models the measurement+marshalling wrapper around a
	// native invocation (the paper's native bars include it).
	const nativeHarness = 3600

	runOnce := func(w *wasp.Wasp, n int64, snap bool) (uint64, error) {
		clk := cycles.NewClock()
		_, err := w.Run(v.Image, wasp.RunConfig{
			Policy: v.Policy, Args: vcc.MarshalArgs(n), RetBytes: vcc.RetSize,
			Snapshot: snap,
		}, clk)
		return clk.Now(), err
	}
	mean := func(w *wasp.Wasp, n int64, snap bool) (float64, error) {
		// Large n dominates wall-clock time in the interpreter and has
		// tiny variance; cap its trial count.
		k := trials
		if n >= 25 && k > 3 {
			k = 3
		}
		var samples []float64
		for i := 0; i < k; i++ {
			c, err := runOnce(w, n, snap)
			if err != nil {
				return 0, err
			}
			samples = append(samples, float64(c))
		}
		return stats.Mean(samples), nil
	}

	t := &Table{
		ID:     "fig11",
		Title:  "Latency of fib virtines vs computational intensity (cycles)",
		Header: []string{"n", "native", "virtine", "virtine+snapshot", "slowdown", "slowdown+snap"},
	}

	// Guest compute baseline at n=0, used to model native execution of
	// the same code without virtualization (DESIGN.md: guest code runs
	// at native speed under VT-x, so native(n) = harness + guest compute).
	wSnapBase := wasp.New()
	if _, err := runOnce(wSnapBase, 0, true); err != nil {
		return nil, err
	}
	base0, err := mean(wSnapBase, 0, true)
	if err != nil {
		return nil, err
	}

	for _, n := range []int64{0, 5, 10, 15, 20, 25, 30} {
		wNo := wasp.New(wasp.WithSnapshotting(false))
		if _, err := runOnce(wNo, n, false); err != nil {
			return nil, err
		}
		virt, err := mean(wNo, n, false)
		if err != nil {
			return nil, err
		}
		wSnap := wasp.New()
		if _, err := runOnce(wSnap, n, true); err != nil {
			return nil, err
		}
		snap, err := mean(wSnap, n, true)
		if err != nil {
			return nil, err
		}
		compute := snap - base0
		if compute < 0 {
			compute = 0
		}
		native := nativeHarness + compute
		t.AddRow(
			fmt.Sprintf("fib(%d)", n),
			f1(native), f1(virt), f1(snap),
			f2(virt/native), f2(snap/native),
		)
	}
	t.Note("paper: snapshot ≈2.5x cheaper at fib(0); slowdown ≈6.6x at fib(0), ≈1.0x by fib(25-30)")
	return t, nil
}

// Fig12 sweeps padded image sizes and reports snapshot start-up latency.
func Fig12(trials int) (*Table, error) {
	trials = clampTrials(trials, 5, 50)
	w := wasp.New(wasp.WithAsyncClean(true))
	base := guest.MinimalHalt()
	t := &Table{
		ID:     "fig12",
		Title:  "Impact of image size on start-up latency",
		Header: []string{"image", "mean-cycles", "ms", "GB/s"},
	}
	for _, size := range []int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20} {
		img := base.WithPad(size)
		if _, err := w.Run(img, wasp.RunConfig{Snapshot: true}, cycles.NewClock()); err != nil {
			return nil, err
		}
		s, err := measure(trials, func(clk *cycles.Clock) error {
			_, err := w.Run(img, wasp.RunConfig{Snapshot: true}, clk)
			return err
		})
		if err != nil {
			return nil, err
		}
		secs := float64(s.Mean) / cycles.Frequency
		gbps := float64(size) / secs / 1e9
		t.AddRow(sizeName(size), f1(s.Mean), fmt.Sprintf("%.3f", cycles.Millis(uint64(s.Mean))), f2(gbps))
	}
	t.Note("paper: 16MB image ≈2.3 ms, memcpy-bound at ≈6.8 GB/s; knee where copy cost overtakes fixed overhead")
	return t, nil
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	default:
		return fmt.Sprintf("%dKB", n>>10)
	}
}

// Fig13 measures HTTP latency and harmonic-mean throughput for the
// native, virtine, and virtine+snapshot servers.
func Fig13(trials int) (*Table, error) {
	trials = clampTrials(trials, 20, 500)
	files := map[string][]byte{"/index.html": []byte("<html>hello virtines</html>")}
	req := httpd.Request("/index.html")

	t := &Table{
		ID:     "fig13",
		Title:  "HTTP server: mean latency and harmonic-mean throughput",
		Header: []string{"server", "latency-us", "throughput-req/s", "vs-native"},
	}
	var nativeMean float64
	row := func(name string, serve func(clk *cycles.Clock) error) error {
		var lat []float64
		var tput []float64
		for i := 0; i < trials; i++ {
			clk := cycles.NewClock()
			if err := serve(clk); err != nil {
				return err
			}
			lat = append(lat, float64(clk.Now()))
			tput = append(tput, cycles.Frequency/float64(clk.Now()))
		}
		s := stats.Summarize(lat)
		if name == "native" {
			nativeMean = s.Mean
		}
		t.AddRow(name,
			f2(cycles.Micros(uint64(s.Mean))),
			f1(stats.HarmonicMean(tput)),
			f2(s.Mean/nativeMean))
		return nil
	}

	nsrv := httpd.NewNativeFileServer(files)
	if err := row("native", func(clk *cycles.Clock) error {
		_, err := nsrv.Serve(req, clk)
		return err
	}); err != nil {
		return nil, err
	}
	for _, mode := range []struct {
		name string
		snap bool
	}{{"virtine", false}, {"virtine+snapshot", true}} {
		w := wasp.New()
		srv, err := httpd.NewFileServer(w, files)
		if err != nil {
			return nil, err
		}
		srv.Snapshot = mode.snap
		if _, err := srv.Serve(req, cycles.NewClock()); err != nil {
			return nil, err
		}
		if err := row(mode.name, func(clk *cycles.Clock) error {
			_, err := srv.Serve(req, clk)
			return err
		}); err != nil {
			return nil, err
		}
	}
	t.Note("paper: ≈2x+ latency increase for virtines; 7 host interactions per request dominate")
	return t, nil
}

// Fig14 runs the JavaScript optimization matrix.
func Fig14(trials int) (*Table, error) {
	trials = clampTrials(trials, 3, 50)
	w := wasp.New()
	pts, err := js.RunFig14(w, 512, trials)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig14",
		Title:  "JavaScript (base64) virtine slowdowns vs native",
		Header: []string{"variant", "cycles", "us", "slowdown"},
	}
	for _, p := range pts {
		t.AddRow(p.Name, d0(p.Cycles), f1(p.Micros), f2(p.Slowdown))
	}
	t.Note("paper: native baseline 419 us; fully optimized virtine ≈137 us (0.33x)")
	return t, nil
}

// Fig15 drives the serverless platforms with the burst pattern. The
// Vespid runtime runs in the Wasp+CA configuration: shell cleaning lands
// on the platform's dedicated virtual cleaner core instead of any
// request path, and the pool-sizing policy reacts to the bursts.
func Fig15(trials int) (*Table, error) {
	seconds := clampTrials(trials, 12, 60)
	w := wasp.New(wasp.WithAsyncClean(true), wasp.WithPoolPolicy(wasp.PoolPolicy{MaxPerClass: 16}))
	trace, err := serverless.RunFig15(w, serverless.DefaultPattern(seconds), 15)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig15",
		Title: "Serverless: Vespid (virtines) vs OpenWhisk (containers)",
		Header: []string{"sec", "users", "vespid-p50-ms", "vespid-p99-ms",
			"whisk-p50-ms", "whisk-p99-ms", "vespid-tput", "whisk-tput"},
	}
	for _, tp := range trace {
		t.AddRow(di(tp.Sec), di(tp.Users),
			f2(tp.VespidP50), f2(tp.VespidP99),
			f2(tp.WhiskP50), f2(tp.WhiskP99),
			f1(tp.VespidTput), f1(tp.WhiskTput))
	}
	s := serverless.Summarize(trace)
	t.Note("summary: vespid mean p50 %.2f ms vs openwhisk %.2f ms; worst p99 %.1f vs %.1f ms",
		s.VespidMeanP50, s.WhiskMeanP50, s.VespidWorstP99, s.WhiskWorstP99)
	if c := w.Cleaner(); c != nil {
		t.Note("wasp+CA: %.2f ms of shell zeroing absorbed by the virtual cleaner core (%d shells), off every request path",
			cycles.Millis(c.BusyCycles()), c.VirtualDrains())
	}
	t.Note("paper: virtine platform sustains low latency through bursts; container cold starts spike")
	return t, nil
}

// AdmissionFairness is the multi-tenant fairness experiment over the
// scheduler's admission layer: the noisy-neighbor mix (one hog at ~3x
// node capacity, four cold tenants) dispatched under plain FIFO, equal
// soft weights, and a hard in-flight cap. Reported per tenant: request
// counts, completions within the arrival horizon, p50/p99 queueing
// delay, and the entitlement-satisfaction share; per config, Jain's
// fairness index over those shares (internal/stats.Jain). The FIFO
// baseline prints alongside so the unfairness it permits is visible in
// the same table.
func AdmissionFairness(trials int) (*Table, error) {
	horizon := clampTrials(trials, 2, 6)
	t := &Table{
		ID:    "admission",
		Title: "Multi-tenant admission control: noisy-neighbor fairness (virtual scheduler)",
		Header: []string{"config/image", "weight", "reqs", "done@W",
			"p50-q-ms", "p99-q-ms", "share"},
	}
	configs := []struct {
		name string
		adm  *sched.Admission
	}{
		{"fifo", nil},
		{"weighted", &sched.Admission{}},
		{"hardcap", &sched.Admission{MaxInFlight: 2}},
	}
	var fifoJain, weightedJain float64
	for _, cfg := range configs {
		rep, err := serverless.RunNoisyNeighbor(wasp.New(), cfg.name, 4, horizon, cfg.adm, 99)
		if err != nil {
			return nil, err
		}
		totalReqs, totalDone := 0, 0
		for _, tf := range rep.Tenants {
			totalReqs += tf.Requests
			totalDone += tf.DoneByHorizon
			t.AddRow(cfg.name+"/"+tf.Image, di(tf.Weight), di(tf.Requests), di(tf.DoneByHorizon),
				f2(tf.P50QueueMs), f2(tf.P99QueueMs), f2(tf.Share))
		}
		t.AddRow(cfg.name+"/ALL", "", di(totalReqs), di(totalDone), "", "", f2(rep.Jain))
		switch cfg.name {
		case "fifo":
			fifoJain = rep.Jain
		case "weighted":
			weightedJain = rep.Jain
		}
	}
	t.Note("share: service cycles received over min(demand, weighted fair share) within the horizon; ALL rows hold Jain's index over shares")
	t.Note("jain: fifo %.3f vs weighted %.3f — weighted per-image queues deliver every tenant its entitlement", fifoJain, weightedJain)
	t.Note("hardcap (2-in-flight) also protects cold tenants but idles capacity the hog could use")
	return t, nil
}

// Placement is the multi-backend placement experiment: a saturating mix
// of short-lived virtines (Fig 5 overhead-dominated) and long-lived
// ones (overhead-amortizing) served by homogeneous half-fleets — only
// the KVM machines, only the Hyper-V machines — and by the full split
// fleet under each placement policy. Reported per configuration:
// makespan, per-class p50 latency, the short class's mean per-run cost
// (where the backends' create/entry/exit profiles actually show),
// per-backend completed counts, and Jain's index over the backends'
// capacity-normalized service shares. Everything runs on the
// deterministic virtual scheduler; same trials → identical numbers.
func Placement(trials int) (*Table, error) {
	scale := clampTrials(trials, 1, 8)
	shorts, longs := 120*scale, 18*scale
	kvm, hv := vmm.KVM{}, vmm.HyperV{}

	configs := []struct {
		name  string
		fleet []vmm.Platform
		pl    placement.Placer
	}{
		{"kvm-only", []vmm.Platform{kvm, kvm}, nil},
		{"hyperv-only", []vmm.Platform{hv, hv}, nil},
		{"split static", []vmm.Platform{kvm, hv, kvm, hv}, placement.Static{Pins: map[string]string{
			serverless.PlacementShortImage().Name: kvm.Name(),
			serverless.PlacementLongImage().Name:  hv.Name(),
		}}},
		{"split least-loaded", []vmm.Platform{kvm, hv, kvm, hv}, placement.LeastLoaded{}},
		{"split cost-model", []vmm.Platform{kvm, hv, kvm, hv}, placement.CostModel{}},
	}

	t := &Table{
		ID:    "placement",
		Title: "Multi-backend placement: homogeneous vs split fleets (virtual scheduler)",
		Header: []string{"config", "workers", "makespan-ms", "short-p50-ms", "long-p50-ms",
			"kvm-runs", "hv-runs", "shorts-on-kvm", "jain"},
	}
	reports := map[string]*serverless.PlacementReport{}
	shortsOnKVM := map[string]uint64{}
	for _, cfg := range configs {
		w := wasp.New(wasp.WithPlatforms(kvm, hv))
		rep, err := serverless.RunPlacementMix(w, cfg.name, cfg.fleet, cfg.pl, shorts, longs)
		if err != nil {
			return nil, err
		}
		reports[cfg.name] = rep
		runsOn := map[string]uint64{}
		for _, sl := range rep.Backends {
			runsOn[sl.Platform] = sl.Runs
			if sl.Platform == kvm.Name() {
				shortsOnKVM[cfg.name] = sl.ShortRuns
			}
		}
		t.AddRow(cfg.name, di(rep.Workers),
			f2(cycles.Millis(rep.Makespan)),
			f2(rep.ShortP50Ms), f2(rep.LongP50Ms),
			d0(runsOn[kvm.Name()]), d0(runsOn[hv.Name()]),
			d0(shortsOnKVM[cfg.name]), f2(rep.Jain))
	}
	cm, ll := reports["split cost-model"], reports["split least-loaded"]
	t.Note("workload: %d short + %d long virtines; shorts feel the Fig 5 create/entry/exit gap, longs amortize it", shorts, longs)
	t.Note("cost-model makespan %.2f ms vs kvm-only %.2f / hyperv-only %.2f — one scheduler spanning both backends beats either half-fleet",
		cycles.Millis(cm.Makespan), cycles.Millis(reports["kvm-only"].Makespan), cycles.Millis(reports["hyperv-only"].Makespan))
	t.Note("cost-model kept %d/%d shorts on the cheap-create backend vs least-loaded's %d, with least-loaded jain %.3f across backends",
		shortsOnKVM["split cost-model"], shorts, shortsOnKVM["split least-loaded"], ll.Jain)
	return t, nil
}

// Fig64Speed is the §6.4 OpenSSL speed experiment (reported in prose in
// the paper; regenerated here as a table).
func Fig64Speed(trials int) (*Table, error) {
	trials = clampTrials(trials, 5, 100)
	w := wasp.New()
	pts, err := aes.Speed(w, []int{16, 64, 256, 1024, 4096, 16384}, trials)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "sec6.4",
		Title:  "openssl speed aes-128-cbc: native vs virtine (bytes/sec)",
		Header: []string{"block", "native-MB/s", "virtine-MB/s", "slowdown"},
	}
	for _, p := range pts {
		t.AddRow(di(p.BlockBytes), f1(p.NativeBps/1e6), f1(p.VirtineBps/1e6), f2(p.Slowdown))
	}
	t.Note("paper: ≈17x slowdown at 16KB blocks; snapshot copy of the ~21KB image is the dominant cost")
	return t, nil
}

// SchedSaturation is the scheduler-throughput scenario: the same virtine
// workload dispatched through the unified scheduler (internal/sched) at
// increasing worker-pool widths. With the runtime's sharded shell pools,
// host throughput should scale with workers — a single runtime-wide
// mutex would flatline it. Reported per width: host wall time, host
// requests/sec, speedup over one worker, and the virtual-time makespan
// (which halves as the pool doubles).
func SchedSaturation(trials int) (*Table, error) {
	trials = clampTrials(trials, 64, 4000)
	img := guest.MustFromAsm("sched-fib", guest.WrapLongMode(fibAsm(16)))

	t := &Table{
		ID:     "sched",
		Title:  "Scheduler saturation: concurrent Run throughput vs worker count",
		Header: []string{"workers", "requests", "wall-ms", "req/s", "speedup", "vmakespan-ms"},
	}
	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		w := wasp.New()
		s := sched.New(w, workers)
		start := time.Now()
		tickets := make([]*sched.Ticket, trials)
		for i := range tickets {
			tickets[i] = s.Submit(img, wasp.RunConfig{})
		}
		if err := sched.WaitAll(tickets...); err != nil {
			s.Close()
			return nil, err
		}
		s.Close()
		wall := time.Since(start)
		rps := float64(trials) / wall.Seconds()
		if workers == 1 {
			base = rps
		}
		t.AddRow(di(workers), di(trials),
			f2(float64(wall.Microseconds())/1e3),
			f1(rps), f2(rps/base),
			f2(cycles.Millis(s.Makespan())))
	}
	t.Note("sharded shell pools: Run calls on different workers contend only on per-shard push/pop")
	t.Note("host parallelism: %d CPUs (wall-clock speedup is bounded by it; vmakespan shows the schedule)", runtime.NumCPU())
	return t, nil
}

// WaspCA is the Wasp+C vs Wasp+CA scenario: the same warm virtine
// workload dispatched through the real scheduler under both cleaning
// configurations. Wasp+C pays the shell zeroing on the acquiring
// ticket's clock; Wasp+CA releases dirty shells to the background
// cleaner, so the zeroing lands on the cleaner/idle-worker lane and
// every per-run cost drops by roughly ZeroCost(shell). The cleaned /
// reclaims / dropped columns are the cleaner's own telemetry.
func WaspCA(trials int) (*Table, error) {
	trials = clampTrials(trials, 64, 4000)
	img := guest.MinimalHalt()
	t := &Table{
		ID:     "wasp-ca",
		Title:  "Wasp+C vs Wasp+CA: shell cleaning off the critical path (real scheduler)",
		Header: []string{"config", "mean-vcycles/run", "vus/run", "pool-total", "cleaned-async", "reclaims", "dropped"},
	}
	for _, mode := range []struct {
		name string
		opts []wasp.Option
	}{
		{"Wasp+C (sync clean)", nil},
		{"Wasp+CA (async clean)", []wasp.Option{wasp.WithAsyncClean(true)}},
	} {
		w := wasp.New(mode.opts...)
		// One warm-up run populates the pool so steady state dominates.
		if _, err := w.Run(img, wasp.RunConfig{}, cycles.NewClock()); err != nil {
			return nil, err
		}
		s := sched.New(w, 4)
		tickets := make([]*sched.Ticket, trials)
		for i := range tickets {
			tickets[i] = s.Submit(img, wasp.RunConfig{})
		}
		if err := sched.WaitAll(tickets...); err != nil {
			s.Close()
			return nil, err
		}
		s.Close()
		var svc float64
		for _, tk := range tickets {
			svc += float64(tk.ServiceCycles())
		}
		svc /= float64(len(tickets))
		var cleaned, reclaims, dropped uint64
		if c := w.Cleaner(); c != nil {
			cleaned, reclaims, dropped = c.Cleaned(), c.InlineReclaims(), c.Dropped()
		}
		t.AddRow(mode.name, f1(svc), f2(cycles.Micros(uint64(svc))),
			di(w.PoolTotal()), d0(cleaned), d0(reclaims), d0(dropped))
	}
	t.Note("Wasp+CA release does no zeroing: dirty shells queue on the cleaner and are scrubbed by idle workers or the drain goroutine")
	t.Note("paper (Fig 8): moving cleaning off the critical path puts pooled creation within ~4%% of bare vmrun")
	return t, nil
}

// aesKernelAsm is the AES-shaped interpreter corpus: byte-table loads,
// xor/shift/mask rounds and byte stores in a tight loop — the
// instruction mix of the paper's openssl workload rendered in VX
// assembly for opcode-pair profiling.
func aesKernelAsm() string {
	return `
	movi rcx, 256
	movi rdi, 0x5000
	movi rsi, 0x5800
vx_seed:
	store [rdi], rcx
	add rdi, 8
	dec rcx
	jnz vx_seed
	movi rcx, 256
	movi rdi, 0x5000
vx_round:
	loadb rax, [rdi]
	loadb rbx, [rdi+1]
	xor rax, rbx
	shl rax, 3
	xor rax, rbx
	shr rax, 1
	and rax, 255
	storeb [rsi], rax
	add rdi, 2
	add rsi, 1
	dec rcx
	jnz vx_round
	movi rdi, 0
	out 0x00, rdi
	hlt
`
}

// jsKernelAsm is the JS-shaped corpus: a bytecode-style dispatch loop —
// load opcode byte, compare-and-branch chain, small handler bodies with
// call/ret and stack traffic.
func jsKernelAsm() string {
	return `
	movi rcx, 192
	movi rdi, 0x5000
vx_fill:
	mov rax, rcx
	and rax, 3
	storeb [rdi], rax
	add rdi, 1
	dec rcx
	jnz vx_fill
	movi rcx, 192
	movi rdi, 0x5000
vx_dispatch:
	loadb rax, [rdi]
	cmp rax, 1
	jz vx_op1
	cmp rax, 2
	jz vx_op2
	add rsi, 1
	jmp vx_next
vx_op1:
	call vx_push_add
	jmp vx_next
vx_op2:
	push rsi
	mov rbx, rsi
	pop rsi
	add rsi, rbx
vx_next:
	add rdi, 1
	dec rcx
	jnz vx_dispatch
	movi rdi, 0
	out 0x00, rdi
	hlt
vx_push_add:
	push rbx
	movi rbx, 7
	add rsi, rbx
	pop rbx
	ret
`
}

// InterpSpeed measures the host-side cost of the guest interpreter:
// instructions retired per second of wall clock (MIPS) and nanoseconds
// per guest instruction, for the three engines — the trace-compiling
// default, the predecoded/fused tier alone (NoJIT), and the legacy
// decode-every-instruction path. Virtual-cycle results are bit-identical
// across all three (the differential determinism tests enforce it);
// this table is purely about how fast the host can push guest work —
// the cost that gates how much traffic the scheduler and pool layers
// can drive through one machine. It also emits the dynamic opcode-pair
// histogram (top pairs per corpus, measured under the profiling legacy
// engine) that justifies the predecoder's superinstruction set.
func InterpSpeed(trials int) (*Table, error) {
	trials = clampTrials(trials, 3, 50)
	img := guest.MustFromAsm("interp-fib", guest.WrapLongMode(fibAsm(21)))

	t := &Table{
		ID:     "interp",
		Title:  "Interpreter host speed: MIPS / ns per guest instruction",
		Header: []string{"engine", "instr/run", "host-ms/run", "MIPS", "ns/instr"},
	}
	measureEngine := func(opts ...wasp.Option) (retired uint64, wall time.Duration, err error) {
		w := wasp.New(opts...)
		if _, err := w.Run(img, wasp.RunConfig{}, cycles.NewClock()); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		for i := 0; i < trials; i++ {
			res, err := w.Run(img, wasp.RunConfig{}, cycles.NewClock())
			if err != nil {
				return 0, 0, err
			}
			retired += res.Retired
		}
		return retired, time.Since(start), nil
	}
	var nsPer [3]float64
	for i, eng := range []struct {
		name string
		opts []wasp.Option
	}{
		{"jit", nil},
		{"fused", []wasp.Option{wasp.WithNoJIT(true)}},
		{"legacy", []wasp.Option{wasp.WithLegacyInterp(true)}},
	} {
		retired, wall, err := measureEngine(eng.opts...)
		if err != nil {
			return nil, err
		}
		perRun := retired / uint64(trials)
		ns := float64(wall.Nanoseconds()) / float64(retired)
		nsPer[i] = ns
		t.AddRow(eng.name, d0(perRun),
			f2(float64(wall.Microseconds())/1e3/float64(trials)),
			f1(1e3/ns), f2(ns))
	}
	t.Note("jit: compiled closure traces over the predecoded cache (%.1fx vs legacy)", nsPer[2]/nsPer[0])
	t.Note("fused: predecoded entries + superinstructions, trace tier off (%.1fx vs legacy)", nsPer[2]/nsPer[1])
	t.Note("virtual cycles are bit-identical across engines; only host wall-clock differs")

	// Opcode-pair histogram per corpus: profiled under the legacy
	// engine so the counts describe the natural instruction stream,
	// before superinstruction fusion rewrites it.
	for _, c := range []struct {
		name, src string
	}{
		{"fib", fibAsm(15)},
		{"aes", aesKernelAsm()},
		{"js", jsKernelAsm()},
	} {
		w := wasp.New(wasp.WithPairProfile(true))
		pimg := guest.MustFromAsm("pairs-"+c.name, guest.WrapLongMode(c.src))
		if _, err := w.Run(pimg, wasp.RunConfig{}, cycles.NewClock()); err != nil {
			return nil, err
		}
		pairs := w.HotPairs(20)
		var total uint64
		for _, p := range pairs {
			total += p.Count
		}
		for lo := 0; lo < len(pairs); lo += 10 {
			hi := lo + 10
			if hi > len(pairs) {
				hi = len(pairs)
			}
			line := ""
			for _, p := range pairs[lo:hi] {
				line += fmt.Sprintf(" %v+%v:%d", p.First, p.Second, p.Count)
			}
			t.Note("%s pairs[%d:%d]:%s", c.name, lo, hi, line)
		}
	}
	return t, nil
}
