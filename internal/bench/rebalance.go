package bench

import (
	"fmt"
	"reflect"

	"repro/internal/cycles"
	"repro/internal/serverless"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

// Rebalance is the live-rebalancing experiment: a tenant whose workload
// drifts from quiet (2 hypercalls per run) to chatty (150 per run)
// mid-trace, served by a 2+2 KVM/Paravirt split fleet whose cost
// profiles are non-dominated — KVM creates cheaply, Paravirt enters and
// exits cheaply. A sticky placement (the Migrating wrapper with
// negative hysteresis: first preference wins forever) strands the
// now-chatty tenant on the cheap-create backend; the Migrating placer
// detects the drift through the cost model's per-image entry EWMA,
// flips the tenant after its hysteresis streak, and ships the tenant's
// warm snapshot to the new home (wasp.MigrateSnapshot) as a
// base-grafted delta, so the first run there resumes instead of
// cold-booting. Each configuration runs twice and the runner fails
// unless the full reports are bit-identical — the determinism gate is
// part of the experiment, not a separate test.
//
// -trials scales the trace (perPhase = 16 x trials drift runs per
// phase): -trials 1 is the CI smoke, -trials 4 the committed
// BENCH_rebalance run.
func Rebalance(trials int) (*Table, error) {
	scale := clampTrials(trials, 1, 8)
	perPhase := 16 * scale
	kvm, pv := vmm.KVM{}, vmm.Paravirt{}
	fleet := []vmm.Platform{kvm, pv, kvm, pv}

	configs := []struct {
		name       string
		hysteresis int
	}{
		{"sticky", -1},
		{"migrating", 3},
	}

	t := &Table{
		ID:    "rebalance",
		Title: "Live rebalancing: drifting tenant, sticky vs migrating placement (virtual scheduler)",
		Header: []string{"config", "workers", "makespan-ms", "drift-p50-ms", "drift-p99-ms",
			"steady-p50-ms", "flips", "mig-bytes", "delta", "drift-on-pv", "home"},
	}

	run := func(name string, hysteresis int) (*serverless.RebalanceReport, error) {
		w := wasp.New(wasp.WithPlatforms(kvm, pv))
		return serverless.RunRebalanceMix(w, name, fleet, hysteresis, perPhase)
	}

	reports := map[string]*serverless.RebalanceReport{}
	for _, cfg := range configs {
		a, err := run(cfg.name, cfg.hysteresis)
		if err != nil {
			return nil, err
		}
		b, err := run(cfg.name, cfg.hysteresis)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(a, b) {
			return nil, fmt.Errorf("rebalance %s: report not bit-identical across two virtual runs", cfg.name)
		}
		reports[cfg.name] = a
		var driftOnPV uint64
		for _, sl := range a.Backends {
			if sl.Platform == pv.Name() {
				driftOnPV = sl.DriftRuns
			}
		}
		t.AddRow(cfg.name, di(a.Workers),
			f2(cycles.Millis(a.Makespan)),
			f2(a.DriftP50Ms), f2(a.DriftP99Ms), f2(a.SteadyP50Ms),
			d0(a.Migrations), di(a.MigratedBytes), d0(a.DeltaMigrations),
			d0(driftOnPV), a.FinalHome)
	}

	st, mg := reports["sticky"], reports["migrating"]
	if mg.Makespan >= st.Makespan || mg.DriftP99Ms >= st.DriftP99Ms {
		return nil, fmt.Errorf("rebalance: migrating (makespan %d, p99 %.3f ms) does not beat sticky (makespan %d, p99 %.3f ms)",
			mg.Makespan, mg.DriftP99Ms, st.Makespan, st.DriftP99Ms)
	}
	t.Note("workload: %d quiet (2 hypercalls) then %d chatty (150) runs of one drifting tenant + %d steady bystanders",
		perPhase, perPhase, 4*perPhase)
	t.Note("makespan %.2f ms vs sticky %.2f ms, drift p99 %.2f ms vs %.2f — one flip after the drift, shipped as a %d-byte snapshot delta",
		cycles.Millis(mg.Makespan), cycles.Millis(st.Makespan), mg.DriftP99Ms, st.DriftP99Ms, mg.MigratedBytes)
	t.Note("each config ran twice; rows are asserted bit-identical before printing")
	return t, nil
}
