package bench

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/wasp"
)

// SnapshotForest measures the content-addressed snapshot forest under
// multi-tenancy: thousands of tenants forked (guest.Image.WithName)
// from one httpd-shaped and one JS-shaped base image, each tenant
// snapshotted with its own identity page. The figure of merit is the
// marginal memory a tenant costs once the base layer exists — with
// per-tenant deep copies it is the whole captured image; with the
// forest it is the pages the tenant actually changed.
//
// -trials scales load in thousands of tenants per corpus: -trials 1 is
// the CI smoke (1k tenants), -trials 10 the committed BENCH_snapshot
// run (10k tenants).

// httpdTenantAsm is the httpd-shaped tenant: fill a response buffer in
// the heap (the server's in-memory document), snapshot, then serve —
// read the tenant id argument, stamp it into the response, return it.
func httpdTenantAsm() string {
	return `
	movi rcx, 1536
	movi rdi, 0x5000
ht_fill:
	mov rax, rdi
	and rax, 255
	storeb [rdi], rax
	add rdi, 1
	dec rcx
	jnz ht_fill
	out 0x08, rdi        ; snapshot(): warm server, request not yet seen
	movi rbx, 0x0
	load rax, [rbx]      ; tenant id = request identity
	movi rbx, 0x5000
	load rdx, [rbx]      ; first doc word, carried into the response
	add rax, rdx
	movi rbx, 0x4000
	store [rbx], rax
	movi rdi, 0
	out 0x00, rdi
	hlt
`
}

// jsTenantAsm is the JS-shaped tenant: fill a bytecode program into the
// heap, snapshot, then interpret it with the tenant id seeding the
// accumulator — a miniature of the Fig 14 JS dispatch loop.
func jsTenantAsm() string {
	return `
	movi rcx, 1024
	movi rdi, 0x5000
jt_fill:
	mov rax, rcx
	and rax, 3
	storeb [rdi], rax
	add rdi, 1
	dec rcx
	jnz jt_fill
	out 0x08, rdi        ; snapshot(): program loaded, not yet run
	movi rbx, 0x0
	load rsi, [rbx]      ; accumulator seeded with the tenant id
	movi rcx, 1024
	movi rdi, 0x5000
jt_dispatch:
	loadb rax, [rdi]
	cmp rax, 1
	jz jt_add
	cmp rax, 2
	jz jt_dbl
	jmp jt_next
jt_add:
	add rsi, 7
	jmp jt_next
jt_dbl:
	add rsi, rsi
jt_next:
	add rdi, 1
	dec rcx
	jnz jt_dispatch
	movi rbx, 0x4000
	store [rbx], rsi
	movi rdi, 0
	out 0x00, rdi
	hlt
`
}

// SnapshotForest is the `-exp snapshot` runner.
func SnapshotForest(trials int) (*Table, error) {
	tenants := clampTrials(trials, 1, 10) * 1000
	t := &Table{
		ID:    "snapshot",
		Title: "Snapshot forest: marginal memory per tenant clone",
		Header: []string{"corpus", "tenants", "image-KB", "delta-pages",
			"marginal-KB", "store-MB", "legacy-MB", "dedup"},
	}

	for _, c := range []struct {
		name string
		src  string
		pad  int
	}{
		{"httpd", httpdTenantAsm(), 32 << 10},
		{"js", jsTenantAsm(), 32 << 10},
	} {
		w := wasp.New()
		base := guest.MustFromAsm("snapfor-"+c.name, guest.WrapLongMode(c.src)).WithPad(c.pad)
		// capturedBytes mirrors the capture windows: [0, footprint) plus
		// the stack reserve — the size of one legacy deep-copy snapshot.
		foot := base.Footprint() + base.ExtraHeap
		if foot > base.MemBytes() {
			foot = base.MemBytes()
		}
		capturedBytes := foot + guest.StackReserve

		var after0 int64
		for i := 0; i < tenants; i++ {
			img := base.WithName(fmt.Sprintf("snapfor-%s-%05d", c.name, i))
			var arg [8]byte
			binary.LittleEndian.PutUint64(arg[:], uint64(i))
			res, err := w.Run(img, wasp.RunConfig{Snapshot: true, RetBytes: 8, Args: arg[:]}, cycles.NewClock())
			if err != nil {
				return nil, fmt.Errorf("snapshot %s tenant %d: %w", c.name, i, err)
			}
			if len(res.Ret) != 8 {
				return nil, fmt.Errorf("snapshot %s tenant %d: short return", c.name, i)
			}
			if i == 0 {
				after0 = w.ForestStats().StoreBytes
			}
		}
		st := w.ForestStats()
		if st.Snapshots != tenants {
			return nil, fmt.Errorf("snapshot %s: %d snapshots, want %d", c.name, st.Snapshots, tenants)
		}
		if err := w.VerifyForest(); err != nil {
			return nil, fmt.Errorf("snapshot %s: %w", c.name, err)
		}
		marginal := float64(st.StoreBytes-after0) / float64(tenants-1)
		deltaPages := float64(st.DeltaPages) / float64(st.DeltaSnapshots)
		legacyBytes := float64(capturedBytes) * float64(tenants)
		dedup := legacyBytes / float64(st.StoreBytes)
		t.AddRow(c.name, di(tenants),
			f1(float64(capturedBytes)/1024),
			f1(deltaPages),
			f2(marginal/1024),
			f2(float64(st.StoreBytes)/(1<<20)),
			f1(legacyBytes/(1<<20)),
			f1(dedup))
	}
	t.Note("image-KB: captured bytes of one snapshot (what a deep copy costs per tenant)")
	t.Note("marginal-KB: shared-store growth per tenant after the base layer exists")
	t.Note("legacy-MB: tenants x image-KB — the deep-copy registries this forest replaced")
	t.Note("dedup: legacy-MB / store-MB")
	return t, nil
}
