package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// Each experiment must run end to end and reproduce the paper's
// structural claims. These tests use small trial counts; cmd/virtine-bench
// runs the full versions.

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", tab.ID, row, col)
	}
	return tab.Rows[row][col]
}

func cellF(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not a number", tab.ID, row, col, cell(t, tab, row, col))
	}
	return v
}

func findRow(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, r := range tab.Rows {
		if strings.Contains(r[0], name) {
			return i
		}
	}
	t.Fatalf("%s: no row %q", tab.ID, name)
	return -1
}

func TestFig2Ordering(t *testing.T) {
	tab, err := Fig2(100)
	if err != nil {
		t.Fatal(err)
	}
	fn := cellF(t, tab, findRow(t, tab, "function"), 1)
	vmrun := cellF(t, tab, findRow(t, tab, "vmrun"), 1)
	pthread := cellF(t, tab, findRow(t, tab, "pthread"), 1)
	kvm := cellF(t, tab, findRow(t, tab, "KVM"), 1)
	// C1: function << vmrun << pthread << KVM creation.
	if !(fn < vmrun && vmrun < pthread && pthread < kvm) {
		t.Fatalf("ordering violated: fn=%v vmrun=%v pthread=%v kvm=%v", fn, vmrun, pthread, kvm)
	}
}

func TestTable1Claims(t *testing.T) {
	tab, err := Table1(20)
	if err != nil {
		t.Fatal(err)
	}
	ident := cellF(t, tab, findRow(t, tab, "Paging identity mapping"), 1)
	prot := cellF(t, tab, findRow(t, tab, "Protected transition"), 1)
	lgdt := cellF(t, tab, findRow(t, tab, "Load 32-bit GDT"), 1)
	first := cellF(t, tab, findRow(t, tab, "First Instruction"), 1)
	// C1: ident map dominates at ≈28K; protected ≈3K; total tens of K.
	if ident < 24000 || ident > 34000 {
		t.Fatalf("ident map = %v, want ≈28K", ident)
	}
	if prot < 3000 || prot > 4500 {
		t.Fatalf("protected transition = %v, want ≈3.2K", prot)
	}
	if lgdt < 4000 || lgdt > 5500 {
		t.Fatalf("lgdt = %v, want ≈4.1K", lgdt)
	}
	if first < 70 || first > 300 {
		t.Fatalf("first instruction = %v, want ≈74", first)
	}
	if !(ident > lgdt && lgdt > prot/2 && prot > first) {
		t.Fatal("component ordering violated")
	}
}

func TestFig3ModeOrdering(t *testing.T) {
	tab, err := Fig3(30)
	if err != nil {
		t.Fatal(err)
	}
	m16 := cellF(t, tab, findRow(t, tab, "16-bit"), 1)
	m32 := cellF(t, tab, findRow(t, tab, "32-bit"), 1)
	m64 := cellF(t, tab, findRow(t, tab, "64-bit"), 1)
	// C2: 16-bit cheapest; 32 and 64 within ~15% of each other.
	if !(m16 < m32 && m16 < m64) {
		t.Fatalf("16-bit (%v) should be cheapest (32: %v, 64: %v)", m16, m32, m64)
	}
	if m64 < m32 {
		t.Fatalf("long mode (%v) should not be cheaper than protected (%v)", m64, m32)
	}
	if (m64-m32)/m32 > 0.30 {
		t.Fatalf("protected (%v) and long (%v) should be comparable", m32, m64)
	}
}

func TestFig4Milestones(t *testing.T) {
	tab, err := Fig4(30)
	if err != nil {
		t.Fatal(err)
	}
	entry := cellF(t, tab, 0, 1)
	recv := cellF(t, tab, 1, 1)
	send := cellF(t, tab, 2, 1)
	// C3: entry ≈10K cycles; response well under 1 ms (2.69M cycles).
	if entry < 5000 || entry > 25000 {
		t.Fatalf("main entry = %v, want ≈10K", entry)
	}
	if !(entry < recv && recv < send) {
		t.Fatal("milestone ordering violated")
	}
	if send > 2_690_000 {
		t.Fatalf("send milestone = %v cycles, want < 1ms", send)
	}
}

func TestFig8PoolingClaims(t *testing.T) {
	tab, err := Fig8(100)
	if err != nil {
		t.Fatal(err)
	}
	vmrun := cellF(t, tab, findRow(t, tab, "vmrun"), 1)
	ca := cellF(t, tab, findRow(t, tab, "Wasp+CA"), 1)
	c := cellF(t, tab, findRow(t, tab, "Wasp+C"), 1)
	scratch := cellF(t, tab, findRow(t, tab, "Wasp (no pooling)"), 1)
	pthread := cellF(t, tab, findRow(t, tab, "pthread"), 1)
	process := cellF(t, tab, findRow(t, tab, "process"), 1)
	sgxCreate := cellF(t, tab, findRow(t, tab, "SGX create"), 1)
	sgxECall := cellF(t, tab, findRow(t, tab, "SGX ecall"), 1)

	// C4: pooled shells approach the vmrun hardware limit; Wasp+CA is
	// within ~15% of it (paper: 4%); both pooled modes beat pthread;
	// from-scratch creation is KVM-creation-dominated.
	if (ca-vmrun)/vmrun > 0.35 {
		t.Fatalf("Wasp+CA (%v) should approach vmrun (%v)", ca, vmrun)
	}
	if !(ca < c && c < pthread) {
		t.Fatalf("pooling ordering violated: CA=%v C=%v pthread=%v", ca, c, pthread)
	}
	if scratch < pthread || scratch > process {
		t.Fatalf("from-scratch Wasp (%v) should sit between pthread (%v) and process (%v)", scratch, pthread, process)
	}
	if sgxECall < vmrun || sgxCreate < process {
		t.Fatal("SGX anchors out of place")
	}
}

func TestTable2HasMeasuredRow(t *testing.T) {
	tab, err := Table2(100)
	if err != nil {
		t.Fatal(err)
	}
	row := findRow(t, tab, "Virtines (measured)")
	lat := cell(t, tab, row, 1)
	if !strings.HasSuffix(lat, "us") {
		t.Fatalf("latency cell %q", lat)
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(lat, " us"), 64)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ≈5 µs boundary cross.
	if v < 1 || v > 15 {
		t.Fatalf("virtine boundary = %v us, want ≈5", v)
	}
}

func TestFig11Amortization(t *testing.T) {
	tab, err := Fig11(5)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: n, native, virtine, snapshot, slowdown, slowdown+snap.
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	slow0, _ := strconv.ParseFloat(first[5], 64)
	slowN, _ := strconv.ParseFloat(last[5], 64)
	// C5: ≈6.6x slowdown at fib(0) with snapshotting (band 3-12), and
	// ≈1.0x by fib(30) (band ≤1.2).
	if slow0 < 3 || slow0 > 12 {
		t.Fatalf("fib(0) snapshot slowdown = %v, want ≈6.6", slow0)
	}
	if slowN > 1.2 {
		t.Fatalf("fib(30) snapshot slowdown = %v, want ≈1.0", slowN)
	}
	// Snapshot beats no-snapshot at fib(0) by ≈2.5x (band 1.5-4).
	virt0, _ := strconv.ParseFloat(first[2], 64)
	snap0, _ := strconv.ParseFloat(first[3], 64)
	if ratio := virt0 / snap0; ratio < 1.5 || ratio > 4 {
		t.Fatalf("snapshot speedup at fib(0) = %v, want ≈2.5", ratio)
	}
}

func TestFig12MemoryBound(t *testing.T) {
	tab, err := Fig12(5)
	if err != nil {
		t.Fatal(err)
	}
	// C6: large images are memory-bandwidth-bound: the 16MB row's
	// effective bandwidth is ≈6.7-6.8 GB/s, and latency ≈2.3 ms.
	last := tab.Rows[len(tab.Rows)-1]
	gbps, _ := strconv.ParseFloat(last[3], 64)
	ms, _ := strconv.ParseFloat(last[2], 64)
	if gbps < 5.5 || gbps > 8.0 {
		t.Fatalf("16MB bandwidth = %v GB/s, want ≈6.7", gbps)
	}
	if ms < 2.0 || ms > 3.0 {
		t.Fatalf("16MB latency = %v ms, want ≈2.3-2.5", ms)
	}
	// Latency must grow monotonically with image size.
	prev := 0.0
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		if v < prev {
			t.Fatalf("latency not monotone in image size: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestFig13Claims(t *testing.T) {
	tab, err := Fig13(20)
	if err != nil {
		t.Fatal(err)
	}
	nat := cellF(t, tab, findRow(t, tab, "native"), 1)
	virt := cellF(t, tab, findRow(t, tab, "virtine"), 1)
	snap := cellF(t, tab, findRow(t, tab, "virtine+snapshot"), 1)
	if !(nat < snap && snap < virt) {
		t.Fatalf("latency ordering violated: native=%v snap=%v virtine=%v", nat, snap, virt)
	}
	// C7: throughput drop for the virtine server is bounded (<4x here,
	// paper ≈2x); throughput ordering inverts latency ordering.
	natT := cellF(t, tab, findRow(t, tab, "native"), 2)
	virtT := cellF(t, tab, findRow(t, tab, "virtine"), 2)
	if virtT >= natT {
		t.Fatal("virtine throughput should trail native")
	}
	if natT/virtT > 6 {
		t.Fatalf("throughput drop = %vx, too large", natT/virtT)
	}
}

func TestFig14Claims(t *testing.T) {
	tab, err := Fig14(3)
	if err != nil {
		t.Fatal(err)
	}
	// C8: acceptable slowdown for the plain virtine; snapshot+NT beats
	// native (sub-1 slowdown near 137 µs vs 419 µs).
	virt := cellF(t, tab, findRow(t, tab, "virtine"), 3)
	snapNT := cellF(t, tab, findRow(t, tab, "virtine+snapshot+NT"), 3)
	if virt < 1.05 || virt > 2.0 {
		t.Fatalf("virtine slowdown = %v, want 1.1-2.0 (paper ≈1.3)", virt)
	}
	if snapNT >= 1 {
		t.Fatalf("snapshot+NT slowdown = %v, want < 1 (paper ≈0.33)", snapNT)
	}
}

func TestFig15Claims(t *testing.T) {
	tab, err := Fig15(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Vespid p50 must beat OpenWhisk p50 in every populated second.
	for _, row := range tab.Rows {
		vp50, _ := strconv.ParseFloat(row[2], 64)
		wp50, _ := strconv.ParseFloat(row[4], 64)
		if vp50 > 0 && wp50 > 0 && vp50 >= wp50 {
			t.Fatalf("second %s: vespid p50 %v >= whisk %v", row[0], vp50, wp50)
		}
	}
}

func TestSpeedSection64(t *testing.T) {
	tab, err := Fig64Speed(5)
	if err != nil {
		t.Fatal(err)
	}
	// Slowdown decreases with block size.
	prev := 1e18
	for _, row := range tab.Rows {
		s, _ := strconv.ParseFloat(row[3], 64)
		if s >= prev {
			t.Fatalf("slowdown not amortizing: %v after %v", s, prev)
		}
		prev = s
	}
}

func TestRegistryAndRendering(t *testing.T) {
	if _, ok := Lookup("fig2"); !ok {
		t.Fatal("fig2 missing from registry")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id resolved")
	}
	tab := &Table{
		ID: "x", Title: "T", Header: []string{"a", "b"},
	}
	tab.AddRow("1", "2")
	tab.Note("n=%d", 5)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	if !strings.Contains(buf.String(), "== x: T ==") || !strings.Contains(buf.String(), "note: n=5") {
		t.Fatalf("render: %s", buf.String())
	}
	buf.Reset()
	tab.CSV(&buf)
	if !strings.HasPrefix(buf.String(), "a,b\n1,2\n") {
		t.Fatalf("csv: %s", buf.String())
	}
}

func TestWaspCAClaims(t *testing.T) {
	tab, err := WaspCA(256)
	if err != nil {
		t.Fatal(err)
	}
	c := cellF(t, tab, findRow(t, tab, "Wasp+C ("), 1)
	ca := cellF(t, tab, findRow(t, tab, "Wasp+CA"), 1)
	// The release-path win: with cleaning off the critical path, the
	// mean per-run cost must drop by (roughly) the shell zeroing cost.
	if ca >= c {
		t.Fatalf("Wasp+CA mean (%v) not cheaper than Wasp+C (%v)", ca, c)
	}
	// Cleaning really happened on the async lanes.
	if cleaned := cellF(t, tab, findRow(t, tab, "Wasp+CA"), 4); cleaned == 0 {
		t.Fatal("no shell was cleaned asynchronously")
	}
	// The capacity bound holds after the burst.
	for _, name := range []string{"Wasp+C (", "Wasp+CA"} {
		if pool := cellF(t, tab, findRow(t, tab, name), 3); pool > 64 {
			t.Fatalf("%s: pool total %v exceeds the per-class cap", name, pool)
		}
	}
}

func TestAdmissionFairnessClaims(t *testing.T) {
	tab, err := AdmissionFairness(2)
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance: Jain >= 0.9 for the noisy-neighbor mix under soft
	// weights, with the unfair FIFO baseline clearly below it in the
	// same table.
	fifoJain := cellF(t, tab, findRow(t, tab, "fifo/ALL"), 6)
	fairJain := cellF(t, tab, findRow(t, tab, "weighted/ALL"), 6)
	capJain := cellF(t, tab, findRow(t, tab, "hardcap/ALL"), 6)
	if fairJain < 0.9 {
		t.Fatalf("weighted Jain = %v, want >= 0.9", fairJain)
	}
	if capJain < 0.9 {
		t.Fatalf("hardcap Jain = %v, want >= 0.9", capJain)
	}
	if fifoJain >= fairJain-0.1 {
		t.Fatalf("FIFO Jain %v not clearly below weighted %v", fifoJain, fairJain)
	}
	// Cold tenants: weighted p99 queueing collapses vs the FIFO baseline.
	fifoCold := cellF(t, tab, findRow(t, tab, "fifo/svc-a"), 5)
	fairCold := cellF(t, tab, findRow(t, tab, "weighted/svc-a"), 5)
	if fairCold*10 > fifoCold {
		t.Fatalf("weighted cold p99 %v ms not an order below FIFO %v ms", fairCold, fifoCold)
	}
	// The hog keeps its full entitlement under weights (work conserving).
	if share := cellF(t, tab, findRow(t, tab, "weighted/hog"), 6); share < 0.99 {
		t.Fatalf("hog share under weights = %v, want ~1 (work conserving)", share)
	}
}
