package bench

import "repro/internal/obs"

// globalTracer, when set, is threaded into every simulated fleet the
// runners build (the cluster frontier's ClusterConfigs), so one CLI
// flag captures a whole experiment's flight. Benchmarked hot paths see
// only the disabled-check cost unless the tracer is enabled.
var globalTracer *obs.Tracer

// SetTracer attaches a flight recorder to subsequent runner
// invocations; nil detaches. Not synchronized — call before Run.
func SetTracer(tr *obs.Tracer) { globalTracer = tr }
