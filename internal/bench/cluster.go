package bench

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/cycles"
	"repro/internal/sched"
	"repro/internal/serverless"
	"repro/internal/wasp"
)

// Cluster is the cluster-scale autoscaling frontier: the standard
// four-tier trace mix (steady API, diurnal web, heavy-tailed batch,
// flash-crowd spikes) swept across fixed fleet widths and the two
// elastic policies, reporting each configuration's SLO attainment
// against its provisioned cost — the frontier a capacity planner walks.
// Two structural rows ride along: a scaling row that pushes the O(log n)
// event core to a 1024-worker fleet serving a million tickets, and a
// speedup row that times one overloaded weighted batch through the heap
// core and the O(n²) linear reference and fails the run below 10x.
//
// Every simulated configuration runs twice on fresh fleets and the
// runner fails unless the reports are bit-identical — the determinism
// gate is part of the experiment. The speedup row additionally asserts
// the two cores agree on the batch makespan, so the time difference is
// bookkeeping only.
//
// -trials scales the trace (-trials 1 is the CI smoke: a lighter mix,
// 100k scaling tickets, 10k speedup tickets; -trials >= 2 is the
// committed run with the full 1M/100k rows).
func Cluster(trials int) (*Table, error) {
	const F = uint64(cycles.Frequency)
	scale := clampTrials(trials, 1, 4)
	horizon := 2 * F
	mix := serverless.ClusterMix(1, float64(scale), horizon)

	t := &Table{
		ID:    "cluster",
		Title: "Cluster autoscaling frontier: SLO vs provisioned cost (virtual fleet)",
		Header: []string{"policy", "w0", "peak", "tickets", "rejected", "slo",
			"p50-ms", "p99-ms", "makespan-ms", "cost-ws", "scale-events", "host-ms"},
	}

	configs := []struct {
		w0  int
		pol func() sched.AutoPolicy
	}{
		{4, func() sched.AutoPolicy { return sched.FixedScale{N: 4} }},
		{16, func() sched.AutoPolicy { return sched.FixedScale{N: 16} }},
		{64, func() sched.AutoPolicy { return sched.FixedScale{N: 64} }},
		{4, func() sched.AutoPolicy { return sched.QueueScale{TargetP99: F / 20, Min: 2, Max: 256} }},
		{4, func() sched.AutoPolicy { return &sched.UtilScale{Target: 0.5, Min: 2, Max: 256, Patience: 2} }},
	}

	// runTwice is the determinism gate: every configuration is simulated
	// on two fresh fleets (fresh policy state too — UtilScale carries a
	// hysteresis streak) and must reproduce bit for bit.
	runTwice := func(pol func() sched.AutoPolicy, cfg serverless.ClusterConfig) (*serverless.ClusterReport, float64, error) {
		t0 := time.Now()
		a, err := serverless.RunCluster(wasp.New(), pol(), cfg)
		if err != nil {
			return nil, 0, err
		}
		hostMs := float64(time.Since(t0)) / float64(time.Millisecond)
		b, err := serverless.RunCluster(wasp.New(), pol(), cfg)
		if err != nil {
			return nil, 0, err
		}
		if !reflect.DeepEqual(a, b) {
			return nil, 0, fmt.Errorf("cluster %s/w0=%d: report not bit-identical across two runs", a.Policy, cfg.InitialWorkers)
		}
		return a, hostMs, nil
	}

	ms := cycles.Millis
	addRow := func(rep *serverless.ClusterReport, hostMs float64) {
		t.AddRow(rep.Policy, di(rep.InitialWorkers), di(rep.PeakWorkers),
			di(rep.Tickets), di(rep.Rejected), f2(rep.SLOAttained),
			f2(ms(rep.P50Latency)), f2(ms(rep.P99Latency)), f1(ms(rep.Makespan)),
			f1(rep.CostWorkerSec), di(rep.ScaleEvents), f1(hostMs))
	}

	var fixed64, elastic *serverless.ClusterReport
	for _, c := range configs {
		rep, hostMs, err := runTwice(c.pol, serverless.ClusterConfig{
			Seed: 1, InitialWorkers: c.w0, Trace: mix, Tracer: globalTracer,
		})
		if err != nil {
			return nil, err
		}
		addRow(rep, hostMs)
		switch rep.Policy {
		case "fixed-64":
			fixed64 = rep
		case "queue-p99":
			elastic = rep
		}
	}
	if elastic.PeakWorkers <= elastic.InitialWorkers {
		return nil, fmt.Errorf("cluster: queue-p99 never scaled past %d workers", elastic.InitialWorkers)
	}
	if elastic.CostWorkerSec >= fixed64.CostWorkerSec {
		return nil, fmt.Errorf("cluster: elastic cost %.1f ws should undercut the fixed-64 fleet's %.1f ws",
			elastic.CostWorkerSec, fixed64.CostWorkerSec)
	}

	// Scaling row: a 1024-worker fleet through a million dense tickets
	// (100k in the CI smoke). The point is host wall time: the O(log n)
	// core keeps the decision cost flat while fleet and trace grow three
	// orders past the frontier sweep.
	bigN, bigW := 1_000_000, 1024
	if trials < 2 {
		bigN = 100_000
	}
	bigTrace := serverless.UniformTrace(2, "api", bigN, F/800_000, serverless.ServiceProfile{Base: F / 1000, Spread: 0.5})
	bigRep, bigHost, err := runTwice(
		func() sched.AutoPolicy { return sched.FixedScale{N: bigW} },
		// The scaling row runs untraced even under -trace: a 1024-lane
		// flight recorder is ~70 MB of rings, and holding that live
		// poisons the timing of everything after it. The frontier sweep
		// above already records every event kind the trace needs.
		serverless.ClusterConfig{InitialWorkers: bigW, Trace: bigTrace})
	if err != nil {
		return nil, err
	}
	addRow(bigRep, bigHost)
	if bigRep.Tickets != bigN || bigRep.Rejected != 0 {
		return nil, fmt.Errorf("cluster scaling row dropped tickets: %d of %d served", bigRep.Tickets-bigRep.Rejected, bigN)
	}

	// Speedup row: one overloaded weighted batch straight through the
	// dispatcher, heap core vs the retained linear reference, wall time
	// on this host. The makespans must agree bit for bit; the runner
	// fails below 10x.
	spdN := 100_000
	if trials < 2 {
		spdN = 10_000
	}
	batch := serverless.UniformTrace(3, "api", spdN, 25_000, serverless.ServiceProfile{Base: 30_000, Spread: 1.0})
	weights := sched.Admission{Weights: map[string]int{"api": 3, "web": 2, "spike": 2, "batch": 1}}
	dispatch := func(linear bool) (uint64, float64) {
		opts := []sched.Option{sched.WithAdmission(weights)}
		if linear {
			opts = append(opts, sched.WithLinearDispatch(true))
		}
		s := sched.NewVirtual(wasp.New(), 16, opts...)
		defer s.Close()
		t0 := time.Now()
		s.SubmitBatchAt(batch)
		return s.Makespan(), float64(time.Since(t0)) / float64(time.Millisecond)
	}
	heapMk, heapMs := dispatch(false)
	linMk, linMs := dispatch(true)
	if heapMk != linMk {
		return nil, fmt.Errorf("cluster speedup row: heap makespan %d != linear %d", heapMk, linMk)
	}
	speedup := linMs / heapMs
	if speedup < 10 {
		return nil, fmt.Errorf("cluster speedup row: heap core only %.1fx faster than linear at %d tickets", speedup, spdN)
	}
	t.AddRow("heap-batch", di(16), di(16), di(spdN), di(0), "", "", "",
		f1(ms(heapMk)), "", di(0), f1(heapMs))
	t.AddRow("linear-batch", di(16), di(16), di(spdN), di(0), "", "", "",
		f1(ms(linMk)), "", di(0), f1(linMs))

	t.Note("mix: %s over %.1f virtual s; SLO %.0f ms, epoch %.0f ms, cold start %.1f ms",
		serverless.TraceImages(mix), float64(horizon)/float64(F), ms(F/20), ms(F/4), ms(F/40))
	t.Note("every simulated row ran twice on fresh fleets and is asserted bit-identical before printing")
	t.Note("scaling row: %d workers x %d tickets in %.0f ms host time (%s)", bigW, bigN, bigHost, bigRep.String())
	t.Note("speedup row: one %d-ticket weighted batch, heap %.1f ms vs linear %.1f ms = %.0fx (identical makespan)",
		spdN, heapMs, linMs, speedup)
	return t, nil
}
