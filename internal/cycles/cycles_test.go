package cycles

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	c.Advance(23)
	if got := c.Now(); got != 123 {
		t.Fatalf("Now() = %d, want 123", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.Advance(50)
	c.AdvanceTo(40) // must not go backwards
	if got := c.Now(); got != 50 {
		t.Fatalf("AdvanceTo past: Now() = %d, want 50", got)
	}
	c.AdvanceTo(70)
	if got := c.Now(); got != 70 {
		t.Fatalf("AdvanceTo future: Now() = %d, want 70", got)
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(999)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset Now() = %d, want 0", c.Now())
	}
}

func TestClockMonotonic(t *testing.T) {
	// Property: any sequence of Advance/AdvanceTo never decreases Now.
	f := func(steps []uint32) bool {
		c := NewClock()
		prev := uint64(0)
		for i, s := range steps {
			if i%2 == 0 {
				c.Advance(uint64(s % 1000))
			} else {
				c.AdvanceTo(uint64(s))
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMicrosConversionRoundTrip(t *testing.T) {
	// 2690 cycles at 2.69 GHz is exactly 1 µs.
	if got := Micros(2690); got != 1.0 {
		t.Fatalf("Micros(2690) = %v, want 1.0", got)
	}
	if got := FromMicros(1.0); got != 2690 {
		t.Fatalf("FromMicros(1.0) = %v, want 2690", got)
	}
	if got := Millis(2_690_000); got != 1.0 {
		t.Fatalf("Millis(2.69M) = %v, want 1.0", got)
	}
	if got := FromNanos(1000); got != 2690 {
		t.Fatalf("FromNanos(1000) = %v, want 2690", got)
	}
}

func TestMemcpyCostMatchesBandwidth(t *testing.T) {
	// 16 MB at ~6.7 GB/s should take ≈2.3-2.5 ms (paper Fig 12: 2.3 ms).
	c := MemcpyCost(16 << 20)
	ms := Millis(c)
	if ms < 2.0 || ms > 2.8 {
		t.Fatalf("16MB copy = %.2f ms, want ≈2.3 ms", ms)
	}
	if MemcpyCost(0) != 0 {
		t.Fatal("zero-byte copy should be free")
	}
	if MemcpyCost(-5) != 0 {
		t.Fatal("negative length should be free")
	}
}

func TestMemcpyCostMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return MemcpyCost(x) <= MemcpyCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseDeterministic(t *testing.T) {
	a, b := NewNoise(42), NewNoise(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Jitter(10000), b.Jitter(10000); x != y {
			t.Fatalf("same seed diverged at i=%d: %d vs %d", i, x, y)
		}
	}
}

func TestNoiseSeedsDiffer(t *testing.T) {
	a, b := NewNoise(1), NewNoise(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Jitter(100000) == b.Jitter(100000) {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("different seeds produced %d/100 identical samples", same)
	}
}

func TestNoiseJitterBounds(t *testing.T) {
	n := NewNoise(7)
	for i := 0; i < 10000; i++ {
		v := n.Jitter(1000)
		if v < 500 {
			t.Fatalf("jitter deflated below half: %d", v)
		}
		if v > 1000*20 {
			t.Fatalf("jitter exploded: %d", v)
		}
	}
}

func TestNoiseZeroBase(t *testing.T) {
	n := NewNoise(1)
	if n.Jitter(0) != 0 {
		t.Fatal("Jitter(0) must be 0")
	}
	var nilNoise *Noise
	if nilNoise.Jitter(55) != 55 {
		t.Fatal("nil noise must be identity")
	}
}

func TestNoiseProducesOutliers(t *testing.T) {
	n := NewNoise(3)
	outliers := 0
	for i := 0; i < 20000; i++ {
		if n.Jitter(1000) > 2000 {
			outliers++
		}
	}
	if outliers == 0 {
		t.Fatal("expected occasional scheduling-event outliers, saw none")
	}
	if outliers > 2000 {
		t.Fatalf("too many outliers: %d/20000", outliers)
	}
}

func TestNoiseUint64n(t *testing.T) {
	n := NewNoise(9)
	if n.Uint64n(0) != 0 {
		t.Fatal("Uint64n(0) must be 0")
	}
	for i := 0; i < 1000; i++ {
		if v := n.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n(17) = %d out of range", v)
		}
	}
}
