// Package cycles provides the deterministic virtual cycle clock that
// underpins every measurement in this repository, together with the
// calibrated cost table that stands in for the hardware the paper measured.
//
// The paper measures everything in cycles with rdtsc on "tinker", an AMD
// EPYC 7281 at 2.69 GHz. We reproduce that methodology with a virtual
// clock: every simulated operation (instruction retired, memory reference,
// VM entry, ring transition, page-table walk, snapshot copy) advances the
// clock by a cost drawn from the table in costs.go. Experiments therefore
// report cycle counts that are deterministic, reproducible, and — because
// the costs are calibrated against the paper's own measurements — directly
// comparable in shape to the published figures.
package cycles

// Frequency is the virtual TSC frequency in Hz, matching tinker's
// AMD EPYC 7281 at 2.69 GHz (paper §4.1).
const Frequency = 2_690_000_000

// Clock is a monotonically increasing virtual cycle counter. A Clock is
// owned by exactly one execution context (a VM run, a native baseline run,
// or an event-driven simulation); it is deliberately not safe for
// concurrent use, mirroring the per-core TSC it models.
type Clock struct {
	now uint64
}

// NewClock returns a clock starting at cycle 0.
func NewClock() *Clock { return &Clock{} }

// Now returns the current cycle count.
func (c *Clock) Now() uint64 { return c.now }

// Advance moves the clock forward by n cycles.
func (c *Clock) Advance(n uint64) { c.now += n }

// AdvanceTo moves the clock forward to absolute cycle t. It is a no-op if
// t is in the past; virtual time never runs backwards.
func (c *Clock) AdvanceTo(t uint64) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero. Only harnesses should call this,
// between independent trials.
func (c *Clock) Reset() { c.now = 0 }

// Micros converts a cycle count to microseconds at the virtual frequency.
func Micros(cycles uint64) float64 {
	return float64(cycles) / (Frequency / 1e6)
}

// Millis converts a cycle count to milliseconds at the virtual frequency.
func Millis(cycles uint64) float64 {
	return float64(cycles) / (Frequency / 1e3)
}

// FromMicros converts microseconds to cycles at the virtual frequency.
func FromMicros(us float64) uint64 {
	return uint64(us * (Frequency / 1e6))
}

// FromNanos converts nanoseconds to cycles at the virtual frequency.
func FromNanos(ns float64) uint64 {
	return uint64(ns * (Frequency / 1e9))
}
