package cycles

import "math/rand"

// Noise is a seeded source of measurement jitter. The paper's measurements
// carry variance from host-kernel scheduling, the network stack, and
// microarchitectural state; experiments remove extreme outliers with
// Tukey's method (§4.2 footnote 3). We reproduce that structure with a
// deterministic log-normal-ish jitter plus rare large outliers, so that the
// published filtering step has something real to do.
type Noise struct {
	rng *rand.Rand
	// Rel is the relative standard deviation of the common-case jitter
	// (e.g. 0.03 for ±3%).
	Rel float64
	// OutlierP is the probability of a scheduling-event outlier.
	OutlierP float64
	// OutlierMul scales an outlier (e.g. 4 → roughly 4× the base cost).
	OutlierMul float64
}

// NewNoise returns a deterministic noise source with the given seed and
// a 3% relative jitter with 1-in-200 outliers of ~4x, which matches the
// variance structure visible in the paper's error bars.
func NewNoise(seed int64) *Noise {
	return &Noise{
		rng:        rand.New(rand.NewSource(seed)),
		Rel:        0.03,
		OutlierP:   0.005,
		OutlierMul: 4,
	}
}

// Jitter returns base perturbed by the configured noise. The result is
// always at least 1 if base is nonzero, and never less than half of base;
// measurement noise inflates latencies far more often than it deflates
// them, so the distribution is right-skewed.
func (n *Noise) Jitter(base uint64) uint64 {
	if n == nil || base == 0 {
		return base
	}
	if n.OutlierP > 0 && n.rng.Float64() < n.OutlierP {
		return uint64(float64(base) * (1 + n.OutlierMul*n.rng.Float64()))
	}
	// Right-skewed: |gaussian| added, small gaussian subtracted.
	g := n.rng.NormFloat64() * n.Rel
	if g < 0 {
		g = g / 3 // deflation happens, but mildly
	}
	v := float64(base) * (1 + g)
	if v < float64(base)/2 {
		v = float64(base) / 2
	}
	if v < 1 {
		v = 1
	}
	return uint64(v)
}

// Uint64n returns a deterministic value in [0, n).
func (n *Noise) Uint64n(bound uint64) uint64 {
	if bound == 0 {
		return 0
	}
	return uint64(n.rng.Int63n(int64(bound)))
}

// Float64 returns a deterministic value in [0, 1).
func (n *Noise) Float64() float64 { return n.rng.Float64() }
