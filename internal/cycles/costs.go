package cycles

// This file is the single home of every calibrated cost in the simulator.
// Each constant is annotated with the paper measurement it reproduces.
// Changing a constant moves absolute numbers but not structural
// relationships: those come from work actually executed (instructions
// retired, bytes copied, exits taken, tables walked).
//
// Reference points from the paper (all on tinker, 2.69 GHz):
//
//	Table 1:  ident-map paging 28109 cy, protected transition 3217 cy,
//	          long transition (lgdt) 681 cy, ljmp→32 175 cy, ljmp→64 190 cy,
//	          load 32-bit GDT 4118 cy, first instruction 74 cy.
//	Fig 2/8:  vmrun ioctl is the hardware floor; pooled Wasp shells come
//	          within 4% of it; pthread creation sits well above vmrun;
//	          process creation far above that; KVM VM creation above pthread.
//	Table 2:  virtine boundary cross ≈ 5 µs (syscall + vmrun).
//	Fig 12:   snapshot reset is memcpy-bound at 6.7–6.8 GB/s.
//	§6.5:     native Duktape baseline 419 µs; optimized virtine 137 µs.

// Per-instruction execution costs (guest CPU, internal/cpu).
const (
	// InstrBase is the cost of retiring one simple ALU/branch instruction.
	InstrBase = 1
	// InstrMul and InstrDiv model multi-cycle integer multiply/divide.
	InstrMul = 3
	InstrDiv = 14
	// MemAccess is the cost of one data memory reference that hits the
	// TLB (or runs untranslated in real/protected mode).
	MemAccess = 4
	// MemStore is the cost of one data store. Stores are pricier than
	// loads in the model so that the identity-map loop in the minimal
	// boot sequence (three 4 KiB page tables = 12 KiB of stores in
	// 1536 loop iterations, paper §4.2) lands at ≈28-30 K cycles,
	// Table 1's dominant component (28109).
	MemStore = 7
	// TLBMissWalk is charged per 4-level page walk on a TLB miss in long
	// mode, on top of the memory references the walk itself performs.
	TLBMissWalk = 24
	// FetchPerInstr is the instruction-fetch overhead per instruction.
	FetchPerInstr = 0
)

// Architectural mode-transition costs (Table 1).
const (
	// ProtectedTransition is charged when CR0.PE flips 0→1
	// (Table 1 "Protected transition": 3217).
	ProtectedTransition = 3217
	// LongTransition is charged when paging is enabled with EFER.LME set,
	// activating long mode (Table 1 "Long transition (lgdt)": 681).
	LongTransition = 681
	// Lgdt32 is the first (cold) GDT load (Table 1 "Load 32-bit GDT": 4118).
	Lgdt32 = 4118
	// Lgdt64 is a subsequent GDT load; folded into LongTransition in the
	// paper's accounting, so it is cheap here.
	Lgdt64 = 60
	// Ljmp32 and Ljmp64 are the far jumps that complete mode switches
	// (Table 1: 175 and 190).
	Ljmp32 = 175
	Ljmp64 = 190
	// FirstInstr64 is the cost of the first instruction retired in long
	// mode (Table 1 "First Instruction": 74), modelling cold frontend
	// state after the mode switch.
	FirstInstr64 = 74
	// CR3Load is charged when CR3 is written (TLB flush + root load).
	CR3Load = 160
)

// Host/hypervisor costs (internal/vmm, internal/wasp).
const (
	// VMRunEntry is the cost of one KVM_RUN ioctl up to guest entry:
	// syscall, KVM sanity checks, vmrun/vmresume. This is the paper's
	// "hardware limit" (Fig 2 "vmrun", ≈1.6 µs).
	VMRunEntry = 4300
	// VMExit is the cost of a guest exit back to the userspace VMM:
	// #VMEXIT, KVM exit handling, ring transition to user. The paper
	// notes hypercall exits are "doubly expensive due to the ring
	// transitions necessitated by KVM" (§6.3).
	VMExit = 2600
	// KVMCreateVM is the cost of KVM_CREATE_VM + vCPU + memory-region
	// setup — the "higher cost to construct a virtine due to the host
	// kernel's internal allocation of the VM state (VMCS/VMCB)" (§5.2).
	KVMCreateVM = 180_000
	// EPTBuildPerPage is charged per guest page mapped when the VMM
	// constructs the extended page table for a context (§4.2 notes EPT
	// construction inside KVM as part of the ident-map cost).
	EPTBuildPerPage = 11
	// HypercallDispatch is the VMM-side cost of decoding and routing one
	// hypercall to a handler (bounds checks, policy check).
	HypercallDispatch = 300
	// PoolAcquire is the cost of popping a cached shell from the pool
	// under a lock. Pooled acquisition (PoolAcquire + VMRunEntry) lands
	// within 4% of bare vmrun, matching Fig 8's Wasp+CA bar.
	PoolAcquire = 140
	// GuestLoadSetup is the fixed cost of preparing a run: resetting
	// vCPU state and writing marshalled arguments into guest memory.
	GuestLoadSetup = 900
	// COWResetPerPage is the bookkeeping cost per page copied back by a
	// copy-on-write reset (dirty-bit scan, mapping fix-up) — the SEUSS-
	// style optimization §7.2 anticipates.
	COWResetPerPage = 350
)

// Hyper-V (Windows Hypervisor Platform) backend costs. The paper notes
// Hyper-V performance "was similar" to KVM for its experiments; the WHP
// userspace API adds a little per-transition overhead.
const (
	HVCreatePartition = 205_000
	HVRunEntry        = 4_750
	HVExit            = 2_950
)

// Paravirtualized backend costs — a synthetic third profile with the
// Fig 5 trade-off inverted: context construction is expensive (the host
// pre-builds shared rings, pre-validated mappings, and a pinned
// communication page up front), but once built, guest entry/exit rides
// a lightweight doorbell instead of a full world switch, the way
// paravirtual I/O paths amortize setup into cheap steady-state
// transitions. Against KVM (cheap create, ~6.9 K per entry/exit pair)
// this is genuinely non-dominated: quiet images that enter the guest
// once per run never earn back the create cost, chatty images that
// re-enter per hypercall do, many times over.
const (
	PVCreateCtx = 1_600_000
	PVRunEntry  = 600
	PVExit      = 450
)

// Memory bandwidth model (Fig 12, §6.2, §6.4).
const (
	// MemcpyBytesPerCycleNum/Den encode 6.7 GB/s at 2.69 GHz
	// ≈ 2.49 bytes/cycle (paper measured 6.7 GB/s memcpy on tinker and a
	// 16 MB image start-up of 2.3 ms ≈ 6.8 GB/s).
	MemcpyBytesPerCycleNum = 249
	MemcpyBytesPerCycleDen = 100
)

// MemcpyCost returns the cycle cost of copying n bytes at the tinker
// memcpy bandwidth.
func MemcpyCost(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64(n)*MemcpyBytesPerCycleDen/MemcpyBytesPerCycleNum + 1
}

// ZeroCost returns the cycle cost of zeroing n bytes. Zeroing is a
// write-only streaming operation (non-temporal stores / kernel page
// zeroing) and runs ≈3x the memcpy bandwidth; this is what keeps pooled
// shell cleaning (Wasp+C) between the vmrun floor and pthread creation in
// Fig 8.
func ZeroCost(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64(n)*MemcpyBytesPerCycleDen/(3*MemcpyBytesPerCycleNum) + 1
}

// Host-side service costs charged when a hypercall (or native syscall)
// actually does its work in the host kernel. §6.3 notes the guest-to-host
// interactions "introduce variance from the host kernel's network stack";
// socket operations are far pricier than file-cache hits.
const (
	// NetSyscall is one socket send/recv through the host network stack.
	NetSyscall = 15_000
	// FileSyscall is one open/stat/read/close hitting the page cache.
	FileSyscall = 1_400
)

// Baseline execution-context costs (Fig 2, Fig 8, Table 2). These model
// abstractions we cannot portably construct from a Go simulator; the values
// anchor the published comparison and are documented in DESIGN.md as
// calibrated substitutions.
const (
	// FuncCall is a native call+return of an empty function (Fig 2).
	FuncCall = 9
	// PthreadCreateJoin is pthread_create + pthread_join (Fig 2, ≈11 µs).
	PthreadCreateJoin = 29_500
	// ProcessSpawn is fork + exec + exit + wait (Fig 8 "Linux process").
	ProcessSpawn = 418_000
	// SGXCreate is enclave creation on the Comet Lake SGX machine (Fig 8).
	SGXCreate = 4_800_000
	// SGXECall is an ECALL into an existing enclave (Fig 8).
	SGXECall = 14_200
)

// Published boundary-crossing costs for Table 2, in nanoseconds, from the
// papers cited there. Reported verbatim alongside our measured virtine cost.
var Table2Published = []struct {
	System    string
	LatencyNS float64
	Mechanism string
}{
	{"Wedge", 60_000, "sthread call"},
	{"LwC", 2_010, "lwSwitch"},
	{"Enclosures", 900, "Custom syscall interface"},
	{"SeCage", 500, "VMRUN/VMFUNC"},
	{"Hodor", 100, "VMRUN/VMFUNC"},
}

// Container-model costs for the OpenWhisk baseline (Fig 15). SOCK/SEUSS/
// Catalyzer-class optimized platforms reach <20 ms cold starts; stock
// OpenWhisk containers are far slower (§7.1).
const (
	ContainerColdStart = 1_300_000_000 // ≈480 ms: docker run + runtime init
	ContainerWarmStart = 48_000_000    // ≈18 ms: unpause/reuse + proxy
	ContainerTeardown  = 20_000_000
	NodeJSInvoke       = 1_700_000 // V8 invoke of a warm action (≈0.6 ms)
)
