package js

// AST and recursive-descent / Pratt parser.

type node interface{ line() int }

type nodeBase struct{ Line int }

func (n nodeBase) line() int { return n.Line }

type (
	numLit struct {
		nodeBase
		V float64
	}
	strLit struct {
		nodeBase
		V string
	}
	boolLit struct {
		nodeBase
		V bool
	}
	nullLit struct{ nodeBase }
	ident   struct {
		nodeBase
		Name string
	}
	arrayLit struct {
		nodeBase
		Elems []node
	}
	objectLit struct {
		nodeBase
		Keys []string
		Vals []node
	}
	funcLit struct {
		nodeBase
		Name   string
		Params []string
		Body   []node
	}
	unary struct {
		nodeBase
		Op string
		X  node
	}
	binary struct {
		nodeBase
		Op   string
		X, Y node
	}
	assign struct {
		nodeBase
		Op   string
		L, R node
	}
	ternary struct {
		nodeBase
		C, A, B node
	}
	call struct {
		nodeBase
		Fn   node
		Args []node
	}
	index struct {
		nodeBase
		X, I node
	}
	member struct {
		nodeBase
		X    node
		Name string
	}
	incdec struct {
		nodeBase
		Op      string
		Postfix bool
		X       node
	}

	varStmt struct {
		nodeBase
		Name string
		Init node
	}
	exprStmt struct {
		nodeBase
		X node
	}
	ifStmt struct {
		nodeBase
		C          node
		Then, Else []node
	}
	whileStmt struct {
		nodeBase
		C    node
		Body []node
	}
	forStmt struct {
		nodeBase
		Init, Post node // statements/expressions, may be nil
		C          node
		Body       []node
	}
	returnStmt struct {
		nodeBase
		X node
	}
	breakStmt    struct{ nodeBase }
	continueStmt struct{ nodeBase }
)

type jsParser struct {
	toks []token
	pos  int
}

func parse(src string) ([]node, int, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, 0, err
	}
	p := &jsParser{toks: toks}
	var prog []node
	for !p.at(tEOF) {
		s, err := p.stmt()
		if err != nil {
			return nil, 0, err
		}
		if s != nil {
			prog = append(prog, s)
		}
	}
	return prog, len(toks), nil
}

func (p *jsParser) cur() token  { return p.toks[p.pos] }
func (p *jsParser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *jsParser) at(k tokKind) bool {
	return p.cur().kind == k
}
func (p *jsParser) atPunct(s string) bool {
	return p.cur().kind == tPunct && p.cur().text == s
}
func (p *jsParser) atKw(s string) bool {
	return p.cur().kind == tKeyword && p.cur().text == s
}
func (p *jsParser) eatPunct(s string) bool {
	if p.atPunct(s) {
		p.pos++
		return true
	}
	return false
}
func (p *jsParser) expect(s string) error {
	if !p.eatPunct(s) {
		return jerrf(p.cur().line, "expected %q, got %s", s, p.cur())
	}
	return nil
}
func (p *jsParser) semi() {
	p.eatPunct(";") // ASI-lite: semicolons optional
}

func (p *jsParser) block() ([]node, error) {
	if p.atPunct("{") {
		p.pos++
		var out []node
		for !p.atPunct("}") {
			if p.at(tEOF) {
				return nil, jerrf(p.cur().line, "unexpected EOF in block")
			}
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			if s != nil {
				out = append(out, s)
			}
		}
		p.pos++
		return out, nil
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	return []node{s}, nil
}

func (p *jsParser) stmt() (node, error) {
	t := p.cur()
	switch {
	case p.eatPunct(";"):
		return nil, nil
	case t.kind == tKeyword && (t.text == "var" || t.text == "let" || t.text == "const"):
		p.pos++
		name := p.next()
		if name.kind != tIdent {
			return nil, jerrf(name.line, "expected identifier after %s", t.text)
		}
		v := &varStmt{nodeBase: nodeBase{t.line}, Name: name.text}
		if p.eatPunct("=") {
			init, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			v.Init = init
		}
		// var a = 1, b = 2; -> desugar by chaining statements is not
		// supported; reject with a clear message.
		if p.atPunct(",") {
			return nil, jerrf(t.line, "multiple declarators per var are unsupported")
		}
		p.semi()
		return v, nil
	case p.atKw("function"):
		fn, err := p.funcExpr()
		if err != nil {
			return nil, err
		}
		f := fn.(*funcLit)
		if f.Name == "" {
			return nil, jerrf(t.line, "function statement needs a name")
		}
		// Desugar: function f(){} ≡ var f = function f(){}
		return &varStmt{nodeBase: nodeBase{t.line}, Name: f.Name, Init: f}, nil
	case p.atKw("return"):
		p.pos++
		r := &returnStmt{nodeBase: nodeBase{t.line}}
		if !p.atPunct(";") && !p.atPunct("}") && !p.at(tEOF) {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		p.semi()
		return r, nil
	case p.atKw("break"):
		p.pos++
		p.semi()
		return &breakStmt{nodeBase{t.line}}, nil
	case p.atKw("continue"):
		p.pos++
		p.semi()
		return &continueStmt{nodeBase{t.line}}, nil
	case p.atKw("if"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		st := &ifStmt{nodeBase: nodeBase{t.line}, C: c, Then: then}
		if p.atKw("else") {
			p.pos++
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.atKw("while"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{nodeBase: nodeBase{t.line}, C: c, Body: body}, nil
	case p.atKw("for"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		f := &forStmt{nodeBase: nodeBase{t.line}}
		if !p.atPunct(";") {
			init, err := p.stmt() // handles var / expr, consumes ';'
			if err != nil {
				return nil, err
			}
			f.Init = init
		} else {
			p.pos++
		}
		if !p.atPunct(";") {
			c, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.C = c
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.atPunct(")") {
			post, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Post = &exprStmt{nodeBase: nodeBase{t.line}, X: post}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		f.Body = body
		return f, nil
	default:
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.semi()
		return &exprStmt{nodeBase: nodeBase{t.line}, X: x}, nil
	}
}

func (p *jsParser) expr() (node, error) { return p.assignExpr() }

func (p *jsParser) assignExpr() (node, error) {
	lhs, err := p.ternaryExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "%="} {
		if p.atPunct(op) {
			line := p.next().line
			rhs, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &assign{nodeBase: nodeBase{line}, Op: op, L: lhs, R: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *jsParser) ternaryExpr() (node, error) {
	c, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if p.atPunct("?") {
		line := p.next().line
		a, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		b, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &ternary{nodeBase: nodeBase{line}, C: c, A: a, B: b}, nil
	}
	return c, nil
}

var jsPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *jsParser) binaryExpr(minPrec int) (node, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tPunct {
			return lhs, nil
		}
		prec, ok := jsPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binary{nodeBase: nodeBase{t.line}, Op: t.text, X: lhs, Y: rhs}
	}
}

func (p *jsParser) unaryExpr() (node, error) {
	t := p.cur()
	if t.kind == tPunct {
		switch t.text {
		case "-", "!", "~", "+":
			p.pos++
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			if t.text == "+" {
				return x, nil
			}
			return &unary{nodeBase: nodeBase{t.line}, Op: t.text, X: x}, nil
		case "++", "--":
			p.pos++
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &incdec{nodeBase: nodeBase{t.line}, Op: t.text, X: x}, nil
		}
	}
	if t.kind == tKeyword && t.text == "typeof" {
		p.pos++
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &unary{nodeBase: nodeBase{t.line}, Op: "typeof", X: x}, nil
	}
	return p.postfixExpr()
}

func (p *jsParser) postfixExpr() (node, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tPunct {
			return x, nil
		}
		switch t.text {
		case "(":
			p.pos++
			c := &call{nodeBase: nodeBase{t.line}, Fn: x}
			for !p.atPunct(")") {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, a)
				if !p.eatPunct(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			x = c
		case "[":
			p.pos++
			i, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &index{nodeBase: nodeBase{t.line}, X: x, I: i}
		case ".":
			p.pos++
			name := p.next()
			if name.kind != tIdent && name.kind != tKeyword {
				return nil, jerrf(name.line, "expected property name")
			}
			x = &member{nodeBase: nodeBase{t.line}, X: x, Name: name.text}
		case "++", "--":
			p.pos++
			x = &incdec{nodeBase: nodeBase{t.line}, Op: t.text, Postfix: true, X: x}
		default:
			return x, nil
		}
	}
}

func (p *jsParser) funcExpr() (node, error) {
	t := p.next() // 'function'
	f := &funcLit{nodeBase: nodeBase{t.line}}
	if p.at(tIdent) {
		f.Name = p.next().text
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.atPunct(")") {
		prm := p.next()
		if prm.kind != tIdent {
			return nil, jerrf(prm.line, "expected parameter name")
		}
		f.Params = append(f.Params, prm.text)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if !p.atPunct("{") {
		return nil, jerrf(p.cur().line, "expected function body")
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *jsParser) primary() (node, error) {
	t := p.next()
	switch t.kind {
	case tNum:
		return &numLit{nodeBase{t.line}, t.num}, nil
	case tStr:
		return &strLit{nodeBase{t.line}, t.str}, nil
	case tIdent:
		return &ident{nodeBase{t.line}, t.text}, nil
	case tKeyword:
		switch t.text {
		case "true":
			return &boolLit{nodeBase{t.line}, true}, nil
		case "false":
			return &boolLit{nodeBase{t.line}, false}, nil
		case "null", "undefined":
			return &nullLit{nodeBase{t.line}}, nil
		case "function":
			p.pos--
			return p.funcExpr()
		case "new":
			// new X(...) — evaluate as a plain call (our stdlib
			// constructors are factory functions).
			return p.postfixExpr()
		}
	case tPunct:
		switch t.text {
		case "(":
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			return x, p.expect(")")
		case "[":
			a := &arrayLit{nodeBase: nodeBase{t.line}}
			for !p.atPunct("]") {
				e, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				a.Elems = append(a.Elems, e)
				if !p.eatPunct(",") {
					break
				}
			}
			return a, p.expect("]")
		case "{":
			o := &objectLit{nodeBase: nodeBase{t.line}}
			for !p.atPunct("}") {
				k := p.next()
				var key string
				switch k.kind {
				case tIdent, tKeyword:
					key = k.text
				case tStr:
					key = k.str
				default:
					return nil, jerrf(k.line, "expected object key")
				}
				if err := p.expect(":"); err != nil {
					return nil, err
				}
				v, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				o.Keys = append(o.Keys, key)
				o.Vals = append(o.Vals, v)
				if !p.eatPunct(",") {
					break
				}
			}
			return o, p.expect("}")
		}
	}
	return nil, jerrf(t.line, "unexpected token %s", t)
}
