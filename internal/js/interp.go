package js

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Value is a JavaScript value: nil (undefined/null), float64, string,
// bool, *Array, *Object, *Closure, or Builtin.
type Value any

// Array is a JS array.
type Array struct{ Elems []Value }

// Object is a JS object.
type Object struct{ Props map[string]Value }

// Closure is a user-defined function with its captured environment.
type Closure struct {
	fn  *funcLit
	env *scope
}

// Builtin is a native binding.
type Builtin func(args []Value) (Value, error)

// scope is a lexical environment. Bindings live in parallel slices
// rather than a map: scopes are small (a handful of locals), most lookups
// hit the innermost frame, and — because cached ASTs reuse the same name
// string across evaluations — the comparisons usually short-circuit on
// pointer equality. This removes a map allocation per block/call entry
// and the string hashing on every variable access, the two hottest
// allocation/lookup sites in the evaluator.
type scope struct {
	names  []string
	vals   []Value
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent}
}

func (s *scope) get(name string) (Value, bool) {
	for c := s; c != nil; c = c.parent {
		for i, n := range c.names {
			if n == name {
				return c.vals[i], true
			}
		}
	}
	return nil, false
}

func (s *scope) set(name string, v Value) {
	for c := s; c != nil; c = c.parent {
		for i, n := range c.names {
			if n == name {
				c.vals[i] = v
				return
			}
		}
	}
	s.define(name, v) // implicit global-ish definition
}

func (s *scope) define(name string, v Value) {
	for i, n := range s.names {
		if n == name {
			s.vals[i] = v
			return
		}
	}
	if s.names == nil {
		// First binding: size for a typical frame up front so the
		// common few-locals scope grows its slices exactly once.
		s.names = make([]string, 0, 4)
		s.vals = make([]Value, 0, 4)
	}
	s.names = append(s.names, name)
	s.vals = append(s.vals, v)
}

// smallNums pre-boxes the integer Values in [-1, 4096): char codes,
// indices, shift/mask intermediates — the numbers hot JS loops produce.
// Converting a float64 to the Value interface allocates 8 bytes on every
// conversion; returning a pre-boxed Value does not, and the values are
// indistinguishable to the evaluator.
const smallNumMax = 4096

var smallNums = func() [smallNumMax + 1]Value {
	var a [smallNumMax + 1]Value
	for i := range a {
		a[i] = float64(i - 1)
	}
	return a
}()

// charVals pre-boxes the 256 one-byte strings charAt/indexing produce.
var charVals = func() [256]Value {
	var a [256]Value
	for i := range a {
		a[i] = string(rune(i))
	}
	return a
}()

// numVal boxes a float64 as a Value, reusing pre-boxed small integers.
func numVal(f float64) Value {
	if i := int(f); float64(i) == f && i >= -1 && i < smallNumMax &&
		!(i == 0 && math.Signbit(f)) {
		return smallNums[i+1]
	}
	return f
}

// control-flow signals travel as errors.
type breakSignal struct{}
type continueSignal struct{}
type returnSignal struct{ v Value }

func (breakSignal) Error() string    { return "break outside loop" }
func (continueSignal) Error() string { return "continue outside loop" }
func (returnSignal) Error() string   { return "return outside function" }

// boundMethod is a string/array method resolved by member access.
type boundMethod struct {
	recv Value
	name string
}

func (e *Engine) evalProgram(prog []node, env *scope) (Value, error) {
	var last Value
	for _, s := range prog {
		v, err := e.eval(s, env)
		if err != nil {
			return nil, err
		}
		last = v
	}
	return last, nil
}

func (e *Engine) evalBlock(stmts []node, env *scope) error {
	for _, s := range stmts {
		if _, err := e.eval(s, env); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) eval(n node, env *scope) (Value, error) {
	e.tick()
	switch x := n.(type) {
	case *numLit:
		return numVal(x.V), nil
	case *strLit:
		return x.V, nil
	case *boolLit:
		return x.V, nil
	case *nullLit:
		return nil, nil
	case *ident:
		v, ok := env.get(x.Name)
		if !ok {
			return nil, jerrf(x.line(), "undefined variable %s", x.Name)
		}
		return v, nil
	case *arrayLit:
		e.alloc(16 + 8*len(x.Elems))
		arr := &Array{}
		for _, el := range x.Elems {
			v, err := e.eval(el, env)
			if err != nil {
				return nil, err
			}
			arr.Elems = append(arr.Elems, v)
		}
		return arr, nil
	case *objectLit:
		e.alloc(32 + 16*len(x.Keys))
		obj := &Object{Props: make(map[string]Value, len(x.Keys))}
		for i, k := range x.Keys {
			v, err := e.eval(x.Vals[i], env)
			if err != nil {
				return nil, err
			}
			obj.Props[k] = v
		}
		return obj, nil
	case *funcLit:
		e.alloc(48)
		return &Closure{fn: x, env: env}, nil

	case *varStmt:
		var v Value
		if x.Init != nil {
			var err error
			v, err = e.eval(x.Init, env)
			if err != nil {
				return nil, err
			}
		}
		env.define(x.Name, v)
		return nil, nil
	case *exprStmt:
		return e.eval(x.X, env)
	case *returnStmt:
		var v Value
		if x.X != nil {
			var err error
			v, err = e.eval(x.X, env)
			if err != nil {
				return nil, err
			}
		}
		return nil, returnSignal{v}
	case *breakStmt:
		return nil, breakSignal{}
	case *continueStmt:
		return nil, continueSignal{}
	case *ifStmt:
		c, err := e.eval(x.C, env)
		if err != nil {
			return nil, err
		}
		if truthy(c) {
			return nil, e.evalBlock(x.Then, newScope(env))
		}
		return nil, e.evalBlock(x.Else, newScope(env))
	case *whileStmt:
		for {
			c, err := e.eval(x.C, env)
			if err != nil {
				return nil, err
			}
			if !truthy(c) {
				return nil, nil
			}
			if err := e.evalBlock(x.Body, newScope(env)); err != nil {
				switch err.(type) {
				case breakSignal:
					return nil, nil
				case continueSignal:
					continue
				}
				return nil, err
			}
		}
	case *forStmt:
		fenv := newScope(env)
		if x.Init != nil {
			if _, err := e.eval(x.Init, fenv); err != nil {
				return nil, err
			}
		}
		for {
			if x.C != nil {
				c, err := e.eval(x.C, fenv)
				if err != nil {
					return nil, err
				}
				if !truthy(c) {
					return nil, nil
				}
			}
			err := e.evalBlock(x.Body, newScope(fenv))
			if err != nil {
				switch err.(type) {
				case breakSignal:
					return nil, nil
				case continueSignal:
					// fall through to post
				default:
					return nil, err
				}
			}
			if x.Post != nil {
				if _, err := e.eval(x.Post, fenv); err != nil {
					return nil, err
				}
			}
		}

	case *unary:
		v, err := e.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			return numVal(-toNum(v)), nil
		case "!":
			return !truthy(v), nil
		case "~":
			return numVal(float64(^toInt32(v))), nil
		case "typeof":
			return typeOf(v), nil
		}
		return nil, jerrf(x.line(), "bad unary %s", x.Op)

	case *binary:
		return e.evalBinary(x, env)
	case *ternary:
		c, err := e.eval(x.C, env)
		if err != nil {
			return nil, err
		}
		if truthy(c) {
			return e.eval(x.A, env)
		}
		return e.eval(x.B, env)
	case *assign:
		return e.evalAssign(x, env)
	case *incdec:
		old, err := e.readLValue(x.X, env)
		if err != nil {
			return nil, err
		}
		n := toNum(old)
		var nv float64
		if x.Op == "++" {
			nv = n + 1
		} else {
			nv = n - 1
		}
		if err := e.writeLValue(x.X, env, numVal(nv)); err != nil {
			return nil, err
		}
		if x.Postfix {
			return numVal(n), nil
		}
		return numVal(nv), nil
	case *index:
		base, err := e.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		idx, err := e.eval(x.I, env)
		if err != nil {
			return nil, err
		}
		return e.indexValue(base, idx, x.line())
	case *member:
		base, err := e.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		return e.memberValue(base, x.Name, x.line())
	case *call:
		return e.evalCall(x, env)
	}
	return nil, jerrf(n.line(), "cannot evaluate %T", n)
}

func (e *Engine) evalBinary(x *binary, env *scope) (Value, error) {
	if x.Op == "&&" {
		l, err := e.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		if !truthy(l) {
			return l, nil
		}
		return e.eval(x.Y, env)
	}
	if x.Op == "||" {
		l, err := e.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		if truthy(l) {
			return l, nil
		}
		return e.eval(x.Y, env)
	}
	l, err := e.eval(x.X, env)
	if err != nil {
		return nil, err
	}
	r, err := e.eval(x.Y, env)
	if err != nil {
		return nil, err
	}
	return e.binop(x.Op, l, r, x.line())
}

func (e *Engine) binop(op string, l, r Value, line int) (Value, error) {
	switch op {
	case "+":
		// String concatenation charges the appended bytes plus header:
		// engines grow strings with amortized reallocation (ropes /
		// doubling buffers), not a full copy per concat.
		if ls, ok := l.(string); ok {
			rs := ToString(r)
			e.alloc(len(rs) + 8)
			return ls + rs, nil
		}
		if rs, ok := r.(string); ok {
			ls := ToString(l)
			e.alloc(len(ls) + 8)
			return ls + rs, nil
		}
		return numVal(toNum(l) + toNum(r)), nil
	case "-":
		return numVal(toNum(l) - toNum(r)), nil
	case "*":
		return numVal(toNum(l) * toNum(r)), nil
	case "/":
		return numVal(toNum(l) / toNum(r)), nil
	case "%":
		return numVal(math.Mod(toNum(l), toNum(r))), nil
	case "&":
		return numVal(float64(toInt32(l) & toInt32(r))), nil
	case "|":
		return numVal(float64(toInt32(l) | toInt32(r))), nil
	case "^":
		return numVal(float64(toInt32(l) ^ toInt32(r))), nil
	case "<<":
		return numVal(float64(toInt32(l) << (uint32(toInt32(r)) & 31))), nil
	case ">>":
		return numVal(float64(toInt32(l) >> (uint32(toInt32(r)) & 31))), nil
	case ">>>":
		return numVal(float64(uint32(toInt32(l)) >> (uint32(toInt32(r)) & 31))), nil
	case "==", "===":
		return jsEquals(l, r), nil
	case "!=", "!==":
		return !jsEquals(l, r), nil
	case "<", ">", "<=", ">=":
		if ls, ok := l.(string); ok {
			if rs, ok2 := r.(string); ok2 {
				return strCompare(op, ls, rs), nil
			}
		}
		a, b := toNum(l), toNum(r)
		switch op {
		case "<":
			return a < b, nil
		case ">":
			return a > b, nil
		case "<=":
			return a <= b, nil
		default:
			return a >= b, nil
		}
	}
	return nil, jerrf(line, "bad operator %s", op)
}

func strCompare(op, a, b string) bool {
	switch op {
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	default:
		return a >= b
	}
}

func (e *Engine) evalAssign(x *assign, env *scope) (Value, error) {
	var v Value
	var err error
	if x.Op == "=" {
		v, err = e.eval(x.R, env)
		if err != nil {
			return nil, err
		}
	} else {
		old, rerr := e.readLValue(x.L, env)
		if rerr != nil {
			return nil, rerr
		}
		r, rerr := e.eval(x.R, env)
		if rerr != nil {
			return nil, rerr
		}
		v, err = e.binop(strings.TrimSuffix(x.Op, "="), old, r, x.line())
		if err != nil {
			return nil, err
		}
	}
	if err := e.writeLValue(x.L, env, v); err != nil {
		return nil, err
	}
	return v, nil
}

func (e *Engine) readLValue(n node, env *scope) (Value, error) {
	return e.eval(n, env)
}

func (e *Engine) writeLValue(n node, env *scope, v Value) error {
	switch t := n.(type) {
	case *ident:
		env.set(t.Name, v)
		return nil
	case *index:
		base, err := e.eval(t.X, env)
		if err != nil {
			return err
		}
		idx, err := e.eval(t.I, env)
		if err != nil {
			return err
		}
		switch b := base.(type) {
		case *Array:
			i := int(toNum(idx))
			if i < 0 {
				return jerrf(t.line(), "negative array index")
			}
			for len(b.Elems) <= i {
				b.Elems = append(b.Elems, nil)
			}
			b.Elems[i] = v
			return nil
		case *Object:
			b.Props[ToString(idx)] = v
			return nil
		}
		return jerrf(t.line(), "cannot index-assign %s", typeOf(base))
	case *member:
		base, err := e.eval(t.X, env)
		if err != nil {
			return err
		}
		if obj, ok := base.(*Object); ok {
			obj.Props[t.Name] = v
			return nil
		}
		return jerrf(t.line(), "cannot set property on %s", typeOf(base))
	}
	return jerrf(n.line(), "invalid assignment target")
}

func (e *Engine) indexValue(base, idx Value, line int) (Value, error) {
	switch b := base.(type) {
	case *Array:
		i := int(toNum(idx))
		if i < 0 || i >= len(b.Elems) {
			return nil, nil // undefined
		}
		return b.Elems[i], nil
	case string:
		i := int(toNum(idx))
		if i < 0 || i >= len(b) {
			return nil, nil
		}
		return charVals[b[i]], nil
	case *Object:
		return b.Props[ToString(idx)], nil
	}
	return nil, jerrf(line, "cannot index %s", typeOf(base))
}

func (e *Engine) memberValue(base Value, name string, line int) (Value, error) {
	switch b := base.(type) {
	case string:
		if name == "length" {
			return numVal(float64(len(b))), nil
		}
		return boundMethod{recv: b, name: name}, nil
	case *Array:
		if name == "length" {
			return numVal(float64(len(b.Elems))), nil
		}
		return boundMethod{recv: b, name: name}, nil
	case *Object:
		if v, ok := b.Props[name]; ok {
			return v, nil
		}
		return nil, nil
	}
	return nil, jerrf(line, "cannot read property %q of %s", name, typeOf(base))
}

func (e *Engine) evalCall(x *call, env *scope) (Value, error) {
	// Method-call fast path: a member callee on a string/array receiver
	// always resolves to a bound method (memberValue has no other
	// outcome for those types), so dispatch it directly instead of
	// boxing a boundMethod through the Value interface — an allocation
	// per call in the hottest loops (s.charAt, s.charCodeAt). The node
	// ticks match the generic path exactly: one for the member node,
	// then its base and the arguments.
	if m, ok := x.Fn.(*member); ok && m.Name != "length" {
		e.tick() // the member node's own evaluation tick
		base, err := e.eval(m.X, env)
		if err != nil {
			return nil, err
		}
		switch base.(type) {
		case string, *Array:
			args, err := e.evalArgs(x, env)
			if err != nil {
				return nil, err
			}
			return e.callMethod(boundMethod{recv: base, name: m.Name}, args, x.line())
		}
		fnv, err := e.memberValue(base, m.Name, m.line())
		if err != nil {
			return nil, err
		}
		args, err := e.evalArgs(x, env)
		if err != nil {
			return nil, err
		}
		return e.apply(fnv, args, x.line())
	}
	fnv, err := e.eval(x.Fn, env)
	if err != nil {
		return nil, err
	}
	args, err := e.evalArgs(x, env)
	if err != nil {
		return nil, err
	}
	return e.apply(fnv, args, x.line())
}

func (e *Engine) evalArgs(x *call, env *scope) ([]Value, error) {
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := e.eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return args, nil
}

func (e *Engine) apply(fnv Value, args []Value, line int) (Value, error) {
	switch f := fnv.(type) {
	case *Closure:
		if e.depth >= maxCallDepth {
			return nil, jerrf(line, "call stack exhausted")
		}
		e.depth++
		defer func() { e.depth-- }()
		fenv := newScope(f.env)
		for i, p := range f.fn.Params {
			if i < len(args) {
				fenv.define(p, args[i])
			} else {
				fenv.define(p, nil)
			}
		}
		if f.fn.Name != "" {
			fenv.define(f.fn.Name, f)
		}
		err := e.evalBlock(f.fn.Body, fenv)
		if err != nil {
			if ret, ok := err.(returnSignal); ok {
				return ret.v, nil
			}
			return nil, err
		}
		return nil, nil
	case Builtin:
		return f(args)
	case boundMethod:
		return e.callMethod(f, args, line)
	}
	return nil, jerrf(line, "%s is not callable", typeOf(fnv))
}

func (e *Engine) callMethod(m boundMethod, args []Value, line int) (Value, error) {
	switch recv := m.recv.(type) {
	case string:
		switch m.name {
		case "charCodeAt":
			i := int(argNum(args, 0))
			if i < 0 || i >= len(recv) {
				return math.NaN(), nil
			}
			return smallNums[int(recv[i])+1], nil
		case "charAt":
			i := int(argNum(args, 0))
			if i < 0 || i >= len(recv) {
				return "", nil
			}
			e.alloc(1)
			return charVals[recv[i]], nil
		case "substring":
			a := int(argNum(args, 0))
			b := len(recv)
			if len(args) > 1 {
				b = int(argNum(args, 1))
			}
			a = clamp(a, 0, len(recv))
			b = clamp(b, 0, len(recv))
			if a > b {
				a, b = b, a
			}
			e.alloc(b - a)
			return recv[a:b], nil
		case "indexOf":
			if len(args) < 1 {
				return numVal(-1), nil
			}
			return numVal(float64(strings.Index(recv, ToString(args[0])))), nil
		case "split":
			sep := ""
			if len(args) > 0 {
				sep = ToString(args[0])
			}
			parts := strings.Split(recv, sep)
			arr := &Array{}
			for _, p := range parts {
				arr.Elems = append(arr.Elems, p)
			}
			e.alloc(len(recv))
			return arr, nil
		case "toUpperCase":
			e.alloc(len(recv))
			return strings.ToUpper(recv), nil
		case "toLowerCase":
			e.alloc(len(recv))
			return strings.ToLower(recv), nil
		}
	case *Array:
		switch m.name {
		case "push":
			recv.Elems = append(recv.Elems, args...)
			e.alloc(8 * len(args))
			return numVal(float64(len(recv.Elems))), nil
		case "pop":
			if len(recv.Elems) == 0 {
				return nil, nil
			}
			v := recv.Elems[len(recv.Elems)-1]
			recv.Elems = recv.Elems[:len(recv.Elems)-1]
			return v, nil
		case "join":
			sep := ","
			if len(args) > 0 {
				sep = ToString(args[0])
			}
			parts := make([]string, len(recv.Elems))
			for i, el := range recv.Elems {
				parts[i] = ToString(el)
			}
			out := strings.Join(parts, sep)
			e.alloc(len(out))
			return out, nil
		}
	}
	return nil, jerrf(line, "unknown method %q on %s", m.name, typeOf(m.recv))
}

func argNum(args []Value, i int) float64 {
	if i >= len(args) {
		return 0
	}
	return toNum(args[i])
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	}
	return true
}

func toNum(v Value) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case bool:
		if x {
			return 1
		}
		return 0
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return math.NaN()
		}
		return f
	case nil:
		return 0
	}
	return math.NaN()
}

func toInt32(v Value) int32 {
	f := toNum(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(int64(f))
}

func jsEquals(l, r Value) bool {
	switch a := l.(type) {
	case nil:
		return r == nil
	case float64:
		return a == toNum(r)
	case string:
		b, ok := r.(string)
		return ok && a == b
	case bool:
		b, ok := r.(bool)
		return ok && a == b
	}
	return l == r // reference equality for arrays/objects/functions
}

func typeOf(v Value) string {
	switch v.(type) {
	case nil:
		return "undefined"
	case float64:
		return "number"
	case string:
		return "string"
	case bool:
		return "boolean"
	case *Array, *Object:
		return "object"
	case *Closure, Builtin, boundMethod:
		return "function"
	}
	return "unknown"
}

// ToString renders a value the way JS string conversion does.
func ToString(v Value) string {
	switch x := v.(type) {
	case nil:
		return "undefined"
	case string:
		return x
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 && !math.Signbit(x) || x == math.Trunc(x) && x < 0 && x > -1e15 {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case *Array:
		parts := make([]string, len(x.Elems))
		for i, el := range x.Elems {
			parts[i] = ToString(el)
		}
		return strings.Join(parts, ",")
	case *Object:
		return "[object Object]"
	}
	return fmt.Sprintf("%v", v)
}
