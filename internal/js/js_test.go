package js

import (
	"encoding/base64"
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/wasp"
)

func eval(t *testing.T, src string) Value {
	t.Helper()
	e := NewEngine(nil)
	v, err := e.Eval(src)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func num(t *testing.T, src string) float64 {
	t.Helper()
	v := eval(t, src)
	f, ok := v.(float64)
	if !ok {
		t.Fatalf("eval %q = %v (%T), want number", src, v, v)
	}
	return f
}

func str(t *testing.T, src string) string {
	t.Helper()
	v := eval(t, src)
	s, ok := v.(string)
	if !ok {
		t.Fatalf("eval %q = %v (%T), want string", src, v, v)
	}
	return s
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 4", 2.5},
		{"10 % 3", 1},
		{"-5 + 3", -2},
		{"2 * 3 - 1", 5},
		{"0x10 + 1", 17},
	}
	for _, tc := range cases {
		if got := num(t, tc.src); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestBitwise(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"12 & 10", 8},
		{"12 | 10", 14},
		{"12 ^ 10", 6},
		{"1 << 4", 16},
		{"-8 >> 1", -4},
		{"~0 >>> 28", 15},
		{"~5", -6},
	}
	for _, tc := range cases {
		if got := num(t, tc.src); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestVariablesAndLoops(t *testing.T) {
	got := num(t, `
var sum = 0;
for (var i = 0; i < 10; i++) {
	if (i % 2 == 0) { continue; }
	sum += i;
}
sum;
`)
	if got != 25 {
		t.Fatalf("sum = %v", got)
	}
}

func TestWhileBreak(t *testing.T) {
	got := num(t, `
var i = 0;
while (true) { i++; if (i >= 7) { break; } }
i;
`)
	if got != 7 {
		t.Fatalf("i = %v", got)
	}
}

func TestFunctionsAndClosures(t *testing.T) {
	got := num(t, `
function adder(n) {
	return function(x) { return x + n; };
}
var add5 = adder(5);
add5(37);
`)
	if got != 42 {
		t.Fatalf("closure = %v", got)
	}
}

func TestRecursion(t *testing.T) {
	got := num(t, `
function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
fib(12);
`)
	if got != 144 {
		t.Fatalf("fib(12) = %v", got)
	}
}

func TestStrings(t *testing.T) {
	if got := str(t, `"foo" + "bar"`); got != "foobar" {
		t.Fatalf("concat = %q", got)
	}
	if got := num(t, `"hello".length`); got != 5 {
		t.Fatalf("length = %v", got)
	}
	if got := str(t, `"hello".charAt(1)`); got != "e" {
		t.Fatalf("charAt = %q", got)
	}
	if got := num(t, `"A".charCodeAt(0)`); got != 65 {
		t.Fatalf("charCodeAt = %v", got)
	}
	if got := str(t, `String.fromCharCode(104, 105)`); got != "hi" {
		t.Fatalf("fromCharCode = %q", got)
	}
	if got := str(t, `"abcdef".substring(2, 4)`); got != "cd" {
		t.Fatalf("substring = %q", got)
	}
	if got := str(t, `"num: " + 42`); got != "num: 42" {
		t.Fatalf("num concat = %q", got)
	}
}

func TestArraysAndObjects(t *testing.T) {
	got := num(t, `
var a = [1, 2, 3];
a.push(4);
a[0] + a[3] + a.length;
`)
	if got != 9 {
		t.Fatalf("array = %v", got)
	}
	got2 := num(t, `
var o = { x: 10, y: 20 };
o.z = o.x + o.y;
o["z"] + 1;
`)
	if got2 != 31 {
		t.Fatalf("object = %v", got2)
	}
}

func TestTernaryAndLogical(t *testing.T) {
	if got := num(t, `1 ? 10 : 20`); got != 10 {
		t.Fatal("ternary")
	}
	if got := num(t, `0 || 5`); got != 5 {
		t.Fatal("|| short circuit value")
	}
	if got := num(t, `3 && 4`); got != 4 {
		t.Fatal("&& value")
	}
	// Short circuit must not evaluate the right side.
	if got := num(t, `var n = 0; function boom() { n = 99; return 1; } false && boom(); n;`); got != 0 {
		t.Fatal("&& evaluated rhs")
	}
}

func TestTypeof(t *testing.T) {
	if got := str(t, `typeof 5`); got != "number" {
		t.Fatal(got)
	}
	if got := str(t, `typeof "x"`); got != "string" {
		t.Fatal(got)
	}
	if got := str(t, `typeof undefined`); got != "undefined" {
		t.Fatal(got)
	}
}

func TestMathBuiltins(t *testing.T) {
	if got := num(t, `Math.floor(3.7)`); got != 3 {
		t.Fatal("floor")
	}
	if got := num(t, `Math.max(2, Math.abs(-9))`); got != 9 {
		t.Fatal("max/abs")
	}
}

func TestErrors(t *testing.T) {
	e := NewEngine(nil)
	for _, src := range []string{
		`undefined_variable_xyz`,
		`var a = [1]; a.frobnicate()`,
		`5(`,
		`function f( {`,
		`"unterminated`,
		`5 = 3`,
	} {
		if _, err := e.Eval(src); err == nil {
			t.Errorf("Eval(%q): expected error", src)
		}
	}
}

func TestRunawayRecursionCaught(t *testing.T) {
	e := NewEngine(nil)
	_, err := e.Eval(`function f() { return f(); } f();`)
	if err == nil || !strings.Contains(err.Error(), "stack") {
		t.Fatalf("err = %v, want stack exhaustion", err)
	}
}

func TestBase64MatchesStdlib(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 57, 100, 255} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 13)
		}
		e := NewEngine(nil)
		e.Bind("input", string(data))
		v, err := e.Eval(Base64JS)
		if err != nil {
			t.Fatal(err)
		}
		want := base64.StdEncoding.EncodeToString(data)
		if ToString(v) != want {
			t.Fatalf("n=%d: js b64 = %q, want %q", n, ToString(v), want)
		}
	}
}

func TestChargesAccumulate(t *testing.T) {
	var total uint64
	e := NewEngine(func(c uint64) { total += c })
	if total < EngineInitCost {
		t.Fatal("init not charged")
	}
	before := total
	e.InstallBindings(clientBindings())
	if total-before < BindingsCost {
		t.Fatal("bindings not charged")
	}
	before = total
	if _, err := e.Eval(`1 + 1`); err != nil {
		t.Fatal(err)
	}
	if total == before {
		t.Fatal("eval not charged")
	}
	before = total
	e.Close()
	if total-before < TeardownCost {
		t.Fatal("teardown not charged")
	}
	e.Close() // idempotent
	if total-before != TeardownCost {
		t.Fatal("double teardown charged twice")
	}
}

func TestEngineClosedRejectsEval(t *testing.T) {
	e := NewEngine(nil)
	e.Close()
	if _, err := e.Eval("1"); err == nil {
		t.Fatal("eval after close accepted")
	}
}

func TestVirtineEncodeMatchesNative(t *testing.T) {
	w := wasp.New()
	data := []byte("the quick brown fox jumps over the lazy dog")
	v := NewVirtineJS(w, true, true)
	got, err := v.Encode(data, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	want := base64.StdEncoding.EncodeToString(data)
	if got != want {
		t.Fatalf("virtine b64 = %q, want %q", got, want)
	}
}

func TestFig14Shape(t *testing.T) {
	w := wasp.New()
	pts, err := RunFig14(w, 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) Fig14Point {
		for _, p := range pts {
			if p.Name == name {
				return p
			}
		}
		t.Fatalf("missing point %s", name)
		return Fig14Point{}
	}
	native := get("native")
	virt := get("virtine")
	snapNT := get("virtine+snapshot+NT")

	// §6.5 structural claims:
	// 1. Native baseline ≈ 419 µs (we accept 300-550).
	if native.Micros < 300 || native.Micros > 550 {
		t.Fatalf("native baseline = %.0f µs, want ≈419", native.Micros)
	}
	// 2. The plain virtine is slower than native by roughly +125 µs.
	extra := virt.Micros - native.Micros
	if extra < 40 || extra > 300 {
		t.Fatalf("virtine overhead = %.0f µs, want ≈125", extra)
	}
	// 3. Snapshot+NT drops below native — "the virtine can almost
	//    entirely avoid the cost of allocating and freeing the Duktape
	//    context" — landing near 137 µs.
	if snapNT.Slowdown >= 1 {
		t.Fatalf("snapshot+NT slowdown = %.2f, want < 1", snapNT.Slowdown)
	}
	if snapNT.Micros < 80 || snapNT.Micros > 260 {
		t.Fatalf("snapshot+NT = %.0f µs, want ≈137", snapNT.Micros)
	}
	// 4. Optimization ordering: each optimization helps.
	if !(get("virtine+snapshot").Cycles < virt.Cycles &&
		get("virtine NT").Cycles < virt.Cycles &&
		snapNT.Cycles < get("virtine+snapshot").Cycles &&
		snapNT.Cycles < get("virtine NT").Cycles) {
		t.Fatalf("optimization ordering violated: %+v", pts)
	}
}
