// Package js implements a small JavaScript engine from scratch — the
// stand-in for Duktape in the §6.5 experiment. Like Duktape it is an
// embeddable, portable tree-walking interpreter with no JIT; unlike
// Duktape it is written in Go and charges virtual cycles for engine
// allocation, native-binding population, parsing, evaluation, and
// teardown, so the Fig 14 cost structure (engine init dominating short
// scripts, teardown avoidable with virtine reset) is measurable.
//
// Supported language: var declarations, functions (with closures),
// if/else, while, for, return, break, continue, numbers (float64),
// strings, booleans, null, arrays, objects, the usual operators
// (arithmetic, comparison, logical with short-circuit, bitwise on int32
// semantics, string +), indexing, member access, method calls, and a
// small standard library (string charAt/charCodeAt/length/substring,
// array push/length, String.fromCharCode, Math.floor).
package js

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tNum
	tStr
	tIdent
	tKeyword
	tPunct
)

type token struct {
	kind tokKind
	text string
	num  float64
	str  string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "<eof>"
	case tNum:
		return strconv.FormatFloat(t.num, 'g', -1, 64)
	case tStr:
		return strconv.Quote(t.str)
	}
	return t.text
}

var jsKeywords = map[string]bool{
	"var": true, "function": true, "return": true, "if": true, "else": true,
	"while": true, "for": true, "break": true, "continue": true,
	"true": true, "false": true, "null": true, "undefined": true,
	"new": true, "typeof": true, "let": true, "const": true,
}

// Error is a JS engine diagnostic.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("js: line %d: %s", e.Line, e.Msg) }

func jerrf(line int, format string, args ...any) *Error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, jerrf(line, "unterminated comment")
			}
			i += 2
		case c >= '0' && c <= '9', c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9':
			start := i
			if c == '0' && i+1 < n && (src[i+1] == 'x' || src[i+1] == 'X') {
				i += 2
				for i < n && isHexDigit(src[i]) {
					i++
				}
				v, err := strconv.ParseUint(src[start+2:i], 16, 64)
				if err != nil {
					return nil, jerrf(line, "bad hex literal")
				}
				toks = append(toks, token{kind: tNum, num: float64(v), line: line})
				continue
			}
			for i < n && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' || src[i] == 'e' || src[i] == 'E') {
				i++
			}
			v, err := strconv.ParseFloat(src[start:i], 64)
			if err != nil {
				return nil, jerrf(line, "bad number %q", src[start:i])
			}
			toks = append(toks, token{kind: tNum, num: v, line: line})
		case c == '"' || c == '\'':
			quote := c
			i++
			var sb strings.Builder
			for i < n && src[i] != quote {
				if src[i] == '\n' {
					return nil, jerrf(line, "newline in string")
				}
				if src[i] == '\\' && i+1 < n {
					switch src[i+1] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case 'r':
						sb.WriteByte('\r')
					case '0':
						sb.WriteByte(0)
					default:
						sb.WriteByte(src[i+1])
					}
					i += 2
					continue
				}
				sb.WriteByte(src[i])
				i++
			}
			if i >= n {
				return nil, jerrf(line, "unterminated string")
			}
			i++
			toks = append(toks, token{kind: tStr, str: sb.String(), line: line})
		case isJSIdentStart(c):
			start := i
			for i < n && isJSIdentCont(src[i]) {
				i++
			}
			text := src[start:i]
			k := tIdent
			if jsKeywords[text] {
				k = tKeyword
			}
			toks = append(toks, token{kind: k, text: text, line: line})
		default:
			matched := false
			for _, p := range []string{
				"===", "!==", ">>>", "==", "!=", "<=", ">=", "&&", "||",
				"<<", ">>", "+=", "-=", "*=", "/=", "%=", "++", "--",
			} {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{kind: tPunct, text: p, line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("+-*/%<>=!&|^~(){}[];,.?:", rune(c)) {
				toks = append(toks, token{kind: tPunct, text: string(c), line: line})
				i++
				continue
			}
			return nil, jerrf(line, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{kind: tEOF, line: line})
	return toks, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
func isJSIdentStart(c byte) bool {
	return c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isJSIdentCont(c byte) bool { return isJSIdentStart(c) || c >= '0' && c <= '9' }
