package js

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/hypercall"
	"repro/internal/wasp"
)

// This file is the §6.5 experiment: the JavaScript engine embedded in a
// virtine via the Wasp runtime API (no language extensions), with exactly
// three hypercalls — snapshot(), get_data(), return_data() — and the
// Fig 14 optimization matrix:
//
//	native                  engine init + bindings + eval + teardown
//	virtine                 the same, inside a virtine (boot + image copy)
//	virtine+snapshot        engine init captured in the snapshot; restored
//	                        runs skip init and bindings (Fig 7)
//	virtine NT              "no teardown": the engine is never freed — the
//	                        VM reset discards it
//	virtine+snapshot+NT     both: restore + eval only; ≈ the paper's 137 µs
//	                        against a 419 µs native baseline

// DuktapeImagePad sizes the virtine image like the paper's Duktape build
// (≈578 KB, §7.2).
const DuktapeImagePad = 578 << 10

// engineReady is the opaque snapshot state marking that the engine heap
// (and bindings) live in the captured memory image.
type engineReady struct{ withBindings bool }

// dataBuf is where the workload stages get_data/return_data payloads in
// guest memory.
const dataBuf = guest.HeapBase

// VirtineJS is the Duktape-in-a-virtine client.
type VirtineJS struct {
	W          *wasp.Wasp
	img        *guest.Image
	pol        hypercall.Policy
	NoTeardown bool
	Snapshot   bool
}

// NewVirtineJS builds the JS virtine with the given optimization flags.
// Distinct flag combinations get distinct image names (their snapshots
// differ).
func NewVirtineJS(w *wasp.Wasp, snapshot, noTeardown bool) *VirtineJS {
	v := &VirtineJS{
		W:          w,
		pol:        hypercall.MaskOf(hypercall.NrGetData, hypercall.NrReturnData),
		Snapshot:   snapshot,
		NoTeardown: noTeardown,
	}
	name := fmt.Sprintf("duktape-virtine-s%v-nt%v", snapshot, noTeardown)
	img := guest.NativeBootStub(name, v.workload, DuktapeImagePad)
	v.img = img
	return v
}

// workload runs inside the virtine (execution environment B, Fig 10).
func (v *VirtineJS) workload(a any) error {
	n := a.(*wasp.NativeCtx)
	charge := func(c uint64) { n.Charge(c) }

	var eng *Engine
	if st := n.Restored(); st != nil {
		// The initialized engine heap arrived with the snapshot
		// restore (already charged as the memcpy); rebuilding our Go
		// representation of it is free.
		eng = NewRestoredEngine(charge)
	} else {
		eng = NewEngine(charge) // charges EngineInitCost
		eng.InstallBindings(clientBindings())
		n.TakeSnapshot(engineReady{withBindings: true})
	}

	// get_data: ask the hypervisor for the payload (§6.5).
	got, err := n.Hypercall(hypercall.NrGetData, dataBuf, 1<<20)
	if err != nil {
		return err
	}
	mem := n.Mem()
	input := string(mem[dataBuf : dataBuf+got])

	eng.Bind("input", input)
	out, err := eng.Eval(Base64JS)
	if err != nil {
		return err
	}
	encoded := ToString(out)

	copy(mem[dataBuf:], encoded)
	if _, err := n.Hypercall(hypercall.NrReturnData, dataBuf, uint64(len(encoded))); err != nil {
		return err
	}
	if !v.NoTeardown {
		eng.Close() // charges TeardownCost
	}
	_, err = n.Hypercall(hypercall.NrExit, 0)
	return err
}

// Encode runs one base64 encoding in a virtine, returning the encoded
// string and advancing clk.
func (v *VirtineJS) Encode(data []byte, clk *cycles.Clock) (string, error) {
	env := hypercall.NewEnv()
	env.DataIn = data
	res, err := v.W.Run(v.img, wasp.RunConfig{
		Policy:   v.pol,
		Env:      env,
		Snapshot: v.Snapshot,
	}, clk)
	if err != nil {
		return "", err
	}
	return string(res.DataOut), nil
}

// NativeEncode is the baseline: allocate a context, populate bindings,
// evaluate, tear down — all in the client's own address space.
func NativeEncode(data []byte, clk *cycles.Clock) (string, error) {
	charge := func(c uint64) { clk.Advance(c) }
	eng := NewEngine(charge)
	eng.InstallBindings(clientBindings())
	clk.Advance(cycles.MemcpyCost(len(data)))
	eng.Bind("input", string(data))
	out, err := eng.Eval(Base64JS)
	if err != nil {
		return "", err
	}
	encoded := ToString(out)
	clk.Advance(cycles.MemcpyCost(len(encoded)))
	eng.Close()
	return encoded, nil
}

// clientBindings are the native functions the §6.5 client registers.
func clientBindings() map[string]Builtin {
	return map[string]Builtin{
		"log": func(args []Value) (Value, error) { return nil, nil },
		"len": func(args []Value) (Value, error) {
			if len(args) == 0 {
				return numVal(0), nil
			}
			return numVal(float64(len(ToString(args[0])))), nil
		},
	}
}

// NewRestoredEngine returns an engine whose heap came from a snapshot:
// no initialization cost is charged (the restore memcpy already was),
// and the core object graph plus client bindings are considered present.
func NewRestoredEngine(charge func(uint64)) *Engine {
	e := &Engine{global: newScope(nil), charge: charge}
	e.installCore()
	for name, fn := range clientBindings() {
		e.global.define(name, fn)
	}
	return e
}

// Fig14Variant names one bar of Fig 14.
type Fig14Variant struct {
	Name       string
	Snapshot   bool
	NoTeardown bool
}

// Fig14Variants is the experiment matrix.
var Fig14Variants = []Fig14Variant{
	{"virtine", false, false},
	{"virtine+snapshot", true, false},
	{"virtine NT", false, true},
	{"virtine+snapshot+NT", true, true},
}

// Fig14Point is one measured bar.
type Fig14Point struct {
	Name     string
	Cycles   uint64 // mean per invocation
	Micros   float64
	Slowdown float64 // vs native
}

// RunFig14 measures the native baseline and all virtine variants with
// the given payload size, averaging over trials (after one warm-up run
// per variant to populate pool and snapshot).
func RunFig14(w *wasp.Wasp, dataLen, trials int) ([]Fig14Point, error) {
	data := make([]byte, dataLen)
	for i := range data {
		data[i] = byte(i * 31)
	}
	var out []Fig14Point

	nclk := cycles.NewClock()
	var nativeOut string
	for i := 0; i < trials; i++ {
		s, err := NativeEncode(data, nclk)
		if err != nil {
			return nil, err
		}
		nativeOut = s
	}
	native := nclk.Now() / uint64(trials)
	out = append(out, Fig14Point{Name: "native", Cycles: native, Micros: cycles.Micros(native), Slowdown: 1})

	for _, variant := range Fig14Variants {
		v := NewVirtineJS(w, variant.Snapshot, variant.NoTeardown)
		if _, err := v.Encode(data, cycles.NewClock()); err != nil {
			return nil, err // warm-up (takes the snapshot)
		}
		clk := cycles.NewClock()
		for i := 0; i < trials; i++ {
			got, err := v.Encode(data, clk)
			if err != nil {
				return nil, err
			}
			if got != nativeOut {
				return nil, fmt.Errorf("js: %s output mismatch", variant.Name)
			}
		}
		mean := clk.Now() / uint64(trials)
		out = append(out, Fig14Point{
			Name:     variant.Name,
			Cycles:   mean,
			Micros:   cycles.Micros(mean),
			Slowdown: float64(mean) / float64(native),
		})
	}
	return out, nil
}
