package js

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Engine lifecycle costs, calibrated so the Fig 14 native baseline —
// allocate a context, populate native bindings, evaluate the base64
// workload, tear down — lands at the paper's 419 µs (≈1.13 M cycles at
// 2.69 GHz), and the fully optimized virtine (snapshot + no-teardown,
// §6.5) at ≈137 µs.
const (
	// EngineInitCost: heap arena setup, built-in object graph, string
	// intern table — Duktape's duk_create_heap.
	EngineInitCost = 672_000
	// BindingsCost: registering the client's native functions.
	BindingsCost = 81_000
	// TeardownCost: walking and freeing the heap — duk_destroy_heap.
	// The virtine NT variants skip this by discarding the VM instead.
	TeardownCost = 242_000
	// NodeCost is charged per AST-node evaluation.
	NodeCost = 8
	// ParseTokenCost is charged per token during parsing.
	ParseTokenCost = 40
	// AllocPerByte approximates allocator work per byte allocated.
	AllocPerByte = 1
)

// Engine is one JavaScript context (a Duktape heap).
type Engine struct {
	global *scope
	charge func(uint64)
	depth  int
	closed bool

	// pending batches virtual-cycle charges (node ticks, allocator
	// work) and flushes them to the charge hook at public API
	// boundaries. The sum reaching the clock is identical to per-node
	// charging — nothing observes the clock mid-evaluation — but the
	// hook is invoked once per Eval instead of once per AST node.
	pending uint64
}

const maxCallDepth = 2000

// NewEngine allocates a fresh context, charging EngineInitCost. The
// charge hook may be nil (uninstrumented use).
func NewEngine(charge func(uint64)) *Engine {
	e := &Engine{global: newScope(nil), charge: charge}
	e.chargeCost(EngineInitCost)
	e.installCore()
	e.flushCharges()
	return e
}

func (e *Engine) chargeCost(c uint64) {
	if e.charge != nil {
		e.pending += c
	}
}

// flushCharges pushes batched costs to the charge hook. Every public
// method that charges ends with one.
func (e *Engine) flushCharges() {
	if e.pending != 0 && e.charge != nil {
		e.charge(e.pending)
		e.pending = 0
	}
}

func (e *Engine) tick() { e.chargeCost(NodeCost) }

func (e *Engine) alloc(bytes int) {
	if bytes > 0 {
		e.chargeCost(uint64(bytes) * AllocPerByte)
	}
}

// installCore sets up the minimal built-in object graph (part of engine
// init, not client bindings).
func (e *Engine) installCore() {
	mathObj := &Object{Props: map[string]Value{
		"floor": Builtin(func(args []Value) (Value, error) {
			return numVal(math.Floor(argNum(args, 0))), nil
		}),
		"ceil": Builtin(func(args []Value) (Value, error) {
			return numVal(math.Ceil(argNum(args, 0))), nil
		}),
		"abs": Builtin(func(args []Value) (Value, error) {
			return numVal(math.Abs(argNum(args, 0))), nil
		}),
		"min": Builtin(func(args []Value) (Value, error) {
			return numVal(math.Min(argNum(args, 0), argNum(args, 1))), nil
		}),
		"max": Builtin(func(args []Value) (Value, error) {
			return numVal(math.Max(argNum(args, 0), argNum(args, 1))), nil
		}),
	}}
	strObj := &Object{Props: map[string]Value{
		"fromCharCode": Builtin(func(args []Value) (Value, error) {
			b := make([]byte, len(args))
			for i, a := range args {
				b[i] = byte(int(toNum(a)))
			}
			return string(b), nil
		}),
	}}
	e.global.define("Math", mathObj)
	e.global.define("String", strObj)
}

// InstallBindings registers client-provided native functions, charging
// the §6.5 bindings cost once.
func (e *Engine) InstallBindings(bindings map[string]Builtin) {
	e.chargeCost(BindingsCost)
	for name, fn := range bindings {
		e.global.define(name, fn)
	}
	e.flushCharges()
}

// Bind registers one global value without the bulk-bindings charge.
func (e *Engine) Bind(name string, v Value) { e.global.define(name, v) }

// progCache holds parsed programs keyed by source text — the JS-level
// analogue of the CPU's predecoded instruction cache. Parsing is pure and
// the AST is never mutated by evaluation, so a program is decoded once
// per process instead of once per Eval; the per-token parse cost is still
// charged to every run's clock (virtual cycles model the guest engine,
// which really does re-parse). The cache is bounded; at capacity an
// arbitrary entry is evicted for the newcomer, so long-lived processes
// with many distinct sources keep a rotating working set instead of
// locking in the first programs forever.
var (
	progCache     sync.Map // source string → *cachedProg
	progCacheSize atomic.Int32
)

const progCacheMax = 64

type cachedProg struct {
	prog  []node
	ntoks int
}

func parseCached(src string) ([]node, int, error) {
	if c, ok := progCache.Load(src); ok {
		cp := c.(*cachedProg)
		return cp.prog, cp.ntoks, nil
	}
	prog, ntoks, err := parse(src)
	if err != nil {
		return nil, 0, err
	}
	if progCacheSize.Load() >= progCacheMax {
		progCache.Range(func(k, _ any) bool {
			if _, ok := progCache.LoadAndDelete(k); ok {
				progCacheSize.Add(-1)
			}
			return false
		})
	}
	if _, loaded := progCache.LoadOrStore(src, &cachedProg{prog: prog, ntoks: ntoks}); !loaded {
		progCacheSize.Add(1)
	}
	return prog, ntoks, nil
}

// Eval parses and evaluates src in the engine's global scope, returning
// the value of the last statement.
func (e *Engine) Eval(src string) (Value, error) {
	if e.closed {
		return nil, fmt.Errorf("js: engine used after Close")
	}
	prog, ntoks, err := parseCached(src)
	if err != nil {
		return nil, err
	}
	e.chargeCost(uint64(ntoks) * ParseTokenCost)
	defer e.flushCharges()
	v, err := e.evalProgram(prog, e.global)
	if err != nil {
		if _, ok := err.(returnSignal); ok {
			return nil, fmt.Errorf("js: return outside function")
		}
		return nil, err
	}
	return v, nil
}

// CallFunction invokes a previously defined global function by name.
func (e *Engine) CallFunction(name string, args ...Value) (Value, error) {
	fn, ok := e.global.get(name)
	if !ok {
		return nil, fmt.Errorf("js: no function %q", name)
	}
	defer e.flushCharges()
	return e.apply(fn, args, 0)
}

// Close tears the context down, charging TeardownCost. The no-teardown
// virtine optimization (§6.5) simply never calls Close: the context is
// discarded with the VM reset instead.
func (e *Engine) Close() {
	if !e.closed {
		e.chargeCost(TeardownCost)
		e.closed = true
		e.flushCharges()
	}
}

// Closed reports whether Close ran.
func (e *Engine) Closed() bool { return e.closed }

// Base64JS is the §6.5 workload: a base64 encoder written in JavaScript,
// encoding the global `input` string.
const Base64JS = `
function b64encode(data) {
	var tbl = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
	var out = "";
	var i = 0;
	var n = data.length;
	while (i + 2 < n) {
		var b0 = data.charCodeAt(i);
		var b1 = data.charCodeAt(i + 1);
		var b2 = data.charCodeAt(i + 2);
		out = out + tbl.charAt((b0 >> 2) & 63);
		out = out + tbl.charAt(((b0 << 4) | (b1 >> 4)) & 63);
		out = out + tbl.charAt(((b1 << 2) | (b2 >> 6)) & 63);
		out = out + tbl.charAt(b2 & 63);
		i = i + 3;
	}
	var rem = n - i;
	if (rem == 1) {
		var c0 = data.charCodeAt(i);
		out = out + tbl.charAt((c0 >> 2) & 63);
		out = out + tbl.charAt((c0 << 4) & 63);
		out = out + "==";
	} else if (rem == 2) {
		var d0 = data.charCodeAt(i);
		var d1 = data.charCodeAt(i + 1);
		out = out + tbl.charAt((d0 >> 2) & 63);
		out = out + tbl.charAt(((d0 << 4) | (d1 >> 4)) & 63);
		out = out + tbl.charAt((d1 << 2) & 63);
		out = out + "=";
	}
	return out;
}
b64encode(input);
`
