package js

import "testing"

// Whole-program tests exercising the engine the way §6.5 workloads do.

func TestProgramQuicksort(t *testing.T) {
	got := str(t, `
function qsort(a) {
	if (a.length <= 1) { return a; }
	var pivot = a[0];
	var left = [];
	var right = [];
	for (var i = 1; i < a.length; i++) {
		if (a[i] < pivot) { left.push(a[i]); } else { right.push(a[i]); }
	}
	var out = qsort(left);
	out.push(pivot);
	var r = qsort(right);
	for (var j = 0; j < r.length; j++) { out.push(r[j]); }
	return out;
}
qsort([5, 3, 8, 1, 9, 2, 7]).join(",");
`)
	if got != "1,2,3,5,7,8,9" {
		t.Fatalf("qsort = %q", got)
	}
}

func TestProgramObjectAggregation(t *testing.T) {
	got := num(t, `
var orders = [
	{ item: "widget", qty: 3, price: 5 },
	{ item: "gadget", qty: 1, price: 20 },
	{ item: "widget", qty: 2, price: 5 }
];
var total = 0;
var byItem = {};
for (var i = 0; i < orders.length; i++) {
	var o = orders[i];
	total += o.qty * o.price;
	if (byItem[o.item]) {
		byItem[o.item] = byItem[o.item] + o.qty;
	} else {
		byItem[o.item] = o.qty;
	}
}
total + byItem["widget"] * 100 + byItem.gadget * 1000;
`)
	// total = 15 + 20 + 10 = 45; widget 5 -> 500; gadget 1 -> 1000
	if got != 45+500+1000 {
		t.Fatalf("aggregation = %v", got)
	}
}

func TestProgramClosureCounter(t *testing.T) {
	got := num(t, `
function makeCounter() {
	var n = 0;
	return function() { n = n + 1; return n; };
}
var c1 = makeCounter();
var c2 = makeCounter();
c1(); c1(); c1();
c2();
c1() * 10 + c2();
`)
	// c1 called 4 times -> 4; c2 called twice -> 2.
	if got != 42 {
		t.Fatalf("closures = %v", got)
	}
}

func TestProgramStringProcessing(t *testing.T) {
	got := str(t, `
var words = "the quick brown fox".split(" ");
var out = "";
for (var i = 0; i < words.length; i++) {
	var w = words[i];
	out = out + w.charAt(0).toUpperCase() + w.substring(1);
	if (i < words.length - 1) { out = out + " "; }
}
out;
`)
	if got != "The Quick Brown Fox" {
		t.Fatalf("title case = %q", got)
	}
}

func TestProgramFizzBuzzHash(t *testing.T) {
	got := num(t, `
var h = 0;
for (var i = 1; i <= 30; i++) {
	var s;
	if (i % 15 == 0) { s = "fizzbuzz"; }
	else if (i % 3 == 0) { s = "fizz"; }
	else if (i % 5 == 0) { s = "buzz"; }
	else { s = "" + i; }
	for (var j = 0; j < s.length; j++) {
		h = (h * 31 + s.charCodeAt(j)) % 1000000007;
	}
}
h;
`)
	// Compute the same in Go.
	var h int64
	for i := 1; i <= 30; i++ {
		var s string
		switch {
		case i%15 == 0:
			s = "fizzbuzz"
		case i%3 == 0:
			s = "fizz"
		case i%5 == 0:
			s = "buzz"
		default:
			s = ToString(float64(i))
		}
		for _, c := range []byte(s) {
			h = (h*31 + int64(c)) % 1000000007
		}
	}
	if int64(got) != h {
		t.Fatalf("fizzbuzz hash = %v, want %d", got, h)
	}
}

func TestProgramHigherOrderFunctions(t *testing.T) {
	got := num(t, `
function map(a, f) {
	var out = [];
	for (var i = 0; i < a.length; i++) { out.push(f(a[i])); }
	return out;
}
function reduce(a, f, init) {
	var acc = init;
	for (var i = 0; i < a.length; i++) { acc = f(acc, a[i]); }
	return acc;
}
var xs = [1, 2, 3, 4, 5];
var squares = map(xs, function(x) { return x * x; });
reduce(squares, function(a, b) { return a + b; }, 0);
`)
	if got != 55 {
		t.Fatalf("sum of squares = %v", got)
	}
}

func TestProgramTernaryChain(t *testing.T) {
	got := str(t, `
function grade(score) {
	return score >= 90 ? "A" : score >= 80 ? "B" : score >= 70 ? "C" : "F";
}
grade(95) + grade(85) + grade(72) + grade(40);
`)
	if got != "ABCF" {
		t.Fatalf("grades = %q", got)
	}
}

func TestNativeBindingsCallable(t *testing.T) {
	e := NewEngine(nil)
	e.InstallBindings(map[string]Builtin{
		"double": func(args []Value) (Value, error) {
			return argNum(args, 0) * 2, nil
		},
	})
	v, err := e.Eval(`double(21)`)
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 42 {
		t.Fatalf("binding = %v", v)
	}
}

func TestCallFunctionAPI(t *testing.T) {
	e := NewEngine(nil)
	if _, err := e.Eval(`function add(a, b) { return a + b; }`); err != nil {
		t.Fatal(err)
	}
	v, err := e.CallFunction("add", float64(40), float64(2))
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 42 {
		t.Fatalf("CallFunction = %v", v)
	}
	if _, err := e.CallFunction("nope"); err == nil {
		t.Fatal("missing function accepted")
	}
}

func TestToStringFormats(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{nil, "undefined"},
		{true, "true"},
		{float64(42), "42"},
		{float64(-17), "-17"},
		{float64(2.5), "2.5"},
		{"s", "s"},
		{&Array{Elems: []Value{float64(1), float64(2)}}, "1,2"},
		{&Object{}, "[object Object]"},
	}
	for _, tc := range cases {
		if got := ToString(tc.v); got != tc.want {
			t.Errorf("ToString(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
