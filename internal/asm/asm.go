// Package asm implements a two-pass assembler for the VX instruction set.
//
// The virtine toolchain uses it the way the paper uses NASM: hand-written
// boot stubs and microbenchmark kernels ("roughly 160 lines of assembly",
// §4.2) are assembled into flat binary images loaded at guest address
// 0x8000. Source may mix operating widths with the .bits directive, just
// as x86 boot code does: the encoder emits immediates at the width in
// force, and the CPU decodes at whatever mode it is in when it reaches
// that code.
//
// Syntax summary:
//
//	; comment
//	.bits 16|32|64       set operating width
//	.org  ADDR           set load/origin address (default 0x8000)
//	.equ  NAME, EXPR     define a constant
//	.db B, B, ...        emit bytes       .dd V  emit 4 bytes
//	.dw V                emit 2 bytes     .dq V  emit 8 bytes
//	.word V              emit at current width
//	.zero N              emit N zero bytes
//	.align N             pad to N-byte alignment
//	label:               define a label
//	mov rax, rbx         register-register
//	mov rax, 42          register-immediate (also labels / .equ names)
//	load rax, [rbp-8]    memory load; loadb/storeb for bytes
//	store [rbp+16], rax
//	out 0x01, rdi        hypercall trap
//	ljmp32 LABEL         far jump completing a mode switch (16/32/64)
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Program is the result of assembling one source file.
type Program struct {
	Code      []byte
	Origin    uint64 // load address of Code[0]
	Entry     uint64 // address of the `_start` label, or Origin
	StartMode isa.Mode
	Labels    map[string]uint64
}

// Error is an assembler diagnostic carrying a line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type stmt struct {
	line  int
	label string // label defined on this line, if any
	mnem  string
	args  []string
	mode  isa.Mode // mode in force for this statement
	addr  uint64   // filled in pass 1
	size  int
}

type assembler struct {
	stmts  []stmt
	labels map[string]uint64
	equs   map[string]uint64
	origin uint64
	start  isa.Mode
}

// Assemble assembles src into a Program.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		labels: make(map[string]uint64),
		equs:   make(map[string]uint64),
		origin: 0x8000,
		start:  isa.Mode16,
	}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	code, err := a.emit()
	if err != nil {
		return nil, err
	}
	entry := a.origin
	if e, ok := a.labels["_start"]; ok {
		entry = e
	}
	return &Program{
		Code:      code,
		Origin:    a.origin,
		Entry:     entry,
		StartMode: a.start,
		Labels:    a.labels,
	}, nil
}

// MustAssemble is Assemble for static program text; it panics on error and
// exists for package-level program constants in the guest runtime.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) parse(src string) error {
	mode := isa.Mode16
	first := true
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := raw
		if j := strings.IndexByte(text, ';'); j >= 0 {
			text = text[:j]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		var label string
		if j := strings.IndexByte(text, ':'); j >= 0 && isIdent(text[:j]) {
			label = text[:j]
			text = strings.TrimSpace(text[j+1:])
		}
		if text == "" {
			a.stmts = append(a.stmts, stmt{line: line, label: label, mode: mode})
			continue
		}
		fields := strings.SplitN(text, " ", 2)
		mnem := strings.ToLower(fields[0])
		var args []string
		if len(fields) == 2 {
			for _, arg := range splitArgs(fields[1]) {
				args = append(args, strings.TrimSpace(arg))
			}
		}
		switch mnem {
		case ".bits":
			if len(args) != 1 {
				return &Error{line, ".bits wants one operand"}
			}
			switch args[0] {
			case "16":
				mode = isa.Mode16
			case "32":
				mode = isa.Mode32
			case "64":
				mode = isa.Mode64
			default:
				return &Error{line, ".bits wants 16, 32, or 64"}
			}
			if first {
				a.start = mode
			}
			if label != "" {
				a.stmts = append(a.stmts, stmt{line: line, label: label, mode: mode})
			}
			continue
		case ".org":
			if len(args) != 1 {
				return &Error{line, ".org wants one operand"}
			}
			v, err := parseInt(args[0])
			if err != nil {
				return &Error{line, err.Error()}
			}
			a.origin = v
			continue
		case ".equ":
			if len(args) != 2 {
				return &Error{line, ".equ wants NAME, VALUE"}
			}
			v, err := parseInt(args[1])
			if err != nil {
				return &Error{line, err.Error()}
			}
			a.equs[args[0]] = v
			continue
		}
		first = false
		a.stmts = append(a.stmts, stmt{line: line, label: label, mnem: mnem, args: args, mode: mode})
	}
	return nil
}

// splitArgs splits on commas that are not inside brackets.
func splitArgs(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.', c == '$':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseInt(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if neg {
		return uint64(-int64(v)), nil
	}
	return v, nil
}

// layout is pass 1: compute sizes and addresses, define labels.
func (a *assembler) layout() error {
	pc := a.origin
	for i := range a.stmts {
		s := &a.stmts[i]
		s.addr = pc
		if s.label != "" {
			if _, dup := a.labels[s.label]; dup {
				return &Error{s.line, "duplicate label " + s.label}
			}
			a.labels[s.label] = pc
		}
		if s.mnem == "" {
			continue
		}
		n, err := a.sizeOf(s)
		if err != nil {
			return err
		}
		if s.mnem == ".align" {
			al, _ := parseInt(s.args[0])
			if al > 0 && pc%al != 0 {
				n = int(al - pc%al)
			} else {
				n = 0
			}
		}
		s.size = n
		pc += uint64(n)
	}
	return nil
}

func (a *assembler) sizeOf(s *stmt) (int, error) {
	switch s.mnem {
	case ".db":
		n := 0
		for _, arg := range s.args {
			if strings.HasPrefix(arg, `"`) {
				str, err := strconv.Unquote(arg)
				if err != nil {
					return 0, &Error{s.line, "bad string literal"}
				}
				n += len(str)
			} else {
				n++
			}
		}
		return n, nil
	case ".dw":
		return 2 * len(s.args), nil
	case ".dd":
		return 4 * len(s.args), nil
	case ".dq":
		return 8 * len(s.args), nil
	case ".word":
		return s.mode.Width() * len(s.args), nil
	case ".zero":
		v, err := parseInt(s.args[0])
		if err != nil {
			return 0, &Error{s.line, err.Error()}
		}
		return int(v), nil
	case ".align":
		return 0, nil // patched in layout
	}
	op, _, err := a.selectOp(s)
	if err != nil {
		return 0, err
	}
	return op.EncodedLen(s.mode), nil
}

// selectOp resolves a mnemonic+args to an opcode, choosing between
// register and immediate forms.
func (a *assembler) selectOp(s *stmt) (isa.Op, bool, error) {
	imm := func(i int) bool {
		if i >= len(s.args) {
			return false
		}
		_, isReg := isa.RegByName(s.args[i])
		return !isReg
	}
	switch s.mnem {
	case "nop":
		return isa.NOP, false, nil
	case "hlt":
		return isa.HLT, false, nil
	case "ret":
		return isa.RET, false, nil
	case "cli":
		return isa.CLI, false, nil
	case "sti":
		return isa.STI, false, nil
	case "mov":
		if imm(1) {
			return isa.MOVI, true, nil
		}
		return isa.MOV, false, nil
	case "movi":
		return isa.MOVI, true, nil
	case "addi":
		return isa.ADDI, true, nil
	case "subi":
		return isa.SUBI, true, nil
	case "andi":
		return isa.ANDI, true, nil
	case "ori":
		return isa.ORI, true, nil
	case "cmpi":
		return isa.CMPI, true, nil
	case "load":
		return isa.LOAD, false, nil
	case "store":
		return isa.STORE, false, nil
	case "loadb":
		return isa.LOADB, false, nil
	case "storeb":
		return isa.STOREB, false, nil
	case "add":
		if imm(1) {
			return isa.ADDI, true, nil
		}
		return isa.ADD, false, nil
	case "sub":
		if imm(1) {
			return isa.SUBI, true, nil
		}
		return isa.SUB, false, nil
	case "mul":
		return isa.MUL, false, nil
	case "div":
		return isa.DIV, false, nil
	case "mod":
		return isa.MOD, false, nil
	case "and":
		if imm(1) {
			return isa.ANDI, true, nil
		}
		return isa.AND, false, nil
	case "or":
		if imm(1) {
			return isa.ORI, true, nil
		}
		return isa.OR, false, nil
	case "xor":
		return isa.XOR, false, nil
	case "shl":
		return isa.SHL, true, nil
	case "shr":
		return isa.SHR, true, nil
	case "sar":
		return isa.SAR, true, nil
	case "neg":
		return isa.NEG, false, nil
	case "not":
		return isa.NOT, false, nil
	case "inc":
		return isa.INC, false, nil
	case "dec":
		return isa.DEC, false, nil
	case "cmp":
		if imm(1) {
			return isa.CMPI, true, nil
		}
		return isa.CMP, false, nil
	case "jmp":
		return isa.JMP, true, nil
	case "jz", "je":
		return isa.JZ, true, nil
	case "jnz", "jne":
		return isa.JNZ, true, nil
	case "jl":
		return isa.JL, true, nil
	case "jg":
		return isa.JG, true, nil
	case "jle":
		return isa.JLE, true, nil
	case "jge":
		return isa.JGE, true, nil
	case "jb":
		return isa.JB, true, nil
	case "jae":
		return isa.JAE, true, nil
	case "call":
		return isa.CALL, true, nil
	case "push":
		return isa.PUSH, false, nil
	case "pop":
		return isa.POP, false, nil
	case "out":
		return isa.OUT, true, nil
	case "in":
		return isa.IN, true, nil
	case "lgdt":
		return isa.LGDT, true, nil
	case "movcr":
		return isa.MOVCR, false, nil
	case "rdcr":
		return isa.RDCR, false, nil
	case "ljmp16", "ljmp32", "ljmp64":
		return isa.LJMP, true, nil
	case "shlv":
		return isa.SHLV, false, nil
	case "shrv":
		return isa.SHRV, false, nil
	case "sarv":
		return isa.SARV, false, nil
	}
	return 0, false, &Error{s.line, "unknown mnemonic " + s.mnem}
}

func (a *assembler) resolve(s *stmt, tok string) (uint64, error) {
	if v, ok := a.labels[tok]; ok {
		return v, nil
	}
	if v, ok := a.equs[tok]; ok {
		return v, nil
	}
	// label+offset / label-offset
	for _, sep := range []string{"+", "-"} {
		if j := strings.LastIndex(tok, sep); j > 0 {
			base, err1 := a.resolve(s, strings.TrimSpace(tok[:j]))
			off, err2 := parseInt(tok[j+1:])
			if err1 == nil && err2 == nil {
				if sep == "+" {
					return base + off, nil
				}
				return base - off, nil
			}
		}
	}
	v, err := parseInt(tok)
	if err != nil {
		return 0, &Error{s.line, "unresolved symbol " + tok}
	}
	return v, nil
}

// memOperand parses "[reg+disp]" / "[reg-disp]" / "[reg]".
func (a *assembler) memOperand(s *stmt, tok string) (isa.Reg, uint64, error) {
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return 0, 0, &Error{s.line, "expected memory operand, got " + tok}
	}
	inner := strings.TrimSpace(tok[1 : len(tok)-1])
	sign := uint64(1)
	regPart, dispPart := inner, ""
	if j := strings.IndexAny(inner, "+-"); j > 0 {
		regPart = strings.TrimSpace(inner[:j])
		dispPart = strings.TrimSpace(inner[j+1:])
		if inner[j] == '-' {
			sign = ^uint64(0) // -1
		}
	}
	r, ok := isa.RegByName(regPart)
	if !ok {
		return 0, 0, &Error{s.line, "bad base register " + regPart}
	}
	var disp uint64
	if dispPart != "" {
		v, err := a.resolve(s, dispPart)
		if err != nil {
			return 0, 0, err
		}
		disp = v * sign
	}
	return r, disp, nil
}

// emit is pass 2.
func (a *assembler) emit() ([]byte, error) {
	var out []byte
	for i := range a.stmts {
		s := &a.stmts[i]
		if s.mnem == "" {
			continue
		}
		// Keep output position in sync with layout addresses.
		want := int(s.addr - a.origin)
		for len(out) < want {
			out = append(out, 0)
		}
		b, err := a.emitStmt(s)
		if err != nil {
			return nil, err
		}
		if len(b) != s.size {
			return nil, &Error{s.line, fmt.Sprintf("size mismatch: laid out %d, emitted %d", s.size, len(b))}
		}
		out = append(out, b...)
	}
	return out, nil
}

func (a *assembler) emitStmt(s *stmt) ([]byte, error) {
	switch s.mnem {
	case ".db":
		var out []byte
		for _, arg := range s.args {
			if strings.HasPrefix(arg, `"`) {
				str, err := strconv.Unquote(arg)
				if err != nil {
					return nil, &Error{s.line, "bad string literal"}
				}
				out = append(out, str...)
				continue
			}
			v, err := a.resolve(s, arg)
			if err != nil {
				return nil, err
			}
			out = append(out, byte(v))
		}
		return out, nil
	case ".dw", ".dd", ".dq", ".word":
		w := map[string]int{".dw": 2, ".dd": 4, ".dq": 8, ".word": s.mode.Width()}[s.mnem]
		var out []byte
		for _, arg := range s.args {
			v, err := a.resolve(s, arg)
			if err != nil {
				return nil, err
			}
			for k := 0; k < w; k++ {
				out = append(out, byte(v>>(8*k)))
			}
		}
		return out, nil
	case ".zero":
		n, _ := parseInt(s.args[0])
		return make([]byte, n), nil
	case ".align":
		return make([]byte, s.size), nil
	}
	op, _, err := a.selectOp(s)
	if err != nil {
		return nil, err
	}
	enc := []byte{byte(op)}
	putWord := func(v uint64) {
		var buf [8]byte
		n := isa.PutWord(buf[:], s.mode, v)
		enc = append(enc, buf[:n]...)
	}
	reg := func(tok string) (isa.Reg, error) {
		r, ok := isa.RegByName(tok)
		if !ok {
			return 0, &Error{s.line, "bad register " + tok}
		}
		return r, nil
	}
	need := func(n int) error {
		if len(s.args) != n {
			return &Error{s.line, fmt.Sprintf("%s wants %d operands, got %d", s.mnem, n, len(s.args))}
		}
		return nil
	}

	switch op {
	case isa.NOP, isa.HLT, isa.RET, isa.CLI, isa.STI:
		// no operands

	case isa.MOV, isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD,
		isa.AND, isa.OR, isa.XOR, isa.CMP, isa.SHLV, isa.SHRV, isa.SARV:
		if err := need(2); err != nil {
			return nil, err
		}
		d, err := reg(s.args[0])
		if err != nil {
			return nil, err
		}
		src, err := reg(s.args[1])
		if err != nil {
			return nil, err
		}
		enc = append(enc, isa.PackRegs(d, src))

	case isa.MOVI, isa.ADDI, isa.SUBI, isa.ANDI, isa.ORI, isa.CMPI:
		if err := need(2); err != nil {
			return nil, err
		}
		d, err := reg(s.args[0])
		if err != nil {
			return nil, err
		}
		v, err := a.resolve(s, s.args[1])
		if err != nil {
			return nil, err
		}
		enc = append(enc, isa.PackRegs(d, 0))
		putWord(v)

	case isa.LOAD, isa.LOADB:
		if err := need(2); err != nil {
			return nil, err
		}
		d, err := reg(s.args[0])
		if err != nil {
			return nil, err
		}
		base, disp, err := a.memOperand(s, s.args[1])
		if err != nil {
			return nil, err
		}
		enc = append(enc, isa.PackRegs(d, base))
		putWord(disp)

	case isa.STORE, isa.STOREB:
		if err := need(2); err != nil {
			return nil, err
		}
		base, disp, err := a.memOperand(s, s.args[0])
		if err != nil {
			return nil, err
		}
		src, err := reg(s.args[1])
		if err != nil {
			return nil, err
		}
		enc = append(enc, isa.PackRegs(base, src))
		putWord(disp)

	case isa.SHL, isa.SHR, isa.SAR:
		if err := need(2); err != nil {
			return nil, err
		}
		d, err := reg(s.args[0])
		if err != nil {
			return nil, err
		}
		v, err := a.resolve(s, s.args[1])
		if err != nil {
			return nil, err
		}
		enc = append(enc, isa.PackRegs(d, 0), byte(v))

	case isa.NEG, isa.NOT, isa.INC, isa.DEC, isa.PUSH, isa.POP:
		if err := need(1); err != nil {
			return nil, err
		}
		d, err := reg(s.args[0])
		if err != nil {
			return nil, err
		}
		enc = append(enc, isa.PackRegs(d, 0))

	case isa.JMP, isa.JZ, isa.JNZ, isa.JL, isa.JG, isa.JLE, isa.JGE,
		isa.JB, isa.JAE, isa.CALL, isa.LGDT:
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := a.resolve(s, s.args[0])
		if err != nil {
			return nil, err
		}
		putWord(v)

	case isa.OUT:
		if err := need(2); err != nil {
			return nil, err
		}
		port, err := a.resolve(s, s.args[0])
		if err != nil {
			return nil, err
		}
		r, err := reg(s.args[1])
		if err != nil {
			return nil, err
		}
		enc = append(enc, isa.PackRegs(r, 0), byte(port))

	case isa.IN:
		if err := need(2); err != nil {
			return nil, err
		}
		r, err := reg(s.args[0])
		if err != nil {
			return nil, err
		}
		port, err := a.resolve(s, s.args[1])
		if err != nil {
			return nil, err
		}
		enc = append(enc, isa.PackRegs(r, 0), byte(port))

	case isa.MOVCR:
		if err := need(2); err != nil {
			return nil, err
		}
		cr, ok := crByName(s.args[0])
		if !ok {
			return nil, &Error{s.line, "bad control register " + s.args[0]}
		}
		r, err := reg(s.args[1])
		if err != nil {
			return nil, err
		}
		enc = append(enc, isa.PackRegs(isa.Reg(cr), r))

	case isa.RDCR:
		if err := need(2); err != nil {
			return nil, err
		}
		r, err := reg(s.args[0])
		if err != nil {
			return nil, err
		}
		cr, ok := crByName(s.args[1])
		if !ok {
			return nil, &Error{s.line, "bad control register " + s.args[1]}
		}
		enc = append(enc, isa.PackRegs(r, isa.Reg(cr)))

	case isa.LJMP:
		if err := need(1); err != nil {
			return nil, err
		}
		var width byte
		switch s.mnem {
		case "ljmp16":
			width = 2
		case "ljmp32":
			width = 4
		case "ljmp64":
			width = 8
		}
		v, err := a.resolve(s, s.args[0])
		if err != nil {
			return nil, err
		}
		enc = append(enc, width)
		putWord(v)
	}
	return enc, nil
}

func crByName(name string) (isa.CR, bool) {
	switch strings.ToLower(name) {
	case "cr0":
		return isa.CR0, true
	case "cr3":
		return isa.CR3, true
	case "cr4":
		return isa.CR4, true
	case "efer":
		return isa.EFER, true
	}
	return 0, false
}
