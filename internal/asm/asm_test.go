package asm

import (
	"testing"

	"repro/internal/isa"
)

func TestAssembleTrivial(t *testing.T) {
	p, err := Assemble(`
.bits 64
.org 0x8000
_start:
	movi rax, 7
	hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Origin != 0x8000 {
		t.Fatalf("origin = %#x", p.Origin)
	}
	if p.Entry != 0x8000 {
		t.Fatalf("entry = %#x", p.Entry)
	}
	if p.StartMode != isa.Mode64 {
		t.Fatalf("start mode = %v", p.StartMode)
	}
	// movi = op + regbyte + 8-byte imm = 10; hlt = 1.
	if len(p.Code) != 11 {
		t.Fatalf("code len = %d, want 11", len(p.Code))
	}
	in, err := isa.Decode(p.Code, 0, isa.Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.MOVI || in.Dst != isa.RAX || in.Imm != 7 {
		t.Fatalf("decoded %v", in)
	}
}

func TestLabelResolution(t *testing.T) {
	p, err := Assemble(`
.bits 64
_start:
	jmp target
	nop
target:
	hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	in, err := isa.Decode(p.Code, 0, isa.Mode64)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Labels["target"]
	if in.Imm != want {
		t.Fatalf("jmp target = %#x, want %#x", in.Imm, want)
	}
	if want != p.Origin+9+1 { // jmp is 9 bytes, nop 1
		t.Fatalf("target label = %#x", want)
	}
}

func TestForwardAndBackwardLabels(t *testing.T) {
	p, err := Assemble(`
.bits 32
back:
	jmp fwd
	jmp back
fwd:
	hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["back"] != p.Origin {
		t.Fatal("backward label wrong")
	}
}

func TestMemoryOperands(t *testing.T) {
	p, err := Assemble(`
.bits 64
	load rax, [rbp-8]
	store [rbp+16], rbx
	loadb rcx, [rsi]
`)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := isa.Decode(p.Code, 0, isa.Mode64)
	if in.Op != isa.LOAD || in.Dst != isa.RAX || in.Src != isa.RBP || int64(in.Imm) != -8 {
		t.Fatalf("load decoded as %v imm=%d", in, int64(in.Imm))
	}
	in2, _ := isa.Decode(p.Code, uint64(in.Len), isa.Mode64)
	if in2.Op != isa.STORE || in2.Dst != isa.RBP || in2.Src != isa.RBX || in2.Imm != 16 {
		t.Fatalf("store decoded as %v", in2)
	}
	in3, _ := isa.Decode(p.Code, uint64(in.Len+in2.Len), isa.Mode64)
	if in3.Op != isa.LOADB || in3.Src != isa.RSI || in3.Imm != 0 {
		t.Fatalf("loadb decoded as %v", in3)
	}
}

func TestImmediateVsRegisterSelection(t *testing.T) {
	p, err := Assemble(`
.bits 64
	mov rax, rbx
	mov rax, 42
	add rax, rcx
	add rax, 1
	cmp rax, 0
`)
	if err != nil {
		t.Fatal(err)
	}
	var off uint64
	want := []isa.Op{isa.MOV, isa.MOVI, isa.ADD, isa.ADDI, isa.CMPI}
	for i, w := range want {
		in, err := isa.Decode(p.Code, off, isa.Mode64)
		if err != nil {
			t.Fatal(err)
		}
		if in.Op != w {
			t.Fatalf("inst %d: got %v, want %v", i, in.Op, w)
		}
		off += uint64(in.Len)
	}
}

func TestDirectives(t *testing.T) {
	p, err := Assemble(`
.bits 64
.equ MAGIC, 0xAB
data:
.db 1, 2, MAGIC
.db "hi"
.dw 0x1234
.dd 0xDEADBEEF
.dq 0x1122334455667788
.zero 3
.align 8
aligned:
	hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Code
	if c[0] != 1 || c[1] != 2 || c[2] != 0xAB {
		t.Fatalf(".db wrong: % x", c[:3])
	}
	if string(c[3:5]) != "hi" {
		t.Fatal(".db string wrong")
	}
	if c[5] != 0x34 || c[6] != 0x12 {
		t.Fatal(".dw wrong")
	}
	if c[7] != 0xEF || c[10] != 0xDE {
		t.Fatal(".dd wrong")
	}
	if c[11] != 0x88 || c[18] != 0x11 {
		t.Fatal(".dq wrong")
	}
	if p.Labels["aligned"]%8 != 0 {
		t.Fatalf("aligned label at %#x, not 8-aligned", p.Labels["aligned"])
	}
}

func TestModeSwitchingAffectsEncoding(t *testing.T) {
	p, err := Assemble(`
.bits 16
	movi rax, 1
.bits 64
	movi rax, 1
`)
	if err != nil {
		t.Fatal(err)
	}
	// 16-bit movi: 1+1+2 = 4; 64-bit: 1+1+8 = 10.
	if len(p.Code) != 14 {
		t.Fatalf("code len = %d, want 14", len(p.Code))
	}
	if p.StartMode != isa.Mode16 {
		t.Fatal("start mode should be 16")
	}
}

func TestLjmpEncoding(t *testing.T) {
	p, err := Assemble(`
.bits 16
	ljmp32 prot
.bits 32
prot:
	hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	in, err := isa.Decode(p.Code, 0, isa.Mode16)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.LJMP || in.Sub != 4 {
		t.Fatalf("ljmp decoded %v sub=%d", in, in.Sub)
	}
	if in.Imm&0xFFFF != p.Labels["prot"]&0xFFFF {
		t.Fatalf("ljmp target %#x, want %#x", in.Imm, p.Labels["prot"])
	}
}

func TestOutInEncoding(t *testing.T) {
	p, err := Assemble(`
.bits 64
	out 0x10, rdi
	in rax, 0x11
`)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := isa.Decode(p.Code, 0, isa.Mode64)
	if in.Op != isa.OUT || in.Imm != 0x10 || in.Dst != isa.RDI {
		t.Fatalf("out decoded %v", in)
	}
	in2, _ := isa.Decode(p.Code, uint64(in.Len), isa.Mode64)
	if in2.Op != isa.IN || in2.Imm != 0x11 || in2.Dst != isa.RAX {
		t.Fatalf("in decoded %v", in2)
	}
}

func TestControlRegisterOps(t *testing.T) {
	p, err := Assemble(`
.bits 32
	rdcr rax, cr0
	movcr cr0, rax
	movcr efer, rbx
`)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := isa.Decode(p.Code, 0, isa.Mode32)
	if in.Op != isa.RDCR || isa.CR(in.Src) != isa.CR0 || in.Dst != isa.RAX {
		t.Fatalf("rdcr decoded %v", in)
	}
	in2, _ := isa.Decode(p.Code, 2, isa.Mode32)
	if in2.Op != isa.MOVCR || isa.CR(in2.Dst) != isa.CR0 || in2.Src != isa.RAX {
		t.Fatalf("movcr decoded %v", in2)
	}
	in3, _ := isa.Decode(p.Code, 4, isa.Mode32)
	if isa.CR(in3.Dst) != isa.EFER {
		t.Fatalf("movcr efer decoded %v", in3)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown mnemonic", ".bits 64\n\tfrobnicate rax"},
		{"bad register", ".bits 64\n\tmov xyz, 1"},
		{"unresolved symbol", ".bits 64\n\tjmp nowhere"},
		{"duplicate label", ".bits 64\na:\n\tnop\na:\n\tnop"},
		{"bad bits", ".bits 48"},
		{"wrong operand count", ".bits 64\n\tmov rax"},
		{"bad cr", ".bits 64\n\tmovcr cr9, rax"},
	}
	for _, tc := range cases {
		if _, err := Assemble(tc.src); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble(".bits 64\n\tnop\n\tbogus rax\n")
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if aerr.Line != 3 {
		t.Fatalf("line = %d, want 3", aerr.Line)
	}
}

func TestLabelArithmetic(t *testing.T) {
	p, err := Assemble(`
.bits 64
buf:
.zero 16
	movi rax, buf+8
`)
	if err != nil {
		t.Fatal(err)
	}
	in, err := isa.Decode(p.Code, 16, isa.Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm != p.Labels["buf"]+8 {
		t.Fatalf("buf+8 = %#x, want %#x", in.Imm, p.Labels["buf"]+8)
	}
}

func TestEntryDefaultsToOrigin(t *testing.T) {
	p, err := Assemble(".bits 64\n\tnop\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.Origin {
		t.Fatal("entry should default to origin when no _start")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("bogus instruction stream")
}
