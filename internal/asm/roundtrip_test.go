package asm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
)

// Property: any instruction the assembler emits decodes back to the same
// opcode and operands. We generate random-but-valid source lines, encode,
// and decode.

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	regs := []string{"rax", "rcx", "rdx", "rbx", "rsi", "rdi", "r8", "r15"}
	reg := func() string { return regs[rng.Intn(len(regs))] }
	imm := func() int64 { return rng.Int63n(1 << 30) }

	for trial := 0; trial < 300; trial++ {
		var line string
		var wantOp isa.Op
		switch rng.Intn(12) {
		case 0:
			line = fmt.Sprintf("mov %s, %s", reg(), reg())
			wantOp = isa.MOV
		case 1:
			line = fmt.Sprintf("mov %s, %d", reg(), imm())
			wantOp = isa.MOVI
		case 2:
			line = fmt.Sprintf("add %s, %s", reg(), reg())
			wantOp = isa.ADD
		case 3:
			line = fmt.Sprintf("sub %s, %d", reg(), imm())
			wantOp = isa.SUBI
		case 4:
			line = fmt.Sprintf("load %s, [%s+%d]", reg(), reg(), rng.Intn(1024))
			wantOp = isa.LOAD
		case 5:
			line = fmt.Sprintf("store [%s-%d], %s", reg(), rng.Intn(1024), reg())
			wantOp = isa.STORE
		case 6:
			line = fmt.Sprintf("cmp %s, %s", reg(), reg())
			wantOp = isa.CMP
		case 7:
			line = fmt.Sprintf("shl %s, %d", reg(), rng.Intn(63))
			wantOp = isa.SHL
		case 8:
			line = fmt.Sprintf("out %d, %s", rng.Intn(256), reg())
			wantOp = isa.OUT
		case 9:
			line = fmt.Sprintf("push %s", reg())
			wantOp = isa.PUSH
		case 10:
			line = fmt.Sprintf("shlv %s, %s", reg(), reg())
			wantOp = isa.SHLV
		case 11:
			line = fmt.Sprintf("xor %s, %s", reg(), reg())
			wantOp = isa.XOR
		}
		p, err := Assemble(".bits 64\n\t" + line + "\n")
		if err != nil {
			t.Fatalf("assemble %q: %v", line, err)
		}
		in, err := isa.Decode(p.Code, 0, isa.Mode64)
		if err != nil {
			t.Fatalf("decode %q: %v", line, err)
		}
		if in.Op != wantOp {
			t.Fatalf("%q decoded as %v, want %v", line, in.Op, wantOp)
		}
		if in.Len != len(p.Code) {
			t.Fatalf("%q: decoded length %d != emitted %d", line, in.Len, len(p.Code))
		}
	}
}

func TestDisassembleReassembles(t *testing.T) {
	// Disassembler output for simple 64-bit code must re-assemble to the
	// same bytes (syntax-level round trip).
	src := `
.bits 64
	movi rax, 42
	mov rbx, rax
	add rax, rbx
	cmp rax, 100
	push rax
	pop rcx
	neg rcx
	hlt
`
	p1, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dis := isa.Disassemble(p1.Code, p1.Origin, isa.Mode64)
	// Rebuild source from the disassembly (strip addresses).
	var sb strings.Builder
	sb.WriteString(".bits 64\n")
	for _, line := range strings.Split(strings.TrimSpace(dis), "\n") {
		parts := strings.SplitN(line, ": ", 2)
		if len(parts) != 2 {
			t.Fatalf("bad disasm line %q", line)
		}
		sb.WriteString("\t" + parts[1] + "\n")
	}
	p2, err := Assemble(sb.String())
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, sb.String())
	}
	if string(p1.Code) != string(p2.Code) {
		t.Fatalf("round trip changed bytes:\n%x\n%x", p1.Code, p2.Code)
	}
}

func TestAllOpcodesHaveNames(t *testing.T) {
	for op := isa.Op(0); op < isa.NumOps; op++ {
		if strings.Contains(op.String(), "?") {
			t.Fatalf("opcode %d has no name", op)
		}
	}
}

func TestModeDependentEncodingLengths(t *testing.T) {
	// The same source encodes shorter at narrower widths.
	src := func(bits string) string { return ".bits " + bits + "\n\tmov rax, 1\n\tjmp 0\n" }
	len16 := len(MustAssemble(src("16")).Code)
	len32 := len(MustAssemble(src("32")).Code)
	len64 := len(MustAssemble(src("64")).Code)
	if !(len16 < len32 && len32 < len64) {
		t.Fatalf("lengths %d %d %d not increasing with width", len16, len32, len64)
	}
}
