// Package httpd provides the HTTP workloads of the evaluation: the
// protected-mode echo server whose startup milestones Fig 4 measures, the
// static-file server handled per-request in a virtine (Fig 13, §6.3), and
// the native baseline both are compared against.
//
// The paper's echo server is ~160 lines of hand-written assembly plus a
// small C runtime, booting to protected mode (no paging) and using
// hypercall-based I/O; ours is the same shape in VX assembly. The
// static-file server is the §6.3 workload: a connection-handling function
// annotated with the virtine keyword, making exactly seven host
// interactions per request: recv, stat, open, read, send, close, exit.
package httpd

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/hypercall"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/vcc"
	"repro/internal/wasp"
)

// Milestone IDs the echo server marks (Fig 4).
const (
	MarkMainEntry = 1
	MarkRecvDone  = 2
	MarkSendDone  = 3
)

// EchoImage builds the protected-mode echo server: boot 16→32 (no
// paging, §4.2), mark main entry, recv the request, mark, send it back,
// mark, exit.
func EchoImage() *guest.Image {
	return guest.MustFromAsm("echo-server", guest.WrapProtected(`
	movi rdi, 1
	out 0x0B, rdi        ; mark: reached C code (main entry)
	movi rdi, 3
	movi rsi, echo_buf
	movi rdx, 4096
	out 0x07, rdi        ; recv(sock, buf, cap)
	mov rcx, rax
	movi rdi, 2
	out 0x0B, rdi        ; mark: request received
	movi rdi, 3
	movi rsi, echo_buf
	mov rdx, rcx
	out 0x06, rdi        ; send(sock, buf, n)
	movi rdi, 3
	out 0x0B, rdi        ; mark: response sent
	movi rdi, 0
	out 0x00, rdi        ; exit
	hlt
.align 8
echo_buf:
	.zero 4096
`))
}

// EchoPolicy permits exactly the echo server's socket calls.
func EchoPolicy() hypercall.Policy {
	return hypercall.MaskOf(hypercall.NrRecv, hypercall.NrSend)
}

// fileServerC is the §6.3 connection handler, written in the virtine C
// dialect. The virtine_config mask admits the six socket/file hypercalls;
// exit is a mechanism. Request format: "GET <path> HTTP/1.0\r\n...".
const fileServerC = `
virtine_config(0xFC) int handle(int unused) {
	char req[512];
	int n = recv(3, req, 511);                 /* (1) read request    */
	if (n < 5) { return -1; }
	req[n] = 0;

	/* parse "GET /path ..." */
	char path[128];
	int i = 0;
	while (req[i] && req[i] != ' ') { i++; }
	while (req[i] == ' ') { i++; }
	int j = 0;
	while (req[i] && req[i] != ' ' && j < 127) { path[j] = req[i]; i++; j++; }
	path[j] = 0;

	int size = stat_size(path);                /* (2) stat file       */
	char resp[8192];
	int rn = 0;
	if (size < 0 || size > 7900) {
		char *nf = "HTTP/1.0 404 Not Found\r\n\r\n";
		send(3, nf, strlen(nf));
		return 404;
	}
	int fd = open(path);                       /* (3) open file       */

	/* build "HTTP/1.0 200 OK\r\nContent-Length: N\r\n\r\n" + body */
	char *hdr = "HTTP/1.0 200 OK\r\nContent-Length: ";
	int hl = strlen(hdr);
	memcpy(resp, hdr, hl);
	rn = hl;
	char num[24];
	int nl = itoa(size, num);
	memcpy(resp + rn, num, nl);
	rn += nl;
	memcpy(resp + rn, "\r\n\r\n", 4);
	rn += 4;
	int m = read(fd, resp + rn, size);         /* (4) read file       */
	if (m < 0) {
		/* a failed host read must not reach the response: rn would
		   absorb the negative count and send() would leak garbage */
		close(fd);
		char *er = "HTTP/1.0 500 Internal Server Error\r\n\r\n";
		send(3, er, strlen(er));
		return 500;
	}
	rn += m;

	send(3, resp, rn);                         /* (5) write response  */
	close(fd);                                 /* (6) close file      */
	return 200;                                /* (7) exit            */
}
`

// FileServer is the virtine-backed static HTTP server of Fig 13.
type FileServer struct {
	W      *wasp.Wasp
	Env    *hypercall.Env
	fs     *hypercall.FS // static file set, forked per request
	image  *guest.Image
	policy hypercall.Policy

	// Snapshot toggles the §5.2 optimization ("virtine" vs "snapshot"
	// series in Fig 13).
	Snapshot bool
}

// NewFileServer compiles the handler and installs the given files into
// the server's filesystem.
func NewFileServer(w *wasp.Wasp, files map[string][]byte) (*FileServer, error) {
	v, err := vcc.CompileFunc(fileServerC, "handle")
	if err != nil {
		return nil, err
	}
	fs := hypercall.NewFS()
	for path, data := range files {
		fs.Put(path, data)
	}
	s := &FileServer{
		W:      w,
		fs:     fs,
		image:  v.Image,
		policy: v.Policy,
	}
	s.Env = s.newEnv()
	return s, nil
}

// newEnv builds a request-private host environment over the server's
// file set. Concurrent requests must not share an Env — it carries the
// per-run socket and stream state — but they do share the static file
// contents: each env gets an O(1) fork of the server filesystem rather
// than a rebuilt copy.
func (s *FileServer) newEnv() *hypercall.Env {
	env := hypercall.NewEnv()
	env.FS = s.fs.Fork()
	return env
}

// Response is one served HTTP exchange.
type Response struct {
	Raw    []byte
	Status int
	Body   []byte
	Cycles uint64 // service time for this request
	Exits  uint64
}

// Serve handles one HTTP request in a fresh virtine, advancing clk by the
// full service time.
func (s *FileServer) Serve(req []byte, clk *cycles.Clock) (*Response, error) {
	s.Env.ResetRun()
	s.Env.NetIn = append([]byte(nil), req...)
	res, err := s.W.Run(s.image, wasp.RunConfig{
		Policy:   s.policy,
		Env:      s.Env,
		Args:     vcc.MarshalArgs(0),
		RetBytes: vcc.RetSize,
		Snapshot: s.Snapshot,
	}, clk)
	if err != nil {
		return nil, err
	}
	return parseResponse(res.NetOut, res.Cycles, res.IOExits)
}

// Submit dispatches one request through a scheduler — the concurrent
// request path. Each request runs in a fresh virtine against a
// request-private environment, so tickets on different workers proceed
// fully in parallel. The returned ticket's result carries the raw
// exchange; parse it with ParseTicket.
func (s *FileServer) Submit(sc *sched.Scheduler, req []byte) *sched.Ticket {
	return sc.Submit(s.image, s.runConfig(req))
}

// runConfig builds one request's RunConfig over a request-private
// environment.
func (s *FileServer) runConfig(req []byte) wasp.RunConfig {
	env := s.newEnv()
	env.NetIn = append([]byte(nil), req...)
	return wasp.RunConfig{
		Policy:   s.policy,
		Env:      env,
		Args:     vcc.MarshalArgs(0),
		RetBytes: vcc.RetSize,
		Snapshot: s.Snapshot,
	}
}

// ParseTicket waits for a submitted request and parses its response.
func ParseTicket(t *sched.Ticket) (*Response, error) {
	res, err := t.Wait()
	if err != nil {
		return nil, err
	}
	return parseResponse(res.NetOut, res.Cycles, res.IOExits)
}

// ServeMany serves a batch of requests through a bounded worker pool of
// the given width, returning responses in request order. This is the
// server's multi-core request path: worker-parallel virtines sharing
// the runtime's shell pool and snapshot cache.
func (s *FileServer) ServeMany(reqs [][]byte, workers int) ([]*Response, error) {
	sc := sched.New(s.W, workers)
	defer sc.Close()
	// Prewarm the handler's size class so the opening burst hits warm
	// shells instead of paying one cold create per worker; the pool
	// policy keeps the warm set sized from there.
	need := workers
	if len(reqs) < need {
		need = len(reqs)
	}
	s.W.Prewarm(s.image.MemBytes(), need)
	// The whole burst goes down as one batch: one ticket slab, one
	// queue-lock acquisition, one worker wake.
	batch := make([]sched.Request, len(reqs))
	for i, req := range reqs {
		batch[i] = sched.Request{Img: s.image, Cfg: s.runConfig(req)}
	}
	tickets := sc.SubmitBatch(batch)
	out := make([]*Response, len(tickets))
	for i, t := range tickets {
		resp, err := ParseTicket(t)
		if err != nil {
			return nil, err
		}
		out[i] = resp
	}
	return out, nil
}

// ServeTenants is the multi-tenant request path: each tenant's requests
// run against a tenant-private clone of the handler image (its own
// snapshot, shell telemetry, and admission identity), all dispatched
// through one scheduler as a single batch under the given admission
// policy. With soft weights a hot tenant's burst cannot starve the
// others of workers; with a hard cap in RejectOverflow mode a tenant's
// excess requests fail fast — those slots come back nil in the
// tenant's response slice, as do requests of a tenant no backend may
// serve under the placement policy (every other error aborts).
// Responses are returned per tenant, in each tenant's request order.
//
// When the server's runtime spans several hypervisor backends
// (wasp.WithPlatforms), the workers are spread round-robin across them
// and the placer (nil for no placement constraints) decides which
// backends each tenant's clone may land on — admission gates whether a
// request runs, placement gates where.
func (s *FileServer) ServeTenants(tenants map[string][][]byte, workers int, adm *sched.Admission, pl placement.Placer) (map[string][]*Response, error) {
	var opts []sched.Option
	if adm != nil {
		opts = append(opts, sched.WithAdmission(*adm))
	}
	platforms := s.W.Platforms()
	if len(platforms) > 1 {
		opts = append(opts, sched.WithWorkerPlatforms(platforms...))
	}
	if pl != nil {
		opts = append(opts, sched.WithPlacer(pl))
	}
	sc := sched.New(s.W, workers, opts...)
	defer sc.Close()

	names := make([]string, 0, len(tenants))
	total := 0
	for name, reqs := range tenants {
		names = append(names, name)
		total += len(reqs)
	}
	sort.Strings(names)
	need := workers
	if total < need {
		need = total
	}
	// Prewarm every backend's pool for its share of the fleet: shells
	// never cross platforms, so each backend warms its own.
	for i, p := range platforms {
		share := (need + len(platforms) - 1 - i) / len(platforms)
		if share > 0 {
			s.W.PrewarmOn(p.Name(), s.image.MemBytes(), share)
		}
	}

	type slot struct {
		tenant string
		idx    int
	}
	batch := make([]sched.Request, 0, total)
	slots := make([]slot, 0, total)
	for _, name := range names {
		img := s.image.WithName(s.image.Name + "@" + name)
		for i, req := range tenants[name] {
			batch = append(batch, sched.Request{Img: img, Cfg: s.runConfig(req)})
			slots = append(slots, slot{name, i})
		}
	}
	tickets := sc.SubmitBatch(batch)

	out := make(map[string][]*Response, len(tenants))
	for name, reqs := range tenants {
		out[name] = make([]*Response, len(reqs))
	}
	for i, t := range tickets {
		resp, err := ParseTicket(t)
		if err != nil {
			if errors.Is(err, sched.ErrAdmission) || errors.Is(err, sched.ErrPlacement) {
				continue // quota- or placement-rejected: slot stays nil
			}
			return nil, err
		}
		out[slots[i].tenant][slots[i].idx] = resp
	}
	return out, nil
}

// NativeFileServer is the baseline: the same handler logic running as a
// host function against the same environment, paying syscall costs
// instead of hypercall exits.
type NativeFileServer struct {
	Env *hypercall.Env
}

// NewNativeFileServer installs files into a fresh environment.
func NewNativeFileServer(files map[string][]byte) *NativeFileServer {
	env := hypercall.NewEnv()
	for path, data := range files {
		env.FS.Put(path, data)
	}
	return &NativeFileServer{Env: env}
}

// Serve handles one request natively. The same seven host interactions
// happen, but each costs a syscall rather than a doubly-expensive VM exit
// (§6.3), and there is no context provisioning.
func (s *NativeFileServer) Serve(req []byte, clk *cycles.Clock) (*Response, error) {
	start := clk.Now()
	env := s.Env
	env.ResetRun()
	env.NetIn = append([]byte(nil), req...)

	clk.Advance(cycles.NetSyscall) // recv through the host network stack
	clk.Advance(cycles.MemcpyCost(len(req)))
	line := string(req)
	clk.Advance(uint64(2 * len(line))) // request parse, ~2 cycles/byte
	parts := strings.Fields(line)
	if len(parts) < 2 {
		return nil, fmt.Errorf("httpd: bad request")
	}
	path := parts[1]

	clk.Advance(cycles.FileSyscall) // stat
	size, err := env.FS.Stat(path)
	if err != nil {
		clk.Advance(cycles.NetSyscall) // send 404
		out := []byte("HTTP/1.0 404 Not Found\r\n\r\n")
		return parseResponse(out, clk.Now()-start, 0)
	}
	clk.Advance(cycles.FileSyscall) // open
	fd, err := env.FS.Open(path)
	if err != nil {
		return nil, err
	}
	clk.Advance(cycles.FileSyscall) // read
	body, err := env.FS.Read(fd, size)
	if err != nil {
		return nil, err
	}
	clk.Advance(cycles.MemcpyCost(size))
	var resp bytes.Buffer
	fmt.Fprintf(&resp, "HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n", size)
	resp.Write(body)
	clk.Advance(cycles.MemcpyCost(resp.Len()))
	clk.Advance(cycles.NetSyscall)  // send
	clk.Advance(cycles.FileSyscall) // close
	if err := env.FS.Close(fd); err != nil {
		return nil, err
	}
	return parseResponse(resp.Bytes(), clk.Now()-start, 0)
}

// parseResponse validates and splits a raw HTTP response.
func parseResponse(raw []byte, cyc, exits uint64) (*Response, error) {
	s := string(raw)
	if !strings.HasPrefix(s, "HTTP/1.0 ") {
		return nil, fmt.Errorf("httpd: malformed response %q", truncate(s, 40))
	}
	rest := s[len("HTTP/1.0 "):]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, fmt.Errorf("httpd: malformed status line")
	}
	status, err := strconv.Atoi(rest[:sp])
	if err != nil {
		return nil, fmt.Errorf("httpd: bad status: %v", err)
	}
	var body []byte
	if i := strings.Index(s, "\r\n\r\n"); i >= 0 {
		body = raw[i+4:]
	}
	return &Response{Raw: raw, Status: status, Body: body, Cycles: cyc, Exits: exits}, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// Request builds a GET request for path.
func Request(path string) []byte {
	return []byte("GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n")
}
