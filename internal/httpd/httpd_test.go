package httpd

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/hypercall"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/vcc"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

func TestEchoServer(t *testing.T) {
	w := wasp.New()
	env := hypercall.NewEnv()
	req := []byte("GET / HTTP/1.0\r\n\r\n")
	env.NetIn = append([]byte(nil), req...)
	res, err := w.Run(EchoImage(), wasp.RunConfig{
		Policy: EchoPolicy(),
		Env:    env,
	}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.NetOut, req) {
		t.Fatalf("echo = %q, want %q", res.NetOut, req)
	}
}

func TestEchoMilestonesOrdered(t *testing.T) {
	w := wasp.New()
	env := hypercall.NewEnv()
	env.NetIn = []byte("ping")
	res, err := w.Run(EchoImage(), wasp.RunConfig{Policy: EchoPolicy(), Env: env}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Marks) != 3 {
		t.Fatalf("marks = %d, want 3", len(res.Marks))
	}
	var entry, recvDone, sendDone uint64
	for _, m := range res.Marks {
		switch m.ID {
		case MarkMainEntry:
			entry = m.Cycle
		case MarkRecvDone:
			recvDone = m.Cycle
		case MarkSendDone:
			sendDone = m.Cycle
		}
	}
	if entry == 0 || recvDone <= entry || sendDone <= recvDone {
		t.Fatalf("milestones out of order: %d %d %d", entry, recvDone, sendDone)
	}
	// Fig 4's claim: main entry is reached in roughly 10K cycles
	// (protected-mode boot, no paging), and the full exchange stays
	// well under 1 ms (§4.2: sub-millisecond response latencies).
	if entry < 5_000 || entry > 25_000 {
		t.Fatalf("main entry at %d cycles, want ≈10K (Fig 4)", entry)
	}
	if ms := cycles.Millis(sendDone); ms >= 1.0 {
		t.Fatalf("response took %.2f ms, want <1ms", ms)
	}
}

func TestEchoDefaultDenyBlocksSockets(t *testing.T) {
	w := wasp.New()
	env := hypercall.NewEnv()
	env.NetIn = []byte("x")
	_, err := w.Run(EchoImage(), wasp.RunConfig{Env: env}, cycles.NewClock())
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("err = %v, want denial", err)
	}
}

func testFiles() map[string][]byte {
	return map[string][]byte{
		"/index.html": []byte("<html>hello virtines</html>"),
		"/big.bin":    bytes.Repeat([]byte("x"), 4096),
	}
}

func TestFileServerServes(t *testing.T) {
	w := wasp.New()
	s, err := NewFileServer(w, testFiles())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Serve(Request("/index.html"), cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	if string(resp.Body) != "<html>hello virtines</html>" {
		t.Fatalf("body = %q", resp.Body)
	}
	// §6.3: seven host interactions per request (recv, stat, open,
	// read, send, close, exit) plus the crt0 snapshot mechanism call.
	if resp.Exits != 8 {
		t.Fatalf("hypercall exits = %d, want 8", resp.Exits)
	}
	// With snapshotting on, later runs resume past the snapshot call
	// and make exactly the paper's seven.
	s.Snapshot = true
	if _, err := s.Serve(Request("/index.html"), cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	warm, err := s.Serve(Request("/index.html"), cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Exits != 7 {
		t.Fatalf("warm hypercall exits = %d, want 7", warm.Exits)
	}
}

func TestFileServer404(t *testing.T) {
	w := wasp.New()
	s, err := NewFileServer(w, testFiles())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Serve(Request("/missing"), cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Fatalf("status = %d, want 404", resp.Status)
	}
}

func TestFileServerLargeFile(t *testing.T) {
	w := wasp.New()
	s, err := NewFileServer(w, testFiles())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Serve(Request("/big.bin"), cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || len(resp.Body) != 4096 {
		t.Fatalf("status=%d len=%d", resp.Status, len(resp.Body))
	}
}

func TestNativeMatchesVirtine(t *testing.T) {
	w := wasp.New()
	s, err := NewFileServer(w, testFiles())
	if err != nil {
		t.Fatal(err)
	}
	n := NewNativeFileServer(testFiles())
	vresp, err := s.Serve(Request("/index.html"), cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	nresp, err := n.Serve(Request("/index.html"), cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vresp.Raw, nresp.Raw) {
		t.Fatalf("virtine and native responses differ:\n%q\n%q", vresp.Raw, nresp.Raw)
	}
}

func TestFig13Shape(t *testing.T) {
	// Structural claims of Fig 13: native is fastest; virtine without
	// snapshot is slowest; snapshotting recovers much of the gap but
	// host interactions keep it above native.
	files := testFiles()
	req := Request("/index.html")

	serve := func(snapshot bool) uint64 {
		w := wasp.New()
		s, err := NewFileServer(w, files)
		if err != nil {
			t.Fatal(err)
		}
		s.Snapshot = snapshot
		// Warm pool and snapshot.
		if _, err := s.Serve(req, cycles.NewClock()); err != nil {
			t.Fatal(err)
		}
		clk := cycles.NewClock()
		const N = 20
		for i := 0; i < N; i++ {
			if _, err := s.Serve(req, clk); err != nil {
				t.Fatal(err)
			}
		}
		return clk.Now() / N
	}
	nsrv := NewNativeFileServer(files)
	nclk := cycles.NewClock()
	const N = 20
	for i := 0; i < N; i++ {
		if _, err := nsrv.Serve(req, nclk); err != nil {
			t.Fatal(err)
		}
	}
	native := nclk.Now() / N
	virt := serve(false)
	snap := serve(true)

	if !(native < snap && snap < virt) {
		t.Fatalf("ordering wrong: native=%d snapshot=%d virtine=%d", native, snap, virt)
	}
	// Paper: a bit more than 2x latency increase for virtines vs native;
	// accept a 1.5-6x band.
	ratio := float64(virt) / float64(native)
	if ratio < 1.5 || ratio > 6 {
		t.Fatalf("virtine/native latency ratio = %.2f, want ≈2-3", ratio)
	}
}

func TestServeManyConcurrent(t *testing.T) {
	w := wasp.New()
	s, err := NewFileServer(w, testFiles())
	if err != nil {
		t.Fatal(err)
	}
	s.Snapshot = true
	// Deploy step: warm the snapshot so concurrent requests restore it.
	if _, err := s.Serve(Request("/index.html"), cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	const n = 40
	reqs := make([][]byte, n)
	for i := range reqs {
		if i%3 == 2 {
			reqs[i] = Request("/missing")
		} else {
			reqs[i] = Request("/index.html")
		}
	}
	resps, err := s.ServeMany(reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		want := 200
		if i%3 == 2 {
			want = 404
		}
		if resp.Status != want {
			t.Fatalf("request %d: status %d, want %d", i, resp.Status, want)
		}
		if want == 200 && string(resp.Body) != "<html>hello virtines</html>" {
			t.Fatalf("request %d: body %q", i, resp.Body)
		}
	}
}

func TestRequestParseRejectsGarbage(t *testing.T) {
	n := NewNativeFileServer(testFiles())
	if _, err := n.Serve([]byte("garbage"), cycles.NewClock()); err == nil {
		t.Fatal("garbage request accepted")
	}
	if _, err := parseResponse([]byte("junk"), 0, 0); err == nil {
		t.Fatal("junk response parsed")
	}
	if _, err := parseResponse([]byte("HTTP/1.0 xx"), 0, 0); err == nil {
		t.Fatal("bad status parsed")
	}
}

// TestFileServerFailedReadReturns500 is the regression test for the
// guest handler swallowing a failed read: a negative return from
// read() used to be added to the response length, sending a garbled
// partial 200. The handler must answer with a clean 500 instead.
func TestFileServerFailedReadReturns500(t *testing.T) {
	w := wasp.New()
	srv, err := NewFileServer(w, testFiles())
	if err != nil {
		t.Fatal(err)
	}
	env := srv.newEnv()
	env.NetIn = Request("/index.html")
	// Fail the guest's file read underneath an otherwise healthy host:
	// stat and open succeed, read reports -1 errno-style.
	failRead := hypercall.HandlerFunc(func(call hypercall.Args, mem hypercall.GuestMem) (uint64, error) {
		if call.Nr == hypercall.NrRead && call.A0 != hypercall.SocketFD {
			return ^uint64(0), nil
		}
		return env.Handle(call, mem)
	})
	res, err := w.Run(srv.image, wasp.RunConfig{
		Policy:   srv.policy,
		Env:      env,
		Handler:  failRead,
		Args:     vcc.MarshalArgs(0),
		RetBytes: vcc.RetSize,
	}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := parseResponse(res.NetOut, res.Cycles, res.IOExits)
	if err != nil {
		t.Fatalf("failed read corrupted the response: %v", err)
	}
	if resp.Status != 500 {
		t.Fatalf("status = %d, want 500", resp.Status)
	}
	if len(resp.Body) != 0 {
		t.Fatalf("500 response carries a body: %q", resp.Body)
	}
	if bytes.Contains(res.NetOut, []byte("200 OK")) {
		t.Fatalf("partial 200 leaked into the wire bytes: %q", res.NetOut)
	}
}

// TestServeTenants drives the multi-tenant path: per-tenant image
// clones under one weighted-admission scheduler, every tenant's
// requests answered correctly and in order.
func TestServeTenants(t *testing.T) {
	w := wasp.New()
	s, err := NewFileServer(w, testFiles())
	if err != nil {
		t.Fatal(err)
	}
	s.Snapshot = true
	tenants := map[string][][]byte{}
	for _, name := range []string{"hot", "cold-a", "cold-b"} {
		n := 3
		if name == "hot" {
			n = 12
		}
		for i := 0; i < n; i++ {
			req := Request("/index.html")
			if i%3 == 2 {
				req = Request("/missing")
			}
			tenants[name] = append(tenants[name], req)
		}
	}
	out, err := s.ServeTenants(tenants, 4, &sched.Admission{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, reqs := range tenants {
		if len(out[name]) != len(reqs) {
			t.Fatalf("%s: %d responses for %d requests", name, len(out[name]), len(reqs))
		}
		for i, resp := range out[name] {
			if resp == nil {
				t.Fatalf("%s request %d: missing response", name, i)
			}
			want := 200
			if i%3 == 2 {
				want = 404
			}
			if resp.Status != want {
				t.Fatalf("%s request %d: status %d, want %d", name, i, resp.Status, want)
			}
		}
	}
}

// TestServeTenantsHardCapRejects: a tenant over its hard quota in
// RejectOverflow mode gets nil response slots, and the other tenants
// are unaffected.
func TestServeTenantsHardCapRejects(t *testing.T) {
	w := wasp.New()
	s, err := NewFileServer(w, testFiles())
	if err != nil {
		t.Fatal(err)
	}
	tenants := map[string][][]byte{}
	for i := 0; i < 24; i++ {
		tenants["hog"] = append(tenants["hog"], Request("/index.html"))
	}
	tenants["quiet"] = [][]byte{Request("/index.html")}
	out, err := s.ServeTenants(tenants, 2, &sched.Admission{MaxInFlight: 2, RejectOverflow: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out["quiet"][0] == nil || out["quiet"][0].Status != 200 {
		t.Fatalf("quiet tenant response = %+v", out["quiet"][0])
	}
	served, rejected := 0, 0
	for _, resp := range out["hog"] {
		if resp == nil {
			rejected++
		} else {
			served++
			if resp.Status != 200 {
				t.Fatalf("served hog response status %d", resp.Status)
			}
		}
	}
	if served == 0 {
		t.Fatal("hard cap served nothing for the hog tenant")
	}
	if rejected == 0 {
		t.Fatal("hard cap in reject mode rejected nothing despite a 24-deep burst over cap 2")
	}
}

// TestServeTenantsPlaced: on a runtime spanning KVM and Hyper-V, a
// Static placer pins tenants to opposite backends; both are answered
// correctly, shells never cross platforms (each backend's pool warms),
// and a tenant pinned outside the fleet comes back as nil slots.
func TestServeTenantsPlaced(t *testing.T) {
	w := wasp.New(wasp.WithPlatforms(vmm.KVM{}, vmm.HyperV{}))
	s, err := NewFileServer(w, testFiles())
	if err != nil {
		t.Fatal(err)
	}
	tenants := map[string][][]byte{}
	for _, name := range []string{"on-kvm", "on-hv", "nowhere"} {
		for i := 0; i < 4; i++ {
			tenants[name] = append(tenants[name], Request("/index.html"))
		}
	}
	pl := placement.Static{Pins: map[string]string{
		s.image.Name + "@on-kvm":  "kvm",
		s.image.Name + "@on-hv":   "hyper-v",
		s.image.Name + "@nowhere": "xen",
	}}
	out, err := s.ServeTenants(tenants, 4, &sched.Admission{}, pl)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"on-kvm", "on-hv"} {
		for i, resp := range out[name] {
			if resp == nil || resp.Status != 200 {
				t.Fatalf("%s request %d: response %+v, want 200", name, i, resp)
			}
		}
	}
	for i, resp := range out["nowhere"] {
		if resp != nil {
			t.Fatalf("unplaceable tenant request %d got a response: %+v", i, resp)
		}
	}
	if w.PoolTotalOn("kvm") == 0 || w.PoolTotalOn("hyper-v") == 0 {
		t.Fatalf("both backends should hold warm shells after the split run (kvm=%d hv=%d)",
			w.PoolTotalOn("kvm"), w.PoolTotalOn("hyper-v"))
	}
}
