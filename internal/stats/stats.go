// Package stats implements the statistical reductions the paper applies to
// its measurements: arithmetic mean, standard deviation, harmonic mean
// (used for throughput in Fig 13), percentiles, minima (Table 1 reports
// per-component minima), and Tukey's outlier filter (§4.2 footnote 3).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// HarmonicMean returns the harmonic mean of xs. The paper reports the
// harmonic mean of throughput in Fig 13. Non-positive samples are invalid
// and cause a zero return.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var recip float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		recip += 1 / x
	}
	return float64(len(xs)) / recip
}

// Min returns the minimum of xs, or 0 for an empty slice. Table 1 reports
// the minimum latency observed per boot component.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It copies and sorts its input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// TukeyFilter removes outliers exactly as the paper does: samples outside
// [Q1 - 1.5·IQR, Q3 + 1.5·IQR] are dropped. It returns the surviving
// samples (in their original order) and the number removed.
func TukeyFilter(xs []float64) (kept []float64, removed int) {
	if len(xs) < 4 {
		return append([]float64(nil), xs...), 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q1 := percentileSorted(s, 25)
	q3 := percentileSorted(s, 75)
	iqr := q3 - q1
	lo, hi := q1-1.5*iqr, q3+1.5*iqr
	kept = make([]float64, 0, len(xs))
	for _, x := range xs {
		if x < lo || x > hi {
			removed++
			continue
		}
		kept = append(kept, x)
	}
	return kept, removed
}

// Summary holds the reductions reported for one measured series.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	Min      float64
	Max      float64
	P50      float64
	P99      float64
	Outliers int // removed by Tukey filtering before the other reductions
}

// Summarize applies the paper's methodology to a series: Tukey-filter,
// then reduce. The unfiltered extremes are preserved in Min/Max of the
// filtered data (the paper's plots show filtered data).
func Summarize(xs []float64) Summary {
	kept, removed := TukeyFilter(xs)
	return Summary{
		N:        len(kept),
		Mean:     Mean(kept),
		StdDev:   StdDev(kept),
		Min:      Min(kept),
		Max:      Max(kept),
		P50:      Percentile(kept, 50),
		P99:      Percentile(kept, 99),
		Outliers: removed,
	}
}

// String renders a Summary as a compact row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.1f p50=%.1f p99=%.1f max=%.1f outliers=%d",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P99, s.Max, s.Outliers)
}

// EWMA folds one sample into an exponentially weighted moving average
// with a 1/8 smoothing factor (the TCP RTT estimator's classic alpha);
// a zero prev seeds the average with the sample. The scheduler's
// admission strides and the Wasp pool-sizing telemetry share this so
// their smoothing can never silently diverge.
func EWMA(prev, sample uint64) uint64 {
	if prev == 0 {
		return sample
	}
	return (7*prev + sample) / 8
}

// Jain returns Jain's fairness index (Σx)²/(n·Σx²) over the per-tenant
// allocation metric xs: 1.0 when every tenant receives an equal value,
// approaching 1/n as one tenant captures everything. Tenants absent
// from the allocation contribute x=0. Returns 0 for an empty or
// all-zero input.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// FromUint64 converts a []uint64 cycle series to float64 for reduction.
func FromUint64(xs []uint64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
