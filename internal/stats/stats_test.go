package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean of 1..4 should be 2.5")
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("stddev of one sample should be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Sample stddev of this classic series is ~2.138.
	if math.Abs(got-2.138) > 0.01 {
		t.Fatalf("stddev = %v, want ≈2.138", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if !almost(HarmonicMean([]float64{1, 4, 4}), 2) {
		t.Fatal("harmonic mean of {1,4,4} should be 2")
	}
	if HarmonicMean([]float64{1, 0, 2}) != 0 {
		t.Fatal("harmonic mean with non-positive sample should be 0")
	}
	if HarmonicMean(nil) != 0 {
		t.Fatal("harmonic mean of empty should be 0")
	}
}

func TestHarmonicLeqArithmetic(t *testing.T) {
	// Property: for positive data, harmonic mean ≤ arithmetic mean.
	f := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		return HarmonicMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatalf("Min/Max = %v/%v, want 1/5", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if !almost(Percentile(xs, 0), 10) {
		t.Fatal("p0 should be min")
	}
	if !almost(Percentile(xs, 100), 50) {
		t.Fatal("p100 should be max")
	}
	if !almost(Percentile(xs, 50), 30) {
		t.Fatal("p50 should be median")
	}
	if !almost(Percentile(xs, 25), 20) {
		t.Fatal("p25 with linear interpolation should be 20")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestTukeyFilterRemovesOutlier(t *testing.T) {
	xs := []float64{10, 11, 12, 10, 11, 12, 10, 11, 500}
	kept, removed := TukeyFilter(xs)
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	for _, k := range kept {
		if k == 500 {
			t.Fatal("outlier survived the filter")
		}
	}
	if len(kept) != 8 {
		t.Fatalf("kept %d, want 8", len(kept))
	}
}

func TestTukeyFilterKeepsCleanData(t *testing.T) {
	xs := []float64{10, 11, 12, 13, 14, 15}
	kept, removed := TukeyFilter(xs)
	if removed != 0 || len(kept) != len(xs) {
		t.Fatalf("clean data was filtered: removed=%d", removed)
	}
}

func TestTukeyFilterSmallInput(t *testing.T) {
	xs := []float64{1, 1000}
	kept, removed := TukeyFilter(xs)
	if removed != 0 || len(kept) != 2 {
		t.Fatal("inputs with <4 samples must pass through unfiltered")
	}
}

func TestTukeyFilterPreservesOrder(t *testing.T) {
	xs := []float64{12, 10, 11, 13, 10, 12}
	kept, _ := TukeyFilter(xs)
	for i := range kept {
		if kept[i] != xs[i] {
			t.Fatal("filter must preserve original sample order")
		}
	}
}

func TestTukeySubsetProperty(t *testing.T) {
	// Property: filtered output is always a subset with bounds within input.
	f := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		kept, removed := TukeyFilter(xs)
		if len(kept)+removed != len(xs) {
			return false
		}
		if len(kept) > 0 && (Min(kept) < Min(xs) || Max(kept) > Max(xs)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{100, 101, 99, 100, 102, 98, 100, 5000}
	s := Summarize(xs)
	if s.Outliers != 1 {
		t.Fatalf("outliers = %d, want 1", s.Outliers)
	}
	if s.N != 7 {
		t.Fatalf("n = %d, want 7", s.N)
	}
	if s.Mean < 98 || s.Mean > 102 {
		t.Fatalf("mean = %v contaminated by outlier", s.Mean)
	}
	if s.Min > s.P50 || s.P50 > s.Max {
		t.Fatal("ordering violated: min ≤ p50 ≤ max")
	}
	if s.String() == "" {
		t.Fatal("String() should render")
	}
}

func TestFromUint64(t *testing.T) {
	out := FromUint64([]uint64{1, 2, 3})
	if len(out) != 3 || out[2] != 3 {
		t.Fatalf("FromUint64 = %v", out)
	}
}

func TestJainFairnessIndex(t *testing.T) {
	if j := Jain(nil); j != 0 {
		t.Fatalf("Jain(nil) = %v", j)
	}
	if j := Jain([]float64{0, 0}); j != 0 {
		t.Fatalf("Jain(zeros) = %v", j)
	}
	if j := Jain([]float64{3, 3, 3, 3}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal allocation: Jain = %v, want 1", j)
	}
	// One tenant captures everything: index collapses to 1/n.
	if j := Jain([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("monopoly: Jain = %v, want 0.25", j)
	}
	// Scale invariance.
	a := Jain([]float64{1, 2, 3})
	b := Jain([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("not scale invariant: %v vs %v", a, b)
	}
	if a <= 0.25 || a >= 1 {
		t.Fatalf("mixed allocation index %v out of (1/n, 1)", a)
	}
}
