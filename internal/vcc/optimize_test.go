package vcc

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/wasp"
)

const optProbeSrc = `
virtine int probe(int n) {
	int a = n + 1;
	int b = a * 2;
	int c = 3 + 4;          /* constant-folds */
	int arr[8];
	for (int i = 0; i < 8; i++) { arr[i] = i * i; }
	int sum = 0;
	for (int i = 0; i < 8; i++) { sum += arr[i]; }
	return a + b + c + sum;
}`

// compileBoth compiles with and without optimization.
func compileBoth(t *testing.T, src, name string) (opt, raw *Virtine) {
	t.Helper()
	po, err := CompileWithOptions(src, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := CompileWithOptions(src, Options{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	return po.Virtines[name], pr.Virtines[name]
}

func runVirtine(t *testing.T, v *Virtine, args ...int64) (int64, uint64) {
	t.Helper()
	w := wasp.New()
	clk := cycles.NewClock()
	res, err := w.Run(v.Image, wasp.RunConfig{
		Policy: v.Policy, Args: MarshalArgs(args...), RetBytes: RetSize,
	}, clk)
	if err != nil {
		t.Fatal(err)
	}
	return UnmarshalRet(res.Ret), clk.Now()
}

func TestOptimizerPreservesSemantics(t *testing.T) {
	opt, raw := compileBoth(t, optProbeSrc, "probe")
	for _, n := range []int64{0, 1, 7, -3, 1000} {
		vo, _ := runVirtine(t, opt, n)
		vr, _ := runVirtine(t, raw, n)
		if vo != vr {
			t.Fatalf("probe(%d): optimized %d != unoptimized %d", n, vo, vr)
		}
	}
}

func TestOptimizerShrinksCodeAndCycles(t *testing.T) {
	opt, raw := compileBoth(t, optProbeSrc, "probe")
	io, ir := InstructionCount(opt.Asm), InstructionCount(raw.Asm)
	if io >= ir {
		t.Fatalf("optimizer did not shrink code: %d vs %d instructions", io, ir)
	}
	// At least 15% fewer instructions on this stack-machine-heavy code.
	if float64(io) > 0.85*float64(ir) {
		t.Fatalf("optimizer too weak: %d vs %d instructions", io, ir)
	}
	if len(opt.Image.Code) >= len(raw.Image.Code) {
		t.Fatalf("image did not shrink: %d vs %d bytes", len(opt.Image.Code), len(raw.Image.Code))
	}
	_, co := runVirtine(t, opt, 5)
	_, cr := runVirtine(t, raw, 5)
	if co >= cr {
		t.Fatalf("optimized run (%d cycles) not cheaper than raw (%d)", co, cr)
	}
}

func TestOptimizerOnAllPrograms(t *testing.T) {
	// Every whole-program test compiled both ways must agree; this is the
	// optimizer's regression net.
	programs := []struct {
		src  string
		name string
		args []int64
		want int64
	}{
		{`virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }`, "fib", []int64{15}, 610},
		{`virtine int f(int a, int b) { return (a << 3) | (b & 7); }`, "f", []int64{5, 12}, 5<<3 | 12&7},
		{`virtine int f(int n) {
			char buf[32];
			strcpy(buf, "abc");
			return strlen(buf) + n;
		}`, "f", []int64{10}, 13},
	}
	for _, p := range programs {
		opt, raw := compileBoth(t, p.src, p.name)
		vo, _ := runVirtine(t, opt, p.args...)
		vr, _ := runVirtine(t, raw, p.args...)
		if vo != p.want || vr != p.want {
			t.Fatalf("%s: optimized=%d raw=%d want=%d", p.name, vo, vr, p.want)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	// A pure-constant expression must compile to a single movi, not a
	// tree of pushes.
	prog, err := Compile(`virtine int k(int n) { return 2 * 3 + (10 << 2) - 6 / 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	v := prog.Virtines["k"]
	got, _ := runVirtine(t, v, 0)
	if got != 2*3+(10<<2)-6/2 {
		t.Fatalf("k = %d", got)
	}
	// The folded function body should be tiny; the whole image (boot
	// stub + crt0 + function) stays under ~75 instructions.
	if n := InstructionCount(v.Asm); n > 75 {
		t.Fatalf("folded program still has %d instructions", n)
	}
}

func TestPeepholePatternsDirectly(t *testing.T) {
	in := "\tpush rax\n\tmovi rax, 7\n\tmov rbx, rax\n\tpop rax\n"
	out := optimize(in)
	if InstructionCount(out) != 1 {
		t.Fatalf("pattern not collapsed:\n%s", out)
	}
	in2 := "\tmov rax, rax\n\thlt\n"
	if InstructionCount(optimize(in2)) != 1 {
		t.Fatal("mov X,X not removed")
	}
	in3 := "\tjmp .L1\n.L1:\n\thlt\n"
	if InstructionCount(optimize(in3)) != 1 {
		t.Fatal("jump-to-next not removed")
	}
	// A jump to a *different* label must survive.
	in4 := "\tjmp .L2\n.L1:\n\thlt\n.L2:\n\tnop\n"
	if InstructionCount(optimize(in4)) != 3 {
		t.Fatal("jump wrongly removed")
	}
}
