package vcc

import (
	"fmt"
	"hash/crc32"

	"repro/internal/guest"
	"repro/internal/hypercall"
)

// runtimeC is the mini-libc (the paper's newlib port, §5.3): a C-subset
// standard library whose system calls forward to hypercalls. It is
// compiled together with every translation unit; only the functions the
// virtine's call graph actually reaches are packaged into the image.
const runtimeC = `
/* vcc runtime: mini-libc forwarded to hypercalls (newlib analogue). */
char *__heap;

char *malloc(int n) {
	if (__heap == 0) { __heap = __image_end(); }
	if (n < 1) { n = 1; }
	n = (n + 7) & ~7;
	char *p = __heap;
	__heap = __heap + n;
	return p;
}

void free(char *p) { /* bump allocator: freed with the virtine */ }

int strlen(char *s) {
	int n = 0;
	while (s[n]) { n++; }
	return n;
}

int strcmp(char *a, char *b) {
	int i = 0;
	while (a[i] && a[i] == b[i]) { i++; }
	return a[i] - b[i];
}

char *strcpy(char *d, char *s) {
	int i = 0;
	while (s[i]) { d[i] = s[i]; i++; }
	d[i] = 0;
	return d;
}

char *memcpy(char *d, char *s, int n) {
	for (int i = 0; i < n; i++) { d[i] = s[i]; }
	return d;
}

char *memset(char *d, int c, int n) {
	for (int i = 0; i < n; i++) { d[i] = c; }
	return d;
}

int memcmp(char *a, char *b, int n) {
	for (int i = 0; i < n; i++) {
		if (a[i] != b[i]) { return a[i] - b[i]; }
	}
	return 0;
}

int write(int fd, char *buf, int n) { return __hc(1, fd, buf, n); }
int read(int fd, char *buf, int n)  { return __hc(2, fd, buf, n); }
int open(char *path)                { return __hc(3, path, 0, 0); }
int close(int fd)                   { return __hc(4, fd, 0, 0); }
int stat_size(char *path)           { return __hc(5, path, 0, 0); }
int send(int sock, char *buf, int n){ return __hc(6, sock, buf, n); }
int recv(int sock, char *buf, int n){ return __hc(7, sock, buf, n); }
int get_data(char *buf, int cap)    { return __hc(9, buf, cap, 0); }
int return_data(char *buf, int n)   { return __hc(10, buf, n, 0); }
int mark(int id)                    { return __hc(11, id, 0, 0); }
int puts(char *s)                   { return write(1, s, strlen(s)); }
void exit(int code)                 { __hc(0, code, 0, 0); }

int itoa(int v, char *out) {
	int i = 0;
	int neg = 0;
	if (v < 0) { neg = 1; v = -v; }
	char tmp[24];
	int n = 0;
	if (v == 0) { tmp[n] = '0'; n++; }
	while (v > 0) { tmp[n] = '0' + v % 10; n++; v = v / 10; }
	if (neg) { out[i] = '-'; i++; }
	while (n > 0) { n--; out[i] = tmp[n]; i++; }
	out[i] = 0;
	return i;
}

int atoi(char *s) {
	int v = 0;
	int i = 0;
	int neg = 0;
	if (s[0] == '-') { neg = 1; i = 1; }
	while (s[i] >= '0' && s[i] <= '9') { v = v * 10 + (s[i] - '0'); i++; }
	if (neg) { return -v; }
	return v;
}
`

// Virtine is one compiled virtine-annotated function: its standalone
// image, the policy its qualifiers granted, and the host-side call
// metadata.
type Virtine struct {
	Fn     *FuncDecl
	Image  *guest.Image
	Policy hypercall.Policy
	// Asm is the generated assembly (kept for tooling/debugging).
	Asm string
}

// Program is the result of compiling a translation unit.
type Program struct {
	File *File
	// Virtines maps each `virtine`-annotated function to its package.
	Virtines map[string]*Virtine
}

// Options control the compilation pipeline.
type Options struct {
	// Optimize enables the middle-end: AST constant folding plus the
	// peephole pass over generated assembly. On by default in Compile.
	Optimize bool
}

// Compile parses src together with the runtime library, finds every
// virtine-annotated function, and packages each one — with exactly the
// subset of the call graph it reaches (§5.3) — into a standalone image.
// Optimization is enabled.
func Compile(src string) (*Program, error) {
	return CompileWithOptions(src, Options{Optimize: true})
}

// CompileWithOptions is Compile with explicit pipeline options.
func CompileWithOptions(src string, opts Options) (*Program, error) {
	file, err := Parse(src + "\n" + runtimeC)
	if err != nil {
		return nil, err
	}
	prog := &Program{File: file, Virtines: make(map[string]*Virtine)}
	for _, fn := range file.Funcs {
		if !fn.Virtine {
			continue
		}
		v, err := packageVirtine(file, fn, opts)
		if err != nil {
			return nil, err
		}
		prog.Virtines[fn.Name] = v
	}
	return prog, nil
}

// CompileFunc compiles src and returns the single named virtine.
func CompileFunc(src, name string) (*Virtine, error) {
	prog, err := Compile(src)
	if err != nil {
		return nil, err
	}
	v, ok := prog.Virtines[name]
	if !ok {
		return nil, fmt.Errorf("vcc: no virtine function %q (did you annotate it?)", name)
	}
	return v, nil
}

// packageVirtine cuts the call graph at fn and emits a complete image.
func packageVirtine(file *File, fn *FuncDecl, opts Options) (*Virtine, error) {
	reach := reachable(file, fn.Name)
	g := newGen(file)

	// crt0: runs at the long-mode entry point. Snapshot first (the
	// language extensions use snapshotting by default, §5.3; the capture
	// point precedes argument load so restored runs see fresh args),
	// then marshal arguments from guest.ArgAddr onto the stack, call the
	// root, store the return value at guest.RetAddr, and exit.
	g.emit("out %d, rdi", hypercall.NrSnapshot)
	g.emit("movi rbx, %d", guest.ArgAddr)
	for i := len(fn.Params) - 1; i >= 0; i-- {
		g.emit("load rax, [rbx+%d]", 8*i)
		g.emit("push rax")
	}
	g.emit("call fn_%s", fn.Name)
	if n := len(fn.Params); n > 0 {
		g.emit("add rsp, %d", 8*n)
	}
	g.emit("movi rbx, %d", guest.RetAddr)
	g.emit("store [rbx], rax")
	g.emit("movi rdi, 0")
	g.emit("out %d, rdi", hypercall.NrExit)
	g.emit("hlt")

	// Emit every reachable function.
	for _, f := range file.Funcs {
		if !reach[f.Name] {
			continue
		}
		if f.Body == nil {
			return nil, errf(f.Line, "function %s has no body", f.Name)
		}
		if err := g.genFunc(f); err != nil {
			return nil, err
		}
	}

	// Data: globals and the string pool. All globals of the unit are
	// packaged (a copy-in snapshot of the globals the virtine can see,
	// matching §5.3's global-variable snapshot semantics).
	for _, gv := range file.Globals {
		fmt.Fprintf(&g.sb, ".align 8\ng_%s:\n", gv.Name)
		if gv.Init != nil {
			v, err := constFold(gv.Init)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&g.sb, "\t.dq %d\n", v)
		} else {
			fmt.Fprintf(&g.sb, "\t.zero %d\n", max(gv.T.Size(), 8))
		}
	}
	for i, s := range g.strs {
		fmt.Fprintf(&g.sb, "%s:\n\t.db %q, 0\n", g.strLbl[i], s)
	}

	workload := g.sb.String()
	if opts.Optimize {
		workload = optimize(workload)
	}
	asmSrc := guest.WrapLongMode(workload)
	img, err := guest.FromAsm("virtine-"+fn.Name, asmSrc)
	if err != nil {
		return nil, fmt.Errorf("vcc: internal assembly error for %s: %w", fn.Name, err)
	}
	// Snapshots are keyed by image name (§5.2: all executions of the
	// same function share one snapshot). Content-address the name so two
	// different programs that both define, say, `handle` never collide
	// in a shared Wasp's snapshot cache.
	img.Name = fmt.Sprintf("virtine-%s-%08x", fn.Name, crc32.ChecksumIEEE(img.Code))
	return &Virtine{
		Fn:     fn,
		Image:  img,
		Policy: policyFor(fn),
		Asm:    asmSrc,
	}, nil
}

// policyFor derives the hypercall policy from the function's qualifiers
// (§5.3): virtine → deny-all, virtine_permissive → allow-all,
// virtine_config(mask) → bit-mask.
func policyFor(fn *FuncDecl) hypercall.Policy {
	switch {
	case fn.Permissive:
		return hypercall.AllowAll{}
	case fn.ConfigMask >= 0:
		return hypercall.Mask(fn.ConfigMask)
	default:
		return hypercall.DenyAll{}
	}
}

// reachable computes the set of function names reachable from root — the
// call-graph cut that determines what is packaged into the image.
func reachable(file *File, root string) map[string]bool {
	seen := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		fn := file.Func(name)
		if fn == nil {
			return // builtin (__hc, __image_end) or undefined: caught later
		}
		seen[name] = true
		if fn.Body != nil {
			walkCalls(fn.Body, visit)
		}
	}
	visit(root)
	return seen
}

// walkCalls invokes f for every function name called within a statement
// tree.
func walkCalls(s Stmt, f func(string)) {
	var we func(Expr)
	we = func(e Expr) {
		switch x := e.(type) {
		case *Unary:
			we(x.X)
		case *Binary:
			we(x.X)
			we(x.Y)
		case *Assign:
			we(x.L)
			we(x.R)
		case *Cond:
			we(x.C)
			we(x.A)
			we(x.B)
		case *Index:
			we(x.Base)
			we(x.Idx)
		case *IncDec:
			we(x.X)
		case *Call:
			f(x.Name)
			for _, a := range x.Args {
				we(a)
			}
		}
	}
	var ws func(Stmt)
	ws = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, sub := range st.Stmts {
				ws(sub)
			}
		case *VarDecl:
			if st.Init != nil {
				we(st.Init)
			}
		case *ExprStmt:
			we(st.X)
		case *If:
			we(st.C)
			if st.Then != nil {
				ws(st.Then)
			}
			if st.Else != nil {
				ws(st.Else)
			}
		case *While:
			we(st.C)
			if st.Body != nil {
				ws(st.Body)
			}
		case *For:
			if st.Init != nil {
				ws(st.Init)
			}
			if st.C != nil {
				we(st.C)
			}
			if st.Post != nil {
				we(st.Post)
			}
			if st.Body != nil {
				ws(st.Body)
			}
		case *Return:
			if st.X != nil {
				we(st.X)
			}
		}
	}
	ws(s)
}

// constFold evaluates a constant initializer expression.
func constFold(e Expr) (int64, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, nil
	case *Unary:
		v, err := constFold(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return -v, nil
		case "~":
			return ^v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *Binary:
		a, err := constFold(x.X)
		if err != nil {
			return 0, err
		}
		b, err := constFold(x.Y)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, errf(x.Pos(), "division by zero in constant")
			}
			return a / b, nil
		case "%":
			if b == 0 {
				return 0, errf(x.Pos(), "division by zero in constant")
			}
			return a % b, nil
		case "&":
			return a & b, nil
		case "|":
			return a | b, nil
		case "^":
			return a ^ b, nil
		case "<<":
			return a << (uint(b) & 63), nil
		case ">>":
			return a >> (uint(b) & 63), nil
		}
	case *SizeofType:
		return int64(x.T.Size()), nil
	}
	return 0, errf(e.Pos(), "initializer is not a constant expression")
}

// MarshalArgs packs int64 arguments the way the generated crt0 expects
// them: consecutive little-endian 8-byte slots at guest.ArgAddr.
func MarshalArgs(vals ...int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		for j := 0; j < 8; j++ {
			out[8*i+j] = byte(uint64(v) >> (8 * j))
		}
	}
	return out
}

// UnmarshalRet reads the little-endian int64 return value the crt0 stored
// at guest.RetAddr.
func UnmarshalRet(b []byte) int64 {
	var v uint64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return int64(v)
}

// RetSize is the return-value blob size callers pass as RunConfig.RetBytes.
const RetSize = 8
