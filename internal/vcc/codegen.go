package vcc

import (
	"fmt"
	"strings"
)

// Code generation targets 64-bit long mode. The model is a simple stack
// machine: every expression leaves its value in rax; binary operators
// spill the left operand to the stack. Frames are rbp-based:
//
//	[rbp+16+8i]  argument i (pushed right-to-left by the caller)
//	[rbp+8]      return address (pushed by CALL)
//	[rbp+0]      saved rbp
//	[rbp-8...]   locals (8-byte slots; arrays rounded up)
//
// rax is the value register, rbx the secondary operand, rcx a scratch
// address register; rdi/rsi/rdx carry hypercall arguments at OUT sites.
// Values never live in registers across calls, so there is no save/restore
// protocol beyond rbp.

type local struct {
	off int // positive: [rbp - off]
	t   *Type
}

type gen struct {
	sb      strings.Builder
	file    *File
	globals map[string]*VarDecl
	funcs   map[string]*FuncDecl

	// per-function state
	fn       *FuncDecl
	locals   []map[string]local
	frame    int
	labelN   int
	breakLbl []string
	contLbl  []string

	// string literal pool
	strs   []string
	strLbl []string
}

func newGen(f *File) *gen {
	g := &gen{
		file:    f,
		globals: make(map[string]*VarDecl),
		funcs:   make(map[string]*FuncDecl),
	}
	for _, v := range f.Globals {
		g.globals[v.Name] = v
	}
	for _, fn := range f.Funcs {
		g.funcs[fn.Name] = fn
	}
	return g
}

func (g *gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.sb, "\t"+format+"\n", args...)
}

func (g *gen) label(l string) { fmt.Fprintf(&g.sb, "%s:\n", l) }

func (g *gen) newLabel(hint string) string {
	g.labelN++
	return fmt.Sprintf(".L%s%d", hint, g.labelN)
}

func (g *gen) strLabel(s string) string {
	for i, prev := range g.strs {
		if prev == s {
			return g.strLbl[i]
		}
	}
	l := fmt.Sprintf("str_%d", len(g.strs))
	g.strs = append(g.strs, s)
	g.strLbl = append(g.strLbl, l)
	return l
}

// scope management

func (g *gen) pushScope() { g.locals = append(g.locals, make(map[string]local)) }
func (g *gen) popScope()  { g.locals = g.locals[:len(g.locals)-1] }

func (g *gen) lookup(name string) (local, bool) {
	for i := len(g.locals) - 1; i >= 0; i-- {
		if l, ok := g.locals[i][name]; ok {
			return l, true
		}
	}
	return local{}, false
}

func (g *gen) declare(name string, t *Type, line int) (local, error) {
	if _, dup := g.locals[len(g.locals)-1][name]; dup {
		return local{}, errf(line, "redeclaration of %s", name)
	}
	size := t.Size()
	if size < 8 {
		size = 8
	}
	size = (size + 7) &^ 7
	g.frame += size
	l := local{off: g.frame, t: t}
	g.locals[len(g.locals)-1][name] = l
	return l, nil
}

// genFunc emits one function.
func (g *gen) genFunc(fn *FuncDecl) error {
	g.fn = fn
	g.frame = 0
	g.locals = nil
	g.pushScope()
	for i, p := range fn.Params {
		if !p.T.IsScalar() {
			return errf(fn.Line, "parameter %s has non-scalar type %s", p.Name, p.T)
		}
		// Parameters live above rbp; record with negative "offset"
		// encoded as -(16+8i) so loads know where to look.
		g.locals[0][p.Name] = local{off: -(16 + 8*i), t: p.T}
	}

	g.label("fn_" + fn.Name)
	g.emit("push rbp")
	g.emit("mov rbp, rsp")
	// Frame size is patched afterwards: generate body into a sub-buffer.
	outer := g.sb
	g.sb = strings.Builder{}
	if err := g.genBlock(fn.Body); err != nil {
		return err
	}
	body := g.sb.String()
	g.sb = outer
	if g.frame > 0 {
		g.emit("sub rsp, %d", (g.frame+15)&^15)
	}
	g.sb.WriteString(body)
	// Implicit return 0 for control paths that fall off the end.
	g.emit("movi rax, 0")
	g.emit("mov rsp, rbp")
	g.emit("pop rbp")
	g.emit("ret")
	g.popScope()
	return nil
}

func (g *gen) genBlock(b *Block) error {
	g.pushScope()
	defer g.popScope()
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return g.genBlock(st)
	case *VarDecl:
		l, err := g.declare(st.Name, st.T, st.Line)
		if err != nil {
			return err
		}
		if st.Init != nil {
			if !st.T.IsScalar() {
				return errf(st.Line, "cannot initialize non-scalar local %s", st.Name)
			}
			if _, err := g.genExpr(st.Init); err != nil {
				return err
			}
			g.store(l.t, fmt.Sprintf("[rbp-%d]", l.off))
		}
		return nil
	case *ExprStmt:
		_, err := g.genExpr(st.X)
		return err
	case *Return:
		if st.X != nil {
			if _, err := g.genExpr(st.X); err != nil {
				return err
			}
		} else {
			g.emit("movi rax, 0")
		}
		g.emit("mov rsp, rbp")
		g.emit("pop rbp")
		g.emit("ret")
		return nil
	case *If:
		els := g.newLabel("else")
		end := g.newLabel("endif")
		if err := g.genCondJump(st.C, els); err != nil {
			return err
		}
		if st.Then != nil {
			if err := g.genStmt(st.Then); err != nil {
				return err
			}
		}
		if st.Else != nil {
			g.emit("jmp %s", end)
			g.label(els)
			if err := g.genStmt(st.Else); err != nil {
				return err
			}
			g.label(end)
		} else {
			g.label(els)
		}
		return nil
	case *While:
		top := g.newLabel("while")
		end := g.newLabel("endwhile")
		g.breakLbl = append(g.breakLbl, end)
		g.contLbl = append(g.contLbl, top)
		g.label(top)
		if err := g.genCondJump(st.C, end); err != nil {
			return err
		}
		if st.Body != nil {
			if err := g.genStmt(st.Body); err != nil {
				return err
			}
		}
		g.emit("jmp %s", top)
		g.label(end)
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]
		return nil
	case *For:
		g.pushScope()
		defer g.popScope()
		if st.Init != nil {
			if err := g.genStmt(st.Init); err != nil {
				return err
			}
		}
		top := g.newLabel("for")
		post := g.newLabel("forpost")
		end := g.newLabel("endfor")
		g.breakLbl = append(g.breakLbl, end)
		g.contLbl = append(g.contLbl, post)
		g.label(top)
		if st.C != nil {
			if err := g.genCondJump(st.C, end); err != nil {
				return err
			}
		}
		if st.Body != nil {
			if err := g.genStmt(st.Body); err != nil {
				return err
			}
		}
		g.label(post)
		if st.Post != nil {
			if _, err := g.genExpr(st.Post); err != nil {
				return err
			}
		}
		g.emit("jmp %s", top)
		g.label(end)
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]
		return nil
	case *BreakStmt:
		if len(g.breakLbl) == 0 {
			return errf(st.Line, "break outside loop")
		}
		g.emit("jmp %s", g.breakLbl[len(g.breakLbl)-1])
		return nil
	case *ContinueStmt:
		if len(g.contLbl) == 0 {
			return errf(st.Line, "continue outside loop")
		}
		g.emit("jmp %s", g.contLbl[len(g.contLbl)-1])
		return nil
	}
	return fmt.Errorf("vcc: unknown statement %T", s)
}

// genCondJump evaluates c and jumps to target when it is false.
func (g *gen) genCondJump(c Expr, target string) error {
	if _, err := g.genExpr(c); err != nil {
		return err
	}
	g.emit("cmp rax, 0")
	g.emit("jz %s", target)
	return nil
}

// load/store emit a width-appropriate memory access through the operand
// string (e.g. "[rbx]" or "[rbp-8]").
func (g *gen) load(t *Type, operand string) {
	if t.Kind == TypeChar {
		g.emit("loadb rax, %s", operand)
	} else {
		g.emit("load rax, %s", operand)
	}
}

func (g *gen) store(t *Type, operand string) {
	if t.Kind == TypeChar {
		g.emit("storeb %s, rax", operand)
	} else {
		g.emit("store %s, rax", operand)
	}
}

// genAddr leaves the address of the lvalue in rax and returns the type of
// the object at that address.
func (g *gen) genAddr(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *Ident:
		if l, ok := g.lookup(x.Name); ok {
			if l.off < 0 {
				g.emit("mov rax, rbp")
				g.emit("add rax, %d", -l.off)
			} else {
				g.emit("mov rax, rbp")
				g.emit("sub rax, %d", l.off)
			}
			return l.t, nil
		}
		if gv, ok := g.globals[x.Name]; ok {
			g.emit("movi rax, g_%s", x.Name)
			return gv.T, nil
		}
		return nil, errf(x.Pos(), "undefined variable %s", x.Name)
	case *Unary:
		if x.Op == "*" {
			t, err := g.genExpr(x.X)
			if err != nil {
				return nil, err
			}
			if t.Kind != TypePtr {
				return nil, errf(x.Pos(), "cannot dereference non-pointer %s", t)
			}
			return t.Elem, nil
		}
	case *Index:
		bt, err := g.genExpr(x.Base)
		if err != nil {
			return nil, err
		}
		if bt.Kind != TypePtr {
			return nil, errf(x.Pos(), "cannot index non-pointer %s", bt)
		}
		g.emit("push rax")
		it, err := g.genExpr(x.Idx)
		if err != nil {
			return nil, err
		}
		if !it.IsScalar() {
			return nil, errf(x.Pos(), "index must be scalar")
		}
		if sz := bt.Elem.Size(); sz != 1 {
			g.emit("movi rbx, %d", sz)
			g.emit("mul rax, rbx")
		}
		g.emit("pop rbx")
		g.emit("add rax, rbx")
		return bt.Elem, nil
	}
	return nil, errf(e.Pos(), "expression is not an lvalue")
}

// genExpr evaluates e into rax and returns its (decayed) type.
func (g *gen) genExpr(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *IntLit:
		g.emit("movi rax, %d", x.Val)
		return tyInt, nil

	case *StrLit:
		g.emit("movi rax, %s", g.strLabel(x.Val))
		return PtrTo(tyChar), nil

	case *SizeofType:
		g.emit("movi rax, %d", x.T.Size())
		return tyInt, nil

	case *Ident:
		t, err := g.genAddr(x)
		if err != nil {
			return nil, err
		}
		if t.Kind == TypeArray {
			return t.Decay(), nil // address is the value
		}
		g.emit("mov rbx, rax")
		g.load(t, "[rbx]")
		return t, nil

	case *Unary:
		if v, ok := foldConst(x); ok {
			g.emit("movi rax, %d", v)
			return tyInt, nil
		}
		switch x.Op {
		case "-":
			t, err := g.genExpr(x.X)
			if err != nil {
				return nil, err
			}
			if !t.IsScalar() {
				return nil, errf(x.Pos(), "bad operand to unary -")
			}
			g.emit("neg rax")
			return tyInt, nil
		case "~":
			if _, err := g.genExpr(x.X); err != nil {
				return nil, err
			}
			g.emit("not rax")
			return tyInt, nil
		case "!":
			if _, err := g.genExpr(x.X); err != nil {
				return nil, err
			}
			tl := g.newLabel("t")
			g.emit("cmp rax, 0")
			g.emit("movi rax, 1")
			g.emit("jz %s", tl)
			g.emit("movi rax, 0")
			g.label(tl)
			return tyInt, nil
		case "*":
			t, err := g.genAddr(x)
			if err != nil {
				return nil, err
			}
			if t.Kind == TypeArray {
				return t.Decay(), nil
			}
			g.emit("mov rbx, rax")
			g.load(t, "[rbx]")
			return t, nil
		case "&":
			t, err := g.genAddr(x.X)
			if err != nil {
				return nil, err
			}
			return PtrTo(t), nil
		}
		return nil, errf(x.Pos(), "unknown unary operator %s", x.Op)

	case *Binary:
		if v, ok := foldConst(x); ok {
			g.emit("movi rax, %d", v)
			return tyInt, nil
		}
		return g.genBinary(x)

	case *Assign:
		return g.genAssign(x)

	case *Cond:
		els := g.newLabel("celse")
		end := g.newLabel("cend")
		if err := g.genCondJump(x.C, els); err != nil {
			return nil, err
		}
		ta, err := g.genExpr(x.A)
		if err != nil {
			return nil, err
		}
		g.emit("jmp %s", end)
		g.label(els)
		if _, err := g.genExpr(x.B); err != nil {
			return nil, err
		}
		g.label(end)
		return ta.Decay(), nil

	case *Index:
		t, err := g.genAddr(x)
		if err != nil {
			return nil, err
		}
		if t.Kind == TypeArray {
			return t.Decay(), nil
		}
		g.emit("mov rbx, rax")
		g.load(t, "[rbx]")
		return t, nil

	case *IncDec:
		t, err := g.genAddr(x.X)
		if err != nil {
			return nil, err
		}
		if !t.IsScalar() {
			return nil, errf(x.Pos(), "%s needs a scalar lvalue", x.Op)
		}
		step := 1
		if t.Kind == TypePtr {
			step = t.Elem.Size()
		}
		g.emit("mov rcx, rax")
		g.load(t, "[rcx]")
		if x.Postfix {
			g.emit("push rax")
		}
		if x.Op == "++" {
			g.emit("add rax, %d", step)
		} else {
			g.emit("sub rax, %d", step)
		}
		g.store(t, "[rcx]")
		if x.Postfix {
			g.emit("pop rax")
		}
		return t, nil

	case *Call:
		return g.genCall(x)
	}
	return nil, errf(e.Pos(), "cannot generate code for %T", e)
}

func (g *gen) genBinary(x *Binary) (*Type, error) {
	// Short-circuit logical operators.
	if x.Op == "&&" || x.Op == "||" {
		end := g.newLabel("sc")
		if _, err := g.genExpr(x.X); err != nil {
			return nil, err
		}
		g.emit("cmp rax, 0")
		if x.Op == "&&" {
			g.emit("movi rax, 0")
			g.emit("jz %s", end)
		} else {
			g.emit("movi rax, 1")
			g.emit("jnz %s", end)
		}
		if _, err := g.genExpr(x.Y); err != nil {
			return nil, err
		}
		// Normalize to 0/1.
		tl := g.newLabel("scn")
		g.emit("cmp rax, 0")
		g.emit("movi rax, 0")
		g.emit("jz %s", tl)
		g.emit("movi rax, 1")
		g.label(tl)
		g.label(end)
		return tyInt, nil
	}

	tx, err := g.genExpr(x.X)
	if err != nil {
		return nil, err
	}
	g.emit("push rax")
	ty, err := g.genExpr(x.Y)
	if err != nil {
		return nil, err
	}
	g.emit("mov rbx, rax")
	g.emit("pop rax")
	// rax = X, rbx = Y.

	// Pointer arithmetic scaling (§7.2 marshalling uses plain ints, but
	// the libc uses pointer arithmetic heavily).
	switch x.Op {
	case "+", "-":
		if tx.Kind == TypePtr && ty.Kind != TypePtr {
			if sz := tx.Elem.Size(); sz != 1 {
				g.emit("movi rcx, %d", sz)
				g.emit("mul rbx, rcx")
			}
		} else if tx.Kind != TypePtr && ty.Kind == TypePtr && x.Op == "+" {
			if sz := ty.Elem.Size(); sz != 1 {
				g.emit("movi rcx, %d", sz)
				g.emit("mul rax, rcx")
			}
		}
	}

	result := tyInt
	if tx.Kind == TypePtr && ty.Kind != TypePtr {
		result = tx
	} else if ty.Kind == TypePtr && tx.Kind != TypePtr {
		result = ty
	}

	switch x.Op {
	case "+":
		g.emit("add rax, rbx")
	case "-":
		g.emit("sub rax, rbx")
		if tx.Kind == TypePtr && ty.Kind == TypePtr {
			if sz := tx.Elem.Size(); sz != 1 {
				g.emit("movi rbx, %d", sz)
				g.emit("div rax, rbx")
			}
			result = tyInt
		}
	case "*":
		g.emit("mul rax, rbx")
	case "/":
		g.emit("div rax, rbx")
	case "%":
		g.emit("mod rax, rbx")
	case "&":
		g.emit("and rax, rbx")
	case "|":
		g.emit("or rax, rbx")
	case "^":
		g.emit("xor rax, rbx")
	case "<<":
		g.emit("shlv rax, rbx")
	case ">>":
		g.emit("sarv rax, rbx")
	case "==", "!=", "<", ">", "<=", ">=":
		jcc := map[string]string{
			"==": "jz", "!=": "jnz", "<": "jl", ">": "jg", "<=": "jle", ">=": "jge",
		}[x.Op]
		tl := g.newLabel("cmp")
		g.emit("cmp rax, rbx")
		g.emit("movi rax, 1")
		g.emit("%s %s", jcc, tl)
		g.emit("movi rax, 0")
		g.label(tl)
		return tyInt, nil
	default:
		return nil, errf(x.Pos(), "unknown operator %s", x.Op)
	}
	return result, nil
}

func (g *gen) genAssign(x *Assign) (*Type, error) {
	t, err := g.genAddr(x.L)
	if err != nil {
		return nil, err
	}
	if !t.IsScalar() {
		return nil, errf(x.Pos(), "cannot assign to non-scalar %s", t)
	}
	g.emit("push rax")
	if x.Op == "=" {
		if _, err := g.genExpr(x.R); err != nil {
			return nil, err
		}
	} else {
		// Compound assignment: rewrite a op= b as a = a op b, reusing
		// the already-computed address via a synthetic load.
		op := strings.TrimSuffix(x.Op, "=")
		// load current value
		g.emit("load rcx, [rsp]") // address we just pushed
		g.emit("mov rbx, rcx")
		if t.Kind == TypeChar {
			g.emit("loadb rax, [rbx]")
		} else {
			g.emit("load rax, [rbx]")
		}
		g.emit("push rax")
		rt, err := g.genExpr(x.R)
		if err != nil {
			return nil, err
		}
		g.emit("mov rbx, rax")
		g.emit("pop rax")
		// pointer-scaled compound add/sub
		if (op == "+" || op == "-") && t.Kind == TypePtr && rt.Kind != TypePtr {
			if sz := t.Elem.Size(); sz != 1 {
				g.emit("movi rcx, %d", sz)
				g.emit("mul rbx, rcx")
			}
		}
		switch op {
		case "+":
			g.emit("add rax, rbx")
		case "-":
			g.emit("sub rax, rbx")
		case "*":
			g.emit("mul rax, rbx")
		case "/":
			g.emit("div rax, rbx")
		case "%":
			g.emit("mod rax, rbx")
		case "&":
			g.emit("and rax, rbx")
		case "|":
			g.emit("or rax, rbx")
		case "^":
			g.emit("xor rax, rbx")
		case "<<":
			g.emit("shlv rax, rbx")
		case ">>":
			g.emit("sarv rax, rbx")
		default:
			return nil, errf(x.Pos(), "unknown compound operator %s", x.Op)
		}
	}
	g.emit("pop rbx")
	g.store(t, "[rbx]")
	return t, nil
}

func (g *gen) genCall(x *Call) (*Type, error) {
	// __hc(nr, a0, a1, a2): the hypercall intrinsic. nr must be a
	// constant; up to three arguments travel in rdi/rsi/rdx.
	if x.Name == "__hc" {
		if len(x.Args) < 1 || len(x.Args) > 4 {
			return nil, errf(x.Pos(), "__hc wants 1-4 arguments")
		}
		nr, ok := x.Args[0].(*IntLit)
		if !ok {
			return nil, errf(x.Pos(), "__hc number must be a constant")
		}
		rest := x.Args[1:]
		for _, a := range rest {
			if _, err := g.genExpr(a); err != nil {
				return nil, err
			}
			g.emit("push rax")
		}
		regs := []string{"rdi", "rsi", "rdx"}
		for i := len(rest) - 1; i >= 0; i-- {
			g.emit("pop %s", regs[i])
		}
		g.emit("out %d, rdi", nr.Val)
		return tyInt, nil
	}
	// __image_end(): address of the end of the packaged image — the
	// heap start the mini-libc's allocator uses.
	if x.Name == "__image_end" {
		if len(x.Args) != 0 {
			return nil, errf(x.Pos(), "__image_end takes no arguments")
		}
		g.emit("movi rax, __image_end")
		return PtrTo(tyChar), nil
	}

	fn, ok := g.funcs[x.Name]
	if !ok {
		return nil, errf(x.Pos(), "call to undefined function %s", x.Name)
	}
	if len(x.Args) != len(fn.Params) {
		return nil, errf(x.Pos(), "%s wants %d arguments, got %d", x.Name, len(fn.Params), len(x.Args))
	}
	// Push right-to-left so arg0 is nearest the frame.
	for i := len(x.Args) - 1; i >= 0; i-- {
		t, err := g.genExpr(x.Args[i])
		if err != nil {
			return nil, err
		}
		if !t.IsScalar() {
			return nil, errf(x.Pos(), "argument %d to %s is not scalar", i, x.Name)
		}
		g.emit("push rax")
	}
	g.emit("call fn_%s", x.Name)
	if n := len(x.Args); n > 0 {
		g.emit("add rsp, %d", 8*n)
	}
	return fn.Ret.Decay(), nil
}

// Parameters are recorded with negative offsets; genAddr needs to treat
// them as [rbp + (16+8i)]. The lookup above encodes that in l.off < 0.
