package vcc

import "fmt"

// Type describes a C-subset type: int (8 bytes), char (1 byte), pointers,
// and one-dimensional arrays.
type Type struct {
	Kind TypeKind
	Elem *Type // pointer/array element
	N    int   // array length
}

// TypeKind enumerates the base kinds.
type TypeKind uint8

const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeChar
	TypePtr
	TypeArray
)

var (
	tyVoid = &Type{Kind: TypeVoid}
	tyInt  = &Type{Kind: TypeInt}
	tyChar = &Type{Kind: TypeChar}
)

// PtrTo returns a pointer type to t.
func PtrTo(t *Type) *Type { return &Type{Kind: TypePtr, Elem: t} }

// Size returns the storage size in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TypeVoid:
		return 0
	case TypeChar:
		return 1
	case TypeInt, TypePtr:
		return 8
	case TypeArray:
		return t.Elem.Size() * t.N
	}
	return 0
}

// IsScalar reports whether t fits in a register.
func (t *Type) IsScalar() bool {
	return t.Kind == TypeInt || t.Kind == TypeChar || t.Kind == TypePtr
}

// Decay converts arrays to pointers for value contexts.
func (t *Type) Decay() *Type {
	if t.Kind == TypeArray {
		return PtrTo(t.Elem)
	}
	return t
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.N)
	}
	return "?"
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TypePtr:
		return t.Elem.Equal(o.Elem)
	case TypeArray:
		return t.N == o.N && t.Elem.Equal(o.Elem)
	}
	return true
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	Pos() int
}

type exprBase struct{ Line int }

func (e exprBase) exprNode() {}
func (e exprBase) Pos() int  { return e.Line }

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	Val int64
}

// StrLit is a string literal (becomes a static char array).
type StrLit struct {
	exprBase
	Val   string
	Label string // assigned during codegen
}

// Ident references a variable or function name.
type Ident struct {
	exprBase
	Name string
}

// Unary is -x, !x, ~x, *x, &x.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is x op y for arithmetic/comparison/logical/bitwise operators.
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
}

// Assign is lhs = rhs and compound forms (+=, -=, ...).
type Assign struct {
	exprBase
	Op   string // "=", "+=", ...
	L, R Expr
}

// Cond is c ? a : b.
type Cond struct {
	exprBase
	C, A, B Expr
}

// Call is f(args...).
type Call struct {
	exprBase
	Name string
	Args []Expr
}

// Index is base[idx].
type Index struct {
	exprBase
	Base, Idx Expr
}

// IncDec is x++ / x-- (postfix) or ++x / --x (prefix).
type IncDec struct {
	exprBase
	Op      string // "++" or "--"
	Postfix bool
	X       Expr
}

// SizeofType is sizeof(type).
type SizeofType struct {
	exprBase
	T *Type
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
}

// Block is { stmts }.
type Block struct{ Stmts []Stmt }

// VarDecl declares a local (or global, at file scope).
type VarDecl struct {
	Name string
	T    *Type
	Init Expr // optional
	Line int
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct{ X Expr }

// If is if (c) then else els.
type If struct {
	C    Expr
	Then Stmt
	Else Stmt // optional
}

// While is while (c) body.
type While struct {
	C    Expr
	Body Stmt
}

// For is for (init; c; post) body.
type For struct {
	Init Stmt // VarDecl or ExprStmt, optional
	C    Expr // optional
	Post Expr // optional
	Body Stmt
}

// Return is return [x].
type Return struct {
	X    Expr // optional
	Line int
}

// BreakStmt / ContinueStmt.
type BreakStmt struct{ Line int }
type ContinueStmt struct{ Line int }

func (*Block) stmtNode()        {}
func (*VarDecl) stmtNode()      {}
func (*ExprStmt) stmtNode()     {}
func (*If) stmtNode()           {}
func (*While) stmtNode()        {}
func (*For) stmtNode()          {}
func (*Return) stmtNode()       {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Param is one function parameter.
type Param struct {
	Name string
	T    *Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name    string
	Ret     *Type
	Params  []Param
	Body    *Block
	Line    int
	Virtine bool
	// Permissive grants allow-all; ConfigMask (when >= 0) grants a
	// bit-mask policy (§5.3).
	Permissive bool
	ConfigMask int64 // -1 when absent
}

// File is a parsed translation unit.
type File struct {
	Funcs   []*FuncDecl
	Globals []*VarDecl
}

// Func returns the function with the given name, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}
