package vcc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cycles"
	"repro/internal/wasp"
)

// Differential testing: generate random C expressions over the function's
// parameters, evaluate them with a Go-side reference evaluator, compile
// them with vcc (optimized and unoptimized), execute in a virtine, and
// demand all three agree. This shakes the whole pipeline — parser,
// typechecker, codegen, optimizer, assembler, CPU — against an
// independent oracle.

type exprGen struct {
	rng   *rand.Rand
	depth int
}

// gen returns (C source, reference evaluator) for a random int expression
// over variables a and b.
func (g *exprGen) gen(d int) (string, func(a, b int64) int64) {
	if d >= g.depth || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			v := int64(g.rng.Intn(201) - 100)
			return fmt.Sprintf("%d", v), func(_, _ int64) int64 { return v }
		case 1:
			return "a", func(a, _ int64) int64 { return a }
		default:
			return "b", func(_, b int64) int64 { return b }
		}
	}
	ls, lf := g.gen(d + 1)
	rs, rf := g.gen(d + 1)
	type op struct {
		tok string
		f   func(x, y int64) int64
	}
	ops := []op{
		{"+", func(x, y int64) int64 { return x + y }},
		{"-", func(x, y int64) int64 { return x - y }},
		{"*", func(x, y int64) int64 { return x * y }},
		{"&", func(x, y int64) int64 { return x & y }},
		{"|", func(x, y int64) int64 { return x | y }},
		{"^", func(x, y int64) int64 { return x ^ y }},
		{"<", func(x, y int64) int64 { return b2i(x < y) }},
		{">", func(x, y int64) int64 { return b2i(x > y) }},
		{"==", func(x, y int64) int64 { return b2i(x == y) }},
		{"!=", func(x, y int64) int64 { return b2i(x != y) }},
		{"<=", func(x, y int64) int64 { return b2i(x <= y) }},
		{">=", func(x, y int64) int64 { return b2i(x >= y) }},
	}
	// Division/modulo with a guaranteed-nonzero divisor.
	if g.rng.Intn(6) == 0 {
		div := int64(g.rng.Intn(9) + 1)
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("((%s) / %d)", ls, div), func(a, b int64) int64 { return lf(a, b) / div }
		}
		return fmt.Sprintf("((%s) %% %d)", ls, div), func(a, b int64) int64 { return lf(a, b) % div }
	}
	// Shifts with bounded constant counts.
	if g.rng.Intn(8) == 0 {
		sh := uint(g.rng.Intn(8))
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("((%s) << %d)", ls, sh), func(a, b int64) int64 { return lf(a, b) << sh }
		}
		return fmt.Sprintf("((%s) >> %d)", ls, sh), func(a, b int64) int64 { return lf(a, b) >> sh }
	}
	o := ops[g.rng.Intn(len(ops))]
	src := fmt.Sprintf("((%s) %s (%s))", ls, o.tok, rs)
	return src, func(a, b int64) int64 { return o.f(lf(a, b), rf(a, b)) }
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

func TestDifferentialExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(20260612))
	w := wasp.New()
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		g := &exprGen{rng: rng, depth: 4}
		exprSrc, ref := g.gen(0)
		src := fmt.Sprintf("virtine int f(int a, int b) { return %s; }", exprSrc)

		for _, optimized := range []bool{true, false} {
			prog, err := CompileWithOptions(src, Options{Optimize: optimized})
			if err != nil {
				t.Fatalf("trial %d (opt=%v): compile %q: %v", trial, optimized, exprSrc, err)
			}
			v := prog.Virtines["f"]
			for _, args := range [][2]int64{{0, 0}, {1, -1}, {17, 5}, {-100, 99}, {1 << 20, 3}} {
				want := ref(args[0], args[1])
				res, err := w.Run(v.Image, wasp.RunConfig{
					Policy:   v.Policy,
					Args:     MarshalArgs(args[0], args[1]),
					RetBytes: RetSize,
				}, cycles.NewClock())
				if err != nil {
					t.Fatalf("trial %d (opt=%v): run %q: %v", trial, optimized, exprSrc, err)
				}
				got := UnmarshalRet(res.Ret)
				if got != want {
					t.Fatalf("trial %d (opt=%v): f(%d,%d) with %q = %d, want %d",
						trial, optimized, args[0], args[1], exprSrc, got, want)
				}
			}
		}
	}
}

// TestDifferentialStatements does the same for small statement programs:
// loops accumulating the random expression.
func TestDifferentialStatements(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	w := wasp.New()
	for trial := 0; trial < 10; trial++ {
		g := &exprGen{rng: rng, depth: 3}
		exprSrc, ref := g.gen(0)
		src := fmt.Sprintf(`
virtine int f(int a, int b) {
	int acc = 0;
	for (int i = 0; i < 8; i++) {
		acc += %s;
		a = a + 1;
		b = b - 1;
	}
	return acc;
}`, exprSrc)
		refFn := func(a, b int64) int64 {
			var acc int64
			for i := 0; i < 8; i++ {
				acc += ref(a, b)
				a++
				b--
			}
			return acc
		}
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		v := prog.Virtines["f"]
		for _, args := range [][2]int64{{0, 0}, {5, 11}, {-3, 200}} {
			res, err := w.Run(v.Image, wasp.RunConfig{
				Policy:   v.Policy,
				Args:     MarshalArgs(args[0], args[1]),
				RetBytes: RetSize,
			}, cycles.NewClock())
			if err != nil {
				t.Fatalf("trial %d: run: %v", trial, err)
			}
			if got, want := UnmarshalRet(res.Ret), refFn(args[0], args[1]); got != want {
				t.Fatalf("trial %d: f(%d,%d) = %d, want %d (expr %q)",
					trial, args[0], args[1], got, want, exprSrc)
			}
		}
	}
}

// TestDifferentialRandomInputs sweeps random argument values through a
// fixed set of generated expressions, catching input-dependent codegen
// bugs (sign handling, flag semantics) the fixed vectors above may miss.
func TestDifferentialRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	w := wasp.New()
	for trial := 0; trial < 8; trial++ {
		g := &exprGen{rng: rng, depth: 3}
		exprSrc, ref := g.gen(0)
		src := fmt.Sprintf("virtine int f(int a, int b) { return %s; }", exprSrc)
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", exprSrc, err)
		}
		v := prog.Virtines["f"]
		for k := 0; k < 6; k++ {
			a := int64(rng.Intn(1<<16) - 1<<15)
			b := int64(rng.Intn(1<<16) - 1<<15)
			want := ref(a, b)
			res, err := w.Run(v.Image, wasp.RunConfig{
				Policy:   v.Policy,
				Args:     MarshalArgs(a, b),
				RetBytes: RetSize,
				Snapshot: true,
			}, cycles.NewClock())
			if err != nil {
				t.Fatal(err)
			}
			if got := UnmarshalRet(res.Ret); got != want {
				t.Fatalf("trial %d: f(%d,%d) = %d, want %d (%q)", trial, a, b, got, want, exprSrc)
			}
		}
	}
}

// TestSnapshotCollisionRegression pins the bug the differential fuzzer
// found: two different programs defining the same function name must not
// share a snapshot on one Wasp instance (image names are now
// content-addressed).
func TestSnapshotCollisionRegression(t *testing.T) {
	w := wasp.New()
	run := func(src string, arg int64) int64 {
		t.Helper()
		v, err := CompileFunc(src, "f")
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Run(v.Image, wasp.RunConfig{
			Policy: v.Policy, Args: MarshalArgs(arg), RetBytes: RetSize,
			Snapshot: true,
		}, cycles.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		return UnmarshalRet(res.Ret)
	}
	if got := run(`virtine int f(int n) { return n + 1; }`, 10); got != 11 {
		t.Fatalf("first program: %d", got)
	}
	// A different program, same function name, same Wasp: must not
	// resume from the first program's snapshot.
	if got := run(`virtine int f(int n) { return n * 100; }`, 10); got != 1000 {
		t.Fatalf("second program executed stale snapshot code: got %d, want 1000", got)
	}
}
