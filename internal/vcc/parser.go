package vcc

// Recursive-descent parser for the C subset. Grammar sketch:
//
//	file      := (funcdecl | globaldecl)*
//	funcdecl  := qualifiers? type ident '(' params ')' block
//	qualifiers:= 'virtine' | 'virtine_permissive' | 'virtine_config' '(' int ')'
//	stmt      := block | if | while | for | return | break | continue
//	           | vardecl ';' | expr ';' | ';'
//	expr      := assignment (precedence-climbing below)

type parser struct {
	toks []Token
	pos  int
}

// Parse parses a translation unit.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.at(TokEOF) {
		if err := p.topLevel(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k TokKind) bool {
	return p.cur().Kind == k
}
func (p *parser) atPunct(s string) bool {
	return p.cur().Kind == TokPunct && p.cur().Text == s
}
func (p *parser) atKw(s string) bool {
	return p.cur().Kind == TokKeyword && p.cur().Text == s
}
func (p *parser) eatPunct(s string) bool {
	if p.atPunct(s) {
		p.pos++
		return true
	}
	return false
}
func (p *parser) eatKw(s string) bool {
	if p.atKw(s) {
		p.pos++
		return true
	}
	return false
}
func (p *parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		return errf(p.cur().Line, "expected %q, got %s", s, p.cur())
	}
	return nil
}

func (p *parser) topLevel(f *File) error {
	virtine, permissive := false, false
	configMask := int64(-1)
	for {
		switch {
		case p.eatKw("virtine"):
			virtine = true
			continue
		case p.eatKw("virtine_permissive"):
			virtine, permissive = true, true
			continue
		case p.eatKw("virtine_config"):
			virtine = true
			if err := p.expectPunct("("); err != nil {
				return err
			}
			t := p.next()
			if t.Kind != TokInt {
				return errf(t.Line, "virtine_config wants an integer mask")
			}
			configMask = t.Int
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			continue
		}
		break
	}

	base, err := p.baseType()
	if err != nil {
		return err
	}
	ty, name, line, err := p.declarator(base)
	if err != nil {
		return err
	}
	if p.atPunct("(") {
		fn, err := p.funcRest(ty, name, line)
		if err != nil {
			return err
		}
		fn.Virtine = virtine
		fn.Permissive = permissive
		fn.ConfigMask = configMask
		f.Funcs = append(f.Funcs, fn)
		return nil
	}
	if virtine {
		return errf(line, "virtine qualifier on non-function %s", name)
	}
	// Global variable (possibly with initializer), then more declarators.
	for {
		g := &VarDecl{Name: name, T: ty, Line: line}
		if p.eatPunct("=") {
			e, err := p.assignment()
			if err != nil {
				return err
			}
			g.Init = e
		}
		f.Globals = append(f.Globals, g)
		if p.eatPunct(",") {
			ty, name, line, err = p.declarator(base)
			if err != nil {
				return err
			}
			continue
		}
		return p.expectPunct(";")
	}
}

// baseType parses int/char/long/void.
func (p *parser) baseType() (*Type, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return nil, errf(t.Line, "expected type, got %s", t)
	}
	switch t.Text {
	case "int", "long":
		p.pos++
		// allow "long long", "long int"
		for p.atKw("long") || p.atKw("int") {
			p.pos++
		}
		return tyInt, nil
	case "char":
		p.pos++
		return tyChar, nil
	case "void":
		p.pos++
		return tyVoid, nil
	}
	return nil, errf(t.Line, "expected type, got %s", t)
}

// declarator parses pointer stars, the name, and an optional array suffix.
func (p *parser) declarator(base *Type) (*Type, string, int, error) {
	ty := base
	for p.eatPunct("*") {
		ty = PtrTo(ty)
	}
	t := p.next()
	if t.Kind != TokIdent {
		return nil, "", 0, errf(t.Line, "expected identifier, got %s", t)
	}
	if p.eatPunct("[") {
		sz := p.next()
		if sz.Kind != TokInt {
			return nil, "", 0, errf(sz.Line, "array size must be a constant")
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, "", 0, err
		}
		ty = &Type{Kind: TypeArray, Elem: ty, N: int(sz.Int)}
	}
	return ty, t.Text, t.Line, nil
}

func (p *parser) funcRest(ret *Type, name string, line int) (*FuncDecl, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name, Ret: ret, Line: line}
	if !p.atPunct(")") {
		if p.atKw("void") && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ")" {
			p.pos++ // f(void)
		} else {
			for {
				base, err := p.baseType()
				if err != nil {
					return nil, err
				}
				ty, pname, _, err := p.declarator(base)
				if err != nil {
					return nil, err
				}
				fn.Params = append(fn.Params, Param{Name: pname, T: ty.Decay()})
				if !p.eatPunct(",") {
					break
				}
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Block, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.atPunct("}") {
		if p.at(TokEOF) {
			return nil, errf(p.cur().Line, "unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.pos++
	return b, nil
}

func (p *parser) isTypeStart() bool {
	return p.atKw("int") || p.atKw("char") || p.atKw("long") || p.atKw("void")
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.atPunct("{"):
		return p.block()
	case p.eatPunct(";"):
		return nil, nil
	case p.eatKw("if"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.eatKw("else") {
			if els, err = p.stmt(); err != nil {
				return nil, err
			}
		}
		return &If{C: c, Then: then, Else: els}, nil
	case p.eatKw("while"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &While{C: c, Body: body}, nil
	case p.eatKw("for"):
		return p.forStmt()
	case p.atKw("return"):
		line := p.next().Line
		r := &Return{Line: line}
		if !p.atPunct(";") {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		return r, p.expectPunct(";")
	case p.atKw("break"):
		line := p.next().Line
		return &BreakStmt{Line: line}, p.expectPunct(";")
	case p.atKw("continue"):
		line := p.next().Line
		return &ContinueStmt{Line: line}, p.expectPunct(";")
	case p.isTypeStart():
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		return d, p.expectPunct(";")
	default:
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: x}, p.expectPunct(";")
	}
}

func (p *parser) varDecl() (Stmt, error) {
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	ty, name, line, err := p.declarator(base)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name, T: ty, Line: line}
	if p.eatPunct("=") {
		e, err := p.assignment()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	if p.atPunct(",") {
		// Desugar "int a = 1, b = 2;" into a block of decls.
		blk := &Block{Stmts: []Stmt{d}}
		for p.eatPunct(",") {
			ty, name, line, err := p.declarator(base)
			if err != nil {
				return nil, err
			}
			d2 := &VarDecl{Name: name, T: ty, Line: line}
			if p.eatPunct("=") {
				e, err := p.assignment()
				if err != nil {
					return nil, err
				}
				d2.Init = e
			}
			blk.Stmts = append(blk.Stmts, d2)
		}
		return blk, nil
	}
	return d, nil
}

func (p *parser) forStmt() (Stmt, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	f := &For{}
	if !p.atPunct(";") {
		if p.isTypeStart() {
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			f.Init = d
		} else {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Init = &ExprStmt{X: x}
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(";") {
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.C = c
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		post, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Post = post
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// Expression parsing: assignment is right-associative and lowest
// precedence; binary operators use precedence climbing.

func (p *parser) expr() (Expr, error) { return p.assignment() }

func (p *parser) assignment() (Expr, error) {
	lhs, err := p.ternary()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="} {
		if p.atPunct(op) {
			line := p.next().Line
			rhs, err := p.assignment()
			if err != nil {
				return nil, err
			}
			return &Assign{exprBase: exprBase{line}, Op: op, L: lhs, R: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *parser) ternary() (Expr, error) {
	c, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if p.atPunct("?") {
		line := p.next().Line
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		b, err := p.ternary()
		if err != nil {
			return nil, err
		}
		return &Cond{exprBase: exprBase{line}, C: c, A: a, B: b}, nil
	}
	return c, nil
}

var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase: exprBase{t.Line}, Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "*", "&":
			p.pos++
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &Unary{exprBase: exprBase{t.Line}, Op: t.Text, X: x}, nil
		case "+":
			p.pos++
			return p.unary()
		case "++", "--":
			p.pos++
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &IncDec{exprBase: exprBase{t.Line}, Op: t.Text, X: x}, nil
		}
	}
	if t.Kind == TokKeyword && t.Text == "sizeof" {
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		ty := base
		for p.eatPunct("*") {
			ty = PtrTo(ty)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &SizeofType{exprBase: exprBase{t.Line}, T: ty}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return x, nil
		}
		switch t.Text {
		case "[":
			p.pos++
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{t.Line}, Base: x, Idx: idx}
		case "++", "--":
			p.pos++
			x = &IncDec{exprBase: exprBase{t.Line}, Op: t.Text, Postfix: true, X: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokInt, TokChar:
		return &IntLit{exprBase: exprBase{t.Line}, Val: t.Int}, nil
	case TokStr:
		return &StrLit{exprBase: exprBase{t.Line}, Val: t.Str}, nil
	case TokIdent:
		if p.atPunct("(") {
			p.pos++
			call := &Call{exprBase: exprBase{t.Line}, Name: t.Text}
			if !p.atPunct(")") {
				for {
					a, err := p.assignment()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.eatPunct(",") {
						break
					}
				}
			}
			return call, p.expectPunct(")")
		}
		return &Ident{exprBase: exprBase{t.Line}, Name: t.Text}, nil
	case TokPunct:
		if t.Text == "(" {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			return x, p.expectPunct(")")
		}
	}
	return nil, errf(t.Line, "unexpected token %s", t)
}
