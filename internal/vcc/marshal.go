package vcc

import (
	"fmt"

	"repro/internal/guest"
)

// Typed argument marshalling — the IDL-style interface the paper is
// "currently developing ... to ease this process (like SGX's EDL)" (§2
// footnote 2). Virtine functions may take char* parameters; the host
// marshals Go strings into the argument page and passes guest pointers,
// with copy-restore RPC semantics (§7.2): the callee works on a private
// copy inside its own address space.
//
// Argument-page layout (at guest.ArgAddr):
//
//	slot 0..n-1   8-byte little-endian values: scalars verbatim, string
//	              arguments as guest pointers into the data area
//	data          NUL-terminated string bytes, 8-aligned
//
// The generated crt0 is oblivious: it loads each 8-byte slot and pushes
// it; pointer slots simply arrive as char* values.

// MarshalTyped packs int64 and string arguments into an argument blob.
func MarshalTyped(args ...any) ([]byte, error) {
	n := len(args)
	blob := make([]byte, 8*n)
	put := func(i int, v uint64) {
		for j := 0; j < 8; j++ {
			blob[8*i+j] = byte(v >> (8 * j))
		}
	}
	for i, a := range args {
		switch v := a.(type) {
		case int64:
			put(i, uint64(v))
		case int:
			put(i, uint64(int64(v)))
		case string:
			// Align the data area, append the bytes + NUL, point the
			// slot at it.
			for len(blob)%8 != 0 {
				blob = append(blob, 0)
			}
			ptr := uint64(guest.ArgAddr) + uint64(len(blob))
			blob = append(blob, v...)
			blob = append(blob, 0)
			put(i, ptr)
		case []byte:
			for len(blob)%8 != 0 {
				blob = append(blob, 0)
			}
			ptr := uint64(guest.ArgAddr) + uint64(len(blob))
			blob = append(blob, v...)
			blob = append(blob, 0)
			put(i, ptr)
		default:
			return nil, fmt.Errorf("vcc: unsupported argument type %T (int64, int, string, []byte)", a)
		}
	}
	if len(blob) > guest.ArgMax {
		return nil, fmt.Errorf("vcc: marshalled arguments (%d bytes) exceed the %d-byte argument page", len(blob), guest.ArgMax)
	}
	return blob, nil
}

// CheckSignature validates typed Go arguments against the virtine's C
// parameter list: strings/byte slices bind to char*, integers to scalar
// parameters.
func (v *Virtine) CheckSignature(args ...any) error {
	params := v.Fn.Params
	if len(args) != len(params) {
		return fmt.Errorf("vcc: %s wants %d arguments, got %d", v.Fn.Name, len(params), len(args))
	}
	for i, a := range args {
		p := params[i]
		isStr := false
		switch a.(type) {
		case string, []byte:
			isStr = true
		case int64, int:
		default:
			return fmt.Errorf("vcc: argument %d: unsupported type %T", i, a)
		}
		wantsPtr := p.T.Kind == TypePtr && p.T.Elem.Kind == TypeChar
		if isStr && !wantsPtr {
			return fmt.Errorf("vcc: argument %d (%s %s): got a string for a non-char* parameter", i, p.T, p.Name)
		}
		if !isStr && wantsPtr {
			return fmt.Errorf("vcc: argument %d (%s %s): char* parameter needs a string", i, p.T, p.Name)
		}
	}
	return nil
}
