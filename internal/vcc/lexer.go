// Package vcc implements the virtine C language extensions (§5.3) as a
// from-scratch compiler for a C subset, playing the role of the paper's
// clang wrapper + LLVM pass + newlib port:
//
//   - Functions annotated `virtine` are detected, the call graph rooted at
//     each annotation is extracted, and exactly that subset of the program
//     (plus the runtime) is packaged into a standalone virtine image.
//   - `virtine_permissive` grants the allow-all hypercall policy;
//     `virtine_config(MASK)` grants a bit-mask policy (§5.3).
//   - Arguments are marshalled by generated code into the virtine's
//     address space at a fixed offset, and the return value is read back
//     from a fixed offset — copy-restore RPC semantics (§7.2).
//   - A mini-libc written in the same C subset (memcpy, strlen, malloc,
//     puts, ...) forwards its system calls to hypercalls, exactly as the
//     paper's newlib port does.
//
// The language: `int` (64-bit signed), `char`, pointers, one-dimensional
// arrays, string/char literals, functions, recursion, if/else, while,
// for, break/continue, return, the usual expression operators, and the
// `__hc(nr, a, b, c)` hypercall intrinsic the runtime uses.
package vcc

import (
	"fmt"
	"strings"
)

// TokKind classifies tokens.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokStr
	TokChar
	TokPunct
	TokKeyword
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier text, punctuation, or keyword
	Int  int64  // for TokInt/TokChar
	Str  string // for TokStr (decoded)
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokInt:
		return fmt.Sprintf("%d", t.Int)
	case TokStr:
		return fmt.Sprintf("%q", t.Str)
	}
	return t.Text
}

var keywords = map[string]bool{
	"int": true, "char": true, "long": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
	"virtine": true, "virtine_permissive": true, "virtine_config": true,
	"sizeof": true,
}

// CompileError is a diagnostic with a source line.
type CompileError struct {
	Line int
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("vcc: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) *CompileError {
	return &CompileError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes src.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, errf(line, "unterminated block comment")
			}
			i += 2
		case isDigit(c):
			start := i
			base := int64(10)
			if c == '0' && i+1 < n && (src[i+1] == 'x' || src[i+1] == 'X') {
				base = 16
				i += 2
				start = i
				for i < n && isHex(src[i]) {
					i++
				}
				if i == start {
					return nil, errf(line, "bad hex literal")
				}
			} else {
				for i < n && isDigit(src[i]) {
					i++
				}
			}
			var v int64
			for _, ch := range []byte(src[start:i]) {
				v = v*base + int64(hexVal(ch))
			}
			toks = append(toks, Token{Kind: TokInt, Int: v, Line: line})
		case isIdentStart(c):
			start := i
			for i < n && isIdentCont(src[i]) {
				i++
			}
			text := src[start:i]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: line})
		case c == '"':
			s, ni, err := lexString(src, i, line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, Token{Kind: TokStr, Str: s, Line: line})
			i = ni
		case c == '\'':
			if i+2 >= n {
				return nil, errf(line, "unterminated char literal")
			}
			var v int64
			if src[i+1] == '\\' {
				if i+3 >= n || src[i+3] != '\'' {
					return nil, errf(line, "bad char literal")
				}
				v = int64(unescape(src[i+2]))
				i += 4
			} else {
				if src[i+2] != '\'' {
					return nil, errf(line, "bad char literal")
				}
				v = int64(src[i+1])
				i += 3
			}
			toks = append(toks, Token{Kind: TokChar, Int: v, Line: line})
		default:
			// Multi-character punctuation, longest match first.
			matched := false
			for _, p := range []string{
				"<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||",
				"<<", ">>", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
				"++", "--",
			} {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("+-*/%<>=!&|^~(){}[];,?:", rune(c)) {
				toks = append(toks, Token{Kind: TokPunct, Text: string(c), Line: line})
				i++
				continue
			}
			return nil, errf(line, "unexpected character %q", c)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line})
	return toks, nil
}

func lexString(src string, i, line int) (string, int, error) {
	var sb strings.Builder
	i++ // opening quote
	for i < len(src) {
		c := src[i]
		switch c {
		case '"':
			return sb.String(), i + 1, nil
		case '\n':
			return "", 0, errf(line, "newline in string literal")
		case '\\':
			if i+1 >= len(src) {
				return "", 0, errf(line, "unterminated escape")
			}
			sb.WriteByte(unescape(src[i+1]))
			i += 2
		default:
			sb.WriteByte(c)
			i++
		}
	}
	return "", 0, errf(line, "unterminated string literal")
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func hexVal(c byte) int {
	switch {
	case isDigit(c):
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }
