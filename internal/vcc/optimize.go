package vcc

import "strings"

// The optimizer is the compiler's middle end (§5.3: the paper's pass
// "runs middle-end analysis at the IR level"). Two stages:
//
//  1. AST-level constant folding (applied during codegen): expressions
//     whose operands are compile-time constants collapse to one movi.
//  2. A peephole pass over the generated assembly, shrinking the stack-
//     machine boilerplate the simple codegen emits. Smaller images boot
//     and snapshot faster (Fig 12's cost is proportional to image bytes),
//     and fewer instructions mean fewer guest cycles.
//
// Peephole patterns (iterated to a fixed point):
//
//	mov X, X                                  → (removed)
//	jmp L  directly followed by  L:           → (removed)
//	push R; movi R, C; mov S, R; pop R        → movi S, C
//	mov rax, rbp; sub/add rax, N;
//	  mov rbx, rax; load rax, [rbx]           → load rax, [rbp∓N]
//	push rax; (5-op local load into rbx);
//	  pop rax                                 → load rbx, [rbp∓N]
//
// Flag safety: the removed add/sub/mov instructions set condition codes,
// but the code generator never consumes flags except immediately after an
// explicit cmp, so eliding them cannot change behaviour.

// optimize runs peephole passes over generated assembly text until no
// pattern fires (bounded).
func optimize(asmText string) string {
	lines := strings.Split(asmText, "\n")
	for pass := 0; pass < 10; pass++ {
		next, changed := peephole(lines)
		lines = next
		if !changed {
			break
		}
	}
	return strings.Join(lines, "\n")
}

// instr returns the trimmed instruction text, or "" for labels/blanks.
func instr(line string) string {
	t := strings.TrimSpace(line)
	if t == "" || strings.HasSuffix(t, ":") {
		return ""
	}
	return t
}

func isLabel(line string) bool {
	t := strings.TrimSpace(line)
	return strings.HasSuffix(t, ":")
}

func peephole(lines []string) ([]string, bool) {
	out := make([]string, 0, len(lines))
	changed := false
	i := 0
	for i < len(lines) {
		// Pattern: mov X, X
		if in := instr(lines[i]); in != "" {
			if strings.HasPrefix(in, "mov ") {
				parts := strings.SplitN(strings.TrimPrefix(in, "mov "), ",", 2)
				if len(parts) == 2 && strings.TrimSpace(parts[0]) == strings.TrimSpace(parts[1]) {
					i++
					changed = true
					continue
				}
			}
		}

		// Pattern: jmp L / L:
		if in := instr(lines[i]); strings.HasPrefix(in, "jmp ") && i+1 < len(lines) {
			target := strings.TrimSpace(strings.TrimPrefix(in, "jmp "))
			if isLabel(lines[i+1]) && strings.TrimSuffix(strings.TrimSpace(lines[i+1]), ":") == target {
				i++ // drop the jmp, keep the label
				changed = true
				continue
			}
		}

		// Pattern: push R / movi R, C / mov S, R / pop R  →  movi S, C
		if i+3 < len(lines) {
			p0, p1, p2, p3 := instr(lines[i]), instr(lines[i+1]), instr(lines[i+2]), instr(lines[i+3])
			var r, c, s string
			if scan2(p0, "push %s", &r) &&
				scan2(p1, "movi "+r+", %s", &c) &&
				scan2(p2, "mov %s, "+r, &s) &&
				p3 == "pop "+r && s != r {
				out = append(out, "\tmovi "+s+", "+c)
				i += 4
				changed = true
				continue
			}
		}

		// Pattern: local-variable load boilerplate →  load rax, [rbp±N]
		//   mov rax, rbp / sub|add rax, N / mov rbx, rax / load rax, [rbx]
		if i+3 < len(lines) {
			p0, p1, p2, p3 := instr(lines[i]), instr(lines[i+1]), instr(lines[i+2]), instr(lines[i+3])
			var n string
			if p0 == "mov rax, rbp" && p2 == "mov rbx, rax" &&
				(p3 == "load rax, [rbx]" || p3 == "loadb rax, [rbx]") {
				op := strings.Fields(p3)[0] // load or loadb
				if scan2(p1, "sub rax, %s", &n) {
					out = append(out, "\t"+op+" rax, [rbp-"+n+"]")
					i += 4
					changed = true
					continue
				}
				if scan2(p1, "add rax, %s", &n) {
					out = append(out, "\t"+op+" rax, [rbp+"+n+"]")
					i += 4
					changed = true
					continue
				}
			}
		}

		// Pattern: push rax / load rax, [rbp±N] / mov rbx, rax / pop rax
		//   →  load rbx, [rbp±N]
		// (arises after the previous pattern collapses the RHS of a
		// binary operator)
		if i+3 < len(lines) {
			p0, p1, p2, p3 := instr(lines[i]), instr(lines[i+1]), instr(lines[i+2]), instr(lines[i+3])
			if p0 == "push rax" && p2 == "mov rbx, rax" && p3 == "pop rax" {
				var addr string
				if scan2(p1, "load rax, %s", &addr) && strings.HasPrefix(addr, "[rbp") {
					out = append(out, "\tload rbx, "+addr)
					i += 4
					changed = true
					continue
				}
				if scan2(p1, "loadb rax, %s", &addr) && strings.HasPrefix(addr, "[rbp") {
					out = append(out, "\tloadb rbx, "+addr)
					i += 4
					changed = true
					continue
				}
			}
		}

		out = append(out, lines[i])
		i++
	}
	return out, changed
}

// scan2 matches text against a pattern with exactly one %s placeholder,
// capturing the remainder into dst. The placeholder must be the suffix or
// an infix bounded by literal text.
func scan2(text, pattern string, dst *string) bool {
	idx := strings.Index(pattern, "%s")
	if idx < 0 {
		return text == pattern
	}
	prefix, suffix := pattern[:idx], pattern[idx+2:]
	if !strings.HasPrefix(text, prefix) {
		return false
	}
	rest := text[len(prefix):]
	if suffix == "" {
		if rest == "" {
			return false
		}
		*dst = rest
		return true
	}
	if !strings.HasSuffix(rest, suffix) {
		return false
	}
	cap := rest[:len(rest)-len(suffix)]
	if cap == "" || strings.ContainsAny(cap, " ,") {
		return false
	}
	*dst = cap
	return true
}

// foldConst attempts AST-level constant folding for an expression,
// returning (value, true) when the whole expression is a compile-time
// constant.
func foldConst(e Expr) (int64, bool) {
	v, err := constFold(e)
	if err != nil {
		return 0, false
	}
	return v, true
}

// InstructionCount reports the number of instructions in generated
// assembly text (labels and directives excluded) — used by tests and the
// optimizer ablation.
func InstructionCount(asmText string) int {
	n := 0
	for _, line := range strings.Split(asmText, "\n") {
		in := instr(line)
		if in == "" || strings.HasPrefix(in, ".") {
			continue
		}
		n++
	}
	return n
}
