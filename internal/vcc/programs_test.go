package vcc

import (
	"testing"
)

// Whole-program tests: realistic C programs through the full pipeline
// (compile → package → boot → execute in a virtine → unmarshal).

func TestProgramGCD(t *testing.T) {
	src := `
int gcd(int a, int b) {
	while (b != 0) {
		int t = b;
		b = a % b;
		a = t;
	}
	return a;
}
virtine int run(int a, int b) { return gcd(a, b); }`
	if got := call(t, src, "run", 1071, 462); got != 21 {
		t.Fatalf("gcd(1071,462) = %d", got)
	}
	if got := call(t, src, "run", 17, 5); got != 1 {
		t.Fatalf("gcd(17,5) = %d", got)
	}
}

func TestProgramBubbleSort(t *testing.T) {
	src := `
virtine int sortsum(int seed) {
	int a[16];
	/* fill with a scrambled sequence */
	for (int i = 0; i < 16; i++) {
		a[i] = (seed * (i + 7)) % 100;
	}
	/* bubble sort */
	for (int i = 0; i < 15; i++) {
		for (int j = 0; j < 15 - i; j++) {
			if (a[j] > a[j + 1]) {
				int t = a[j];
				a[j] = a[j + 1];
				a[j + 1] = t;
			}
		}
	}
	/* verify sorted and checksum */
	int sum = 0;
	for (int i = 0; i < 16; i++) {
		if (i > 0 && a[i] < a[i - 1]) return -1;
		sum += a[i] * (i + 1);
	}
	return sum;
}`
	// Compute expected in Go.
	expect := func(seed int64) int64 {
		a := make([]int64, 16)
		for i := range a {
			a[i] = (seed * int64(i+7)) % 100
		}
		for i := 0; i < 15; i++ {
			for j := 0; j < 15-i; j++ {
				if a[j] > a[j+1] {
					a[j], a[j+1] = a[j+1], a[j]
				}
			}
		}
		var sum int64
		for i, v := range a {
			sum += v * int64(i+1)
		}
		return sum
	}
	for _, seed := range []int64{3, 17, 91} {
		if got, want := call(t, src, "sortsum", seed), expect(seed); got != want {
			t.Fatalf("sortsum(%d) = %d, want %d", seed, got, want)
		}
	}
}

func TestProgramPrimeSieve(t *testing.T) {
	src := `
virtine int countprimes(int n) {
	char sieve[256];
	memset(sieve, 1, 256);
	sieve[0] = 0;
	sieve[1] = 0;
	for (int i = 2; i * i < n; i++) {
		if (sieve[i]) {
			for (int j = i * i; j < n; j += i) { sieve[j] = 0; }
		}
	}
	int count = 0;
	for (int i = 0; i < n; i++) { count += sieve[i]; }
	return count;
}`
	if got := call(t, src, "countprimes", 100); got != 25 {
		t.Fatalf("primes below 100 = %d, want 25", got)
	}
	if got := call(t, src, "countprimes", 256); got != 54 {
		t.Fatalf("primes below 256 = %d, want 54", got)
	}
}

func TestProgramStringReverseWithHeap(t *testing.T) {
	src := `
char *reverse(char *s) {
	int n = strlen(s);
	char *out = malloc(n + 1);
	for (int i = 0; i < n; i++) { out[i] = s[n - 1 - i]; }
	out[n] = 0;
	return out;
}
virtine int palindrome(int unused) {
	char *a = "step on no pets";
	char *b = reverse(a);
	if (strcmp(a, b) != 0) return 0;
	char *c = reverse("virtine");
	if (strcmp(c, "enitriv") != 0) return -1;
	return 1;
}`
	if got := call(t, src, "palindrome", 0); got != 1 {
		t.Fatalf("palindrome = %d", got)
	}
}

func TestProgramItoaAtoiRoundTrip(t *testing.T) {
	src := `
virtine int roundtrip(int v) {
	char buf[32];
	itoa(v, buf);
	return atoi(buf);
}`
	for _, v := range []int64{0, 1, -1, 42, -9999, 123456789} {
		if got := call(t, src, "roundtrip", v); got != v {
			t.Fatalf("roundtrip(%d) = %d", v, got)
		}
	}
}

func TestProgramCollatz(t *testing.T) {
	src := `
virtine int collatz(int n) {
	int steps = 0;
	while (n != 1) {
		if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
		steps++;
	}
	return steps;
}`
	if got := call(t, src, "collatz", 27); got != 111 {
		t.Fatalf("collatz(27) = %d, want 111", got)
	}
}

func TestProgramMatrixMultiply(t *testing.T) {
	src := `
virtine int matmul(int n) {
	int a[16];
	int b[16];
	int c[16];
	for (int i = 0; i < 16; i++) { a[i] = i + 1; b[i] = 16 - i; c[i] = 0; }
	for (int i = 0; i < 4; i++) {
		for (int j = 0; j < 4; j++) {
			for (int k = 0; k < 4; k++) {
				c[i * 4 + j] += a[i * 4 + k] * b[k * 4 + j];
			}
		}
	}
	int tr = 0;
	for (int i = 0; i < 4; i++) { tr += c[i * 4 + i]; }
	return tr;
}`
	// Compute trace in Go.
	var a, bm, c [16]int64
	for i := 0; i < 16; i++ {
		a[i], bm[i] = int64(i+1), int64(16-i)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				c[i*4+j] += a[i*4+k] * bm[k*4+j]
			}
		}
	}
	want := c[0] + c[5] + c[10] + c[15]
	if got := call(t, src, "matmul", 0); got != want {
		t.Fatalf("matmul trace = %d, want %d", got, want)
	}
}

func TestNestedVirtineAnnotationIgnored(t *testing.T) {
	// §5.3: "if a virtine calls another virtine-annotated function, a
	// nested virtine will not be created" — the callee runs inside the
	// caller's VM, compiled as a plain function.
	src := `
virtine int inner(int n) { return n + 1; }
virtine int outer(int n) { return inner(n) * 2; }`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// Both exist as independent virtines...
	if len(prog.Virtines) != 2 {
		t.Fatalf("virtines = %d", len(prog.Virtines))
	}
	// ...and outer's image contains inner as an ordinary function.
	if got := call(t, src, "outer", 20); got != 42 {
		t.Fatalf("outer(20) = %d", got)
	}
}

func TestDeepRecursionWithinStackBudget(t *testing.T) {
	src := `
int depth(int n) {
	if (n == 0) return 0;
	return 1 + depth(n - 1);
}
virtine int run(int n) { return depth(n); }`
	// Each frame is small; a few hundred levels fit the 8 KB stack.
	if got := call(t, src, "run", 200); got != 200 {
		t.Fatalf("depth(200) = %d", got)
	}
}

func TestCharArithmetic(t *testing.T) {
	src := `
virtine int caesar(int shift) {
	char buf[16];
	strcpy(buf, "attack");
	for (int i = 0; buf[i]; i++) {
		buf[i] = 'a' + (buf[i] - 'a' + shift) % 26;
	}
	/* checksum the shifted string */
	int h = 0;
	for (int i = 0; buf[i]; i++) { h = h * 31 + buf[i]; }
	return h;
}`
	hash := func(s string) int64 {
		var h int64
		for _, c := range []byte(s) {
			h = h*31 + int64(c)
		}
		return h
	}
	if got := call(t, src, "caesar", 3); got != hash("dwwdfn") {
		t.Fatalf("caesar(3) = %d, want %d", got, hash("dwwdfn"))
	}
}
