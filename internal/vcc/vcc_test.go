package vcc

import (
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/hypercall"
	"repro/internal/wasp"
)

// call compiles src, runs the named virtine under a fresh Wasp with the
// compiled policy, and returns the int64 result.
func call(t *testing.T, src, name string, args ...int64) int64 {
	t.Helper()
	v, err := CompileFunc(src, name)
	if err != nil {
		t.Fatal(err)
	}
	w := wasp.New()
	res, err := w.Run(v.Image, wasp.RunConfig{
		Policy:   v.Policy,
		Args:     MarshalArgs(args...),
		RetBytes: RetSize,
	}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	return UnmarshalRet(res.Ret)
}

func TestFib(t *testing.T) {
	// The paper's flagship example (Fig 9).
	src := `
virtine int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}`
	if got := call(t, src, "fib", 10); got != 55 {
		t.Fatalf("fib(10) = %d, want 55", got)
	}
	if got := call(t, src, "fib", 0); got != 0 {
		t.Fatalf("fib(0) = %d, want 0", got)
	}
	if got := call(t, src, "fib", 1); got != 1 {
		t.Fatalf("fib(1) = %d", got)
	}
}

func TestArithmeticOperators(t *testing.T) {
	src := `
virtine int calc(int a, int b) {
	int sum = a + b;
	int diff = a - b;
	int prod = a * b;
	int quot = a / b;
	int rem = a % b;
	return sum * 10000 + diff * 1000 + prod * 100 + quot * 10 + rem;
}`
	// a=7 b=3: sum=10 diff=4 prod=21 quot=2 rem=1
	if got := call(t, src, "calc", 7, 3); got != 10*10000+4*1000+21*100+2*10+1 {
		t.Fatalf("calc = %d", got)
	}
}

func TestBitwiseAndShifts(t *testing.T) {
	src := `
virtine int bits(int a, int b) {
	int x = (a & b) + ((a | b) << 1) + ((a ^ b) << 2);
	x = x + (a << 3) + (a >> 1);
	int sh = b;
	return x + (a << sh);
}`
	a, b := int64(12), int64(5)
	want := (a&b + (a|b)<<1 + (a^b)<<2) + a<<3 + a>>1 + a<<uint(b)
	if got := call(t, src, "bits", a, b); got != want {
		t.Fatalf("bits = %d, want %d", got, want)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	src := `
virtine int cmp(int a, int b) {
	int r = 0;
	if (a == b) r = r | 1;
	if (a != b) r = r | 2;
	if (a < b)  r = r | 4;
	if (a <= b) r = r | 8;
	if (a > b)  r = r | 16;
	if (a >= b) r = r | 32;
	if (a && b) r = r | 64;
	if (a || b) r = r | 128;
	if (!a)     r = r | 256;
	return r;
}`
	if got := call(t, src, "cmp", 3, 5); got != 2|4|8|64|128 {
		t.Fatalf("cmp(3,5) = %d", got)
	}
	if got := call(t, src, "cmp", 0, 0); got != 1|8|32|256 {
		t.Fatalf("cmp(0,0) = %d", got)
	}
}

func TestLoopsAndControlFlow(t *testing.T) {
	src := `
virtine int loops(int n) {
	int sum = 0;
	for (int i = 0; i < n; i++) {
		if (i % 2 == 0) continue;
		sum += i;
	}
	int j = 0;
	while (1) {
		j++;
		if (j >= 10) break;
	}
	return sum * 100 + j;
}`
	// odd numbers below 10: 1+3+5+7+9 = 25; j = 10
	if got := call(t, src, "loops", 10); got != 2510 {
		t.Fatalf("loops = %d", got)
	}
}

func TestPointersAndArrays(t *testing.T) {
	src := `
int square(int x) { return x * x; }

virtine int ptrs(int n) {
	int arr[10];
	for (int i = 0; i < 10; i++) arr[i] = square(i);
	int *p = arr;
	int sum = 0;
	for (int i = 0; i < 10; i++) sum += *(p + i);
	int v = 5;
	int *pv = &v;
	*pv = *pv + n;
	return sum + v;
}`
	// sum of squares 0..9 = 285; v = 5 + 7
	if got := call(t, src, "ptrs", 7); got != 285+12 {
		t.Fatalf("ptrs = %d", got)
	}
}

func TestCharAndStrings(t *testing.T) {
	src := `
virtine int strings(int unused) {
	char buf[32];
	strcpy(buf, "virtine");
	int n = strlen(buf);
	if (strcmp(buf, "virtine") != 0) return -1;
	if (strcmp(buf, "virtinf") >= 0) return -2;
	buf[0] = 'V';
	if (buf[0] != 'V') return -3;
	return n;
}`
	if got := call(t, src, "strings", 0); got != 7 {
		t.Fatalf("strings = %d", got)
	}
}

func TestMallocBumpAllocator(t *testing.T) {
	src := `
virtine int alloc(int n) {
	char *a = malloc(n);
	char *b = malloc(n);
	if (a == 0 || b == 0) return -1;
	if (b - a < n) return -2;
	memset(a, 7, n);
	memcpy(b, a, n);
	int sum = 0;
	for (int i = 0; i < n; i++) sum += b[i];
	free(a);
	free(b);
	return sum;
}`
	if got := call(t, src, "alloc", 100); got != 700 {
		t.Fatalf("alloc = %d", got)
	}
}

func TestGlobals(t *testing.T) {
	src := `
int counter = 41;
int table[4];

virtine int useglobals(int n) {
	counter += n;
	table[2] = counter;
	return table[2];
}`
	if got := call(t, src, "useglobals", 1); got != 42 {
		t.Fatalf("useglobals = %d", got)
	}
	// Globals are snapshot-copied per virtine: a second invocation must
	// see the pristine initial value again (§5.3: concurrent
	// modifications occur on distinct copies).
	if got := call(t, src, "useglobals", 2); got != 43 {
		t.Fatalf("second run saw mutated global: %d", got)
	}
}

func TestRecursionMutual(t *testing.T) {
	src := `
int isOdd(int n);
int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }

virtine int parity(int n) { return isEven(n); }`
	// Forward declaration parses as a function with no body — the
	// compiler should reject only if it is actually reached without a
	// definition. Redefinition resolves it here.
	_, err := CompileFunc(src, "parity")
	if err == nil {
		t.Skip("forward declarations accepted")
	}
	// Without prototypes, reorder:
	src2 := `
int isOdd(int n) { if (n == 0) return 0; return isOdd(n - 1) == 0; }
virtine int parity(int n) { return isOdd(n); }`
	if got := call(t, src2, "parity", 5); got != 1 {
		t.Fatalf("parity(5) = %d", got)
	}
}

func TestTernaryAndIncDec(t *testing.T) {
	src := `
virtine int tern(int a, int b) {
	int m = a > b ? a : b;
	int i = 0;
	int post = i++;
	int pre = ++i;
	return m * 100 + post * 10 + pre;
}`
	if got := call(t, src, "tern", 3, 9); got != 900+0+2 {
		t.Fatalf("tern = %d", got)
	}
}

func TestVirtinePermissivePolicy(t *testing.T) {
	src := `
virtine_permissive int chatty(int n) {
	puts("hello from virtine");
	return n + 1;
}`
	v, err := CompileFunc(src, "chatty")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.Policy.(hypercall.AllowAll); !ok {
		t.Fatalf("policy = %v, want allow-all", v.Policy)
	}
	w := wasp.New()
	res, err := w.Run(v.Image, wasp.RunConfig{
		Policy: v.Policy, Args: MarshalArgs(5), RetBytes: RetSize,
	}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if UnmarshalRet(res.Ret) != 6 {
		t.Fatalf("chatty = %d", UnmarshalRet(res.Ret))
	}
	if string(res.Stdout) != "hello from virtine" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestVirtineConfigPolicy(t *testing.T) {
	src := `
virtine_config(0x2) int writer(int n) {
	write(1, "x", 1);
	return n;
}`
	v, err := CompileFunc(src, "writer")
	if err != nil {
		t.Fatal(err)
	}
	if v.Policy.String() != "mask(0x2)" {
		t.Fatalf("policy = %v", v.Policy)
	}
	w := wasp.New()
	if _, err := w.Run(v.Image, wasp.RunConfig{
		Policy: v.Policy, Args: MarshalArgs(1), RetBytes: RetSize,
	}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultDenyFromCompiler(t *testing.T) {
	src := `
virtine int sneaky(int n) {
	puts("leak");
	return n;
}`
	v, err := CompileFunc(src, "sneaky")
	if err != nil {
		t.Fatal(err)
	}
	w := wasp.New()
	_, err = w.Run(v.Image, wasp.RunConfig{
		Policy: v.Policy, Args: MarshalArgs(1), RetBytes: RetSize,
	}, cycles.NewClock())
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("err = %v, want denial (virtine keyword is default-deny)", err)
	}
}

func TestCallGraphCut(t *testing.T) {
	// Only functions reachable from the virtine root are packaged.
	src := `
int used(int x) { return x * 2; }
int unused(int x) { return x * 3; }
virtine int root(int n) { return used(n); }`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	v := prog.Virtines["root"]
	if v == nil {
		t.Fatal("no root virtine")
	}
	if !strings.Contains(v.Asm, "fn_used:") {
		t.Fatal("reachable function not packaged")
	}
	if strings.Contains(v.Asm, "fn_unused:") {
		t.Fatal("unreachable function packaged — call-graph cut failed")
	}
}

func TestSnapshotSpeedsUpSecondCall(t *testing.T) {
	src := `
virtine int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}`
	v, err := CompileFunc(src, "fib")
	if err != nil {
		t.Fatal(err)
	}
	w := wasp.New()
	cfg := wasp.RunConfig{Policy: v.Policy, Args: MarshalArgs(0), RetBytes: RetSize, Snapshot: true}
	clk1 := cycles.NewClock()
	r1, err := w.Run(v.Image, cfg, clk1)
	if err != nil {
		t.Fatal(err)
	}
	clk2 := cycles.NewClock()
	r2, err := w.Run(v.Image, cfg, clk2)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.SnapshotUsed {
		t.Fatal("second call did not restore snapshot")
	}
	if UnmarshalRet(r2.Ret) != 0 {
		t.Fatalf("fib(0) after restore = %d", UnmarshalRet(r2.Ret))
	}
	if r2.Cycles >= r1.Cycles {
		t.Fatalf("snapshot call (%d) not faster than cold (%d)", r2.Cycles, r1.Cycles)
	}
}

func TestFreshArgumentsAfterSnapshot(t *testing.T) {
	src := `
virtine int triple(int n) { return n * 3; }`
	v, err := CompileFunc(src, "triple")
	if err != nil {
		t.Fatal(err)
	}
	w := wasp.New()
	mk := func(n int64) int64 {
		res, err := w.Run(v.Image, wasp.RunConfig{
			Policy: v.Policy, Args: MarshalArgs(n), RetBytes: RetSize, Snapshot: true,
		}, cycles.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		return UnmarshalRet(res.Ret)
	}
	if got := mk(5); got != 15 {
		t.Fatalf("triple(5) = %d", got)
	}
	// Restored run must read the NEW argument, not the snapshotted one.
	if got := mk(11); got != 33 {
		t.Fatalf("triple(11) after snapshot = %d (stale args?)", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undefined variable", `virtine int f(int n) { return q; }`},
		{"undefined function", `virtine int f(int n) { return g(n); }`},
		{"arity mismatch", `int g(int a, int b) { return a; } virtine int f(int n) { return g(n); }`},
		{"break outside loop", `virtine int f(int n) { break; return n; }`},
		{"virtine on global", `virtine int x;`},
		{"bad assign target", `virtine int f(int n) { 5 = n; return n; }`},
		{"deref non-pointer", `virtine int f(int n) { return *n; }`},
		{"hc non-const", `virtine int f(int n) { return __hc(n, 0, 0, 0); }`},
	}
	for _, tc := range cases {
		if _, err := Compile(tc.src); err == nil {
			t.Errorf("%s: expected compile error", tc.name)
		}
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := Lex(`int x = 0x1F; // comment
char c = 'a'; /* block */ char *s = "hi\n";`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	if toks[3].Int != 0x1F {
		t.Fatalf("hex literal = %d", toks[3].Int)
	}
	found := false
	for _, tk := range toks {
		if tk.Kind == TokStr && tk.Str == "hi\n" {
			found = true
		}
	}
	if !found {
		t.Fatal("string literal not lexed")
	}
	_ = kinds
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `'x`, "/* unclosed", "int a = 0x;", "`"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	b := MarshalArgs(1, -2, 1<<40)
	if len(b) != 24 {
		t.Fatalf("len = %d", len(b))
	}
	if UnmarshalRet(b[8:16]) != -2 {
		t.Fatalf("round trip failed: %d", UnmarshalRet(b[8:16]))
	}
}

func TestSizeofAndNegativeNumbers(t *testing.T) {
	src := `
virtine int szs(int n) {
	return sizeof(int) * 1000 + sizeof(char) * 100 + sizeof(int*) * 10 + (n - -5);
}`
	if got := call(t, src, "szs", 0); got != 8*1000+1*100+8*10+5 {
		t.Fatalf("szs = %d", got)
	}
}

func TestCompoundAssignment(t *testing.T) {
	src := `
virtine int compound(int n) {
	int x = n;
	x += 5; x -= 2; x *= 3; x /= 2;
	x %= 100;
	x <<= 2; x >>= 1;
	x |= 1; x &= 0xFF; x ^= 0x0F;
	return x;
}`
	x := int64(10)
	x += 5
	x -= 2
	x *= 3
	x /= 2
	x %= 100
	x <<= 2
	x >>= 1
	x |= 1
	x &= 0xFF
	x ^= 0x0F
	if got := call(t, src, "compound", 10); got != x {
		t.Fatalf("compound = %d, want %d", got, x)
	}
}
