package hypercall

import (
	"bytes"
	"fmt"

	"repro/internal/cycles"
)

// Mark is one milestone recorded by the NrMark hypercall (Fig 4's echo
// server milestones are recorded this way).
type Mark struct {
	ID    uint64
	Cycle uint64
}

// Env is the host environment one virtine execution sees: an in-memory
// filesystem, a single virtual socket (the "connection" handed to the
// echo/HTTP servers), the §6.5 data channel, and milestone marks. Wasp
// resets the per-run pieces between executions; the FS persists the way
// the host filesystem does.
type Env struct {
	FS *FS

	// Virtual socket (descriptor 3): NetIn is drained by recv, NetOut
	// accumulates send. One connection per run, like the paper's
	// handler-per-connection servers.
	NetIn  []byte
	NetOut bytes.Buffer

	// §6.5 data channel: get_data fills the guest buffer from DataIn;
	// return_data copies the guest buffer to DataOut.
	DataIn  []byte
	DataOut []byte

	// Std stream capture (write to fds 1/2).
	Stdout bytes.Buffer

	// ExitCode from NrExit; Exited marks that the guest called exit.
	ExitCode uint64
	Exited   bool

	// SnapshotRequested is latched by NrSnapshot; Wasp consumes it.
	SnapshotRequested bool

	// Marks are milestone timestamps; NowCycles must be wired by the
	// VMM so marks carry virtual time.
	Marks     []Mark
	NowCycles func() uint64

	// Charge accounts host-side service work (kernel syscalls the
	// handler re-creates, §6.3) on the run's clock; wired by the VMM.
	Charge func(uint64)
}

// NewEnv returns an environment with an empty filesystem.
func NewEnv() *Env { return &Env{FS: NewFS()} }

// ResetRun clears per-execution state (socket, data channel, exit, marks)
// while keeping the filesystem.
func (e *Env) ResetRun() {
	e.NetIn = nil
	e.NetOut.Reset()
	e.DataIn = nil
	e.DataOut = nil
	e.Stdout.Reset()
	e.ExitCode = 0
	e.Exited = false
	e.SnapshotRequested = false
	e.Marks = nil
}

// SocketFD is the descriptor of the per-run virtual socket.
const SocketFD = 3

// maxIOChunk bounds a single hypercall transfer, like a host kernel would.
const maxIOChunk = 1 << 20

// Handle implements the canned general-purpose handlers Wasp provides
// out of the box (§5.1): POSIX-mirroring file and socket calls, the data
// channel, and instrumentation. Argument validation happens here — the
// handler assumes inputs are hostile (§3.2) and bounds-checks every guest
// pointer through GuestMem.
func (e *Env) Handle(call Args, mem GuestMem) (uint64, error) {
	e.chargeHostWork(call.Nr)
	switch call.Nr {
	case NrExit:
		e.ExitCode = call.A0
		e.Exited = true
		return 0, nil

	case NrWrite:
		fd, buf, n := call.A0, call.A1, call.A2
		if n > maxIOChunk {
			return 0, fmt.Errorf("write: length %d exceeds limit", n)
		}
		b, err := mem.ReadGuest(buf, int(n))
		if err != nil {
			return 0, fmt.Errorf("write: %w", err)
		}
		switch fd {
		case 1, 2:
			e.Stdout.Write(b)
			return n, nil
		case SocketFD:
			e.NetOut.Write(b)
			return n, nil
		}
		return 0, fmt.Errorf("write: bad fd %d", fd)

	case NrRead:
		fd, buf, n := call.A0, call.A1, call.A2
		if n > maxIOChunk {
			return 0, fmt.Errorf("read: length %d exceeds limit", n)
		}
		if fd == SocketFD {
			return e.recv(buf, n, mem)
		}
		data, err := e.FS.Read(int(fd), int(n))
		if err != nil {
			return ^uint64(0), nil // -1: bad descriptor / failed read (errno-style, like open/stat)
		}
		if err := mem.WriteGuest(buf, data); err != nil {
			return 0, fmt.Errorf("read: %w", err)
		}
		return uint64(len(data)), nil

	case NrOpen:
		path, err := ReadCString(mem, call.A0, 4096)
		if err != nil {
			return 0, fmt.Errorf("open: %w", err)
		}
		fd, err := e.FS.Open(path)
		if err != nil {
			return ^uint64(0), nil // -1: no such file
		}
		return uint64(fd), nil

	case NrClose:
		if call.A0 == SocketFD {
			return 0, nil // per-run socket closes with the run
		}
		if err := e.FS.Close(int(call.A0)); err != nil {
			return 0, err
		}
		return 0, nil

	case NrStat:
		path, err := ReadCString(mem, call.A0, 4096)
		if err != nil {
			return 0, fmt.Errorf("stat: %w", err)
		}
		size, err := e.FS.Stat(path)
		if err != nil {
			return ^uint64(0), nil // -1: no such file (errno-style)
		}
		return uint64(size), nil

	case NrSend:
		if call.A0 != SocketFD {
			return 0, fmt.Errorf("send: bad socket %d", call.A0)
		}
		if call.A2 > maxIOChunk {
			return 0, fmt.Errorf("send: length %d exceeds limit", call.A2)
		}
		b, err := mem.ReadGuest(call.A1, int(call.A2))
		if err != nil {
			return 0, fmt.Errorf("send: %w", err)
		}
		e.NetOut.Write(b)
		return call.A2, nil

	case NrRecv:
		if call.A0 != SocketFD {
			return 0, fmt.Errorf("recv: bad socket %d", call.A0)
		}
		return e.recv(call.A1, call.A2, mem)

	case NrSnapshot:
		e.SnapshotRequested = true
		return 0, nil

	case NrGetData:
		n := uint64(len(e.DataIn))
		if call.A1 < n {
			n = call.A1
		}
		if n > maxIOChunk {
			return 0, fmt.Errorf("get_data: length %d exceeds limit", n)
		}
		if err := mem.WriteGuest(call.A0, e.DataIn[:n]); err != nil {
			return 0, fmt.Errorf("get_data: %w", err)
		}
		return n, nil

	case NrReturnData:
		if call.A1 > maxIOChunk {
			return 0, fmt.Errorf("return_data: length %d exceeds limit", call.A1)
		}
		b, err := mem.ReadGuest(call.A0, int(call.A1))
		if err != nil {
			return 0, fmt.Errorf("return_data: %w", err)
		}
		e.DataOut = append([]byte(nil), b...)
		return call.A1, nil

	case NrMark:
		var now uint64
		if e.NowCycles != nil {
			now = e.NowCycles()
		}
		e.Marks = append(e.Marks, Mark{ID: call.A0, Cycle: now})
		return 0, nil
	}
	return 0, fmt.Errorf("hypercall: unknown number %#x", call.Nr)
}

// chargeHostWork accounts the host-kernel work a serviced hypercall
// re-creates: socket ops traverse the network stack, file ops hit the
// page cache (§6.3).
func (e *Env) chargeHostWork(nr uint8) {
	if e.Charge == nil {
		return
	}
	switch nr {
	case NrSend, NrRecv:
		e.Charge(cycles.NetSyscall)
	case NrOpen, NrClose, NrStat, NrRead, NrWrite:
		e.Charge(cycles.FileSyscall)
	}
}

func (e *Env) recv(buf, n uint64, mem GuestMem) (uint64, error) {
	if n > maxIOChunk {
		return 0, fmt.Errorf("recv: length %d exceeds limit", n)
	}
	m := uint64(len(e.NetIn))
	if n < m {
		m = n
	}
	if err := mem.WriteGuest(buf, e.NetIn[:m]); err != nil {
		return 0, fmt.Errorf("recv: %w", err)
	}
	e.NetIn = e.NetIn[m:]
	return m, nil
}
