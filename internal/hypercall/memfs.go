package hypercall

import (
	"fmt"
	"sort"
)

// FS is the in-memory host filesystem the canned handlers delegate to —
// the stand-in for the host kernel's VFS that a validated read() or
// open() hypercall would reach (§6.3: "a validated read() will turn into
// a read() on the host filesystem"). It is hermetic so experiments are
// reproducible.
type FS struct {
	files map[string][]byte
	fds   map[int]*openFile
	next  int
}

type openFile struct {
	path string
	off  int
}

// NewFS returns an empty filesystem.
func NewFS() *FS {
	return &FS{
		files: make(map[string][]byte),
		fds:   make(map[int]*openFile),
		next:  4, // 0-2 are std streams, 3 is the virtual socket
	}
}

// Fork returns a filesystem sharing this one's file contents with a
// fresh descriptor table: request-private open-file state over a common
// static file set, at O(1) cost. The file map itself is shared, so
// forks are for read-mostly serving paths — a Put on any fork is
// visible to all of them and must not race in-flight reads.
func (fs *FS) Fork() *FS {
	return &FS{
		files: fs.files,
		fds:   make(map[int]*openFile),
		next:  fs.next,
	}
}

// Put installs (or replaces) a file.
func (fs *FS) Put(path string, data []byte) {
	fs.files[path] = append([]byte(nil), data...)
}

// Paths lists all file paths, sorted.
func (fs *FS) Paths() []string {
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Stat returns the file size.
func (fs *FS) Stat(path string) (int, error) {
	data, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("memfs: stat %s: no such file", path)
	}
	return len(data), nil
}

// Open opens an existing file for reading and returns a descriptor.
func (fs *FS) Open(path string) (int, error) {
	if _, ok := fs.files[path]; !ok {
		return 0, fmt.Errorf("memfs: open %s: no such file", path)
	}
	fd := fs.next
	fs.next++
	fs.fds[fd] = &openFile{path: path}
	return fd, nil
}

// Read reads up to n bytes from the descriptor, advancing its offset.
func (fs *FS) Read(fd, n int) ([]byte, error) {
	of, ok := fs.fds[fd]
	if !ok {
		return nil, fmt.Errorf("memfs: read fd %d: bad descriptor", fd)
	}
	data := fs.files[of.path]
	if of.off >= len(data) {
		return nil, nil // EOF
	}
	end := of.off + n
	if end > len(data) {
		end = len(data)
	}
	out := data[of.off:end]
	of.off = end
	return out, nil
}

// Close releases a descriptor.
func (fs *FS) Close(fd int) error {
	if _, ok := fs.fds[fd]; !ok {
		return fmt.Errorf("memfs: close fd %d: bad descriptor", fd)
	}
	delete(fs.fds, fd)
	return nil
}

// OpenCount reports the number of open descriptors (leak detection in
// tests).
func (fs *FS) OpenCount() int { return len(fs.fds) }
