// Package hypercall defines the virtine hypercall ABI and the host-side
// machinery that services it: security policies (default-deny, as §5.1
// requires), canned POSIX-like handlers, and the in-memory host
// environment (filesystem, virtual socket, data channel) those handlers
// operate on.
//
// Hypercalls in Wasp "are not meant to emulate low-level virtual devices,
// but are instead designed to provide high-level hypervisor services with
// as few exits as possible" (§5.1) — e.g. a hypercall that mirrors the
// read POSIX call rather than a virtio block device. The guest triggers a
// hypercall with OUT to the port carrying the call number; arguments
// travel in RDI, RSI, RDX, R10, R8, R9 and the result returns in RAX,
// mirroring the Linux syscall convention the mini-libc forwards.
package hypercall

import (
	"errors"
	"fmt"
)

// Hypercall numbers (I/O port = number).
const (
	NrExit        = 0x00 // exit(code) — always permitted
	NrWrite       = 0x01 // write(fd, buf, len)
	NrRead        = 0x02 // read(fd, buf, len)
	NrOpen        = 0x03 // open(path, flags)
	NrClose       = 0x04 // close(fd)
	NrStat        = 0x05 // stat(path) -> size
	NrSend        = 0x06 // send(sock, buf, len)
	NrRecv        = 0x07 // recv(sock, buf, len)
	NrSnapshot    = 0x08 // snapshot() — capture reset state (§5.2)
	NrGetData     = 0x09 // get_data(buf, cap) -> n (§6.5)
	NrReturnData  = 0x0A // return_data(buf, len) (§6.5)
	NrMark        = 0x0B // mark(id) — milestone instrumentation (Fig 4)
	NumHypercalls = 0x0C
)

var nrNames = [NumHypercalls]string{
	"exit", "write", "read", "open", "close", "stat",
	"send", "recv", "snapshot", "get_data", "return_data", "mark",
}

// Name returns the symbolic name of a hypercall number.
func Name(nr uint8) string {
	if int(nr) < len(nrNames) {
		return nrNames[nr]
	}
	return fmt.Sprintf("hc?%#x", nr)
}

// Args carries one decoded hypercall: the number (from the port) and up to
// six register arguments.
type Args struct {
	Nr                     uint8
	A0, A1, A2, A3, A4, A5 uint64
}

func (a Args) String() string {
	return fmt.Sprintf("%s(%#x, %#x, %#x)", Name(a.Nr), a.A0, a.A1, a.A2)
}

// ErrDenied is returned when the client policy rejects a hypercall; the
// virtine is terminated (default-deny semantics, §3.3).
var ErrDenied = errors.New("hypercall: denied by policy")

// Policy decides whether a virtine may make a given hypercall. Exit and
// mark are mechanisms of the hypervisor itself and are always serviced;
// policies govern everything else.
type Policy interface {
	Allow(nr uint8) bool
	String() string
}

// DenyAll is the default policy: "Wasp provides no externally observable
// behavior through hypercalls other than the ability to exit" (§5.1).
type DenyAll struct{}

func (DenyAll) Allow(uint8) bool { return false }
func (DenyAll) String() string   { return "deny-all" }

// AllowAll corresponds to the virtine_permissive keyword (§5.3).
type AllowAll struct{}

func (AllowAll) Allow(uint8) bool { return true }
func (AllowAll) String() string   { return "allow-all" }

// Mask allows exactly the hypercalls whose bit is set — the
// virtine_config(cfg) bit-mask configuration (§5.3).
type Mask uint64

// MaskOf builds a Mask allowing the listed hypercall numbers.
func MaskOf(nrs ...uint8) Mask {
	var m Mask
	for _, nr := range nrs {
		m |= 1 << nr
	}
	return m
}

func (m Mask) Allow(nr uint8) bool { return m&(1<<nr) != 0 }
func (m Mask) String() string      { return fmt.Sprintf("mask(%#x)", uint64(m)) }

// OneShot wraps a policy and additionally enforces that selected
// hypercalls may be made at most once per virtine execution — the §6.5
// hardening where snapshot() and get_data() "cannot be called more than
// once, meaning that if an attacker were to gain remote code execution
// capabilities, the only permitted hypercall would terminate the virtine."
type OneShot struct {
	Inner Policy
	Once  Mask // calls restricted to a single use
	used  [NumHypercalls]bool
}

// NewOneShot builds a OneShot policy over inner.
func NewOneShot(inner Policy, once ...uint8) *OneShot {
	return &OneShot{Inner: inner, Once: MaskOf(once...)}
}

func (o *OneShot) Allow(nr uint8) bool {
	if !o.Inner.Allow(nr) {
		return false
	}
	if int(nr) < len(o.used) && o.Once.Allow(nr) {
		if o.used[nr] {
			return false
		}
		o.used[nr] = true
	}
	return true
}

func (o *OneShot) String() string { return "one-shot(" + o.Inner.String() + ")" }

// Reset clears per-execution one-shot state (called between runs).
func (o *OneShot) Reset() { o.used = [NumHypercalls]bool{} }

// GuestMem is the bounds-checked window a handler gets into the virtine's
// memory. Handlers are trusted but must "take care to assume that inputs
// have not been properly sanitized" (§3.2); every access is checked.
//
// The slice ReadGuest returns is only valid until the next ReadGuest on
// the same GuestMem: implementations may reuse one scratch buffer across
// calls so hypercall-heavy runs do not allocate per call. Handlers that
// retain the data must copy it.
type GuestMem interface {
	ReadGuest(addr uint64, n int) ([]byte, error)
	WriteGuest(addr uint64, b []byte) error
}

// Handler services hypercalls that the policy admitted. Returning an
// error terminates the virtine; returning (v, nil) resumes the guest with
// v in RAX.
type Handler interface {
	Handle(call Args, mem GuestMem) (uint64, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(call Args, mem GuestMem) (uint64, error)

// Handle calls f.
func (f HandlerFunc) Handle(call Args, mem GuestMem) (uint64, error) {
	return f(call, mem)
}

// ReadCString reads a NUL-terminated string from guest memory, capped at
// max bytes, validating the terminator exists.
func ReadCString(mem GuestMem, addr uint64, max int) (string, error) {
	for n := 64; ; n *= 2 {
		if n > max {
			n = max
		}
		b, err := mem.ReadGuest(addr, n)
		if err != nil {
			return "", err
		}
		for i, c := range b {
			if c == 0 {
				return string(b[:i]), nil
			}
		}
		if n == max {
			return "", fmt.Errorf("hypercall: unterminated string at %#x", addr)
		}
	}
}
