package hypercall

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// fakeMem is an in-test GuestMem.
type fakeMem struct{ b []byte }

func (m *fakeMem) ReadGuest(addr uint64, n int) ([]byte, error) {
	if n < 0 || addr+uint64(n) > uint64(len(m.b)) {
		return nil, errOOB
	}
	out := make([]byte, n)
	copy(out, m.b[addr:])
	return out, nil
}

func (m *fakeMem) WriteGuest(addr uint64, b []byte) error {
	if addr+uint64(len(b)) > uint64(len(m.b)) {
		return errOOB
	}
	copy(m.b[addr:], b)
	return nil
}

var errOOB = &oobError{}

type oobError struct{}

func (*oobError) Error() string { return "out of bounds" }

func newMem(n int) *fakeMem { return &fakeMem{b: make([]byte, n)} }

func TestPolicyDenyAllAndAllowAll(t *testing.T) {
	if (DenyAll{}).Allow(NrWrite) {
		t.Fatal("deny-all allowed write")
	}
	if !(AllowAll{}).Allow(NrWrite) {
		t.Fatal("allow-all denied write")
	}
	if (DenyAll{}).String() != "deny-all" || (AllowAll{}).String() != "allow-all" {
		t.Fatal("policy names wrong")
	}
}

func TestMaskPolicy(t *testing.T) {
	m := MaskOf(NrRead, NrWrite)
	if !m.Allow(NrRead) || !m.Allow(NrWrite) {
		t.Fatal("mask denied configured calls")
	}
	if m.Allow(NrOpen) || m.Allow(NrSend) {
		t.Fatal("mask allowed unconfigured calls")
	}
}

func TestMaskProperty(t *testing.T) {
	f := func(nrs []uint8) bool {
		var valid []uint8
		for _, nr := range nrs {
			valid = append(valid, nr%NumHypercalls)
		}
		m := MaskOf(valid...)
		for _, nr := range valid {
			if !m.Allow(nr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOneShot(t *testing.T) {
	o := NewOneShot(AllowAll{}, NrGetData)
	if !o.Allow(NrGetData) {
		t.Fatal("first use denied")
	}
	if o.Allow(NrGetData) {
		t.Fatal("second use allowed")
	}
	if !o.Allow(NrReturnData) {
		t.Fatal("non-one-shot call denied")
	}
	o.Reset()
	if !o.Allow(NrGetData) {
		t.Fatal("reset did not clear one-shot state")
	}
	if !(NewOneShot(DenyAll{}, NrGetData)).Allow(NrExit) == false {
		t.Fatal("one-shot must respect inner policy")
	}
}

func TestNames(t *testing.T) {
	if Name(NrExit) != "exit" || Name(NrSnapshot) != "snapshot" {
		t.Fatal("names wrong")
	}
	if !strings.Contains(Name(0xEE), "hc?") {
		t.Fatal("unknown name should be marked")
	}
	a := Args{Nr: NrWrite, A0: 1}
	if !strings.Contains(a.String(), "write") {
		t.Fatal("Args.String missing name")
	}
}

func TestEnvWriteAndStdout(t *testing.T) {
	env := NewEnv()
	mem := newMem(1024)
	copy(mem.b[100:], "hello")
	ret, err := env.Handle(Args{Nr: NrWrite, A0: 1, A1: 100, A2: 5}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 5 || env.Stdout.String() != "hello" {
		t.Fatalf("write ret=%d out=%q", ret, env.Stdout.String())
	}
	if _, err := env.Handle(Args{Nr: NrWrite, A0: 99, A1: 100, A2: 5}, mem); err == nil {
		t.Fatal("bad fd accepted")
	}
	if _, err := env.Handle(Args{Nr: NrWrite, A0: 1, A1: 2000, A2: 5}, mem); err == nil {
		t.Fatal("OOB buffer accepted")
	}
}

func TestEnvFileRoundTrip(t *testing.T) {
	env := NewEnv()
	env.FS.Put("/f.txt", []byte("contents!"))
	mem := newMem(4096)
	copy(mem.b[0:], "/f.txt\x00")

	size, err := env.Handle(Args{Nr: NrStat, A0: 0}, mem)
	if err != nil || size != 9 {
		t.Fatalf("stat = %d, %v", size, err)
	}
	fd, err := env.Handle(Args{Nr: NrOpen, A0: 0}, mem)
	if err != nil {
		t.Fatal(err)
	}
	n, err := env.Handle(Args{Nr: NrRead, A0: fd, A1: 512, A2: 9}, mem)
	if err != nil || n != 9 {
		t.Fatalf("read = %d, %v", n, err)
	}
	if string(mem.b[512:521]) != "contents!" {
		t.Fatal("read data wrong")
	}
	if _, err := env.Handle(Args{Nr: NrClose, A0: fd}, mem); err != nil {
		t.Fatal(err)
	}
	if env.FS.OpenCount() != 0 {
		t.Fatal("descriptor leaked")
	}
}

func TestEnvMissingFileErrno(t *testing.T) {
	env := NewEnv()
	mem := newMem(256)
	copy(mem.b[0:], "/missing\x00")
	ret, err := env.Handle(Args{Nr: NrStat, A0: 0}, mem)
	if err != nil {
		t.Fatal("stat of missing file should not kill the virtine")
	}
	if int64(ret) != -1 {
		t.Fatalf("stat ret = %d, want -1", int64(ret))
	}
	ret, err = env.Handle(Args{Nr: NrOpen, A0: 0}, mem)
	if err != nil || int64(ret) != -1 {
		t.Fatalf("open = %d, %v; want -1, nil", int64(ret), err)
	}
}

func TestEnvSocket(t *testing.T) {
	env := NewEnv()
	env.NetIn = []byte("request")
	mem := newMem(1024)
	n, err := env.Handle(Args{Nr: NrRecv, A0: SocketFD, A1: 0, A2: 100}, mem)
	if err != nil || n != 7 {
		t.Fatalf("recv = %d, %v", n, err)
	}
	if string(mem.b[:7]) != "request" {
		t.Fatal("recv data wrong")
	}
	// Drained: next recv returns 0.
	n, err = env.Handle(Args{Nr: NrRecv, A0: SocketFD, A1: 0, A2: 100}, mem)
	if err != nil || n != 0 {
		t.Fatalf("second recv = %d", n)
	}
	copy(mem.b[200:], "response")
	if _, err := env.Handle(Args{Nr: NrSend, A0: SocketFD, A1: 200, A2: 8}, mem); err != nil {
		t.Fatal(err)
	}
	if env.NetOut.String() != "response" {
		t.Fatal("send data wrong")
	}
	if _, err := env.Handle(Args{Nr: NrSend, A0: 9, A1: 200, A2: 8}, mem); err == nil {
		t.Fatal("bad socket accepted")
	}
}

func TestEnvDataChannel(t *testing.T) {
	env := NewEnv()
	env.DataIn = []byte("payload")
	mem := newMem(1024)
	n, err := env.Handle(Args{Nr: NrGetData, A0: 0, A1: 100}, mem)
	if err != nil || n != 7 {
		t.Fatalf("get_data = %d, %v", n, err)
	}
	copy(mem.b[500:], "result")
	if _, err := env.Handle(Args{Nr: NrReturnData, A0: 500, A1: 6}, mem); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env.DataOut, []byte("result")) {
		t.Fatalf("data out = %q", env.DataOut)
	}
	// get_data with a small cap truncates.
	env.DataIn = []byte("0123456789")
	n, _ = env.Handle(Args{Nr: NrGetData, A0: 0, A1: 4}, mem)
	if n != 4 {
		t.Fatalf("capped get_data = %d", n)
	}
}

func TestEnvExitAndSnapshotAndMark(t *testing.T) {
	env := NewEnv()
	env.NowCycles = func() uint64 { return 777 }
	mem := newMem(64)
	if _, err := env.Handle(Args{Nr: NrExit, A0: 3}, mem); err != nil {
		t.Fatal(err)
	}
	if !env.Exited || env.ExitCode != 3 {
		t.Fatal("exit not latched")
	}
	if _, err := env.Handle(Args{Nr: NrSnapshot}, mem); err != nil {
		t.Fatal(err)
	}
	if !env.SnapshotRequested {
		t.Fatal("snapshot not latched")
	}
	if _, err := env.Handle(Args{Nr: NrMark, A0: 42}, mem); err != nil {
		t.Fatal(err)
	}
	if len(env.Marks) != 1 || env.Marks[0].ID != 42 || env.Marks[0].Cycle != 777 {
		t.Fatalf("marks = %+v", env.Marks)
	}
}

func TestEnvResetRun(t *testing.T) {
	env := NewEnv()
	env.FS.Put("/keep.txt", []byte("kept"))
	env.NetIn = []byte("x")
	env.DataIn = []byte("y")
	env.Stdout.WriteString("z")
	env.Exited = true
	env.ResetRun()
	if env.NetIn != nil || env.DataIn != nil || env.Stdout.Len() != 0 || env.Exited {
		t.Fatal("per-run state not cleared")
	}
	if _, err := env.FS.Stat("/keep.txt"); err != nil {
		t.Fatal("filesystem should persist across runs")
	}
}

func TestEnvUnknownHypercall(t *testing.T) {
	env := NewEnv()
	if _, err := env.Handle(Args{Nr: 0x7F}, newMem(16)); err == nil {
		t.Fatal("unknown hypercall accepted")
	}
}

func TestEnvHostWorkCharging(t *testing.T) {
	env := NewEnv()
	var charged uint64
	env.Charge = func(c uint64) { charged += c }
	env.NetIn = []byte("req")
	mem := newMem(256)
	if _, err := env.Handle(Args{Nr: NrRecv, A0: SocketFD, A1: 0, A2: 16}, mem); err != nil {
		t.Fatal(err)
	}
	if charged == 0 {
		t.Fatal("socket hypercall charged no host work")
	}
	net := charged
	charged = 0
	copy(mem.b[0:], "/nope\x00")
	if _, err := env.Handle(Args{Nr: NrStat, A0: 0}, mem); err != nil {
		t.Fatal(err)
	}
	if charged == 0 || charged >= net {
		t.Fatalf("file syscall (%d) should cost less than socket (%d)", charged, net)
	}
}

func TestReadCString(t *testing.T) {
	mem := newMem(256)
	copy(mem.b[10:], "hello\x00")
	s, err := ReadCString(mem, 10, 64)
	if err != nil || s != "hello" {
		t.Fatalf("ReadCString = %q, %v", s, err)
	}
	// Unterminated within max.
	for i := 0; i < 64; i++ {
		mem.b[100+i] = 'A'
	}
	if _, err := ReadCString(mem, 100, 32); err == nil {
		t.Fatal("unterminated string accepted")
	}
}

func TestMemFS(t *testing.T) {
	fs := NewFS()
	fs.Put("/a", []byte("aaa"))
	fs.Put("/b", []byte("bb"))
	paths := fs.Paths()
	if len(paths) != 2 || paths[0] != "/a" {
		t.Fatalf("paths = %v", paths)
	}
	fd, err := fs.Open("/a")
	if err != nil {
		t.Fatal(err)
	}
	// Partial reads advance the offset.
	b1, _ := fs.Read(fd, 2)
	b2, _ := fs.Read(fd, 2)
	b3, _ := fs.Read(fd, 2)
	if string(b1) != "aa" || string(b2) != "a" || b3 != nil {
		t.Fatalf("reads = %q %q %q", b1, b2, b3)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(fd); err == nil {
		t.Fatal("double close accepted")
	}
	if _, err := fs.Read(99, 1); err == nil {
		t.Fatal("bad fd read accepted")
	}
	if _, err := fs.Open("/nope"); err == nil {
		t.Fatal("open of missing file should error at FS level")
	}
}

func TestHandlerFunc(t *testing.T) {
	h := HandlerFunc(func(call Args, mem GuestMem) (uint64, error) {
		return call.A0 + 1, nil
	})
	v, err := h.Handle(Args{A0: 41}, newMem(1))
	if err != nil || v != 42 {
		t.Fatal("HandlerFunc broken")
	}
}

// TestReadBadDescriptorErrno: a failed file read reports -1 to the
// guest (errno-style, like open and stat) instead of killing the run,
// so guest code can handle the failure.
func TestReadBadDescriptorErrno(t *testing.T) {
	env := NewEnv()
	ret, err := env.Handle(Args{Nr: NrRead, A0: 99, A1: 0, A2: 8}, newMem(64))
	if err != nil {
		t.Fatalf("bad-fd read must fail errno-style, got hard error %v", err)
	}
	if ret != ^uint64(0) {
		t.Fatalf("ret = %#x, want -1", ret)
	}
}
