package wasp

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/cycles"
	"repro/internal/vmm"
)

// TestMigrateSnapshotRaceWithDropAndRecapture is the regression test for
// the MigrateSnapshot TOCTOU: the pre-fix code released its snapshot
// retain after the deltaOnly decision and let the export path re-fetch
// the snapshot by name, so a DropSnapshot landing in that window made
// the export fail on a snapshot the migration had already validated
// (the platform-less "no snapshot" error), and a re-capture landing
// there made it export a snapshot other than the one it decided about.
// The fix holds one retain across decision + export; afterwards the
// only tolerated failure is the *initial* lookup losing the race to a
// drop, whose error names the source platform.
//
// The hammer aims a drop at every single migration: each migrator
// re-imports a pre-serialized snapshot blob (cheap re-capture, no guest
// run), then kicks a paired dropper so DropSnapshot runs concurrently
// with MigrateSnapshot. Over thousands of attempts the drop lands at
// every point of the migration, including the decision→export window.
//
// Run under -race: beyond the semantic check, the hammering also guards
// the registry/forest locking on the migration path.
func TestMigrateSnapshotRaceWithDropAndRecapture(t *testing.T) {
	w := New(WithPlatforms(vmm.KVM{}, vmm.HyperV{}))
	kvm, hyperv := vmm.KVM{}.Name(), vmm.HyperV{}.Name()

	base := tenantImg("migrace-base")
	cfg := func(arg uint64) RunConfig {
		return RunConfig{Snapshot: true, RetBytes: 8, Args: le64(arg)}
	}
	// Both backends capture the shared base layer so tenant deltas can
	// graft in either direction.
	if _, err := w.RunOn(kvm, base, cfg(1), cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunOn(hyperv, base, cfg(1), cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	tenant := base.WithName("migrace-tenant")
	if _, err := w.RunOn(kvm, tenant, cfg(2), cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	// Serialize the tenant snapshot once; the hammer re-imports this
	// blob as its cheap re-capture path.
	blob, err := w.ExportSnapshotOn(kvm, tenant.Name, false)
	if err != nil {
		t.Fatal(err)
	}

	const (
		migrators  = 4
		iterations = 1000
	)
	errs := make(chan error, migrators)

	var wg sync.WaitGroup
	for g := 0; g < migrators; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			kick := make(chan struct{})
			dropped := make(chan struct{})
			go func() {
				for range kick {
					w.DropSnapshot(tenant.Name)
					dropped <- struct{}{}
				}
			}()
			defer close(kick)
			for i := 0; i < iterations; i++ {
				if err := w.ImportSnapshotOn(kvm, tenant.Name, blob); err != nil {
					errs <- err
					return
				}
				kick <- struct{}{}
				_, _, err := w.MigrateSnapshot(tenant.Name, kvm, hyperv)
				<-dropped
				if err == nil {
					continue
				}
				// The initial lookup losing to a concurrent drop is the
				// one benign race; its error names the source platform.
				// The pre-fix TOCTOU instead failed inside the export
				// (platform-less "no snapshot" error) or the graft.
				if strings.Contains(err.Error(), "on "+kvm) {
					continue
				}
				errs <- err
				return
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("migration raced with drop/re-capture: %v", err)
	default:
	}
	if err := w.VerifyForest(); err != nil {
		t.Fatalf("forest corrupted by migration hammering: %v", err)
	}
}

// TestMigrateSnapshotSurvivesDropInExportWindow pins the TOCTOU
// deterministically: migrateExportGate parks a DropSnapshot exactly
// between MigrateSnapshot's wire-form decision and its export. Pre-fix
// the export re-fetched the snapshot by name, so the drop made it fail
// with the platform-less "no snapshot" error on a snapshot the
// migration had already validated; post-fix the migration holds one
// retain across the whole window, so it must succeed and ship the
// snapshot it decided about.
func TestMigrateSnapshotSurvivesDropInExportWindow(t *testing.T) {
	w := New(WithPlatforms(vmm.KVM{}, vmm.HyperV{}))
	kvm, hyperv := vmm.KVM{}.Name(), vmm.HyperV{}.Name()

	base := tenantImg("miggate-base")
	cfg := func(arg uint64) RunConfig {
		return RunConfig{Snapshot: true, RetBytes: 8, Args: le64(arg)}
	}
	if _, err := w.RunOn(kvm, base, cfg(1), cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunOn(hyperv, base, cfg(1), cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	tenant := base.WithName("miggate-tenant")
	if res, err := w.RunOn(kvm, tenant, cfg(21), cycles.NewClock()); err != nil {
		t.Fatal(err)
	} else if got := fromLE64(res.Ret); got != 42 {
		t.Fatalf("tenant run returned %d, want 42", got)
	}

	gateFired := false
	migrateExportGate = func() {
		gateFired = true
		w.DropSnapshot(tenant.Name)
	}
	defer func() { migrateExportGate = nil }()

	shipped, deltaOnly, err := w.MigrateSnapshot(tenant.Name, kvm, hyperv)
	migrateExportGate = nil
	if !gateFired {
		t.Fatal("migrateExportGate never fired")
	}
	if err != nil {
		t.Fatalf("MigrateSnapshot lost its snapshot to a drop it had already validated against: %v", err)
	}
	if !deltaOnly {
		t.Fatal("expected a delta-only ship: both backends hold the base layer")
	}
	if shipped == 0 {
		t.Fatal("migration shipped zero bytes")
	}
	// The drop really landed inside the window: the source registry no
	// longer holds the snapshot the migration nonetheless shipped.
	if w.HasSnapshotOn(kvm, tenant.Name) {
		t.Fatal("gate's DropSnapshot did not take effect on the source registry")
	}
	if !w.HasSnapshotOn(hyperv, tenant.Name) {
		t.Fatal("target backend has no snapshot after migration")
	}
	res, err := w.RunOn(hyperv, tenant, cfg(30), cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !res.SnapshotUsed || fromLE64(res.Ret) != 60 {
		t.Fatalf("migrated tenant on %s: used=%v ret=%d, want used=true ret=60",
			hyperv, res.SnapshotUsed, fromLE64(res.Ret))
	}
	if err := w.VerifyForest(); err != nil {
		t.Fatalf("forest inconsistent after gated migration: %v", err)
	}
}
