package wasp

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/obs"
	"repro/internal/vmm"
)

func traceImg(name string) *guest.Image {
	return guest.MustFromAsm(name, guest.WrapLongMode(`
	out 0x08, rdi        ; snapshot()
	movi rbx, 0x6000
	load rax, [rbx]
	inc rax
	store [rbx], rax
	movi rdi, 0
	out 0x00, rdi
	hlt
`))
}

// kindSet flattens the tracer's coverage report.
func kindSet(tr *obs.Tracer) map[obs.Kind]bool {
	out := map[obs.Kind]bool{}
	for _, k := range tr.Kinds() {
		out[k] = true
	}
	return out
}

// TestRunLifecycleTrace drives snapshot runs through a traced runtime
// and asserts the recorded flight covers the guest-run half of the
// lifecycle the cluster trace cannot reach (its tickets are Fn tasks):
// shell provisioning, snapshot capture/restore, the guest-run summary
// span, and the release path.
func TestRunLifecycleTrace(t *testing.T) {
	tr := obs.NewTracer(obs.Deterministic(true))
	tr.SetEnabled(true)
	w := New(WithTracer(tr), WithAsyncClean(true))
	img := traceImg("trace-lifecycle")
	cfg := RunConfig{Snapshot: true}
	for i := 0; i < 3; i++ {
		if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
			t.Fatal(err)
		}
	}
	w.Cleaner().Drain()

	got := kindSet(tr)
	for _, want := range []obs.Kind{
		obs.KindShell, obs.KindSnapshot, obs.KindGuest, obs.KindRelease, obs.KindClean,
	} {
		if !got[want] {
			t.Errorf("lifecycle trace missing %v events (have %v)", want, tr.Kinds())
		}
	}

	// The guest summary span must carry the run's virtual window and the
	// snapshot events must include both a capture and a restore.
	var guestSpans int
	names := map[string]bool{}
	for _, le := range tr.Events() {
		for _, e := range le.Events {
			names[tr.NameOf(e.Name)] = true
			if e.Kind == obs.KindGuest {
				guestSpans++
				if e.VEnd <= e.VStart {
					t.Errorf("guest span has empty virtual window [%d, %d]", e.VStart, e.VEnd)
				}
			}
		}
	}
	if guestSpans != 3 {
		t.Errorf("guest summary spans = %d, want 3 (one per run)", guestSpans)
	}
	for _, want := range []string{"snap-capture", "snap-restore", "shell-cold", "clean-enqueue"} {
		if !names[want] {
			t.Errorf("lifecycle trace missing %q event (names: %v)", want, keys(names))
		}
	}
}

// TestTierTraceBatches asserts JIT tier transitions are recorded via
// the batched per-run log and drained at run end: a cold run compiles
// at least one trace, so KindTier events must appear, and the pooled
// context must leave RunOn with tier tracing reset.
func TestTierTraceBatches(t *testing.T) {
	tr := obs.NewTracer(obs.Deterministic(true))
	tr.SetEnabled(true)
	w := New(WithTracer(tr))
	if _, err := w.Run(traceImg("trace-tier"), RunConfig{Snapshot: true}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	var tiers int
	for _, le := range tr.Events() {
		for _, e := range le.Events {
			if e.Kind == obs.KindTier {
				tiers++
				if tr.NameOf(e.Name) != "jit-compile" && tr.NameOf(e.Name) != "jit-deopt" {
					t.Errorf("tier event with unexpected name %q", tr.NameOf(e.Name))
				}
			}
		}
	}
	if tiers == 0 {
		t.Error("cold run recorded no tier-transition events")
	}
	// The pooled context must not keep recording into a stale log.
	be := w.backends[0]
	if s := be.pools.take(64 << 10); s != nil {
		if s.ctx.CPU.TierTrace || len(s.ctx.CPU.TierLog) != 0 {
			t.Errorf("pooled context leaked tier tracing: trace=%v log=%d",
				s.ctx.CPU.TierTrace, len(s.ctx.CPU.TierLog))
		}
	}
}

// TestMigrateTrace: a snapshot shipped between backends must record a
// migrate event carrying the blob size.
func TestMigrateTrace(t *testing.T) {
	tr := obs.NewTracer(obs.Deterministic(true))
	tr.SetEnabled(true)
	w := New(WithTracer(tr), WithPlatforms(vmm.KVM{}, vmm.HyperV{}))
	img := traceImg("trace-migrate")
	if _, err := w.RunOn("kvm", img, RunConfig{Snapshot: true}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	shipped, _, err := w.MigrateSnapshot(img.Name, "kvm", "hyper-v")
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, le := range tr.Events() {
		for _, e := range le.Events {
			if e.Kind == obs.KindMigrate && e.Arg0 == uint64(shipped) {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no migrate event carrying shipped size %d", shipped)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
