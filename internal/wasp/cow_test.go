package wasp

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
)

// cowImage mutates memory after its snapshot so a COW reset has real work
// to undo: it increments a counter at 0x6000 post-snapshot and reports it.
const cowCounterAsm = `
	out 0x08, rdi        ; snapshot()
	movi rbx, 0x6000
	load rax, [rbx]
	inc rax
	store [rbx], rax
	movi rbx, 0x4000
	store [rbx], rax     ; ret = counter after increment
	movi rdi, 0
	out 0x00, rdi
	hlt
`

func cowImg(name string) *guest.Image {
	return guest.MustFromAsm(name, guest.WrapLongMode(cowCounterAsm))
}

func TestCOWResetIsolation(t *testing.T) {
	// With COW on, each run must still observe pristine snapshot state:
	// the post-snapshot counter increment may never leak into the next
	// run, even though the context is reused without zeroing.
	w := New(WithCOW(true))
	img := cowImg("cow-iso")
	cfg := RunConfig{Snapshot: true, RetBytes: 8}
	for i := 0; i < 5; i++ {
		res, err := w.Run(img, cfg, cycles.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		if got := fromLE64(res.Ret); got != 1 {
			t.Fatalf("run %d: counter = %d; COW reset leaked state", i, got)
		}
	}
}

func TestCOWCopiesOnlyDirtyPages(t *testing.T) {
	w := New(WithCOW(true))
	img := cowImg("cow-pages")
	cfg := RunConfig{Snapshot: true, RetBytes: 8}
	// Run 1: cold boot + capture. Run 2: full restore? No — with COW the
	// context was parked after run 1 with a resident snapshot, so run 2
	// already resets incrementally.
	if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(img, cfg, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !res.SnapshotUsed {
		t.Fatal("snapshot not used")
	}
	if res.COWPages == 0 {
		t.Fatal("expected an incremental COW reset")
	}
	// The guest touches a handful of pages (counter, ret region, stack,
	// args); far fewer than the ~12 pages of the captured footprint.
	if res.COWPages > 8 {
		t.Fatalf("COW copied %d pages; dirty tracking too coarse", res.COWPages)
	}
}

func TestCOWCheaperThanFullRestoreForLargeImages(t *testing.T) {
	// The §7.2 claim: COW collapses the Fig 12 image-size cost, because
	// reset cost tracks dirtied pages, not image size.
	pad := 1 << 20 // 1 MB image
	run := func(cow bool) uint64 {
		w := New(WithCOW(cow), WithAsyncClean(true))
		img := cowImg("cow-large").WithPad(pad)
		cfg := RunConfig{Snapshot: true, RetBytes: 8}
		if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
			t.Fatal(err)
		}
		// Second warm-up so the non-COW path also has a hot pool.
		if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
			t.Fatal(err)
		}
		clk := cycles.NewClock()
		if _, err := w.Run(img, cfg, clk); err != nil {
			t.Fatal(err)
		}
		return clk.Now()
	}
	full := run(false)
	cow := run(true)
	if cow*5 > full {
		t.Fatalf("COW reset (%d) should be >5x cheaper than full restore (%d) for a 1MB image", cow, full)
	}
}

func TestCOWShellNotSharedAcrossImages(t *testing.T) {
	// Two different images must never exchange contexts through the COW
	// binding (disjoint-state isolation).
	w := New(WithCOW(true))
	a := cowImg("cow-a")
	b := cowImg("cow-b")
	cfg := RunConfig{Snapshot: true, RetBytes: 8}
	for i := 0; i < 3; i++ {
		ra, err := w.Run(a, cfg, cycles.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		rb, err := w.Run(b, cfg, cycles.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		if fromLE64(ra.Ret) != 1 || fromLE64(rb.Ret) != 1 {
			t.Fatalf("iteration %d: cross-image state leak", i)
		}
	}
}

func TestCOWDisabledByDefault(t *testing.T) {
	w := New()
	img := cowImg("cow-off")
	cfg := RunConfig{Snapshot: true, RetBytes: 8}
	if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(img, cfg, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if res.COWPages != 0 {
		t.Fatal("COW reset happened without WithCOW")
	}
}

func TestCOWWithArguments(t *testing.T) {
	// Arguments are host-written after the reset; COW must mark the
	// argument page dirty so the *next* reset restores it.
	w := New(WithCOW(true))
	img := guest.MustFromAsm("cow-args", guest.WrapLongMode(`
	out 0x08, rdi
	movi rbx, 0x0
	load rax, [rbx]
	add rax, rax
	movi rbx, 0x4000
	store [rbx], rax
	movi rdi, 0
	out 0x00, rdi
	hlt
`))
	call := func(n int64) int64 {
		res, err := w.Run(img, RunConfig{Snapshot: true, RetBytes: 8, Args: le64(uint64(n))}, cycles.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		return int64(fromLE64(res.Ret))
	}
	if got := call(21); got != 42 {
		t.Fatalf("first: %d", got)
	}
	if got := call(100); got != 200 {
		t.Fatalf("second (COW path): %d — stale argument page?", got)
	}
	if got := call(3); got != 6 {
		t.Fatalf("third: %d", got)
	}
}
