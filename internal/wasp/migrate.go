package wasp

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/vmm"
)

// Virtine migration (§7.3): "Because virtines implement an abstract
// machine model, are packaged with their runtime environment, and employ
// similar semantics to RPC, they allow for location transparency.
// Virtines could therefore be migrated to execute on remote machines just
// like containers."
//
// A snapshot is exactly the state that needs to move: the captured guest
// memory and the architectural register file. With the snapshot forest,
// the memory half is a page table — so migration can be layer-aware:
//
//   - a self-contained export ships every resolved non-zero page of the
//     snapshot (base and delta flattened in);
//   - a delta export ships only the pages the tenant snapshot owns, plus
//     the content key and digest of the base layer it grafts onto. The
//     importer grafts the delta onto a matching local base; an importer
//     without the base rejects the blob with a clear error.
//
// The blob carries an explicit magic and format-version byte, so a
// future format revision is a clean "version N not supported" error
// instead of a silent gob misparse. Native-workload snapshots carry
// host-side Go state and are not portable.

// Wire format: 4 magic bytes, 1 version byte, then a gob-encoded
// snapshotWire. Version 1 was the unversioned bare-gob format of the
// pre-forest runtime and is no longer accepted.
const (
	snapshotMagic   = "VSNP"
	snapshotVersion = 2

	// maxWireGeometry bounds the guest-memory geometry a blob may claim
	// (1 GiB), so a hostile length cannot make the importer allocate
	// absurd page tables before validation catches it.
	maxWireGeometry = 1 << 30
)

// wirePage is one page of snapshot content. Data is exactly PageSize
// bytes, or nil for an explicit zero-override (a delta page that zeroes
// a non-zero base page). Content keys are deliberately NOT shipped per
// page: the importer re-hashes Data itself, so a hostile blob cannot
// poison the receiving store with a mismatched key/content pair.
type wirePage struct {
	Idx  int
	Data []byte
}

// snapshotWire is the gob payload of a version-2 blob.
type snapshotWire struct {
	// Geometry is the full guest-memory length the snapshot restores
	// over; Captured is the byte count the restore cost is charged for.
	Geometry int
	Captured int
	State    cpu.State
	Booted   bool
	// ContentKey is the image content key (guest.Image.ContentKey) the
	// snapshot belongs to. Importing a self-contained blob registers its
	// layer as the receiver's base for this content if it has none, so
	// later tenant deltas of the same binary can graft onto it.
	ContentKey string
	// Delta marks a thin blob: Pages are only the pages this snapshot
	// owns beyond the ContentKey base layer, whose resolved-content
	// digest must equal BaseDigest on the receiving side.
	Delta      bool
	BaseDigest [32]byte
	// Pages is the snapshot's content: the full resolved table for a
	// self-contained export, or the delta-owned pages when Delta.
	Pages []wirePage
}

// ExportSnapshot serializes the named image's snapshot from the default
// backend, self-contained: base and delta pages are flattened in, so
// any runtime can import it.
func (w *Wasp) ExportSnapshot(name string) ([]byte, error) {
	return w.exportSnapshot(w.backends[0], name, false)
}

// ExportSnapshotDelta serializes the named snapshot shipping only the
// pages it owns beyond its base layer, plus the base's content key and
// digest. The importer must already hold a matching base layer
// (HasBaseLayer) or the import fails. A snapshot with no base exports
// self-contained — the delta IS the whole snapshot.
func (w *Wasp) ExportSnapshotDelta(name string) ([]byte, error) {
	return w.exportSnapshot(w.backends[0], name, true)
}

// ExportSnapshotOn is ExportSnapshot from a named backend's registry
// ("" for the default); deltaOnly selects the delta wire form.
func (w *Wasp) ExportSnapshotOn(platform, name string, deltaOnly bool) ([]byte, error) {
	be, err := w.backendFor(platform)
	if err != nil {
		return nil, err
	}
	return w.exportSnapshot(be, name, deltaOnly)
}

func (w *Wasp) exportSnapshot(be *backend, name string, deltaOnly bool) ([]byte, error) {
	snap := be.snapshots.get(name)
	if snap == nil {
		return nil, fmt.Errorf("wasp: no snapshot for image %q", name)
	}
	defer snap.release()
	return w.exportRetainedSnapshot(be, name, snap, deltaOnly)
}

// exportRetainedSnapshot serializes a snapshot the caller already holds
// a retain on (and keeps holding — the caller releases). Callers that
// make decisions about the snapshot before exporting it (MigrateSnapshot
// inspects the layer parentage to pick the wire form) must hand their
// retained handle down here rather than let the export re-fetch by name:
// a re-fetch reopens the window in which a concurrent DropSnapshot +
// re-capture swaps the snapshot between the decision and the export.
func (w *Wasp) exportRetainedSnapshot(be *backend, name string, snap *snapshot, deltaOnly bool) ([]byte, error) {
	if snap.native != nil {
		return nil, fmt.Errorf("wasp: snapshot for %q carries native host state and is not portable", name)
	}

	wire := snapshotWire{
		Geometry:   snap.memLen(),
		Captured:   snap.captured,
		State:      snap.state,
		Booted:     snap.booted,
		ContentKey: snap.contentKey,
	}
	switch {
	case snap.layer == nil:
		// Legacy deep-copy snapshot: ship its non-zero pages.
		for lo := 0; lo < len(snap.mem); lo += vmm.PageSize {
			hi := lo + vmm.PageSize
			if hi > len(snap.mem) {
				hi = len(snap.mem)
			}
			if !allZero(snap.mem[lo:hi]) {
				wire.Pages = append(wire.Pages, wirePage{Idx: lo / vmm.PageSize, Data: fullPage(snap.mem[lo:hi])})
			}
		}
	case deltaOnly && snap.layer.Parent() != nil && snap.contentKey != "":
		wire.Delta = true
		wire.BaseDigest = snap.layer.Parent().Digest()
		for _, e := range snap.layer.OwnTable() {
			var data []byte
			if e.Key != vmm.ZeroKey {
				data = copyPage(be.forest.Data(e.Key))
			}
			wire.Pages = append(wire.Pages, wirePage{Idx: e.Idx, Data: data})
		}
	default:
		for _, e := range snap.layer.ResolvedTable() {
			wire.Pages = append(wire.Pages, wirePage{Idx: e.Idx, Data: copyPage(be.forest.Data(e.Key))})
		}
	}

	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	buf.WriteByte(snapshotVersion)
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("wasp: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// ImportSnapshot installs a serialized snapshot under the given image
// name on the default backend. The receiving side must run the same
// image (same name, same memory geometry); the next Run with Snapshot
// enabled resumes from the migrated state. A delta blob requires the
// receiver to already hold the base layer it grafts onto.
func (w *Wasp) ImportSnapshot(name string, data []byte) error {
	return w.importSnapshot(w.backends[0], name, data)
}

// ImportSnapshotOn is ImportSnapshot into a named backend's registry.
func (w *Wasp) ImportSnapshotOn(platform, name string, data []byte) error {
	be, err := w.backendFor(platform)
	if err != nil {
		return err
	}
	return w.importSnapshot(be, name, data)
}

func (w *Wasp) importSnapshot(be *backend, name string, data []byte) error {
	wire, err := decodeSnapshotWire(name, data)
	if err != nil {
		return err
	}

	snap := &snapshot{
		contentKey: wire.ContentKey,
		captured:   wire.Captured,
		state:      wire.State,
		booted:     wire.Booted,
	}
	if w.legacySnaps {
		// Legacy registries hold deep copies: materialize the blob. A
		// delta blob cannot materialize without its base.
		if wire.Delta {
			return fmt.Errorf("wasp: snapshot for %q is a delta over base %s; legacy deep-copy registries cannot graft it", name, wire.ContentKey)
		}
		mem := make([]byte, wire.Geometry)
		for _, p := range wire.Pages {
			copy(mem[p.Idx*vmm.PageSize:], p.Data)
		}
		snap.mem = mem
		be.snapshots.put(name, snap)
		return nil
	}

	var parent *vmm.Layer
	if wire.Delta {
		parent = be.bases.get(wire.ContentKey)
		if parent == nil {
			return fmt.Errorf("wasp: snapshot for %q is a delta over base %s, which this runtime does not hold (import or capture the full snapshot first)", name, wire.ContentKey)
		}
		if parent.MemLen() != wire.Geometry || parent.Digest() != wire.BaseDigest {
			return fmt.Errorf("wasp: snapshot for %q: local base layer %s does not match the exporter's (geometry or content drift)", name, wire.ContentKey)
		}
	}

	// Build the layer, re-hashing every shipped page into the store —
	// the importer never trusts a key it did not compute, so a hostile
	// blob cannot poison the shared store.
	pages := make(map[int]vmm.PageKey, len(wire.Pages))
	for _, p := range wire.Pages {
		if p.Data == nil {
			// Explicit zero-override (delta-only; validated above).
			pages[p.Idx] = vmm.ZeroKey
			continue
		}
		pages[p.Idx] = be.forest.Insert(p.Data)
	}
	snap.layer = vmm.NewLayer(be.forest, parent, wire.Geometry, pages)
	// A self-contained import becomes the receiver's base layer for the
	// content when it has none, so later tenant deltas can graft.
	if !wire.Delta && wire.ContentKey != "" {
		be.bases.register(wire.ContentKey, snap.layer)
	}
	be.snapshots.put(name, snap)
	return nil
}

// decodeSnapshotWire parses and validates a snapshot blob: magic,
// version, geometry and length sanity, page bounds, duplicate and
// short/long page payloads. Validation happens before anything touches
// a registry or store, so a hostile blob can be rejected without side
// effects.
func decodeSnapshotWire(name string, data []byte) (*snapshotWire, error) {
	headerLen := len(snapshotMagic) + 1
	if len(data) < headerLen {
		return nil, fmt.Errorf("wasp: snapshot blob for %q is truncated (%d bytes)", name, len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("wasp: blob for %q is not a snapshot (bad magic)", name)
	}
	if v := data[len(snapshotMagic)]; v != snapshotVersion {
		return nil, fmt.Errorf("wasp: snapshot blob for %q is format version %d; this runtime supports version %d", name, v, snapshotVersion)
	}
	var wire snapshotWire
	if err := gob.NewDecoder(bytes.NewReader(data[headerLen:])).Decode(&wire); err != nil {
		return nil, fmt.Errorf("wasp: decoding snapshot for %q: %w", name, err)
	}
	if wire.Geometry <= 0 || wire.Geometry > maxWireGeometry {
		return nil, fmt.Errorf("wasp: snapshot for %q claims hostile geometry %d", name, wire.Geometry)
	}
	if wire.Captured <= 0 || wire.Captured > wire.Geometry {
		return nil, fmt.Errorf("wasp: snapshot for %q is malformed (captured=%d, geometry=%d)", name, wire.Captured, wire.Geometry)
	}
	npages := (wire.Geometry + vmm.PageSize - 1) / vmm.PageSize
	if len(wire.Pages) > npages {
		return nil, fmt.Errorf("wasp: snapshot for %q ships %d pages into a %d-page geometry", name, len(wire.Pages), npages)
	}
	seen := make(map[int]bool, len(wire.Pages))
	for _, p := range wire.Pages {
		if p.Idx < 0 || p.Idx >= npages {
			return nil, fmt.Errorf("wasp: snapshot for %q: page index %d outside %d-page geometry", name, p.Idx, npages)
		}
		if seen[p.Idx] {
			return nil, fmt.Errorf("wasp: snapshot for %q: duplicate page %d", name, p.Idx)
		}
		seen[p.Idx] = true
		if p.Data != nil && len(p.Data) != vmm.PageSize {
			return nil, fmt.Errorf("wasp: snapshot for %q: page %d carries %d bytes, want %d", name, p.Idx, len(p.Data), vmm.PageSize)
		}
		if p.Data == nil && !wire.Delta {
			return nil, fmt.Errorf("wasp: snapshot for %q: zero-override page %d in a self-contained blob", name, p.Idx)
		}
	}
	if wire.Delta && wire.ContentKey == "" {
		return nil, fmt.Errorf("wasp: snapshot for %q: delta blob without a base content key", name)
	}
	if !wire.Delta && wire.BaseDigest != [32]byte{} {
		return nil, fmt.Errorf("wasp: snapshot for %q: base digest on a self-contained blob", name)
	}
	return &wire, nil
}

// MigrateSnapshot moves one image's snapshot between two backends of
// this runtime — the mechanism the placement layer's rebalancing
// follow-up rides on when a tenant's placement flips. When the target
// backend already holds the snapshot's base layer, only the tenant's
// delta crosses (deltaOnly true, shipped is the delta blob size);
// otherwise the full snapshot ships. Returns the blob size shipped.
func (w *Wasp) MigrateSnapshot(name, fromPlatform, toPlatform string) (shipped int, deltaOnly bool, err error) {
	src, err := w.backendFor(fromPlatform)
	if err != nil {
		return 0, false, err
	}
	dst, err := w.backendFor(toPlatform)
	if err != nil {
		return 0, false, err
	}
	if src == dst {
		return 0, false, fmt.Errorf("wasp: migrating %q from %s to itself", name, src.platform.Name())
	}
	snap := src.snapshots.get(name)
	if snap == nil {
		return 0, false, fmt.Errorf("wasp: no snapshot for image %q on %s", name, src.platform.Name())
	}
	// One retain covers the deltaOnly decision AND the export: releasing
	// before the export and re-fetching by name would let a concurrent
	// DropSnapshot + re-capture swap the snapshot in between, so the wire
	// form chosen here could disagree with the snapshot actually shipped
	// (stale base digest → spurious full ship or failed graft).
	defer snap.release()
	// Ship the delta iff the snapshot has a base and the target holds a
	// matching copy of it.
	if snap.contentKey != "" && snap.layer != nil && snap.layer.Parent() != nil {
		if local := dst.bases.get(snap.contentKey); local != nil &&
			local.MemLen() == snap.layer.MemLen() && local.Digest() == snap.layer.Parent().Digest() {
			deltaOnly = true
		}
	}
	if gate := migrateExportGate; gate != nil {
		gate()
	}
	blob, err := w.exportRetainedSnapshot(src, name, snap, deltaOnly)
	if err != nil {
		return 0, false, err
	}
	if err := w.importSnapshot(dst, name, blob); err != nil {
		return 0, false, err
	}
	if tr := w.tracer; tr.Enabled() {
		var delta uint64
		if deltaOnly {
			delta = 1
		}
		tr.Instant(obs.ControlLane, obs.KindMigrate, name, 0, 0, uint64(len(blob)), delta)
	}
	return len(blob), deltaOnly, nil
}

// migrateExportGate, when non-nil, runs between MigrateSnapshot's wire-form
// decision and the export — a test seam that lets the regression suite park
// a concurrent DropSnapshot/re-capture exactly inside the window the retain
// protocol must cover. Always nil outside tests.
var migrateExportGate func()

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// fullPage zero-pads a tail page to PageSize; full pages are copied.
func fullPage(b []byte) []byte {
	out := make([]byte, vmm.PageSize)
	copy(out, b)
	return out
}

// copyPage copies a store page for the wire (store backing must never
// leak into a mutable buffer).
func copyPage(b []byte) []byte {
	return append([]byte(nil), b...)
}
