package wasp

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/cpu"
)

// Virtine migration (§7.3): "Because virtines implement an abstract
// machine model, are packaged with their runtime environment, and employ
// similar semantics to RPC, they allow for location transparency.
// Virtines could therefore be migrated to execute on remote machines just
// like containers."
//
// A snapshot is exactly the state that needs to move: the captured guest
// memory and the architectural register file. ExportSnapshot serializes
// it; ImportSnapshot installs it into another Wasp instance (another
// "machine"), where subsequent runs of the same image resume from the
// migrated state. Native-workload snapshots carry host-side Go state and
// are not portable.

// snapshotWire is the serialized form.
type snapshotWire struct {
	Mem      []byte
	Captured int
	State    cpu.State
	Booted   bool
}

// ExportSnapshot serializes the named image's snapshot (from the
// default backend's registry) for migration.
func (w *Wasp) ExportSnapshot(name string) ([]byte, error) {
	snap := w.backends[0].snapshots.get(name)
	if snap == nil {
		return nil, fmt.Errorf("wasp: no snapshot for image %q", name)
	}
	if snap.native != nil {
		return nil, fmt.Errorf("wasp: snapshot for %q carries native host state and is not portable", name)
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(snapshotWire{
		Mem:      snap.mem,
		Captured: snap.captured,
		State:    snap.state,
		Booted:   snap.booted,
	}); err != nil {
		return nil, fmt.Errorf("wasp: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// ImportSnapshot installs a serialized snapshot under the given image
// name. The receiving side must run the same image (same name, same
// memory geometry); the next Run with Snapshot enabled resumes from the
// migrated state.
func (w *Wasp) ImportSnapshot(name string, data []byte) error {
	var wire snapshotWire
	dec := gob.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&wire); err != nil {
		return fmt.Errorf("wasp: decoding snapshot: %w", err)
	}
	if wire.Captured <= 0 || wire.Captured > len(wire.Mem) {
		return fmt.Errorf("wasp: snapshot for %q is malformed (captured=%d, mem=%d)",
			name, wire.Captured, len(wire.Mem))
	}
	w.backends[0].snapshots.put(name, &snapshot{
		mem:      wire.Mem,
		captured: wire.Captured,
		state:    wire.State,
		booted:   wire.Booted,
	})
	return nil
}
