package wasp

import (
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/hypercall"
)

func TestSnapshotMigration(t *testing.T) {
	// Machine A runs the virtine once (boot + snapshot), exports the
	// snapshot; machine B imports it and resumes directly at the
	// snapshot point, never paying the boot.
	img := guest.MustFromAsm("migrate-me", guest.WrapLongMode(`
	movi rbx, 0x6000
	movi rax, 7777
	store [rbx], rax     ; pre-snapshot state the migration must carry
	out 0x08, rdi        ; snapshot()
	movi rbx, 0x6000
	load rax, [rbx]
	movi rbx, 0x4000
	store [rbx], rax
	movi rdi, 0
	out 0x00, rdi
	hlt
`))
	cfg := RunConfig{Snapshot: true, RetBytes: 8}

	a := New()
	resA, err := a.Run(img, cfg, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if fromLE64(resA.Ret) != 7777 {
		t.Fatalf("machine A result: %d", fromLE64(resA.Ret))
	}
	blob, err := a.ExportSnapshot(img.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Fatal("empty snapshot blob")
	}

	b := New()
	if err := b.ImportSnapshot(img.Name, blob); err != nil {
		t.Fatal(err)
	}
	resB, err := b.Run(img, cfg, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !resB.SnapshotUsed {
		t.Fatal("machine B did not resume from the migrated snapshot")
	}
	if fromLE64(resB.Ret) != 7777 {
		t.Fatalf("migrated state lost: %d", fromLE64(resB.Ret))
	}
	// B never booted the image: its run must be cheaper than A's cold
	// run.
	if resB.Cycles >= resA.Cycles {
		t.Fatalf("migrated run (%d) should be cheaper than cold boot (%d)", resB.Cycles, resA.Cycles)
	}
}

func TestExportMissingSnapshot(t *testing.T) {
	w := New()
	if _, err := w.ExportSnapshot("nothing"); err == nil {
		t.Fatal("export of missing snapshot accepted")
	}
}

func TestExportNativeSnapshotRefused(t *testing.T) {
	native := func(c any) error {
		n := c.(*NativeCtx)
		if n.Restored() == nil {
			n.TakeSnapshot("host-state")
		}
		_, err := n.Hypercall(hypercall.NrExit, 0)
		return err
	}
	img := guest.NativeBootStub("native-snap", native, 0)
	w := New()
	if _, err := w.Run(img, RunConfig{Snapshot: true}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	_, err := w.ExportSnapshot(img.Name)
	if err == nil || !strings.Contains(err.Error(), "not portable") {
		t.Fatalf("err = %v, want not-portable refusal", err)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	w := New()
	if err := w.ImportSnapshot("x", []byte("not a snapshot")); err == nil {
		t.Fatal("garbage import accepted")
	}
}

func TestImportRejectsMalformed(t *testing.T) {
	// A structurally valid gob with inconsistent sizes must be rejected.
	img := guest.MustFromAsm("malform", guest.WrapLongMode(`
	out 0x08, rdi
	hlt
`))
	a := New()
	if _, err := a.Run(img, RunConfig{Snapshot: true}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	blob, err := a.ExportSnapshot(img.Name)
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode with a corrupted captured count by importing then
	// hand-rolling: simplest is truncating the blob.
	if err := a.ImportSnapshot("trunc", blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
