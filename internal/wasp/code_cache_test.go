package wasp

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/hypercall"
)

// A hypercall handler that writes into a code page (here: recv filling a
// buffer that overlaps the instruction stream) must flush the decoded
// cache for that page — the guest then executes the received bytes, as
// on real hardware. This is the host-write half of the self-modifying
// code story; vmm.Context.HostWrite carries the invalidation.
func TestHypercallWriteIntoCodePage(t *testing.T) {
	src := guest.WrapLongMode(`
	movi rdi, 3
	movi rsi, patch
	movi rdx, 10
	out 0x07, rax
patch:
	movi rax, 111
	mov rdi, rax
	out 0x00, rdi
	hlt
`)
	img := guest.MustFromAsm("hc-code-write", src)

	// The payload is the encoding of `movi rax, 222`, exactly the size
	// of the instruction it overwrites.
	patch, err := asm.Assemble(".bits 64\n\tmovi rax, 222\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(patch.Code) != 10 {
		t.Fatalf("patch encoding is %d bytes, want 10", len(patch.Code))
	}

	for _, legacy := range []bool{false, true} {
		w := New(WithLegacyInterp(legacy))
		for i := 0; i < 3; i++ { // repeat: later runs adopt cached pages
			env := hypercall.NewEnv()
			env.NetIn = append([]byte(nil), patch.Code...)
			res, err := w.Run(img, RunConfig{
				Policy: hypercall.MaskOf(hypercall.NrRecv),
				Env:    env,
			}, cycles.NewClock())
			if err != nil {
				t.Fatalf("legacy=%v run %d: %v", legacy, i, err)
			}
			if res.ExitCode != 222 {
				t.Fatalf("legacy=%v run %d: exit code %d, want 222 (stale decode executed)",
					legacy, i, res.ExitCode)
			}
		}
	}
}

// Without the incoming payload the unpatched instruction must run — a
// guard that the test above really exercises the patched path.
func TestHypercallWriteIntoCodePageBaseline(t *testing.T) {
	src := guest.WrapLongMode(`
	movi rdi, 3
	movi rsi, patch
	movi rdx, 10
	out 0x07, rax
patch:
	movi rax, 111
	mov rdi, rax
	out 0x00, rdi
	hlt
`)
	img := guest.MustFromAsm("hc-code-write-base", src)
	w := New()
	env := hypercall.NewEnv() // empty NetIn: recv writes nothing
	res, err := w.Run(img, RunConfig{
		Policy: hypercall.MaskOf(hypercall.NrRecv),
		Env:    env,
	}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 111 {
		t.Fatalf("exit code %d, want 111", res.ExitCode)
	}
}
