package wasp

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/hypercall"
	"repro/internal/vmm"
)

// NativeCtx is the execution context handed to a native workload — a
// host-implemented function standing in for guest code the VX toolchain
// cannot express (the Duktape JavaScript engine of §6.5, the OpenSSL
// block cipher of §6.4). The workload runs with virtine semantics:
//
//   - It may touch only the virtine's guest memory (Mem) — the same
//     disjoint-state model as interpreted guests (§3.3).
//   - All external interaction goes through Hypercall, which pays the
//     full exit/entry cost and passes the client's policy check.
//   - Compute is accounted explicitly with Charge, using the same
//     calibrated cost model as the interpreter.
//   - It may capture a snapshot with TakeSnapshot; later runs observe the
//     saved state through Restored and skip initialization (Fig 7).
//
// DESIGN.md documents this substitution: the control flow (exit counts,
// bytes copied, snapshot mechanics) is real, only the instruction stream
// is summarized by Charge calls.
type NativeCtx struct {
	wasp     *Wasp
	be       *backend
	img      *guest.Image
	ctx      *vmm.Context
	cfg      *RunConfig
	clk      *cycles.Clock
	env      *hypercall.Env
	gm       *guestMem
	res      *Result
	restored any
}

// Mem exposes the virtine's guest-physical memory.
func (n *NativeCtx) Mem() []byte { return n.ctx.Mem }

// Charge accounts cy cycles of in-virtine compute.
func (n *NativeCtx) Charge(cy uint64) { n.clk.Advance(cy) }

// Now returns the current virtual time.
func (n *NativeCtx) Now() uint64 { return n.clk.Now() }

// Env exposes the host environment (for assertions by tests; workloads
// should use Hypercall).
func (n *NativeCtx) Env() *hypercall.Env { return n.env }

// Restored returns the state stored by TakeSnapshot in the run that
// captured this image's snapshot, or nil on a cold run.
func (n *NativeCtx) Restored() any { return n.restored }

// Hypercall performs one hypercall from the native workload, paying the
// exit, dispatch, and re-entry costs and passing the policy gate —
// exactly what an OUT instruction costs an interpreted guest.
func (n *NativeCtx) Hypercall(nr uint8, args ...uint64) (uint64, error) {
	n.clk.Advance(n.ctx.Platform().ExitCost())
	n.clk.Advance(cycles.HypercallDispatch)
	n.ctx.ExitsIO++
	call := hypercall.Args{Nr: nr}
	set := []*uint64{&call.A0, &call.A1, &call.A2, &call.A3, &call.A4, &call.A5}
	if len(args) > len(set) {
		return 0, fmt.Errorf("wasp: hypercall %s: too many arguments", hypercall.Name(nr))
	}
	for i, a := range args {
		*set[i] = a
	}
	mechanism := nr == hypercall.NrExit || nr == hypercall.NrMark || nr == hypercall.NrSnapshot
	if !mechanism && !n.cfg.Policy.Allow(nr) {
		return 0, fmt.Errorf("wasp: virtine %s: %s: %w", n.img.Name, hypercall.Name(nr), hypercall.ErrDenied)
	}
	ret, err := n.cfg.Handler.Handle(call, n.gm)
	if err != nil {
		return 0, fmt.Errorf("wasp: %s failed: %w", hypercall.Name(nr), err)
	}
	n.clk.Advance(n.ctx.Platform().EntryCost())
	n.ctx.Entries++
	return ret, nil
}

// TakeSnapshot captures the virtine's memory, vCPU state, and the
// workload's opaque state so later runs can resume past initialization.
// The capture cost (a memcpy of the image footprint) is charged.
func (n *NativeCtx) TakeSnapshot(state any) {
	if !n.cfg.Snapshot || !n.wasp.snapEnable {
		return
	}
	n.wasp.capture(n.be, n.ctx, n.img, state, true, n.clk)
}
