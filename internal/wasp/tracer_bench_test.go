package wasp

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/obs"
)

// BenchmarkTracerOverheadRun prices the flight recorder on the guest
// execution path (the Fig 11 interp shape): warm snapshot-restore runs
// of a looping guest, untraced vs a disabled tracer vs recording. The
// interpreter's inner loop is untouched by tracing (tier transitions
// batch into the CPU-local log), so the disabled tax here is the RunOn
// instrumentation alone.
func BenchmarkTracerOverheadRun(b *testing.B) {
	img := guest.MustFromAsm("bench-trace-loop", guest.WrapLongMode(`
	out 0x08, rdi        ; snapshot()
	movi rcx, 200
	movi rax, 0
loop:
	inc rax
	dec rcx
	jnz loop
	movi rdi, 0
	out 0x00, rdi
	hlt
`))
	cfg := RunConfig{Snapshot: true}
	for _, mode := range []struct {
		name string
		mk   func() *obs.Tracer
	}{
		{"none", func() *obs.Tracer { return nil }},
		{"disabled", func() *obs.Tracer { return obs.NewTracer(obs.Deterministic(true)) }},
		{"enabled", func() *obs.Tracer {
			tr := obs.NewTracer(obs.Deterministic(true))
			tr.SetEnabled(true)
			return tr
		}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			w := New(WithTracer(mode.mk()))
			if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
