package wasp

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
)

// TestGuestMemOverflowBounds is the regression test for the wrapping
// bounds checks: addr+n overflows uint64 and used to pass the check,
// letting a guest read or write host memory out of bounds.
func TestGuestMemOverflowBounds(t *testing.T) {
	g := guestMem{mem: make([]byte, 4096), clk: cycles.NewClock()}

	addr := ^uint64(0) - 8 // addr + 16 wraps to 7
	if _, err := g.ReadGuest(addr, 16); err == nil {
		t.Fatal("overflowing read passed the bounds check")
	}
	if err := g.WriteGuest(addr, make([]byte, 16)); err == nil {
		t.Fatal("overflowing write passed the bounds check")
	}
	// addr just past the window, n small enough that addr+n wraps not at
	// all — plain out-of-bounds must still fail.
	if _, err := g.ReadGuest(uint64(len(g.mem))+1, 0); err == nil {
		t.Fatal("read past end passed the bounds check")
	}
	// Boundary cases that must remain legal.
	if _, err := g.ReadGuest(uint64(len(g.mem)), 0); err != nil {
		t.Fatalf("zero-length read at end rejected: %v", err)
	}
	if _, err := g.ReadGuest(0, len(g.mem)); err != nil {
		t.Fatalf("full-window read rejected: %v", err)
	}
	if err := g.WriteGuest(uint64(len(g.mem))-4, make([]byte, 4)); err != nil {
		t.Fatalf("tail write rejected: %v", err)
	}
}

// TestConcurrentRunStress hammers Run from many goroutines across three
// images with pooling and snapshotting enabled — the scenario the
// sharded pools exist for. Run under -race this doubles as the data-race
// check on the pool, snapshot, and COW registries.
func TestConcurrentRunStress(t *testing.T) {
	const (
		goroutines = 16
		runsEach   = 25
	)
	w := New() // pooling + snapshotting on
	images := make([]*guest.Image, 3)
	for i := range images {
		images[i] = guest.MustFromAsm(
			fmt.Sprintf("stress-%d", i),
			guest.WrapLongMode(snapshotCounterAsm))
	}
	cfg := RunConfig{Snapshot: true, RetBytes: 16}

	// Warm each image once so every concurrent run can hit the snapshot
	// fast path.
	for _, img := range images {
		if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < runsEach; i++ {
				img := images[(g+i)%len(images)]
				res, err := w.Run(img, cfg, cycles.NewClock())
				if err != nil {
					errs <- err
					return
				}
				if !res.SnapshotUsed {
					errs <- fmt.Errorf("%s run %d: snapshot not reused", img.Name, i)
					return
				}
				// Resume-at-snapshot semantics must hold under contention.
				if pre, post := fromLE64(res.Ret[:8]), fromLE64(res.Ret[8:]); pre != 1 || post != 1 {
					errs <- fmt.Errorf("%s run %d: counters %d/%d, want 1/1", img.Name, i, pre, post)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Pool accounting must be consistent after the storm: every context
	// ever created was released exactly once, so the cached-shell count
	// is positive and bounded by the peak concurrency (warm-up + workers).
	mem := images[0].MemBytes()
	total := w.PoolTotal()
	if total == 0 {
		t.Fatal("no shells cached after concurrent runs")
	}
	if total > goroutines+1 {
		t.Fatalf("pool holds %d shells, more than peak concurrency %d", total, goroutines+1)
	}
	if size := w.PoolSize(mem); size != total {
		t.Fatalf("per-class pool size %d != total %d for the single size class", size, total)
	}
	for _, img := range images {
		if !w.HasSnapshot(img.Name) {
			t.Fatalf("snapshot for %s lost during concurrent runs", img.Name)
		}
	}
	// And the pool still works: one more run per image reuses shells and
	// snapshots.
	for _, img := range images {
		res, err := w.Run(img, cfg, cycles.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		if !res.SnapshotUsed {
			t.Fatalf("%s: snapshot not reused after stress", img.Name)
		}
	}
	if w.PoolTotal() != total {
		t.Fatalf("pool total changed %d -> %d across steady-state runs", total, w.PoolTotal())
	}
}

// TestPoolPerImageSizing: warm-target claims are tracked per image
// within a size class, so one tenant going idle shrinks only its own
// share of the warm set and an active tenant's prewarmed shells
// survive a neighbor's quiet period.
func TestPoolPerImageSizing(t *testing.T) {
	w := New(WithPoolPolicy(PoolPolicy{MaxPerClass: 8, GrowDepth: 2, GrowBatch: 8, ShrinkAfter: 2}))
	const mem = 64 << 10

	w.ObserveLoad("tenant-a", mem, 4, 1000)
	w.ObserveLoad("tenant-b", mem, 3, 2000)
	if st := w.PoolImageStats(mem, "tenant-a"); st.Target != 4 || st.SvcEWMA == 0 {
		t.Fatalf("tenant-a image stats = %+v, want target 4", st)
	}
	if st := w.PoolImageStats(mem, "tenant-b"); st.Target != 3 {
		t.Fatalf("tenant-b image stats = %+v, want target 3", st)
	}
	// The class target is the sum of the per-image claims, and the pool
	// is prewarmed up to it.
	if st := w.PoolStatsFor(mem); st.Target != 7 || st.Cached != 7 {
		t.Fatalf("class stats = %+v, want target/cached 7/7", st)
	}

	// tenant-b idles: only its claim decays, one surplus shell at a time.
	for i := 0; i < 2*3; i++ {
		w.ObserveLoad("tenant-b", mem, 0, 500)
	}
	if st := w.PoolImageStats(mem, "tenant-b"); st.Target != 0 {
		t.Fatalf("idle tenant-b target = %d, want 0", st.Target)
	}
	if st := w.PoolImageStats(mem, "tenant-a"); st.Target != 4 {
		t.Fatalf("tenant-a target = %d after neighbor idle, want 4 (untouched)", st.Target)
	}
	if st := w.PoolStatsFor(mem); st.Target != 4 || st.Cached != 4 {
		t.Fatalf("class stats after shrink = %+v, want 4/4 (tenant-a's warm set kept)", st)
	}

	// A deeper burst from tenant-a clamps the summed target at the cap.
	w.ObserveLoad("tenant-a", mem, 100, 1000)
	if st := w.PoolStatsFor(mem); st.Target != 8 {
		t.Fatalf("class target = %d after deep burst, want 8 (cap)", st.Target)
	}
}

// TestPoolVanishedTenantReaped: a tenant that stops submitting entirely
// never runs its own idle streak, so the stale reaper must drain its
// warm claim instead — otherwise its shells stay pinned forever while
// other tenants keep the class's observation stream alive.
func TestPoolVanishedTenantReaped(t *testing.T) {
	w := New(WithPoolPolicy(PoolPolicy{MaxPerClass: 8, GrowDepth: 2, GrowBatch: 8, ShrinkAfter: 2}))
	const mem = 64 << 10

	w.ObserveLoad("ghost", mem, 4, 1000)
	if st := w.PoolStatsFor(mem); st.Target != 4 || st.Cached != 4 {
		t.Fatalf("after burst: %+v, want 4/4", st)
	}
	// The ghost vanishes; another tenant keeps completing uncontended.
	// Past the staleness window (8x ShrinkAfter observations) the
	// ghost's claim drains and the warm set shrinks back to the floor.
	for i := 0; i < 40; i++ {
		w.ObserveLoad("steady", mem, 0, 500)
	}
	if st := w.PoolImageStats(mem, "ghost"); st.Target != 0 {
		t.Fatalf("ghost target = %d after staleness window, want 0", st.Target)
	}
	if st := w.PoolStatsFor(mem); st.Target != 0 || st.Cached != 1 {
		t.Fatalf("class stats = %+v, want 0 target / 1 cached (floor)", st)
	}
}
