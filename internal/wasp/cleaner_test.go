package wasp

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/vmm"
)

// dirtyProbeAsm reports the heap word at 0x6000 as its return value and
// then dirties it. A shell handed out without cleaning makes the next
// probe observe the previous run's marker instead of zero.
const dirtyProbeAsm = `
	movi rbx, 0x6000
	load rax, [rbx]
	movi rcx, 0x4000
	store [rcx], rax     ; ret = previous marker (must be 0)
	movi rax, 0xD1D1
	store [rbx], rax     ; dirty the shell
	movi rdi, 0
	out 0x00, rdi
	hlt
`

// TestAsyncReleaseDoesNoZeroingOnCallerPath pins the Wasp+CA contract
// the seed violated: release must neither zero the shell nor park it
// clean — the dirty shell goes to the cleaner's queue, and the zeroing
// observably happens on the cleaner lane (here driven manually so no
// background goroutine can race the observation).
func TestAsyncReleaseDoesNoZeroingOnCallerPath(t *testing.T) {
	w := New(WithAsyncClean(true))
	c := w.Cleaner()
	if c == nil {
		t.Fatal("async runtime has no cleaner")
	}
	c.SetDriven(true) // no background drain: only explicit scrubs below
	defer c.SetDriven(false)

	img := guest.MinimalHalt()
	if _, err := w.Run(img, RunConfig{}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	if n := w.PoolTotal(); n != 0 {
		t.Fatalf("release parked %d shell(s) itself; must defer to the cleaner", n)
	}
	if p := c.Pending(); p != 1 {
		t.Fatalf("cleaner pending = %d, want 1", p)
	}
	if n := c.Cleaned(); n != 0 {
		t.Fatalf("cleaned = %d before any drain; release zeroed on the caller's path", n)
	}
	// The queued shell is still dirty: the boot wrote page tables, so
	// unzeroed guest memory contains nonzero bytes.
	c.mu.Lock()
	s := c.queue[0].s
	c.mu.Unlock()
	if !s.dirty {
		t.Fatal("queued shell marked clean")
	}
	dirtyBytes := false
	for _, b := range s.ctx.Mem {
		if b != 0 {
			dirtyBytes = true
			break
		}
	}
	if !dirtyBytes {
		t.Fatal("queued shell memory already zeroed; cleaning happened on the release path")
	}

	// Draining the cleaner lane scrubs and parks it.
	if n := c.Drain(); n != 1 {
		t.Fatalf("drained %d, want 1", n)
	}
	if n := w.PoolTotal(); n != 1 {
		t.Fatalf("pool total = %d after drain, want 1", n)
	}
	if n := c.Cleaned(); n != 1 {
		t.Fatalf("cleaned = %d, want 1", n)
	}
}

// TestNoDirtyShellAcquiredUnderAsyncClean is the -race stress test for
// the cleaner: many goroutines hammer Run while shells cycle through
// the dirty queue, the background drain goroutine, and inline reclaims;
// no run may ever observe another run's marker.
func TestNoDirtyShellAcquiredUnderAsyncClean(t *testing.T) {
	const (
		goroutines = 8
		runsEach   = 40
	)
	w := New(WithAsyncClean(true))
	img := guest.MustFromAsm("dirty-probe", guest.WrapLongMode(dirtyProbeAsm))

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < runsEach; i++ {
				res, err := w.Run(img, RunConfig{RetBytes: 8}, cycles.NewClock())
				if err != nil {
					errs <- err
					return
				}
				if marker := fromLE64(res.Ret); marker != 0 {
					errs <- fmt.Errorf("run %d acquired a dirty shell: marker %#x", i, marker)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c := w.Cleaner()
	if c.Cleaned() == 0 {
		t.Fatal("no shell ever passed through the cleaner")
	}
	if c.Enqueued() != uint64(goroutines*runsEach) {
		t.Fatalf("enqueued = %d, want %d (every release must go through the cleaner)",
			c.Enqueued(), goroutines*runsEach)
	}
}

// TestPoolCapacityBound is the unbounded-growth regression test: a
// burst can no longer retain more shells than the per-class cap.
func TestPoolCapacityBound(t *testing.T) {
	w := New(WithPoolPolicy(PoolPolicy{MaxPerClass: 4}))
	img := guest.MinimalHalt()
	mem := img.MemBytes()

	// Prewarm clamps at the bound.
	if added := w.Prewarm(mem, 10); added != 4 {
		t.Fatalf("prewarm added %d, want 4 (cap)", added)
	}
	if n := w.PoolTotal(); n != 4 {
		t.Fatalf("pool total = %d after prewarm, want 4", n)
	}

	// A concurrent burst of 12 runs must end at or below the cap.
	const goroutines = 12
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 4; i++ {
				if _, err := w.Run(img, RunConfig{}, cycles.NewClock()); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := w.PoolTotal(); n > 4 {
		t.Fatalf("pool grew to %d shells, cap is 4", n)
	}
}

// TestAsyncBacklogAndParkBounds pins both async-side bounds
// deterministically: the dirty backlog caps at twice the class
// capacity, and draining parks at most MaxPerClass shells.
func TestAsyncBacklogAndParkBounds(t *testing.T) {
	w := New(WithAsyncClean(true), WithPoolPolicy(PoolPolicy{MaxPerClass: 2}))
	c := w.Cleaner()
	c.SetDriven(true)
	defer c.SetDriven(false)

	const mem = 64 << 10
	for i := 0; i < 5; i++ {
		w.release(vmm.CreateOn(vmm.KVM{}, mem, cycles.NewClock()))
	}
	// Backlog cap = 2*MaxPerClass = 4: the fifth shell is dropped.
	if p := c.Pending(); p != 4 {
		t.Fatalf("pending = %d, want 4 (backlog cap)", p)
	}
	if d := c.Dropped(); d != 1 {
		t.Fatalf("dropped = %d at enqueue, want 1", d)
	}
	if n := c.Drain(); n != 4 {
		t.Fatalf("drained %d, want 4", n)
	}
	if n := w.PoolTotal(); n != 2 {
		t.Fatalf("pool total = %d after drain, want 2 (class cap)", n)
	}
	if d := c.Dropped(); d != 3 {
		t.Fatalf("dropped = %d total, want 3 (1 backlog + 2 park overflow)", d)
	}
}

// TestPoolPolicySelfSizing drives the telemetry-fed sizing directly:
// bursts raise the warm target and prewarm shells; sustained idle
// decays the target and releases surplus shells, flooring at one.
func TestPoolPolicySelfSizing(t *testing.T) {
	w := New(WithPoolPolicy(PoolPolicy{MaxPerClass: 8, GrowDepth: 2, GrowBatch: 8, ShrinkAfter: 3}))
	const mem = 64 << 10

	w.ObserveLoad("", mem, 6, 1000)
	st := w.PoolStatsFor(mem)
	if st.Target != 6 || st.Cached != 6 {
		t.Fatalf("after burst of 6: target/cached = %d/%d, want 6/6", st.Target, st.Cached)
	}
	if st.SvcEWMA == 0 {
		t.Fatal("service-time telemetry not recorded")
	}

	// A deeper burst clamps at the class cap.
	w.ObserveLoad("", mem, 100, 1000)
	st = w.PoolStatsFor(mem)
	if st.Target != 8 || st.Cached != 8 {
		t.Fatalf("after deep burst: target/cached = %d/%d, want 8/8 (cap)", st.Target, st.Cached)
	}

	// Three consecutive uncontended completions shrink by one.
	for i := 0; i < 3; i++ {
		w.ObserveLoad("", mem, 0, 500)
	}
	st = w.PoolStatsFor(mem)
	if st.Target != 7 || st.Cached != 7 {
		t.Fatalf("after idle streak: target/cached = %d/%d, want 7/7", st.Target, st.Cached)
	}

	// Sustained idling floors at one warm shell.
	for i := 0; i < 3*40; i++ {
		w.ObserveLoad("", mem, 0, 500)
	}
	st = w.PoolStatsFor(mem)
	if st.Target != 0 || st.Cached != 1 {
		t.Fatalf("after sustained idle: target/cached = %d/%d, want 0/1 (floor)", st.Target, st.Cached)
	}
}
