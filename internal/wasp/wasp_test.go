package wasp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/hypercall"
)

// doubler is a self-booting virtine: read the argument at 0x0, double it,
// store the result at the return region, exit(0).
const doublerAsm = `
	movi rbx, 0x0
	load rdi, [rbx]
	add rdi, rdi
	movi rbx, 0x4000
	store [rbx], rdi
	movi rdi, 0
	out 0x00, rdi
	hlt
`

func doublerImage() *guest.Image {
	return guest.MustFromAsm("doubler", guest.WrapLongMode(doublerAsm))
}

func le64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func fromLE64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestRunMinimalHalt(t *testing.T) {
	w := New()
	clk := cycles.NewClock()
	res, err := w.Run(guest.MinimalHalt(), RunConfig{}, clk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("run cost nothing")
	}
	// The boot events must be populated (virtine really booted).
	var any bool
	for _, e := range res.BootEvents {
		if e != 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no boot events recorded")
	}
}

func TestArgumentMarshalling(t *testing.T) {
	w := New()
	res, err := w.Run(doublerImage(), RunConfig{
		Args:     le64(21),
		RetBytes: 8,
	}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if got := fromLE64(res.Ret); got != 42 {
		t.Fatalf("doubler(21) = %d, want 42", got)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit code %d", res.ExitCode)
	}
}

func TestDefaultDeny(t *testing.T) {
	// A virtine that tries write() under the default deny-all policy
	// must be terminated (§5.1).
	img := guest.MustFromAsm("writer", guest.WrapLongMode(`
	movi rdi, 1
	movi rsi, 0x8000
	movi rdx, 4
	out 0x01, rdi
	hlt
`))
	w := New()
	_, err := w.Run(img, RunConfig{}, cycles.NewClock())
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("err = %v, want denial", err)
	}
}

func TestExitAlwaysPermitted(t *testing.T) {
	img := guest.MustFromAsm("exiter", guest.WrapLongMode(`
	movi rdi, 7
	out 0x00, rdi
	hlt
`))
	w := New()
	res, err := w.Run(img, RunConfig{}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 7 {
		t.Fatalf("exit code = %d, want 7", res.ExitCode)
	}
}

func TestAllowAllWrite(t *testing.T) {
	img := guest.MustFromAsm("hello", guest.WrapLongMode(`
	movi rdi, 1
	movi rsi, msg
	movi rdx, 5
	out 0x01, rdi
	movi rdi, 0
	out 0x00, rdi
	hlt
msg:
	.db "hello"
`))
	w := New()
	res, err := w.Run(img, RunConfig{Policy: hypercall.AllowAll{}}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Stdout) != "hello" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestMaskPolicy(t *testing.T) {
	img := guest.MustFromAsm("masked", guest.WrapLongMode(`
	movi rdi, 1
	movi rsi, 0x8000
	movi rdx, 1
	out 0x01, rdi    ; write: allowed by mask
	movi rdi, 0
	movi rsi, 0x5000
	out 0x03, rdi    ; open: not in mask -> killed
	hlt
`))
	w := New()
	pol := hypercall.MaskOf(hypercall.NrWrite)
	_, err := w.Run(img, RunConfig{Policy: pol}, cycles.NewClock())
	if err == nil || !strings.Contains(err.Error(), "open") {
		t.Fatalf("err = %v, want open denial", err)
	}
}

func TestPoolingReusesShells(t *testing.T) {
	w := New() // pooling on, sync clean
	img := guest.MinimalHalt()
	clk1 := cycles.NewClock()
	if _, err := w.Run(img, RunConfig{}, clk1); err != nil {
		t.Fatal(err)
	}
	if w.PoolSize(img.MemBytes()) != 1 {
		t.Fatalf("pool size = %d, want 1", w.PoolSize(img.MemBytes()))
	}
	clk2 := cycles.NewClock()
	res2, err := w.Run(img, RunConfig{}, clk2)
	if err != nil {
		t.Fatal(err)
	}
	// The pooled run avoids KVM_CREATE_VM and must be much cheaper.
	if res2.Cycles+cycles.KVMCreateVM/2 > clk1.Now() {
		t.Fatalf("pooled run (%d) not meaningfully cheaper than cold (%d)", res2.Cycles, clk1.Now())
	}
}

func TestAsyncCleanCheaperThanSync(t *testing.T) {
	img := guest.MinimalHalt()
	cost := func(opts ...Option) uint64 {
		w := New(opts...)
		// Warm the pool.
		if _, err := w.Run(img, RunConfig{}, cycles.NewClock()); err != nil {
			t.Fatal(err)
		}
		clk := cycles.NewClock()
		if _, err := w.Run(img, RunConfig{}, clk); err != nil {
			t.Fatal(err)
		}
		return clk.Now()
	}
	sync := cost()
	async := cost(WithAsyncClean(true))
	if async >= sync {
		t.Fatalf("async clean (%d) should be cheaper than sync (%d)", async, sync)
	}
	// The async path must avoid the full zeroing cost.
	if sync-async < cycles.ZeroCost(img.MemBytes())/2 {
		t.Fatalf("async saving too small: sync=%d async=%d", sync, async)
	}
}

func TestShellCleaningPreventsLeaks(t *testing.T) {
	// Virtine A writes a secret into its heap; virtine B (same pool,
	// no snapshot) must observe zeroed memory (§3.3 data secrecy).
	secretWriter := guest.MustFromAsm("secret-writer", guest.WrapLongMode(`
	movi rbx, 0x6000
	movi rax, 0xDEADBEEF
	store [rbx], rax
	hlt
`))
	secretReader := guest.MustFromAsm("secret-reader", guest.WrapLongMode(`
	movi rbx, 0x6000
	load rdi, [rbx]
	movi rbx, 0x4000
	store [rbx], rdi
	hlt
`))
	w := New()
	if _, err := w.Run(secretWriter, RunConfig{}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(secretReader, RunConfig{RetBytes: 8}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if got := fromLE64(res.Ret); got != 0 {
		t.Fatalf("secret leaked across virtines: %#x", got)
	}
}

// snapshotCounter boots, bumps a counter at 0x6000 (pre-snapshot work),
// snapshots, bumps a counter at 0x6008 (post-snapshot work), and reports
// both counters.
const snapshotCounterAsm = `
	movi rbx, 0x6000
	load rax, [rbx]
	inc rax
	store [rbx], rax
	movi rdi, 0
	out 0x08, rdi        ; snapshot()
	movi rbx, 0x6008
	load rax, [rbx]
	inc rax
	store [rbx], rax
	movi rbx, 0x6000
	load rax, [rbx]
	movi rbx, 0x4000
	store [rbx], rax     ; ret[0] = pre-snapshot counter
	movi rbx, 0x6008
	load rax, [rbx]
	movi rbx, 0x4008
	store [rbx], rax     ; ret[8] = post-snapshot counter
	movi rdi, 0
	out 0x00, rdi
	hlt
`

func TestSnapshotResumesAtSnapshotPoint(t *testing.T) {
	img := guest.MustFromAsm("snap-counter", guest.WrapLongMode(snapshotCounterAsm))
	w := New()
	cfg := RunConfig{Snapshot: true, RetBytes: 16}

	res1, err := w.Run(img, cfg, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if res1.SnapshotUsed {
		t.Fatal("first run cannot use a snapshot")
	}
	if pre, post := fromLE64(res1.Ret[:8]), fromLE64(res1.Ret[8:]); pre != 1 || post != 1 {
		t.Fatalf("first run counters = %d/%d, want 1/1", pre, post)
	}
	if !w.HasSnapshot(img.Name) {
		t.Fatal("snapshot not captured")
	}

	res2, err := w.Run(img, cfg, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.SnapshotUsed {
		t.Fatal("second run should restore the snapshot")
	}
	// Pre-snapshot work must NOT re-execute; post-snapshot work must.
	if pre, post := fromLE64(res2.Ret[:8]), fromLE64(res2.Ret[8:]); pre != 1 || post != 1 {
		t.Fatalf("restored counters = %d/%d, want 1/1 (resume at snapshot point)", pre, post)
	}
	// And the snapshot path must skip the boot: cheaper than run 1.
	if res2.Cycles >= res1.Cycles {
		t.Fatalf("snapshot run (%d) not cheaper than cold (%d)", res2.Cycles, res1.Cycles)
	}
}

func TestSnapshotIsolationAcrossRuns(t *testing.T) {
	// State mutated after the snapshot must not persist into the next
	// restored run (each run gets a fresh copy of the reset state).
	img := guest.MustFromAsm("snap-isolation", guest.WrapLongMode(snapshotCounterAsm))
	w := New()
	cfg := RunConfig{Snapshot: true, RetBytes: 16}
	if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := w.Run(img, cfg, cycles.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		if post := fromLE64(res.Ret[8:]); post != 1 {
			t.Fatalf("post-snapshot counter = %d on run %d; state leaked between restored runs", post, i)
		}
	}
}

func TestSnapshotDisabledGlobally(t *testing.T) {
	img := guest.MustFromAsm("snap-off", guest.WrapLongMode(snapshotCounterAsm))
	w := New(WithSnapshotting(false))
	cfg := RunConfig{Snapshot: true, RetBytes: 16}
	if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	if w.HasSnapshot(img.Name) {
		t.Fatal("snapshot captured despite global disable")
	}
}

func TestFaultingGuestReturnsError(t *testing.T) {
	img := guest.MustFromAsm("faulty", guest.WrapLongMode(`
	movi rbx, 0
	movi rax, 1
	div rax, rbx
	hlt
`))
	w := New()
	_, err := w.Run(img, RunConfig{}, cycles.NewClock())
	if err == nil || !strings.Contains(err.Error(), "faulted") {
		t.Fatalf("err = %v, want fault", err)
	}
}

func TestNativeWorkload(t *testing.T) {
	var inits int
	native := func(c any) error {
		n := c.(*NativeCtx)
		if n.Restored() == nil {
			inits++
			n.Charge(100_000) // expensive engine init
			n.TakeSnapshot("engine-ready")
		}
		// Pull input, "process" it, return it reversed.
		buf := uint64(guest.HeapBase)
		got, err := n.Hypercall(hypercall.NrGetData, buf, 64)
		if err != nil {
			return err
		}
		data := append([]byte(nil), n.Mem()[buf:buf+got]...)
		for i, j := 0, len(data)-1; i < j; i, j = i+1, j-1 {
			data[i], data[j] = data[j], data[i]
		}
		copy(n.Mem()[buf:], data)
		n.Charge(uint64(10 * len(data)))
		if _, err := n.Hypercall(hypercall.NrReturnData, buf, got); err != nil {
			return err
		}
		_, err = n.Hypercall(hypercall.NrExit, 0)
		return err
	}
	img := guest.NativeBootStub("reverser", native, 0)
	w := New()
	pol := hypercall.MaskOf(hypercall.NrGetData, hypercall.NrReturnData)

	env := hypercall.NewEnv()
	env.DataIn = []byte("virtine")
	res1, err := w.Run(img, RunConfig{Policy: pol, Env: env, Snapshot: true}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res1.DataOut, []byte("enitriv")) {
		t.Fatalf("out = %q", res1.DataOut)
	}

	env2 := hypercall.NewEnv()
	env2.DataIn = []byte("wasp")
	res2, err := w.Run(img, RunConfig{Policy: pol, Env: env2, Snapshot: true}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res2.DataOut, []byte("psaw")) {
		t.Fatalf("out2 = %q", res2.DataOut)
	}
	if inits != 1 {
		t.Fatalf("engine initialized %d times, want 1 (snapshot reuse)", inits)
	}
	if res2.Cycles >= res1.Cycles {
		t.Fatalf("snapshot native run (%d) not cheaper than cold (%d)", res2.Cycles, res1.Cycles)
	}
}

func TestNativeHypercallDenied(t *testing.T) {
	native := func(c any) error {
		n := c.(*NativeCtx)
		_, err := n.Hypercall(hypercall.NrOpen, 0)
		return err
	}
	img := guest.NativeBootStub("native-denied", native, 0)
	w := New()
	_, err := w.Run(img, RunConfig{}, cycles.NewClock())
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("err = %v, want denial", err)
	}
}

func TestOneShotPolicy(t *testing.T) {
	native := func(c any) error {
		n := c.(*NativeCtx)
		if _, err := n.Hypercall(hypercall.NrGetData, guest.HeapBase, 8); err != nil {
			return err
		}
		// Second get_data must be rejected (§6.5 hardening).
		_, err := n.Hypercall(hypercall.NrGetData, guest.HeapBase, 8)
		return err
	}
	img := guest.NativeBootStub("one-shot", native, 0)
	w := New()
	pol := hypercall.NewOneShot(
		hypercall.MaskOf(hypercall.NrGetData, hypercall.NrReturnData),
		hypercall.NrGetData,
	)
	_, err := w.Run(img, RunConfig{Policy: pol}, cycles.NewClock())
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("err = %v, want one-shot denial", err)
	}
}

func TestMarksRecorded(t *testing.T) {
	img := guest.MustFromAsm("marker", guest.WrapLongMode(`
	movi rdi, 1
	out 0x0B, rdi
	movi rdi, 2
	out 0x0B, rdi
	hlt
`))
	w := New()
	res, err := w.Run(img, RunConfig{}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Marks) != 2 || res.Marks[0].ID != 1 || res.Marks[1].ID != 2 {
		t.Fatalf("marks = %+v", res.Marks)
	}
	if res.Marks[1].Cycle < res.Marks[0].Cycle {
		t.Fatal("marks out of order")
	}
	if res.Marks[0].Cycle == 0 {
		t.Fatal("mark has no timestamp")
	}
}

func TestGuestMemBounds(t *testing.T) {
	gm := guestMem{mem: make([]byte, 100), clk: cycles.NewClock()}
	if _, err := gm.ReadGuest(90, 20); err == nil {
		t.Fatal("OOB read not caught")
	}
	if err := gm.WriteGuest(99, []byte{1, 2}); err == nil {
		t.Fatal("OOB write not caught")
	}
	if _, err := gm.ReadGuest(0, -1); err == nil {
		t.Fatal("negative read not caught")
	}
	if _, err := gm.ReadGuest(0, 100); err != nil {
		t.Fatalf("in-bounds read failed: %v", err)
	}
}

func TestNoPooling(t *testing.T) {
	w := New(WithPooling(false))
	img := guest.MinimalHalt()
	if _, err := w.Run(img, RunConfig{}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	if w.PoolSize(img.MemBytes()) != 0 {
		t.Fatal("pool populated despite pooling disabled")
	}
	// Every run pays full creation.
	clk := cycles.NewClock()
	if _, err := w.Run(img, RunConfig{}, clk); err != nil {
		t.Fatal(err)
	}
	if clk.Now() < cycles.KVMCreateVM {
		t.Fatal("unpooled run did not pay creation cost")
	}
}

func TestRunStatsCounted(t *testing.T) {
	img := guest.MustFromAsm("stats", guest.WrapLongMode(`
	movi rdi, 1
	out 0x0B, rdi
	movi rdi, 0
	out 0x00, rdi
	hlt
`))
	w := New()
	res, err := w.Run(img, RunConfig{}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if res.IOExits != 2 {
		t.Fatalf("IO exits = %d, want 2", res.IOExits)
	}
	if res.Entries < 1 {
		t.Fatal("no entries counted")
	}
}
