package wasp

import (
	"sync"

	"repro/internal/vmm"
)

// Concurrency structure of the runtime (§5.2, Fig 8).
//
// The paper's pooling design exists so that warm starts cost pool
// bookkeeping instead of KVM_CREATE_VM; a single runtime-wide mutex
// would reintroduce exactly the SEUSS/Catalyzer-class warm-start
// contention the pool is meant to avoid once many cores drive Run
// concurrently. The runtime therefore splits its mutable state three
// ways, so Run calls on different images (or different size classes)
// never touch the same lock:
//
//   - shellPools: cached shells, sharded by memory size class with one
//     mutex per shard. The critical section is a slice push/pop;
//     cleaning and KVM work happen outside it. Each size class is
//     bounded by PoolPolicy.MaxPerClass and carries self-sizing state
//     (warm target, idle streak, service-time EWMA) fed by scheduler
//     telemetry through Wasp.ObserveLoad.
//   - snapRegistry: image-name → snapshot map under a sync.RWMutex.
//     Snapshots are written once per image (capture) and read on every
//     warm run, so the read path takes only a shared lock.
//   - cowRegistry: image-bound COW shells (§7.2), sharded by image
//     name with one mutex per shard.

// PoolPolicy bounds and self-sizes the shell pools. The capacity bound
// fixes the seed's unbounded-growth bug (a burst of N concurrent runs
// used to retain N shells per size class forever); the grow/shrink
// knobs implement the ROADMAP's prewarm/sizing item: queue-depth
// telemetry from the scheduler grows a class's warm pool under a burst,
// and sustained idle time shrinks it back.
type PoolPolicy struct {
	// MaxPerClass caps cached shells per memory size class. A release
	// (or background clean) that would exceed it drops the shell for
	// the host kernel to reclaim.
	MaxPerClass int
	// GrowDepth is the queue depth observed at submit that marks a
	// burst: a completed ticket that waited behind at least this many
	// others raises the class's warm target toward the observed depth.
	GrowDepth int
	// GrowBatch caps how many shells one burst observation prewarms,
	// bounding the provisioning work done on a completion path.
	GrowBatch int
	// ShrinkAfter is the number of consecutive uncontended completions
	// (depth 0) after which the warm target decays by one and a surplus
	// cached shell is released to the host. The last warm shell per
	// class is never shrunk away.
	ShrinkAfter int
}

// DefaultPoolPolicy is the policy applied when WithPoolPolicy is not
// given: a generous capacity bound with burst-reactive sizing.
var DefaultPoolPolicy = PoolPolicy{MaxPerClass: 64, GrowDepth: 4, GrowBatch: 4, ShrinkAfter: 64}

func (p PoolPolicy) withDefaults() PoolPolicy {
	d := DefaultPoolPolicy
	if p.MaxPerClass <= 0 {
		p.MaxPerClass = d.MaxPerClass
	}
	if p.GrowDepth <= 0 {
		p.GrowDepth = d.GrowDepth
	}
	if p.GrowBatch <= 0 {
		p.GrowBatch = d.GrowBatch
	}
	if p.ShrinkAfter <= 0 {
		p.ShrinkAfter = d.ShrinkAfter
	}
	return p
}

// PoolStats is a snapshot of one size class's pool state.
type PoolStats struct {
	// Cached is the number of warm shells currently parked.
	Cached int
	// Target is the warm floor the sizing policy currently wants.
	Target int
	// SvcEWMA is the smoothed service time (cycles) of runs in this
	// class, from scheduler telemetry.
	SvcEWMA uint64
}

// poolShardCount is the number of independently locked shell-pool
// shards. A power of two so the hash reduces with a shift.
const poolShardCount = 16

// shellPools is the sharded shell cache. Each memory size class maps to
// one shard; distinct size classes on different shards proceed fully in
// parallel, and even classes that collide only contend on a push/pop.
type shellPools struct {
	policy PoolPolicy
	shards [poolShardCount]poolShard
}

type poolShard struct {
	mu    sync.Mutex
	bySize map[int][]*shell
	sizing map[int]*classSizing
}

// classSizing is the per-size-class self-sizing state ObserveLoad feeds.
type classSizing struct {
	target  int    // warm-shell floor the policy currently wants
	idle    int    // consecutive uncontended completions
	svcEWMA uint64 // smoothed service time of this class's runs
}

// shardFor hashes a memory size class onto a shard. Sizes are
// page-granular in practice, so the page number is Fibonacci-hashed to
// spread consecutive classes across shards.
func (p *shellPools) shardFor(memBytes int) *poolShard {
	h := uint64(memBytes>>12) * 0x9E3779B97F4A7C15
	return &p.shards[h>>(64-4)] // top 4 bits: poolShardCount == 16
}

// take pops a cached shell for the size class, or nil.
func (p *shellPools) take(memBytes int) *shell {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pool := sh.bySize[memBytes]
	n := len(pool)
	if n == 0 {
		return nil
	}
	s := pool[n-1]
	pool[n-1] = nil
	sh.bySize[memBytes] = pool[:n-1]
	return s
}

// put parks a shell for its size class, unless the class is at its
// capacity bound. It reports whether the shell was parked; a false
// return means the caller should let the host reclaim it.
func (p *shellPools) put(memBytes int, s *shell) bool {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.bySize[memBytes]) >= p.policy.MaxPerClass {
		return false
	}
	if sh.bySize == nil {
		sh.bySize = make(map[int][]*shell)
	}
	sh.bySize[memBytes] = append(sh.bySize[memBytes], s)
	return true
}

// observe folds one completed run's scheduler telemetry into the size
// class's sizing state. Under a burst it returns the cached count the
// caller should prewarm the class up to (0 means no growth); under a
// sustained idle streak it releases one surplus shell right here, under
// the shard lock, so a concurrent acquire can never race the class
// below its one-warm-shell floor.
func (p *shellPools) observe(memBytes, depth int, svc uint64) (wantCached int) {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sizing == nil {
		sh.sizing = make(map[int]*classSizing)
	}
	st := sh.sizing[memBytes]
	if st == nil {
		st = &classSizing{}
		sh.sizing[memBytes] = st
	}
	if st.svcEWMA == 0 {
		st.svcEWMA = svc
	} else {
		st.svcEWMA = (7*st.svcEWMA + svc) / 8
	}
	cached := len(sh.bySize[memBytes])
	switch {
	case depth >= p.policy.GrowDepth:
		st.idle = 0
		want := depth
		if want > p.policy.MaxPerClass {
			want = p.policy.MaxPerClass
		}
		if want > st.target {
			st.target = want
		}
		if st.target > cached {
			wantCached = cached + p.policy.GrowBatch
			if wantCached > st.target {
				wantCached = st.target
			}
		}
	case depth == 0:
		st.idle++
		if st.idle >= p.policy.ShrinkAfter {
			st.idle = 0
			if st.target > 0 {
				st.target--
			}
			floor := st.target
			if floor < 1 {
				floor = 1 // keep the last warm shell
			}
			if cached > floor {
				// Drop one surplus shell; the host reclaims it.
				pool := sh.bySize[memBytes]
				pool[cached-1] = nil
				sh.bySize[memBytes] = pool[:cached-1]
			}
		}
	default:
		st.idle = 0
	}
	return wantCached
}

// stats snapshots one size class's pool state.
func (p *shellPools) stats(memBytes int) PoolStats {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := PoolStats{Cached: len(sh.bySize[memBytes])}
	if st := sh.sizing[memBytes]; st != nil {
		out.Target = st.target
		out.SvcEWMA = st.svcEWMA
	}
	return out
}

// size reports the number of cached shells for one size class.
func (p *shellPools) size(memBytes int) int {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.bySize[memBytes])
}

// total reports the number of cached shells across all size classes.
func (p *shellPools) total() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, pool := range sh.bySize {
			n += len(pool)
		}
		sh.mu.Unlock()
	}
	return n
}

// snapRegistry holds per-image snapshots. Reads (every warm Run) take
// the shared lock; writes happen once per image at capture time.
type snapRegistry struct {
	mu   sync.RWMutex
	byImg map[string]*snapshot
}

func (r *snapRegistry) get(name string) *snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byImg[name]
}

func (r *snapRegistry) has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.byImg[name]
	return ok
}

func (r *snapRegistry) put(name string, s *snapshot) {
	r.mu.Lock()
	if r.byImg == nil {
		r.byImg = make(map[string]*snapshot)
	}
	r.byImg[name] = s
	r.mu.Unlock()
}

func (r *snapRegistry) drop(name string) {
	r.mu.Lock()
	delete(r.byImg, name)
	r.mu.Unlock()
}

// cowShardCount shards the image-bound COW shells by image name.
const cowShardCount = 8

type cowRegistry struct {
	shards [cowShardCount]cowShard
}

type cowShard struct {
	mu    sync.Mutex
	byImg map[string]*vmm.Context
}

func (r *cowRegistry) shardFor(name string) *cowShard {
	// FNV-1a over the image name.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return &r.shards[h>>(64-3)] // top 3 bits: cowShardCount == 8
}

// take claims the image-bound context, if one is parked.
func (r *cowRegistry) take(name string) *vmm.Context {
	sh := r.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ctx := sh.byImg[name]
	if ctx != nil {
		delete(sh.byImg, name)
	}
	return ctx
}

// park binds a context to its image for the next COW reset. It reports
// whether the context was parked; false means a shell is already bound
// to the image and the caller should recycle ctx through the pool.
func (r *cowRegistry) park(name string, ctx *vmm.Context) bool {
	sh := r.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.byImg[name]; dup {
		return false
	}
	if sh.byImg == nil {
		sh.byImg = make(map[string]*vmm.Context)
	}
	sh.byImg[name] = ctx
	return true
}
