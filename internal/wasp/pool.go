package wasp

import (
	"sync"

	"repro/internal/stats"
	"repro/internal/vmm"
)

// Concurrency structure of the runtime (§5.2, Fig 8).
//
// The paper's pooling design exists so that warm starts cost pool
// bookkeeping instead of KVM_CREATE_VM; a single runtime-wide mutex
// would reintroduce exactly the SEUSS/Catalyzer-class warm-start
// contention the pool is meant to avoid once many cores drive Run
// concurrently. The runtime therefore splits its mutable state three
// ways, so Run calls on different images (or different size classes)
// never touch the same lock:
//
//   - shellPools: cached shells, sharded by memory size class with one
//     mutex per shard. The critical section is a slice push/pop;
//     cleaning and KVM work happen outside it. Each size class is
//     bounded by PoolPolicy.MaxPerClass and carries self-sizing state
//     (warm target, idle streak, service-time EWMA) fed by scheduler
//     telemetry through Wasp.ObserveLoad.
//   - snapRegistry: image-name → snapshot map under a sync.RWMutex.
//     Snapshots are written once per image (capture) and read on every
//     warm run, so the read path takes only a shared lock.
//   - cowRegistry: image-bound COW shells (§7.2), sharded by image
//     name with one mutex per shard.

// PoolPolicy bounds and self-sizes the shell pools. The capacity bound
// fixes the seed's unbounded-growth bug (a burst of N concurrent runs
// used to retain N shells per size class forever); the grow/shrink
// knobs implement the ROADMAP's prewarm/sizing item: queue-depth
// telemetry from the scheduler grows a class's warm pool under a burst,
// and sustained idle time shrinks it back.
type PoolPolicy struct {
	// MaxPerClass caps cached shells per memory size class. A release
	// (or background clean) that would exceed it drops the shell for
	// the host kernel to reclaim.
	MaxPerClass int
	// GrowDepth is the queue depth observed at submit that marks a
	// burst: a completed ticket that waited behind at least this many
	// others raises the class's warm target toward the observed depth.
	GrowDepth int
	// GrowBatch caps how many shells one burst observation prewarms,
	// bounding the provisioning work done on a completion path.
	GrowBatch int
	// ShrinkAfter is the number of consecutive uncontended completions
	// (depth 0) after which the warm target decays by one and a surplus
	// cached shell is released to the host. The last warm shell per
	// class is never shrunk away.
	ShrinkAfter int
}

// DefaultPoolPolicy is the policy applied when WithPoolPolicy is not
// given: a generous capacity bound with burst-reactive sizing.
var DefaultPoolPolicy = PoolPolicy{MaxPerClass: 64, GrowDepth: 4, GrowBatch: 4, ShrinkAfter: 64}

func (p PoolPolicy) withDefaults() PoolPolicy {
	d := DefaultPoolPolicy
	if p.MaxPerClass <= 0 {
		p.MaxPerClass = d.MaxPerClass
	}
	if p.GrowDepth <= 0 {
		p.GrowDepth = d.GrowDepth
	}
	if p.GrowBatch <= 0 {
		p.GrowBatch = d.GrowBatch
	}
	if p.ShrinkAfter <= 0 {
		p.ShrinkAfter = d.ShrinkAfter
	}
	return p
}

// PoolStats is a snapshot of one size class's pool state.
type PoolStats struct {
	// Cached is the number of warm shells currently parked.
	Cached int
	// Target is the warm floor the sizing policy currently wants.
	Target int
	// SvcEWMA is the smoothed service time (cycles) of runs in this
	// class, from scheduler telemetry.
	SvcEWMA uint64
}

// poolShardCount is the number of independently locked shell-pool
// shards. A power of two so the hash reduces with a shift.
const poolShardCount = 16

// shellPools is the sharded shell cache. Each memory size class maps to
// one shard; distinct size classes on different shards proceed fully in
// parallel, and even classes that collide only contend on a push/pop.
type shellPools struct {
	policy PoolPolicy
	shards [poolShardCount]poolShard
}

type poolShard struct {
	mu     sync.Mutex
	bySize map[int][]*shell
	sizing map[int]*classSizing
}

// classSizing is the per-size-class self-sizing state ObserveLoad
// feeds. Sizing is per image within the class: each image that runs in
// the class carries its own warm-target claim, raised by its own bursts
// and decayed by its own idle streaks, so one image going quiet shrinks
// only its share of the warm set and a multi-tenant class keeps shells
// for every active tenant. The class's effective warm target is the sum
// of the per-image claims, clamped to the class capacity.
type classSizing struct {
	svcEWMA uint64 // smoothed service time across all of the class's runs
	tick    uint64 // observation counter, the staleness timebase
	byImage map[string]*imageSizing
}

// imageSizing is one image's claim on its size class's warm pool.
type imageSizing struct {
	target   int    // warm shells this image's bursts currently justify
	idle     int    // consecutive uncontended completions
	svcEWMA  uint64 // smoothed service time of this image's runs
	lastSeen uint64 // class tick of this image's latest observation
}

// staleFactor scales ShrinkAfter into the vanished-tenant threshold: an
// image unobserved for staleFactor×ShrinkAfter class completions starts
// losing its warm claim to the reaper in observe. Much larger than the
// self-idle threshold, so an active-but-uncontended tenant always decays
// through its own idle streak first.
const staleFactor = 8

// classTarget sums the per-image warm targets, clamped to the class
// capacity. Called with the shard lock held.
func (st *classSizing) classTarget(max int) int {
	n := 0
	for _, ist := range st.byImage {
		n += ist.target
	}
	if n > max {
		n = max
	}
	return n
}

func (st *classSizing) image(name string) *imageSizing {
	ist := st.byImage[name]
	if ist == nil {
		ist = &imageSizing{}
		if st.byImage == nil {
			st.byImage = make(map[string]*imageSizing)
		}
		st.byImage[name] = ist
	}
	return ist
}

// shardFor hashes a memory size class onto a shard. Sizes are
// page-granular in practice, so the page number is Fibonacci-hashed to
// spread consecutive classes across shards.
func (p *shellPools) shardFor(memBytes int) *poolShard {
	h := uint64(memBytes>>12) * 0x9E3779B97F4A7C15
	return &p.shards[h>>(64-4)] // top 4 bits: poolShardCount == 16
}

// take pops a cached shell for the size class, or nil.
func (p *shellPools) take(memBytes int) *shell {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pool := sh.bySize[memBytes]
	n := len(pool)
	if n == 0 {
		return nil
	}
	s := pool[n-1]
	pool[n-1] = nil
	sh.bySize[memBytes] = pool[:n-1]
	return s
}

// put parks a shell for its size class, unless the class is at its
// capacity bound. It reports whether the shell was parked; a false
// return means the caller should let the host reclaim it.
func (p *shellPools) put(memBytes int, s *shell) bool {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.bySize[memBytes]) >= p.policy.MaxPerClass {
		return false
	}
	if sh.bySize == nil {
		sh.bySize = make(map[int][]*shell)
	}
	sh.bySize[memBytes] = append(sh.bySize[memBytes], s)
	return true
}

// observe folds one completed run's scheduler telemetry into the size
// class's per-image sizing state. Under a burst it returns the cached
// count the caller should prewarm the class up to (0 means no growth);
// under a sustained idle streak of the observed image it decays that
// image's claim and releases one surplus shell right here, under the
// shard lock, so a concurrent acquire can never race the class below
// its one-warm-shell floor.
func (p *shellPools) observe(image string, memBytes, depth int, svc uint64) (wantCached int) {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sizing == nil {
		sh.sizing = make(map[int]*classSizing)
	}
	st := sh.sizing[memBytes]
	if st == nil {
		st = &classSizing{}
		sh.sizing[memBytes] = st
	}
	st.svcEWMA = stats.EWMA(st.svcEWMA, svc)
	st.tick++
	ist := st.image(image)
	ist.lastSeen = st.tick
	ist.svcEWMA = stats.EWMA(ist.svcEWMA, svc)
	cached := len(sh.bySize[memBytes])
	switch {
	case depth >= p.policy.GrowDepth:
		ist.idle = 0
		want := depth
		if want > p.policy.MaxPerClass {
			want = p.policy.MaxPerClass
		}
		if want > ist.target {
			ist.target = want
		}
		if target := st.classTarget(p.policy.MaxPerClass); target > cached {
			wantCached = cached + p.policy.GrowBatch
			if wantCached > target {
				wantCached = target
			}
		}
	case depth == 0:
		ist.idle++
		if ist.idle >= p.policy.ShrinkAfter {
			ist.idle = 0
			if ist.target > 0 {
				ist.target--
			}
			floor := st.classTarget(p.policy.MaxPerClass)
			if floor < 1 {
				floor = 1 // keep the last warm shell
			}
			if cached > floor {
				// Drop one surplus shell; the host reclaims it.
				pool := sh.bySize[memBytes]
				pool[cached-1] = nil
				sh.bySize[memBytes] = pool[:cached-1]
			}
		}
	default:
		ist.idle = 0
	}
	// Reap vanished tenants: an image that stopped submitting entirely
	// never observes its own idle streak, so without this its warm claim
	// (and the shells behind it) would stay pinned forever. Once an
	// image has been unobserved for staleFactor×ShrinkAfter class
	// completions, its claim drains one unit per observation until it is
	// gone, releasing surplus shells to the host along the way.
	if p.policy.ShrinkAfter > 0 {
		staleAfter := uint64(staleFactor * p.policy.ShrinkAfter)
		// At most one stale decay per observation; the victim is chosen
		// deterministically (stalest first, name tiebreak), never by map
		// iteration order — pool state must stay reproducible or
		// virtual-mode runs would diverge on warm-shell hits.
		var victim *imageSizing
		var victimName string
		for name, other := range st.byImage {
			if other == ist || st.tick-other.lastSeen < staleAfter {
				continue
			}
			if victim == nil || other.lastSeen < victim.lastSeen ||
				(other.lastSeen == victim.lastSeen && name < victimName) {
				victim, victimName = other, name
			}
		}
		if victim != nil {
			if victim.target > 0 {
				victim.target--
			}
			if victim.target == 0 {
				delete(st.byImage, victimName)
			}
			cached = len(sh.bySize[memBytes])
			floor := st.classTarget(p.policy.MaxPerClass)
			if floor < 1 {
				floor = 1
			}
			if cached > floor {
				pool := sh.bySize[memBytes]
				pool[cached-1] = nil
				sh.bySize[memBytes] = pool[:cached-1]
			}
		}
	}
	return wantCached
}

// stats snapshots one size class's pool state.
func (p *shellPools) stats(memBytes int) PoolStats {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := PoolStats{Cached: len(sh.bySize[memBytes])}
	if st := sh.sizing[memBytes]; st != nil {
		out.Target = st.classTarget(p.policy.MaxPerClass)
		out.SvcEWMA = st.svcEWMA
	}
	return out
}

// imageStats snapshots one image's sizing state within a size class:
// Target and SvcEWMA are the image's own claim and smoothed service
// time, Cached the class's shared warm count.
func (p *shellPools) imageStats(memBytes int, image string) PoolStats {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := PoolStats{Cached: len(sh.bySize[memBytes])}
	if st := sh.sizing[memBytes]; st != nil {
		if ist := st.byImage[image]; ist != nil {
			out.Target = ist.target
			out.SvcEWMA = ist.svcEWMA
		}
	}
	return out
}

// size reports the number of cached shells for one size class.
func (p *shellPools) size(memBytes int) int {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.bySize[memBytes])
}

// total reports the number of cached shells across all size classes.
func (p *shellPools) total() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, pool := range sh.bySize {
			n += len(pool)
		}
		sh.mu.Unlock()
	}
	return n
}

// snapRegistry holds per-image snapshots. Reads (every warm Run) take
// the shared lock; writes happen once per image at capture time. The
// registry owns one reference on each forest-backed snapshot's layer:
// get hands the caller a transient reference of its own (callers must
// release), and put/drop release the reference of the snapshot they
// replace or remove — so a re-capture racing an in-flight restore can
// never free store pages the restore is still copying from.
type snapRegistry struct {
	mu    sync.RWMutex
	byImg map[string]*snapshot
}

// get returns the named snapshot with its layer retained on the
// caller's behalf; callers must call release when done with it.
func (r *snapRegistry) get(name string) *snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.byImg[name]
	s.retain()
	return s
}

func (r *snapRegistry) has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.byImg[name]
	return ok
}

// put installs a snapshot, taking ownership of the caller's layer
// reference, and releases the snapshot it replaces, if any.
func (r *snapRegistry) put(name string, s *snapshot) {
	r.mu.Lock()
	if r.byImg == nil {
		r.byImg = make(map[string]*snapshot)
	}
	old := r.byImg[name]
	r.byImg[name] = s
	r.mu.Unlock()
	old.release()
}

func (r *snapRegistry) drop(name string) {
	r.mu.Lock()
	old := r.byImg[name]
	delete(r.byImg, name)
	r.mu.Unlock()
	old.release()
}

// forEach visits every snapshot under the read lock (stats only — the
// callback must not retain or mutate).
func (r *snapRegistry) forEach(fn func(name string, s *snapshot)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, s := range r.byImg {
		fn(name, s)
	}
}

// cowShardCount shards the image-bound COW shells by image name.
const cowShardCount = 8

type cowRegistry struct {
	shards [cowShardCount]cowShard
}

type cowShard struct {
	mu    sync.Mutex
	byImg map[string]*vmm.Context
}

func (r *cowRegistry) shardFor(name string) *cowShard {
	// FNV-1a over the image name.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return &r.shards[h>>(64-3)] // top 3 bits: cowShardCount == 8
}

// take claims the image-bound context, if one is parked.
func (r *cowRegistry) take(name string) *vmm.Context {
	sh := r.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ctx := sh.byImg[name]
	if ctx != nil {
		delete(sh.byImg, name)
	}
	return ctx
}

// park binds a context to its image for the next COW reset. It reports
// whether the context was parked; false means a shell is already bound
// to the image and the caller should recycle ctx through the pool.
func (r *cowRegistry) park(name string, ctx *vmm.Context) bool {
	sh := r.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.byImg[name]; dup {
		return false
	}
	if sh.byImg == nil {
		sh.byImg = make(map[string]*vmm.Context)
	}
	sh.byImg[name] = ctx
	return true
}
