package wasp

import (
	"sync"

	"repro/internal/vmm"
)

// Concurrency structure of the runtime (§5.2, Fig 8).
//
// The paper's pooling design exists so that warm starts cost pool
// bookkeeping instead of KVM_CREATE_VM; a single runtime-wide mutex
// would reintroduce exactly the SEUSS/Catalyzer-class warm-start
// contention the pool is meant to avoid once many cores drive Run
// concurrently. The runtime therefore splits its mutable state three
// ways, so Run calls on different images (or different size classes)
// never touch the same lock:
//
//   - shellPools: cached shells, sharded by memory size class with one
//     mutex per shard. The critical section is a slice push/pop;
//     cleaning and KVM work happen outside it.
//   - snapRegistry: image-name → snapshot map under a sync.RWMutex.
//     Snapshots are written once per image (capture) and read on every
//     warm run, so the read path takes only a shared lock.
//   - cowRegistry: image-bound COW shells (§7.2), sharded by image
//     name with one mutex per shard.

// poolShardCount is the number of independently locked shell-pool
// shards. A power of two so the hash reduces with a shift.
const poolShardCount = 16

// shellPools is the sharded shell cache. Each memory size class maps to
// one shard; distinct size classes on different shards proceed fully in
// parallel, and even classes that collide only contend on a push/pop.
type shellPools struct {
	shards [poolShardCount]poolShard
}

type poolShard struct {
	mu    sync.Mutex
	bySize map[int][]*shell
}

// shardFor hashes a memory size class onto a shard. Sizes are
// page-granular in practice, so the page number is Fibonacci-hashed to
// spread consecutive classes across shards.
func (p *shellPools) shardFor(memBytes int) *poolShard {
	h := uint64(memBytes>>12) * 0x9E3779B97F4A7C15
	return &p.shards[h>>(64-4)] // top 4 bits: poolShardCount == 16
}

// take pops a cached shell for the size class, or nil.
func (p *shellPools) take(memBytes int) *shell {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pool := sh.bySize[memBytes]
	n := len(pool)
	if n == 0 {
		return nil
	}
	s := pool[n-1]
	pool[n-1] = nil
	sh.bySize[memBytes] = pool[:n-1]
	return s
}

// put parks a shell for its size class.
func (p *shellPools) put(memBytes int, s *shell) {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	if sh.bySize == nil {
		sh.bySize = make(map[int][]*shell)
	}
	sh.bySize[memBytes] = append(sh.bySize[memBytes], s)
	sh.mu.Unlock()
}

// size reports the number of cached shells for one size class.
func (p *shellPools) size(memBytes int) int {
	sh := p.shardFor(memBytes)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.bySize[memBytes])
}

// total reports the number of cached shells across all size classes.
func (p *shellPools) total() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, pool := range sh.bySize {
			n += len(pool)
		}
		sh.mu.Unlock()
	}
	return n
}

// snapRegistry holds per-image snapshots. Reads (every warm Run) take
// the shared lock; writes happen once per image at capture time.
type snapRegistry struct {
	mu   sync.RWMutex
	byImg map[string]*snapshot
}

func (r *snapRegistry) get(name string) *snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byImg[name]
}

func (r *snapRegistry) has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.byImg[name]
	return ok
}

func (r *snapRegistry) put(name string, s *snapshot) {
	r.mu.Lock()
	if r.byImg == nil {
		r.byImg = make(map[string]*snapshot)
	}
	r.byImg[name] = s
	r.mu.Unlock()
}

func (r *snapRegistry) drop(name string) {
	r.mu.Lock()
	delete(r.byImg, name)
	r.mu.Unlock()
}

// cowShardCount shards the image-bound COW shells by image name.
const cowShardCount = 8

type cowRegistry struct {
	shards [cowShardCount]cowShard
}

type cowShard struct {
	mu    sync.Mutex
	byImg map[string]*vmm.Context
}

func (r *cowRegistry) shardFor(name string) *cowShard {
	// FNV-1a over the image name.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return &r.shards[h>>(64-3)] // top 3 bits: cowShardCount == 8
}

// take claims the image-bound context, if one is parked.
func (r *cowRegistry) take(name string) *vmm.Context {
	sh := r.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ctx := sh.byImg[name]
	if ctx != nil {
		delete(sh.byImg, name)
	}
	return ctx
}

// park binds a context to its image for the next COW reset. It reports
// whether the context was parked; false means a shell is already bound
// to the image and the caller should recycle ctx through the pool.
func (r *cowRegistry) park(name string, ctx *vmm.Context) bool {
	sh := r.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.byImg[name]; dup {
		return false
	}
	if sh.byImg == nil {
		sh.byImg = make(map[string]*vmm.Context)
	}
	sh.byImg[name] = ctx
	return true
}
