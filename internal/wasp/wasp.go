// Package wasp implements the Wasp embeddable micro-hypervisor runtime
// (§5): a userspace library that virtine clients link against to run
// individual functions in isolated virtual contexts.
//
// Wasp provides the mechanisms — context provisioning, image loading,
// snapshotting, hypercall interposition — while the virtine client
// supplies policy: which hypercalls are permitted and how they are
// serviced. The default is deny-all (§5.1).
//
// Two optimizations from §5.2 are implemented for real:
//
//   - Pooling/caching: returned contexts are cleaned (zeroed, preventing
//     information leakage) and cached as "shells"; acquiring a cached
//     shell costs pool bookkeeping instead of KVM_CREATE_VM. Cleaning is
//     charged on the critical path (Wasp+C) or handed to a real
//     background cleaner (Wasp+CA): release parks the dirty shell on
//     the Cleaner's queue and the zeroing happens on a background
//     goroutine, an idle scheduler worker, or a dedicated virtual
//     cleaner core — never on the caller's path (see cleaner.go).
//     Pools are bounded and self-sizing per size class: PoolPolicy caps
//     each class, and scheduler queue-depth/service-time telemetry
//     (ObserveLoad) prewarms shells under bursts and shrinks the warm
//     set when a class goes idle (see pool.go).
//   - Snapshotting: a virtine may capture its state after initialization;
//     subsequent executions of the same image restore the snapshot (one
//     memcpy) and resume at the snapshot point, skipping boot and runtime
//     init (Fig 7).
package wasp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/vmm"
)

// Wasp is the hypervisor runtime. It is safe for concurrent use; each
// Run advances its own caller-supplied clock, so concurrent runs model
// independent cores. Mutable state is split into independently locked
// pieces (see pool.go) so concurrent Runs on different images or size
// classes never contend on a single runtime-wide lock.
type Wasp struct {
	pools     shellPools
	snapshots snapRegistry
	cowShells cowRegistry
	codes     codeRegistry
	cleaner   *Cleaner // non-nil iff pooling && asyncClean

	pooling      bool
	asyncClean   bool
	snapEnable   bool
	cow          bool
	legacyInterp bool
	platform     vmm.Platform

	poolDrops atomic.Uint64 // sync-clean shells dropped at the capacity bound
}

type shell struct {
	ctx   *vmm.Context
	dirty bool
}

type snapshot struct {
	mem      []byte // guest-memory capture at the snapshot point
	captured int    // bytes actually captured (restore cost basis)
	state    cpu.State
	native   any // opaque workload state for native images (§6.5 engine reuse)
	booted   bool
}

// Option configures a Wasp instance.
type Option func(*Wasp)

// WithPooling enables or disables the cached shell pool (§5.2). Enabled
// in the default configuration.
func WithPooling(on bool) Option { return func(w *Wasp) { w.pooling = on } }

// WithAsyncClean moves shell cleaning off the critical path onto the
// background Cleaner (the Wasp+CA configuration of Fig 8): release
// performs no zeroing at all, and dirty shells are scrubbed by the
// cleaner's drain goroutine, idle scheduler workers, or the virtual
// cleaner core.
func WithAsyncClean(on bool) Option { return func(w *Wasp) { w.asyncClean = on } }

// WithPoolPolicy bounds and self-sizes the shell pools; zero fields
// take DefaultPoolPolicy values. Without this option the default policy
// applies — pools are always capacity-bounded.
func WithPoolPolicy(p PoolPolicy) Option { return func(w *Wasp) { w.pools.policy = p } }

// WithSnapshotting enables the snapshot/restore fast path (§5.2). Images
// still opt in per run via RunConfig.Snapshot.
func WithSnapshotting(on bool) Option { return func(w *Wasp) { w.snapEnable = on } }

// WithPlatform selects the hypervisor backend (Fig 5): vmm.KVM{} on
// Linux, vmm.HyperV{} on Windows. Default is KVM.
func WithPlatform(p vmm.Platform) Option { return func(w *Wasp) { w.platform = p } }

// WithLegacyInterp selects the original decode-every-instruction guest
// interpreter instead of the predecoded block-execution engine, and
// disables the per-image decoded-code registry. Virtual-cycle results are
// bit-identical either way (the differential determinism tests enforce
// it); only host wall-clock differs.
func WithLegacyInterp(on bool) Option { return func(w *Wasp) { w.legacyInterp = on } }

// WithCOW enables copy-on-write snapshot resets (§7.2's anticipated
// optimization, as in SEUSS): a context stays bound to its image between
// runs, and each restore copies back only the pages dirtied since the
// snapshot point instead of the whole image. Applies to interpreted
// guests; native workloads fall back to full restores.
func WithCOW(on bool) Option { return func(w *Wasp) { w.cow = on } }

// New returns a Wasp runtime with pooling and snapshotting enabled and
// synchronous cleaning — the paper's default configuration.
func New(opts ...Option) *Wasp {
	w := &Wasp{
		pooling:    true,
		snapEnable: true,
		platform:   vmm.KVM{},
	}
	for _, o := range opts {
		o(w)
	}
	w.pools.policy = w.pools.policy.withDefaults()
	if w.pooling && w.asyncClean {
		w.cleaner = newCleaner(w)
	}
	return w
}

// acquire provisions a virtual context of the given memory size: a cached
// shell when the pool has one (Fig 6 path D), a cold KVM context
// otherwise (path C). Cleaning of a dirty shell is charged here, on the
// critical path, unless async cleaning is on — pooled shells are always
// already clean under Wasp+CA, and a pool miss with cleaning still in
// flight is bridged by the cleaner (reclaim) instead of a cold create.
func (w *Wasp) acquire(memBytes int, clk *cycles.Clock) *vmm.Context {
	if w.pooling {
		s := w.pools.take(memBytes)
		if s == nil && w.cleaner != nil {
			s = w.cleaner.reclaim(memBytes)
		}
		if s != nil {
			clk.Advance(cycles.PoolAcquire)
			s.ctx.Clock = clk
			s.ctx.CPU.Clock = clk
			if s.dirty {
				s.ctx.Clean()
				s.dirty = false
			}
			return s.ctx
		}
	}
	return vmm.CreateOn(w.platform, memBytes, clk)
}

// release returns a context to the pool. Under async cleaning (Wasp+CA)
// no zeroing happens here: the dirty shell goes to the Cleaner's queue
// and is scrubbed off the release path. Otherwise (Wasp+C) the shell is
// parked dirty and pays for cleaning when next acquired. Either way the
// size class's capacity bound holds; surplus shells are dropped for the
// host to reclaim.
func (w *Wasp) release(ctx *vmm.Context) {
	if !w.pooling {
		return // dropped; host kernel reclaims it
	}
	s := &shell{ctx: ctx, dirty: true}
	if w.cleaner != nil {
		w.cleaner.enqueue(len(ctx.Mem), s)
		return
	}
	if !w.pools.put(len(ctx.Mem), s) {
		w.poolDrops.Add(1)
	}
}

// takeCOWShell claims the image-bound context, if one is parked.
func (w *Wasp) takeCOWShell(name string) *vmm.Context {
	return w.cowShells.take(name)
}

// parkCOWShell binds a context to its image for the next COW reset. If a
// shell is already parked for the image, the context is recycled through
// the ordinary pool instead.
func (w *Wasp) parkCOWShell(name string, ctx *vmm.Context) {
	if !w.cowShells.park(name, ctx) {
		w.release(ctx)
	}
}

// PoolSize reports the number of cached shells for a memory size.
func (w *Wasp) PoolSize(memBytes int) int {
	return w.pools.size(memBytes)
}

// PoolTotal reports the number of cached shells across all size classes.
func (w *Wasp) PoolTotal() int {
	return w.pools.total()
}

// PoolStatsFor snapshots one size class's pool state (cached count,
// summed per-image warm target, smoothed service time).
func (w *Wasp) PoolStatsFor(memBytes int) PoolStats {
	return w.pools.stats(memBytes)
}

// PoolImageStats snapshots one image's sizing state within a size
// class: Target and SvcEWMA are the image's own warm-target claim and
// smoothed service time; Cached is the class's shared warm count.
func (w *Wasp) PoolImageStats(memBytes int, image string) PoolStats {
	return w.pools.imageStats(memBytes, image)
}

// PoolDropped reports shells dropped at the capacity bound on the
// synchronous release path. Async-clean drops are reported by
// Cleaner.Dropped.
func (w *Wasp) PoolDropped() uint64 { return w.poolDrops.Load() }

// Cleaner exposes the background cleaner, or nil when cleaning is
// synchronous (Wasp+C) or pooling is off.
func (w *Wasp) Cleaner() *Cleaner { return w.cleaner }

// AsyncClean reports whether the runtime cleans shells asynchronously.
func (w *Wasp) AsyncClean() bool { return w.cleaner != nil }

// Prewarm tops a size class up to n cached clean shells (clamped to
// the class's capacity) ahead of demand; classes already at or above n
// are left alone. Creation cost lands on a private clock: prewarming is
// provisioning work off any measured request path. It reports how many
// shells were added.
func (w *Wasp) Prewarm(memBytes, n int) int {
	if !w.pooling {
		return 0
	}
	if max := w.pools.policy.MaxPerClass; n > max {
		n = max
	}
	added := 0
	for w.pools.size(memBytes) < n {
		ctx := vmm.CreateOn(w.platform, memBytes, cycles.NewClock())
		if !w.pools.put(memBytes, &shell{ctx: ctx}) {
			break
		}
		added++
	}
	return added
}

// ObserveLoad feeds scheduler telemetry for one completed run into the
// pool-sizing policy, attributed to the image that ran: a deep queue at
// submit raises the image's warm-target claim on its size class and
// prewarms shells; a sustained idle streak of that image decays only
// its own claim and releases a surplus cached shell to the host
// (handled inside observe, under the shard lock), so a multi-tenant
// class keeps warm shells for tenants that are still active. The
// unified scheduler calls this once per completed image ticket.
func (w *Wasp) ObserveLoad(image string, memBytes, depth int, svcCycles uint64) {
	if !w.pooling {
		return
	}
	if wantCached := w.pools.observe(image, memBytes, depth, svcCycles); wantCached > 0 {
		w.Prewarm(memBytes, wantCached)
	}
}

// HasSnapshot reports whether an image has a stored snapshot.
func (w *Wasp) HasSnapshot(name string) bool {
	return w.snapshots.has(name)
}

// DropSnapshot removes a stored snapshot (tests and ablations).
func (w *Wasp) DropSnapshot(name string) {
	w.snapshots.drop(name)
}

func (w *Wasp) getSnapshot(name string) *snapshot {
	return w.snapshots.get(name)
}

func (w *Wasp) putSnapshot(name string, s *snapshot) {
	w.snapshots.put(name, s)
}

// guestMem is the bounds-checked GuestMem window handlers receive. Bulk
// copies are charged to the run's clock at memcpy bandwidth: handler data
// movement is critical-path host work (§6.3's doubly-expensive exits are
// the entry/exit cost; this is the payload cost).
type guestMem struct {
	mem  []byte
	clk  *cycles.Clock
	mark func(addr uint64, n int) // dirty-page tracking hook (may be nil)

	// scratch is reused across ReadGuest calls so a hypercall-heavy run
	// pays one buffer allocation, not one per call. The GuestMem
	// contract permits this: the returned slice is only valid until the
	// next ReadGuest.
	scratch []byte
}

func (g *guestMem) ReadGuest(addr uint64, n int) ([]byte, error) {
	// Overflow-safe bounds check: addr+n can wrap for huge addr, so
	// compare the remaining window instead of the sum.
	if n < 0 || addr > uint64(len(g.mem)) || uint64(n) > uint64(len(g.mem))-addr {
		return nil, fmt.Errorf("wasp: guest read [%#x,+%d) out of bounds", addr, n)
	}
	g.clk.Advance(cycles.MemcpyCost(n))
	if cap(g.scratch) < n {
		g.scratch = make([]byte, n)
	}
	out := g.scratch[:n:n]
	copy(out, g.mem[addr:])
	return out, nil
}

func (g *guestMem) WriteGuest(addr uint64, b []byte) error {
	if addr > uint64(len(g.mem)) || uint64(len(b)) > uint64(len(g.mem))-addr {
		return fmt.Errorf("wasp: guest write [%#x,+%d) out of bounds", addr, len(b))
	}
	g.clk.Advance(cycles.MemcpyCost(len(b)))
	copy(g.mem[addr:], b)
	if g.mark != nil {
		g.mark(addr, len(b))
	}
	return nil
}

// codeRegistry keeps one frozen decoded-code cache per image, so every
// run of an image after the first adopts predecoded pages instead of
// re-decoding the boot stub and workload: decode once per image, not once
// per run. Pages are immutable once registered; AdoptCode verifies page
// content against guest memory before installing, so a registry entry can
// never supply a stale decode regardless of how the memory was populated
// (cold load, snapshot restore, or COW reset).
type codeRegistry struct {
	mu    sync.RWMutex
	byImg map[string]cpu.CodeCache
}

func (r *codeRegistry) get(name string) cpu.CodeCache {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byImg[name]
}

// merge folds newly decoded pages into the image's entry, keeping
// already-registered pages (they were decoded from the image's canonical
// content).
func (r *codeRegistry) merge(name string, cc cpu.CodeCache) {
	if cc.Empty() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byImg == nil {
		r.byImg = make(map[string]cpu.CodeCache)
	}
	r.byImg[name] = r.byImg[name].Merge(cc)
}
