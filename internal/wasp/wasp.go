// Package wasp implements the Wasp embeddable micro-hypervisor runtime
// (§5): a userspace library that virtine clients link against to run
// individual functions in isolated virtual contexts.
//
// Wasp provides the mechanisms — context provisioning, image loading,
// snapshotting, hypercall interposition — while the virtine client
// supplies policy: which hypercalls are permitted and how they are
// serviced. The default is deny-all (§5.1).
//
// Two optimizations from §5.2 are implemented for real:
//
//   - Pooling/caching: returned contexts are cleaned (zeroed, preventing
//     information leakage) and cached as "shells"; acquiring a cached
//     shell costs pool bookkeeping instead of KVM_CREATE_VM. Cleaning is
//     charged on the critical path (Wasp+C) or handed to a real
//     background cleaner (Wasp+CA): release parks the dirty shell on
//     the Cleaner's queue and the zeroing happens on a background
//     goroutine, an idle scheduler worker, or a dedicated virtual
//     cleaner core — never on the caller's path (see cleaner.go).
//     Pools are bounded and self-sizing per size class: PoolPolicy caps
//     each class, and scheduler queue-depth/service-time telemetry
//     (ObserveLoad) prewarms shells under bursts and shrinks them when
//     idle (see pool.go).
//   - Snapshotting: a virtine may capture its state after initialization;
//     subsequent executions of the same image restore the snapshot (one
//     memcpy) and resume at the snapshot point, skipping boot and runtime
//     init (Fig 7).
//
// One Wasp may span several hosted-hypervisor backends (Fig 5: KVM on
// Linux, Hyper-V/WHP on Windows) via WithPlatforms. Mutable runtime
// state — shell pools, snapshot and COW registries, the async cleaner —
// is partitioned per backend: a shell created on KVM is never handed to
// a Hyper-V run, and each backend's pools prewarm and shrink on their
// own telemetry. Only the decoded-code registry is shared, because
// decoded guest code depends on image content alone, not on the
// hypervisor underneath. The placement layer (internal/placement) and
// the scheduler's platform-affine workers decide which backend an
// invocation lands on; RunOn is the per-backend entry point.
package wasp

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vmm"
)

// Wasp is the hypervisor runtime. It is safe for concurrent use; each
// Run advances its own caller-supplied clock, so concurrent runs model
// independent cores. Mutable state is split into independently locked
// pieces (see pool.go), partitioned per hypervisor backend, so
// concurrent Runs on different images, size classes, or platforms never
// contend on a single runtime-wide lock.
type Wasp struct {
	backends []*backend
	byPlat   map[string]*backend
	codes    codeRegistry // shared: decoded code is platform-independent

	pooling      bool
	asyncClean   bool
	snapEnable   bool
	cow          bool
	legacyInterp bool
	legacySnaps  bool
	noJIT        bool
	platforms    []vmm.Platform
	policy       PoolPolicy

	poolDrops atomic.Uint64 // sync-clean shells dropped at the capacity bound

	// Lifetime compiled-tier activity, aggregated from per-run deltas
	// (contexts are pooled, so per-CPU counters alone mean nothing).
	jitFused    atomic.Uint64
	jitCompiled atomic.Uint64
	jitHits     atomic.Uint64
	jitDeopts   atomic.Uint64

	// pairProf accumulates opcode-pair counts across runs when
	// WithPairProfile is on (guarded by pairMu; runs may be concurrent).
	pairMu   sync.Mutex
	pairProf map[uint16]uint64

	// tracer is the attached flight recorder (internal/obs); nil or
	// disabled, every instrumentation site costs one atomic load. Set
	// at construction (WithTracer) or before serving (SetTracer).
	tracer *obs.Tracer
}

// backend is one hosted-hypervisor's slice of the runtime: its shell
// pools, snapshot and COW registries, snapshot forest, and (under
// Wasp+CA) its own cleaner. Everything keyed by guest-memory content or
// VM state lives here; a backend's shells and snapshots never serve
// another platform.
type backend struct {
	platform  vmm.Platform
	pools     shellPools
	snapshots snapRegistry
	cowShells cowRegistry
	cleaner   *Cleaner       // non-nil iff pooling && asyncClean
	forest    *vmm.PageStore // content-addressed page store behind all snapshots
	bases     baseRegistry   // image content key -> shared base layer
}

type shell struct {
	ctx   *vmm.Context
	dirty bool
}

// snapshot is one image's reset point. Forest-backed snapshots (the
// default) hold a content-addressed layer whose pages live in the
// backend's shared store; tenant clones of one binary are thin deltas
// over a shared base layer. Legacy snapshots (WithLegacySnapshots, the
// differential-test reference) hold the old private deep copy in mem.
// Exactly one of layer / mem is set.
type snapshot struct {
	layer      *vmm.Layer // forest mode: page table into the shared store
	contentKey string     // image content key ("" only for hand-built test state)
	mem        []byte     // legacy mode: private guest-memory deep copy
	captured   int        // bytes actually captured (restore cost basis)
	state      cpu.State
	native     any // opaque workload state for native images (§6.5 engine reuse)
	booted     bool
}

// retain pins the snapshot's layer for the duration of a restore or
// export; release undoes it. No-ops for legacy deep-copy snapshots.
func (s *snapshot) retain() {
	if s != nil {
		s.layer.Retain()
	}
}

func (s *snapshot) release() {
	if s != nil {
		s.layer.Release()
	}
}

// memLen is the guest-memory geometry the snapshot restores over.
func (s *snapshot) memLen() int {
	if s.layer != nil {
		return s.layer.MemLen()
	}
	return len(s.mem)
}

// restorePage copies the snapshot's content for page p into dst (the
// COW fault-in path). Forest snapshots resolve through the layer chain
// — the nearest layer that owns the page supplies it, pages owned
// nowhere are zero; legacy snapshots copy from the private deep copy.
// dst must lie within page p.
func (s *snapshot) restorePage(p int, dst []byte) {
	if s.layer != nil {
		if data := s.layer.PageData(p); data != nil {
			copy(dst, data)
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		return
	}
	copy(dst, s.mem[p*vmm.PageSize:])
}

// Option configures a Wasp instance.
type Option func(*Wasp)

// WithPooling enables or disables the cached shell pool (§5.2). Enabled
// in the default configuration.
func WithPooling(on bool) Option { return func(w *Wasp) { w.pooling = on } }

// WithAsyncClean moves shell cleaning off the critical path onto the
// background Cleaner (the Wasp+CA configuration of Fig 8): release
// performs no zeroing at all, and dirty shells are scrubbed by the
// cleaner's drain goroutine, idle scheduler workers, or the virtual
// cleaner core. With multiple platforms each backend gets its own
// cleaner, so a dirty KVM shell is only ever scrubbed back into the KVM
// pool.
func WithAsyncClean(on bool) Option { return func(w *Wasp) { w.asyncClean = on } }

// WithPoolPolicy bounds and self-sizes the shell pools; zero fields
// take DefaultPoolPolicy values. Without this option the default policy
// applies — pools are always capacity-bounded. The policy applies to
// every backend's pools independently.
func WithPoolPolicy(p PoolPolicy) Option { return func(w *Wasp) { w.policy = p } }

// WithSnapshotting enables the snapshot/restore fast path (§5.2). Images
// still opt in per run via RunConfig.Snapshot.
func WithSnapshotting(on bool) Option { return func(w *Wasp) { w.snapEnable = on } }

// WithPlatform selects the hypervisor backend (Fig 5): vmm.KVM{} on
// Linux, vmm.HyperV{} on Windows. Default is KVM.
func WithPlatform(p vmm.Platform) Option {
	return func(w *Wasp) { w.platforms = []vmm.Platform{p} }
}

// WithPlatforms gives one Wasp several hosted-hypervisor backends. The
// first platform is the default (Run without a platform lands there);
// RunOn and the scheduler's platform-affine workers address the others.
// Shell pools, snapshot and COW registries, prewarming, ObserveLoad
// sizing, and async cleaning are all partitioned per platform.
// Duplicate platform names collapse to one backend.
func WithPlatforms(ps ...vmm.Platform) Option {
	return func(w *Wasp) {
		if len(ps) > 0 {
			w.platforms = append([]vmm.Platform(nil), ps...)
		}
	}
}

// WithLegacyInterp selects the original decode-every-instruction guest
// interpreter instead of the predecoded block-execution engine, and
// disables the per-image decoded-code registry. Virtual-cycle results are
// bit-identical either way (the differential determinism tests enforce
// it); only host wall-clock differs.
func WithLegacyInterp(on bool) Option { return func(w *Wasp) { w.legacyInterp = on } }

// WithNoJIT disables the compiled-trace tier of the cached engine: guest
// code still runs from predecoded (and fused) entries, one dispatch per
// entry, but no closure chains are compiled. This is the middle row of
// the interp benchmark's engine ablation; virtual cycles are identical
// in all three engines.
func WithNoJIT(on bool) Option { return func(w *Wasp) { w.noJIT = on } }

// WithPairProfile records the dynamic opcode-pair frequency of every
// guest instruction retired under this Wasp. Profiling forces the
// legacy engine — the histogram must observe the natural instruction
// stream, before superinstruction fusion rewrites it — so it is a
// measurement mode, not a production one. Harvest with HotPairs.
func WithPairProfile(on bool) Option {
	return func(w *Wasp) {
		if on {
			w.legacyInterp = true
			w.pairProf = make(map[uint16]uint64)
		}
	}
}

// WithLegacySnapshots selects the original deep-copy snapshot
// representation — one private full-memory buffer per snapshot —
// instead of the content-addressed forest. Restore results and virtual
// cycles are bit-identical either way (the forest property tests
// enforce it); only host memory held by the snapshot registries
// differs. This is a differential-testing reference, not a production
// mode: layer-aware migration (delta export/graft import) degrades to
// self-contained blobs under it.
func WithLegacySnapshots(on bool) Option { return func(w *Wasp) { w.legacySnaps = on } }

// WithTracer attaches a flight recorder (internal/obs): the runtime
// emits shell-provisioning (pool hit / cleaner reclaim / cold create /
// COW take / prewarm), release, async-clean, snapshot capture/restore,
// guest-run and migration events into it. A nil or disabled tracer
// costs one atomic load per instrumented operation.
func WithTracer(tr *obs.Tracer) Option { return func(w *Wasp) { w.tracer = tr } }

// WithCOW enables copy-on-write snapshot resets (§7.2's anticipated
// optimization, as in SEUSS): a context stays bound to its image between
// runs, and each restore copies back only the pages dirtied since the
// snapshot point instead of the whole image. Applies to interpreted
// guests; native workloads fall back to full restores.
func WithCOW(on bool) Option { return func(w *Wasp) { w.cow = on } }

// New returns a Wasp runtime with pooling and snapshotting enabled and
// synchronous cleaning — the paper's default configuration.
func New(opts ...Option) *Wasp {
	w := &Wasp{
		pooling:    true,
		snapEnable: true,
		platforms:  []vmm.Platform{vmm.KVM{}},
	}
	for _, o := range opts {
		o(w)
	}
	w.policy = w.policy.withDefaults()
	w.byPlat = make(map[string]*backend, len(w.platforms))
	for _, p := range w.platforms {
		if _, dup := w.byPlat[p.Name()]; dup {
			continue
		}
		be := &backend{platform: p, forest: vmm.NewPageStore()}
		be.pools.policy = w.policy
		if w.pooling && w.asyncClean {
			be.cleaner = newCleaner(&be.pools)
			be.cleaner.tr = w.tracer
		}
		w.backends = append(w.backends, be)
		w.byPlat[p.Name()] = be
	}
	return w
}

// SetTracer attaches a flight recorder to an already-built runtime —
// the post-construction analogue of WithTracer, for callers handed a
// *Wasp they did not configure (e.g. the cluster simulator). Call
// before the runtime starts serving runs; the field is not
// synchronized against in-flight executions.
func (w *Wasp) SetTracer(tr *obs.Tracer) {
	w.tracer = tr
	for _, be := range w.backends {
		if be.cleaner != nil {
			be.cleaner.tr = tr
		}
	}
}

// Tracer reports the attached flight recorder (nil when none).
func (w *Wasp) Tracer() *obs.Tracer { return w.tracer }

// Platforms lists the runtime's backends; the first is the default.
func (w *Wasp) Platforms() []vmm.Platform {
	out := make([]vmm.Platform, len(w.backends))
	for i, be := range w.backends {
		out[i] = be.platform
	}
	return out
}

// HasPlatform reports whether the runtime owns a backend of that name.
func (w *Wasp) HasPlatform(name string) bool {
	_, ok := w.byPlat[name]
	return ok
}

// backendFor resolves a platform name to its backend; "" means the
// default (first) backend.
func (w *Wasp) backendFor(platform string) (*backend, error) {
	if platform == "" {
		return w.backends[0], nil
	}
	be := w.byPlat[platform]
	if be == nil {
		return nil, fmt.Errorf("wasp: no %q backend (have %v)", platform, w.platformNames())
	}
	return be, nil
}

func (w *Wasp) platformNames() []string {
	out := make([]string, len(w.backends))
	for i, be := range w.backends {
		out[i] = be.platform.Name()
	}
	return out
}

// acquire provisions a virtual context of the given memory size on one
// backend: a cached shell when that backend's pool has one (Fig 6 path
// D), a cold create on its platform otherwise (path C). Cleaning of a
// dirty shell is charged here, on the critical path, unless async
// cleaning is on — pooled shells are always already clean under
// Wasp+CA, and a pool miss with cleaning still in flight is bridged by
// the backend's cleaner (reclaim) instead of a cold create.
func (w *Wasp) acquire(be *backend, memBytes int, clk *cycles.Clock) *vmm.Context {
	if w.pooling {
		s := be.pools.take(memBytes)
		hit := s != nil
		if s == nil && be.cleaner != nil {
			s = be.cleaner.reclaim(memBytes)
		}
		if s != nil {
			if tr := w.tracer; tr.Enabled() {
				src := "shell-pool"
				if !hit {
					src = "shell-reclaim"
				}
				tr.Instant(obs.ControlLane, obs.KindShell, src,
					clk.Now(), 0, uint64(memBytes), 0)
			}
			// Partition invariant: a pooled shell must belong to the
			// backend that parked it. Release routes by the context's own
			// platform, so a violation here means cross-platform state
			// corruption — fail loudly rather than run on the wrong VMM.
			if got := s.ctx.Platform().Name(); got != be.platform.Name() {
				panic(fmt.Sprintf("wasp: %s shell crossed into the %s pool", got, be.platform.Name()))
			}
			clk.Advance(cycles.PoolAcquire)
			s.ctx.Clock = clk
			s.ctx.CPU.Clock = clk
			if s.dirty {
				s.ctx.Clean()
				s.dirty = false
			}
			return s.ctx
		}
	}
	if tr := w.tracer; tr.Enabled() {
		tr.Instant(obs.ControlLane, obs.KindShell, "shell-cold",
			clk.Now(), 0, uint64(memBytes), 0)
	}
	return vmm.CreateOn(be.platform, memBytes, clk)
}

// release returns a context to the pool of the backend it was created
// on. Under async cleaning (Wasp+CA) no zeroing happens here: the dirty
// shell goes to that backend's Cleaner queue and is scrubbed off the
// release path. Otherwise (Wasp+C) the shell is parked dirty and pays
// for cleaning when next acquired. Either way the size class's capacity
// bound holds; surplus shells are dropped for the host to reclaim.
func (w *Wasp) release(ctx *vmm.Context) {
	if !w.pooling {
		return // dropped; host kernel reclaims it
	}
	be := w.byPlat[ctx.Platform().Name()]
	if be == nil {
		return // foreign context (tests building raw vmm state): drop it
	}
	if tr := w.tracer; tr.Enabled() {
		var v uint64
		if ctx.Clock != nil {
			v = ctx.Clock.Now()
		}
		async := uint64(0)
		if be.cleaner != nil {
			async = 1
		}
		tr.Instant(obs.ControlLane, obs.KindRelease, "release",
			v, 0, uint64(len(ctx.Mem)), async)
	}
	s := &shell{ctx: ctx, dirty: true}
	if be.cleaner != nil {
		be.cleaner.enqueue(len(ctx.Mem), s)
		return
	}
	if !be.pools.put(len(ctx.Mem), s) {
		w.poolDrops.Add(1)
	}
}

// PoolSize reports the number of cached shells for a memory size on the
// default backend.
func (w *Wasp) PoolSize(memBytes int) int {
	return w.backends[0].pools.size(memBytes)
}

// PoolSizeOn reports the number of cached shells for a memory size on a
// named backend (0 for an unknown platform).
func (w *Wasp) PoolSizeOn(platform string, memBytes int) int {
	be, err := w.backendFor(platform)
	if err != nil {
		return 0
	}
	return be.pools.size(memBytes)
}

// PoolTotal reports the number of cached shells across all size classes
// and all backends.
func (w *Wasp) PoolTotal() int {
	n := 0
	for _, be := range w.backends {
		n += be.pools.total()
	}
	return n
}

// PoolTotalOn reports the number of cached shells across one backend's
// size classes.
func (w *Wasp) PoolTotalOn(platform string) int {
	be, err := w.backendFor(platform)
	if err != nil {
		return 0
	}
	return be.pools.total()
}

// PoolStatsFor snapshots one size class's pool state on the default
// backend (cached count, summed per-image warm target, smoothed service
// time).
func (w *Wasp) PoolStatsFor(memBytes int) PoolStats {
	return w.backends[0].pools.stats(memBytes)
}

// PoolImageStats snapshots one image's sizing state within a size
// class on the default backend: Target and SvcEWMA are the image's own
// warm-target claim and smoothed service time; Cached is the class's
// shared warm count.
func (w *Wasp) PoolImageStats(memBytes int, image string) PoolStats {
	return w.backends[0].pools.imageStats(memBytes, image)
}

// PoolDropped reports shells dropped at the capacity bound on the
// synchronous release path (all backends). Async-clean drops are
// reported by Cleaner.Dropped.
func (w *Wasp) PoolDropped() uint64 { return w.poolDrops.Load() }

// Cleaner exposes the default backend's background cleaner, or nil when
// cleaning is synchronous (Wasp+C) or pooling is off.
func (w *Wasp) Cleaner() *Cleaner { return w.backends[0].cleaner }

// CleanerOn exposes a named backend's cleaner (nil when cleaning is
// synchronous or the platform is unknown).
func (w *Wasp) CleanerOn(platform string) *Cleaner {
	be, err := w.backendFor(platform)
	if err != nil {
		return nil
	}
	return be.cleaner
}

// Cleaners lists every backend's cleaner, in backend order; empty when
// cleaning is synchronous. The scheduler drains all of them.
func (w *Wasp) Cleaners() []*Cleaner {
	var out []*Cleaner
	for _, be := range w.backends {
		if be.cleaner != nil {
			out = append(out, be.cleaner)
		}
	}
	return out
}

// AsyncClean reports whether the runtime cleans shells asynchronously.
func (w *Wasp) AsyncClean() bool { return w.backends[0].cleaner != nil }

// Prewarm tops a size class up to n cached clean shells on the default
// backend; see PrewarmOn.
func (w *Wasp) Prewarm(memBytes, n int) int {
	return w.prewarm(w.backends[0], memBytes, n)
}

// PrewarmOn tops a size class up to n cached clean shells (clamped to
// the class's capacity) on one backend ahead of demand; classes already
// at or above n are left alone. Creation cost lands on a private clock:
// prewarming is provisioning work off any measured request path. It
// reports how many shells were added (0 for an unknown platform).
func (w *Wasp) PrewarmOn(platform string, memBytes, n int) int {
	be, err := w.backendFor(platform)
	if err != nil {
		return 0
	}
	return w.prewarm(be, memBytes, n)
}

func (w *Wasp) prewarm(be *backend, memBytes, n int) int {
	if !w.pooling {
		return 0
	}
	if max := be.pools.policy.MaxPerClass; n > max {
		n = max
	}
	added := 0
	for be.pools.size(memBytes) < n {
		ctx := vmm.CreateOn(be.platform, memBytes, cycles.NewClock())
		if !be.pools.put(memBytes, &shell{ctx: ctx}) {
			break
		}
		added++
	}
	if tr := w.tracer; tr.Enabled() && added > 0 {
		tr.Instant(obs.ControlLane, obs.KindShell, "shell-prewarm",
			0, 0, uint64(memBytes), uint64(added))
	}
	return added
}

// ObserveLoad feeds scheduler telemetry for one completed run on the
// default backend into the pool-sizing policy; see ObserveLoadOn.
func (w *Wasp) ObserveLoad(image string, memBytes, depth int, svcCycles uint64) {
	w.observeLoad(w.backends[0], image, memBytes, depth, svcCycles)
}

// ObserveLoadOn feeds scheduler telemetry for one completed run into
// the named backend's pool-sizing policy, attributed to the image that
// ran: a deep queue at submit raises the image's warm-target claim on
// its size class and prewarms shells; a sustained idle streak of that
// image decays only its own claim and releases a surplus cached shell
// to the host (handled inside observe, under the shard lock), so a
// multi-tenant class keeps warm shells for tenants that are still
// active. The unified scheduler calls this once per completed image
// ticket, on the platform whose worker served it.
func (w *Wasp) ObserveLoadOn(platform, image string, memBytes, depth int, svcCycles uint64) {
	be, err := w.backendFor(platform)
	if err != nil {
		return
	}
	w.observeLoad(be, image, memBytes, depth, svcCycles)
}

func (w *Wasp) observeLoad(be *backend, image string, memBytes, depth int, svcCycles uint64) {
	if !w.pooling {
		return
	}
	if wantCached := be.pools.observe(image, memBytes, depth, svcCycles); wantCached > 0 {
		w.prewarm(be, memBytes, wantCached)
	}
}

// HasSnapshot reports whether an image has a stored snapshot on the
// default backend.
func (w *Wasp) HasSnapshot(name string) bool {
	return w.backends[0].snapshots.has(name)
}

// HasSnapshotOn reports whether an image has a stored snapshot on a
// named backend. Snapshots are captured per backend: the first run of
// an image on each platform pays its own capture.
func (w *Wasp) HasSnapshotOn(platform, name string) bool {
	be, err := w.backendFor(platform)
	if err != nil {
		return false
	}
	return be.snapshots.has(name)
}

// DropSnapshot removes a stored snapshot from every backend (tests and
// ablations). Any COW shell parked against the image is discarded too:
// its memory is a delta over the dropped snapshot, so rebooting it
// without that reset point would leak post-snapshot state into the
// image's next cold run.
func (w *Wasp) DropSnapshot(name string) {
	for _, be := range w.backends {
		be.snapshots.drop(name)
		be.cowShells.take(name)
	}
}

// CodeStats reports the shared decoded-code registry's state plus the
// compiled-trace tier's lifetime activity under this Wasp.
type CodeStats struct {
	// Entries is the number of distinct content keys in the registry;
	// Merges counts lifetime decode harvests into it. Tenant clones of
	// one binary share a content key, so running a renamed image
	// against warm content leaves both unchanged.
	Entries int
	Merges  uint64
	// Fused counts superinstruction entries created at predecode;
	// BlocksCompiled, BlockHits and BlockDeopts track the compiled
	// closure-trace tier, aggregated across all runs (and all pooled
	// contexts) of this Wasp.
	Fused          uint64
	BlocksCompiled uint64
	BlockHits      uint64
	BlockDeopts    uint64
}

// CodeCacheStats snapshots the registry and compiled-tier counters.
func (w *Wasp) CodeCacheStats() CodeStats {
	entries, merges := w.codes.stats()
	return CodeStats{
		Entries:        entries,
		Merges:         merges,
		Fused:          w.jitFused.Load(),
		BlocksCompiled: w.jitCompiled.Load(),
		BlockHits:      w.jitHits.Load(),
		BlockDeopts:    w.jitDeopts.Load(),
	}
}

// PairCount is one entry of the opcode-pair histogram: Count retirements
// of First immediately followed by Second.
type PairCount struct {
	First, Second isa.Op
	Count         uint64
}

// HotPairs returns the k most frequent dynamic opcode pairs observed
// under WithPairProfile, most frequent first.
func (w *Wasp) HotPairs(k int) []PairCount {
	w.pairMu.Lock()
	out := make([]PairCount, 0, len(w.pairProf))
	for key, n := range w.pairProf {
		out = append(out, PairCount{First: isa.Op(key >> 8), Second: isa.Op(key & 0xFF), Count: n})
	}
	w.pairMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return uint16(out[i].First)<<8|uint16(out[i].Second) <
			uint16(out[j].First)<<8|uint16(out[j].Second)
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// guestMem is the bounds-checked GuestMem window handlers receive. Bulk
// copies are charged to the run's clock at memcpy bandwidth: handler data
// movement is critical-path host work (§6.3's doubly-expensive exits are
// the entry/exit cost; this is the payload cost).
type guestMem struct {
	mem  []byte
	clk  *cycles.Clock
	mark func(addr uint64, n int) // dirty-page tracking hook (may be nil)

	// scratch is reused across ReadGuest calls so a hypercall-heavy run
	// pays one buffer allocation, not one per call. The GuestMem
	// contract permits this: the returned slice is only valid until the
	// next ReadGuest.
	scratch []byte
}

func (g *guestMem) ReadGuest(addr uint64, n int) ([]byte, error) {
	// Overflow-safe bounds check: addr+n can wrap for huge addr, so
	// compare the remaining window instead of the sum.
	if n < 0 || addr > uint64(len(g.mem)) || uint64(n) > uint64(len(g.mem))-addr {
		return nil, fmt.Errorf("wasp: guest read [%#x,+%d) out of bounds", addr, n)
	}
	g.clk.Advance(cycles.MemcpyCost(n))
	if cap(g.scratch) < n {
		g.scratch = make([]byte, n)
	}
	out := g.scratch[:n:n]
	copy(out, g.mem[addr:])
	return out, nil
}

func (g *guestMem) WriteGuest(addr uint64, b []byte) error {
	if addr > uint64(len(g.mem)) || uint64(len(b)) > uint64(len(g.mem))-addr {
		return fmt.Errorf("wasp: guest write [%#x,+%d) out of bounds", addr, len(b))
	}
	g.clk.Advance(cycles.MemcpyCost(len(b)))
	copy(g.mem[addr:], b)
	if g.mark != nil {
		g.mark(addr, len(b))
	}
	return nil
}

// codeRegistry keeps one frozen decoded-code cache per image *content*,
// so every run of a binary after the first adopts predecoded pages
// instead of re-decoding the boot stub and workload: decode once per
// content, not once per run — and not once per name either. Tenant
// clones made with guest.Image.WithName hash to the same content key
// and share one entry. Pages are immutable once registered; AdoptCode
// verifies page content against guest memory before installing, so a
// registry entry can never supply a stale decode regardless of how the
// memory was populated (cold load, snapshot restore, COW reset) or of a
// content-key collision.
type codeRegistry struct {
	mu     sync.RWMutex
	byKey  map[string]cpu.CodeCache
	merges uint64
}

func (r *codeRegistry) get(key string) cpu.CodeCache {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byKey[key]
}

// merge folds newly decoded pages into the content's entry, keeping
// already-registered pages (they were decoded from the same canonical
// content).
func (r *codeRegistry) merge(key string, cc cpu.CodeCache) {
	if cc.Empty() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byKey == nil {
		r.byKey = make(map[string]cpu.CodeCache)
	}
	r.byKey[key] = r.byKey[key].Merge(cc)
	r.merges++
}

func (r *codeRegistry) stats() (entries int, merges uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byKey), r.merges
}
