// Package wasp implements the Wasp embeddable micro-hypervisor runtime
// (§5): a userspace library that virtine clients link against to run
// individual functions in isolated virtual contexts.
//
// Wasp provides the mechanisms — context provisioning, image loading,
// snapshotting, hypercall interposition — while the virtine client
// supplies policy: which hypercalls are permitted and how they are
// serviced. The default is deny-all (§5.1).
//
// Two optimizations from §5.2 are implemented for real:
//
//   - Pooling/caching: returned contexts are cleaned (zeroed, preventing
//     information leakage) and cached as "shells"; acquiring a cached
//     shell costs pool bookkeeping instead of KVM_CREATE_VM. Cleaning is
//     charged on the critical path (Wasp+C) or performed by a background
//     cleaner off the measured path (Wasp+CA).
//   - Snapshotting: a virtine may capture its state after initialization;
//     subsequent executions of the same image restore the snapshot (one
//     memcpy) and resume at the snapshot point, skipping boot and runtime
//     init (Fig 7).
package wasp

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/vmm"
)

// Wasp is the hypervisor runtime. It is safe for concurrent use; each
// Run advances its own caller-supplied clock, so concurrent runs model
// independent cores. Mutable state is split into independently locked
// pieces (see pool.go) so concurrent Runs on different images or size
// classes never contend on a single runtime-wide lock.
type Wasp struct {
	pools     shellPools
	snapshots snapRegistry
	cowShells cowRegistry

	pooling    bool
	asyncClean bool
	snapEnable bool
	cow        bool
	platform   vmm.Platform
}

type shell struct {
	ctx   *vmm.Context
	dirty bool
}

type snapshot struct {
	mem      []byte // guest-memory capture at the snapshot point
	captured int    // bytes actually captured (restore cost basis)
	state    cpu.State
	native   any // opaque workload state for native images (§6.5 engine reuse)
	booted   bool
}

// Option configures a Wasp instance.
type Option func(*Wasp)

// WithPooling enables or disables the cached shell pool (§5.2). Enabled
// in the default configuration.
func WithPooling(on bool) Option { return func(w *Wasp) { w.pooling = on } }

// WithAsyncClean moves shell cleaning off the critical path, as a
// background thread would (the Wasp+CA configuration of Fig 8).
func WithAsyncClean(on bool) Option { return func(w *Wasp) { w.asyncClean = on } }

// WithSnapshotting enables the snapshot/restore fast path (§5.2). Images
// still opt in per run via RunConfig.Snapshot.
func WithSnapshotting(on bool) Option { return func(w *Wasp) { w.snapEnable = on } }

// WithPlatform selects the hypervisor backend (Fig 5): vmm.KVM{} on
// Linux, vmm.HyperV{} on Windows. Default is KVM.
func WithPlatform(p vmm.Platform) Option { return func(w *Wasp) { w.platform = p } }

// WithCOW enables copy-on-write snapshot resets (§7.2's anticipated
// optimization, as in SEUSS): a context stays bound to its image between
// runs, and each restore copies back only the pages dirtied since the
// snapshot point instead of the whole image. Applies to interpreted
// guests; native workloads fall back to full restores.
func WithCOW(on bool) Option { return func(w *Wasp) { w.cow = on } }

// New returns a Wasp runtime with pooling and snapshotting enabled and
// synchronous cleaning — the paper's default configuration.
func New(opts ...Option) *Wasp {
	w := &Wasp{
		pooling:    true,
		snapEnable: true,
		platform:   vmm.KVM{},
	}
	for _, o := range opts {
		o(w)
	}
	return w
}

// acquire provisions a virtual context of the given memory size: a cached
// shell when the pool has one (Fig 6 path D), a cold KVM context
// otherwise (path C). Cleaning of a dirty shell is charged here, on the
// critical path, unless async cleaning is on (in which case pooled shells
// are always already clean).
func (w *Wasp) acquire(memBytes int, clk *cycles.Clock) *vmm.Context {
	if w.pooling {
		if s := w.pools.take(memBytes); s != nil {
			clk.Advance(cycles.PoolAcquire)
			s.ctx.Clock = clk
			s.ctx.CPU.Clock = clk
			if s.dirty {
				s.ctx.Clean()
				s.dirty = false
			}
			return s.ctx
		}
	}
	return vmm.CreateOn(w.platform, memBytes, clk)
}

// release returns a context to the pool. With async cleaning the zeroing
// happens silently (off the measured path); otherwise the shell is parked
// dirty and pays for cleaning when next acquired.
func (w *Wasp) release(ctx *vmm.Context) {
	if !w.pooling {
		return // dropped; host kernel reclaims it
	}
	s := &shell{ctx: ctx, dirty: true}
	if w.asyncClean {
		ctx.CleanSilent()
		s.dirty = false
	}
	w.pools.put(len(ctx.Mem), s)
}

// takeCOWShell claims the image-bound context, if one is parked.
func (w *Wasp) takeCOWShell(name string) *vmm.Context {
	return w.cowShells.take(name)
}

// parkCOWShell binds a context to its image for the next COW reset. If a
// shell is already parked for the image, the context is recycled through
// the ordinary pool instead.
func (w *Wasp) parkCOWShell(name string, ctx *vmm.Context) {
	if !w.cowShells.park(name, ctx) {
		w.release(ctx)
	}
}

// PoolSize reports the number of cached shells for a memory size.
func (w *Wasp) PoolSize(memBytes int) int {
	return w.pools.size(memBytes)
}

// PoolTotal reports the number of cached shells across all size classes.
func (w *Wasp) PoolTotal() int {
	return w.pools.total()
}

// HasSnapshot reports whether an image has a stored snapshot.
func (w *Wasp) HasSnapshot(name string) bool {
	return w.snapshots.has(name)
}

// DropSnapshot removes a stored snapshot (tests and ablations).
func (w *Wasp) DropSnapshot(name string) {
	w.snapshots.drop(name)
}

func (w *Wasp) getSnapshot(name string) *snapshot {
	return w.snapshots.get(name)
}

func (w *Wasp) putSnapshot(name string, s *snapshot) {
	w.snapshots.put(name, s)
}

// guestMem is the bounds-checked GuestMem window handlers receive. Bulk
// copies are charged to the run's clock at memcpy bandwidth: handler data
// movement is critical-path host work (§6.3's doubly-expensive exits are
// the entry/exit cost; this is the payload cost).
type guestMem struct {
	mem  []byte
	clk  *cycles.Clock
	mark func(addr uint64, n int) // dirty-page tracking hook (may be nil)
}

func (g guestMem) ReadGuest(addr uint64, n int) ([]byte, error) {
	// Overflow-safe bounds check: addr+n can wrap for huge addr, so
	// compare the remaining window instead of the sum.
	if n < 0 || addr > uint64(len(g.mem)) || uint64(n) > uint64(len(g.mem))-addr {
		return nil, fmt.Errorf("wasp: guest read [%#x,+%d) out of bounds", addr, n)
	}
	g.clk.Advance(cycles.MemcpyCost(n))
	out := make([]byte, n)
	copy(out, g.mem[addr:])
	return out, nil
}

func (g guestMem) WriteGuest(addr uint64, b []byte) error {
	if addr > uint64(len(g.mem)) || uint64(len(b)) > uint64(len(g.mem))-addr {
		return fmt.Errorf("wasp: guest write [%#x,+%d) out of bounds", addr, len(b))
	}
	g.clk.Advance(cycles.MemcpyCost(len(b)))
	copy(g.mem[addr:], b)
	if g.mark != nil {
		g.mark(addr, len(b))
	}
	return nil
}
