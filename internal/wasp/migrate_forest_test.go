package wasp

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/vmm"
)

// tenantImg is the shared binary tenant clones are forked from: it
// doubles its argument, so each tenant's correctness is checkable and
// each tenant's snapshot differs from the base only in the arg page.
func tenantImg(name string) *guest.Image {
	return guest.MustFromAsm(name, guest.WrapLongMode(`
	out 0x08, rdi
	movi rbx, 0x0
	load rax, [rbx]
	add rax, rax
	movi rbx, 0x4000
	store [rbx], rax
	movi rdi, 0
	out 0x00, rdi
	hlt
`))
}

// validSnapshotBlob runs an image to capture and exports its snapshot.
func validSnapshotBlob(t *testing.T) []byte {
	t.Helper()
	w := New()
	img := tenantImg("wire-src")
	if _, err := w.Run(img, RunConfig{Snapshot: true, RetBytes: 8, Args: le64(1)}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	blob, err := w.ExportSnapshot(img.Name)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// encodeWire re-serializes a (possibly corrupted) wire struct under the
// current magic/version header.
func encodeWire(t *testing.T, wire snapshotWire) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	buf.WriteByte(snapshotVersion)
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestExportBlobCarriesMagicAndVersion pins the wire header: 4 magic
// bytes then the explicit format-version byte.
func TestExportBlobCarriesMagicAndVersion(t *testing.T) {
	blob := validSnapshotBlob(t)
	if string(blob[:4]) != snapshotMagic {
		t.Fatalf("magic = %q", blob[:4])
	}
	if blob[4] != snapshotVersion {
		t.Fatalf("version byte = %d, want %d", blob[4], snapshotVersion)
	}
}

// TestImportRejectsHostileBlobs is the negative-input table for the
// snapshot blob parser: truncations, corruption, mismatched geometry
// and hostile lengths must all fail with a clear error and no side
// effects on the receiving forest.
func TestImportRejectsHostileBlobs(t *testing.T) {
	blob := validSnapshotBlob(t)
	wire, err := decodeSnapshotWire("seed", blob)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func(w *snapshotWire)) []byte {
		c := *wire
		c.Pages = append([]wirePage(nil), wire.Pages...)
		fn(&c)
		return encodeWire(t, c)
	}

	futureVersion := append([]byte(nil), blob...)
	futureVersion[4] = snapshotVersion + 1
	badMagic := append([]byte(nil), blob...)
	copy(badMagic, "NOPE")
	// Cut a chunk out of the gob stream: interior lengths no longer
	// match, which the decoder reports. (Single flipped payload bytes can
	// decode into a different-but-valid snapshot — that shapeless space
	// belongs to FuzzImportSnapshot's no-panic/coherence property.)
	corruptGob := append(append([]byte(nil), blob[:64]...), blob[96:]...)

	cases := []struct {
		name string
		blob []byte
		want string // substring of the expected error
	}{
		{"empty", nil, "truncated"},
		{"header only", blob[:5], "decoding"},
		{"truncated mid-gob", blob[:len(blob)/2], "decoding"},
		{"bad magic", badMagic, "bad magic"},
		{"future version", futureVersion, fmt.Sprintf("version %d", snapshotVersion+1)},
		{"corrupted gob", corruptGob, ""},
		{"zero geometry", mutate(func(w *snapshotWire) { w.Geometry = 0 }), "hostile geometry"},
		{"negative geometry", mutate(func(w *snapshotWire) { w.Geometry = -4096 }), "hostile geometry"},
		{"huge geometry", mutate(func(w *snapshotWire) { w.Geometry = maxWireGeometry + 1 }), "hostile geometry"},
		{"captured zero", mutate(func(w *snapshotWire) { w.Captured = 0 }), "malformed"},
		{"captured beyond geometry", mutate(func(w *snapshotWire) { w.Captured = w.Geometry + 1 }), "malformed"},
		{"geometry shrunk under pages", mutate(func(w *snapshotWire) { w.Geometry = vmm.PageSize }), "geometry"},
		{"page index negative", mutate(func(w *snapshotWire) { w.Pages[0].Idx = -1 }), "outside"},
		{"page index out of range", mutate(func(w *snapshotWire) { w.Pages[0].Idx = 1 << 20 }), "outside"},
		{"duplicate page", mutate(func(w *snapshotWire) { w.Pages[1].Idx = w.Pages[0].Idx }), "duplicate"},
		{"short page", mutate(func(w *snapshotWire) { w.Pages[0].Data = w.Pages[0].Data[:100] }), "100 bytes"},
		{"oversized page", mutate(func(w *snapshotWire) { w.Pages[0].Data = make([]byte, 1<<20) }), "bytes"},
		{"nil page in full blob", mutate(func(w *snapshotWire) { w.Pages[0].Data = nil }), "zero-override"},
		{"delta without content key", mutate(func(w *snapshotWire) { w.Delta = true; w.ContentKey = "" }), "without a base content key"},
		{"digest on full blob", mutate(func(w *snapshotWire) { w.BaseDigest[0] = 1 }), "self-contained"},
		{"delta without local base", mutate(func(w *snapshotWire) {
			w.Delta = true
			w.ContentKey = "no-such-content"
			w.Pages = w.Pages[:1]
		}), "does not hold"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := New()
			err := w.ImportSnapshot("victim", tc.blob)
			if err == nil {
				t.Fatal("hostile blob accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
			if w.HasSnapshot("victim") {
				t.Fatal("rejected import left a snapshot behind")
			}
			if st := w.ForestStats(); st.StorePages != 0 {
				t.Fatalf("rejected import leaked %d pages into the store", st.StorePages)
			}
		})
	}
}

// FuzzImportSnapshot throws mutated blobs at the importer: it must
// never panic, and whatever it accepts must leave the forest coherent
// and export back cleanly.
func FuzzImportSnapshot(f *testing.F) {
	w := New()
	img := tenantImg("fuzz-src")
	if _, err := w.Run(img, RunConfig{Snapshot: true, RetBytes: 8, Args: le64(1)}, cycles.NewClock()); err != nil {
		f.Fatal(err)
	}
	blob, err := w.ExportSnapshot(img.Name)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:5])
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		w := New()
		if err := w.ImportSnapshot("fuzzed", data); err != nil {
			if w.HasSnapshot("fuzzed") {
				t.Fatal("failed import installed a snapshot")
			}
			return
		}
		if err := w.VerifyForest(); err != nil {
			t.Fatalf("accepted blob corrupted the store: %v", err)
		}
		if _, err := w.ExportSnapshot("fuzzed"); err != nil {
			t.Fatalf("accepted blob does not round-trip: %v", err)
		}
	})
}

// TestDeltaExportShipsOnlyDelta is the satellite-6 regression: a tenant
// snapshot's delta export must stay a small fraction of its full
// export, because only the tenant-owned pages cross the wire.
func TestDeltaExportShipsOnlyDelta(t *testing.T) {
	w := New()
	base := tenantImg("delta-base")
	cfg := func(arg uint64) RunConfig {
		return RunConfig{Snapshot: true, RetBytes: 8, Args: le64(arg)}
	}
	if _, err := w.Run(base, cfg(1), cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	tenant := base.WithName("delta-tenant")
	if _, err := w.Run(tenant, cfg(21), cycles.NewClock()); err != nil {
		t.Fatal(err)
	}

	full, err := w.ExportSnapshot(tenant.Name)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := w.ExportSnapshotDelta(tenant.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta)*4 > len(full) {
		t.Fatalf("delta blob %d B vs full %d B; delta export is not thin", len(delta), len(full))
	}

	// Receiver with the base: full import of the base image first (which
	// registers the base layer), then the tenant delta grafts onto it.
	baseBlob, err := w.ExportSnapshot(base.Name)
	if err != nil {
		t.Fatal(err)
	}
	b := New()
	if err := b.ImportSnapshot(base.Name, baseBlob); err != nil {
		t.Fatal(err)
	}
	if !b.HasBaseLayer(base.ContentKey()) {
		t.Fatal("full import did not register a base layer")
	}
	if err := b.ImportSnapshot(tenant.Name, delta); err != nil {
		t.Fatalf("delta graft failed: %v", err)
	}
	res, err := b.Run(tenant, cfg(50), cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !res.SnapshotUsed {
		t.Fatal("grafted tenant did not resume from its snapshot")
	}
	if got := fromLE64(res.Ret); got != 100 {
		t.Fatalf("grafted tenant ret %d, want 100", got)
	}

	// Receiver without the base rejects the same delta cleanly.
	c := New()
	if err := c.ImportSnapshot(tenant.Name, delta); err == nil ||
		!strings.Contains(err.Error(), "does not hold") {
		t.Fatalf("delta import without base: err = %v", err)
	}
}

// TestDeltaImportRejectsDriftedBase: a delta must not graft onto a base
// whose resolved content differs from the exporter's.
func TestDeltaImportRejectsDriftedBase(t *testing.T) {
	mkWasp := func(arg uint64) (*Wasp, *guest.Image) {
		w := New()
		base := tenantImg("drift-base")
		if _, err := w.Run(base, RunConfig{Snapshot: true, RetBytes: 8, Args: le64(arg)}, cycles.NewClock()); err != nil {
			t.Fatal(err)
		}
		return w, base
	}
	a, base := mkWasp(1)
	tenant := base.WithName("drift-tenant")
	if _, err := a.Run(tenant, RunConfig{Snapshot: true, RetBytes: 8, Args: le64(2)}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	delta, err := a.ExportSnapshotDelta(tenant.Name)
	if err != nil {
		t.Fatal(err)
	}
	// The receiver captured its own base with a different argument, so
	// its base layer's content digest differs from the exporter's.
	b, _ := mkWasp(9)
	if err := b.ImportSnapshot(tenant.Name, delta); err == nil ||
		!strings.Contains(err.Error(), "does not match") {
		t.Fatalf("drifted-base graft: err = %v", err)
	}
}

// TestMigrateSnapshotShipsDeltaWhenTargetHoldsBase is the placement
// follow-up hook: rebalancing a tenant between backends ships only the
// tenant delta when the target already holds the base layer.
func TestMigrateSnapshotShipsDeltaWhenTargetHoldsBase(t *testing.T) {
	w := New(WithPlatforms(vmm.KVM{}, vmm.HyperV{}))
	kvm, hyperv := vmm.KVM{}.Name(), vmm.HyperV{}.Name()
	base := tenantImg("mig-base")
	cfg := func(arg uint64) RunConfig {
		return RunConfig{Snapshot: true, RetBytes: 8, Args: le64(arg)}
	}
	// Both backends boot the base image from scratch: the deterministic
	// interpreter captures identical base layers, so their digests match
	// and tenant deltas can graft across.
	if _, err := w.RunOn(kvm, base, cfg(1), cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunOn(hyperv, base, cfg(1), cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	if !w.HasBaseLayerOn(hyperv, base.ContentKey()) {
		t.Fatal("target backend has no base layer after running the base image")
	}
	tenant := base.WithName("mig-tenant")
	if _, err := w.RunOn(kvm, tenant, cfg(3), cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	full, err := w.ExportSnapshotOn(kvm, tenant.Name, false)
	if err != nil {
		t.Fatal(err)
	}
	shipped, deltaOnly, err := w.MigrateSnapshot(tenant.Name, kvm, hyperv)
	if err != nil {
		t.Fatal(err)
	}
	if !deltaOnly {
		t.Fatal("migration shipped full snapshot although the target holds the base")
	}
	if shipped*4 > len(full) {
		t.Fatalf("delta migration shipped %d B vs full export %d B; regression in thin shipping", shipped, len(full))
	}
	// The migrated tenant must actually work on the target.
	res, err := w.RunOn(hyperv, tenant, cfg(30), cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !res.SnapshotUsed || fromLE64(res.Ret) != 60 {
		t.Fatalf("migrated tenant on %s: used=%v ret=%d", hyperv, res.SnapshotUsed, fromLE64(res.Ret))
	}

	// A snapshot with no base anywhere (fresh content) ships full.
	solo := guest.MustFromAsm("mig-solo", guest.WrapLongMode(`
	out 0x08, rdi
	movi rbx, 0x4000
	movi rax, 11
	store [rbx], rax
	movi rdi, 0
	out 0x00, rdi
	hlt
`))
	if _, err := w.RunOn(kvm, solo, RunConfig{Snapshot: true, RetBytes: 8}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	if _, deltaOnly, err = w.MigrateSnapshot(solo.Name, kvm, hyperv); err != nil {
		t.Fatal(err)
	}
	if deltaOnly {
		t.Fatal("baseless snapshot claimed a delta migration")
	}
}

// TestLegacyImportRejectsDelta: legacy deep-copy registries cannot
// graft; a delta blob must fail loudly, not materialize half an image.
func TestLegacyImportRejectsDelta(t *testing.T) {
	a := New()
	base := tenantImg("leg-base")
	cfg := RunConfig{Snapshot: true, RetBytes: 8, Args: le64(1)}
	if _, err := a.Run(base, cfg, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	tenant := base.WithName("leg-tenant")
	if _, err := a.Run(tenant, cfg, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	delta, err := a.ExportSnapshotDelta(tenant.Name)
	if err != nil {
		t.Fatal(err)
	}
	b := New(WithLegacySnapshots(true))
	if err := b.ImportSnapshot(tenant.Name, delta); err == nil ||
		!strings.Contains(err.Error(), "legacy") {
		t.Fatalf("legacy delta import: err = %v", err)
	}
}
