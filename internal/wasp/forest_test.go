package wasp

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/vmm"
)

// randSnapshotProgram builds a guest that scribbles a random store
// corpus into the heap, snapshots, scribbles more, then sums a few
// probe addresses into the return slot — so the result depends on both
// the captured image and the post-snapshot restore behaviour.
func randSnapshotProgram(rng *rand.Rand) string {
	var b strings.Builder
	addr := func() uint64 { return 0x5000 + uint64(rng.Intn(0x2FF0))&^7 }
	probes := make([]uint64, 0, 6)
	for i := 0; i < 10+rng.Intn(20); i++ {
		a := addr()
		fmt.Fprintf(&b, "\tmovi rbx, %#x\n\tmovi rax, %d\n\tstore [rbx], rax\n", a, rng.Intn(1<<30))
		if len(probes) < 6 && rng.Intn(3) == 0 {
			probes = append(probes, a)
		}
	}
	b.WriteString("\tout 0x08, rdi\n") // snapshot()
	for i := 0; i < rng.Intn(10); i++ {
		fmt.Fprintf(&b, "\tmovi rbx, %#x\n\tmovi rax, %d\n\tstore [rbx], rax\n", addr(), rng.Intn(1<<30))
	}
	b.WriteString("\tmovi rcx, 0\n")
	for _, a := range probes {
		fmt.Fprintf(&b, "\tmovi rbx, %#x\n\tload rax, [rbx]\n\tadd rcx, rax\n", a)
	}
	b.WriteString(`	movi rbx, 0x4000
	store [rbx], rcx
	movi rdi, 0
	out 0x00, rdi
	hlt
`)
	return guest.WrapLongMode(b.String())
}

// snapshotMemAndState materializes a named snapshot's full guest memory
// and returns it with the architectural register file, regardless of
// representation (forest layer or legacy deep copy).
func snapshotMemAndState(t *testing.T, w *Wasp, name string) ([]byte, any) {
	t.Helper()
	snap := w.backends[0].snapshots.get(name)
	if snap == nil {
		t.Fatalf("no snapshot for %q", name)
	}
	defer snap.release()
	mem := make([]byte, snap.memLen())
	if snap.layer != nil {
		snap.layer.MaterializeInto(mem)
	} else {
		copy(mem, snap.mem)
	}
	return mem, snap.state
}

// TestForestRestoreMatchesLegacyRestore is the satellite-3 property:
// over random store corpora, a forest-backed Wasp and a legacy
// deep-copy Wasp (WithLegacySnapshots) must agree bit-for-bit — same
// results and virtual cycles on cold, warm-restore and COW-reset runs,
// and the same captured snapshot (full memory and register file).
func TestForestRestoreMatchesLegacyRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		src := randSnapshotProgram(rng)
		cow := trial%2 == 1 // alternate full-restore and COW-reset flavours
		cfg := RunConfig{Snapshot: true, RetBytes: 8, Args: le64(uint64(trial))}

		type outcome struct {
			rets   [][]byte
			cycles []uint64
			mem    []byte
			state  any
		}
		exec := func(legacy bool) outcome {
			w := New(WithCOW(cow), WithLegacySnapshots(legacy))
			name := fmt.Sprintf("prop-%d-legacy-%v", trial, legacy)
			img := guest.MustFromAsm(name, src)
			var o outcome
			for run := 0; run < 3; run++ { // cold, warm, warm
				clk := cycles.NewClock()
				res, err := w.Run(img, cfg, clk)
				if err != nil {
					t.Fatalf("trial %d legacy=%v run %d: %v", trial, legacy, run, err)
				}
				o.rets = append(o.rets, res.Ret)
				o.cycles = append(o.cycles, clk.Now())
			}
			o.mem, o.state = snapshotMemAndState(t, w, name)
			return o
		}

		forest := exec(false)
		legacy := exec(true)
		for run := range forest.rets {
			if !bytes.Equal(forest.rets[run], legacy.rets[run]) {
				t.Fatalf("trial %d run %d: results diverge: forest %x, legacy %x",
					trial, run, forest.rets[run], legacy.rets[run])
			}
			if forest.cycles[run] != legacy.cycles[run] {
				t.Fatalf("trial %d run %d: virtual cycles diverge: forest %d, legacy %d",
					trial, run, forest.cycles[run], legacy.cycles[run])
			}
		}
		if !bytes.Equal(forest.mem, legacy.mem) {
			for i := range forest.mem {
				if forest.mem[i] != legacy.mem[i] {
					t.Fatalf("trial %d: snapshot memory diverges at %#x (page %d): forest %#x, legacy %#x",
						trial, i, i/vmm.PageSize, forest.mem[i], legacy.mem[i])
				}
			}
			t.Fatalf("trial %d: snapshot memory lengths diverge: %d vs %d",
				trial, len(forest.mem), len(legacy.mem))
		}
		if forest.state != legacy.state {
			t.Fatalf("trial %d: snapshot register files diverge", trial)
		}
	}
}

// TestForestTenantClonesAreThinDeltas: WithName clones of one image
// share a content key, so every clone after the first captures as a
// delta over the registered base layer — marginal store cost is the
// pages the tenant actually changed (its argument page), not the image.
func TestForestTenantClonesAreThinDeltas(t *testing.T) {
	w := New()
	base := guest.MustFromAsm("tenant-base", guest.WrapLongMode(`
	out 0x08, rdi
	movi rbx, 0x0
	load rax, [rbx]
	add rax, rax
	movi rbx, 0x4000
	store [rbx], rax
	movi rdi, 0
	out 0x00, rdi
	hlt
`))
	const tenants = 16
	for i := 0; i < tenants; i++ {
		img := base.WithName(fmt.Sprintf("tenant-%03d", i))
		cfg := RunConfig{Snapshot: true, RetBytes: 8, Args: le64(uint64(i + 1))}
		res, err := w.Run(img, cfg, cycles.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		if got := fromLE64(res.Ret); got != uint64(2*(i+1)) {
			t.Fatalf("tenant %d: ret %d", i, got)
		}
	}
	st := w.ForestStats()
	if st.Snapshots != tenants {
		t.Fatalf("snapshots %d, want %d", st.Snapshots, tenants)
	}
	if st.BaseLayers != 1 {
		t.Fatalf("base layers %d, want 1 shared base", st.BaseLayers)
	}
	if st.DeltaSnapshots != tenants-1 {
		t.Fatalf("delta snapshots %d, want %d", st.DeltaSnapshots, tenants-1)
	}
	// Each tenant differs from the base only in its argument page (and
	// possibly the stack page holding transient boot state).
	if avg := float64(st.DeltaPages) / float64(tenants-1); avg > 3 {
		t.Fatalf("average delta %.1f pages/tenant; clones are not thin", avg)
	}
	if !w.HasBaseLayer(base.ContentKey()) {
		t.Fatal("base layer not registered under the image content key")
	}
	if err := w.VerifyForest(); err != nil {
		t.Fatal(err)
	}
}

// TestForestPadVariantCapturesStandalone: WithPad keeps the content key
// but changes guest geometry; grafting its delta onto the differently
// sized base would corrupt, so it must capture as its own base.
func TestForestPadVariantCapturesStandalone(t *testing.T) {
	w := New()
	img := cowImg("pad-base")
	cfg := RunConfig{Snapshot: true, RetBytes: 8}
	if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	padded := img.WithPad(1 << 20).WithName("pad-big")
	res, err := w.Run(padded, cfg, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if got := fromLE64(res.Ret); got != 1 {
		t.Fatalf("padded variant ret %d", got)
	}
	// Warm run restores through the standalone layer correctly.
	res, err = w.Run(padded, cfg, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if got := fromLE64(res.Ret); got != 1 {
		t.Fatalf("padded warm run ret %d; geometry misgraft?", got)
	}
	if err := w.VerifyForest(); err != nil {
		t.Fatal(err)
	}
}

// TestForestConcurrentTenants is the -race gate for the shared forest:
// many goroutines fork tenants of two base images against one backend —
// concurrent first captures (racing to register the base), warm
// restores, re-captures via DropSnapshot, and stats/verify readers.
func TestForestConcurrentTenants(t *testing.T) {
	w := New(WithCOW(true), WithAsyncClean(true))
	imgA := cowImg("race-a")
	imgB := guest.MustFromAsm("race-b", guest.WrapLongMode(`
	out 0x08, rdi
	movi rbx, 0x0
	load rax, [rbx]
	add rax, 7
	movi rbx, 0x4000
	store [rbx], rax
	movi rdi, 0
	out 0x00, rdi
	hlt
`))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var (
					res *Result
					err error
				)
				if g%2 == 0 {
					img := imgA.WithName(fmt.Sprintf("race-a-%d-%d", g, i%5))
					res, err = w.Run(img, RunConfig{Snapshot: true, RetBytes: 8}, cycles.NewClock())
					if err == nil && fromLE64(res.Ret) != 1 {
						err = fmt.Errorf("tenant saw dirty state: %d", fromLE64(res.Ret))
					}
				} else {
					img := imgB.WithName(fmt.Sprintf("race-b-%d-%d", g, i%5))
					arg := uint64(g*100 + i)
					res, err = w.Run(img, RunConfig{Snapshot: true, RetBytes: 8, Args: le64(arg)}, cycles.NewClock())
					if err == nil && fromLE64(res.Ret) != arg+7 {
						err = fmt.Errorf("tenant %d: ret %d", arg, fromLE64(res.Ret))
					}
				}
				if err != nil {
					t.Error(err)
					return
				}
				if i%7 == 3 {
					w.DropSnapshot(fmt.Sprintf("race-a-%d-%d", g, i%5)) // force re-capture races
				}
				if i%5 == 0 {
					_ = w.ForestStats()
					if err := w.VerifyForest(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, c := range w.Cleaners() {
		c.Drain()
	}
	if err := w.VerifyForest(); err != nil {
		t.Fatal(err)
	}
}

// TestForestScrubNeverTouchesSharedPages: parking and scrubbing COW
// shells (the cleaner path) must never mutate store-owned pages. The
// base layer's digest is taken after capture and re-checked after heavy
// scrub traffic; Verify re-hashes every stored page against its key.
func TestForestScrubNeverTouchesSharedPages(t *testing.T) {
	w := New(WithCOW(true), WithAsyncClean(true))
	img := cowImg("scrub-inv")
	cfg := RunConfig{Snapshot: true, RetBytes: 8}
	if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	snap := w.backends[0].snapshots.get(img.Name)
	if snap == nil || snap.layer == nil {
		t.Fatal("expected a forest-backed snapshot")
	}
	digest := snap.layer.Digest()
	snap.release()
	for i := 0; i < 30; i++ {
		if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range w.Cleaners() {
		c.Drain()
	}
	snap = w.backends[0].snapshots.get(img.Name)
	defer snap.release()
	if snap.layer.Digest() != digest {
		t.Fatal("base layer digest changed: a scrub wrote through a shared page")
	}
	if err := w.VerifyForest(); err != nil {
		t.Fatal(err)
	}
}

// TestForestPerPlatformIsolation: each backend owns a private store and
// base registry; tenants on one platform must not populate another's.
func TestForestPerPlatformIsolation(t *testing.T) {
	w := New(WithPlatforms(vmm.KVM{}, vmm.HyperV{}))
	p0, p1 := vmm.KVM{}.Name(), vmm.HyperV{}.Name()
	img := cowImg("iso-img")
	cfg := RunConfig{Snapshot: true, RetBytes: 8}
	if _, err := w.RunOn(p0, img, cfg, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	s0 := w.ForestStatsOn(p0)
	s1 := w.ForestStatsOn(p1)
	if s0.StorePages == 0 || s0.BaseLayers != 1 {
		t.Fatalf("platform %s store not populated: %+v", p0, s0)
	}
	if s1.StorePages != 0 || s1.BaseLayers != 0 {
		t.Fatalf("platform %s store leaked cross-platform pages: %+v", p1, s1)
	}
	if w.HasBaseLayerOn(p1, img.ContentKey()) {
		t.Fatal("base layer visible on a platform it never ran on")
	}
}
