package wasp

import (
	"fmt"

	"repro/internal/obs"
)

// RegisterMetrics attaches this runtime's telemetry to a metrics
// registry as pull-model collectors, sampled only at Snapshot time:
// the shared code-cache and compiled-tier counters (CodeCacheStats),
// the per-platform snapshot-forest state (ForestStats), warm-pool
// occupancy, and the async cleaner's lifetime counters.
//
// The individual accessors — CodeCacheStats, ForestStats, PoolStatsFor,
// PoolImageStats, Cleaner's counters — remain supported for callers
// that want typed structs; the registry is the aggregation point new
// tooling should prefer, because it presents every subsystem under one
// namespace with one consistency point.
func (w *Wasp) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.RegisterCollector(func(emit func(string, float64)) {
		cs := w.CodeCacheStats()
		emit("wasp_code_entries", float64(cs.Entries))
		emit("wasp_code_merges", float64(cs.Merges))
		emit("wasp_jit_fused", float64(cs.Fused))
		emit("wasp_jit_blocks_compiled", float64(cs.BlocksCompiled))
		emit("wasp_jit_block_hits", float64(cs.BlockHits))
		emit("wasp_jit_block_deopts", float64(cs.BlockDeopts))
		emit("wasp_pool_total", float64(w.PoolTotal()))
		emit("wasp_pool_dropped", float64(w.PoolDropped()))
		for _, p := range w.Platforms() {
			name := p.Name()
			fs := w.ForestStatsOn(name)
			emit(fmt.Sprintf("wasp_forest_store_pages{platform=%s}", name), float64(fs.StorePages))
			emit(fmt.Sprintf("wasp_forest_store_bytes{platform=%s}", name), float64(fs.StoreBytes))
			emit(fmt.Sprintf("wasp_forest_dedup_hits{platform=%s}", name), float64(fs.DedupHits))
			emit(fmt.Sprintf("wasp_forest_base_layers{platform=%s}", name), float64(fs.BaseLayers))
			emit(fmt.Sprintf("wasp_forest_snapshots{platform=%s}", name), float64(fs.Snapshots))
			emit(fmt.Sprintf("wasp_forest_delta_snapshots{platform=%s}", name), float64(fs.DeltaSnapshots))
			emit(fmt.Sprintf("wasp_pool_shells{platform=%s}", name), float64(w.PoolTotalOn(name)))
			if c := w.CleanerOn(name); c != nil {
				emit(fmt.Sprintf("wasp_clean_enqueued{platform=%s}", name), float64(c.Enqueued()))
				emit(fmt.Sprintf("wasp_clean_cleaned{platform=%s}", name), float64(c.Cleaned()))
				emit(fmt.Sprintf("wasp_clean_inline_reclaims{platform=%s}", name), float64(c.InlineReclaims()))
				emit(fmt.Sprintf("wasp_clean_dropped{platform=%s}", name), float64(c.Dropped()))
				emit(fmt.Sprintf("wasp_clean_pending{platform=%s}", name), float64(c.Pending()))
			}
		}
	})
}
