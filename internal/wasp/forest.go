package wasp

import (
	"sync"

	"repro/internal/vmm"
)

// Forest-backed snapshots. Each backend owns one vmm.PageStore (the
// per-platform forest — snapshots never cross hypervisor backends, the
// same isolation invariant the deep-copy registries kept) plus a base
// registry keying shared base layers by image *content*
// (guest.Image.ContentKey): every tenant clone made with
// guest.Image.WithName hashes to the same content key, so the first
// clone's capture becomes the content's base layer and every later
// clone's snapshot is a thin delta over it.
//
// Refcount lifecycle (see internal/vmm/README.md for the full picture):
//
//   - a snapshot holds one reference on its layer; snapRegistry.put and
//     drop release the reference of the snapshot they replace or remove;
//   - the base registry holds one reference on each registered base
//     layer for the Wasp's lifetime, so dropping every tenant snapshot
//     never strands a delta's parent;
//   - every in-flight restore or export retains the layer for the
//     duration of the copy (snapRegistry.get retains; callers release),
//     so a concurrent re-capture of the same image name can never free
//     pages out from under a reader.

// baseRegistry maps image content keys to shared base layers, one per
// backend. Written once per content (first capture), read on every
// capture and graft-import.
type baseRegistry struct {
	mu    sync.RWMutex
	byKey map[string]*vmm.Layer
}

// get returns the base layer for a content key, or nil. The registry's
// own reference keeps the layer alive for the Wasp's lifetime, so
// callers inside that lifetime need not retain.
func (r *baseRegistry) get(key string) *vmm.Layer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byKey[key]
}

// register installs layer as the content's base, taking one reference.
// It reports whether the layer was installed; false means another
// capture won the race and the existing base stands.
func (r *baseRegistry) register(key string, layer *vmm.Layer) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.byKey[key]; taken {
		return false
	}
	if r.byKey == nil {
		r.byKey = make(map[string]*vmm.Layer)
	}
	layer.Retain()
	r.byKey[key] = layer
	return true
}

func (r *baseRegistry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byKey)
}

// ForestStats reports one backend's snapshot-forest state — the numbers
// behind the dedup claims of `virtine-bench -exp snapshot`.
type ForestStats struct {
	// StorePages / StoreBytes are distinct pages (and their bytes) held
	// by the backend's shared page store.
	StorePages int
	StoreBytes int64
	// DedupHits counts page insertions satisfied by an already-stored
	// page instead of new memory.
	DedupHits uint64
	// BaseLayers is the number of content-keyed shared base layers.
	BaseLayers int
	// Snapshots is the number of named snapshots in the registry;
	// DeltaSnapshots of them are thin deltas over a base layer.
	Snapshots      int
	DeltaSnapshots int
	// DeltaPages sums the pages owned by delta snapshots themselves —
	// the true marginal footprint of tenancy, before page dedup.
	DeltaPages int
}

// ForestStats reports the default backend's snapshot-forest state.
func (w *Wasp) ForestStats() ForestStats {
	return w.forestStats(w.backends[0])
}

// ForestStatsOn reports a named backend's snapshot-forest state.
func (w *Wasp) ForestStatsOn(platform string) ForestStats {
	be, err := w.backendFor(platform)
	if err != nil {
		return ForestStats{}
	}
	return w.forestStats(be)
}

func (w *Wasp) forestStats(be *backend) ForestStats {
	st := ForestStats{
		StorePages: be.forest.Pages(),
		StoreBytes: be.forest.Bytes(),
		DedupHits:  be.forest.DedupHits(),
		BaseLayers: be.bases.count(),
	}
	be.snapshots.forEach(func(name string, s *snapshot) {
		st.Snapshots++
		if s.layer != nil && s.layer.Parent() != nil {
			st.DeltaSnapshots++
			st.DeltaPages += s.layer.OwnedPages()
		}
	})
	return st
}

// VerifyForest re-hashes every backend's page store and returns the
// first corruption found — the test tripwire for the invariant that
// shared store pages are never mutated in place.
func (w *Wasp) VerifyForest() error {
	for _, be := range w.backends {
		if err := be.forest.Verify(); err != nil {
			return err
		}
	}
	return nil
}

// HasBaseLayer reports whether the default backend holds a shared base
// layer for an image content key — what a migration source asks before
// deciding to ship a delta instead of a full snapshot.
func (w *Wasp) HasBaseLayer(contentKey string) bool {
	return w.backends[0].bases.get(contentKey) != nil
}

// HasBaseLayerOn is HasBaseLayer for a named backend.
func (w *Wasp) HasBaseLayerOn(platform, contentKey string) bool {
	be, err := w.backendFor(platform)
	if err != nil {
		return false
	}
	return be.bases.get(contentKey) != nil
}
