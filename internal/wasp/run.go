package wasp

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/hypercall"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vmm"
)

// RunConfig parameterizes one virtine execution.
type RunConfig struct {
	// Policy gates hypercalls; nil means deny-all (§5.1). Exit, mark and
	// snapshot are hypervisor mechanisms and bypass policy.
	Policy hypercall.Policy
	// Env is the host environment the canned handlers act on; nil
	// provisions a fresh empty environment.
	Env *hypercall.Env
	// Handler overrides the canned handlers; nil uses Env.Handle — the
	// client-implemented hypercall handler hook of §5.1.
	Handler hypercall.Handler
	// Args is marshalled into guest memory at guest.ArgAddr before
	// entry (§6.1).
	Args []byte
	// RetBytes is how many bytes of the return-value region to copy out
	// after exit.
	RetBytes int
	// Snapshot enables the snapshot fast path for this image.
	Snapshot bool
	// MaxSteps bounds guest execution (runaway protection).
	MaxSteps uint64
}

// Result reports one virtine execution.
type Result struct {
	// Cycles is the end-to-end virtual-cycle cost of the invocation,
	// including provisioning, image/snapshot copy, execution and exits.
	Cycles uint64
	// ExitCode is the guest's exit status.
	ExitCode uint64
	// Ret is the raw return-value region (RetBytes long).
	Ret []byte
	// DataOut is the §6.5 return_data payload, if any.
	DataOut []byte
	// NetOut is what the guest sent on the virtual socket.
	NetOut []byte
	// Stdout is captured std-stream output.
	Stdout []byte
	// Marks are guest milestone timestamps (Fig 4).
	Marks []hypercall.Mark
	// Entries and IOExits count guest entries and hypercall exits.
	Entries uint64
	IOExits uint64
	// Retired counts guest instructions retired by this run (native
	// workloads retire only their boot stub).
	Retired uint64
	// BootEvents are the CPU's Table 1 milestone timestamps (absolute
	// clock values; subtract GuestEntry for in-guest offsets).
	BootEvents [cpu.NumEvents]uint64
	// GuestEntry is the clock value at the first guest entry.
	GuestEntry uint64
	// JIT is this run's compiled-tier activity delta (fused entries
	// created, traces compiled/entered/deoptimized).
	JIT cpu.JITStats
	// SnapshotUsed reports whether this run restored from a snapshot.
	SnapshotUsed bool
	// COWPages is the number of pages a copy-on-write reset copied
	// back (0 when the full snapshot was copied).
	COWPages int

	// retBuf backs Ret for the common small-RetBytes case so the
	// copy-out does not allocate separately from the Result itself.
	retBuf [64]byte
}

const defaultMaxSteps = 200_000_000

// Run executes one virtine on the default backend: provision a context,
// populate it (image boot or snapshot restore), marshal arguments, enter
// the guest, interpose on every hypercall, and tear down. All costs land
// on clk.
func (w *Wasp) Run(img *guest.Image, cfg RunConfig, clk *cycles.Clock) (*Result, error) {
	return w.RunOn("", img, cfg, clk)
}

// RunOn executes one virtine on a named hypervisor backend ("" for the
// default). The run draws shells from, and returns them to, that
// backend's pools and registries exclusively; the platform's Fig 5
// create/entry/exit costs are charged on clk. The scheduler's
// platform-affine workers call this with their pinned backend.
func (w *Wasp) RunOn(platform string, img *guest.Image, cfg RunConfig, clk *cycles.Clock) (*Result, error) {
	be, err := w.backendFor(platform)
	if err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = hypercall.DenyAll{}
	}
	if cfg.Env == nil {
		cfg.Env = hypercall.NewEnv()
	}
	if cfg.Handler == nil {
		cfg.Handler = cfg.Env
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = defaultMaxSteps
	}
	cfg.Env.NowCycles = clk.Now
	cfg.Env.Charge = clk.Advance

	start := clk.Now()
	memBytes := img.MemBytes()

	// COW resets apply to interpreted guests with snapshotting on. COW
	// shells are image- AND backend-bound: a context parked after a KVM
	// run only ever serves the image's next KVM run.
	cowEligible := w.cow && cfg.Snapshot && w.snapEnable && img.Native == nil
	var ctx *vmm.Context
	resident := false
	if cowEligible {
		if c := be.cowShells.take(img.Name); c != nil {
			ctx = c
			resident = true
			clk.Advance(cycles.PoolAcquire)
			ctx.Clock = clk
			ctx.CPU.Clock = clk
			if tr := w.tracer; tr.Enabled() {
				tr.Instant(obs.ControlLane, obs.KindShell, "shell-cow",
					clk.Now(), 0, uint64(memBytes), 0)
			}
		}
	}
	if ctx == nil {
		ctx = w.acquire(be, memBytes, clk)
	}
	if tr := w.tracer; tr.Enabled() {
		// Tier transitions (trace compiles, deopts) batch into the CPU's
		// bounded log during the run — the dirty-span pattern — and drain
		// into the tracer at run end, so the guest hot loop never pays an
		// emit. TierTrace is reset before release: contexts are pooled.
		ctx.CPU.TierTrace = true
		defer func() {
			for _, te := range ctx.CPU.TierLog {
				name := "jit-compile"
				if te.Deopt {
					name = "jit-deopt"
				}
				tr.Instant(obs.ControlLane, obs.KindTier, name, te.Cycle, 0, te.PC, 0)
			}
			ctx.CPU.TierLog = ctx.CPU.TierLog[:0]
			ctx.CPU.TierTrace = false
		}()
	}
	ctx.CPU.Legacy = w.legacyInterp
	ctx.CPU.NoJIT = w.noJIT
	if w.pairProf != nil {
		ctx.CPU.PairProf = make(map[uint16]uint64)
	}
	parked := false
	defer func() {
		if !parked {
			w.release(ctx)
		}
	}()

	ctx.FirstEntry = 0
	retired0 := ctx.CPU.Retired
	stats0 := ctx.CPU.Stats
	res := &Result{}
	var snap *snapshot
	if cfg.Snapshot && w.snapEnable {
		// get retains the snapshot's layer for the life of this run, so
		// a concurrent re-capture of the same image can never release
		// store pages this restore still reads from.
		snap = be.snapshots.get(img.Name)
		defer snap.release()
	}
	if snap == nil {
		resident = false // nothing to reset against
	}

	if snap != nil {
		if resident {
			// COW reset (§7.2): the context already holds the snapshot
			// image; copy back only the pages dirtied since the
			// snapshot point — faulting each page in from the nearest
			// layer of the snapshot forest that owns it (or the private
			// deep copy under WithLegacySnapshots). Each restored
			// page's decoded code must be invalidated here: the
			// write-time invalidation only covered entries that existed
			// when the guest dirtied the page, not decodes re-created
			// afterwards from the modified bytes.
			pages := ctx.DirtyPages()
			snapLen := snap.memLen()
			for _, p := range pages {
				lo := p * vmm.PageSize
				hi := lo + vmm.PageSize
				if hi > snapLen {
					hi = snapLen
				}
				if lo < snapLen {
					snap.restorePage(p, ctx.Mem[lo:hi])
					ctx.CPU.InvalidateCode(uint64(lo), hi-lo)
				}
			}
			clk.Advance(cycles.MemcpyCost(len(pages) * vmm.PageSize))
			clk.Advance(uint64(len(pages)) * cycles.COWResetPerPage)
			ctx.ClearDirty()
			res.COWPages = len(pages)
			if tr := w.tracer; tr.Enabled() {
				tr.Instant(obs.ControlLane, obs.KindSnapshot, "snap-cow-reset",
					clk.Now(), 0, uint64(len(pages)), 0)
			}
		} else {
			// Fast path (Fig 7): restore the snapshot — one memcpy of
			// the captured footprint — and resume at the snapshot
			// point. Forest-backed snapshots materialize through the
			// layer chain; the charged cost is identical (the restored
			// byte count is the same), so virtual cycles do not depend
			// on the snapshot representation.
			if snap.layer != nil {
				snap.layer.MaterializeInto(ctx.Mem)
			} else {
				copy(ctx.Mem, snap.mem)
			}
			clk.Advance(cycles.MemcpyCost(snap.captured))
			ctx.ClearDirty()
			if tr := w.tracer; tr.Enabled() {
				tr.Instant(obs.ControlLane, obs.KindSnapshot, "snap-restore",
					clk.Now(), 0, uint64(snap.captured), 0)
			}
		}
		ctx.CPU.Restore(snap.state)
		clk.Advance(cycles.GuestLoadSetup)
		res.SnapshotUsed = true
	} else {
		if err := ctx.Load(img.Code, img.Origin, img.Entry, img.Mode); err != nil {
			return nil, err
		}
		// Padding is part of the image payload (Fig 12): it is copied
		// with the image even though it is all zeros.
		clk.Advance(cycles.MemcpyCost(img.Pad))
		clk.Advance(cycles.GuestLoadSetup)
	}

	// Adopt the image's predecoded code pages (decode once per content,
	// not once per run — renamed tenant clones share the entry). Adoption
	// verifies page content against guest memory, so it is sound for cold
	// loads, snapshot restores, and COW resets alike; under the legacy
	// interpreter the cache is unused.
	if !w.legacyInterp {
		if cc := w.codes.get(img.ContentKey()); !cc.Empty() {
			ctx.CPU.AdoptCode(cc)
		}
	}

	// Marshal arguments at guest.ArgAddr (§6.1).
	if len(cfg.Args) > 0 {
		if len(cfg.Args) > guest.ArgMax {
			return nil, fmt.Errorf("wasp: argument blob %d exceeds %d", len(cfg.Args), guest.ArgMax)
		}
		copy(ctx.Mem[guest.ArgAddr:], cfg.Args)
		ctx.HostWrite(guest.ArgAddr, len(cfg.Args))
		clk.Advance(cycles.MemcpyCost(len(cfg.Args)))
	}

	gm := &guestMem{mem: ctx.Mem, clk: clk, mark: ctx.HostWrite}

	// Native images restored from a post-boot snapshot skip the CPU
	// entirely; otherwise run the guest (boot stub or full program).
	restoredNative := snap != nil && snap.booted && img.Native != nil
	if !restoredNative {
		if err := w.runGuest(be, ctx, img, &cfg, gm, res, clk); err != nil {
			return nil, err
		}
	}

	if img.Native != nil && !cfg.Env.Exited {
		nctx := &NativeCtx{
			wasp: w, be: be, img: img, ctx: ctx, cfg: &cfg, clk: clk,
			env: cfg.Env, gm: gm, res: res,
		}
		if snap != nil {
			nctx.restored = snap.native
		}
		clk.Advance(be.platform.EntryCost())
		if ctx.FirstEntry == 0 {
			ctx.FirstEntry = clk.Now()
		}
		ctx.Entries++
		if err := img.Native(nctx); err != nil {
			return nil, fmt.Errorf("wasp: native workload: %w", err)
		}
		clk.Advance(be.platform.ExitCost())
	}

	if cfg.RetBytes > 0 {
		if cfg.RetBytes > guest.RetMax {
			return nil, fmt.Errorf("wasp: return size %d exceeds %d", cfg.RetBytes, guest.RetMax)
		}
		src := ctx.Mem[guest.RetAddr : guest.RetAddr+uint64(cfg.RetBytes)]
		if cfg.RetBytes <= len(res.retBuf) {
			copy(res.retBuf[:], src)
			res.Ret = res.retBuf[:cfg.RetBytes:cfg.RetBytes]
		} else {
			res.Ret = append([]byte(nil), src...)
		}
	}
	res.ExitCode = cfg.Env.ExitCode
	res.DataOut = cfg.Env.DataOut
	res.NetOut = append([]byte(nil), cfg.Env.NetOut.Bytes()...)
	res.Stdout = append([]byte(nil), cfg.Env.Stdout.Bytes()...)
	// Milestones are measured "inside the virtual context" (Fig 4):
	// rebase them on the first guest entry of this run.
	res.Marks = append([]hypercall.Mark(nil), cfg.Env.Marks...)
	for i := range res.Marks {
		if res.Marks[i].Cycle >= ctx.FirstEntry {
			res.Marks[i].Cycle -= ctx.FirstEntry
		}
	}
	res.Entries = ctx.Entries
	res.IOExits = ctx.ExitsIO
	res.Retired = ctx.CPU.Retired - retired0
	res.BootEvents = ctx.CPU.Events
	res.GuestEntry = ctx.FirstEntry
	res.Cycles = clk.Now() - start
	// Compiled-tier activity: contexts are pooled, so the per-CPU
	// counters are cumulative across tenants — report this run's delta
	// and fold it into the Wasp-lifetime aggregate.
	res.JIT = cpu.JITStats{
		Fused:          ctx.CPU.Stats.Fused - stats0.Fused,
		BlocksCompiled: ctx.CPU.Stats.BlocksCompiled - stats0.BlocksCompiled,
		BlockHits:      ctx.CPU.Stats.BlockHits - stats0.BlockHits,
		BlockDeopts:    ctx.CPU.Stats.BlockDeopts - stats0.BlockDeopts,
	}
	w.jitFused.Add(res.JIT.Fused)
	w.jitCompiled.Add(res.JIT.BlocksCompiled)
	w.jitHits.Add(res.JIT.BlockHits)
	w.jitDeopts.Add(res.JIT.BlockDeopts)
	if tr := w.tracer; tr.Enabled() {
		// One summary span per guest run: the interp/JIT tier activity
		// (arg0 = traces compiled, arg1 = deopts) over the run's whole
		// virtual window.
		tr.Span(obs.ControlLane, obs.KindGuest, img.Name,
			start, clk.Now(), 0, res.JIT.BlocksCompiled, res.JIT.BlockDeopts)
	}
	if w.pairProf != nil && ctx.CPU.PairProf != nil {
		w.pairMu.Lock()
		for k, n := range ctx.CPU.PairProf {
			w.pairProf[k] += n
		}
		w.pairMu.Unlock()
		ctx.CPU.PairProf = nil // the context returns to a shared pool
	}
	// Harvest newly decoded pages into the per-image registry so the
	// next run — on any shell — starts predecoded. On the warm path
	// every page was adopted and nothing new was decoded, so the
	// freeze/merge (and its registry write lock) is skipped entirely.
	if !w.legacyInterp && ctx.CPU.CodeNew() {
		w.codes.merge(img.ContentKey(), ctx.CPU.ShareCode())
	}
	if cowEligible && be.snapshots.has(img.Name) {
		// Park the context for the image's next COW reset on this
		// backend; if one is already parked, recycle through the pool.
		parked = true
		if !be.cowShells.park(img.Name, ctx) {
			w.release(ctx)
		}
	}
	return res, nil
}

// runGuest drives the vCPU until halt or guest exit(), interposing on
// every hypercall.
func (w *Wasp) runGuest(be *backend, ctx *vmm.Context, img *guest.Image, cfg *RunConfig, gm *guestMem, res *Result, clk *cycles.Clock) error {
	for {
		ex := ctx.Run(cfg.MaxSteps)
		switch ex.Reason {
		case cpu.ExitHalt:
			return nil
		case cpu.ExitFault:
			return fmt.Errorf("wasp: virtine %s faulted: %w", img.Name, ex.Err)
		case cpu.ExitIO:
			done, err := w.serviceHypercall(be, ctx, img, cfg, gm, res, ex, clk)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
		default:
			return fmt.Errorf("wasp: virtine %s: unexpected exit %v", img.Name, ex.Reason)
		}
	}
}

// serviceHypercall is the interposition layer (§5.1): decode the call
// from the vCPU registers, consult the client policy, dispatch to the
// handler, write the result into RAX, and resume.
func (w *Wasp) serviceHypercall(be *backend, ctx *vmm.Context, img *guest.Image, cfg *RunConfig, gm *guestMem, res *Result, ex *cpu.Exit, clk *cycles.Clock) (done bool, err error) {
	clk.Advance(cycles.HypercallDispatch)
	regs := &ctx.CPU.Regs
	call := hypercall.Args{
		Nr: ex.Port,
		A0: regs[isa.RDI], A1: regs[isa.RSI], A2: regs[isa.RDX],
		A3: regs[isa.R10], A4: regs[isa.R8], A5: regs[isa.R9],
	}

	// Mechanism calls bypass policy: exit is always available (§5.1),
	// mark is hypervisor instrumentation, and snapshot is the §5.2
	// mechanism the language extensions rely on by default.
	mechanism := call.Nr == hypercall.NrExit || call.Nr == hypercall.NrMark || call.Nr == hypercall.NrSnapshot
	if !mechanism && !cfg.Policy.Allow(call.Nr) {
		return false, fmt.Errorf("wasp: virtine %s: %s: %w", img.Name, hypercall.Name(call.Nr), hypercall.ErrDenied)
	}

	if call.Nr == hypercall.NrSnapshot && cfg.Snapshot && w.snapEnable {
		// Capture the reset state: guest memory up to the image
		// footprint plus the stack, and the architectural state. The
		// copy is charged — the paper's Fig 11 snapshot bars include
		// the initial capture overhead.
		w.capture(be, ctx, img, nil, false, clk)
	}

	ret, herr := cfg.Handler.Handle(call, gm)
	if herr != nil {
		return false, fmt.Errorf("wasp: virtine %s: %s failed: %w", img.Name, hypercall.Name(call.Nr), herr)
	}
	if ex.In {
		regs[ex.Reg] = ret
	} else {
		regs[isa.RAX] = ret
	}
	if cfg.Env.Exited {
		return true, nil
	}
	return false, nil
}

// capture stores a snapshot of the context for img in the backend's
// registry. The memory captured is the image footprint plus the stack
// region — what the paper's memcpy-based reset copies (§6.2); the
// charged cost scales with image size regardless of representation.
//
// Forest mode (the default) captures into the backend's
// content-addressed snapshot forest: the captured windows are hashed
// page-by-page into the shared store, deduplicated against every page
// already stored, and — when the backend already holds a base layer for
// this image *content* — recorded as a thin delta owning only the pages
// that differ from the base. The first capture of a content becomes its
// shared base layer, so tenant clones made with guest.Image.WithName
// cost their delta, not the image.
func (w *Wasp) capture(be *backend, ctx *vmm.Context, img *guest.Image, native any, booted bool, clk *cycles.Clock) {
	foot := img.Footprint() + img.ExtraHeap
	if foot > len(ctx.Mem) {
		foot = len(ctx.Mem)
	}
	stackStart := len(ctx.Mem) - guest.StackReserve
	if stackStart < foot {
		stackStart = foot
	}
	captured := foot + (len(ctx.Mem) - stackStart)
	snap := &snapshot{
		contentKey: img.ContentKey(),
		captured:   captured,
		state:      ctx.CPU.Save(),
		native:     native,
		booted:     booted,
	}
	if w.legacySnaps {
		// Legacy deep copy: [0, foot) and the stack in one private
		// buffer sized like the full guest so restore is a straight copy.
		mem := make([]byte, len(ctx.Mem))
		copy(mem[:foot], ctx.Mem[:foot])
		copy(mem[stackStart:], ctx.Mem[stackStart:])
		snap.mem = mem
	} else {
		windows := []vmm.Window{{Lo: 0, Hi: foot}, {Lo: stackStart, Hi: len(ctx.Mem)}}
		base := be.bases.get(img.ContentKey())
		if base != nil && base.MemLen() != len(ctx.Mem) {
			// Same content at a different geometry (e.g. a WithPad
			// variant): capture standalone rather than misgraft.
			base = nil
		}
		snap.layer = vmm.CaptureLayer(be.forest, base, ctx.Mem, windows)
		if base == nil {
			be.bases.register(img.ContentKey(), snap.layer)
		}
	}
	clk.Advance(cycles.MemcpyCost(captured))
	ctx.ClearDirty()
	be.snapshots.put(img.Name, snap)
	if tr := w.tracer; tr.Enabled() {
		tr.Instant(obs.ControlLane, obs.KindSnapshot, "snap-capture",
			clk.Now(), 0, uint64(captured), 0)
	}
}
