package wasp

import (
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/vmm"
)

// WithPlatforms must partition the shell pools per backend: a run on
// KVM parks its shell in the KVM pool only, and a subsequent Hyper-V
// run pays a cold create on its own platform rather than stealing the
// KVM shell.
func TestPerPlatformPoolsArePartitioned(t *testing.T) {
	w := New(WithPlatforms(vmm.KVM{}, vmm.HyperV{}))
	img := guest.RealModeHalt()
	mem := img.MemBytes()

	if _, err := w.Run(img, RunConfig{}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	if got := w.PoolSizeOn("kvm", mem); got != 1 {
		t.Fatalf("kvm pool = %d shells after a kvm run, want 1", got)
	}
	if got := w.PoolSizeOn("hyper-v", mem); got != 0 {
		t.Fatalf("hyper-v pool = %d shells after a kvm run, want 0", got)
	}

	// The Hyper-V run must cold-create (charging HVCreatePartition),
	// not reuse the parked KVM shell.
	clk := cycles.NewClock()
	if _, err := w.RunOn("hyper-v", img, RunConfig{}, clk); err != nil {
		t.Fatal(err)
	}
	if clk.Now() < cycles.HVCreatePartition {
		t.Fatalf("hyper-v run cost %d cycles, below its create cost — it stole a warm shell", clk.Now())
	}
	if got := w.PoolSizeOn("kvm", mem); got != 1 {
		t.Fatalf("kvm pool = %d after the hyper-v run, want its shell untouched", got)
	}
	if got := w.PoolSizeOn("hyper-v", mem); got != 1 {
		t.Fatalf("hyper-v pool = %d after its run, want 1", got)
	}
	if got := w.PoolTotal(); got != 2 {
		t.Fatalf("PoolTotal = %d, want 2 (one shell per backend)", got)
	}

	// Warm on the right backend now: a second Hyper-V run must cost far
	// less than a create.
	clk = cycles.NewClock()
	if _, err := w.RunOn("hyper-v", img, RunConfig{}, clk); err != nil {
		t.Fatal(err)
	}
	if clk.Now() >= cycles.HVCreatePartition {
		t.Fatalf("warm hyper-v run cost %d cycles, want a pooled acquire", clk.Now())
	}
}

// Snapshots are captured per backend: the first run of an image on each
// platform pays its own capture; neither sees the other's registry.
func TestPerPlatformSnapshotsArePartitioned(t *testing.T) {
	w := New(WithPlatforms(vmm.KVM{}, vmm.HyperV{}))
	// The guest snapshots (out 0x08) and exits, so the first run on a
	// backend captures and later runs on that backend restore.
	img := guest.MustFromAsm("plat-snap", guest.WrapLongMode(`
	out 0x08, rax
	movi rdi, 7
	out 0x00, rdi
	hlt
`))
	cfg := RunConfig{Snapshot: true}

	if _, err := w.RunOn("kvm", img, cfg, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	if !w.HasSnapshotOn("kvm", img.Name) {
		t.Fatal("kvm registry missing the captured snapshot")
	}
	if w.HasSnapshotOn("hyper-v", img.Name) {
		t.Fatal("hyper-v registry saw the kvm-side snapshot")
	}

	// First Hyper-V run must boot cold (no snapshot restore), then
	// capture into its own registry.
	res, err := w.RunOn("hyper-v", img, cfg, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotUsed {
		t.Fatal("first hyper-v run restored a snapshot it never captured")
	}
	if !w.HasSnapshotOn("hyper-v", img.Name) {
		t.Fatal("hyper-v registry missing its own capture")
	}
	res, err = w.RunOn("hyper-v", img, cfg, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !res.SnapshotUsed {
		t.Fatal("second hyper-v run should restore its backend's snapshot")
	}
}

// PrewarmOn and ObserveLoadOn act on the named backend only.
func TestPrewarmOnIsPerBackend(t *testing.T) {
	w := New(WithPlatforms(vmm.KVM{}, vmm.HyperV{}))
	const mem = 64 << 10
	if added := w.PrewarmOn("hyper-v", mem, 3); added != 3 {
		t.Fatalf("PrewarmOn added %d shells, want 3", added)
	}
	if got := w.PoolSizeOn("hyper-v", mem); got != 3 {
		t.Fatalf("hyper-v pool = %d, want 3", got)
	}
	if got := w.PoolSizeOn("kvm", mem); got != 0 {
		t.Fatalf("kvm pool = %d, want 0 (prewarm must not leak across backends)", got)
	}
	if added := w.PrewarmOn("xen", mem, 3); added != 0 {
		t.Fatal("prewarming an unknown platform must be a no-op")
	}
}

// RunOn with an unknown platform fails fast with a useful error.
func TestRunOnUnknownPlatform(t *testing.T) {
	w := New()
	_, err := w.RunOn("xen", guest.RealModeHalt(), RunConfig{}, cycles.NewClock())
	if err == nil || !strings.Contains(err.Error(), "xen") {
		t.Fatalf("err = %v, want unknown-platform error naming xen", err)
	}
}

// Each backend gets its own Wasp+CA cleaner, and a released shell is
// scrubbed back into the pool of the platform it ran on.
func TestPerPlatformCleaners(t *testing.T) {
	w := New(WithPlatforms(vmm.KVM{}, vmm.HyperV{}), WithAsyncClean(true))
	if got := len(w.Cleaners()); got != 2 {
		t.Fatalf("Cleaners() = %d, want one per backend", got)
	}
	if w.CleanerOn("kvm") == w.CleanerOn("hyper-v") {
		t.Fatal("backends must not share a cleaner")
	}
	img := guest.RealModeHalt()
	if _, err := w.RunOn("hyper-v", img, RunConfig{}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	w.CleanerOn("hyper-v").Drain()
	if got := w.PoolSizeOn("hyper-v", img.MemBytes()); got != 1 {
		t.Fatalf("hyper-v pool = %d after drain, want its scrubbed shell back", got)
	}
	if got := w.PoolSizeOn("kvm", img.MemBytes()); got != 0 {
		t.Fatalf("kvm pool = %d, want 0 (cleaner crossed platforms)", got)
	}
}

// Content-hash keyed decoded-code sharing: tenant clones made with
// WithName must decode once per content, not once per name. The merge
// counter is the decode-harvest count — a second name over the same
// bytes must not add an entry or a merge.
func TestCodeCacheSharedAcrossTenantClones(t *testing.T) {
	w := New()
	img := guest.MinimalHalt()
	if _, err := w.Run(img, RunConfig{}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	cs := w.CodeCacheStats()
	if cs.Entries != 1 || cs.Merges != 1 {
		t.Fatalf("after first run: entries=%d merges=%d, want 1/1", cs.Entries, cs.Merges)
	}

	clone := img.WithName(img.Name + "@tenant-b")
	res, err := w.Run(clone, RunConfig{}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("clone run exit = %d", res.ExitCode)
	}
	cs = w.CodeCacheStats()
	if cs.Entries != 1 || cs.Merges != 1 {
		t.Fatalf("after clone run: entries=%d merges=%d, want 1/1 (clone re-decoded)", cs.Entries, cs.Merges)
	}

	// A genuinely different image must get its own entry.
	other := guest.MinimalHaltProtected()
	if _, err := w.Run(other, RunConfig{}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	if cs = w.CodeCacheStats(); cs.Entries != 2 {
		t.Fatalf("after a distinct image: entries=%d, want 2", cs.Entries)
	}
}

// ContentKey must ignore names and padding but track content.
func TestContentKeySemantics(t *testing.T) {
	a := guest.MinimalHalt()
	if a.ContentKey() != a.WithName("renamed").ContentKey() {
		t.Fatal("renamed clone must share its source's content key")
	}
	if a.ContentKey() != a.WithPad(1<<20).ContentKey() {
		t.Fatal("padding must not change the content key (pad pages hold no code)")
	}
	if a.ContentKey() == guest.MinimalHaltProtected().ContentKey() {
		t.Fatal("different binaries must not share a content key")
	}
}
