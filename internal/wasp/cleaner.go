package wasp

import (
	"sync"
	"sync/atomic"

	"repro/internal/cycles"
	"repro/internal/obs"
)

// Cleaner is the Wasp+CA background cleaner (§5.2, Fig 8). Under
// WithAsyncClean the release path does no zeroing at all: the dirty
// shell is parked on the cleaner's queue and scrubbed off the measured
// path by one of three lanes:
//
//   - a self-spawning background drain goroutine — the paper's
//     dedicated cleaning thread. It exists only while there is a
//     backlog, so an idle runtime holds no goroutine;
//   - an idle scheduler worker (internal/sched's low-priority lane)
//     calling DrainOne between tickets;
//   - the virtual-mode scheduler calling DrainAt, which models the
//     cleaner as one more virtual core: every scrub advances the
//     cleaner's own clock by the zeroing cost, so the work is fully
//     accounted (and measurable via Cycles) without ever landing on a
//     request clock.
//
// Acquire-side contract: a pooled shell handed out under async cleaning
// is always already clean. When the warm pool is empty but dirty or
// in-flight shells exist for the size class, reclaim bridges the gap so
// the caller never pays a cold create for a shell the cleaner simply
// has not reached yet.
type Cleaner struct {
	// pools is the owning backend's shell cache: under multi-platform
	// runtimes each backend has its own cleaner, so a dirty shell is
	// always scrubbed back into the pool of the platform it ran on.
	pools *shellPools

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []dirtyShell
	queued   map[int]int // per size class: shells waiting on the queue
	inflight map[int]int // per size class: shells being scrubbed right now
	running  bool        // background drain goroutine active
	driven   bool        // an external driver (virtual scheduler) owns draining

	// vclk is the dedicated virtual cleaner core's timeline: it advances
	// to each shell's release time and then by the zeroing cost, so its
	// reading is the virtual time the core last went idle. vbusy sums
	// only the zeroing work. Only DrainAt advances either; in real mode
	// the host-side scrubbing is deliberately not charged anywhere,
	// mirroring CleanSilent's accounting.
	vclk     *cycles.Clock
	vbusy    uint64
	vdrained uint64 // shells scrubbed by the virtual core specifically

	enqueued atomic.Uint64
	cleaned  atomic.Uint64
	inline   atomic.Uint64
	dropped  atomic.Uint64

	// tr records enqueue/scrub events on the async-clean path. Set by
	// Wasp before serving (never mid-drain); nil-safe when unset.
	tr *obs.Tracer
}

type dirtyShell struct {
	memBytes int
	s        *shell
}

func newCleaner(pools *shellPools) *Cleaner {
	c := &Cleaner{pools: pools, queued: make(map[int]int), inflight: make(map[int]int), vclk: cycles.NewClock()}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// enqueue hands a dirty shell to the cleaner — this is everything the
// release path does under async cleaning. The dirty backlog is bounded
// per size class; overflow shells are dropped for the host kernel to
// reclaim.
func (c *Cleaner) enqueue(memBytes int, s *shell) {
	c.mu.Lock()
	if c.queued[memBytes] >= c.backlogCap() {
		c.mu.Unlock()
		c.dropped.Add(1)
		return
	}
	c.queue = append(c.queue, dirtyShell{memBytes, s})
	c.queued[memBytes]++
	c.enqueued.Add(1)
	if tr := c.tr; tr.Enabled() {
		var at uint64
		if s.ctx != nil && s.ctx.Clock != nil {
			at = s.ctx.Clock.Now() // release time on the shell's own clock
		}
		tr.Instant(obs.ControlLane, obs.KindClean, "clean-enqueue", at, 0, uint64(memBytes), uint64(len(c.queue)))
	}
	spawn := !c.driven && !c.running
	if spawn {
		c.running = true
	}
	c.mu.Unlock()
	if spawn {
		go c.drainLoop()
	}
}

// backlogCap bounds each size class's dirty backlog at twice its pool
// capacity: a deeper backlog could never be absorbed by the pool
// anyway, so retaining it would just pin dead guest memory. Called with
// mu held.
func (c *Cleaner) backlogCap() int { return 2 * c.pools.policy.MaxPerClass }

// drainLoop scrubs queued shells until the queue is empty or a driver
// takes over, then exits; enqueue restarts it on demand.
func (c *Cleaner) drainLoop() {
	c.mu.Lock()
	for {
		if c.driven || len(c.queue) == 0 {
			c.running = false
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		d := c.pop(0)
		c.inflight[d.memBytes]++
		c.mu.Unlock()
		c.scrub(d, false, 0)
		c.mu.Lock()
		c.inflight[d.memBytes]--
		c.cond.Broadcast()
	}
}

// pop removes and returns queue entry i. Called with mu held.
func (c *Cleaner) pop(i int) dirtyShell {
	d := c.queue[i]
	c.queue = append(c.queue[:i], c.queue[i+1:]...)
	c.queued[d.memBytes]--
	return d
}

// scrub zeroes a dirty shell off any request path. With toCaller the
// clean shell is handed back directly (reclaim); otherwise it is parked
// in the warm pool, or dropped if the size class is at capacity. at is
// the virtual cleaner core's completion time (0 on host lanes, whose
// scrubs occupy no virtual timeline).
func (c *Cleaner) scrub(d dirtyShell, toCaller bool, at uint64) *shell {
	d.s.ctx.CleanSilent()
	d.s.dirty = false
	c.cleaned.Add(1)
	if tr := c.tr; tr.Enabled() {
		name := "clean-scrub"
		if toCaller {
			name = "clean-reclaim"
		}
		tr.Instant(obs.ControlLane, obs.KindClean, name, at, 0, uint64(d.memBytes), 0)
	}
	if toCaller {
		return d.s
	}
	if !c.pools.put(d.memBytes, d.s) {
		c.dropped.Add(1)
	}
	return nil
}

// DrainOne scrubs one queued dirty shell, if any — the scheduler's
// low-priority idle-worker lane calls this between tickets. The zeroing
// runs on the caller's host thread but is never charged to a request
// clock. Reports whether a shell was scrubbed.
func (c *Cleaner) DrainOne() bool {
	c.mu.Lock()
	if len(c.queue) == 0 {
		c.mu.Unlock()
		return false
	}
	d := c.pop(0)
	c.inflight[d.memBytes]++
	c.mu.Unlock()
	c.scrub(d, false, 0)
	c.mu.Lock()
	c.inflight[d.memBytes]--
	c.cond.Broadcast()
	c.mu.Unlock()
	return true
}

// Drain scrubs every queued shell now and reports how many.
func (c *Cleaner) Drain() int {
	n := 0
	for c.DrainOne() {
		n++
	}
	return n
}

// DrainAt scrubs every queued shell on the dedicated virtual cleaner
// core: the core picks up each shell no earlier than the release time
// `at` and pays its zeroing cost in the core's own virtual time. The
// virtual-mode scheduler calls this after each serviced ticket, so
// Wasp+CA cleaning is modelled deterministically as a dedicated core
// rather than silently elided.
func (c *Cleaner) DrainAt(at uint64) int {
	n := 0
	for {
		c.mu.Lock()
		if len(c.queue) == 0 {
			c.mu.Unlock()
			return n
		}
		d := c.pop(0)
		c.inflight[d.memBytes]++
		c.vclk.AdvanceTo(at)
		cost := cycles.ZeroCost(d.memBytes)
		c.vclk.Advance(cost)
		c.vbusy += cost
		c.vdrained++
		done := c.vclk.Now()
		c.mu.Unlock()
		c.scrub(d, false, done)
		c.mu.Lock()
		c.inflight[d.memBytes]--
		c.cond.Broadcast()
		c.mu.Unlock()
		n++
	}
}

// reclaim hands the caller a clean shell for the size class when the
// warm pool has none: a queued dirty shell is scrubbed on the spot, or,
// if one is mid-scrub on another lane, the caller waits for it to land
// in the pool. The model's assumption (the paper's cleaner keeps pace
// with the release rate) is that a shell released before this acquire
// is clean by the time it is needed, so the wait is host-side only and
// nothing is charged to the run's clock. Returns nil when the class has
// neither queued nor in-flight shells.
func (c *Cleaner) reclaim(memBytes int) *shell {
	c.mu.Lock()
	for {
		for i := range c.queue {
			if c.queue[i].memBytes == memBytes {
				d := c.pop(i)
				c.mu.Unlock()
				c.inline.Add(1)
				return c.scrub(d, true, 0)
			}
		}
		if c.inflight[memBytes] == 0 {
			c.mu.Unlock()
			return nil
		}
		c.cond.Wait()
		if s := c.pools.take(memBytes); s != nil {
			c.mu.Unlock()
			return s
		}
	}
}

// SetDriven transfers drain ownership to an external driver — the
// virtual-mode scheduler, which models the cleaner as a dedicated
// virtual core. While driven, enqueue spawns no background goroutine;
// turning driving on waits for an already-running background drain to
// quiesce so every subsequent scrub is accounted deterministically by
// the driver. SetDriven(false) hands ownership back and restarts the
// background drain if a backlog remains.
func (c *Cleaner) SetDriven(on bool) {
	c.mu.Lock()
	c.driven = on
	if on {
		for c.running || c.totalInflight() > 0 {
			c.cond.Wait()
		}
		c.mu.Unlock()
		return
	}
	spawn := len(c.queue) > 0 && !c.running
	if spawn {
		c.running = true
	}
	c.mu.Unlock()
	if spawn {
		go c.drainLoop()
	}
}

// totalInflight sums in-flight scrubs across size classes. Called with
// mu held.
func (c *Cleaner) totalInflight() int {
	n := 0
	for _, v := range c.inflight {
		n += v
	}
	return n
}

// Pending reports dirty shells waiting on the queue.
func (c *Cleaner) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Cycles reports the virtual cleaner core's clock: the virtual time at
// which the dedicated core last went idle (virtual mode only).
func (c *Cleaner) Cycles() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vclk.Now()
}

// BusyCycles reports the total zeroing work the dedicated virtual core
// performed — the cost Wasp+CA moved off every request path.
func (c *Cleaner) BusyCycles() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vbusy
}

// VirtualDrains reports the shells scrubbed by the virtual cleaner core
// specifically (Cleaned also counts host-lane scrubs).
func (c *Cleaner) VirtualDrains() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vdrained
}

// Enqueued reports shells ever handed to the cleaner by release.
func (c *Cleaner) Enqueued() uint64 { return c.enqueued.Load() }

// Cleaned reports shells scrubbed off the release path, on any lane.
func (c *Cleaner) Cleaned() uint64 { return c.cleaned.Load() }

// InlineReclaims reports pool-miss acquisitions served by scrubbing a
// queued shell on the spot instead of paying a cold create.
func (c *Cleaner) InlineReclaims() uint64 { return c.inline.Load() }

// Dropped reports shells discarded to the host: backlog overflow at
// enqueue, or a full size class at park time.
func (c *Cleaner) Dropped() uint64 { return c.dropped.Load() }
