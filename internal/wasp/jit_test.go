package wasp

import (
	"sync"
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
)

// jitLoopAsm iterates enough for the cached engine to compile the loop
// body into a trace, then exits cleanly.
const jitLoopAsm = `
	movi rcx, 64
	movi rsi, 0
loop:
	add rsi, rcx
	push rcx
	pop rbx
	dec rcx
	jnz loop
	movi rdi, 0
	out 0x00, rdi
	hlt
`

func jitLoopImage(name string) *guest.Image {
	return guest.MustFromAsm(name, guest.WrapLongMode(jitLoopAsm))
}

// Compiled traces must travel through the content-keyed code registry
// exactly like decoded pages: a tenant clone of an already-run image
// enters the traces the first tenant compiled, and compiles nothing.
func TestCompiledTracesSharedAcrossTenantClones(t *testing.T) {
	w := New()
	img := jitLoopImage("jit-loop")
	// Two warm runs: the first compiles the workload's traces, the
	// second compiles the boot stub's (boot code is only recognized as
	// hot once its pages arrive pre-decoded from the registry).
	res1, err := w.Run(img, RunConfig{}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if res1.JIT.BlocksCompiled == 0 || res1.JIT.BlockHits == 0 {
		t.Fatalf("first tenant never engaged the trace tier: %+v", res1.JIT)
	}
	res2, err := w.Run(img, RunConfig{}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}

	clone := img.WithName(img.Name + "@tenant-b")
	res3, err := w.Run(clone, RunConfig{}, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if res3.ExitCode != 0 {
		t.Fatalf("clone exit = %d", res3.ExitCode)
	}
	if res3.JIT.BlocksCompiled != 0 {
		t.Fatalf("clone recompiled %d blocks (traces not shared through the registry)",
			res3.JIT.BlocksCompiled)
	}
	if res3.JIT.BlockHits == 0 {
		t.Fatalf("clone never entered a shared trace: %+v", res3.JIT)
	}

	cs := w.CodeCacheStats()
	if cs.Entries != 1 {
		t.Fatalf("registry entries = %d, want 1 (clone shares content key)", cs.Entries)
	}
	if want := res1.JIT.BlocksCompiled + res2.JIT.BlocksCompiled; cs.BlocksCompiled != want {
		t.Fatalf("lifetime BlocksCompiled = %d, want %d (warm runs only, clone adds none)",
			cs.BlocksCompiled, want)
	}
	if want := res1.JIT.BlockHits + res2.JIT.BlockHits + res3.JIT.BlockHits; cs.BlockHits != want {
		t.Fatalf("lifetime BlockHits = %d, want %d", cs.BlockHits, want)
	}
}

// Concurrent tenant clones of one image share one compiled block set
// through the registry; under -race this doubles as the data-race check
// on trace publication (copy-on-write under the page mutex, read with
// one atomic load).
func TestCompiledTraceSharingConcurrent(t *testing.T) {
	w := New()
	img := jitLoopImage("jit-race")
	// Warm: decode, compile and publish once.
	if _, err := w.Run(img, RunConfig{}, cycles.NewClock()); err != nil {
		t.Fatal(err)
	}
	const tenants = 8
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	results := make([]*Result, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clone := img.WithName(img.Name + string(rune('a'+i)))
			results[i], errs[i] = w.Run(clone, RunConfig{}, cycles.NewClock())
		}(i)
	}
	wg.Wait()
	for i := 0; i < tenants; i++ {
		if errs[i] != nil {
			t.Fatalf("tenant %d: %v", i, errs[i])
		}
		if results[i].ExitCode != 0 {
			t.Fatalf("tenant %d exit = %d", i, results[i].ExitCode)
		}
		if results[i].JIT.BlockHits == 0 {
			t.Errorf("tenant %d never entered a shared trace: %+v", i, results[i].JIT)
		}
	}
}
