package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/wasp"
)

// doubler mirrors the wasp test virtine: read arg at 0x0, double it,
// store at the return region, exit(0).
const doublerAsm = `
	movi rbx, 0x0
	load rdi, [rbx]
	add rdi, rdi
	movi rbx, 0x4000
	store [rbx], rdi
	movi rdi, 0
	out 0x00, rdi
	hlt
`

func le64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func fromLE64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestSubmitRunsVirtine(t *testing.T) {
	w := wasp.New()
	s := New(w, 4)
	defer s.Close()

	img := guest.MustFromAsm("sched-doubler", guest.WrapLongMode(doublerAsm))
	const n = 64
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tickets[i] = s.Submit(img, wasp.RunConfig{Args: le64(uint64(i)), RetBytes: 8})
	}
	for i, tk := range tickets {
		res, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if got := fromLE64(res.Ret); got != uint64(2*i) {
			t.Fatalf("ticket %d: ret = %d, want %d", i, got, 2*i)
		}
		if tk.Done <= tk.Start {
			t.Fatalf("ticket %d: empty service window [%d,%d]", i, tk.Start, tk.Done)
		}
	}
	s.Close()
	if s.Submitted() != n || s.Completed() != n {
		t.Fatalf("submitted/completed = %d/%d, want %d/%d", s.Submitted(), s.Completed(), n, n)
	}
	if s.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after drain", s.QueueDepth())
	}
	var runs uint64
	for _, r := range s.WorkerLoads() {
		runs += r
	}
	if runs != n {
		t.Fatalf("worker loads sum to %d, want %d", runs, n)
	}
	if s.Makespan() == 0 {
		t.Fatal("makespan is zero after real work")
	}
}

func TestTicketErrorPropagates(t *testing.T) {
	w := wasp.New()
	s := New(w, 2)
	defer s.Close()

	boom := errors.New("boom")
	bad := s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
		return nil, boom
	})
	good := s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
		clk.Advance(1)
		return nil, nil
	})
	if _, err := bad.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if err := WaitAll(good, bad); !errors.Is(err, boom) {
		t.Fatalf("WaitAll = %v, want boom", err)
	}
}

func TestVirtualModeDeterministicQueueing(t *testing.T) {
	const svc = 1000
	task := func(clk *cycles.Clock) (*wasp.Result, error) {
		clk.Advance(svc)
		return nil, nil
	}
	s := NewVirtual(wasp.New(), 2)

	// Three arrivals at t=0 on two workers: the third must queue behind
	// the first completion.
	t1 := s.SubmitFnAt(0, task)
	t2 := s.SubmitFnAt(0, task)
	t3 := s.SubmitFnAt(0, task)
	if err := WaitAll(t1, t2, t3); err != nil {
		t.Fatal(err)
	}
	if t1.Start != 0 || t2.Start != 0 {
		t.Fatalf("first two should start immediately, got %d/%d", t1.Start, t2.Start)
	}
	if t3.Start != svc {
		t.Fatalf("third start = %d, want %d (queued behind a busy worker)", t3.Start, svc)
	}
	if t3.QueueCycles() != svc {
		t.Fatalf("queue delay = %d, want %d", t3.QueueCycles(), svc)
	}
	if t3.DepthAtSubmit != 2 {
		t.Fatalf("depth at submit = %d, want 2 busy workers", t3.DepthAtSubmit)
	}
	// A late arrival after the backlog drains must not queue.
	t4 := s.SubmitFnAt(10*svc, task)
	if _, err := t4.Wait(); err != nil {
		t.Fatal(err)
	}
	if t4.Start != 10*svc || t4.QueueCycles() != 0 {
		t.Fatalf("idle-arrival start = %d (queue %d), want immediate", t4.Start, t4.QueueCycles())
	}
	if s.Makespan() != 11*svc {
		t.Fatalf("makespan = %d, want %d", s.Makespan(), 11*svc)
	}
}

func TestVirtualModeReproducible(t *testing.T) {
	run := func() []uint64 {
		s := NewVirtual(wasp.New(), 3)
		var starts []uint64
		for i := 0; i < 20; i++ {
			svc := uint64(100 + 37*(i%5))
			tk := s.SubmitFnAt(uint64(i)*50, func(clk *cycles.Clock) (*wasp.Result, error) {
				clk.Advance(svc)
				return nil, nil
			})
			tk.Wait()
			starts = append(starts, tk.Start)
		}
		return starts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("virtual schedule not reproducible at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCompletionCallback(t *testing.T) {
	var calls atomic.Uint64
	var queued atomic.Uint64
	w := wasp.New()
	s := New(w, 3, WithOnComplete(func(tk *Ticket) {
		calls.Add(1)
		queued.Add(tk.QueueCycles())
	}))
	defer s.Close()

	const n = 24
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tickets[i] = s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
			clk.Advance(10)
			return nil, nil
		})
	}
	if err := WaitAll(tickets...); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != n {
		t.Fatalf("callback ran %d times, want %d", calls.Load(), n)
	}
}

func TestQueueDepthAccounting(t *testing.T) {
	w := wasp.New()
	s := New(w, 1, WithQueueCap(16))
	defer s.Close()

	gate := make(chan struct{})
	blocker := s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
		<-gate
		return nil, nil
	})
	const backlog = 5
	tickets := make([]*Ticket, backlog)
	for i := range tickets {
		tickets[i] = s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
			clk.Advance(1)
			return nil, nil
		})
	}
	// The single worker is blocked, so at least the backlog is queued
	// (the blocker itself may or may not have been dequeued yet).
	if d := s.QueueDepth(); d < backlog {
		t.Fatalf("queue depth = %d with %d waiting", d, backlog)
	}
	if p := s.PeakQueueDepth(); p < backlog {
		t.Fatalf("peak queue depth = %d, want >= %d", p, backlog)
	}
	if last := tickets[backlog-1]; last.DepthAtSubmit < backlog-1 {
		t.Fatalf("last ticket depth-at-submit = %d, want >= %d", last.DepthAtSubmit, backlog-1)
	}
	close(gate)
	if err := WaitAll(append(tickets, blocker)...); err != nil {
		t.Fatal(err)
	}
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("queue depth = %d after drain", d)
	}
}

func TestUndeclaredArrivalReportsNoQueueDelay(t *testing.T) {
	w := wasp.New()
	s := New(w, 1)
	defer s.Close()
	task := func(clk *cycles.Clock) (*wasp.Result, error) {
		clk.Advance(1000)
		return nil, nil
	}
	t1 := s.SubmitFn(task)
	if _, err := t1.Wait(); err != nil {
		t.Fatal(err)
	}
	// The worker's clock now sits at 1000, but this ticket arrives at an
	// idle scheduler: it must not inherit t1's service time as "queueing".
	t2 := s.SubmitFn(task)
	if _, err := t2.Wait(); err != nil {
		t.Fatal(err)
	}
	if q := t2.QueueCycles(); q != 0 {
		t.Fatalf("idle-submit queue delay = %d, want 0", q)
	}
	// Declared arrivals keep full queue accounting.
	t3 := s.SubmitFnAt(0, task)
	if _, err := t3.Wait(); err != nil {
		t.Fatal(err)
	}
	if q := t3.QueueCycles(); q != 2000 {
		t.Fatalf("declared-arrival queue delay = %d, want 2000", q)
	}
}

func TestSubmitAfterCloseFailsCleanly(t *testing.T) {
	w := wasp.New()
	s := New(w, 2)
	ok := s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
		clk.Advance(1)
		return nil, nil
	})
	if _, err := ok.Wait(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	late := s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
		t.Error("task ran after Close")
		return nil, nil
	})
	if _, err := late.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if s.Submitted() != 1 {
		t.Fatalf("rejected submit counted: %d", s.Submitted())
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	w := wasp.New()
	s := New(w, 4)
	defer s.Close()
	img := guest.MustFromAsm("sched-stress", guest.WrapLongMode(doublerAsm))

	const submitters = 8
	const each = 16
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tickets := make([]*Ticket, each)
			for i := range tickets {
				tickets[i] = s.Submit(img, wasp.RunConfig{Args: le64(uint64(g*each + i)), RetBytes: 8})
			}
			for i, tk := range tickets {
				res, err := tk.Wait()
				if err != nil {
					errs <- err
					return
				}
				if got, want := fromLE64(res.Ret), uint64(2*(g*each+i)); got != want {
					errs <- fmt.Errorf("submitter %d ticket %d: ret %d want %d", g, i, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Completed() != submitters*each {
		t.Fatalf("completed = %d, want %d", s.Completed(), submitters*each)
	}
}

func TestPerWorkerClocksAdvanceIndependently(t *testing.T) {
	s := NewVirtual(wasp.New(), 2)
	// Alternate cheap and expensive tasks; each worker's clock must
	// reflect only its own service history.
	for i := 0; i < 4; i++ {
		svc := uint64(100)
		if i%2 == 1 {
			svc = 1000
		}
		s.SubmitFnAt(0, func(clk *cycles.Clock) (*wasp.Result, error) {
			clk.Advance(svc)
			return nil, nil
		})
	}
	loads := s.WorkerLoads()
	if loads[0]+loads[1] != 4 {
		t.Fatalf("loads = %v, want 4 total", loads)
	}
	// Worker 0 served tasks 0 and 2 (earliest-free, tie to index 0):
	// 100 then queued 1000? No — deterministic check: makespan equals
	// the busiest worker, which must exceed the cheap-only worker's sum.
	if s.Makespan() < 1000 {
		t.Fatalf("makespan = %d, want >= 1000", s.Makespan())
	}
}
