package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/wasp"
)

// doubler mirrors the wasp test virtine: read arg at 0x0, double it,
// store at the return region, exit(0).
const doublerAsm = `
	movi rbx, 0x0
	load rdi, [rbx]
	add rdi, rdi
	movi rbx, 0x4000
	store [rbx], rdi
	movi rdi, 0
	out 0x00, rdi
	hlt
`

func le64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func fromLE64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestSubmitRunsVirtine(t *testing.T) {
	w := wasp.New()
	s := New(w, 4)
	defer s.Close()

	img := guest.MustFromAsm("sched-doubler", guest.WrapLongMode(doublerAsm))
	const n = 64
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tickets[i] = s.Submit(img, wasp.RunConfig{Args: le64(uint64(i)), RetBytes: 8})
	}
	for i, tk := range tickets {
		res, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if got := fromLE64(res.Ret); got != uint64(2*i) {
			t.Fatalf("ticket %d: ret = %d, want %d", i, got, 2*i)
		}
		if tk.Done <= tk.Start {
			t.Fatalf("ticket %d: empty service window [%d,%d]", i, tk.Start, tk.Done)
		}
	}
	s.Close()
	if s.Submitted() != n || s.Completed() != n {
		t.Fatalf("submitted/completed = %d/%d, want %d/%d", s.Submitted(), s.Completed(), n, n)
	}
	if s.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after drain", s.QueueDepth())
	}
	var runs uint64
	for _, r := range s.WorkerLoads() {
		runs += r
	}
	if runs != n {
		t.Fatalf("worker loads sum to %d, want %d", runs, n)
	}
	if s.Makespan() == 0 {
		t.Fatal("makespan is zero after real work")
	}
}

func TestTicketErrorPropagates(t *testing.T) {
	w := wasp.New()
	s := New(w, 2)
	defer s.Close()

	boom := errors.New("boom")
	bad := s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
		return nil, boom
	})
	good := s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
		clk.Advance(1)
		return nil, nil
	})
	if _, err := bad.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if err := WaitAll(good, bad); !errors.Is(err, boom) {
		t.Fatalf("WaitAll = %v, want boom", err)
	}
}

func TestVirtualModeDeterministicQueueing(t *testing.T) {
	const svc = 1000
	task := func(clk *cycles.Clock) (*wasp.Result, error) {
		clk.Advance(svc)
		return nil, nil
	}
	s := NewVirtual(wasp.New(), 2)

	// Three arrivals at t=0 on two workers: the third must queue behind
	// the first completion.
	t1 := s.SubmitFnAt(0, task)
	t2 := s.SubmitFnAt(0, task)
	t3 := s.SubmitFnAt(0, task)
	if err := WaitAll(t1, t2, t3); err != nil {
		t.Fatal(err)
	}
	if t1.Start != 0 || t2.Start != 0 {
		t.Fatalf("first two should start immediately, got %d/%d", t1.Start, t2.Start)
	}
	if t3.Start != svc {
		t.Fatalf("third start = %d, want %d (queued behind a busy worker)", t3.Start, svc)
	}
	if t3.QueueCycles() != svc {
		t.Fatalf("queue delay = %d, want %d", t3.QueueCycles(), svc)
	}
	if t3.DepthAtSubmit != 2 {
		t.Fatalf("depth at submit = %d, want 2 busy workers", t3.DepthAtSubmit)
	}
	// A late arrival after the backlog drains must not queue.
	t4 := s.SubmitFnAt(10*svc, task)
	if _, err := t4.Wait(); err != nil {
		t.Fatal(err)
	}
	if t4.Start != 10*svc || t4.QueueCycles() != 0 {
		t.Fatalf("idle-arrival start = %d (queue %d), want immediate", t4.Start, t4.QueueCycles())
	}
	if s.Makespan() != 11*svc {
		t.Fatalf("makespan = %d, want %d", s.Makespan(), 11*svc)
	}
}

func TestVirtualModeReproducible(t *testing.T) {
	run := func() []uint64 {
		s := NewVirtual(wasp.New(), 3)
		var starts []uint64
		for i := 0; i < 20; i++ {
			svc := uint64(100 + 37*(i%5))
			tk := s.SubmitFnAt(uint64(i)*50, func(clk *cycles.Clock) (*wasp.Result, error) {
				clk.Advance(svc)
				return nil, nil
			})
			tk.Wait()
			starts = append(starts, tk.Start)
		}
		return starts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("virtual schedule not reproducible at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCompletionCallback(t *testing.T) {
	var calls atomic.Uint64
	var queued atomic.Uint64
	w := wasp.New()
	s := New(w, 3, WithOnComplete(func(tk *Ticket) {
		calls.Add(1)
		queued.Add(tk.QueueCycles())
	}))
	defer s.Close()

	const n = 24
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tickets[i] = s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
			clk.Advance(10)
			return nil, nil
		})
	}
	if err := WaitAll(tickets...); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != n {
		t.Fatalf("callback ran %d times, want %d", calls.Load(), n)
	}
}

func TestQueueDepthAccounting(t *testing.T) {
	w := wasp.New()
	s := New(w, 1, WithQueueCap(16))
	defer s.Close()

	gate := make(chan struct{})
	blocker := s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
		<-gate
		return nil, nil
	})
	const backlog = 5
	tickets := make([]*Ticket, backlog)
	for i := range tickets {
		tickets[i] = s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
			clk.Advance(1)
			return nil, nil
		})
	}
	// The single worker is blocked, so at least the backlog is queued
	// (the blocker itself may or may not have been dequeued yet).
	if d := s.QueueDepth(); d < backlog {
		t.Fatalf("queue depth = %d with %d waiting", d, backlog)
	}
	if p := s.PeakQueueDepth(); p < backlog {
		t.Fatalf("peak queue depth = %d, want >= %d", p, backlog)
	}
	if last := tickets[backlog-1]; last.DepthAtSubmit < backlog-1 {
		t.Fatalf("last ticket depth-at-submit = %d, want >= %d", last.DepthAtSubmit, backlog-1)
	}
	close(gate)
	if err := WaitAll(append(tickets, blocker)...); err != nil {
		t.Fatal(err)
	}
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("queue depth = %d after drain", d)
	}
}

func TestUndeclaredArrivalReportsNoQueueDelay(t *testing.T) {
	w := wasp.New()
	s := New(w, 1)
	defer s.Close()
	task := func(clk *cycles.Clock) (*wasp.Result, error) {
		clk.Advance(1000)
		return nil, nil
	}
	t1 := s.SubmitFn(task)
	if _, err := t1.Wait(); err != nil {
		t.Fatal(err)
	}
	// The worker's clock now sits at 1000, but this ticket arrives at an
	// idle scheduler: it must not inherit t1's service time as "queueing".
	t2 := s.SubmitFn(task)
	if _, err := t2.Wait(); err != nil {
		t.Fatal(err)
	}
	if q := t2.QueueCycles(); q != 0 {
		t.Fatalf("idle-submit queue delay = %d, want 0", q)
	}
	// Declared arrivals keep full queue accounting.
	t3 := s.SubmitFnAt(0, task)
	if _, err := t3.Wait(); err != nil {
		t.Fatal(err)
	}
	if q := t3.QueueCycles(); q != 2000 {
		t.Fatalf("declared-arrival queue delay = %d, want 2000", q)
	}
}

func TestSubmitAfterCloseFailsCleanly(t *testing.T) {
	w := wasp.New()
	s := New(w, 2)
	ok := s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
		clk.Advance(1)
		return nil, nil
	})
	if _, err := ok.Wait(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	late := s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
		t.Error("task ran after Close")
		return nil, nil
	})
	if _, err := late.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// The attempt is counted, as a rejection: the conservation law
	// Submitted == Completed + Rejected must hold after the drain.
	if s.Submitted() != 2 || s.Completed() != 1 || s.Rejected() != 1 {
		t.Fatalf("submitted/completed/rejected = %d/%d/%d, want 2/1/1",
			s.Submitted(), s.Completed(), s.Rejected())
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	w := wasp.New()
	s := New(w, 4)
	defer s.Close()
	img := guest.MustFromAsm("sched-stress", guest.WrapLongMode(doublerAsm))

	const submitters = 8
	const each = 16
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tickets := make([]*Ticket, each)
			for i := range tickets {
				tickets[i] = s.Submit(img, wasp.RunConfig{Args: le64(uint64(g*each + i)), RetBytes: 8})
			}
			for i, tk := range tickets {
				res, err := tk.Wait()
				if err != nil {
					errs <- err
					return
				}
				if got, want := fromLE64(res.Ret), uint64(2*(g*each+i)); got != want {
					errs <- fmt.Errorf("submitter %d ticket %d: ret %d want %d", g, i, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Completed() != submitters*each {
		t.Fatalf("completed = %d, want %d", s.Completed(), submitters*each)
	}
}

// TestQueueCyclesNoUnderflowAfterClose is the regression test for the
// uint64 wrap: a ticket with a declared arrival that races or follows
// Close never starts (Start == 0), and Start-Arrival used to wrap to
// ~1.8e19 cycles.
func TestQueueCyclesNoUnderflowAfterClose(t *testing.T) {
	task := func(clk *cycles.Clock) (*wasp.Result, error) { return nil, nil }
	for _, mode := range []struct {
		name string
		mk   func() *Scheduler
	}{
		{"real", func() *Scheduler { return New(wasp.New(), 1) }},
		{"virtual", func() *Scheduler { return NewVirtual(wasp.New(), 1) }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s := mode.mk()
			s.Close()
			tk := s.SubmitFnAt(123_456, task)
			if _, err := tk.Wait(); !errors.Is(err, ErrClosed) {
				t.Fatalf("err = %v, want ErrClosed", err)
			}
			if q := tk.QueueCycles(); q != 0 {
				t.Fatalf("failed ticket queue delay = %d, want 0 (wrapped?)", q)
			}
			if sv := tk.ServiceCycles(); sv != 0 {
				t.Fatalf("failed ticket service = %d, want 0", sv)
			}
		})
	}
}

// TestIdleWorkersDrainCleaner proves the Wasp+CA low-priority lane: with
// the background drain goroutine disabled (driven mode), only idle
// scheduler workers can scrub, and they must empty the dirty queue
// between tickets.
func TestIdleWorkersDrainCleaner(t *testing.T) {
	w := wasp.New(wasp.WithAsyncClean(true))
	w.Cleaner().SetDriven(true) // no background goroutine: idle lane only
	defer w.Cleaner().SetDriven(false)
	s := New(w, 2)
	defer s.Close()
	img := guest.MustFromAsm("idle-clean", guest.WrapLongMode(doublerAsm))

	const n = 8
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tickets[i] = s.Submit(img, wasp.RunConfig{Args: le64(uint64(i)), RetBytes: 8})
	}
	if err := WaitAll(tickets...); err != nil {
		t.Fatal(err)
	}
	// The worker that served the last ticket drains the queue before
	// blocking for more work; give it a moment.
	deadline := time.Now().Add(5 * time.Second)
	for w.Cleaner().Pending() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle workers never drained the cleaner: %d pending", w.Cleaner().Pending())
		}
		time.Sleep(time.Millisecond)
	}
	if s.CleanerDrains() == 0 {
		t.Fatal("no shell was scrubbed on the idle-worker lane")
	}
	if w.PoolTotal() == 0 {
		t.Fatal("no cleaned shell was parked back in the pool")
	}
}

// TestVirtualWaspCADeterminism: with async cleaning modelled as a
// dedicated virtual core, Wasp+CA virtual-mode schedules stay fully
// reproducible — makespan, cleaner-core cycles, and drain counts.
func TestVirtualWaspCADeterminism(t *testing.T) {
	run := func() (makespan, cleanerCycles, drains uint64) {
		w := wasp.New(wasp.WithAsyncClean(true))
		s := NewVirtual(w, 2)
		defer s.Close()
		img := guest.MustFromAsm("vca-det", guest.WrapLongMode(doublerAsm))
		for i := 0; i < 12; i++ {
			tk := s.SubmitAt(uint64(i)*50_000, img, wasp.RunConfig{Args: le64(uint64(i)), RetBytes: 8})
			if _, err := tk.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		return s.Makespan(), s.CleanerCycles(), s.CleanerDrains()
	}
	m1, c1, d1 := run()
	m2, c2, d2 := run()
	if m1 != m2 || c1 != c2 || d1 != d2 {
		t.Fatalf("Wasp+CA virtual schedule not reproducible: (%d,%d,%d) vs (%d,%d,%d)",
			m1, c1, d1, m2, c2, d2)
	}
	if c1 == 0 {
		t.Fatal("virtual cleaner core did no work")
	}
	if d1 != 12 {
		t.Fatalf("cleaner drains = %d, want 12 (one released shell per run)", d1)
	}
}

// TestWorkerLoadsConcurrentRead reads WorkerLoads while workers
// execute; with atomic run counters this is race-free under -race.
func TestWorkerLoadsConcurrentRead(t *testing.T) {
	w := wasp.New()
	s := New(w, 2)
	defer s.Close()

	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.WorkerLoads()
			}
		}
	}()
	const n = 32
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tickets[i] = s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
			clk.Advance(100)
			return nil, nil
		})
	}
	if err := WaitAll(tickets...); err != nil {
		t.Fatal(err)
	}
	close(stop)
	rg.Wait()
	var sum uint64
	for _, r := range s.WorkerLoads() {
		sum += r
	}
	if sum != n {
		t.Fatalf("worker loads sum to %d, want %d", sum, n)
	}
}

// TestSchedulerFeedsPoolPolicy: queue-depth telemetry from completed
// tickets must raise the image class's warm target (virtual mode, so
// the observed depths are deterministic).
func TestSchedulerFeedsPoolPolicy(t *testing.T) {
	w := wasp.New(wasp.WithPoolPolicy(wasp.PoolPolicy{MaxPerClass: 8, GrowDepth: 2, GrowBatch: 8, ShrinkAfter: 1000}))
	s := NewVirtual(w, 2)
	defer s.Close()
	img := guest.MustFromAsm("policy-feed", guest.WrapLongMode(doublerAsm))
	for i := 0; i < 8; i++ {
		tk := s.SubmitAt(0, img, wasp.RunConfig{Args: le64(uint64(i)), RetBytes: 8})
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := w.PoolStatsFor(img.MemBytes())
	if st.Target < 2 {
		t.Fatalf("warm target = %d after a burst at depth >= 2, want >= 2", st.Target)
	}
	if w.PoolTotal() > 8 {
		t.Fatalf("pool total %d exceeds class cap", w.PoolTotal())
	}
}

func TestPerWorkerClocksAdvanceIndependently(t *testing.T) {
	s := NewVirtual(wasp.New(), 2)
	// Alternate cheap and expensive tasks; each worker's clock must
	// reflect only its own service history.
	for i := 0; i < 4; i++ {
		svc := uint64(100)
		if i%2 == 1 {
			svc = 1000
		}
		s.SubmitFnAt(0, func(clk *cycles.Clock) (*wasp.Result, error) {
			clk.Advance(svc)
			return nil, nil
		})
	}
	loads := s.WorkerLoads()
	if loads[0]+loads[1] != 4 {
		t.Fatalf("loads = %v, want 4 total", loads)
	}
	// Worker 0 served tasks 0 and 2 (earliest-free, tie to index 0):
	// 100 then queued 1000? No — deterministic check: makespan equals
	// the busiest worker, which must exceed the cheap-only worker's sum.
	if s.Makespan() < 1000 {
		t.Fatalf("makespan = %d, want >= 1000", s.Makespan())
	}
}
