package sched

import (
	"fmt"

	"repro/internal/obs"
)

// ImageStat is a snapshot-consistent copy of one image's placement
// telemetry: its smoothed service cycles and guest entries per run.
type ImageStat struct {
	SvcEWMA     uint64
	EntriesEWMA uint64
}

// ImageTelemetry reads one image's placement EWMAs under the mode's
// dispatch lock, so concurrent readers can never observe a torn
// svc/entries pair mid-update (note writes the two fields back to
// back; an unlocked reader could see one new and one old). The second
// return is false when no placer is attached or the image has never
// been noted (or was LRU-evicted). Unlike the internal get, this read
// is safe from any goroutine at any time, in both modes.
func (s *Scheduler) ImageTelemetry(image string) (ImageStat, bool) {
	if s.imgStats == nil {
		return ImageStat{}, false
	}
	if s.virtual {
		s.mu.Lock()
		defer s.mu.Unlock()
	} else {
		s.dmu.Lock()
		defer s.dmu.Unlock()
	}
	if _, ok := s.imgStats.m[image]; !ok {
		return ImageStat{}, false
	}
	svc, entries := s.imgStats.get(image)
	return ImageStat{SvcEWMA: svc, EntriesEWMA: entries}, true
}

// TrackedImages reports how many images the placement telemetry store
// currently holds (bounded by the LRU cap), under the dispatch lock.
func (s *Scheduler) TrackedImages() int {
	if s.imgStats == nil {
		return 0
	}
	if s.virtual {
		s.mu.Lock()
		defer s.mu.Unlock()
	} else {
		s.dmu.Lock()
		defer s.dmu.Unlock()
	}
	return s.imgStats.size()
}

// RegisterMetrics attaches this scheduler's telemetry to a metrics
// registry as pull-model collectors: lifetime ticket counters, queue
// depths, per-backend completion totals, and cleaner drains, sampled
// at Snapshot time with no per-ticket cost. The individual accessors
// (Submitted, QueueDepth, BackendLoads, ...) remain supported; the
// registry is the aggregation point new tooling should prefer.
func (s *Scheduler) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.RegisterCollector(func(emit func(string, float64)) {
		emit("sched_submitted", float64(s.Submitted()))
		emit("sched_completed", float64(s.Completed()))
		emit("sched_rejected", float64(s.Rejected()))
		emit("sched_queue_depth", float64(s.QueueDepth()))
		emit("sched_queue_depth_peak", float64(s.PeakQueueDepth()))
		emit("sched_workers_active", float64(s.NumWorkers()))
		emit("sched_cleaner_drains", float64(s.CleanerDrains()))
		for _, bl := range s.BackendLoads() {
			emit(fmt.Sprintf("sched_backend_completed{platform=%s}", bl.Platform), float64(bl.Completed))
			emit(fmt.Sprintf("sched_backend_workers{platform=%s}", bl.Platform), float64(bl.Workers))
		}
	})
}
