package sched

import (
	"errors"
	"testing"

	"repro/internal/cycles"
	"repro/internal/stats"
	"repro/internal/wasp"
)

// costTask advances the worker clock by a fixed service cost.
func costTask(svc uint64) Task {
	return func(clk *cycles.Clock) (*wasp.Result, error) {
		clk.Advance(svc)
		return nil, nil
	}
}

// noisyNeighborTrace is the canonical multi-tenant mix: one hot image
// bursting far beyond its fair share at t=0, plus cold tenants
// trickling small requests through the horizon. Returns the requests in
// submission order (hot burst first — the backlog a cold tenant finds).
func noisyNeighborTrace(hotN int, hotSvc uint64, coldTenants []string, coldN int, coldGap, coldSvc uint64) []Request {
	reqs := make([]Request, 0, hotN+len(coldTenants)*coldN)
	for i := 0; i < hotN; i++ {
		reqs = append(reqs, Request{Arrival: uint64(i), Image: "hot", Fn: costTask(hotSvc)})
	}
	for _, tenant := range coldTenants {
		for i := 0; i < coldN; i++ {
			reqs = append(reqs, Request{Arrival: uint64(i) * coldGap, Image: tenant, Fn: costTask(coldSvc)})
		}
	}
	return reqs
}

// queueCyclesByImage buckets completed tickets' queueing delays.
func queueCyclesByImage(tickets []*Ticket) map[string][]float64 {
	out := make(map[string][]float64)
	for _, tk := range tickets {
		if tk.err == nil {
			out[tk.Image] = append(out[tk.Image], float64(tk.QueueCycles()))
		}
	}
	return out
}

// TestAdmissionSoftWeightsBoundColdTenantDelay is the
// fairness/starvation suite's soft-weight half: under plain FIFO the
// hot image's burst starves the cold tenants (their p99 queueing delay
// is the whole backlog); under equal soft weights the weighted
// per-image pick bounds every cold tenant's p99 at a few hot service
// times. Virtual mode keeps the whole experiment deterministic.
func TestAdmissionSoftWeightsBoundColdTenantDelay(t *testing.T) {
	const (
		workers = 4
		hotN    = 64
		hotSvc  = 200_000
		coldN   = 8
		coldGap = 100_000
		coldSvc = 20_000
	)
	coldTenants := []string{"cold-a", "cold-b"}

	run := func(opts ...Option) ([]*Ticket, *Scheduler) {
		s := NewVirtual(wasp.New(), workers, opts...)
		tickets := s.SubmitBatchAt(noisyNeighborTrace(hotN, hotSvc, coldTenants, coldN, coldGap, coldSvc))
		if err := WaitAll(tickets...); err != nil {
			t.Fatal(err)
		}
		return tickets, s
	}

	fifoTickets, fifoSched := run()
	fairTickets, fairSched := run(WithAdmission(Admission{}))

	fifoQ := queueCyclesByImage(fifoTickets)
	fairQ := queueCyclesByImage(fairTickets)
	for _, tenant := range coldTenants {
		fifoP99 := stats.Percentile(fifoQ[tenant], 99)
		fairP99 := stats.Percentile(fairQ[tenant], 99)
		// FIFO: the cold tenant waits out the hot backlog (~hotN/workers
		// service times). Weighted: bounded by a few hot service times.
		if fifoP99 < float64(hotN/workers)*hotSvc/2 {
			t.Fatalf("%s: FIFO p99 queue = %.0f, expected starvation-level delay", tenant, fifoP99)
		}
		if fairP99 > 6*hotSvc {
			t.Fatalf("%s: weighted p99 queue = %.0f cycles, want bounded (≤ %d)", tenant, fairP99, 6*hotSvc)
		}
		if fairP99*4 > fifoP99 {
			t.Fatalf("%s: weighted p99 %.0f not ≪ FIFO p99 %.0f", tenant, fairP99, fifoP99)
		}
	}
	// Fair scheduling is work-conserving: the makespan matches FIFO up
	// to the staggered-arrival offsets a reordering can shift (the hot
	// burst arrives over hotN cycles).
	diff := fairSched.Makespan() - fifoSched.Makespan()
	if fifoSched.Makespan() > fairSched.Makespan() {
		diff = fifoSched.Makespan() - fairSched.Makespan()
	}
	if diff > hotN {
		t.Fatalf("weighted makespan %d vs FIFO %d: not work-conserving",
			fairSched.Makespan(), fifoSched.Makespan())
	}
	// No ticket lost or double-completed.
	for _, s := range []*Scheduler{fifoSched, fairSched} {
		if s.Submitted() != s.Completed()+s.Rejected() || s.Rejected() != 0 {
			t.Fatalf("conservation violated: %v", s)
		}
	}
	// And the schedule is reproducible.
	again, _ := run(WithAdmission(Admission{}))
	for i := range fairTickets {
		if fairTickets[i].Start != again[i].Start || fairTickets[i].Worker != again[i].Worker {
			t.Fatalf("weighted schedule not reproducible at ticket %d", i)
		}
	}
}

// TestAdmissionHardCapBoundsHotConcurrency is the hard-cap half of the
// fairness suite: with MaxInFlight=2 (deferred queueing) the hot image
// never holds more than two workers, cold tenants keep bounded delay,
// and every deferred ticket still completes exactly once.
func TestAdmissionHardCapBoundsHotConcurrency(t *testing.T) {
	const (
		workers = 4
		hotN    = 48
		hotSvc  = 200_000
		coldN   = 8
		coldGap = 150_000
		coldSvc = 20_000
	)
	coldTenants := []string{"cold-a", "cold-b"}
	s := NewVirtual(wasp.New(), workers, WithAdmission(Admission{MaxInFlight: 2}))
	tickets := s.SubmitBatchAt(noisyNeighborTrace(hotN, hotSvc, coldTenants, coldN, coldGap, coldSvc))
	if err := WaitAll(tickets...); err != nil {
		t.Fatal(err)
	}
	// At any hot ticket's start, at most MaxInFlight hot tickets overlap.
	var hot []*Ticket
	for _, tk := range tickets {
		if tk.Image == "hot" {
			hot = append(hot, tk)
		}
	}
	if len(hot) != hotN {
		t.Fatalf("hot tickets = %d, want %d", len(hot), hotN)
	}
	for _, a := range hot {
		overlap := 0
		for _, b := range hot {
			if b.Start <= a.Start && a.Start < b.Done {
				overlap++
			}
		}
		if overlap > 2 {
			t.Fatalf("hot in-flight = %d at t=%d, cap is 2", overlap, a.Start)
		}
	}
	q := queueCyclesByImage(tickets)
	for _, tenant := range coldTenants {
		if p99 := stats.Percentile(q[tenant], 99); p99 > 6*hotSvc {
			t.Fatalf("%s: p99 queue = %.0f under hard cap, want bounded", tenant, p99)
		}
	}
	if s.Submitted() != s.Completed() || s.Rejected() != 0 {
		t.Fatalf("deferred tickets lost: %v", s)
	}
	st, ok := s.AdmissionStats("hot")
	if !ok || st.Completed != hotN || st.SvcEWMA == 0 {
		t.Fatalf("hot admission stats = %+v, ok=%v", st, ok)
	}
}

// TestAdmissionHardCapRejects: with RejectOverflow, submissions beyond
// the in-flight cap fail fast with ErrAdmission — and only those.
func TestAdmissionHardCapRejects(t *testing.T) {
	s := NewVirtual(wasp.New(), 4, WithAdmission(Admission{MaxInFlight: 2, RejectOverflow: true}))
	const svc = 1000
	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tickets = append(tickets, s.SubmitFnAt(0, costTask(svc)))
	}
	// All four share the untagged image "": two admitted, two rejected.
	var admitted, rejected int
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			if !errors.Is(err, ErrAdmission) {
				t.Fatalf("err = %v, want ErrAdmission", err)
			}
			rejected++
		} else {
			admitted++
		}
	}
	if admitted != 2 || rejected != 2 {
		t.Fatalf("admitted/rejected = %d/%d, want 2/2", admitted, rejected)
	}
	// After the in-flight work completes (virtual time svc), a new
	// arrival is admitted again.
	late := s.SubmitFnAt(2*svc, costTask(svc))
	if _, err := late.Wait(); err != nil {
		t.Fatalf("post-drain submit rejected: %v", err)
	}
	if s.Submitted() != 5 || s.Completed() != 3 || s.Rejected() != 2 {
		t.Fatalf("submitted/completed/rejected = %d/%d/%d, want 5/3/2",
			s.Submitted(), s.Completed(), s.Rejected())
	}
	st, ok := s.AdmissionStats("")
	if !ok || st.Rejected != 2 || st.Submitted != 5 {
		t.Fatalf("admission stats = %+v, ok=%v", st, ok)
	}
}

// TestAdmissionDeferredQueueingDelaysStart: without RejectOverflow a
// capped image's excess arrivals are deferred — their service starts at
// the completion that frees a slot, and QueueCycles reports the wait.
func TestAdmissionDeferredQueueingDelaysStart(t *testing.T) {
	s := NewVirtual(wasp.New(), 2, WithAdmission(Admission{MaxInFlight: 1}))
	const svc = 1000
	t1 := s.SubmitFnAt(0, costTask(svc))
	t2 := s.SubmitFnAt(0, costTask(svc))
	t3 := s.SubmitFnAt(0, costTask(svc))
	if err := WaitAll(t1, t2, t3); err != nil {
		t.Fatal(err)
	}
	if t1.Start != 0 || t1.Done != svc {
		t.Fatalf("first ticket served [%d,%d], want [0,%d]", t1.Start, t1.Done, svc)
	}
	// Both workers are free, but the image holds one in-flight slot:
	// the second starts only when the first completes, the third when
	// the second does.
	if t2.Start != svc || t3.Start != 2*svc {
		t.Fatalf("deferred starts = %d, %d, want %d, %d", t2.Start, t3.Start, svc, 2*svc)
	}
	if t2.QueueCycles() != svc || t3.QueueCycles() != 2*svc {
		t.Fatalf("deferred queue cycles = %d, %d, want %d, %d",
			t2.QueueCycles(), t3.QueueCycles(), svc, 2*svc)
	}
}

// TestAdmissionRealModeWeightedCompletes smoke-tests the real-mode
// per-image queues: weighted dispatch with hard caps admits and
// completes everything submitted below the cap, per-image stats add
// up, and deferred images never exceed their in-flight bound (checked
// structurally via the conservation law — timing is nondeterministic
// in real mode).
func TestAdmissionRealModeWeightedCompletes(t *testing.T) {
	s := New(wasp.New(), 4, WithAdmission(Admission{
		MaxInFlight: 2,
		Weights:     map[string]int{"heavy": 1, "light": 8},
	}))
	defer s.Close()
	var tickets []*Ticket
	reqs := make([]Request, 0, 48)
	for i := 0; i < 24; i++ {
		reqs = append(reqs, Request{Image: "heavy", Fn: costTask(50_000)})
		reqs = append(reqs, Request{Image: "light", Fn: costTask(5_000)})
	}
	tickets = append(tickets, s.SubmitBatch(reqs)...)
	if err := WaitAll(tickets...); err != nil {
		t.Fatal(err)
	}
	if s.Submitted() != 48 || s.Completed() != 48 || s.Rejected() != 0 {
		t.Fatalf("submitted/completed/rejected = %d/%d/%d", s.Submitted(), s.Completed(), s.Rejected())
	}
	images := s.AdmissionImages()
	if len(images) != 2 || images[0] != "heavy" || images[1] != "light" {
		t.Fatalf("admission images = %v", images)
	}
	for _, img := range images {
		st, ok := s.AdmissionStats(img)
		if !ok || st.Completed != 24 || st.InFlight != 0 || st.Queued != 0 {
			t.Fatalf("%s stats = %+v, ok=%v", img, st, ok)
		}
		if st.SvcEWMA == 0 {
			t.Fatalf("%s: no service telemetry", img)
		}
	}
	lt, _ := s.AdmissionStats("light")
	ht, _ := s.AdmissionStats("heavy")
	if lt.Weight != 8 || ht.Weight != 1 {
		t.Fatalf("weights = %d/%d, want 8/1", lt.Weight, ht.Weight)
	}
}

// TestAdmissionRejectOutOfOrderArrivals is the regression test for the
// in-flight accounting bias: a hard-cap reject decision for a ticket
// arriving at t must count only siblings already admitted at t. A
// same-image sibling submitted earlier but *arriving later* used to be
// counted against the quota (its completion time was recorded without
// its admission edge), spuriously rejecting a ticket whose image was
// idle at its arrival.
func TestAdmissionRejectOutOfOrderArrivals(t *testing.T) {
	s := NewVirtual(wasp.New(), 1, WithAdmission(Admission{MaxInFlight: 1, RejectOverflow: true}))
	tickets := s.SubmitBatchAt([]Request{
		{Arrival: 180, Image: "hot", Fn: costTask(100)},
		{Arrival: 150, Image: "hot", Fn: costTask(100)}, // out of order
		{Arrival: 0, Image: "z", Fn: costTask(300)},
	})
	for i, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d spuriously rejected: %v", i, err)
		}
	}
	// At hot@150's arrival no hot ticket was admitted (hot@180 had not
	// arrived, let alone started): all three must be served.
	if s.Rejected() != 0 || s.Completed() != 3 {
		t.Fatalf("completed/rejected = %d/%d, want 3/0", s.Completed(), s.Rejected())
	}
}

// TestAdmissionDeferralDoesNotDelayOtherImages is the regression test
// for the deferral time-advance bug: when every backlogged ticket is
// capped, the event loop must advance to the NEXT EVENT — which can be
// another image's arrival, not only the capping image's completion. A
// deferred hog ticket must never hold an unrelated tenant's request
// past its arrival while workers sit idle.
func TestAdmissionDeferralDoesNotDelayOtherImages(t *testing.T) {
	s := NewVirtual(wasp.New(), 4, WithAdmission(Admission{MaxInFlight: 1}))
	tickets := s.SubmitBatchAt([]Request{
		{Arrival: 10, Image: "hog", Fn: costTask(1000)},
		{Arrival: 11, Image: "hog", Fn: costTask(1000)}, // deferred behind the first
		{Arrival: 50, Image: "quiet", Fn: costTask(10)}, // 3 workers idle at 50
	})
	if err := WaitAll(tickets...); err != nil {
		t.Fatal(err)
	}
	if tickets[0].Start != 10 {
		t.Fatalf("hog[0] start = %d, want 10", tickets[0].Start)
	}
	if tickets[1].Start != 1010 {
		t.Fatalf("hog[1] start = %d, want 1010 (deferred to the slot)", tickets[1].Start)
	}
	if tickets[2].Start != 50 || tickets[2].QueueCycles() != 0 {
		t.Fatalf("quiet start = %d (queue %d), want 50 with zero queueing — the hog's deferral must not delay it",
			tickets[2].Start, tickets[2].QueueCycles())
	}
}

// TestAdmissionMaxQueuedShedsBacklog: in deferral mode a capped image's
// backlog occupies the shared bounded queue; MaxQueued sheds the excess
// so a hog cannot fill the queue cap and block other tenants' submits.
func TestAdmissionMaxQueuedShedsBacklog(t *testing.T) {
	gate := make(chan struct{})
	s := New(wasp.New(), 2,
		WithQueueCap(64),
		WithAdmission(Admission{MaxInFlight: 1, MaxQueued: 4}))
	defer s.Close()
	blocked := func(clk *cycles.Clock) (*wasp.Result, error) {
		<-gate
		return nil, nil
	}
	reqs := make([]Request, 16)
	for i := range reqs {
		reqs[i] = Request{Image: "hog", Fn: blocked}
	}
	hog := s.SubmitBatch(reqs)
	// With the hog's first ticket blocking a worker and MaxInFlight 1,
	// at most MaxQueued hog tickets may wait; the rest shed. Another
	// tenant's submit must not block on a full queue.
	quiet := s.SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
		clk.Advance(1)
		return nil, nil
	})
	if _, err := quiet.Wait(); err != nil {
		t.Fatalf("quiet tenant blocked behind hog backlog: %v", err)
	}
	close(gate)
	var served, shed int
	for _, tk := range hog {
		if _, err := tk.Wait(); err != nil {
			if !errors.Is(err, ErrAdmission) {
				t.Fatalf("unexpected error: %v", err)
			}
			shed++
		} else {
			served++
		}
	}
	if shed == 0 {
		t.Fatal("MaxQueued shed nothing from a 16-deep burst over a 4-slot bound")
	}
	if served == 0 {
		t.Fatal("every hog ticket shed")
	}
	if s.Submitted() != s.Completed()+s.Rejected() {
		t.Fatalf("conservation violated: %v", s)
	}
	st, _ := s.AdmissionStats("hog")
	if st.Rejected != uint64(shed) {
		t.Fatalf("hog stats rejected = %d, want %d", st.Rejected, shed)
	}
}
