package sched

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/wasp"
)

// TestSubmitBatchRunsVirtines drives a real-mode burst through
// SubmitBatch: every ticket must carry its image identity and the right
// result, and the batch completion hook must fire exactly once with the
// full ticket set.
func TestSubmitBatchRunsVirtines(t *testing.T) {
	var batchCalls atomic.Uint64
	var batchTickets atomic.Int64
	w := wasp.New()
	s := New(w, 4, WithOnBatchComplete(func(ts []*Ticket) {
		batchCalls.Add(1)
		batchTickets.Add(int64(len(ts)))
	}))
	defer s.Close()

	img := guest.MustFromAsm("batch-doubler", guest.WrapLongMode(doublerAsm))
	const n = 64
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Img: img, Cfg: wasp.RunConfig{Args: le64(uint64(i)), RetBytes: 8}}
	}
	tickets := s.SubmitBatch(reqs)
	if len(tickets) != n {
		t.Fatalf("got %d tickets, want %d", len(tickets), n)
	}
	for i, tk := range tickets {
		res, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if got := fromLE64(res.Ret); got != uint64(2*i) {
			t.Fatalf("ticket %d: ret = %d, want %d", i, got, 2*i)
		}
		if tk.Image != "batch-doubler" {
			t.Fatalf("ticket %d: image = %q", i, tk.Image)
		}
	}
	if batchCalls.Load() != 1 || batchTickets.Load() != n {
		t.Fatalf("batch hook: %d calls over %d tickets, want 1 over %d",
			batchCalls.Load(), batchTickets.Load(), n)
	}
	if s.Submitted() != n || s.Completed() != n || s.Rejected() != 0 {
		t.Fatalf("submitted/completed/rejected = %d/%d/%d",
			s.Submitted(), s.Completed(), s.Rejected())
	}
}

// TestSubmitBatchAtMatchesSequentialSubmitAt is the differential
// property: for any random arrival trace, a virtual-mode SubmitBatchAt
// produces exactly the per-ticket schedule and makespan of the
// equivalent sequence of SubmitFnAt calls. Batching is a pure
// optimization, never a semantic change.
func TestSubmitBatchAtMatchesSequentialSubmitAt(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		rng := rand.New(rand.NewSource(seed))
		const n = 200
		arrivals := make([]uint64, n)
		svcs := make([]uint64, n)
		clock := uint64(0)
		for i := 0; i < n; i++ {
			// Random mix of bursts (same arrival) and gaps, with
			// occasional out-of-order submissions.
			if rng.Intn(3) > 0 {
				clock += uint64(rng.Intn(5000))
			}
			arrivals[i] = clock
			if rng.Intn(10) == 0 && clock > 10000 {
				arrivals[i] = clock - uint64(rng.Intn(10000))
			}
			svcs[i] = uint64(100 + rng.Intn(20000))
		}
		task := func(svc uint64) Task {
			return func(clk *cycles.Clock) (*wasp.Result, error) {
				clk.Advance(svc)
				return nil, nil
			}
		}

		seq := NewVirtual(wasp.New(), 3)
		seqTickets := make([]*Ticket, n)
		for i := 0; i < n; i++ {
			seqTickets[i] = seq.SubmitFnAt(arrivals[i], task(svcs[i]))
		}

		bat := NewVirtual(wasp.New(), 3)
		reqs := make([]Request, n)
		for i := 0; i < n; i++ {
			reqs[i] = Request{Arrival: arrivals[i], Fn: task(svcs[i])}
		}
		batTickets := bat.SubmitBatchAt(reqs)

		for i := 0; i < n; i++ {
			a, b := seqTickets[i], batTickets[i]
			if a.Start != b.Start || a.Done != b.Done || a.Worker != b.Worker ||
				a.DepthAtSubmit != b.DepthAtSubmit || a.QueueCycles() != b.QueueCycles() {
				t.Fatalf("seed %d ticket %d: sequential (s=%d d=%d w=%d q=%d dep=%d) != batch (s=%d d=%d w=%d q=%d dep=%d)",
					seed, i, a.Start, a.Done, a.Worker, a.QueueCycles(), a.DepthAtSubmit,
					b.Start, b.Done, b.Worker, b.QueueCycles(), b.DepthAtSubmit)
			}
		}
		if seq.Makespan() != bat.Makespan() {
			t.Fatalf("seed %d: makespan %d != %d", seed, seq.Makespan(), bat.Makespan())
		}
	}
}

// TestSubmitAfterCloseAllPaths is the regression suite for the
// post-Close bug class: every submission entry point, in both modes,
// must return rejected tickets carrying ErrClosed — never panic on a
// dead queue — and the Submitted == Completed + Rejected conservation
// law must hold.
func TestSubmitAfterCloseAllPaths(t *testing.T) {
	img := guest.MustFromAsm("close-doubler", guest.WrapLongMode(doublerAsm))
	task := func(clk *cycles.Clock) (*wasp.Result, error) { return nil, nil }
	for _, mode := range []struct {
		name string
		mk   func() *Scheduler
	}{
		{"real", func() *Scheduler { return New(wasp.New(), 2) }},
		{"virtual", func() *Scheduler { return NewVirtual(wasp.New(), 2) }},
		{"real+admission", func() *Scheduler {
			return New(wasp.New(), 2, WithAdmission(Admission{MaxInFlight: 4}))
		}},
		{"virtual+admission", func() *Scheduler {
			return NewVirtual(wasp.New(), 2, WithAdmission(Admission{MaxInFlight: 4}))
		}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s := mode.mk()
			s.Close()
			s.Close() // idempotent
			var tickets []*Ticket
			tickets = append(tickets, s.Submit(img, wasp.RunConfig{}))
			tickets = append(tickets, s.SubmitAt(5, img, wasp.RunConfig{}))
			tickets = append(tickets, s.SubmitFn(task))
			tickets = append(tickets, s.SubmitFnAt(5, task))
			tickets = append(tickets, s.SubmitBatch([]Request{{Img: img}, {Fn: task}})...)
			tickets = append(tickets, s.SubmitBatchAt([]Request{{Arrival: 5, Img: img}, {Fn: task}})...)
			for i, tk := range tickets {
				if _, err := tk.Wait(); !errors.Is(err, ErrClosed) {
					t.Fatalf("ticket %d: err = %v, want ErrClosed", i, err)
				}
				if q := tk.QueueCycles(); q != 0 {
					t.Fatalf("ticket %d: queue cycles = %d on a rejected ticket", i, q)
				}
			}
			n := uint64(len(tickets))
			if s.Submitted() != n || s.Rejected() != n || s.Completed() != 0 {
				t.Fatalf("submitted/rejected/completed = %d/%d/%d, want %d/%d/0",
					s.Submitted(), s.Rejected(), s.Completed(), n, n)
			}
		})
	}
}

// TestSubmitBatchRejectsNilRequests: a Request with neither an image
// nor a task yields a rejected ticket, not a worker panic.
func TestSubmitBatchRejectsNilRequests(t *testing.T) {
	for _, mode := range []struct {
		name string
		mk   func() *Scheduler
	}{
		{"real", func() *Scheduler { return New(wasp.New(), 1) }},
		{"virtual", func() *Scheduler { return NewVirtual(wasp.New(), 1) }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s := mode.mk()
			defer s.Close()
			if got := s.SubmitBatch(nil); got != nil {
				t.Fatalf("empty batch returned %v", got)
			}
			tickets := s.SubmitBatch([]Request{
				{Fn: func(clk *cycles.Clock) (*wasp.Result, error) { clk.Advance(1); return nil, nil }},
				{}, // malformed
			})
			if _, err := tickets[0].Wait(); err != nil {
				t.Fatalf("good request failed: %v", err)
			}
			if _, err := tickets[1].Wait(); err == nil {
				t.Fatal("malformed request did not fail")
			}
			if s.Submitted() != 2 || s.Completed() != 1 || s.Rejected() != 1 {
				t.Fatalf("submitted/completed/rejected = %d/%d/%d, want 2/1/1",
					s.Submitted(), s.Completed(), s.Rejected())
			}
		})
	}
}

// TestAdmissionBatchStressRace is the -race stress for batched
// submission: 16 goroutines issue a mix of single and batch submits
// across 4 images while the scheduler is concurrently closed. Nothing
// may be lost or double-completed: every ticket resolves, per-ticket
// OnComplete fires exactly once per completed ticket, each batch hook
// fires exactly once, and Submitted == Completed + Rejected.
func TestAdmissionBatchStressRace(t *testing.T) {
	images := make([]*guest.Image, 4)
	for i := range images {
		images[i] = guest.MustFromAsm("race-img-"+string(rune('a'+i)), guest.WrapLongMode(doublerAsm))
	}
	var completions sync.Map // *Ticket -> *atomic.Int64
	var completed atomic.Uint64
	var batchCalls, batchWant atomic.Uint64
	w := wasp.New()
	s := New(w, 4,
		WithAdmission(Admission{Weights: map[string]int{"race-img-a": 4}}),
		WithOnComplete(func(tk *Ticket) {
			completed.Add(1)
			c, _ := completions.LoadOrStore(tk, new(atomic.Int64))
			c.(*atomic.Int64).Add(1)
		}),
		WithOnBatchComplete(func(ts []*Ticket) { batchCalls.Add(1) }),
	)

	const submitters = 16
	var wg sync.WaitGroup
	ticketCh := make(chan []*Ticket, submitters*32)
	start := make(chan struct{})
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			rng := rand.New(rand.NewSource(int64(g)))
			for round := 0; round < 12; round++ {
				img := images[(g+round)%len(images)]
				if rng.Intn(2) == 0 {
					tk := s.Submit(img, wasp.RunConfig{Args: le64(uint64(g)), RetBytes: 8})
					ticketCh <- []*Ticket{tk}
				} else {
					reqs := make([]Request, 1+rng.Intn(6))
					for i := range reqs {
						reqs[i] = Request{
							Img: images[(g+round+i)%len(images)],
							Cfg: wasp.RunConfig{Args: le64(uint64(i)), RetBytes: 8},
						}
					}
					batchWant.Add(1)
					ticketCh <- s.SubmitBatch(reqs)
				}
			}
		}(g)
	}
	closer := make(chan struct{})
	go func() {
		defer close(closer)
		// Race Close against the submitters mid-flight.
		for i := 0; i < 64; i++ {
			s.QueueDepth()
		}
		s.Close()
	}()
	close(start)
	wg.Wait()
	<-closer
	close(ticketCh)

	var total, rejectedSeen uint64
	for ts := range ticketCh {
		for _, tk := range ts {
			total++
			if _, err := tk.Wait(); err != nil {
				if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrAdmission) {
					t.Fatalf("unexpected ticket error: %v", err)
				}
				rejectedSeen++
			}
		}
	}
	if total != s.Submitted() {
		t.Fatalf("collected %d tickets, scheduler submitted %d", total, s.Submitted())
	}
	if s.Submitted() != s.Completed()+s.Rejected() {
		t.Fatalf("conservation violated: submitted %d != completed %d + rejected %d",
			s.Submitted(), s.Completed(), s.Rejected())
	}
	if rejectedSeen != s.Rejected() {
		t.Fatalf("per-ticket rejections %d != Rejected() %d", rejectedSeen, s.Rejected())
	}
	if completed.Load() != s.Completed() {
		t.Fatalf("OnComplete fired %d times for %d completions", completed.Load(), s.Completed())
	}
	singles := 0
	completions.Range(func(_, v any) bool {
		if n := v.(*atomic.Int64).Load(); n != 1 {
			t.Fatalf("a ticket's OnComplete fired %d times", n)
		}
		singles++
		return true
	})
	if uint64(singles) != s.Completed() {
		t.Fatalf("%d distinct completed tickets, want %d", singles, s.Completed())
	}
	if batchCalls.Load() != batchWant.Load() {
		t.Fatalf("batch hook fired %d times for %d batches", batchCalls.Load(), batchWant.Load())
	}
}
