package sched

// otree is an order-statistic treap over workers keyed by (clock, id):
// the virtual dispatcher's ready structure. One tree per backend holds
// that backend's active workers, so the earliest-free candidate is the
// leftmost node and "how many workers are busy at time T" is a rank
// query — both O(log n), replacing the linear clock scans that made
// dispatch quadratic at fleet scale.
//
// Determinism rules (see internal/sched/README.md): the key comparison
// is total — (clock, id) never ties across distinct workers — and node
// priorities are a pure hash of the worker id, so the tree's shape is a
// function of its membership alone. Same fleet, same clocks, same tree,
// same decisions; no randomness, no map iteration.
type otree struct {
	root *onode
}

type onode struct {
	w    *worker
	prio uint64
	l, r *onode
	sz   int
}

// oprio derives a node's heap priority from the worker id. splitmix64:
// deterministic, well mixed, and independent of insertion order.
func oprio(id int) uint64 {
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// okeyLess orders (clock a, id ai) before (clock b, id bi).
func okeyLess(a uint64, ai int, b uint64, bi int) bool {
	if a != b {
		return a < b
	}
	return ai < bi
}

func osize(n *onode) int {
	if n == nil {
		return 0
	}
	return n.sz
}

func (n *onode) refresh() {
	n.sz = 1 + osize(n.l) + osize(n.r)
}

// osplit partitions n into (< key) and (>= key) subtrees.
func osplit(n *onode, clk uint64, id int) (l, r *onode) {
	if n == nil {
		return nil, nil
	}
	if okeyLess(n.w.clk.Now(), n.w.id, clk, id) {
		n.r, r = osplit(n.r, clk, id)
		n.refresh()
		return n, r
	}
	l, n.l = osplit(n.l, clk, id)
	n.refresh()
	return l, n
}

func omerge(l, r *onode) *onode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio >= r.prio:
		l.r = omerge(l.r, r)
		l.refresh()
		return l
	default:
		r.l = omerge(l, r.l)
		r.refresh()
		return r
	}
}

// insert adds wk under its current clock. The caller must not change
// wk's clock while it is in the tree — remove first, reinsert after.
func (t *otree) insert(wk *worker) {
	n := &onode{w: wk, prio: oprio(wk.id), sz: 1}
	l, r := osplit(t.root, wk.clk.Now(), wk.id)
	t.root = omerge(omerge(l, n), r)
}

// remove deletes wk, located by its current (clock, id) key.
func (t *otree) remove(wk *worker) {
	var rec func(n *onode) *onode
	rec = func(n *onode) *onode {
		if n == nil {
			return nil
		}
		if n.w == wk {
			return omerge(n.l, n.r)
		}
		if okeyLess(wk.clk.Now(), wk.id, n.w.clk.Now(), n.w.id) {
			n.l = rec(n.l)
		} else {
			n.r = rec(n.r)
		}
		n.refresh()
		return n
	}
	t.root = rec(t.root)
}

// min returns the worker with the least (clock, id), or nil when empty.
func (t *otree) min() *worker {
	n := t.root
	if n == nil {
		return nil
	}
	for n.l != nil {
		n = n.l
	}
	return n.w
}

// countLE reports how many workers have clock <= at.
func (t *otree) countLE(at uint64) int {
	count := 0
	for n := t.root; n != nil; {
		if n.w.clk.Now() <= at {
			count += 1 + osize(n.l)
			n = n.r
		} else {
			n = n.l
		}
	}
	return count
}

// size reports the tree's population.
func (t *otree) size() int { return osize(t.root) }
