package sched

import (
	"errors"
	"sort"

	"repro/internal/stats"
)

// ErrAdmission is the error carried by tickets a hard per-image quota
// rejected at submission.
var ErrAdmission = errors.New("sched: per-image admission limit")

// Admission is the per-image admission-control policy (the multi-tenant
// fairness layer). Attaching one via WithAdmission switches dispatch
// from a single FIFO to per-image queues:
//
//   - Hard cap: MaxInFlight bounds each image's concurrently admitted
//     work. With RejectOverflow the excess submission fails immediately
//     with ErrAdmission; without it the ticket is accepted but deferred —
//     it stays parked in its image's queue until the image's in-flight
//     count drops below the cap.
//   - Soft weights: workers pick the next ticket by start-time fair
//     queueing (stride scheduling) across the per-image queues instead
//     of strict FIFO. Each dispatch advances the image's virtual pass by
//     its smoothed service cost divided by its weight, so an image
//     receives service cycles in proportion to its weight and one hot
//     image can no longer starve every other tenant. Equal weights give
//     cycle-proportional round-robin — already a fairness win over FIFO.
//
// In virtual mode, single SubmitAt calls dispatch synchronously in
// submission order (the scheduler cannot reorder work it has not seen);
// caps still apply, with deferral modelled as a later effective start.
// SubmitBatchAt presents a whole arrival trace at once, and with an
// Admission attached the batch is dispatched event-driven with the same
// weighted pick — the deterministic substrate the fairness experiments
// run on.
type Admission struct {
	// MaxInFlight caps each image's admitted-but-not-completed tickets.
	// 0 means unlimited.
	MaxInFlight int
	// RejectOverflow selects the hard-cap behavior: true rejects the
	// excess submission with ErrAdmission; false (the default) defers it
	// in the image's queue until a slot frees.
	RejectOverflow bool
	// MaxPerBackend caps each image's in-flight tickets per hypervisor
	// backend — capacity isolation inside a platform, not just across
	// the fleet ("image X may hold at most 1 KVM worker"), so a hot
	// image cannot monopolize the backend the placement policy prefers
	// for everyone. Real mode enforces it at pop time (a worker skips
	// images already holding their allotment of its backend); virtual
	// mode models the wait as a delayed start on the capped backend
	// while the placement bias weighs spilling to another backend
	// against waiting. 0 means unlimited. Meaningful only on multi-
	// backend fleets — on a single backend it duplicates MaxInFlight
	// deferral.
	MaxPerBackend int
	// MaxQueued bounds each image's waiting tickets in the real-mode
	// queue; beyond it, submissions shed with ErrAdmission even in
	// deferral mode. Deferred tickets occupy the scheduler's shared
	// bounded queue, so without this a capped image's backlog can fill
	// the queue cap and block every other tenant's Submit at the
	// enqueue — set MaxQueued below the queue cap to keep deferral from
	// reintroducing the starvation it exists to prevent. 0 means
	// unlimited. (Virtual mode models deferral in time, not queue
	// slots, so the bound does not apply there.)
	MaxQueued int
	// Weights maps image identity to its scheduling weight. Images not
	// listed get DefaultWeight.
	Weights map[string]int
	// DefaultWeight is the weight of unlisted images; 0 means 1.
	DefaultWeight int
}

// WeightFor resolves an image's effective scheduling weight under this
// policy: its Weights entry, else DefaultWeight, else 1. Exported so
// reporting layers compute entitlements from the exact weights the
// scheduler enforces.
func (a Admission) WeightFor(image string) int {
	if w, ok := a.Weights[image]; ok && w > 0 {
		return w
	}
	if a.DefaultWeight > 0 {
		return a.DefaultWeight
	}
	return 1
}

// strideUnit is the pass advance for a weight-1 dispatch before any
// service-time telemetry exists.
const strideUnit = 1 << 20

// AdmissionStats is one image's admission-control telemetry.
type AdmissionStats struct {
	// Submitted, Completed and Rejected are lifetime ticket counts for
	// the image (Submitted includes Rejected).
	Submitted, Completed, Rejected uint64
	// InFlight is the image's dispatched-but-not-completed count (real
	// mode) and Queued its tickets still waiting in the image queue.
	InFlight, Queued int
	// QueueShare is the image's fraction of all queued tickets.
	QueueShare float64
	// SvcEWMA is the image's smoothed service time (cycles), fed from
	// completed-ticket telemetry. It is also the stride numerator for
	// the weighted pick.
	SvcEWMA uint64
	// QueueCycleSum accumulates the queueing delay of the image's
	// completed tickets (divide by Completed for the mean).
	QueueCycleSum uint64
	// Weight is the image's effective scheduling weight.
	Weight int
}

// imageState is one image's queues and telemetry inside the admission
// layer. It is guarded by the owning scheduler's dispatch lock (the
// dispatcher mutex in real mode, the virtual-dispatch mutex in virtual
// mode); the two modes are mutually exclusive per scheduler.
type imageState struct {
	name   string
	weight int

	queue    []*Ticket // waiting tickets, FIFO within the image (real mode)
	pass     uint64    // stride-scheduling virtual start tag
	inFlight int       // dispatched, not yet completed (real mode)

	// inFlightBy counts dispatched-but-not-completed tickets per backend
	// index (real mode, MaxPerBackend only; nil otherwise — virtual mode
	// models the quota in time instead, see quotaStartLocked).
	inFlightBy []int

	spans      []admitSpan // virtual mode: admission spans of dispatched tickets (hard cap only)
	maxArrival uint64      // virtual mode: high-water arrival, the prune horizon

	submitted, completed, rejected uint64
	svcEWMA                        uint64
	queueSum                       uint64
}

// admission is the runtime state behind an Admission policy.
type admission struct {
	pol    Admission
	images map[string]*imageState
	vtime  uint64 // pass of the most recently dispatched image (global virtual time)
}

func newAdmission(pol Admission) *admission {
	return &admission{pol: pol, images: make(map[string]*imageState)}
}

func (a *admission) state(image string) *imageState {
	st := a.images[image]
	if st == nil {
		st = &imageState{name: image, weight: a.pol.WeightFor(image)}
		a.images[image] = st
	}
	return st
}

// stride is the pass advance for one dispatch of st: the image's
// smoothed service cost over its weight, so heavier requests and lighter
// weights both slow an image's claim on the workers.
func (a *admission) stride(st *imageState) uint64 {
	cost := st.svcEWMA
	if cost == 0 {
		cost = strideUnit
	}
	return cost/uint64(st.weight) + 1
}

// activate normalizes a queue going empty→non-empty onto the global
// virtual time, the start-time fair queueing arrival rule: an image idle
// while others ran gets no banked credit, and a newcomer gets no
// priority windfall over images that have been executing.
func (a *admission) activate(st *imageState) {
	if st.pass < a.vtime {
		st.pass = a.vtime
	}
}

// tryEnqueue admits t into its image queue, or rejects it under a hard
// cap with RejectOverflow. Caller holds the dispatch lock.
func (a *admission) tryEnqueue(t *Ticket) error {
	st := a.state(t.Image)
	st.submitted++
	if a.pol.MaxInFlight > 0 && a.pol.RejectOverflow &&
		len(st.queue)+st.inFlight >= a.pol.MaxInFlight {
		st.rejected++
		return ErrAdmission
	}
	if a.pol.MaxQueued > 0 && len(st.queue) >= a.pol.MaxQueued {
		st.rejected++
		return ErrAdmission
	}
	if len(st.queue) == 0 {
		a.activate(st)
	}
	st.queue = append(st.queue, t)
	return nil
}

// pick removes and returns the next ticket by weighted fair pick across
// the per-image queues: the eligible image with the lowest pass (ties
// break on the image name, keeping the pick deterministic). Deferred
// images — at their hard cap — are not eligible, and neither are images
// the caller's eligible filter refuses (the placement layer's
// platform-affinity gate: a worker passes a filter accepting only
// tickets its backend may serve; nil accepts everything). Returns nil
// when no eligible ticket exists. Caller holds the dispatch lock.
func (a *admission) pick(eligible func(*Ticket) bool) *Ticket {
	var best *imageState
	for _, st := range a.images {
		if len(st.queue) == 0 {
			continue
		}
		if a.pol.MaxInFlight > 0 && !a.pol.RejectOverflow && st.inFlight >= a.pol.MaxInFlight {
			continue // deferred: wait for a completion slot
		}
		if eligible != nil && !eligible(st.queue[0]) {
			continue // pinned to a backend this worker does not serve
		}
		if best == nil || st.pass < best.pass || (st.pass == best.pass && st.name < best.name) {
			best = st
		}
	}
	if best == nil {
		return nil
	}
	t := best.queue[0]
	best.queue[0] = nil
	best.queue = best.queue[1:]
	best.inFlight++
	if best.pass > a.vtime {
		a.vtime = best.pass
	}
	best.pass += a.stride(best)
	return t
}

// claimBackend charges one in-flight slot of backend beIdx against the
// image's per-backend quota (real mode; lazily sized to the fleet's
// backend count). Caller holds the dispatch lock.
func (st *imageState) claimBackend(beIdx, nBackends int) {
	if st.inFlightBy == nil {
		st.inFlightBy = make([]int, nBackends)
	}
	st.inFlightBy[beIdx]++
}

// inFlightOn reports the image's dispatched-but-not-completed count on
// one backend (real mode). Caller holds the dispatch lock.
func (st *imageState) inFlightOn(beIdx int) int {
	if beIdx >= len(st.inFlightBy) {
		return 0
	}
	return st.inFlightBy[beIdx]
}

// complete folds a finished ticket's telemetry back into its image:
// in-flight release (global and per-backend), service-time EWMA (the
// stride numerator), and queue-delay accounting. Caller holds the
// dispatch lock.
func (a *admission) complete(t *Ticket) {
	st := a.state(t.Image)
	if st.inFlight > 0 {
		st.inFlight--
	}
	if t.servedBE < len(st.inFlightBy) && st.inFlightBy[t.servedBE] > 0 {
		st.inFlightBy[t.servedBE]--
	}
	st.completed++
	st.svcEWMA = stats.EWMA(st.svcEWMA, t.ServiceCycles())
	st.queueSum += t.QueueCycles()
}

// noteRejected records a rejection that happened outside tryEnqueue
// (e.g. a submit after Close). Caller holds the dispatch lock.
func (a *admission) noteRejected(image string) {
	st := a.state(image)
	st.submitted++
	st.rejected++
}

// admitSpan is one dispatched ticket's claim on its image's in-flight
// quota in virtual time: the slot is held from the ticket's arrival
// (admission) until its completion. Recording the admission edge, not
// just the completion, keeps out-of-order arrivals honest — a ticket
// arriving at t must not be counted against a sibling that was not
// even admitted yet at t.
type admitSpan struct {
	at, done uint64
}

// pruneDone drops admission spans completed at or before upTo, once the
// history has grown enough to be worth compacting. Safe when no later
// admission query can reference times at or below upTo; callers pass
// the earliest arrival still outstanding, so a submission arriving out
// of order behind it observes a slightly relaxed cap (documented on
// admitAtVirtual). Caller holds the dispatch lock.
func (st *imageState) pruneDone(upTo uint64) {
	if len(st.spans) < 256 {
		return
	}
	kept := st.spans[:0]
	for _, sp := range st.spans {
		if sp.done > upTo {
			kept = append(kept, sp)
		}
	}
	st.spans = kept
}

// inFlightAt reports how many of the image's dispatched tickets hold an
// admission slot at virtual time t (virtual mode): admitted at or
// before t and not yet completed. Caller holds the dispatch lock.
func (st *imageState) inFlightAt(t uint64) int {
	n := 0
	for _, sp := range st.spans {
		if sp.at <= t && sp.done > t {
			n++
		}
	}
	return n
}

// admitAtVirtual decides admission for a virtual-mode ticket arriving at
// the given time: (ok=false) rejects under RejectOverflow; otherwise it
// returns the earliest virtual time the image has a free slot — the
// arrival itself when under the cap, or the k-th completion that brings
// the in-flight count below the cap (deferred queueing as a later
// effective start). Completion history below the highest arrival seen
// is pruned, so a submission arriving out of order far behind the trace
// front may observe a relaxed cap. Caller holds the dispatch lock.
func (a *admission) admitAtVirtual(st *imageState, arrival uint64) (notBefore uint64, ok bool) {
	if a.pol.MaxInFlight <= 0 {
		return arrival, true
	}
	if arrival >= st.maxArrival {
		st.maxArrival = arrival
		st.pruneDone(arrival)
	}
	busy := st.inFlightAt(arrival)
	if busy < a.pol.MaxInFlight {
		return arrival, true
	}
	if a.pol.RejectOverflow {
		return 0, false
	}
	// Deferred: the slot frees at the (busy-cap+1)-th completion among
	// the spans occupying the quota at the arrival.
	k := busy - a.pol.MaxInFlight + 1
	later := make([]uint64, 0, busy)
	for _, sp := range st.spans {
		if sp.at <= arrival && sp.done > arrival {
			later = append(later, sp.done)
		}
	}
	sort.Slice(later, func(i, j int) bool { return later[i] < later[j] })
	return later[k-1], true
}

// statsLocked snapshots one image. Caller holds the dispatch lock.
func (a *admission) statsLocked(image string, totalQueued int) (AdmissionStats, bool) {
	st := a.images[image]
	if st == nil {
		return AdmissionStats{}, false
	}
	out := AdmissionStats{
		Submitted:     st.submitted,
		Completed:     st.completed,
		Rejected:      st.rejected,
		InFlight:      st.inFlight,
		Queued:        len(st.queue),
		SvcEWMA:       st.svcEWMA,
		QueueCycleSum: st.queueSum,
		Weight:        st.weight,
	}
	if totalQueued > 0 {
		out.QueueShare = float64(len(st.queue)) / float64(totalQueued)
	}
	return out, true
}

// imagesLocked lists tracked image identities, sorted. Caller holds the
// dispatch lock.
func (a *admission) imagesLocked() []string {
	out := make([]string, 0, len(a.images))
	for name := range a.images {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
