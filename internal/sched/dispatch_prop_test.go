package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/placement"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

// Differential property suite for the O(log n) dispatch core: random
// trace corpora — mixed images, colliding arrivals, hard caps in both
// flavors, per-backend quotas, placers, mid-run autoscaling — run
// through the heap core and the linear reference (WithLinearDispatch),
// asserting bit-identical per-ticket outcomes, makespans, rejection
// sets, and admission telemetry. The heap structures are pure
// bookkeeping; any divergence here is a correctness bug, not a tuning
// difference.

// dispatchKey is the comparable projection of one ticket's outcome.
type dispatchKey struct {
	Worker   int
	Platform string
	Arrival  uint64
	Start    uint64
	Done     uint64
	Depth    int
	Image    string
	Rejected bool
}

// corpusConfig is one randomized scenario, drawn from a seed.
type corpusConfig struct {
	workers   int
	twoBE     bool
	placer    int // 0 none, 1 least-loaded, 2 cost-model
	adm       Admission
	batch     []Request
	singles   []Request
	rescaleTo int // 0 = no mid-run rescale
	batch2    []Request
}

func drawCorpus(seed int64) corpusConfig {
	rng := rand.New(rand.NewSource(seed))
	images := []string{"img-a", "img-b", "img-c", "img-d"}
	cfg := corpusConfig{
		workers: 1 + rng.Intn(12),
		twoBE:   rng.Intn(2) == 0,
		placer:  rng.Intn(3),
	}
	cfg.adm = Admission{
		MaxInFlight:    rng.Intn(4),              // 0 disables
		RejectOverflow: rng.Intn(2) == 0,
		MaxPerBackend:  rng.Intn(3),              // 0 disables
		Weights:        map[string]int{"img-a": 1 + rng.Intn(4), "img-b": 1 + rng.Intn(4)},
	}
	// Arrivals from a small lattice so clock/arrival ties are common —
	// the tie-break rules are the property under test.
	draw := func(n int) []Request {
		reqs := make([]Request, 0, n)
		for i := 0; i < n; i++ {
			img := images[rng.Intn(len(images))]
			arrival := uint64(rng.Intn(20)) * 5_000_000
			svc := uint64(1+rng.Intn(40)) * 1_000_000
			reqs = append(reqs, Request{Arrival: arrival, Image: img, Fn: costTask(svc)})
		}
		return reqs
	}
	cfg.batch = draw(40 + rng.Intn(160))
	cfg.singles = draw(rng.Intn(6))
	if rng.Intn(2) == 0 {
		cfg.rescaleTo = 1 + rng.Intn(16)
		cfg.batch2 = draw(20 + rng.Intn(40))
	}
	return cfg
}

// runCorpus executes one scenario on a fresh runtime with the selected
// dispatch core and projects every outcome.
func runCorpus(t *testing.T, cfg corpusConfig, linear bool) ([]dispatchKey, uint64, map[string]AdmissionStats) {
	t.Helper()
	var wopts []wasp.Option
	sopts := []Option{WithAdmission(cfg.adm), WithLinearDispatch(linear)}
	if cfg.twoBE {
		wopts = append(wopts, wasp.WithPlatforms(vmm.KVM{}, vmm.HyperV{}))
		sopts = append(sopts, WithWorkerPlatforms(vmm.KVM{}, vmm.HyperV{}))
	}
	switch cfg.placer {
	case 1:
		sopts = append(sopts, WithPlacer(placement.LeastLoaded{}))
	case 2:
		sopts = append(sopts, WithPlacer(placement.CostModel{}))
	}
	s := NewVirtual(wasp.New(wopts...), cfg.workers, sopts...)
	defer s.Close()
	var tickets []*Ticket
	tickets = append(tickets, s.SubmitBatchAt(cfg.batch)...)
	for _, r := range cfg.singles {
		tickets = append(tickets, s.SubmitFnAt(r.Arrival, r.Fn))
	}
	if cfg.rescaleTo > 0 {
		s.SetVirtualWorkers(cfg.rescaleTo, s.Makespan())
		tickets = append(tickets, s.SubmitBatchAt(cfg.batch2)...)
	}
	keys := make([]dispatchKey, len(tickets))
	for i, tk := range tickets {
		_, err := tk.Wait()
		keys[i] = dispatchKey{
			Worker: tk.Worker, Platform: tk.Platform,
			Arrival: tk.Arrival, Start: tk.Start, Done: tk.Done,
			Depth: tk.DepthAtSubmit, Image: tk.Image, Rejected: err != nil,
		}
	}
	stats := make(map[string]AdmissionStats)
	for _, img := range s.AdmissionImages() {
		st, _ := s.AdmissionStats(img)
		stats[img] = st
	}
	return keys, s.Makespan(), stats
}

// TestHeapDispatchMatchesLinearReference is the core differential
// property: for every random scenario, the heap core and the linear
// reference produce the same schedule, bit for bit.
func TestHeapDispatchMatchesLinearReference(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := drawCorpus(seed)
			lin, linMk, linSt := runCorpus(t, cfg, true)
			hp, hpMk, hpSt := runCorpus(t, cfg, false)
			if linMk != hpMk {
				t.Fatalf("makespan diverged: linear %d, heap %d (cfg %+v)", linMk, hpMk, cfg.adm)
			}
			for i := range lin {
				if lin[i] != hp[i] {
					t.Fatalf("ticket %d diverged (cfg %+v):\n linear: %+v\n heap:   %+v",
						i, cfg.adm, lin[i], hp[i])
				}
			}
			for img, st := range linSt {
				if hpSt[img] != st {
					t.Fatalf("admission stats for %s diverged:\n linear: %+v\n heap:   %+v",
						img, st, hpSt[img])
				}
			}
		})
	}
}

// TestHeapDispatchTieBreaks pins the deterministic tie-break rules the
// heap structures must preserve, one axis at a time.
func TestHeapDispatchTieBreaks(t *testing.T) {
	for _, mode := range []struct {
		name   string
		linear bool
	}{{"heap", false}, {"linear", true}} {
		t.Run(mode.name, func(t *testing.T) {
			// Equal clocks: idle workers all at clock 0 fill in id order.
			s := NewVirtual(wasp.New(), 3, WithLinearDispatch(mode.linear))
			var got []int
			for i := 0; i < 3; i++ {
				tk := s.SubmitFnAt(0, costTask(1000))
				tk.Wait()
				got = append(got, tk.Worker)
			}
			s.Close()
			if got[0] != 0 || got[1] != 1 || got[2] != 2 {
				t.Fatalf("equal-clock ties must fill workers in id order, got %v", got)
			}

			// Equal passes: two never-run images tie at pass 0; the
			// weighted pick must break toward the lexicographically
			// smaller name even when the larger one was submitted first.
			s = NewVirtual(wasp.New(), 1, WithAdmission(Admission{}), WithLinearDispatch(mode.linear))
			tks := s.SubmitBatchAt([]Request{
				{Arrival: 0, Image: "zeta", Fn: costTask(1000)},
				{Arrival: 0, Image: "alpha", Fn: costTask(1000)},
			})
			WaitAll(tks...)
			if !(tks[1].Start < tks[0].Start) {
				t.Fatalf("equal-pass tie must dispatch the smaller image name first: alpha start %d, zeta start %d",
					tks[1].Start, tks[0].Start)
			}
			s.Close()

			// Equal arrivals within one image: submission order (the
			// per-image backlog is a min-heap of submission indices, not
			// an arrival FIFO).
			s = NewVirtual(wasp.New(), 1, WithAdmission(Admission{}), WithLinearDispatch(mode.linear))
			tks = s.SubmitBatchAt([]Request{
				{Arrival: 0, Image: "img", Fn: costTask(1000)},
				{Arrival: 0, Image: "img", Fn: costTask(2000)},
				{Arrival: 0, Image: "img", Fn: costTask(3000)},
			})
			WaitAll(tks...)
			if !(tks[0].Start < tks[1].Start && tks[1].Start < tks[2].Start) {
				t.Fatalf("equal-arrival same-image ties must dispatch in submission order: starts %d, %d, %d",
					tks[0].Start, tks[1].Start, tks[2].Start)
			}
			s.Close()
		})
	}
}

// TestSetVirtualWorkersDeterministic pins the autoscaling primitive's
// semantics: growth cannot serve before the scale time, shrink parks
// the highest ids, and a shrink/regrow cycle is reproducible.
func TestSetVirtualWorkersDeterministic(t *testing.T) {
	run := func() []dispatchKey {
		s := NewVirtual(wasp.New(), 2)
		defer s.Close()
		var keys []dispatchKey
		note := func(tk *Ticket) {
			tk.Wait()
			keys = append(keys, dispatchKey{Worker: tk.Worker, Start: tk.Start, Done: tk.Done})
		}
		note(s.SubmitFnAt(0, costTask(1000)))
		if n := s.SetVirtualWorkers(4, 5000); n != 4 {
			t.Fatalf("grow to 4, got %d", n)
		}
		// The new workers' clocks start at the scale time: an arrival
		// before it lands on them no earlier than 5000.
		tk := s.SubmitFnAt(0, costTask(1000))
		note(tk)
		if tk.Worker != 1 {
			// worker 1 is idle at clock 0 — still the earliest-free.
			t.Fatalf("idle original worker should win, got worker %d", tk.Worker)
		}
		for i := 0; i < 6; i++ {
			note(s.SubmitFnAt(0, costTask(1000)))
		}
		if n := s.SetVirtualWorkers(1, 0); n != 1 {
			t.Fatalf("shrink to 1, got %d", n)
		}
		tk = s.SubmitFnAt(0, costTask(1000))
		note(tk)
		if tk.Worker != 0 {
			t.Fatalf("after shrink to 1 only worker 0 serves, got %d", tk.Worker)
		}
		return keys
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rescale schedule diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
