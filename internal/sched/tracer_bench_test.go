package sched

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/wasp"
)

// BenchmarkTracerOverhead prices the flight recorder on the dispatch
// hot path: one 10k-ticket weighted batch through the virtual heap
// core with no tracer, with a tracer attached but disabled (the
// always-on production configuration — the overhead contract holds
// this under 2% of the untraced baseline), and with recording enabled
// (contract: under 10%).
func BenchmarkTracerOverhead(b *testing.B) {
	const n = 10_000
	reqs := benchTrace(n)
	for _, mode := range []struct {
		name string
		mk   func() *obs.Tracer
	}{
		{"none", func() *obs.Tracer { return nil }},
		{"disabled", func() *obs.Tracer { return obs.NewTracer(obs.Deterministic(true)) }},
		{"enabled", func() *obs.Tracer {
			tr := obs.NewTracer(obs.Deterministic(true))
			tr.SetEnabled(true)
			return tr
		}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			// One long-lived tracer across iterations, as in production:
			// ring buffers are allocated once and wrap thereafter.
			tr := mode.mk()
			for i := 0; i < b.N; i++ {
				s := NewVirtual(wasp.New(), 16,
					WithAdmission(Admission{Weights: map[string]int{"api": 3, "web": 2, "spike": 2, "batch": 1}}),
					WithTracer(tr))
				s.SubmitBatchAt(reqs)
				if s.Makespan() == 0 {
					b.Fatal("empty makespan")
				}
				s.Close()
			}
		})
	}
}
