package sched

import "sort"

// This file holds the O(log n) side structures of the event-driven
// weighted batch dispatcher (dispatchVirtualWeightedHeap) and the
// incremental per-(backend, image) completion records behind the
// admission quota. Every structure obeys the determinism rules in
// internal/sched/README.md: total orders with explicit tie-breaks
// ((arrival, submission index), (pass, name), (done, worker id)) and no
// map iteration in decision order.

// arrEntry is one windowed-but-undispatched ticket, addressed by its
// index in the validated batch slice.
type arrEntry struct {
	arrival uint64
	idx     int
}

// arrHeap is a min-heap over (arrival, idx) with lazy deletion: the
// dispatcher marks tickets gone (dispatched or rejected) in a side
// array and stale tops are discarded at the next peek. It answers "the
// earliest arrival still outstanding" — the minArr scan of the old
// quadratic loop — in O(log n) amortized.
type arrHeap []arrEntry

func arrLess(a, b arrEntry) bool {
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return a.idx < b.idx
}

func (h *arrHeap) push(e arrEntry) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !arrLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *arrHeap) siftDown(i int) {
	s := *h
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s) && arrLess(s[l], s[small]) {
			small = l
		}
		if r < len(s) && arrLess(s[r], s[small]) {
			small = r
		}
		if small == i {
			return
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
}

// min returns the earliest live entry's arrival, discarding stale tops.
// The caller guarantees at least one live entry (winN > 0).
func (h *arrHeap) min(gone []bool) uint64 {
	s := *h
	for len(s) > 0 && gone[s[0].idx] {
		n := len(s) - 1
		s[0] = s[n]
		s = s[:n]
		*h = s
		h.siftDown(0)
		s = *h
	}
	return s[0].arrival
}

// imgWindow is one image's backlog inside the decision window: a
// min-heap of batch indices (submission order — the "first submitted
// per image" rule survives out-of-order arrivals) under the image's
// admission state.
type imgWindow struct {
	st     *imageState
	fifo   []int // min-heap of batch indices
	inHeap bool  // member of the pass-ordered image heap
}

func (iw *imgWindow) push(idx int) {
	iw.fifo = append(iw.fifo, idx)
	s := iw.fifo
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[i] >= s[p] {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// popMin removes and returns the lowest batch index.
func (iw *imgWindow) popMin() int {
	s := iw.fifo
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	iw.fifo = s[:n]
	iw.reheap(0)
	return top
}

func (iw *imgWindow) reheap(i int) {
	s := iw.fifo
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s) && s[l] < s[small] {
			small = l
		}
		if r < len(s) && s[r] < s[small] {
			small = r
		}
		if small == i {
			return
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
}

// heapify restores the min-heap property after an in-place filter.
func (iw *imgWindow) heapify() {
	for i := len(iw.fifo)/2 - 1; i >= 0; i-- {
		iw.reheap(i)
	}
}

// imgHeap is the pass-ordered image heap: the weighted fair pick pops
// the minimum (pass, name), exactly the old linear scan's winner. An
// image is in the heap iff its window backlog is nonempty; pop/push
// maintain the membership flag.
type imgHeap []*imgWindow

func imgLess(a, b *imgWindow) bool {
	if a.st.pass != b.st.pass {
		return a.st.pass < b.st.pass
	}
	return a.st.name < b.st.name
}

func (h *imgHeap) push(iw *imgWindow) {
	iw.inHeap = true
	*h = append(*h, iw)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !imgLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *imgHeap) pop() *imgWindow {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	*h = s[:n]
	s = *h
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s) && imgLess(s[l], s[small]) {
			small = l
		}
		if r < len(s) && imgLess(s[r], s[small]) {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	top.inHeap = false
	return top
}

// quotaRec is one worker's last completed run of an image on a backend
// — the record set behind the virtual per-backend quota. The slice per
// (backend, image) is kept sorted by (done, worker id), so the quota
// query walks at most the in-flight suffix and maintenance is a binary
// search, replacing quotaStartLocked's scan-all-workers + sort.Slice.
type quotaRec struct {
	start, done uint64
	wid         int
}

// quotaRecAdd records worker wid's latest run of img on backend be.
func (s *Scheduler) quotaRecAdd(be int, img string, start, done uint64, wid int) {
	m := s.quotaRecs[be]
	if m == nil {
		m = make(map[string][]quotaRec)
		s.quotaRecs[be] = m
	}
	recs := m[img]
	i := sort.Search(len(recs), func(i int) bool {
		if recs[i].done != done {
			return recs[i].done > done
		}
		return recs[i].wid >= wid
	})
	recs = append(recs, quotaRec{})
	copy(recs[i+1:], recs[i:])
	recs[i] = quotaRec{start: start, done: done, wid: wid}
	m[img] = recs
}

// quotaRecRemove drops worker wid's previous record (located by its old
// (done, wid) key) before the worker's clock moves.
func (s *Scheduler) quotaRecRemove(be int, img string, done uint64, wid int) {
	m := s.quotaRecs[be]
	if m == nil {
		return
	}
	recs := m[img]
	i := sort.Search(len(recs), func(i int) bool {
		if recs[i].done != done {
			return recs[i].done > done
		}
		return recs[i].wid >= wid
	})
	if i < len(recs) && recs[i].done == done && recs[i].wid == wid {
		m[img] = append(recs[:i], recs[i+1:]...)
	}
}

// quotaStartRecs is quotaStartLocked on the incremental records: the
// earliest virtual time >= start at which backend be's same-image
// in-flight count at `start` drops below the quota. Walking the
// done-sorted suffix from the largest completion, the quota-th
// qualifying record (started by `start`, completing after it) is
// exactly the old sorted-slice answer dones[len-quota]; fewer than
// quota qualifying records means the start stands. The candidate
// worker's own record never qualifies — its done equals its clock,
// which is <= start — so no self-exclusion is needed.
func (s *Scheduler) quotaStartRecs(img string, be int, start uint64, quota int) uint64 {
	m := s.quotaRecs[be]
	if m == nil {
		return start
	}
	recs := m[img]
	n := 0
	for i := len(recs) - 1; i >= 0 && recs[i].done > start; i-- {
		if recs[i].start <= start {
			n++
			if n == quota {
				return recs[i].done
			}
		}
	}
	return start
}
