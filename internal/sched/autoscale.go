package sched

import "fmt"

// Autoscaling policies for the virtual-mode capacity-planning engine:
// pure, deterministic functions from epoch telemetry to a desired fleet
// width and standby (prewarm) target, applied between epochs with
// SetVirtualWorkers. The signals mirror what the pool-sizing layer
// already consumes through ObserveLoad — queue depth and smoothed
// service cost — plus the SLO-facing queueing percentile a capacity
// planner actually cares about. Policies may keep internal state
// (hysteresis streaks); a fresh instance per run keeps runs
// reproducible.

// AutoSignal is the telemetry snapshot a policy reads at each epoch
// boundary. All times are virtual cycles.
type AutoSignal struct {
	At        uint64  // decision time: the epoch's end
	Epoch     uint64  // epoch length
	Workers   int     // active fleet width during the epoch
	Arrivals  int     // tickets that arrived in the epoch
	Backlog   int     // of those, still queued or running at the end
	SvcEWMA   uint64  // smoothed per-ticket service cycles
	QueueP99  uint64  // p99 queueing delay among the epoch's arrivals
	Util      float64 // served cycles / (workers × epoch), may exceed 1 under backlog
}

// AutoDecision is a policy's output for the next epoch. Workers is the
// active width; Prewarm is the standby capacity to keep booted ahead of
// demand — growth within the standby pool starts warm at the decision
// time, growth beyond it pays the cold-start penalty. Standby capacity
// is provisioned (it appears in the cost accounting) but serves nothing
// until a later decision activates it.
type AutoDecision struct {
	Workers int
	Prewarm int
}

// AutoPolicy maps epoch telemetry to the next epoch's fleet shape.
type AutoPolicy interface {
	Name() string
	Scale(sig AutoSignal) AutoDecision
}

// FixedScale is the no-op policy: a constant width, the baseline every
// frontier sweep compares against.
type FixedScale struct {
	N int
}

func (p FixedScale) Name() string { return fmt.Sprintf("fixed-%d", p.N) }

func (p FixedScale) Scale(AutoSignal) AutoDecision {
	return AutoDecision{Workers: p.N}
}

// QueueScale reacts to the queueing SLO directly: when the epoch's p99
// queueing delay exceeds the target it grows multiplicatively (×3/2,
// the classic fast-attack slope), and when the fleet is both quiet
// (p99 under a quarter of target) and idle (utilization under 40%) it
// decays by a quarter — slow release, so one calm epoch inside a
// diurnal trough does not flap the fleet. It keeps a quarter of the
// fleet as prewarmed standby, buying warm starts for the next attack.
type QueueScale struct {
	TargetP99 uint64 // queueing-delay SLO in cycles
	Min, Max  int
}

func (p QueueScale) Name() string { return "queue-p99" }

func (p QueueScale) Scale(sig AutoSignal) AutoDecision {
	n := sig.Workers
	switch {
	case sig.QueueP99 > p.TargetP99:
		n = n + n/2 + 1
	case sig.QueueP99 < p.TargetP99/4 && sig.Util < 0.40:
		n = n - n/4
	}
	n = clampInt(n, p.Min, p.Max)
	return AutoDecision{Workers: n, Prewarm: (n + 3) / 4}
}

// UtilScale is rate-based provisioning: the width that serves the
// epoch's observed arrival work at the target utilization,
// ceil(arrivals × svcEWMA / (epoch × target)). Growth applies
// immediately; shrink waits for Patience consecutive epochs of lower
// demand, the hysteresis that keeps heavy-tailed service times from
// flapping the fleet. Standby is the gap to the recent demand peak,
// capped at half the fleet.
type UtilScale struct {
	Target   float64 // e.g. 0.70
	Min, Max int
	Patience int // epochs of lower demand before shrinking (default 2)

	streak int
	peak   int
}

func (p *UtilScale) Name() string { return "util-target" }

func (p *UtilScale) Scale(sig AutoSignal) AutoDecision {
	target := p.Target
	if target <= 0 || target > 1 {
		target = 0.70
	}
	patience := p.Patience
	if patience <= 0 {
		patience = 2
	}
	work := float64(sig.Arrivals) * float64(sig.SvcEWMA)
	needed := int(work/(float64(sig.Epoch)*target)) + 1
	// Backlogged work is demand too: a fleet that fell behind must
	// catch up, not just match the arrival rate.
	if sig.Backlog > 0 {
		needed += (sig.Backlog*int(sig.SvcEWMA)/int(sig.Epoch) + 1)
	}
	needed = clampInt(needed, p.Min, p.Max)
	n := sig.Workers
	if needed > n {
		n = needed
		p.streak = 0
	} else if needed < n {
		p.streak++
		if p.streak >= patience {
			n = needed
			p.streak = 0
		}
	} else {
		p.streak = 0
	}
	if n > p.peak {
		p.peak = n
	}
	standby := p.peak - n
	if standby > n/2 {
		standby = n / 2
	}
	return AutoDecision{Workers: n, Prewarm: standby}
}

func clampInt(n, lo, hi int) int {
	if lo > 0 && n < lo {
		n = lo
	}
	if hi > 0 && n > hi {
		n = hi
	}
	return n
}
