package sched

import (
	"fmt"
	"testing"

	"repro/internal/wasp"
)

// benchTrace draws a dense four-image weighted batch: arrivals collide
// on a lattice spanning roughly the batch's own service demand, so the
// dispatcher runs with a persistent backlog — the regime where the
// per-step work of the two cores actually differs.
func benchTrace(n int) []Request {
	images := [...]string{"api", "web", "batch", "spike"}
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	reqs := make([]Request, n)
	for i := range reqs {
		r := next()
		reqs[i] = Request{
			Arrival: (r >> 2) % uint64(n) * 1000,
			Image:   images[r%4],
			Fn:      costTask(1000 + (r>>32)%50_000),
		}
	}
	return reqs
}

// BenchmarkVirtualDispatch measures one weighted batch dispatch through
// the O(log n) heap core and the linear reference at 1k/10k/100k
// tickets on a 16-worker virtual fleet. The linear core is O(n²) in
// batch size; its 100k point exists to demonstrate exactly that, so
// expect it to dominate the run (use -bench 'VirtualDispatch/heap' to
// skip it).
func BenchmarkVirtualDispatch(b *testing.B) {
	for _, mode := range []struct {
		name   string
		linear bool
	}{{"heap", false}, {"linear", true}} {
		for _, n := range []int{1_000, 10_000, 100_000} {
			reqs := benchTrace(n)
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := NewVirtual(wasp.New(), 16,
						WithAdmission(Admission{Weights: map[string]int{"api": 3, "web": 2, "spike": 2, "batch": 1}}),
						WithLinearDispatch(mode.linear))
					s.SubmitBatchAt(reqs)
					if s.Makespan() == 0 {
						b.Fatal("empty makespan")
					}
					s.Close()
				}
			})
		}
	}
}
