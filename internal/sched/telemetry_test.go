package sched

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/cycles"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/wasp"
)

// pairTask advances the clock by svc and reports svc as the run's entry
// count, so every note for the image folds equal svc/entries values
// into the EWMAs: the two smoothed fields must stay exactly equal for
// the image's whole lifetime. A torn read — one field new, the other
// old — is the only way a reader can observe them unequal.
func pairTask(svc uint64) Task {
	return func(clk *cycles.Clock) (*wasp.Result, error) {
		clk.Advance(svc)
		return &wasp.Result{Entries: svc}, nil
	}
}

// TestImageTelemetryTornPairs hammers real-mode completions on two
// images with wildly different service costs while concurrent readers
// poll ImageTelemetry; any torn svc/entries pair (or, under -race, any
// unsynchronized read of the EWMA store) fails the test. This is the
// regression gate for the accessor's locking contract.
func TestImageTelemetryTornPairs(t *testing.T) {
	s := New(wasp.New(), 4, WithPlacer(placement.LeastLoaded{}))
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, img := range []string{"hot", "cold"} {
					st, ok := s.ImageTelemetry(img)
					if ok && st.SvcEWMA != st.EntriesEWMA {
						t.Errorf("torn telemetry pair for %q: svc=%d entries=%d", img, st.SvcEWMA, st.EntriesEWMA)
					}
				}
			}
		}()
	}

	const rounds = 200
	for i := 0; i < rounds; i++ {
		reqs := []Request{
			{Image: "hot", Fn: pairTask(1000)},
			{Image: "hot", Fn: pairTask(9000)},
			{Image: "cold", Fn: pairTask(9000)},
			{Image: "cold", Fn: pairTask(1000)},
		}
		for _, tk := range s.SubmitBatch(reqs) {
			if _, err := tk.Wait(); err != nil {
				t.Fatalf("ticket: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()

	if got := s.TrackedImages(); got != 2 {
		t.Fatalf("TrackedImages = %d, want 2", got)
	}
	if _, ok := s.ImageTelemetry("hot"); !ok {
		t.Fatalf("ImageTelemetry(hot) reported absent after %d rounds", rounds)
	}
	if _, ok := s.ImageTelemetry("never-ran"); ok {
		t.Fatalf("ImageTelemetry invented telemetry for an unknown image")
	}
}

// TestImageTelemetryNoPlacer: without a placer the EWMA store does not
// exist; the accessor must report absence rather than panic.
func TestImageTelemetryNoPlacer(t *testing.T) {
	s := New(wasp.New(), 1)
	defer s.Close()
	if _, ok := s.ImageTelemetry("x"); ok {
		t.Fatalf("ImageTelemetry reported telemetry with no placer attached")
	}
	if got := s.TrackedImages(); got != 0 {
		t.Fatalf("TrackedImages = %d with no placer", got)
	}
}

// TestSchedRegisterMetrics wires a scheduler into a registry and checks
// the collector surfaces the lifetime counters.
func TestSchedRegisterMetrics(t *testing.T) {
	s := NewVirtual(wasp.New(), 2, WithPlacer(placement.LeastLoaded{}))
	defer s.Close()
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Arrival: uint64(i) * 100, Image: "api", Fn: pairTask(5000)}
	}
	for _, tk := range s.SubmitBatchAt(reqs) {
		if _, err := tk.Wait(); err != nil {
			t.Fatalf("ticket: %v", err)
		}
	}

	r := obs.NewRegistry()
	s.RegisterMetrics(r)
	snap := r.Snapshot()
	want := map[string]float64{
		"sched_submitted": 8,
		"sched_completed": 8,
		"sched_rejected":  0,
	}
	seen := map[string]bool{}
	for _, m := range snap {
		if v, ok := want[m.Name]; ok {
			seen[m.Name] = true
			if m.Value != v {
				t.Errorf("%s = %g, want %g", m.Name, m.Value, v)
			}
		}
		if strings.HasPrefix(m.Name, "sched_backend_completed") && m.Value != 8 {
			t.Errorf("%s = %g, want 8", m.Name, m.Value)
		}
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("metric %s missing from snapshot", name)
		}
	}
}
