package sched

import "testing"

// Policy units: the scaling laws are pure functions of the signal, so
// each rule is pinned directly.

func TestQueueScalePolicy(t *testing.T) {
	p := QueueScale{TargetP99: 1000, Min: 2, Max: 64}
	// SLO violation: multiplicative growth.
	d := p.Scale(AutoSignal{Workers: 8, QueueP99: 5000, Util: 0.9})
	if d.Workers != 13 {
		t.Fatalf("p99 breach must grow 8 -> 13 (×3/2+1), got %d", d.Workers)
	}
	if d.Prewarm != (13+3)/4 {
		t.Fatalf("queue policy keeps a quarter standby, got %d", d.Prewarm)
	}
	// Quiet and idle: quarter decay.
	d = p.Scale(AutoSignal{Workers: 8, QueueP99: 100, Util: 0.2})
	if d.Workers != 6 {
		t.Fatalf("quiet fleet must decay 8 -> 6, got %d", d.Workers)
	}
	// Quiet but busy: hold.
	d = p.Scale(AutoSignal{Workers: 8, QueueP99: 100, Util: 0.8})
	if d.Workers != 8 {
		t.Fatalf("busy fleet must hold at 8, got %d", d.Workers)
	}
	// Clamps.
	if d = p.Scale(AutoSignal{Workers: 60, QueueP99: 9999}); d.Workers != 64 {
		t.Fatalf("growth must clamp at Max=64, got %d", d.Workers)
	}
	if d = p.Scale(AutoSignal{Workers: 2, QueueP99: 0, Util: 0}); d.Workers != 2 {
		t.Fatalf("decay must clamp at Min=2, got %d", d.Workers)
	}
}

func TestUtilScaleHysteresis(t *testing.T) {
	p := &UtilScale{Target: 0.5, Min: 1, Max: 128, Patience: 2}
	// Demand for ~16 workers at 50% target: 8 workers' worth of work.
	busy := AutoSignal{Workers: 4, Arrivals: 800, SvcEWMA: 10_000, Epoch: 1_000_000}
	d := p.Scale(busy)
	if d.Workers != 17 {
		t.Fatalf("rate-based growth must be immediate: want 17, got %d", d.Workers)
	}
	// Demand drops: the first low epoch holds (patience), the second shrinks.
	idle := AutoSignal{Workers: 17, Arrivals: 100, SvcEWMA: 10_000, Epoch: 1_000_000}
	if d = p.Scale(idle); d.Workers != 17 {
		t.Fatalf("first low epoch must hold at 17, got %d", d.Workers)
	}
	if d = p.Scale(idle); d.Workers == 17 {
		t.Fatalf("second low epoch must shrink below 17")
	}
	// Standby covers the gap back to the demand peak, capped at half.
	if d.Prewarm == 0 {
		t.Fatalf("post-shrink standby must be nonzero (peak was 17)")
	}
	if d.Prewarm > d.Workers/2+1 {
		t.Fatalf("standby %d exceeds half the fleet %d", d.Prewarm, d.Workers)
	}
}

func TestFixedScale(t *testing.T) {
	p := FixedScale{N: 7}
	if d := p.Scale(AutoSignal{Workers: 3, QueueP99: 1 << 40}); d.Workers != 7 || d.Prewarm != 0 {
		t.Fatalf("fixed policy must always return 7/0, got %+v", d)
	}
	if p.Name() != "fixed-7" {
		t.Fatalf("name: %s", p.Name())
	}
}
