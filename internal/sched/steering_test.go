package sched

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/placement"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

func TestImgStatsLRUBoundAndEWMA(t *testing.T) {
	st := newImgStats(4)
	st.note("a", 100, 2)
	st.note("a", 200, 2)
	svc, entries := st.get("a")
	if svc != (7*100+200)/8 || entries != 2 {
		t.Fatalf("EWMA fold: svc=%d entries=%d", svc, entries)
	}
	for i := 0; i < 20; i++ {
		st.note(fmt.Sprintf("churn-%d", i), 10, 1)
	}
	if st.size() > 4 {
		t.Fatalf("tracked %d images, cap is 4", st.size())
	}
	if svc, _ := st.get("churn-19"); svc == 0 {
		t.Fatal("hottest image must survive eviction")
	}
	if svc, _ := st.get("a"); svc != 0 {
		t.Fatal("coldest image must have been evicted")
	}
	if newImgStats(0).limit != maxTrackedImages {
		t.Fatal("limit 0 must fall back to the default cap")
	}
}

// Regression for the telemetry leak: with a placer attached, the
// scheduler used to keep one per-image EWMA entry forever, so tenant
// churn (every WithName clone is a new image name) grew the map without
// bound. The store is LRU-capped now.
func TestSchedulerImageTelemetryBounded(t *testing.T) {
	w := splitWasp()
	s := NewVirtual(w, 2,
		WithWorkerPlatforms(vmm.KVM{}, vmm.HyperV{}),
		WithPlacer(placement.CostModel{}))
	defer s.Close()
	s.imgStats = newImgStats(16) // shrink the cap so the test stays cheap
	base := guest.RealModeHalt()
	for i := 0; i < 64; i++ {
		tk := s.Submit(base.WithName(fmt.Sprintf("tenant-%d", i)), wasp.RunConfig{})
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.imgStats.size(); n > 16 {
		t.Fatalf("per-image telemetry grew to %d entries under churn, cap is 16", n)
	}
	if svc, _ := s.imgStats.get("tenant-63"); svc == 0 {
		t.Fatal("most recent tenant's telemetry must be retained")
	}
	if svc, _ := s.imgStats.get("tenant-0"); svc != 0 {
		t.Fatal("oldest tenant's telemetry must have been evicted")
	}
}

// Stats-based steering: on a 2+2 KVM/Paravirt fleet under the cost
// model, a short-lived quiet image must land predominantly on the
// cheap-create backend in REAL mode — the weights now steer racing
// workers, not just gate eligibility. Submissions are sequential, so the
// preferred backend always has an idle worker and steering never has to
// yield to work conservation.
func TestRealModeSteeringPrefersCheapCreate(t *testing.T) {
	w := wasp.New(wasp.WithPlatforms(vmm.KVM{}, vmm.Paravirt{}))
	s := New(w, 4,
		WithWorkerPlatforms(vmm.KVM{}, vmm.Paravirt{}),
		WithPlacer(placement.CostModel{}))
	defer s.Close()
	img := guest.RealModeHalt().WithName("steer-short")
	onKVM := 0
	const runs = 30
	for i := 0; i < runs; i++ {
		tk := s.Submit(img, wasp.RunConfig{})
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
		if tk.Platform == "kvm" {
			onKVM++
		}
	}
	t.Logf("short image: %d/%d runs on kvm", onKVM, runs)
	if onKVM < runs*6/10 {
		t.Fatalf("short image served on kvm only %d/%d times; the cost model's weights must steer real-mode dispatch", onKVM, runs)
	}
}

// steerPlacer sends "hog" tickets to KVM only and decisively prefers
// KVM for everything else (paravirt stays eligible at a large bias).
type steerPlacer struct{}

func (steerPlacer) Place(img placement.ImageInfo, backends []placement.BackendInfo) []float64 {
	out := make([]float64, len(backends))
	for i, b := range backends {
		switch {
		case img.Name == "hog":
			if b.Platform.Name() == "kvm" {
				out[i] = 1
			}
		case b.Platform.Name() == "kvm":
			out[i] = 1
		default:
			out[i] = 1.0 / 1_000_000
		}
	}
	return out
}

// Steering is a preference, not a pin: once the preferred backend is
// saturated, another eligible backend's idle workers take the ticket
// over. Both KVM workers are parked inside blocking tickets, so every
// steered short must complete on paravirt — deterministically, while the
// hogs are still mid-flight.
func TestRealModeSteeringYieldsWhenPreferredSaturated(t *testing.T) {
	w := wasp.New(wasp.WithPlatforms(vmm.KVM{}, vmm.Paravirt{}))
	s := New(w, 4,
		WithWorkerPlatforms(vmm.KVM{}, vmm.Paravirt{}),
		WithPlacer(steerPlacer{}))
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	hog := func(clk *cycles.Clock) (*wasp.Result, error) {
		started <- struct{}{}
		<-release
		return &wasp.Result{}, nil
	}
	hogs := s.SubmitBatch([]Request{
		{Fn: hog, Image: "hog"},
		{Fn: hog, Image: "hog"},
	})
	<-started
	<-started // both KVM workers now occupied mid-ticket

	img := guest.RealModeHalt().WithName("steer-takeover")
	var shorts []*Ticket
	for i := 0; i < 8; i++ {
		shorts = append(shorts, s.Submit(img, wasp.RunConfig{}))
	}
	if err := WaitAll(shorts...); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := WaitAll(hogs...); err != nil {
		t.Fatal(err)
	}
	for _, tk := range shorts {
		if tk.Platform != "paravirt" {
			t.Fatalf("steered short ran on %s while its preferred backend was saturated; want paravirt takeover", tk.Platform)
		}
	}
	for _, tk := range hogs {
		if tk.Platform != "kvm" {
			t.Fatalf("hog ran on %s, placed kvm-only", tk.Platform)
		}
	}
}

// Real-mode per-backend quota: MaxPerBackend 1 on a 2+2 fleet caps one
// image at one in-flight ticket per backend, so at most 2 of the 4
// workers may ever hold its tickets concurrently.
func TestRealModePerBackendQuotaBoundsConcurrency(t *testing.T) {
	w := splitWasp()
	s := New(w, 4,
		WithWorkerPlatforms(vmm.KVM{}, vmm.HyperV{}),
		WithAdmission(Admission{MaxPerBackend: 1}))
	defer s.Close()

	var inflight, peak atomic.Int64
	fn := func(clk *cycles.Clock) (*wasp.Result, error) {
		n := inflight.Add(1)
		for {
			m := peak.Load()
			if n <= m || peak.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(3 * time.Millisecond)
		inflight.Add(-1)
		return &wasp.Result{}, nil
	}
	reqs := make([]Request, 12)
	for i := range reqs {
		reqs[i] = Request{Fn: fn, Image: "quota-img"}
	}
	tickets := s.SubmitBatch(reqs)
	if err := WaitAll(tickets...); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("image reached %d concurrent tickets; per-backend quota 1 on 2 backends allows at most 2", p)
	}
	perBE := map[string]int{}
	for _, tk := range tickets {
		perBE[tk.Platform]++
	}
	if perBE["kvm"] == 0 || perBE["hyper-v"] == 0 {
		t.Fatalf("per-backend split %v: the quota must spread the image across backends, not serialize it onto one", perBE)
	}
}

// Virtual-mode per-backend quota: the deterministic dispatcher models
// the quota as a delayed start, so one image's runs never overlap in
// virtual time on the same backend (MaxPerBackend 1), even across that
// backend's two workers.
func TestVirtualPerBackendQuotaSerializesPerBackend(t *testing.T) {
	w := splitWasp()
	s := NewVirtual(w, 4,
		WithWorkerPlatforms(vmm.KVM{}, vmm.HyperV{}),
		WithAdmission(Admission{MaxPerBackend: 1}))
	defer s.Close()
	img := guest.RealModeHalt().WithName("vquota")
	reqs := make([]Request, 16)
	for i := range reqs {
		reqs[i] = Request{Arrival: uint64(i) * 1_000, Img: img}
	}
	tickets := s.SubmitBatchAt(reqs)
	if err := WaitAll(tickets...); err != nil {
		t.Fatal(err)
	}
	for i, a := range tickets {
		for j, b := range tickets {
			if j <= i || a.Platform != b.Platform {
				continue
			}
			if a.Start < b.Done && b.Start < a.Done {
				t.Fatalf("tickets %d [%d,%d) and %d [%d,%d) overlap on %s; quota 1 must serialize the image per backend",
					i, a.Start, a.Done, j, b.Start, b.Done, a.Platform)
			}
		}
	}
	perBE := map[string]int{}
	for _, tk := range tickets {
		perBE[tk.Platform]++
	}
	if perBE["kvm"] == 0 || perBE["hyper-v"] == 0 {
		t.Fatalf("per-backend split %v: with each backend capped, the backlog must spill across both", perBE)
	}
}
