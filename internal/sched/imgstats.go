package sched

import (
	"container/list"

	"repro/internal/stats"
)

// maxTrackedImages bounds the scheduler's per-image placement telemetry.
// Under tenant churn every WithName clone is a distinct image name, so an
// unbounded map leaks one entry per tenant forever; the LRU cap keeps the
// hot working set and ages cold tenants out. Eviction follows note order,
// which virtual mode replays identically — the bound never breaks
// determinism.
const maxTrackedImages = 4096

// imgStat is one image's smoothed placement telemetry: service cycles
// per run and guest entries per run.
type imgStat struct {
	name    string
	svc     uint64
	entries uint64
}

// imgStats is the LRU-bounded per-image EWMA store the placement layer
// consults (ImageInfo.SvcEWMA / EntriesEWMA). Guarded by the owning
// scheduler's dispatch lock.
type imgStats struct {
	limit int
	m     map[string]*list.Element
	lru   *list.List // *imgStat, front = most recently noted
}

func newImgStats(limit int) *imgStats {
	if limit <= 0 {
		limit = maxTrackedImages
	}
	return &imgStats{limit: limit, m: make(map[string]*list.Element), lru: list.New()}
}

// note folds one completed run into the image's EWMAs, evicting the
// coldest image when the store is full.
func (s *imgStats) note(name string, svc, entries uint64) {
	if e, ok := s.m[name]; ok {
		st := e.Value.(*imgStat)
		st.svc = stats.EWMA(st.svc, svc)
		st.entries = stats.EWMA(st.entries, entries)
		s.lru.MoveToFront(e)
		return
	}
	for s.lru.Len() >= s.limit {
		old := s.lru.Back()
		s.lru.Remove(old)
		delete(s.m, old.Value.(*imgStat).name)
	}
	s.m[name] = s.lru.PushFront(&imgStat{name: name, svc: svc, entries: entries})
}

// get reads the image's EWMAs without touching its LRU position; (0, 0)
// for images never noted (or already evicted).
func (s *imgStats) get(name string) (svc, entries uint64) {
	if e, ok := s.m[name]; ok {
		st := e.Value.(*imgStat)
		return st.svc, st.entries
	}
	return 0, 0
}

// size reports the tracked-image count (the leak test's bound).
func (s *imgStats) size() int { return s.lru.Len() }
