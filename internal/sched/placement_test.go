package sched

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/guest"
	"repro/internal/placement"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

func splitWasp() *wasp.Wasp {
	return wasp.New(wasp.WithPlatforms(vmm.KVM{}, vmm.HyperV{}))
}

// Real mode: a worker must only pop tickets its backend may serve. Pin
// two images to opposite platforms, drive a burst, and check every
// ticket landed on its pinned backend.
func TestRealModePlatformAffinity(t *testing.T) {
	w := splitWasp()
	imgK := guest.RealModeHalt().WithName("affine-kvm")
	imgH := guest.RealModeHalt().WithName("affine-hv")
	pl := placement.Static{Pins: map[string]string{
		imgK.Name: "kvm",
		imgH.Name: "hyper-v",
	}}
	s := New(w, 4, WithWorkerPlatforms(vmm.KVM{}, vmm.HyperV{}), WithPlacer(pl))
	defer s.Close()

	var tickets []*Ticket
	for i := 0; i < 32; i++ {
		tickets = append(tickets, s.Submit(imgK, wasp.RunConfig{}), s.Submit(imgH, wasp.RunConfig{}))
	}
	if err := WaitAll(tickets...); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		want := "kvm"
		if tk.Image == imgH.Name {
			want = "hyper-v"
		}
		if tk.Platform != want {
			t.Fatalf("image %s served on %s, pinned to %s", tk.Image, tk.Platform, want)
		}
	}
	for _, bl := range s.BackendLoads() {
		if bl.Completed != 32 {
			t.Fatalf("backend %s completed %d, want 32", bl.Platform, bl.Completed)
		}
	}
}

// Platform affinity must also hold under an admission policy: the
// weighted pick may only hand a worker images its backend serves.
func TestRealModeAffinityWithAdmission(t *testing.T) {
	w := splitWasp()
	imgK := guest.RealModeHalt().WithName("adm-kvm")
	imgH := guest.RealModeHalt().WithName("adm-hv")
	pl := placement.Static{Pins: map[string]string{imgK.Name: "kvm", imgH.Name: "hyper-v"}}
	s := New(w, 4,
		WithWorkerPlatforms(vmm.KVM{}, vmm.HyperV{}),
		WithPlacer(pl),
		WithAdmission(Admission{}))
	defer s.Close()

	batch := make([]Request, 0, 48)
	for i := 0; i < 24; i++ {
		batch = append(batch,
			Request{Img: imgK, Cfg: wasp.RunConfig{}},
			Request{Img: imgH, Cfg: wasp.RunConfig{}})
	}
	tickets := s.SubmitBatch(batch)
	if err := WaitAll(tickets...); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		want := "kvm"
		if tk.Image == imgH.Name {
			want = "hyper-v"
		}
		if tk.Platform != want {
			t.Fatalf("image %s served on %s under admission, pinned to %s", tk.Image, tk.Platform, want)
		}
	}
}

// An image pinned to a platform outside the fleet is rejected with
// ErrPlacement in both modes and on both submit paths.
func TestUnplaceableImageRejected(t *testing.T) {
	img := guest.RealModeHalt().WithName("nowhere")
	pl := placement.Static{Pins: map[string]string{img.Name: "xen"}}
	for _, virtual := range []bool{false, true} {
		w := splitWasp()
		var s *Scheduler
		opts := []Option{WithWorkerPlatforms(vmm.KVM{}, vmm.HyperV{}), WithPlacer(pl)}
		if virtual {
			s = NewVirtual(w, 2, opts...)
		} else {
			s = New(w, 2, opts...)
		}
		tk := s.Submit(img, wasp.RunConfig{})
		if _, err := tk.Wait(); !errors.Is(err, ErrPlacement) {
			t.Fatalf("virtual=%v: err = %v, want ErrPlacement", virtual, err)
		}
		batch := s.SubmitBatch([]Request{{Img: img, Cfg: wasp.RunConfig{}}})
		if _, err := batch[0].Wait(); !errors.Is(err, ErrPlacement) {
			t.Fatalf("virtual=%v batch: err = %v, want ErrPlacement", virtual, err)
		}
		if got := s.Rejected(); got != 2 {
			t.Fatalf("virtual=%v: Rejected = %d, want 2", virtual, got)
		}
		if s.Submitted() != s.Completed()+s.Rejected() {
			t.Fatalf("virtual=%v: submitted != completed+rejected", virtual)
		}
		s.Close()
	}
}

// WithWorkerPlatforms on a platform the Wasp does not own is a
// misconfigured fleet: construction must panic loudly.
func TestWorkerPlatformValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a worker platform outside the runtime's backends")
		}
	}()
	New(wasp.New(), 2, WithWorkerPlatforms(vmm.HyperV{}))
}

// String and WorkerInfo must expose the per-backend fleet shape.
func TestStringAndWorkerInfoReportBackends(t *testing.T) {
	w := splitWasp()
	s := New(w, 4, WithWorkerPlatforms(vmm.KVM{}, vmm.HyperV{}))
	defer s.Close()
	tk := s.Submit(guest.RealModeHalt(), wasp.RunConfig{})
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if str := s.String(); !strings.Contains(str, "kvm:2w") || !strings.Contains(str, "hyper-v:2w") {
		t.Fatalf("String() = %q, want per-backend worker counts", str)
	}
	plats := map[string]int{}
	for _, wl := range s.WorkerInfo() {
		plats[wl.Platform]++
	}
	if plats["kvm"] != 2 || plats["hyper-v"] != 2 {
		t.Fatalf("WorkerInfo platforms = %v, want 2+2", plats)
	}
}

// Virtual-mode determinism at the scheduler level: the same mixed-fleet
// batch under each policy must produce bit-identical makespans and
// per-ticket (worker, platform, start, done) assignments run over run.
func TestVirtualPlacementDeterministic(t *testing.T) {
	imgS := guest.RealModeHalt().WithName("det-short")
	imgL := guest.MinimalHalt().WithName("det-long")
	build := func() []Request {
		var reqs []Request
		for i := 0; i < 40; i++ {
			img := imgS
			if i%5 == 0 {
				img = imgL
			}
			reqs = append(reqs, Request{Arrival: uint64(i) * 3_000, Img: img})
		}
		return reqs
	}
	type key struct {
		worker      int
		platform    string
		start, done uint64
	}
	for _, pl := range []placement.Placer{
		placement.Static{Default: "kvm"},
		placement.LeastLoaded{},
		placement.CostModel{},
	} {
		run := func() ([]key, uint64) {
			w := splitWasp()
			s := NewVirtual(w, 4, WithWorkerPlatforms(vmm.KVM{}, vmm.HyperV{}), WithPlacer(pl))
			defer s.Close()
			tickets := s.SubmitBatchAt(build())
			if err := WaitAll(tickets...); err != nil {
				t.Fatal(err)
			}
			out := make([]key, len(tickets))
			for i, tk := range tickets {
				out[i] = key{tk.Worker, tk.Platform, tk.Start, tk.Done}
			}
			return out, s.Makespan()
		}
		a, ma := run()
		b, mb := run()
		if ma != mb {
			t.Fatalf("%T: makespan diverged: %d vs %d", pl, ma, mb)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%T: ticket %d assignment diverged: %+v vs %+v", pl, i, a[i], b[i])
			}
		}
	}
}

// Close must not hang when the queue holds a platform-pinned backlog:
// the worker of the other backend parks on tickets it may not pop, and
// it must be woken once the eligible worker drains the last one.
// (Regression: the drain-to-zero transition used to wake nobody, so
// wg.Wait inside Close slept forever on the parked worker.)
func TestCloseDrainsPlatformPinnedBacklog(t *testing.T) {
	for round := 0; round < 8; round++ {
		w := splitWasp()
		img := guest.RealModeHalt().WithName("close-pinned")
		pl := placement.Static{Pins: map[string]string{img.Name: "hyper-v"}, Default: "hyper-v"}
		s := New(w, 2, WithWorkerPlatforms(vmm.KVM{}, vmm.HyperV{}), WithPlacer(pl), WithQueueCap(128))
		var tickets []*Ticket
		for i := 0; i < 50; i++ {
			tickets = append(tickets, s.Submit(img, wasp.RunConfig{}))
		}
		done := make(chan struct{})
		go func() {
			s.Close()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("Close hung with a platform-pinned backlog queued")
		}
		for _, tk := range tickets {
			if _, err := tk.Wait(); err != nil && !errors.Is(err, ErrClosed) {
				t.Fatalf("ticket error: %v", err)
			} else if err == nil && tk.Platform != "hyper-v" {
				t.Fatalf("pinned ticket ran on %s", tk.Platform)
			}
		}
	}
}

// 16 goroutines hammer a mixed two-backend fleet — single submits,
// batches, pinned and free images — while another goroutine closes the
// scheduler mid-flight. Run under -race. Every ticket must either
// complete on an allowed backend or fail with ErrClosed, and the
// accounting identity must hold; the wasp-level cross-platform panic
// guards shell integrity throughout.
func TestPlacementStressMixedBackendsWithClose(t *testing.T) {
	w := wasp.New(wasp.WithPlatforms(vmm.KVM{}, vmm.HyperV{}), wasp.WithAsyncClean(true))
	imgK := guest.RealModeHalt().WithName("stress-kvm")
	imgH := guest.RealModeHalt().WithName("stress-hv")
	imgAny := guest.RealModeHalt().WithName("stress-any")
	pl := placement.Static{Pins: map[string]string{imgK.Name: "kvm", imgH.Name: "hyper-v"}}
	s := New(w, 4, WithWorkerPlatforms(vmm.KVM{}, vmm.HyperV{}), WithPlacer(pl), WithQueueCap(64))

	const goroutines = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var all []*Ticket
	closeGate := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			imgs := []*guest.Image{imgK, imgH, imgAny}
			var local []*Ticket
			for i := 0; i < 30; i++ {
				img := imgs[(g+i)%len(imgs)]
				if i%7 == 0 {
					local = append(local, s.SubmitBatch([]Request{
						{Img: img, Cfg: wasp.RunConfig{}},
						{Img: imgs[(g+i+1)%len(imgs)], Cfg: wasp.RunConfig{}},
					})...)
				} else {
					local = append(local, s.Submit(img, wasp.RunConfig{}))
				}
				if g == 0 && i == 15 {
					close(closeGate)
				}
			}
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}(g)
	}
	go func() {
		<-closeGate
		s.Close()
	}()
	wg.Wait()
	s.Close()

	var completed, rejected uint64
	for _, tk := range all {
		_, err := tk.Wait()
		switch {
		case err == nil:
			completed++
			switch tk.Image {
			case imgK.Name:
				if tk.Platform != "kvm" {
					t.Fatalf("pinned image ran on %s", tk.Platform)
				}
			case imgH.Name:
				if tk.Platform != "hyper-v" {
					t.Fatalf("pinned image ran on %s", tk.Platform)
				}
			}
		case errors.Is(err, ErrClosed):
			rejected++
		default:
			t.Fatalf("unexpected ticket error: %v", err)
		}
	}
	if completed != s.Completed() || rejected != s.Rejected() {
		t.Fatalf("ticket counts (%d done, %d rejected) disagree with scheduler (%d, %d)",
			completed, rejected, s.Completed(), s.Rejected())
	}
	if s.Submitted() != s.Completed()+s.Rejected() {
		t.Fatalf("Submitted %d != Completed %d + Rejected %d", s.Submitted(), s.Completed(), s.Rejected())
	}
}
