// Package sched is the unified virtine scheduler: the one dispatch
// substrate every concurrent client of the Wasp runtime goes through.
//
// The paper anticipates virtines behaving "like asynchronous functions
// or futures" (§2), and the Wasp runtime (§5) is built to serve many
// concurrent invocations. Before this layer existed, every client
// reinvented dispatch — core.Future spawned raw goroutines, the
// serverless platform hand-rolled an earliest-free-worker array, httpd
// served strictly sequentially. sched centralizes that: a bounded
// worker pool in which each worker owns a virtual clock (modelling one
// core's TSC, exactly like the paper's per-core rdtsc methodology),
// a ticket/future API, queue-depth accounting, and a completion hook.
//
// Two execution modes share the same API and semantics:
//
//   - Real mode (New): N worker goroutines drain a bounded queue.
//     Virtines on different workers execute concurrently on the host —
//     this is the mode the throughput benchmarks exercise, and it is
//     what makes the sharded shell pools in internal/wasp matter.
//   - Virtual mode (NewVirtual): deterministic event-driven dispatch in
//     the submitting goroutine. Tickets are assigned to the
//     earliest-free worker in virtual time; queueing delay comes from
//     the worker clocks, i.e. from real queue state. The serverless
//     Fig 15 simulation uses this mode so results stay reproducible.
//
// The scheduler is also the drive shaft of true Wasp+CA (Fig 8): when
// the runtime cleans shells asynchronously, real-mode workers scrub
// dirty shells on a low-priority lane whenever the ticket queue is
// momentarily empty (cleaning rides the pool's idle capacity, never a
// request clock), and virtual mode drives the runtime's Cleaner as a
// dedicated virtual core whose clock absorbs every zeroing cost
// (CleanerCycles). Completed image tickets additionally feed their
// queue-depth and service-time telemetry back into the runtime's
// pool-sizing policy (wasp.ObserveLoad), so bursts prewarm the warm
// shell pool and idle periods shrink it.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/wasp"
)

// Task is one unit of schedulable work. It runs on a worker, advancing
// that worker's virtual clock by the work's full service cost.
type Task func(clk *cycles.Clock) (*wasp.Result, error)

// ErrClosed is the error carried by tickets submitted to a scheduler
// that has been closed.
var ErrClosed = errors.New("sched: scheduler closed")

// Ticket is the future for one scheduled invocation. Wait blocks until
// the work completes; the timing fields (Arrival, Start, Done, Worker,
// DepthAtSubmit) are valid once Wait has returned.
type Ticket struct {
	run  Task
	done chan struct{}
	// hasArrival records whether the caller declared a virtual arrival
	// time (SubmitAt/SubmitFnAt). Undeclared tickets take their worker's
	// clock at dequeue as Arrival, so they report zero queueing delay —
	// per-worker clocks are independent timelines, and a wait measured
	// against an arrival the caller never declared would be fiction.
	hasArrival bool

	// Arrival is the virtual time the request entered the system: the
	// caller-declared arrival, or the assigned worker's clock at dequeue
	// when none was declared.
	Arrival uint64
	// Start and Done are the virtual times service began and finished
	// on the assigned worker; Start-Arrival is the queueing delay.
	Start, Done uint64
	// Worker is the index of the worker that served the ticket.
	Worker int
	// DepthAtSubmit is the queue depth observed when the ticket was
	// submitted (real mode: tickets waiting in the queue; virtual mode:
	// workers still busy at the arrival time).
	DepthAtSubmit int

	// memBytes is the guest-memory size class of an image submission;
	// 0 for raw tasks. Completed image tickets feed the pool-sizing
	// policy with it.
	memBytes int

	res *wasp.Result
	err error
}

// Wait blocks until the ticket's work has completed and returns its
// result. Wait may be called any number of times, from any goroutine.
func (t *Ticket) Wait() (*wasp.Result, error) {
	<-t.done
	return t.res, t.err
}

// QueueCycles reports how long the ticket waited between its declared
// virtual arrival and the start of service. Tickets submitted without
// an arrival time (Submit/SubmitFn) report 0 — use SubmitAt/SubmitFnAt
// for virtual-time queue accounting, or DepthAtSubmit for instantaneous
// backlog. Valid after Wait.
func (t *Ticket) QueueCycles() uint64 {
	// A ticket that never started service (e.g. submitted after Close)
	// keeps Start == 0; with a nonzero declared Arrival the subtraction
	// would wrap to ~1.8e19 cycles. Report zero queueing instead.
	if t.Start < t.Arrival {
		return 0
	}
	return t.Start - t.Arrival
}

// ServiceCycles reports the service time on the worker (virtual
// cycles). Valid after Wait.
func (t *Ticket) ServiceCycles() uint64 { return t.Done - t.Start }

// WaitAll waits for every ticket and returns the first error, if any.
// All tickets run to completion regardless — a virtine is destroyed
// with its VM, never interrupted.
func WaitAll(tickets ...*Ticket) error {
	var firstErr error
	for _, t := range tickets {
		if _, err := t.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// worker is one execution lane with its own virtual clock — the model
// of one physical core serving virtines back to back. runs is atomic so
// WorkerLoads stays a safe diagnostic read even while workers execute.
type worker struct {
	id   int
	clk  *cycles.Clock
	runs atomic.Uint64
}

// Scheduler is a bounded worker-pool executor over a Wasp runtime.
type Scheduler struct {
	w       *wasp.Wasp
	virtual bool

	// cleaner is the runtime's Wasp+CA background cleaner, when async
	// cleaning is on: real-mode workers drain it on the idle lane;
	// virtual mode drives it as a dedicated virtual core.
	cleaner       *wasp.Cleaner
	cleanerDrains atomic.Uint64

	queue chan *Ticket // real mode only
	wg    sync.WaitGroup

	mu      sync.Mutex   // virtual-mode dispatch
	closeMu sync.RWMutex // guards closed; submits hold the read side
	closed  bool
	workers []*worker

	depth      atomic.Int64
	peakDepth  atomic.Int64
	submitted  atomic.Uint64
	completed  atomic.Uint64
	onComplete func(*Ticket)
}

// Option configures a Scheduler.
type Option func(*Scheduler)

// WithQueueCap bounds the real-mode submission queue (default
// 4×workers). Submit blocks when the queue is full — backpressure
// instead of unbounded growth.
func WithQueueCap(n int) Option {
	return func(s *Scheduler) {
		if n > 0 {
			s.queue = make(chan *Ticket, n)
		}
	}
}

// WithOnComplete installs a completion hook, invoked once per ticket
// after its timing fields are final and before Wait unblocks. In real
// mode the hook runs on worker goroutines and must be safe for
// concurrent use; in virtual mode it runs in the submitting goroutine.
func WithOnComplete(fn func(*Ticket)) Option {
	return func(s *Scheduler) { s.onComplete = fn }
}

// New builds a real-mode scheduler: n worker goroutines, each with its
// own virtual clock, draining a bounded queue.
func New(w *wasp.Wasp, n int, opts ...Option) *Scheduler {
	s := newScheduler(w, n, false, opts...)
	if s.queue == nil {
		s.queue = make(chan *Ticket, 4*n)
	}
	for _, wk := range s.workers {
		s.wg.Add(1)
		go s.workerLoop(wk)
	}
	return s
}

// NewVirtual builds a virtual-mode scheduler: deterministic
// earliest-free-worker dispatch over per-worker virtual clocks, run
// synchronously in the submitting goroutine.
func NewVirtual(w *wasp.Wasp, n int, opts ...Option) *Scheduler {
	return newScheduler(w, n, true, opts...)
}

func newScheduler(w *wasp.Wasp, n int, virtual bool, opts ...Option) *Scheduler {
	if n < 1 {
		n = 1
	}
	s := &Scheduler{w: w, virtual: virtual}
	s.workers = make([]*worker, n)
	for i := range s.workers {
		s.workers[i] = &worker{id: i, clk: cycles.NewClock()}
	}
	for _, o := range opts {
		o(s)
	}
	if c := w.Cleaner(); c != nil {
		s.cleaner = c
		if virtual {
			// Model the cleaner as a dedicated virtual core: this
			// scheduler drains it deterministically after each ticket
			// (DrainAt) instead of the wall-clock background goroutine.
			c.SetDriven(true)
		}
	}
	return s
}

// NumWorkers reports the worker-pool width.
func (s *Scheduler) NumWorkers() int { return len(s.workers) }

// Wasp exposes the underlying runtime.
func (s *Scheduler) Wasp() *wasp.Wasp { return s.w }

// Submit schedules one virtine execution — the asynchronous analogue of
// wasp.Run. The returned Ticket is the future for its result.
func (s *Scheduler) Submit(img *guest.Image, cfg wasp.RunConfig) *Ticket {
	return s.submit(0, false, img.MemBytes(), s.runTask(img, cfg))
}

// SubmitAt schedules a virtine execution arriving at the given virtual
// time. The assigned worker's clock first advances to the arrival time,
// so queueing delay is measured against it.
func (s *Scheduler) SubmitAt(arrival uint64, img *guest.Image, cfg wasp.RunConfig) *Ticket {
	return s.submit(arrival, true, img.MemBytes(), s.runTask(img, cfg))
}

func (s *Scheduler) runTask(img *guest.Image, cfg wasp.RunConfig) Task {
	return func(clk *cycles.Clock) (*wasp.Result, error) {
		return s.w.Run(img, cfg, clk)
	}
}

// SubmitFn schedules an arbitrary task on the worker pool.
func (s *Scheduler) SubmitFn(fn Task) *Ticket { return s.submit(0, false, 0, fn) }

// SubmitFnAt schedules an arbitrary task arriving at the given virtual
// time.
func (s *Scheduler) SubmitFnAt(arrival uint64, fn Task) *Ticket {
	return s.submit(arrival, true, 0, fn)
}

func (s *Scheduler) submit(arrival uint64, hasArrival bool, memBytes int, fn Task) *Ticket {
	t := &Ticket{run: fn, Arrival: arrival, hasArrival: hasArrival, memBytes: memBytes, done: make(chan struct{})}
	// The read lock lets submits proceed concurrently while excluding
	// Close: the queue cannot be closed under an in-flight send, and a
	// submit after Close gets an ErrClosed ticket instead of a panic.
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		t.err = ErrClosed
		close(t.done)
		return t
	}
	s.submitted.Add(1)
	if s.virtual {
		s.dispatchVirtual(t)
		return t
	}
	d := s.depth.Add(1)
	for {
		p := s.peakDepth.Load()
		if d <= p || s.peakDepth.CompareAndSwap(p, d) {
			break
		}
	}
	t.DepthAtSubmit = int(d - 1) // tickets already waiting ahead of this one
	s.queue <- t
	return t
}

// workerLoop drains tickets with priority; when the queue is
// momentarily empty it scrubs one dirty shell from the runtime's
// cleaner (the Wasp+CA low-priority lane) before blocking for the next
// ticket. Cleaning runs on the worker's host thread but is never
// charged to its virtual clock — idle capacity absorbs it, exactly like
// the paper's background cleaning thread.
func (s *Scheduler) workerLoop(wk *worker) {
	defer s.wg.Done()
	for {
		select {
		case t, ok := <-s.queue:
			if !ok {
				return
			}
			s.depth.Add(-1)
			s.exec(wk, t)
		default:
			if s.cleaner != nil && s.cleaner.DrainOne() {
				s.cleanerDrains.Add(1)
				continue
			}
			t, ok := <-s.queue
			if !ok {
				return
			}
			s.depth.Add(-1)
			s.exec(wk, t)
		}
	}
}

// exec runs one ticket on a worker, stamping its virtual-time bounds.
func (s *Scheduler) exec(wk *worker, t *Ticket) {
	wk.clk.AdvanceTo(t.Arrival)
	t.Start = wk.clk.Now()
	if !t.hasArrival {
		t.Arrival = t.Start
	}
	t.Worker = wk.id
	t.res, t.err = t.run(wk.clk)
	t.Done = wk.clk.Now()
	wk.runs.Add(1)
	s.completed.Add(1)
	if t.memBytes > 0 {
		// Feed the pool-sizing policy: backlog at submit and service
		// time of this size class (prewarm under bursts, shrink when
		// idle).
		s.w.ObserveLoad(t.memBytes, t.DepthAtSubmit, t.Done-t.Start)
	}
	if s.onComplete != nil {
		s.onComplete(t)
	}
	close(t.done)
}

// dispatchVirtual assigns the ticket to the earliest-free worker in
// virtual time and services it synchronously — the event-driven mode.
// Ties break toward the lowest worker index, keeping runs deterministic.
func (s *Scheduler) dispatchVirtual(t *Ticket) {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := s.workers[0]
	busy := 0
	for _, wk := range s.workers {
		if wk.clk.Now() > t.Arrival {
			busy++
		}
		if wk.clk.Now() < best.clk.Now() {
			best = wk
		}
	}
	t.DepthAtSubmit = busy
	if d := int64(busy); d > s.peakDepth.Load() {
		s.peakDepth.Store(d)
	}
	s.exec(best, t)
	if s.cleaner != nil {
		// The dedicated virtual cleaner core picks up the shells this
		// ticket released, no earlier than the ticket's completion.
		s.cleanerDrains.Add(uint64(s.cleaner.DrainAt(t.Done)))
	}
}

// QueueDepth reports the number of tickets currently waiting (real
// mode; always 0 in virtual mode, where dispatch is synchronous).
func (s *Scheduler) QueueDepth() int { return int(s.depth.Load()) }

// PeakQueueDepth reports the high-water queue depth (real mode) or the
// peak busy-worker count observed at submission (virtual mode).
func (s *Scheduler) PeakQueueDepth() int { return int(s.peakDepth.Load()) }

// Submitted and Completed report lifetime ticket counts.
func (s *Scheduler) Submitted() uint64 { return s.submitted.Load() }

// Completed reports how many tickets have finished service.
func (s *Scheduler) Completed() uint64 { return s.completed.Load() }

// Close stops accepting work and waits for in-flight tickets to drain.
// Close is idempotent; a Submit racing or following Close returns a
// ticket that fails with ErrClosed.
func (s *Scheduler) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	if !s.virtual {
		close(s.queue)
		s.wg.Wait()
	} else if s.cleaner != nil {
		// Hand drain ownership back to the runtime: any leftover dirty
		// shells go to the background cleaner.
		s.cleaner.SetDriven(false)
	}
}

// Makespan reports the maximum worker-clock value — the virtual time at
// which the last worker went idle. Call only after Close (real mode) or
// between submissions (virtual mode); worker clocks are unsynchronized
// while workers run.
func (s *Scheduler) Makespan() uint64 {
	var max uint64
	for _, wk := range s.workers {
		if n := wk.clk.Now(); n > max {
			max = n
		}
	}
	return max
}

// WorkerLoads reports per-worker completed-run counts. Unlike Makespan,
// the counts are atomic, so this diagnostic read is safe even while
// workers are executing.
func (s *Scheduler) WorkerLoads() []uint64 {
	out := make([]uint64, len(s.workers))
	for i, wk := range s.workers {
		out[i] = wk.runs.Load()
	}
	return out
}

// CleanerDrains reports dirty shells this scheduler scrubbed: on the
// real-mode idle-worker lane, or on the virtual cleaner core.
func (s *Scheduler) CleanerDrains() uint64 { return s.cleanerDrains.Load() }

// CleanerCycles reports the virtual cleaner core's clock — the total
// zeroing work Wasp+CA moved off the request path (virtual mode; 0 when
// cleaning is synchronous or real-mode).
func (s *Scheduler) CleanerCycles() uint64 {
	if s.cleaner == nil {
		return 0
	}
	return s.cleaner.Cycles()
}

// String summarizes scheduler state for diagnostics.
func (s *Scheduler) String() string {
	mode := "real"
	if s.virtual {
		mode = "virtual"
	}
	return fmt.Sprintf("sched{%s, workers=%d, submitted=%d, completed=%d, depth=%d}",
		mode, len(s.workers), s.Submitted(), s.Completed(), s.QueueDepth())
}
