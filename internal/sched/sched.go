// Package sched is the unified virtine scheduler: the one dispatch
// substrate every concurrent client of the Wasp runtime goes through.
//
// The paper anticipates virtines behaving "like asynchronous functions
// or futures" (§2), and the Wasp runtime (§5) is built to serve many
// concurrent invocations. Before this layer existed, every client
// reinvented dispatch — core.Future spawned raw goroutines, the
// serverless platform hand-rolled an earliest-free-worker array, httpd
// served strictly sequentially. sched centralizes that: a bounded
// worker pool in which each worker owns a virtual clock (modelling one
// core's TSC, exactly like the paper's per-core rdtsc methodology),
// a ticket/future API, queue-depth accounting, and completion hooks.
//
// Two execution modes share the same API and semantics:
//
//   - Real mode (New): N worker goroutines drain a bounded queue.
//     Virtines on different workers execute concurrently on the host —
//     this is the mode the throughput benchmarks exercise, and it is
//     what makes the sharded shell pools in internal/wasp matter.
//   - Virtual mode (NewVirtual): deterministic event-driven dispatch in
//     the submitting goroutine. Tickets are assigned to the
//     earliest-free worker in virtual time; queueing delay comes from
//     the worker clocks, i.e. from real queue state. The serverless
//     Fig 15 simulation uses this mode so results stay reproducible.
//
// Bursts submit through SubmitBatch/SubmitBatchAt: one lock
// acquisition, one ticket-slab allocation, and one worker wake for the
// whole burst, with an optional batch-aware completion hook
// (WithOnBatchComplete) firing once when the last ticket of the burst
// finishes. Multi-tenant deployments attach an Admission policy
// (WithAdmission): every ticket carries its image identity, and
// dispatch switches from one FIFO to per-image queues with hard
// in-flight quotas (ErrAdmission rejection or deferred queueing) and
// weighted fair picking, so one hot image cannot starve other tenants
// of workers. See the Admission type for the policy semantics.
//
// The fleet may span heterogeneous hypervisor backends (Fig 5):
// WithWorkerPlatforms pins each worker to a vmm.Platform, and image
// tickets execute through wasp.RunOn on their worker's backend, drawing
// shells only from that backend's pools. A placement policy
// (WithPlacer, internal/placement) maps each image to its eligible
// backends with weights: a worker only pops tickets its backend may
// serve, the deterministic virtual dispatcher uses the weights as a
// cost bias when choosing among eligible workers, and real-mode dispatch
// steers each ticket toward its decisively-preferred backend while that
// backend has idle capacity (other eligible backends take over once it
// saturates). An Admission policy may additionally cap one image's
// in-flight tickets per backend (MaxPerBackend): real mode skips capped
// images at pop time, virtual mode models the wait as a delayed start.
// Admission decides whether a ticket runs; placement decides where.
//
// The scheduler is also the drive shaft of true Wasp+CA (Fig 8): when
// the runtime cleans shells asynchronously, real-mode workers scrub
// dirty shells on a low-priority lane whenever the ticket queue is
// momentarily empty (cleaning rides the pool's idle capacity, never a
// request clock), and virtual mode drives the runtime's Cleaner as a
// dedicated virtual core whose clock absorbs every zeroing cost
// (CleanerCycles). Completed image tickets additionally feed their
// queue-depth and service-time telemetry back into the runtime's
// per-image pool-sizing policy (wasp.ObserveLoad), so bursts prewarm
// the warm shell pool and idle periods shrink it.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/stats"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

// Task is one unit of schedulable work. It runs on a worker, advancing
// that worker's virtual clock by the work's full service cost.
type Task func(clk *cycles.Clock) (*wasp.Result, error)

// ErrClosed is the error carried by tickets submitted to a scheduler
// that has been closed.
var ErrClosed = errors.New("sched: scheduler closed")

// ErrPlacement is the error carried by tickets whose image has no
// eligible backend in this fleet (e.g. a Static pin to a platform no
// worker serves). Rejecting at submission keeps an unservable ticket
// from occupying the queue forever.
var ErrPlacement = errors.New("sched: no eligible backend for image")

// errNilTask rejects a batch Request carrying neither an image nor a
// task function.
var errNilTask = errors.New("sched: request has neither image nor task")

// Ticket is the future for one scheduled invocation. Wait blocks until
// the work completes; the timing fields (Arrival, Start, Done, Worker,
// DepthAtSubmit) are valid once Wait has returned.
type Ticket struct {
	run  Task
	done chan struct{}
	// hasArrival records whether the caller declared a virtual arrival
	// time (SubmitAt/SubmitFnAt/SubmitBatchAt). Undeclared tickets take
	// their worker's clock at dequeue as Arrival, so they report zero
	// queueing delay — per-worker clocks are independent timelines, and
	// a wait measured against an arrival the caller never declared would
	// be fiction.
	hasArrival bool

	// Arrival is the virtual time the request entered the system: the
	// caller-declared arrival, or the assigned worker's clock at dequeue
	// when none was declared.
	Arrival uint64
	// Start and Done are the virtual times service began and finished
	// on the assigned worker; Start-Arrival is the queueing delay.
	Start, Done uint64
	// Worker is the index of the worker that served the ticket.
	Worker int
	// Platform is the name of the hypervisor backend whose worker served
	// the ticket ("" until service starts). Valid after Wait.
	Platform string
	// DepthAtSubmit is the queue depth observed when the ticket was
	// submitted (real mode: tickets waiting in the queue; virtual mode:
	// workers still busy at the arrival time).
	DepthAtSubmit int
	// Image is the identity of the guest image this ticket runs (the
	// image name, or the Request.Image tag for raw tasks; empty for
	// untagged tasks). Admission control and the per-image pool-sizing
	// telemetry key on it.
	Image string

	// notBefore is the earliest virtual time admission control allows
	// service to start (virtual-mode deferred queueing); 0 means
	// unconstrained.
	notBefore uint64

	// seq is the ticket's submission sequence number, assigned only
	// while a tracer is recording — the correlation id tying the
	// ticket's trace events together across lanes.
	seq uint64

	// memBytes is the guest-memory size class of an image submission;
	// 0 for raw tasks. Completed image tickets feed the pool-sizing
	// policy with it.
	memBytes int

	// img and cfg carry an image submission's work; the worker that pops
	// the ticket runs the image on its own pinned backend (wasp.RunOn),
	// which is why image tickets are not baked into a platform-blind
	// closure. Raw tasks use run instead.
	img *guest.Image
	cfg wasp.RunConfig

	// elig is the placement weight per scheduler backend (nil when no
	// placer is attached or the ticket is untagged): <= 0 means the
	// backend's workers must not pop this ticket. Real mode fills it at
	// enqueue; virtual mode recomputes at each placement decision so
	// load-sensitive policies see decision-time state.
	elig []float64

	// prefBE is the backend real-mode dispatch steers this ticket toward
	// (weight-aware popping): a worker on another backend leaves the
	// ticket alone while the preferred backend still has an idle worker.
	// -1 means no steering — eligible workers race freely.
	prefBE int

	// servedBE is the backend index of the worker that served the
	// ticket, stamped by exec; the per-backend admission quota releases
	// against it on completion.
	servedBE int

	// batch links tickets submitted in one SubmitBatch burst for the
	// batch completion hook; nil for single submissions.
	batch *batchGroup

	res *wasp.Result
	err error
}

// batchGroup counts down one burst's outstanding tickets and fires the
// batch completion hook once, when the last ticket (including rejected
// ones) finishes.
type batchGroup struct {
	tickets []*Ticket
	pending atomic.Int64
	fn      func([]*Ticket)
}

// finishBatch retires this ticket from its burst, invoking the batch
// hook if it was the last one out. It then drops the ticket's work
// closure and batch link, freeing the run closures' captured request
// environments and the burst's ticket-pointer graph. The slab's Ticket
// structs themselves (and their results) stay reachable while any one
// ticket is retained — that is the deliberate cost of the single-slab
// allocation; callers holding tickets long-term should copy out the
// results they need.
func (t *Ticket) finishBatch() {
	bg := t.batch
	t.run = nil
	t.img = nil
	t.cfg = wasp.RunConfig{}
	t.elig = nil
	t.batch = nil
	if bg == nil {
		return
	}
	if bg.pending.Add(-1) == 0 && bg.fn != nil {
		bg.fn(bg.tickets)
	}
}

// Wait blocks until the ticket's work has completed and returns its
// result. Wait may be called any number of times, from any goroutine.
func (t *Ticket) Wait() (*wasp.Result, error) {
	<-t.done
	return t.res, t.err
}

// QueueCycles reports how long the ticket waited between its declared
// virtual arrival and the start of service, including any admission
// deferral. Tickets submitted without an arrival time (Submit/SubmitFn)
// report 0 — use SubmitAt/SubmitFnAt for virtual-time queue accounting,
// or DepthAtSubmit for instantaneous backlog. Valid after Wait.
func (t *Ticket) QueueCycles() uint64 {
	// A ticket that never started service (e.g. submitted after Close)
	// keeps Start == 0; with a nonzero declared Arrival the subtraction
	// would wrap to ~1.8e19 cycles. Report zero queueing instead.
	if t.Start < t.Arrival {
		return 0
	}
	return t.Start - t.Arrival
}

// ServiceCycles reports the service time on the worker (virtual
// cycles). Valid after Wait.
func (t *Ticket) ServiceCycles() uint64 { return t.Done - t.Start }

// WaitAll waits for every ticket and returns the first error, if any.
// All tickets run to completion regardless — a virtine is destroyed
// with its VM, never interrupted.
func WaitAll(tickets ...*Ticket) error {
	var firstErr error
	for _, t := range tickets {
		if _, err := t.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Request describes one submission inside a batch: either an image to
// run (Img + Cfg) or a raw task (Fn). Image, when set, overrides the
// ticket's image identity — the tag admission control and per-image
// telemetry key on (raw tasks are untagged otherwise). Arrival is the
// declared virtual arrival time, used by SubmitBatchAt only.
type Request struct {
	Arrival uint64
	Img     *guest.Image
	Cfg     wasp.RunConfig
	Fn      Task
	Image   string
}

// worker is one execution lane with its own virtual clock — the model
// of one physical core serving virtines back to back — pinned to one
// hypervisor backend: every image ticket it pops executes via
// wasp.RunOn on that platform. runs is atomic so WorkerLoads stays a
// safe diagnostic read even while workers execute.
type worker struct {
	id    int
	clk   *cycles.Clock
	runs  atomic.Uint64
	pname string // platform name (always set; the runtime default when unpinned)
	beIdx int    // index into the scheduler's backend states

	// lastImage/lastStart/lastDone describe the worker's most recent run
	// in virtual mode (guarded by mu): workers serialize, so the triple
	// is exactly "what is this worker running at time T" for any T the
	// event-driven dispatcher asks about — the basis of the per-backend
	// admission quota's virtual-time model. Unused in real mode.
	lastImage string
	lastStart uint64
	lastDone  uint64
}

// backendState aggregates the fleet's workers per hypervisor backend.
// completed is atomic (safe diagnostic reads); svcEWMA is guarded by
// the dispatch lock and maintained only while a placer is attached.
type backendState struct {
	platform  vmm.Platform
	workers   int
	completed atomic.Uint64
	svcEWMA   uint64
}

// Scheduler is a bounded worker-pool executor over a Wasp runtime.
type Scheduler struct {
	w       *wasp.Wasp
	virtual bool

	// cleaners are the runtime's Wasp+CA background cleaners (one per
	// backend), when async cleaning is on: real-mode workers drain them
	// on the idle lane; virtual mode drives each as a dedicated virtual
	// core.
	cleaners      []*wasp.Cleaner
	cleanerDrains atomic.Uint64

	// Multi-backend placement state: worker platform pins, per-backend
	// aggregates, and the attached policy. imgStats is the LRU-bounded
	// per-image service/entry EWMA store the policies consult (guarded by
	// the dispatch lock of the scheduler's mode, maintained only while
	// placer != nil). busyBy counts real-mode workers mid-ticket per
	// backend (guarded by dmu, maintained only while placer != nil) — the
	// weight-aware pop consults it to decide when a non-preferred backend
	// may take over a steered ticket.
	platforms []vmm.Platform
	bstates   []*backendState
	placer    placement.Placer
	imgStats  *imgStats
	busyBy    []int

	// Real-mode dispatch queue: a condition-variable deque instead of a
	// channel, so a burst enqueues under one lock acquisition with one
	// wake, and the admission layer can pick across per-image queues
	// instead of strict FIFO. qcap bounds the backlog (Submit blocks
	// when full — backpressure instead of unbounded growth).
	dmu      sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	qcap     int
	qclosed  bool
	fifo     []*Ticket // plain FIFO lane, used when adm == nil
	fifoHead int
	queuedN  int

	// adm is the per-image admission-control state, nil without
	// WithAdmission. Real mode guards it with dmu, virtual mode with mu.
	adm *admission

	// O(log n) virtual dispatch state (guarded by mu; nil in real mode
	// or under WithLinearDispatch): one order-statistic treap of active
	// workers per backend, and the per-(backend, image) completion
	// records behind the admission quota's O(quota) start query.
	// linear selects the reference linear-scan dispatcher instead —
	// the differential seam the heap property suite runs against.
	linear    bool
	vtrees    []*otree
	quotaRecs []map[string][]quotaRec

	// nActive is the active worker-pool width: workers[:nActive] take
	// work, the rest are parked by SetVirtualWorkers (virtual-mode
	// autoscaling). Always len(workers) in real mode.
	nActive int

	wg sync.WaitGroup

	mu      sync.Mutex   // virtual-mode dispatch
	closeMu sync.RWMutex // guards closed; submits hold the read side
	closed  bool
	workers []*worker

	depth      atomic.Int64
	peakDepth  atomic.Int64
	submitted  atomic.Uint64
	completed  atomic.Uint64
	rejected   atomic.Uint64
	onComplete func(*Ticket)
	onBatch    func([]*Ticket)

	// tracer is the attached flight recorder (nil or disabled: every
	// instrumentation site is one nil check + one atomic load).
	tracer *obs.Tracer
}

// Option configures a Scheduler.
type Option func(*Scheduler)

// WithQueueCap bounds the real-mode submission queue (default
// 4×workers). Submit blocks when the queue is full — backpressure
// instead of unbounded growth.
func WithQueueCap(n int) Option {
	return func(s *Scheduler) {
		if n > 0 {
			s.qcap = n
		}
	}
}

// WithOnComplete installs a completion hook, invoked once per ticket
// that finishes service, after its timing fields are final and before
// Wait unblocks (rejected tickets never run, so the hook does not fire
// for them). In real mode the hook runs on worker goroutines and must
// be safe for concurrent use; in virtual mode it runs in the submitting
// goroutine and must not call back into the scheduler.
func WithOnComplete(fn func(*Ticket)) Option {
	return func(s *Scheduler) { s.onComplete = fn }
}

// WithOnBatchComplete installs a batch completion hook, invoked exactly
// once per SubmitBatch/SubmitBatchAt burst when the burst's last ticket
// finishes (rejected tickets count as finished). In real mode it runs
// on whichever goroutine retired the last ticket; in virtual mode it
// runs in the submitting goroutine and must not call back into the
// scheduler.
func WithOnBatchComplete(fn func([]*Ticket)) Option {
	return func(s *Scheduler) { s.onBatch = fn }
}

// WithAdmission attaches a per-image admission-control policy. See
// Admission for the hard-cap and weighted-fairness semantics.
func WithAdmission(pol Admission) Option {
	return func(s *Scheduler) { s.adm = newAdmission(pol) }
}

// WithWorkerPlatforms pins the fleet's workers to hypervisor backends:
// worker i runs on ps[i%len(ps)], so New(w, 4, WithWorkerPlatforms(
// vmm.KVM{}, vmm.HyperV{})) builds a 2+2 split fleet. Every platform
// must be a backend of the scheduler's Wasp (wasp.WithPlatforms);
// construction panics otherwise — a misconfigured fleet would fail
// every ticket. Without this option all workers run on the runtime's
// default backend.
func WithWorkerPlatforms(ps ...vmm.Platform) Option {
	return func(s *Scheduler) {
		if len(ps) > 0 {
			s.platforms = append([]vmm.Platform(nil), ps...)
		}
	}
}

// WithPlacer attaches a placement policy (internal/placement): each
// image ticket becomes poppable only by workers on its eligible
// backends, and the deterministic virtual dispatcher biases the choice
// among eligible workers by the policy's weights. A ticket whose image
// has no eligible backend is rejected with ErrPlacement at submission.
func WithPlacer(p placement.Placer) Option {
	return func(s *Scheduler) { s.placer = p }
}

// WithTracer attaches a flight recorder (internal/obs): the scheduler
// emits submission, placement/steering, ticket-service, autoscaling and
// cleaner-drain events into it, and forwards it to the Wasp runtime's
// own instrumentation sites via the ticket execution path. A nil or
// disabled tracer costs one atomic load per instrumented operation.
func WithTracer(tr *obs.Tracer) Option {
	return func(s *Scheduler) { s.tracer = tr }
}

// WithLinearDispatch selects the reference linear-scan virtual
// dispatcher instead of the O(log n) tree/heap core. The two produce
// bit-identical schedules — that equivalence is the heap core's
// correctness contract, enforced by the property suite in
// dispatch_prop_test.go — so the only reason to turn this on is to be
// the baseline in that differential test or a scaling measurement.
// Virtual mode only; real mode ignores it.
func WithLinearDispatch(on bool) Option {
	return func(s *Scheduler) { s.linear = on }
}

// New builds a real-mode scheduler: n worker goroutines, each with its
// own virtual clock, draining a bounded queue.
func New(w *wasp.Wasp, n int, opts ...Option) *Scheduler {
	s := newScheduler(w, n, false, opts...)
	if s.qcap == 0 {
		s.qcap = 4 * n
	}
	for _, wk := range s.workers {
		s.wg.Add(1)
		go s.workerLoop(wk)
	}
	return s
}

// NewVirtual builds a virtual-mode scheduler: deterministic
// earliest-free-worker dispatch over per-worker virtual clocks, run
// synchronously in the submitting goroutine.
func NewVirtual(w *wasp.Wasp, n int, opts ...Option) *Scheduler {
	return newScheduler(w, n, true, opts...)
}

func newScheduler(w *wasp.Wasp, n int, virtual bool, opts ...Option) *Scheduler {
	if n < 1 {
		n = 1
	}
	s := &Scheduler{w: w, virtual: virtual}
	s.notEmpty = sync.NewCond(&s.dmu)
	s.notFull = sync.NewCond(&s.dmu)
	s.workers = make([]*worker, n)
	for i := range s.workers {
		s.workers[i] = &worker{id: i, clk: cycles.NewClock()}
	}
	for _, o := range opts {
		o(s)
	}
	if len(s.platforms) == 0 {
		s.platforms = w.Platforms()[:1]
	}
	// Pin workers round-robin across the requested platforms and build
	// the per-backend aggregates in first-appearance order (stable, so
	// virtual-mode runs are reproducible).
	beIdx := make(map[string]int)
	for i, wk := range s.workers {
		p := s.platforms[i%len(s.platforms)]
		name := p.Name()
		if !w.HasPlatform(name) {
			panic(fmt.Sprintf("sched: worker platform %q is not a backend of this Wasp (use wasp.WithPlatforms)", name))
		}
		idx, ok := beIdx[name]
		if !ok {
			idx = len(s.bstates)
			beIdx[name] = idx
			s.bstates = append(s.bstates, &backendState{platform: p})
		}
		s.bstates[idx].workers++
		wk.pname = name
		wk.beIdx = idx
	}
	s.nActive = len(s.workers)
	if virtual && !s.linear {
		s.vtrees = make([]*otree, len(s.bstates))
		for i := range s.vtrees {
			s.vtrees[i] = &otree{}
		}
		for _, wk := range s.workers {
			s.vtrees[wk.beIdx].insert(wk)
		}
		if s.adm != nil && s.adm.pol.MaxPerBackend > 0 {
			s.quotaRecs = make([]map[string][]quotaRec, len(s.bstates))
		}
	}
	if s.placer != nil {
		s.imgStats = newImgStats(0)
		s.busyBy = make([]int, len(s.bstates))
	}
	if cs := w.Cleaners(); len(cs) > 0 {
		s.cleaners = cs
		if virtual {
			// Model each backend's cleaner as a dedicated virtual core:
			// this scheduler drains them deterministically after each
			// ticket (DrainAt) instead of the wall-clock background
			// goroutines.
			for _, c := range cs {
				c.SetDriven(true)
			}
		}
	}
	return s
}

// NumWorkers reports the active worker-pool width. This is the fleet
// size except while virtual-mode autoscaling has parked a suffix of the
// fleet (SetVirtualWorkers); parked workers keep their clocks and run
// counts but take no work.
func (s *Scheduler) NumWorkers() int { return s.nActive }

// Wasp exposes the underlying runtime.
func (s *Scheduler) Wasp() *wasp.Wasp { return s.w }

// Submit schedules one virtine execution — the asynchronous analogue of
// wasp.Run. The returned Ticket is the future for its result.
func (s *Scheduler) Submit(img *guest.Image, cfg wasp.RunConfig) *Ticket {
	t := s.newTicket(0, false, img, cfg, nil)
	s.submitTickets([]*Ticket{t})
	return t
}

// SubmitAt schedules a virtine execution arriving at the given virtual
// time. The assigned worker's clock first advances to the arrival time,
// so queueing delay is measured against it.
func (s *Scheduler) SubmitAt(arrival uint64, img *guest.Image, cfg wasp.RunConfig) *Ticket {
	t := s.newTicket(arrival, true, img, cfg, nil)
	s.submitTickets([]*Ticket{t})
	return t
}

// SubmitFn schedules an arbitrary task on the worker pool.
func (s *Scheduler) SubmitFn(fn Task) *Ticket {
	t := s.newTicket(0, false, nil, wasp.RunConfig{}, fn)
	s.submitTickets([]*Ticket{t})
	return t
}

// SubmitFnAt schedules an arbitrary task arriving at the given virtual
// time.
func (s *Scheduler) SubmitFnAt(arrival uint64, fn Task) *Ticket {
	t := s.newTicket(arrival, true, nil, wasp.RunConfig{}, fn)
	s.submitTickets([]*Ticket{t})
	return t
}

// SubmitBatch schedules a burst of requests in one shot: one ticket
// slab, one queue lock acquisition, and one worker wake for the whole
// burst, instead of per-submission costs. Per-ticket semantics are
// identical to the equivalent sequence of Submit/SubmitFn calls;
// declared arrivals in the requests are ignored (use SubmitBatchAt).
func (s *Scheduler) SubmitBatch(reqs []Request) []*Ticket {
	return s.submitBatch(reqs, false)
}

// SubmitBatchAt is SubmitBatch for requests with declared virtual
// arrival times. Without an Admission policy, batching is a pure
// optimization: virtual mode dispatches the batch in submission order,
// producing exactly the per-ticket schedule of the equivalent SubmitAt
// sequence. With an Admission policy attached, virtual mode dispatches
// the batch event-driven with the weighted per-image pick — the
// deterministic multi-tenant fairness substrate.
func (s *Scheduler) SubmitBatchAt(reqs []Request) []*Ticket {
	return s.submitBatch(reqs, true)
}

func (s *Scheduler) submitBatch(reqs []Request, hasArrival bool) []*Ticket {
	n := len(reqs)
	if n == 0 {
		return nil
	}
	// One slab for the whole burst: the tickets of a batch are allocated
	// contiguously, and their pointers share the one backing array.
	slab := make([]Ticket, n)
	tickets := make([]*Ticket, n)
	var bg *batchGroup
	if s.onBatch != nil {
		bg = &batchGroup{tickets: tickets, fn: s.onBatch}
		bg.pending.Store(int64(n))
	}
	for i := range reqs {
		r := &reqs[i]
		t := &slab[i]
		t.done = make(chan struct{})
		t.batch = bg
		if hasArrival {
			t.Arrival = r.Arrival
			t.hasArrival = true
		}
		s.initTicket(t, r.Img, r.Cfg, r.Fn, r.Image)
		tickets[i] = t
	}
	s.submitTickets(tickets)
	return tickets
}

func (s *Scheduler) newTicket(arrival uint64, hasArrival bool, img *guest.Image, cfg wasp.RunConfig, fn Task) *Ticket {
	t := &Ticket{Arrival: arrival, hasArrival: hasArrival, done: make(chan struct{})}
	s.initTicket(t, img, cfg, fn, "")
	return t
}

// initTicket fills a ticket's work and identity from an image-or-task
// submission — the single source of truth for both the single-submit
// and batch paths. tag, when non-empty, overrides the image identity.
// Image submissions stay as (img, cfg) rather than a closure so the
// serving worker can run them on its own pinned backend.
func (s *Scheduler) initTicket(t *Ticket, img *guest.Image, cfg wasp.RunConfig, fn Task, tag string) {
	t.prefBE = -1
	if img != nil {
		t.img = img
		t.cfg = cfg
		t.Image = img.Name
		t.memBytes = img.MemBytes()
	} else {
		t.run = fn
	}
	if tag != "" {
		t.Image = tag
	}
}

// placeWeightsLocked computes the ticket's placement weights, one per
// fleet backend (nil = unrestricted: no placer attached). withLoad
// additionally counts the workers busy at virtual time `at` into each
// backend's Busy — meaningful only in virtual mode, where worker clocks
// are coherent under the dispatch lock. Caller holds the mode's
// dispatch lock.
func (s *Scheduler) placeWeightsLocked(t *Ticket, at uint64, withLoad bool) []float64 {
	if s.placer == nil {
		return nil
	}
	infos := make([]placement.BackendInfo, len(s.bstates))
	for i, bs := range s.bstates {
		infos[i] = placement.BackendInfo{
			Platform:  bs.platform,
			Workers:   bs.workers,
			SvcEWMA:   bs.svcEWMA,
			Completed: bs.completed.Load(),
		}
	}
	if withLoad {
		if s.vtrees != nil {
			for i, tr := range s.vtrees {
				infos[i].Busy = tr.size() - tr.countLE(at)
			}
		} else {
			for _, wk := range s.workers[:s.nActive] {
				if wk.clk.Now() > at {
					infos[wk.beIdx].Busy++
				}
			}
		}
	}
	svc, entries := s.imgStats.get(t.Image)
	img := placement.ImageInfo{Name: t.Image, MemBytes: t.memBytes, SvcEWMA: svc, EntriesEWMA: entries}
	ws := s.placer.Place(img, infos)
	if len(ws) < len(s.bstates) {
		return nil // short or nil return: treat as unrestricted
	}
	return ws
}

// anyEligible reports whether some backend may serve a ticket with
// these weights (nil = unrestricted).
func anyEligible(ws []float64) bool {
	if ws == nil {
		return true
	}
	for _, w := range ws {
		if w > 0 {
			return true
		}
	}
	return false
}

// eligibleOn reports whether backend beIdx may serve a ticket with
// these weights.
func eligibleOn(ws []float64, beIdx int) bool {
	return ws == nil || ws[beIdx] > 0
}

// noteServiceLocked folds a completed ticket's service time into the
// placement EWMAs (per backend and per image). Caller holds the mode's
// dispatch lock; called only while a placer is attached.
func (s *Scheduler) noteServiceLocked(t *Ticket, wk *worker) {
	bs := s.bstates[wk.beIdx]
	bs.svcEWMA = stats.EWMA(bs.svcEWMA, t.ServiceCycles())
	if t.Image != "" {
		var entries uint64
		if t.res != nil {
			entries = t.res.Entries
		}
		s.imgStats.note(t.Image, t.ServiceCycles(), entries)
	}
}

// prefBackendLocked picks the backend real-mode dispatch should steer a
// ticket toward: the highest-weight eligible backend, but only when its
// bias advantage over the runner-up is material against the image's own
// smoothed service time (a quarter of it) — near-ties race freely, so
// load-balancing policies keep their work-conserving behavior and only
// decisive cost gaps serialize dispatch onto one backend. Returns -1 for
// "no steering". Caller holds dmu; placer is attached.
func (s *Scheduler) prefBackendLocked(t *Ticket) int {
	if t.elig == nil || len(s.bstates) < 2 {
		return -1
	}
	best, second := -1, -1
	for i, w := range t.elig {
		if w <= 0 {
			continue
		}
		switch {
		case best < 0 || w > t.elig[best]:
			second, best = best, i
		case second < 0 || w > t.elig[second]:
			second = i
		}
	}
	if best < 0 || second < 0 {
		return -1 // zero or one eligible backend: eligibility already decides
	}
	gap := placement.Bias(t.elig[second]) - placement.Bias(t.elig[best])
	svc, _ := s.imgStats.get(t.Image)
	minGap := svc / 4
	if minGap < 1 {
		minGap = 1
	}
	if gap < minGap {
		return -1
	}
	return best
}

// submitTickets routes a prepared ticket slice into the scheduler. It
// is the single entry point behind every Submit variant: the read lock
// lets submits proceed concurrently while excluding Close, so a submit
// racing or following Close yields rejected (ErrClosed) tickets instead
// of a panic, and Submitted always counts the attempt.
func (s *Scheduler) submitTickets(ts []*Ticket) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	base := s.submitted.Add(uint64(len(ts))) - uint64(len(ts))
	if tr := s.tracer; tr.Enabled() {
		// Sequence numbers correlate a ticket's events across lanes;
		// one submit event covers the whole burst (not one per ticket —
		// the hot path's budget is a single emit per burst plus one per
		// completed ticket).
		for i, t := range ts {
			t.seq = base + uint64(i) + 1
		}
		tr.Instant(obs.ControlLane, obs.KindSubmit, "submit",
			ts[0].Arrival, base+1, uint64(len(ts)), 0)
	}
	var rejected []*Ticket
	if s.closed {
		rejected = s.rejectAll(ts, ErrClosed)
	} else if s.virtual {
		rejected = s.dispatchVirtual(ts)
	} else {
		rejected = s.putTickets(ts)
	}
	for _, t := range rejected {
		s.finalizeRejected(t)
	}
}

// rejectAll marks every ticket rejected with err and records the
// per-image rejection telemetry.
func (s *Scheduler) rejectAll(ts []*Ticket, err error) []*Ticket {
	if s.adm != nil {
		if s.virtual {
			s.mu.Lock()
		} else {
			s.dmu.Lock()
		}
		for _, t := range ts {
			s.adm.noteRejected(t.Image)
		}
		if s.virtual {
			s.mu.Unlock()
		} else {
			s.dmu.Unlock()
		}
	}
	for _, t := range ts {
		t.err = err
	}
	return ts
}

// finalizeRejected retires a ticket that will never run: its error is
// already set, so account it and unblock waiters. Runs with no
// dispatch lock held in either mode (submitTickets calls it after
// putTickets/dispatchVirtual have released theirs) — it must touch
// only the ticket itself and atomic counters.
func (s *Scheduler) finalizeRejected(t *Ticket) {
	s.rejected.Add(1)
	close(t.done)
	t.finishBatch()
}

// putTickets enqueues a burst on the real-mode dispatch queue under one
// lock acquisition, waking the workers once. It returns the tickets the
// queue did not accept (scheduler closed mid-wait, admission hard-cap
// rejection, or a nil task), each with its error set.
func (s *Scheduler) putTickets(ts []*Ticket) (rejected []*Ticket) {
	accepted := 0
	s.dmu.Lock()
	for _, t := range ts {
		if t.run == nil && t.img == nil {
			t.err = errNilTask
			if s.adm != nil {
				s.adm.noteRejected(t.Image)
			}
			rejected = append(rejected, t)
			continue
		}
		// Placement eligibility is fixed at enqueue in real mode: the
		// weights gate which workers may pop the ticket. An image no
		// backend may serve is rejected here rather than parked forever.
		t.elig = s.placeWeightsLocked(t, 0, false)
		if !anyEligible(t.elig) {
			t.err = ErrPlacement
			if s.adm != nil {
				s.adm.noteRejected(t.Image)
			}
			rejected = append(rejected, t)
			continue
		}
		if s.placer != nil {
			t.prefBE = s.prefBackendLocked(t)
			if tr := s.tracer; tr.Enabled() && t.prefBE >= 0 {
				tr.Instant(obs.ControlLane, obs.KindPlace, t.Image,
					t.Arrival, t.seq, uint64(t.prefBE), 1)
			}
		}
		for !s.qclosed && s.queuedN >= s.qcap {
			// A burst larger than the queue's free space must wake the
			// workers before sleeping: the usual single wake happens only
			// after the whole burst is enqueued, and waiting for space
			// that only workers can free without it is a deadlock.
			s.notEmpty.Broadcast()
			s.notFull.Wait()
		}
		if s.qclosed {
			t.err = ErrClosed
			if s.adm != nil {
				s.adm.noteRejected(t.Image)
			}
			rejected = append(rejected, t)
			continue
		}
		if s.adm != nil {
			if err := s.adm.tryEnqueue(t); err != nil {
				t.err = err
				rejected = append(rejected, t)
				continue
			}
		} else {
			s.fifo = append(s.fifo, t)
		}
		t.DepthAtSubmit = s.queuedN // tickets already waiting ahead of this one
		s.queuedN++
		s.depth.Store(int64(s.queuedN))
		if d := int64(s.queuedN); d > s.peakDepth.Load() {
			s.peakDepth.Store(d)
		}
		accepted++
	}
	// One wake for the burst — but a single submission wakes a single
	// worker: pick eligibility is global, so broadcasting one ticket to
	// N idle workers is a thundering herd on the hot dispatch path.
	// With a placer on a mixed fleet that reasoning breaks — a Signal
	// could land on a worker whose backend may not serve the ticket,
	// which would then park again and strand the ticket — so
	// platform-constrained dispatch always broadcasts.
	switch {
	case accepted == 1 && (s.placer == nil || len(s.bstates) == 1):
		s.notEmpty.Signal()
	case accepted >= 1:
		s.notEmpty.Broadcast()
	}
	s.dmu.Unlock()
	return rejected
}

type popResult int

const (
	popGot popResult = iota
	popEmpty
	popDone
)

// popTicket takes the next ticket the given worker's backend may serve:
// the first eligible FIFO entry, or the admission layer's weighted pick
// across per-image queues restricted to eligible images. With block it
// waits until a ticket is eligible or the queue is closed and drained;
// deferred tickets (image at its hard cap), tickets pinned to other
// platforms, and tickets steered to a preferred backend that still has
// an idle worker keep the worker waiting until its own work appears.
func (s *Scheduler) popTicket(wk *worker, block bool) (*Ticket, popResult) {
	eligible := func(t *Ticket) bool {
		if !eligibleOn(t.elig, wk.beIdx) {
			return false
		}
		// Weight-aware steering: a decisively preferred backend gets
		// first claim while it has an idle worker; takeover by another
		// eligible backend is allowed only once the preferred one is
		// saturated (work conservation over strict preference).
		if t.prefBE >= 0 && t.prefBE != wk.beIdx &&
			s.busyBy[t.prefBE] < s.bstates[t.prefBE].workers {
			return false
		}
		// Per-backend admission quota: the image may already hold its
		// full allotment of this worker's backend.
		if s.adm != nil && s.adm.pol.MaxPerBackend > 0 && t.Image != "" {
			if st := s.adm.images[t.Image]; st != nil &&
				st.inFlightOn(wk.beIdx) >= s.adm.pol.MaxPerBackend {
				return false
			}
		}
		return true
	}
	s.dmu.Lock()
	defer s.dmu.Unlock()
	for {
		var t *Ticket
		if s.adm != nil {
			t = s.adm.pick(eligible)
		} else {
			// Skip holes earlier platform-affine pops left behind.
			for s.fifoHead < len(s.fifo) && s.fifo[s.fifoHead] == nil {
				s.fifoHead++
			}
			for i := s.fifoHead; i < len(s.fifo); i++ {
				c := s.fifo[i]
				if c == nil || !eligible(c) {
					continue
				}
				t = c
				s.fifo[i] = nil
				if i == s.fifoHead {
					s.fifoHead++
				}
				break
			}
			if s.fifoHead == len(s.fifo) {
				s.fifo = s.fifo[:0]
				s.fifoHead = 0
			} else if s.fifoHead > 1024 && 2*s.fifoHead > len(s.fifo) {
				// Compact the drained prefix so a long-lived queue does
				// not pin its high-water backing array. Interior holes
				// survive the copy and are skipped by the scan above.
				s.fifo = append(s.fifo[:0], s.fifo[s.fifoHead:]...)
				s.fifoHead = 0
			}
		}
		if t != nil {
			s.queuedN--
			s.depth.Store(int64(s.queuedN))
			if s.placer != nil {
				s.busyBy[wk.beIdx]++
				if s.queuedN > 0 && len(s.bstates) > 1 &&
					s.busyBy[wk.beIdx] >= s.bstates[wk.beIdx].workers {
					// This backend just saturated: tickets steered to it
					// become takeable by the other backends' idle workers,
					// which may be parked — wake them to re-evaluate.
					s.notEmpty.Broadcast()
				}
			}
			if s.adm != nil && s.adm.pol.MaxPerBackend > 0 && t.Image != "" {
				s.adm.state(t.Image).claimBackend(wk.beIdx, len(s.bstates))
			}
			s.notFull.Signal()
			if s.qclosed && s.queuedN == 0 {
				// Draining just finished: wake workers parked on a backlog
				// their backend could not serve, or they would sleep
				// through popDone forever and Close would hang on them.
				s.notEmpty.Broadcast()
			}
			return t, popGot
		}
		if s.qclosed && s.queuedN == 0 {
			return nil, popDone
		}
		if !block {
			return nil, popEmpty
		}
		s.notEmpty.Wait()
	}
}

// workerLoop drains tickets with priority; when the queue is
// momentarily empty it scrubs one dirty shell from the runtime's
// cleaner (the Wasp+CA low-priority lane) before blocking for the next
// ticket. Cleaning runs on the worker's host thread but is never
// charged to its virtual clock — idle capacity absorbs it, exactly like
// the paper's background cleaning thread.
func (s *Scheduler) workerLoop(wk *worker) {
	defer s.wg.Done()
	for {
		t, st := s.popTicket(wk, false)
		if st == popEmpty {
			if s.drainOneCleaner() {
				continue
			}
			t, st = s.popTicket(wk, true)
		}
		if st == popDone {
			return
		}
		s.exec(wk, t)
	}
}

// drainOneCleaner scrubs one dirty shell from any backend's cleaner
// (the Wasp+CA low-priority idle lane).
func (s *Scheduler) drainOneCleaner() bool {
	for _, c := range s.cleaners {
		if c.DrainOne() {
			s.cleanerDrains.Add(1)
			return true
		}
	}
	return false
}

// exec runs one ticket on a worker, stamping its virtual-time bounds.
func (s *Scheduler) exec(wk *worker, t *Ticket) {
	wk.clk.AdvanceTo(t.Arrival)
	if t.notBefore > t.Arrival {
		// Admission deferred the start past the arrival (virtual mode).
		wk.clk.AdvanceTo(t.notBefore)
	}
	t.Start = wk.clk.Now()
	if !t.hasArrival {
		t.Arrival = t.Start
	}
	t.Worker = wk.id
	t.Platform = wk.pname
	t.servedBE = wk.beIdx
	if t.img != nil {
		// Image tickets execute on the serving worker's pinned backend:
		// its platform's Fig 5 costs, its shell pools, its snapshots.
		t.res, t.err = s.w.RunOn(wk.pname, t.img, t.cfg, wk.clk)
	} else {
		t.res, t.err = t.run(wk.clk)
	}
	t.Done = wk.clk.Now()
	if s.virtual {
		// Record the run for the virtual-time per-backend quota model
		// (exact per worker: workers serialize, and virtual dispatch is
		// synchronous under mu).
		wk.lastImage, wk.lastStart, wk.lastDone = t.Image, t.Start, t.Done
	}
	wk.runs.Add(1)
	s.completed.Add(1)
	s.bstates[wk.beIdx].completed.Add(1)
	if t.memBytes > 0 {
		// Feed the pool-sizing policy of the backend that served the
		// ticket: backlog at submit and service time of this image's
		// size class (prewarm under bursts, shrink when idle).
		s.w.ObserveLoadOn(wk.pname, t.Image, t.memBytes, t.DepthAtSubmit, t.Done-t.Start)
	}
	if s.placer != nil {
		if s.virtual {
			s.noteServiceLocked(t, wk) // virtual dispatch already holds mu
		} else {
			s.dmu.Lock()
			s.noteServiceLocked(t, wk)
			s.busyBy[wk.beIdx]--
			s.dmu.Unlock()
		}
	}
	if s.adm != nil {
		s.noteDone(t)
	}
	if tr := s.tracer; tr.Enabled() {
		// One span per serviced ticket: the worker lane carries the
		// service window, arg0 carries the arrival so the exporter can
		// render queueing delay and the submission→service flow arrow.
		name := t.Image
		if name == "" {
			name = "task"
		}
		tr.Span(wk.id, obs.KindTicket, name,
			t.Start, t.Done, t.seq, t.Arrival, uint64(t.DepthAtSubmit))
	}
	if s.onComplete != nil {
		s.onComplete(t)
	}
	close(t.done)
	t.finishBatch()
}

// noteDone folds a completed ticket back into the admission state:
// in-flight release, per-image telemetry, and (virtual mode) the
// completion-time history the hard-cap model reads.
func (s *Scheduler) noteDone(t *Ticket) {
	if s.virtual {
		// The virtual dispatch path already holds mu. Completion-time
		// history exists only to serve hard-cap in-flight queries; with
		// no cap it would just grow without bound.
		s.adm.complete(t)
		if s.adm.pol.MaxInFlight > 0 {
			st := s.adm.state(t.Image)
			st.spans = append(st.spans, admitSpan{at: t.Arrival, done: t.Done})
		}
		return
	}
	s.dmu.Lock()
	s.adm.complete(t)
	if (s.adm.pol.MaxInFlight > 0 && !s.adm.pol.RejectOverflow) ||
		s.adm.pol.MaxPerBackend > 0 {
		// A deferred image may have a free slot now — under the global
		// cap, or on the completing ticket's backend under the
		// per-backend quota. Only these caps can park a worker waiting
		// on a completion; broadcasting for other policies would just
		// wake every idle worker per ticket for nothing.
		s.notEmpty.Broadcast()
	}
	s.dmu.Unlock()
}

// dispatchVirtual services a submission synchronously in virtual time.
// Single tickets (and admission-free batches) dispatch in submission
// order — batching never changes the schedule. Batches under an
// Admission policy run the event-driven weighted dispatch instead.
// Returns the tickets admission rejected.
func (s *Scheduler) dispatchVirtual(ts []*Ticket) []*Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.adm != nil && len(ts) > 1 {
		return s.dispatchVirtualWeighted(ts)
	}
	var rejected []*Ticket
	for _, t := range ts {
		if !s.dispatchVirtualOne(t) {
			rejected = append(rejected, t)
		}
	}
	return rejected
}

// dispatchVirtualOne dispatches one ticket at its arrival time,
// applying the admission hard cap (rejection, or deferral as a later
// effective start). Reports whether the ticket was admitted. Caller
// holds mu.
func (s *Scheduler) dispatchVirtualOne(t *Ticket) bool {
	if t.run == nil && t.img == nil {
		t.err = errNilTask
		if s.adm != nil {
			s.adm.noteRejected(t.Image)
		}
		return false
	}
	// One placer evaluation serves both the eligibility gate and the
	// placement decision: dispatch is synchronous, so the decision-time
	// state placeVirtual needs is exactly the state here.
	t.elig = s.placeWeightsLocked(t, t.Arrival, true)
	if !anyEligible(t.elig) {
		t.err = ErrPlacement
		if s.adm != nil {
			s.adm.noteRejected(t.Image)
		}
		return false
	}
	if s.adm != nil {
		st := s.adm.state(t.Image)
		st.submitted++
		nb, ok := s.adm.admitAtVirtual(st, t.Arrival)
		if !ok {
			st.rejected++
			t.err = ErrAdmission
			return false
		}
		t.notBefore = nb
		s.adm.activate(st)
		if st.pass > s.adm.vtime {
			s.adm.vtime = st.pass
		}
		st.pass += s.adm.stride(st)
	}
	s.placeVirtual(t)
	return true
}

// earliestFree returns the active worker with the lowest clock, ties
// toward the lowest index — the classic deterministic selection rule.
// O(log n) off the per-backend trees; the linear reference scans.
func (s *Scheduler) earliestFree() *worker {
	if s.vtrees != nil {
		var best *worker
		for _, tr := range s.vtrees {
			wk := tr.min()
			if wk == nil {
				continue
			}
			if best == nil || okeyLess(wk.clk.Now(), wk.id, best.clk.Now(), best.id) {
				best = wk
			}
		}
		return best
	}
	best := s.workers[0]
	for _, wk := range s.workers[:s.nActive] {
		if wk.clk.Now() < best.clk.Now() {
			best = wk
		}
	}
	return best
}

// minClockLocked is the earliest-free worker's clock — the event-driven
// batch dispatcher's time base. Caller holds mu.
func (s *Scheduler) minClockLocked() uint64 {
	return s.earliestFree().clk.Now()
}

// placeVirtual assigns the ticket to a worker in virtual time and
// services it synchronously — the event-driven core. Without a placer
// it is the classic earliest-free-worker rule; with one, the choice is
// restricted to workers on eligible backends and each candidate's
// earliest start is penalized by the backend's placement bias
// (placement.Bias of its weight) — deterministic cost-aware list
// scheduling. Ties break toward the earlier worker clock, then the
// lowest worker index, keeping runs reproducible. Caller holds mu.
func (s *Scheduler) placeVirtual(t *Ticket) {
	busy := 0
	if s.vtrees != nil {
		for _, tr := range s.vtrees {
			busy += tr.size() - tr.countLE(t.Arrival)
		}
	} else {
		for _, wk := range s.workers[:s.nActive] {
			if wk.clk.Now() > t.Arrival {
				busy++
			}
		}
	}
	quota := 0
	if s.adm != nil && s.adm.pol.MaxPerBackend > 0 && t.Image != "" {
		quota = s.adm.pol.MaxPerBackend
	}
	var best *worker
	if s.placer == nil && quota == 0 {
		best = s.earliestFree()
	} else {
		// Decision-time weights: load-sensitive policies see the busy
		// counts and EWMAs as of the ticket's arrival. The single-ticket
		// dispatch path computed them moments ago under this same lock
		// hold (t.elig); the event-driven batch path reaches here at a
		// later decision time and computes fresh.
		weights := t.elig
		if weights == nil && s.placer != nil {
			weights = s.placeWeightsLocked(t, t.Arrival, true)
		}
		eff := t.Arrival
		if t.notBefore > eff {
			eff = t.notBefore
		}
		var bestStart uint64
		if s.vtrees != nil {
			best, bestStart = s.pickWorkerTree(t, weights, eff, quota)
		} else {
			best, bestStart = s.pickWorkerLinear(t, weights, eff, quota)
		}
		if best == nil {
			// Eligibility was checked at dispatch entry; a placer that
			// flips to all-ineligible mid-flight still must not lose the
			// ticket — fall back to earliest-free.
			best = s.earliestFree()
		} else if quota > 0 && bestStart > t.notBefore {
			// The per-backend quota delays service past the arrival (and
			// any admission deferral): model the wait as a later effective
			// start, exactly like the global hard cap does.
			t.notBefore = bestStart
		}
	}
	t.DepthAtSubmit = busy
	if d := int64(busy); d > s.peakDepth.Load() {
		s.peakDepth.Store(d)
	}
	if tr := s.tracer; tr.Enabled() && s.placer != nil {
		tr.Instant(obs.ControlLane, obs.KindPlace, t.Image,
			t.Arrival, t.seq, uint64(best.beIdx), uint64(busy))
	}
	s.execVirtual(best, t)
	for _, c := range s.cleaners {
		// The dedicated virtual cleaner cores pick up the shells this
		// ticket released, no earlier than the ticket's completion.
		s.cleanerDrains.Add(uint64(c.DrainAt(t.Done)))
	}
}

// execVirtual runs exec with the tree and quota-record bookkeeping a
// clock change requires: the worker leaves its tree under the old key
// and returns under the new one, and its previous run's quota record is
// replaced by the new run's. Caller holds mu.
func (s *Scheduler) execVirtual(wk *worker, t *Ticket) {
	if s.vtrees == nil {
		s.exec(wk, t)
		return
	}
	tr := s.vtrees[wk.beIdx]
	tr.remove(wk)
	if s.quotaRecs != nil && wk.lastImage != "" {
		s.quotaRecRemove(wk.beIdx, wk.lastImage, wk.lastDone, wk.id)
	}
	s.exec(wk, t)
	tr.insert(wk)
	if s.quotaRecs != nil && wk.lastImage != "" {
		s.quotaRecAdd(wk.beIdx, wk.lastImage, wk.lastStart, wk.lastDone, wk.id)
	}
}

// pickWorkerLinear is the reference candidate scan: every active worker
// on an eligible backend, scored by quota-adjusted earliest start plus
// placement bias; ties toward the earlier clock, then the lower id
// (iteration order).
func (s *Scheduler) pickWorkerLinear(t *Ticket, weights []float64, eff uint64, quota int) (*worker, uint64) {
	var best *worker
	var bestScore, bestStart uint64
	for _, wk := range s.workers[:s.nActive] {
		if !eligibleOn(weights, wk.beIdx) {
			continue
		}
		start := wk.clk.Now()
		if start < eff {
			start = eff
		}
		if quota > 0 {
			start = s.quotaStartLocked(t.Image, wk, start, quota)
		}
		score := start
		if weights != nil {
			score += placement.Bias(weights[wk.beIdx])
		}
		if best == nil || score < bestScore ||
			(score == bestScore && wk.clk.Now() < best.clk.Now()) {
			best, bestScore, bestStart = wk, score, start
		}
	}
	return best, bestStart
}

// pickWorkerTree selects the same worker as pickWorkerLinear from the
// per-backend trees' minima alone. Within one backend the score —
// max(clock, eff) lifted by the quota and biased by the backend weight
// — is nondecreasing in the worker clock (the quota lift is a
// backend-level threshold: any start below the quota-th outstanding
// completion maps to that same completion), and score ties resolve
// toward the earlier (clock, id), which is the tree's own key order. So
// each backend's best candidate is exactly its tree minimum, and the
// fleet winner is the min of one candidate per eligible backend by
// (score, clock, id) — the linear scan's iteration-order tie-break made
// explicit.
func (s *Scheduler) pickWorkerTree(t *Ticket, weights []float64, eff uint64, quota int) (*worker, uint64) {
	var best *worker
	var bestScore, bestStart uint64
	for be, tr := range s.vtrees {
		if !eligibleOn(weights, be) {
			continue
		}
		wk := tr.min()
		if wk == nil {
			continue
		}
		start := wk.clk.Now()
		if start < eff {
			start = eff
		}
		if quota > 0 {
			start = s.quotaStartRecs(t.Image, be, start, quota)
		}
		score := start
		if weights != nil {
			score += placement.Bias(weights[be])
		}
		if best == nil || score < bestScore ||
			(score == bestScore && okeyLess(wk.clk.Now(), wk.id, best.clk.Now(), best.id)) {
			best, bestScore, bestStart = wk, score, start
		}
	}
	return best, bestStart
}

// quotaStartLocked returns the earliest virtual time >= start at which
// the per-backend admission quota admits one more run of image img on
// wk's backend: enough of the same-image runs in flight on the
// backend's other workers at `start` must complete first. Each worker's
// last-run record is exact for "what is this worker running at T" —
// workers serialize — but says nothing about dispatches not yet
// decided, so for out-of-order arrivals the quota is a best-effort
// lower bound rather than a global invariant (the same relaxation the
// global cap's pruned span history accepts). Caller holds mu.
func (s *Scheduler) quotaStartLocked(img string, wk *worker, start uint64, quota int) uint64 {
	var dones []uint64
	for _, w2 := range s.workers[:s.nActive] {
		if w2 == wk || w2.beIdx != wk.beIdx || w2.lastImage != img {
			continue
		}
		if w2.lastStart <= start && start < w2.lastDone {
			dones = append(dones, w2.lastDone)
		}
	}
	if len(dones) < quota {
		return start
	}
	sort.Slice(dones, func(i, j int) bool { return dones[i] < dones[j] })
	// The slot frees at the completion that brings the backend's
	// same-image in-flight count below the quota.
	return dones[len(dones)-quota]
}

// dispatchVirtualWeighted dispatches a whole batch event-driven: at
// each step the decision time T is the earliest-free worker clock (at
// least the earliest undispatched arrival), the backlog is every
// undispatched ticket arrived by T, and the next ticket is chosen by
// the admission layer's weighted fair pick across the backlog's images
// — exactly what the real-mode per-image queues do, made deterministic.
// Hard caps apply at T: RejectOverflow rejects a backlogged ticket
// whose image is saturated at its arrival; deferred images leave their
// tickets in the backlog until a completion frees a slot. The heap core
// runs each step in O(log n); the linear reference re-scans pending per
// step. Caller holds mu. Returns the rejected tickets.
func (s *Scheduler) dispatchVirtualWeighted(ts []*Ticket) (rejected []*Ticket) {
	batch, rejected := s.admitBatchLocked(ts)
	if s.linear {
		return append(rejected, s.dispatchWeightedLinear(batch)...)
	}
	return append(rejected, s.dispatchWeightedHeap(batch)...)
}

// admitBatchLocked validates a weighted batch in submission order:
// nil tasks and placement-ineligible tickets are rejected up front
// (the placer sees each ticket once here, at its arrival, in
// submission order — stateful policies depend on that), the rest are
// counted submitted. Caller holds mu.
func (s *Scheduler) admitBatchLocked(ts []*Ticket) (batch, rejected []*Ticket) {
	a := s.adm
	batch = make([]*Ticket, 0, len(ts))
	for _, t := range ts {
		if t.run == nil && t.img == nil {
			t.err = errNilTask
			a.noteRejected(t.Image)
			rejected = append(rejected, t)
			continue
		}
		if !anyEligible(s.placeWeightsLocked(t, t.Arrival, false)) {
			t.err = ErrPlacement
			a.noteRejected(t.Image)
			rejected = append(rejected, t)
			continue
		}
		a.state(t.Image).submitted++
		batch = append(batch, t)
	}
	return batch, rejected
}

// dispatchWeightedHeap is the O(log n) event core. Per decision step:
// the time base T comes from the per-backend worker trees, the
// earliest outstanding arrival from a lazy arrival heap, the backlog
// lives in per-image min-heaps of submission indices (the
// "first-submitted per image" rule survives out-of-order arrivals),
// and the weighted fair pick pops the minimum (pass, name) from a
// pass-ordered image heap. Start-time-fair activation happens on pop:
// an uncapped image surfacing with a stale pass is raised to the
// global virtual time and reinserted, so by the time a winner emerges
// every contender has been normalized — exactly the linear loop's
// activate-everyone-then-scan. Capped images are set aside without
// activation and reinserted after the step, and RejectOverflow purges
// run at window entry plus after each dispatch of the same image (the
// only moments an image's span set changes). Caller holds mu.
func (s *Scheduler) dispatchWeightedHeap(batch []*Ticket) (rejected []*Ticket) {
	a := s.adm
	// Arrival-ordered event queue over the batch: stable sort, so equal
	// arrivals enter the window in submission order.
	order := make([]int, len(batch))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return batch[order[i]].Arrival < batch[order[j]].Arrival
	})
	rejectCap := a.pol.MaxInFlight > 0 && a.pol.RejectOverflow
	deferCap := a.pol.MaxInFlight > 0 && !a.pol.RejectOverflow
	var (
		qpos    int
		winN    int
		gone    = make([]bool, len(batch))
		arr     arrHeap
		iheap   imgHeap
		windows = make(map[string]*imgWindow, 8)
	)
	var timeFloor uint64
	for winN > 0 || qpos < len(order) {
		T := s.minClockLocked()
		if T < timeFloor {
			T = timeFloor
		}
		// minArr: the earliest outstanding arrival. Window tickets all
		// arrived at or before an earlier T, so when the window is
		// nonempty its lazy-heap minimum is the global minimum; otherwise
		// the event queue's head is.
		var minArr uint64
		if winN > 0 {
			minArr = arr.min(gone)
		} else {
			minArr = batch[order[qpos]].Arrival
		}
		if minArr > T {
			T = minArr
		}

		// Ingest every arrival at or before T. Hard-cap rejection happens
		// here, when a ticket enters the decision window: its image
		// saturated at its arrival time.
		for qpos < len(order) && batch[order[qpos]].Arrival <= T {
			idx := order[qpos]
			qpos++
			t := batch[idx]
			st := a.state(t.Image)
			if rejectCap && st.inFlightAt(t.Arrival) >= a.pol.MaxInFlight {
				st.rejected++
				t.err = ErrAdmission
				rejected = append(rejected, t)
				gone[idx] = true
				continue
			}
			iw := windows[t.Image]
			if iw == nil {
				iw = &imgWindow{st: st}
				windows[t.Image] = iw
			}
			iw.push(idx)
			if !iw.inHeap {
				iheap.push(iw)
			}
			arr.push(arrEntry{arrival: t.Arrival, idx: idx})
			winN++
		}
		if winN == 0 {
			continue // every entrant was rejected; recompute T off the queue
		}

		// Weighted pick: pop-min (pass, name). The deferral-cap check is
		// memoized per image for this step — inFlightAt scans the image's
		// completion history.
		var capped map[*imageState]bool
		atCap := func(st *imageState) bool {
			if !deferCap {
				return false
			}
			if capped == nil {
				capped = make(map[*imageState]bool)
			}
			c, ok := capped[st]
			if !ok {
				c = st.inFlightAt(T) >= a.pol.MaxInFlight
				capped[st] = c
			}
			return c
		}
		var win *imgWindow
		var deferredL []*imgWindow
		for len(iheap) > 0 {
			iw := iheap.pop()
			if atCap(iw.st) {
				// Deferred without activation, exactly like the linear
				// loop: a capped image banks no pass normalization.
				deferredL = append(deferredL, iw)
				continue
			}
			if iw.st.pass < a.vtime {
				a.activate(iw.st)
				iheap.push(iw)
				continue
			}
			win = iw
			break
		}
		if win == nil {
			// Every backlogged image is deferred: advance time to the
			// next event and retry. That event is the earliest capping
			// completion beyond T — or the next queued arrival, which
			// must also bound the jump: an uncapped image's ticket must
			// never be held past its arrival just because another
			// image's backlog is waiting out its quota.
			nextT := ^uint64(0)
			if qpos < len(order) {
				nextT = batch[order[qpos]].Arrival
			}
			for _, iw := range deferredL {
				for _, sp := range iw.st.spans {
					if sp.done > T && sp.done < nextT {
						nextT = sp.done
					}
				}
				iheap.push(iw)
			}
			if nextT == ^uint64(0) {
				nextT = T + 1 // defensive: cannot recur, caps imply in-flight work
			}
			timeFloor = nextT
			continue
		}
		for _, iw := range deferredL {
			iheap.push(iw)
		}
		if win.st.pass > a.vtime {
			a.vtime = win.st.pass
		}
		win.st.pass += a.stride(win.st)
		bestIdx := win.popMin()
		best := batch[bestIdx]
		gone[bestIdx] = true
		winN--
		best.notBefore = T
		// Every outstanding arrival is >= minArr, so completion history
		// at or below it can never be queried again — compact it before
		// the history of a long trace grows quadratic.
		win.st.pruneDone(minArr)
		s.placeVirtual(best)
		// The dispatch appended a span to the winner's image — the only
		// event that can newly saturate it — so re-purge its backlog.
		if rejectCap && len(win.fifo) > 0 {
			kept := win.fifo[:0]
			for _, j := range win.fifo {
				t2 := batch[j]
				if win.st.inFlightAt(t2.Arrival) >= a.pol.MaxInFlight {
					win.st.rejected++
					t2.err = ErrAdmission
					rejected = append(rejected, t2)
					gone[j] = true
					winN--
					continue
				}
				kept = append(kept, j)
			}
			win.fifo = kept
			win.heapify()
		}
		if len(win.fifo) > 0 {
			iheap.push(win)
		}
	}
	return rejected
}

// dispatchWeightedLinear is the reference implementation the heap core
// must match bit for bit (WithLinearDispatch): per decision step it
// re-scans the whole pending slice for the earliest arrival, the
// rejection purge, and the weighted pick — O(n²) in batch size, kept
// verbatim as the differential baseline for the property suite and the
// cluster bench's speedup row. Caller holds mu.
func (s *Scheduler) dispatchWeightedLinear(pending []*Ticket) (rejected []*Ticket) {
	a := s.adm
	var timeFloor uint64
	for len(pending) > 0 {
		// Decision time: earliest-free worker, floored by deferral waits
		// and by the earliest pending arrival.
		T := s.minClockLocked()
		if T < timeFloor {
			T = timeFloor
		}
		minArr := ^uint64(0)
		for _, t := range pending {
			if t.Arrival < minArr {
				minArr = t.Arrival
			}
		}
		if minArr > T {
			T = minArr
		}

		// Hard-cap rejection happens when a ticket enters the decision
		// window: its image saturated at its arrival time.
		if a.pol.MaxInFlight > 0 && a.pol.RejectOverflow {
			kept := pending[:0]
			dropped := false
			for _, t := range pending {
				if t.Arrival <= T && a.state(t.Image).inFlightAt(t.Arrival) >= a.pol.MaxInFlight {
					a.state(t.Image).rejected++
					t.err = ErrAdmission
					rejected = append(rejected, t)
					dropped = true
					continue
				}
				kept = append(kept, t)
			}
			pending = kept
			if dropped {
				continue
			}
		}

		// Weighted pick: per image, the earliest-submitted backlogged
		// ticket; across images, the lowest pass among those not at a
		// deferral cap at T. The cap check is memoized per image for
		// this iteration — inFlightAt scans the image's completion
		// history, and a burst can have thousands of backlogged tickets
		// sharing one image.
		var best *Ticket
		var bestSt *imageState
		bestIdx := -1
		var deferred map[*imageState]bool
		atCap := func(st *imageState) bool {
			if a.pol.MaxInFlight <= 0 || a.pol.RejectOverflow {
				return false
			}
			if deferred == nil {
				deferred = make(map[*imageState]bool)
			}
			capped, ok := deferred[st]
			if !ok {
				capped = st.inFlightAt(T) >= a.pol.MaxInFlight
				deferred[st] = capped
			}
			return capped
		}
		for i, t := range pending {
			if t.Arrival > T {
				continue
			}
			st := a.state(t.Image)
			if atCap(st) {
				continue
			}
			a.activate(st)
			// First-submitted ticket per image (same-image entries later
			// in pending compare equal and are skipped), lowest (pass,
			// name) across images.
			if bestSt == nil || st.pass < bestSt.pass ||
				(st.pass == bestSt.pass && st != bestSt && st.name < bestSt.name) {
				best, bestSt, bestIdx = t, st, i
			}
		}
		if best == nil {
			// Every backlogged image is deferred: advance time to the
			// next event and retry. That event is the earliest capping
			// completion beyond T — or the next pending arrival, which
			// must also bound the jump: an uncapped image's ticket must
			// never be held past its arrival just because another
			// image's backlog is waiting out its quota.
			nextT := ^uint64(0)
			for _, t := range pending {
				if t.Arrival > T {
					if t.Arrival < nextT {
						nextT = t.Arrival
					}
					continue
				}
				for _, sp := range a.state(t.Image).spans {
					if sp.done > T && sp.done < nextT {
						nextT = sp.done
					}
				}
			}
			if nextT == ^uint64(0) {
				nextT = T + 1 // defensive: cannot recur, caps imply in-flight work
			}
			timeFloor = nextT
			continue
		}
		if bestSt.pass > a.vtime {
			a.vtime = bestSt.pass
		}
		bestSt.pass += a.stride(bestSt)
		best.notBefore = T
		pending = append(pending[:bestIdx], pending[bestIdx+1:]...)
		// Every remaining pending arrival is >= minArr, so completion
		// history at or below it can never be queried again — compact
		// it before the history of a long trace grows quadratic.
		bestSt.pruneDone(minArr)
		s.placeVirtual(best)
	}
	return rejected
}

// QueueDepth reports the number of tickets currently waiting (real
// mode; always 0 in virtual mode, where dispatch is synchronous).
func (s *Scheduler) QueueDepth() int { return int(s.depth.Load()) }

// PeakQueueDepth reports the high-water queue depth (real mode) or the
// peak busy-worker count observed at submission (virtual mode).
func (s *Scheduler) PeakQueueDepth() int { return int(s.peakDepth.Load()) }

// Submitted reports lifetime submission attempts, including rejected
// ones; after a drain, Submitted == Completed + Rejected.
func (s *Scheduler) Submitted() uint64 { return s.submitted.Load() }

// Completed reports how many tickets have finished service.
func (s *Scheduler) Completed() uint64 { return s.completed.Load() }

// Rejected reports tickets that never ran: submissions after Close,
// admission hard-cap rejections, and malformed batch requests.
func (s *Scheduler) Rejected() uint64 { return s.rejected.Load() }

// AdmissionStats snapshots one image's admission telemetry. The second
// return is false when no Admission policy is attached or the image has
// never been seen.
func (s *Scheduler) AdmissionStats(image string) (AdmissionStats, bool) {
	if s.adm == nil {
		return AdmissionStats{}, false
	}
	if s.virtual {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.adm.statsLocked(image, 0)
	}
	s.dmu.Lock()
	defer s.dmu.Unlock()
	return s.adm.statsLocked(image, s.queuedN)
}

// AdmissionImages lists the image identities the admission layer has
// seen, sorted; nil when no policy is attached.
func (s *Scheduler) AdmissionImages() []string {
	if s.adm == nil {
		return nil
	}
	if s.virtual {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.adm.imagesLocked()
	}
	s.dmu.Lock()
	defer s.dmu.Unlock()
	return s.adm.imagesLocked()
}

// Close stops accepting work and waits for in-flight tickets to drain.
// Close is idempotent; a Submit racing or following Close returns a
// ticket that fails with ErrClosed.
func (s *Scheduler) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	if !s.virtual {
		s.dmu.Lock()
		s.qclosed = true
		s.notEmpty.Broadcast()
		s.notFull.Broadcast()
		s.dmu.Unlock()
		s.wg.Wait()
	} else {
		// Hand drain ownership back to the runtime: any leftover dirty
		// shells go to the background cleaners.
		for _, c := range s.cleaners {
			c.SetDriven(false)
		}
	}
}

// SetVirtualWorkers resizes the active virtual fleet to n workers at
// virtual time `at` — the autoscaling primitive. Growth reactivates
// parked workers (or creates new ones, pinned round-robin over the
// fleet's platforms like the constructor) and advances every
// (re)activated worker's clock to at least `at`, so new capacity can
// never serve work before the scaling decision that created it.
// Shrink parks the highest-id workers first: their clocks and run
// counts are retained (Makespan and WorkerInfo still see them) but
// they take no further work and leave the dispatch trees and the quota
// model. Returns the resulting active width. Virtual mode only —
// real-mode fleets are goroutines, not clocks — and panics otherwise.
// Call between submissions, like every other virtual-mode read.
func (s *Scheduler) SetVirtualWorkers(n int, at uint64) int {
	if !s.virtual {
		panic("sched: SetVirtualWorkers is a virtual-mode primitive")
	}
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if tr := s.tracer; tr.Enabled() && n != s.nActive {
		tr.Instant(obs.ControlLane, obs.KindAutoscale, "fleet-resize",
			at, 0, uint64(s.nActive), uint64(n))
	}
	for s.nActive > n {
		wk := s.workers[s.nActive-1]
		if s.vtrees != nil {
			s.vtrees[wk.beIdx].remove(wk)
			if s.quotaRecs != nil && wk.lastImage != "" {
				s.quotaRecRemove(wk.beIdx, wk.lastImage, wk.lastDone, wk.id)
			}
		}
		s.bstates[wk.beIdx].workers--
		s.nActive--
	}
	for len(s.workers) < n {
		i := len(s.workers)
		p := s.platforms[i%len(s.platforms)]
		wk := &worker{id: i, clk: cycles.NewClock(), pname: p.Name()}
		wk.beIdx = s.ensureBackendLocked(p)
		s.workers = append(s.workers, wk)
	}
	for s.nActive < n {
		wk := s.workers[s.nActive]
		wk.clk.AdvanceTo(at)
		if s.vtrees != nil {
			s.vtrees[wk.beIdx].insert(wk)
			if s.quotaRecs != nil && wk.lastImage != "" {
				// A reactivated worker's last run re-enters the quota
				// model, mirroring the linear reference's active scan.
				s.quotaRecAdd(wk.beIdx, wk.lastImage, wk.lastStart, wk.lastDone, wk.id)
			}
		}
		s.bstates[wk.beIdx].workers++
		s.nActive++
	}
	return s.nActive
}

// ensureBackendLocked returns the backend-state index for platform p,
// registering it if the initial fleet was too small to have pinned a
// worker there yet. Caller holds mu.
func (s *Scheduler) ensureBackendLocked(p vmm.Platform) int {
	name := p.Name()
	for i, bs := range s.bstates {
		if bs.platform.Name() == name {
			return i
		}
	}
	if !s.w.HasPlatform(name) {
		panic(fmt.Sprintf("sched: worker platform %q is not a backend of this Wasp (use wasp.WithPlatforms)", name))
	}
	s.bstates = append(s.bstates, &backendState{platform: p})
	if s.vtrees != nil {
		s.vtrees = append(s.vtrees, &otree{})
	}
	if s.quotaRecs != nil {
		s.quotaRecs = append(s.quotaRecs, nil)
	}
	if s.busyBy != nil {
		s.busyBy = append(s.busyBy, 0)
	}
	return len(s.bstates) - 1
}

// Makespan reports the maximum worker-clock value — the virtual time at
// which the last worker went idle. Call only after Close (real mode) or
// between submissions (virtual mode); worker clocks are unsynchronized
// while workers run.
func (s *Scheduler) Makespan() uint64 {
	var max uint64
	for _, wk := range s.workers {
		if n := wk.clk.Now(); n > max {
			max = n
		}
	}
	return max
}

// WorkerLoads reports per-worker completed-run counts. Unlike Makespan,
// the counts are atomic, so this diagnostic read is safe even while
// workers are executing.
func (s *Scheduler) WorkerLoads() []uint64 {
	out := make([]uint64, len(s.workers))
	for i, wk := range s.workers {
		out[i] = wk.runs.Load()
	}
	return out
}

// WorkerLoad is one worker's identity and lifetime completion count.
type WorkerLoad struct {
	Worker   int
	Platform string
	Runs     uint64
}

// WorkerInfo reports each worker's pinned platform alongside its
// completed-run count — WorkerLoads with the backend identity the
// multi-platform bench tables and examples print. Safe while workers
// execute (the counts are atomic).
func (s *Scheduler) WorkerInfo() []WorkerLoad {
	out := make([]WorkerLoad, len(s.workers))
	for i, wk := range s.workers {
		out[i] = WorkerLoad{Worker: wk.id, Platform: wk.pname, Runs: wk.runs.Load()}
	}
	return out
}

// BackendLoad aggregates one hypervisor backend's slice of the fleet.
type BackendLoad struct {
	Platform  string
	Workers   int
	Completed uint64
}

// BackendLoads reports per-backend worker counts and completed-ticket
// totals, in fleet declaration order — where the work actually landed.
// Safe while workers execute.
func (s *Scheduler) BackendLoads() []BackendLoad {
	out := make([]BackendLoad, len(s.bstates))
	for i, bs := range s.bstates {
		out[i] = BackendLoad{
			Platform:  bs.platform.Name(),
			Workers:   bs.workers,
			Completed: bs.completed.Load(),
		}
	}
	return out
}

// CleanerDrains reports dirty shells this scheduler scrubbed: on the
// real-mode idle-worker lane, or on the virtual cleaner core.
func (s *Scheduler) CleanerDrains() uint64 { return s.cleanerDrains.Load() }

// CleanerCycles reports the virtual cleaner cores' clock — the virtual
// time the busiest backend's cleaner last went idle, i.e. the total
// zeroing work Wasp+CA moved off the request path (virtual mode; 0 when
// cleaning is synchronous or real-mode).
func (s *Scheduler) CleanerCycles() uint64 {
	var max uint64
	for _, c := range s.cleaners {
		if n := c.Cycles(); n > max {
			max = n
		}
	}
	return max
}

// String summarizes scheduler state for diagnostics, including each
// backend's worker count and completed-ticket total so a mixed fleet
// shows where work landed.
func (s *Scheduler) String() string {
	mode := "real"
	if s.virtual {
		mode = "virtual"
	}
	backends := ""
	for i, bs := range s.bstates {
		if i > 0 {
			backends += " "
		}
		backends += fmt.Sprintf("%s:%dw/%d", bs.platform.Name(), bs.workers, bs.completed.Load())
	}
	return fmt.Sprintf("sched{%s, workers=%d, backends=[%s], submitted=%d, completed=%d, rejected=%d, depth=%d}",
		mode, len(s.workers), backends, s.Submitted(), s.Completed(), s.Rejected(), s.QueueDepth())
}
