package cpu

// Trace JIT: hot code is compiled into chains of Go closures ("traces"),
// one closure per instruction (or per fused flag-setter/branch pair),
// each specialized at compile time on operand registers, immediates and
// the mode's width/mask — the per-instruction decode-switch disappears
// from the hot loop, and straight-line dispatch overhead is paid once
// per trace instead of once per instruction.
//
// Traces follow control flow, not just fall-through:
//
//   - direct JMP and CALL targets inside the same 4 KiB code page are
//     followed at compile time, so a call's callee body is compiled
//     inline (the architectural push of the return address still
//     happens — only the dispatch is elided);
//   - a RET whose matching CALL was followed is speculated: the closure
//     pops the return address and, when it equals the traced return
//     site, execution continues inline; a mismatch (the guest rewrote
//     its stack) is a side exit with the popped address as the new IP;
//   - conditional branches become side exits: the not-taken path is
//     compiled inline and a taken branch leaves the trace with the
//     target in IP — both directions architecturally exact.
//
// Tiering. The dispatch loop in exec.go picks the cheapest valid engine
// per instruction: (1) legacy Step for specials and architectural
// transitions, (2) single fused/predecoded entries for code executing
// for the first time, (3) a compiled trace once an offset is dispatched
// again from an already-cached entry — so code that runs once (boot
// stubs, error paths) never pays compilation.
//
// Sharing. Traces hang off the codePage that owns their bytes,
// published copy-on-write under the page's mutex and read with one
// atomic load. Because ShareCode/AdoptCode move whole pages, compiled
// traces travel through Wasp's per-content codeRegistry exactly like
// decoded entries: every tenant clone of an image executes one compiled
// form, and a trace compiled during one tenant's run is immediately
// visible to the others. A per-CPU direct-mapped cache (bcache) fronts
// the map lookup, and a trace records the virtual address it was
// anchored at so a page mapped at a different virtual address falls
// back to the single-entry tier instead of following stale targets.
//
// Deoptimization contract. A trace's validity is anchored to its page
// pointer: any write into the page (guest store, host write, reset)
// unhooks the page and the traces with it. On top of that, four paths
// leave a partially-executed trace with bit-exact architectural state:
//
//   - fault: closures return an *Exit; the executor rolls the
//     unexecuted steps' batched cycles back, retires only completed
//     instructions and points IP at the faulting instruction — exactly
//     the legacy fault state;
//   - deopt (errDeopt): the step did not execute at all (Mode32 STORE
//     before the ident-map latch); its own cost is rolled back too and
//     the dispatch loop re-executes it via the delegation path;
//   - self-modification: a store step that invalidated the trace's own
//     page stops the trace after the completed store; the dispatch loop
//     re-decodes the rewritten bytes (detected by the page-pointer
//     check);
//   - budget: a trace is only entered when the remaining instruction
//     budget covers it; otherwise the single-entry tier runs, keeping
//     the budget-exhaustion fault on the same instruction as the legacy
//     engine.
//
// Traces never leave their 4 KiB physical page (invalidation is
// page-granular), never contain specials (mode switches, I/O), and end
// at the first unfollowable control transfer.

import (
	"encoding/binary"

	"repro/internal/cycles"
	"repro/internal/isa"
)

const (
	bcacheSize    = 512 // direct-mapped per-CPU block cache (power of two)
	maxBlockSteps = 96
)

// step executes one compiled instruction. nil means continue; errDeopt,
// errSide and errDiv0 are sentinels the executor rewrites; any other
// *Exit is an architectural fault with the final message already
// formatted.
type step func(c *CPU) *Exit

var (
	errDeopt = new(Exit) // step did not execute: re-dispatch it
	errSide  = new(Exit) // step completed and set IP: leave the trace
	errDiv0  = new(Exit) // divide by zero: executor formats with the IP
	errSMC   = new(Exit) // store completed and unhooked a decoded page
)

// bcent is one direct-mapped block-cache entry. A hit requires the
// recorded page to still be the one installed for the physical address,
// so invalidation needs no cache maintenance. anchor and nret duplicate
// the block's fields so the chain-probe hot path decides hit/miss and
// budget without touching the cblock's cache line.
type bcent struct {
	phys   uint64
	anchor uint64
	mode   isa.Mode
	nret   uint32
	pg     *codePage
	blk    *cblock
}

// cblock is one compiled trace. The parallel arrays carry the metadata
// the executor needs to reconstruct exact architectural state mid-trace:
// per-step instruction offsets (signed, relative to the entry IP —
// followed call targets can precede the head), fixed cycle costs and
// retire counts, all cumulative-summed.
type cblock struct {
	ops    []step
	off    []int32  // offset of the step's instruction
	offEnd []int32  // offset of its successor in trace order
	cost   []uint8  // fixed cost (base + mul/div extra; both halves if fused)
	cum    []uint32 // cumulative cost through this step
	ret    []uint8  // instructions this step retires (1, or 2 for fused)
	cumRet []uint32 // cumulative retires through this step
	anchor uint64   // virtual IP the trace was compiled at
	end    int32    // successor offset when the trace falls off its end
	term   bool     // last step always sets IP itself
	total  uint32   // sum of cost
	nret   uint32   // sum of ret
}

// blockAt returns the compiled trace headed at phys (compiling and
// publishing it on first need), or nil when no trace applies — the head
// cannot start one, or an existing trace is anchored at a different
// virtual address than ip.
func (c *CPU) blockAt(pg *codePage, page uint64, off uint32, ip uint64) *cblock {
	phys := page*codePageSize + uint64(off)
	slot := &c.bcache[(phys>>2^phys>>12)&(bcacheSize-1)]
	if slot.phys == phys && slot.mode == c.Mode && slot.pg == pg {
		if slot.anchor != ip {
			return nil
		}
		c.Stats.BlockHits++
		return slot.blk
	}
	key := off | uint32(c.Mode)<<12
	if m := pg.blocks.Load(); m != nil {
		if blk := (*m)[key]; blk != nil {
			if blk.anchor != ip {
				return nil
			}
			c.Stats.BlockHits++
			*slot = bcent{phys: phys, anchor: ip, mode: c.Mode, nret: blk.nret, pg: pg, blk: blk}
			return blk
		}
	}
	blk := c.compileBlock(ip, phys)
	if blk == nil {
		return nil
	}
	pg.addBlock(key, blk)
	c.Stats.BlocksCompiled++
	c.tier(false, ip)
	*slot = bcent{phys: phys, anchor: ip, mode: c.Mode, nret: blk.nret, pg: pg, blk: blk}
	return blk
}

// execChain runs the compiled trace headed at guest-virtual entryIP and
// keeps going: whenever a trace completes or side-exits onto the head of
// another cached trace, the next one is entered directly — full dispatch
// (entry load, flag checks, map probe) is skipped between hot traces.
// It returns the instructions retired and a non-nil exit on fault; on a
// nil exit the dispatch loop re-examines state from scratch (the chain
// only breaks on deopt, self-modification, budget, or a cache miss, all
// of which require that). Each trace's whole fixed cost is batched up
// front and rolled back pro rata on any early return, so the clock
// observed at every exit equals the legacy engine's bit for bit.
//
// Anything that invalidates a trace also breaks the chain: invalidation
// unhooks the page, and the probe's page-identity check fails.
func (c *CPU) execChain(blk *cblock, entryIP, page uint64, pg *codePage, pending *uint64, budget uint64) (uint64, *Exit) {
	steps := uint64(0)
	for {
		c.blockEntry = entryIP
		*pending += uint64(blk.total)
		ops := blk.ops
		last := len(ops) - 1
		for i := 0; i < last; i++ {
			if ex := ops[i](c); ex != nil {
				if ex == errSide {
					// Side exit (taken branch, return-speculation
					// miss): the step completed and set IP itself.
					done := uint64(blk.cumRet[i])
					*pending -= uint64(blk.total) - uint64(blk.cum[i])
					c.Retired += done
					steps += done
					goto next
				}
				if ex == errSMC {
					// The store completed and unhooked some decoded
					// page. Only a hit on the trace's own page matters
					// here (other pages are re-validated by the
					// dispatch loop when reached); the hint is
					// consumed either way.
					c.codeClobbered = false
					if c.codeAt(page) == pg {
						continue
					}
					// Self-modification: everything through step i
					// executed architecturally; stop before the next
					// step so the modified bytes are re-decoded.
					done := uint64(blk.cumRet[i])
					*pending -= uint64(blk.total) - uint64(blk.cum[i])
					c.Retired += done
					c.IP = entryIP + uint64(int64(blk.offEnd[i]))
					c.Stats.BlockDeopts++
					c.tier(true, entryIP)
					return steps + done, nil
				}
				done, cont, ex2 := c.blockStop(blk, i, entryIP, pending, ex)
				steps += done
				if ex2 != nil || !cont {
					return steps, ex2
				}
				goto next
			}
		}
		// A store in the final step needs no stop: the probe below
		// re-validates the page before dispatching anything after it.
		if ex := ops[last](c); ex != nil && ex != errSMC {
			done, cont, ex2 := c.blockStop(blk, last, entryIP, pending, ex)
			steps += done
			if ex2 != nil || !cont {
				return steps, ex2
			}
		} else {
			if ex == errSMC {
				c.codeClobbered = false
			}
			if !blk.term {
				c.IP = entryIP + uint64(int64(blk.end))
			}
			c.Retired += uint64(blk.nret)
			steps += uint64(blk.nret)
		}
	next:
		entryIP = c.IP
		if entryIP == blk.anchor && uint64(blk.nret) <= budget-steps {
			// Side exit straight back to this trace's own head (a loop
			// back-edge or recursion spine). Mid-trace invariants make
			// the full probe redundant: no special can have changed the
			// mode or translations, and any store that unhooked the
			// trace's page would have stopped it via errSMC.
			c.Stats.BlockHits++
			continue
		}
		{
			if !c.fetchOK || entryIP < c.fetchVBase || entryIP >= c.fetchVEnd {
				return steps, nil
			}
			phys := c.fetchPBase + (entryIP - c.fetchVBase)
			slot := &c.bcache[(phys>>2^phys>>12)&(bcacheSize-1)]
			if slot.phys != phys || slot.mode != c.Mode || slot.anchor != entryIP ||
				uint64(slot.nret) > budget-steps {
				return steps, nil
			}
			page = phys / codePageSize
			if pg = c.codeAt(page); pg != slot.pg {
				return steps, nil
			}
			blk = slot.blk
			c.Stats.BlockHits++
		}
	}
}

// blockStop reconstructs exact architectural state when step i of a
// trace returned non-nil: a side exit, a deopt request, or a fault
// (including the errDiv0 sentinel, formatted here with the faulting IP).
func (c *CPU) blockStop(blk *cblock, i int, entryIP uint64, pending *uint64, ex *Exit) (uint64, bool, *Exit) {
	if ex == errSide {
		// The step completed — taken branch or return-speculation miss —
		// and already set IP. (The executor inlines this case for all
		// but the final step.)
		done := uint64(blk.cumRet[i])
		*pending -= uint64(blk.total) - uint64(blk.cum[i])
		c.Retired += done
		return done, true, nil
	}
	done := uint64(blk.cumRet[i]) - uint64(blk.ret[i])
	if ex == errDeopt {
		// The step did not execute: roll back its cost too and let the
		// dispatch loop re-execute it via delegation.
		*pending -= uint64(blk.total) - uint64(blk.cum[i]) + uint64(blk.cost[i])
		c.Retired += done
		c.IP = entryIP + uint64(int64(blk.off[i]))
		c.Stats.BlockDeopts++
		c.tier(true, entryIP)
		return done, false, nil
	}
	if ex == errDiv0 {
		ex = c.fault("divide by zero at %#x", entryIP+uint64(int64(blk.off[i])))
	}
	*pending -= uint64(blk.total) - uint64(blk.cum[i])
	ipOff := blk.off[i]
	if c.lateSet {
		// A fused pair faulted half-way: restore exact attribution.
		*pending -= uint64(c.lateRoll)
		done += uint64(c.lateRet)
		if c.lateRet > 0 {
			ipOff = c.lateMid
		}
		c.lateSet, c.lateRoll, c.lateRet, c.lateMid = false, 0, 0, 0
	}
	c.Retired += done
	c.IP = entryIP + uint64(int64(ipOff))
	return done, false, ex
}

// fastLoad64/fastStore64 are the long-mode word-access fast paths — a
// data-TLB hit, in bounds. Both are small enough that the compiler
// inlines them into each compiled closure, so the common case pays no
// call at all; on a miss the caller falls back to loadWord/storeWord,
// which recompute the (uncharged) TLB probe and produce identical cycle
// charges and fault messages. fastStore64 returns the physical address
// so the caller can report the store to the dirty tracker — the one
// piece too large to inline.
func (c *CPU) fastLoad64(va uint64) (uint64, bool) {
	if c.dtlbOK && c.dtlbPage == va>>21 {
		if p := c.dtlbBase | (va & 0x1F_FFFF); p+8 <= uint64(len(c.Mem)) {
			c.Clock.Advance(cycles.MemAccess)
			return binary.LittleEndian.Uint64(c.Mem[p : p+8]), true
		}
	}
	return 0, false
}

func (c *CPU) fastStore64(va, v uint64) (uint64, bool) {
	if c.dtlbOK && c.dtlbPage == va>>21 {
		if p := c.dtlbBase | (va & 0x1F_FFFF); p+8 <= uint64(len(c.Mem)) {
			binary.LittleEndian.PutUint64(c.Mem[p:p+8], v)
			return p, true
		}
	}
	return 0, false
}

// setArithW/setLogicW are setArith/setLogic with the mode's mask and sign
// bit supplied by the (compile-time-specialized) caller.
func (c *CPU) setArithW(res, a, b uint64, sub bool, mask, sign uint64) {
	r := res & mask
	c.Flags.ZF = r == 0
	c.Flags.SF = r&sign != 0
	if sub {
		c.Flags.CF = (a & mask) < (b & mask)
		c.Flags.OF = (a^b)&(a^res)&sign != 0
	} else {
		c.Flags.CF = r < (a & mask)
		c.Flags.OF = ^(a^b)&(a^res)&sign != 0
	}
}

// setArith64 is setArithW specialized to 64-bit width: no masking and a
// constant sign bit, so a Mode64 arithmetic closure carries two fewer
// captured variables and no masking ALU ops.
func (c *CPU) setArith64(res, a, b uint64, sub bool) {
	c.Flags.ZF = res == 0
	c.Flags.SF = int64(res) < 0
	if sub {
		c.Flags.CF = a < b
		c.Flags.OF = int64((a^b)&(a^res)) < 0
	} else {
		c.Flags.CF = res < a
		c.Flags.OF = int64(^(a^b)&(a^res)) < 0
	}
}

func (c *CPU) setLogicW(res uint64, mask, sign uint64) {
	r := res & mask
	c.Flags.ZF = r == 0
	c.Flags.SF = r&sign != 0
	c.Flags.CF = false
	c.Flags.OF = false
}

var stepNop = func(c *CPU) *Exit { return nil }

// compileBlock builds the trace anchored at virtual ip / physical phys:
// it decodes forward, emitting one closure per instruction, fusing
// flag-setter/branch pairs into side-exit steps, following direct JMP
// and CALL targets that stay inside the head's 4 KiB page, and
// speculating the RETs that match followed CALLs. Compilation stops at
// a special, a decode stop, the page boundary, an unfollowable control
// transfer, or the step cap. The closures capture operands and the
// mode's width/mask — never the CPU, its memory, or absolute step
// addresses (only branch-target immediates, which are architectural) —
// so a trace is shareable across every CPU whose page bytes match
// (which AdoptCode guarantees).
func (c *CPU) compileBlock(ip, phys uint64) *cblock {
	mode := c.Mode
	w := uint64(mode.Width())
	mask := widthMask(mode)
	sign := signBit(mode)
	pBase := phys &^ (codePageSize - 1)
	blk := &cblock{anchor: ip}
	var retStack []int32 // return sites of followed CALLs, innermost last
	add := func(fn step, rel, next int32, n int32, cost, ret uint8) {
		blk.ops = append(blk.ops, fn)
		blk.off = append(blk.off, rel)
		blk.offEnd = append(blk.offEnd, next)
		blk.cost = append(blk.cost, cost)
		blk.total += uint32(cost)
		blk.cum = append(blk.cum, blk.total)
		blk.ret = append(blk.ret, ret)
		blk.nret += uint32(ret)
		blk.cumRet = append(blk.cumRet, blk.nret)
		_ = n
	}
	// follow resolves a direct branch target to a trace-relative offset,
	// or reports that the trace cannot continue there: the target's
	// physical location must sit in the head's page and be reachable
	// through the same linear translation window the head was fetched
	// from (in long mode, the same 2 MB virtual page).
	follow := func(t uint64) (int32, bool) {
		if mode == isa.Mode64 && t>>21 != ip>>21 {
			return 0, false
		}
		d := int64(t) - int64(ip)
		np := int64(phys) + d
		if np < int64(pBase) || np >= int64(pBase)+codePageSize {
			return 0, false
		}
		return int32(d), true
	}
	rel := int32(0)
	emitted := map[int32]bool{} // trace-order back-edge detection
compile:
	for len(blk.ops) < maxBlockSteps {
		emitted[rel] = true
		pp := int64(phys) + int64(rel)
		if pp < int64(pBase) || pp >= int64(pBase)+codePageSize {
			break
		}
		in, err := isa.Decode(c.Mem, uint64(pp), mode)
		if err != nil {
			break
		}
		n := int32(in.Len)
		if pp+int64(n) > int64(pBase)+codePageSize || specialOp[in.Op] {
			break
		}
		var fn step
		cost := baseCost(in.Op)
		dst, src, imm := in.Dst, in.Src, in.Imm
		addrImm := in.Imm & mask

		// Peephole: flag-setter + conditional branch fuse into one
		// side-exit closure retiring two instructions (neither half can
		// fault); the trace continues on the not-taken path.
		if in.Op == isa.CMP || in.Op == isa.CMPI || in.Op == isa.DEC || in.Op == isa.INC {
			if jn, jerr := isa.Decode(c.Mem, uint64(pp)+uint64(n), mode); jerr == nil &&
				isJcc(jn.Op) && pp+int64(n)+int64(jn.Len) <= int64(pBase)+codePageSize {
				jop := jn.Op
				target := jn.Imm & mask
				pair := n + int32(jn.Len)
				pcost := cost + baseCost(jn.Op)
				// A backward taken arm that stays in the page is a loop
				// or recursion spine: follow it, so iterations unroll
				// into the trace, and side-exit on fall-through (the
				// loop exit). Forward branches keep the fall-through in
				// the trace and side-exit when taken.
				r2, bk := follow(target)
				bk = bk && emitted[r2] && r2 < rel
				fall := uint64(int64(rel + pair))
				switch in.Op {
				case isa.CMP:
					switch {
					case mode == isa.Mode64 && bk:
						fn = func(c *CPU) *Exit {
							a, b := c.Regs[dst], c.Regs[src]
							c.setArith64(a-b, a, b, true)
							if !jccTaken(jop, &c.Flags) {
								c.IP = c.blockEntry + fall
								return errSide
							}
							return nil
						}
					case mode == isa.Mode64:
						fn = func(c *CPU) *Exit {
							a, b := c.Regs[dst], c.Regs[src]
							c.setArith64(a-b, a, b, true)
							if jccTaken(jop, &c.Flags) {
								c.IP = target
								return errSide
							}
							return nil
						}
					case bk:
						fn = func(c *CPU) *Exit {
							a, b := c.Regs[dst]&mask, c.Regs[src]&mask
							c.setArithW(a-b, a, b, true, mask, sign)
							if !jccTaken(jop, &c.Flags) {
								c.IP = c.blockEntry + fall
								return errSide
							}
							return nil
						}
					default:
						fn = func(c *CPU) *Exit {
							a, b := c.Regs[dst]&mask, c.Regs[src]&mask
							c.setArithW(a-b, a, b, true, mask, sign)
							if jccTaken(jop, &c.Flags) {
								c.IP = target
								return errSide
							}
							return nil
						}
					}
				case isa.CMPI:
					switch {
					case mode == isa.Mode64 && bk:
						fn = func(c *CPU) *Exit {
							a := c.Regs[dst]
							c.setArith64(a-imm, a, imm, true)
							if !jccTaken(jop, &c.Flags) {
								c.IP = c.blockEntry + fall
								return errSide
							}
							return nil
						}
					case mode == isa.Mode64:
						fn = func(c *CPU) *Exit {
							a := c.Regs[dst]
							c.setArith64(a-imm, a, imm, true)
							if jccTaken(jop, &c.Flags) {
								c.IP = target
								return errSide
							}
							return nil
						}
					case bk:
						fn = func(c *CPU) *Exit {
							a := c.Regs[dst] & mask
							c.setArithW(a-imm, a, imm, true, mask, sign)
							if !jccTaken(jop, &c.Flags) {
								c.IP = c.blockEntry + fall
								return errSide
							}
							return nil
						}
					default:
						fn = func(c *CPU) *Exit {
							a := c.Regs[dst] & mask
							c.setArithW(a-imm, a, imm, true, mask, sign)
							if jccTaken(jop, &c.Flags) {
								c.IP = target
								return errSide
							}
							return nil
						}
					}
				case isa.DEC:
					switch {
					case mode == isa.Mode64 && bk:
						fn = func(c *CPU) *Exit {
							a := c.Regs[dst]
							r := a - 1
							c.setArith64(r, a, 1, true)
							c.Regs[dst] = r
							if !jccTaken(jop, &c.Flags) {
								c.IP = c.blockEntry + fall
								return errSide
							}
							return nil
						}
					case mode == isa.Mode64:
						fn = func(c *CPU) *Exit {
							a := c.Regs[dst]
							r := a - 1
							c.setArith64(r, a, 1, true)
							c.Regs[dst] = r
							if jccTaken(jop, &c.Flags) {
								c.IP = target
								return errSide
							}
							return nil
						}
					case bk:
						fn = func(c *CPU) *Exit {
							a := c.Regs[dst] & mask
							r := a - 1
							c.setArithW(r, a, 1, true, mask, sign)
							c.Regs[dst] = r & mask
							if !jccTaken(jop, &c.Flags) {
								c.IP = c.blockEntry + fall
								return errSide
							}
							return nil
						}
					default:
						fn = func(c *CPU) *Exit {
							a := c.Regs[dst] & mask
							r := a - 1
							c.setArithW(r, a, 1, true, mask, sign)
							c.Regs[dst] = r & mask
							if jccTaken(jop, &c.Flags) {
								c.IP = target
								return errSide
							}
							return nil
						}
					}
				case isa.INC:
					switch {
					case mode == isa.Mode64 && bk:
						fn = func(c *CPU) *Exit {
							a := c.Regs[dst]
							r := a + 1
							c.setArith64(r, a, 1, false)
							c.Regs[dst] = r
							if !jccTaken(jop, &c.Flags) {
								c.IP = c.blockEntry + fall
								return errSide
							}
							return nil
						}
					case mode == isa.Mode64:
						fn = func(c *CPU) *Exit {
							a := c.Regs[dst]
							r := a + 1
							c.setArith64(r, a, 1, false)
							c.Regs[dst] = r
							if jccTaken(jop, &c.Flags) {
								c.IP = target
								return errSide
							}
							return nil
						}
					case bk:
						fn = func(c *CPU) *Exit {
							a := c.Regs[dst] & mask
							r := a + 1
							c.setArithW(r, a, 1, false, mask, sign)
							c.Regs[dst] = r & mask
							if !jccTaken(jop, &c.Flags) {
								c.IP = c.blockEntry + fall
								return errSide
							}
							return nil
						}
					default:
						fn = func(c *CPU) *Exit {
							a := c.Regs[dst] & mask
							r := a + 1
							c.setArithW(r, a, 1, false, mask, sign)
							c.Regs[dst] = r & mask
							if jccTaken(jop, &c.Flags) {
								c.IP = target
								return errSide
							}
							return nil
						}
					}
				}
				if bk {
					add(fn, rel, r2, pair, pcost, 2)
					rel = r2
				} else {
					add(fn, rel, rel+pair, pair, pcost, 2)
					rel += pair
				}
				continue
			}
		}

		// Peephole: hot long-mode stack/ALU pairs fuse into one closure
		// retiring two instructions — each fusion removes a dispatch from
		// the trace's inner loop. Unlike the branch pairs above, a half
		// of these pairs can fault; the closure then records which half
		// completed in the lateFault fields so blockStop can attribute
		// retirement, batched cost and the faulting IP exactly as the
		// unfused (and legacy) engines would.
		if mode == isa.Mode64 &&
			(in.Op == isa.PUSH || in.Op == isa.POP || in.Op == isa.MOV || in.Op == isa.SUBI) {
			if jn, jerr := isa.Decode(c.Mem, uint64(pp)+uint64(n), mode); jerr == nil &&
				pp+int64(n)+int64(jn.Len) <= int64(pBase)+codePageSize && !specialOp[jn.Op] {
				pair := n + int32(jn.Len)
				pcost := cost + baseCost(jn.Op)
				relMid := rel + n
				roll := baseCost(jn.Op) // unexecuted 2nd half on a 1st-half fault
				switch {
				case in.Op == isa.PUSH && (jn.Op == isa.SUBI || jn.Op == isa.ADDI):
					// push r1; subi/addi d2, imm — the ALU half cannot
					// fault, so only the store needs late attribution.
					r1, d2, i2 := dst, jn.Dst, jn.Imm
					sub := jn.Op == isa.SUBI
					fn = func(c *CPU) *Exit {
						sp := c.Regs[isa.RSP] - 8
						c.Regs[isa.RSP] = sp
						if p, ok := c.fastStore64(sp, c.Regs[r1]); ok {
							c.invalidateCodeOne(p, 8)
							if c.OnStore != nil {
								c.noteStore(p, 8)
							}
							c.Clock.Advance(cycles.MemStore)
						} else if err := c.storeWord(sp, c.Regs[r1], isa.Mode64); err != nil {
							c.lateSet, c.lateRoll = true, roll
							return c.fault("push: %v", err)
						}
						a := c.Regs[d2]
						var r uint64
						if sub {
							r = a - i2
						} else {
							r = a + i2
						}
						c.setArith64(r, a, i2, sub)
						c.Regs[d2] = r
						if c.codeClobbered {
							return errSMC
						}
						return nil
					}
					add(fn, rel, rel+pair, pair, pcost, 2)
					rel += pair
					continue
				case in.Op == isa.POP && (jn.Op == isa.ADD || jn.Op == isa.SUB):
					// pop r1; add/sub d2, s2 — the load faults before any
					// state changes, the ALU half cannot fault.
					r1, d2, s2 := dst, jn.Dst, jn.Src
					sub := jn.Op == isa.SUB
					fn = func(c *CPU) *Exit {
						sp := c.Regs[isa.RSP]
						v, ok := c.fastLoad64(sp)
						if !ok {
							var err error
							if v, err = c.loadWord(sp, isa.Mode64); err != nil {
								c.lateSet, c.lateRoll = true, roll
								return c.fault("pop: %v", err)
							}
						}
						c.Regs[isa.RSP] = sp + 8
						c.Regs[r1] = v
						a, b := c.Regs[d2], c.Regs[s2]
						var r uint64
						if sub {
							r = a - b
						} else {
							r = a + b
						}
						c.setArith64(r, a, b, sub)
						c.Regs[d2] = r
						return nil
					}
					add(fn, rel, rel+pair, pair, pcost, 2)
					rel += pair
					continue
				case in.Op == isa.POP && jn.Op == isa.PUSH &&
					dst != isa.RSP && jn.Dst != isa.RSP:
					// pop r1; push r2 — the push reuses the slot the pop
					// just vacated, so RSP is never written: its value is
					// identical before, between (pop's +8 then push's -8)
					// and after the pair.
					r1, r2 := dst, jn.Dst
					fn = func(c *CPU) *Exit {
						sp := c.Regs[isa.RSP]
						v, ok := c.fastLoad64(sp)
						if !ok {
							var err error
							if v, err = c.loadWord(sp, isa.Mode64); err != nil {
								c.lateSet, c.lateRoll = true, roll
								return c.fault("pop: %v", err)
							}
						}
						c.Regs[r1] = v
						pv := c.Regs[r2]
						if p, ok2 := c.fastStore64(sp, pv); ok2 {
							c.invalidateCodeOne(p, 8)
							if c.OnStore != nil {
								c.noteStore(p, 8)
							}
							c.Clock.Advance(cycles.MemStore)
						} else if err := c.storeWord(sp, pv, isa.Mode64); err != nil {
							c.lateSet, c.lateRet, c.lateMid = true, 1, relMid
							return c.fault("push: %v", err)
						}
						if c.codeClobbered {
							return errSMC
						}
						return nil
					}
					add(fn, rel, rel+pair, pair, pcost, 2)
					rel += pair
					continue
				case in.Op == isa.SUBI && jn.Op == isa.CALL:
					// subi d, imm; call t (followed) — the decrement
					// commits before the return-address push can fault,
					// matching the legacy state at the fault.
					if r2, ok := follow(jn.Imm & mask); ok {
						d1, i1 := dst, imm
						retRel := rel + pair
						exp := uint64(int64(retRel))
						fn = func(c *CPU) *Exit {
							a := c.Regs[d1]
							r := a - i1
							c.setArith64(r, a, i1, true)
							c.Regs[d1] = r
							sp := c.Regs[isa.RSP] - 8
							c.Regs[isa.RSP] = sp
							if p, ok := c.fastStore64(sp, c.blockEntry+exp); ok {
								c.invalidateCodeOne(p, 8)
								if c.OnStore != nil {
									c.noteStore(p, 8)
								}
								c.Clock.Advance(cycles.MemStore)
							} else if err := c.storeWord(sp, c.blockEntry+exp, isa.Mode64); err != nil {
								c.lateSet, c.lateRet, c.lateMid = true, 1, relMid
								return c.fault("call push: %v", err)
							}
							if c.codeClobbered {
								return errSMC
							}
							return nil
						}
						add(fn, rel, r2, pair, pcost, 2)
						retStack = append(retStack, retRel)
						rel = r2
						continue
					}
				case in.Op == isa.MOV && jn.Op == isa.RET && len(retStack) > 0:
					// mov d, s; ret (speculated) — the move commits before
					// the pop can fault, which matches the legacy state at
					// the fault (mov retired, fault on the ret).
					retRel := retStack[len(retStack)-1]
					retStack = retStack[:len(retStack)-1]
					exp := uint64(int64(retRel))
					d1, s1 := dst, src
					fn = func(c *CPU) *Exit {
						c.Regs[d1] = c.Regs[s1]
						sp := c.Regs[isa.RSP]
						v, ok := c.fastLoad64(sp)
						if !ok {
							var err error
							if v, err = c.loadWord(sp, isa.Mode64); err != nil {
								c.lateSet, c.lateRet, c.lateMid = true, 1, relMid
								return c.fault("ret pop: %v", err)
							}
						}
						c.Regs[isa.RSP] = sp + 8
						if v != c.blockEntry+exp {
							c.IP = v
							return errSide
						}
						return nil
					}
					add(fn, rel, retRel, pair, pcost, 2)
					rel = retRel
					continue
				}
			}
		}

		switch in.Op {
		case isa.NOP, isa.CLI, isa.STI:
			fn = stepNop

		case isa.MOVI:
			v := imm & mask
			fn = func(c *CPU) *Exit { c.Regs[dst] = v; return nil }
		case isa.MOV:
			if mode == isa.Mode64 {
				fn = func(c *CPU) *Exit { c.Regs[dst] = c.Regs[src]; return nil }
				break
			}
			fn = func(c *CPU) *Exit { c.Regs[dst] = c.Regs[src] & mask; return nil }

		case isa.LOAD:
			if mode == isa.Mode64 {
				fn = func(c *CPU) *Exit {
					va := c.Regs[src] + imm
					if v, ok := c.fastLoad64(va); ok {
						c.Regs[dst] = v
						return nil
					}
					v, err := c.loadWord(va, isa.Mode64)
					if err != nil {
						return c.fault("%v", err)
					}
					c.Regs[dst] = v
					return nil
				}
				break
			}
			md := mode
			fn = func(c *CPU) *Exit {
				v, err := c.loadWord((c.Regs[src]&mask+imm)&mask, md)
				if err != nil {
					return c.fault("%v", err)
				}
				c.Regs[dst] = v & mask
				return nil
			}
		case isa.STORE:
			md := mode
			if mode == isa.Mode32 {
				// The ident-map latch may be unset on a CPU that adopted
				// this trace: deopt to the delegation path, which records
				// the milestone exactly as the legacy engine does.
				fn = func(c *CPU) *Exit {
					if !c.sawStore32 {
						return errDeopt
					}
					if err := c.storeWord((c.Regs[dst]&mask+imm)&mask, c.Regs[src]&mask, md); err != nil {
						return c.fault("%v", err)
					}
					if c.codeClobbered {
						return errSMC
					}
					return nil
				}
			} else if mode == isa.Mode64 {
				fn = func(c *CPU) *Exit {
					va := c.Regs[dst] + imm
					if p, ok := c.fastStore64(va, c.Regs[src]); ok {
						c.invalidateCodeOne(p, 8)
						if c.OnStore != nil {
							c.noteStore(p, 8)
						}
						c.Clock.Advance(cycles.MemStore)
					} else if err := c.storeWord(va, c.Regs[src], isa.Mode64); err != nil {
						return c.fault("%v", err)
					}
					if c.codeClobbered {
						return errSMC
					}
					return nil
				}
			} else {
				fn = func(c *CPU) *Exit {
					if err := c.storeWord((c.Regs[dst]&mask+imm)&mask, c.Regs[src]&mask, md); err != nil {
						return c.fault("%v", err)
					}
					if c.codeClobbered {
						return errSMC
					}
					return nil
				}
			}
		case isa.LOADB:
			md := mode
			fn = func(c *CPU) *Exit {
				p, err := c.Translate((c.Regs[src]&mask+imm)&mask, false)
				if err != nil {
					return c.fault("%v", err)
				}
				if p >= uint64(len(c.Mem)) {
					return c.fault("byte load beyond memory at %#x", p)
				}
				c.Clock.Advance(cycles.MemAccess)
				c.Regs[dst] = uint64(c.Mem[p])
				return nil
			}
			_ = md
		case isa.STOREB:
			fn = func(c *CPU) *Exit {
				p, err := c.Translate((c.Regs[dst]&mask+imm)&mask, true)
				if err != nil {
					return c.fault("%v", err)
				}
				if p >= uint64(len(c.Mem)) {
					return c.fault("byte store beyond memory at %#x", p)
				}
				c.Clock.Advance(cycles.MemStore)
				c.Mem[p] = byte(c.Regs[src] & mask)
				c.invalidateCodeOne(p, 1)
				c.noteStore(p, 1)
				if c.codeClobbered {
					return errSMC
				}
				return nil
			}

		case isa.ADD:
			if mode == isa.Mode64 {
				fn = func(c *CPU) *Exit {
					a, b := c.Regs[dst], c.Regs[src]
					r := a + b
					c.setArith64(r, a, b, false)
					c.Regs[dst] = r
					return nil
				}
				break
			}
			fn = func(c *CPU) *Exit {
				a, b := c.Regs[dst]&mask, c.Regs[src]&mask
				r := a + b
				c.setArithW(r, a, b, false, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.ADDI:
			if mode == isa.Mode64 {
				fn = func(c *CPU) *Exit {
					a := c.Regs[dst]
					r := a + imm
					c.setArith64(r, a, imm, false)
					c.Regs[dst] = r
					return nil
				}
				break
			}
			fn = func(c *CPU) *Exit {
				a := c.Regs[dst] & mask
				r := a + imm
				c.setArithW(r, a, imm, false, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.SUB:
			if mode == isa.Mode64 {
				fn = func(c *CPU) *Exit {
					a, b := c.Regs[dst], c.Regs[src]
					r := a - b
					c.setArith64(r, a, b, true)
					c.Regs[dst] = r
					return nil
				}
				break
			}
			fn = func(c *CPU) *Exit {
				a, b := c.Regs[dst]&mask, c.Regs[src]&mask
				r := a - b
				c.setArithW(r, a, b, true, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.SUBI:
			if mode == isa.Mode64 {
				fn = func(c *CPU) *Exit {
					a := c.Regs[dst]
					r := a - imm
					c.setArith64(r, a, imm, true)
					c.Regs[dst] = r
					return nil
				}
				break
			}
			fn = func(c *CPU) *Exit {
				a := c.Regs[dst] & mask
				r := a - imm
				c.setArithW(r, a, imm, true, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.MUL:
			fn = func(c *CPU) *Exit {
				r := (c.Regs[dst] & mask) * (c.Regs[src] & mask)
				c.setLogicW(r, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.DIV, isa.MOD:
			div := in.Op == isa.DIV
			md := mode
			fn = func(c *CPU) *Exit {
				a := signedAt(c.Regs[dst]&mask, md)
				b := signedAt(c.Regs[src]&mask, md)
				if b == 0 {
					return errDiv0
				}
				var r int64
				if div {
					r = a / b
				} else {
					r = a % b
				}
				c.setLogicW(uint64(r), mask, sign)
				c.Regs[dst] = uint64(r) & mask
				return nil
			}
		case isa.AND:
			fn = func(c *CPU) *Exit {
				r := c.Regs[dst] & mask & (c.Regs[src] & mask)
				c.setLogicW(r, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.ANDI:
			fn = func(c *CPU) *Exit {
				r := (c.Regs[dst] & mask) & imm
				c.setLogicW(r, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.OR:
			fn = func(c *CPU) *Exit {
				r := (c.Regs[dst] & mask) | (c.Regs[src] & mask)
				c.setLogicW(r, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.ORI:
			fn = func(c *CPU) *Exit {
				r := (c.Regs[dst] & mask) | imm
				c.setLogicW(r, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.XOR:
			fn = func(c *CPU) *Exit {
				r := (c.Regs[dst] & mask) ^ (c.Regs[src] & mask)
				c.setLogicW(r, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.SHLV:
			fn = func(c *CPU) *Exit {
				r := (c.Regs[dst] & mask) << (c.Regs[src] & mask & 63)
				c.setLogicW(r, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.SHRV:
			fn = func(c *CPU) *Exit {
				r := (c.Regs[dst] & mask) >> (c.Regs[src] & mask & 63)
				c.setLogicW(r, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.SARV:
			md := mode
			fn = func(c *CPU) *Exit {
				r := uint64(signedAt(c.Regs[dst]&mask, md) >> (c.Regs[src] & mask & 63))
				c.setLogicW(r, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.SHL:
			sh := imm & 63
			fn = func(c *CPU) *Exit {
				r := (c.Regs[dst] & mask) << sh
				c.setLogicW(r, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.SHR:
			sh := imm & 63
			fn = func(c *CPU) *Exit {
				r := (c.Regs[dst] & mask) >> sh
				c.setLogicW(r, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.SAR:
			sh := imm & 63
			md := mode
			fn = func(c *CPU) *Exit {
				r := uint64(signedAt(c.Regs[dst]&mask, md) >> sh)
				c.setLogicW(r, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.NEG:
			fn = func(c *CPU) *Exit {
				a := c.Regs[dst] & mask
				r := -a
				c.setArithW(r, 0, a, true, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.NOT:
			fn = func(c *CPU) *Exit {
				c.Regs[dst] = ^(c.Regs[dst] & mask) & mask
				return nil
			}
		case isa.INC:
			fn = func(c *CPU) *Exit {
				a := c.Regs[dst] & mask
				r := a + 1
				c.setArithW(r, a, 1, false, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.DEC:
			fn = func(c *CPU) *Exit {
				a := c.Regs[dst] & mask
				r := a - 1
				c.setArithW(r, a, 1, true, mask, sign)
				c.Regs[dst] = r & mask
				return nil
			}
		case isa.CMP:
			fn = func(c *CPU) *Exit {
				a, b := c.Regs[dst]&mask, c.Regs[src]&mask
				c.setArithW(a-b, a, b, true, mask, sign)
				return nil
			}
		case isa.CMPI:
			fn = func(c *CPU) *Exit {
				a := c.Regs[dst] & mask
				c.setArithW(a-imm, a, imm, true, mask, sign)
				return nil
			}

		case isa.JMP:
			if r2, ok := follow(addrImm); ok {
				add(stepNop, rel, r2, n, cost, 1)
				rel = r2
				continue
			}
			t := addrImm
			fn = func(c *CPU) *Exit { c.IP = t; return nil }
			blk.term = true
			add(fn, rel, rel+n, n, cost, 1)
			break compile
		case isa.JZ, isa.JNZ, isa.JL, isa.JG, isa.JLE, isa.JGE, isa.JB, isa.JAE:
			// Conditional branches never terminate a trace: one arm is
			// compiled inline, the other is a side exit. A backward
			// in-page taken arm (loop, recursion spine) is the one
			// followed; otherwise the fall-through is.
			jop := in.Op
			t := addrImm
			if r2, ok := follow(t); ok && emitted[r2] && r2 < rel {
				fall := uint64(int64(rel + n))
				fn = func(c *CPU) *Exit {
					if !jccTaken(jop, &c.Flags) {
						c.IP = c.blockEntry + fall
						return errSide
					}
					return nil
				}
				add(fn, rel, r2, n, cost, 1)
				rel = r2
				continue
			}
			fn = func(c *CPU) *Exit {
				if jccTaken(jop, &c.Flags) {
					c.IP = t
					return errSide
				}
				return nil
			}
			add(fn, rel, rel+n, n, cost, 1)
			rel += n
			continue
		case isa.CALL:
			t := addrImm
			retRel := rel + n
			exp := uint64(int64(retRel))
			if r2, ok := follow(t); ok {
				// Followed call: push the return address architecturally
				// and continue compiling at the callee.
				if mode == isa.Mode64 {
					fn = func(c *CPU) *Exit {
						sp := c.Regs[isa.RSP] - 8
						c.Regs[isa.RSP] = sp
						if p, ok := c.fastStore64(sp, c.blockEntry+exp); ok {
							c.invalidateCodeOne(p, 8)
							if c.OnStore != nil {
								c.noteStore(p, 8)
							}
							c.Clock.Advance(cycles.MemStore)
						} else if err := c.storeWord(sp, c.blockEntry+exp, isa.Mode64); err != nil {
							return c.fault("call push: %v", err)
						}
						if c.codeClobbered {
							return errSMC
						}
						return nil
					}
				} else {
					md := mode
					fn = func(c *CPU) *Exit {
						c.Regs[isa.RSP] -= w
						if err := c.storeWord(c.Regs[isa.RSP], c.blockEntry+exp, md); err != nil {
							return c.fault("call push: %v", err)
						}
						if c.codeClobbered {
							return errSMC
						}
						return nil
					}
				}
				add(fn, rel, r2, n, cost, 1)
				retStack = append(retStack, retRel)
				rel = r2
				continue
			}
			if mode == isa.Mode64 {
				fn = func(c *CPU) *Exit {
					sp := c.Regs[isa.RSP] - 8
					c.Regs[isa.RSP] = sp
					if p, ok := c.fastStore64(sp, c.blockEntry+exp); ok {
						c.invalidateCodeOne(p, 8)
						if c.OnStore != nil {
							c.noteStore(p, 8)
						}
						c.Clock.Advance(cycles.MemStore)
					} else if err := c.storeWord(sp, c.blockEntry+exp, isa.Mode64); err != nil {
						return c.fault("call push: %v", err)
					}
					c.IP = t
					if c.codeClobbered {
						return errSMC
					}
					return nil
				}
			} else {
				md := mode
				fn = func(c *CPU) *Exit {
					c.Regs[isa.RSP] -= w
					if err := c.storeWord(c.Regs[isa.RSP], c.blockEntry+exp, md); err != nil {
						return c.fault("call push: %v", err)
					}
					c.IP = t
					if c.codeClobbered {
						return errSMC
					}
					return nil
				}
			}
			blk.term = true
			add(fn, rel, retRel, n, cost, 1)
			break compile
		case isa.RET:
			if k := len(retStack); k > 0 {
				// Speculated return: the matching CALL is in this trace,
				// so the popped address should be its return site. A
				// mismatch (the guest rewrote its stack) side-exits with
				// the popped address — exactly the architectural result.
				retRel := retStack[k-1]
				retStack = retStack[:k-1]
				exp := uint64(int64(retRel))
				if mode == isa.Mode64 {
					fn = func(c *CPU) *Exit {
						sp := c.Regs[isa.RSP]
						v, ok := c.fastLoad64(sp)
						if !ok {
							var err error
							if v, err = c.loadWord(sp, isa.Mode64); err != nil {
								return c.fault("ret pop: %v", err)
							}
						}
						c.Regs[isa.RSP] = sp + 8
						if v != c.blockEntry+exp {
							c.IP = v
							return errSide
						}
						return nil
					}
				} else {
					md := mode
					fn = func(c *CPU) *Exit {
						v, err := c.loadWord(c.Regs[isa.RSP], md)
						if err != nil {
							return c.fault("ret pop: %v", err)
						}
						c.Regs[isa.RSP] += w
						if v&mask != c.blockEntry+exp {
							c.IP = v & mask
							return errSide
						}
						return nil
					}
				}
				add(fn, rel, retRel, n, cost, 1)
				rel = retRel
				continue
			}
			if mode == isa.Mode64 {
				fn = func(c *CPU) *Exit {
					sp := c.Regs[isa.RSP]
					v, ok := c.fastLoad64(sp)
					if !ok {
						var err error
						if v, err = c.loadWord(sp, isa.Mode64); err != nil {
							return c.fault("ret pop: %v", err)
						}
					}
					c.Regs[isa.RSP] = sp + 8
					c.IP = v
					return nil
				}
			} else {
				md := mode
				fn = func(c *CPU) *Exit {
					v, err := c.loadWord(c.Regs[isa.RSP], md)
					if err != nil {
						return c.fault("ret pop: %v", err)
					}
					c.Regs[isa.RSP] += w
					c.IP = v & mask
					return nil
				}
			}
			blk.term = true
			add(fn, rel, rel+n, n, cost, 1)
			break compile
		case isa.PUSH:
			if mode == isa.Mode64 {
				fn = func(c *CPU) *Exit {
					sp := c.Regs[isa.RSP] - 8
					c.Regs[isa.RSP] = sp
					if p, ok := c.fastStore64(sp, c.Regs[dst]); ok {
						c.invalidateCodeOne(p, 8)
						if c.OnStore != nil {
							c.noteStore(p, 8)
						}
						c.Clock.Advance(cycles.MemStore)
					} else if err := c.storeWord(sp, c.Regs[dst], isa.Mode64); err != nil {
						return c.fault("push: %v", err)
					}
					if c.codeClobbered {
						return errSMC
					}
					return nil
				}
			} else {
				md := mode
				fn = func(c *CPU) *Exit {
					c.Regs[isa.RSP] -= w
					if err := c.storeWord(c.Regs[isa.RSP], c.Regs[dst]&mask, md); err != nil {
						return c.fault("push: %v", err)
					}
					if c.codeClobbered {
						return errSMC
					}
					return nil
				}
			}
		case isa.POP:
			if mode == isa.Mode64 {
				fn = func(c *CPU) *Exit {
					sp := c.Regs[isa.RSP]
					v, ok := c.fastLoad64(sp)
					if !ok {
						var err error
						if v, err = c.loadWord(sp, isa.Mode64); err != nil {
							return c.fault("pop: %v", err)
						}
					}
					c.Regs[isa.RSP] = sp + 8
					c.Regs[dst] = v
					return nil
				}
			} else {
				md := mode
				fn = func(c *CPU) *Exit {
					v, err := c.loadWord(c.Regs[isa.RSP], md)
					if err != nil {
						return c.fault("pop: %v", err)
					}
					c.Regs[isa.RSP] += w
					c.Regs[dst] = v & mask
					return nil
				}
			}

		default:
			// Unknown op: stop the trace; the dispatch loop faults on it
			// with the legacy message.
			break compile
		}
		add(fn, rel, rel+n, n, cost, 1)
		rel += n
	}
	if len(blk.ops) == 0 {
		return nil
	}
	// rel is the offset of the next instruction to execute whenever the
	// loop stopped without a terminator (step cap, decode stop, page
	// boundary, special): that is where a completed trace resumes.
	blk.end = rel
	return blk
}
