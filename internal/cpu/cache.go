package cpu

// Decoded-instruction cache. The legacy interpreter re-parses raw bytes
// with isa.Decode on every retired instruction; at guest scale that decode
// is the dominant host cost (roughly half the wall-clock of a fib run).
// This file predecodes guest code into per-physical-page arrays of compact
// decoded entries: each instruction is decoded once per page generation,
// not once per execution.
//
// Correctness hinges on invalidation. Every write into guest-physical
// memory funnels through one of:
//
//   - the CPU's own store paths (storeWord, STOREB, WriteMem), which call
//     invalidateCode directly, so self-modifying code re-decodes the
//     bytes it just wrote even on a bare CPU with no VMM attached;
//   - vmm.Context.HostWrite — the funnel image loads, argument
//     marshalling, and hypercall handler writes report to — which calls
//     InvalidateCode before the dirty-page bookkeeping, so host writes
//     flush exactly the touched code pages;
//   - vmm.Context.Clean / CPU.Reset, which drop the whole cache (the
//     shell is zeroed; nothing cached can remain valid).
//
// Invalidation is page-granular and cheap: dropping a page is a single
// pointer store, and the no-code-cached-here check data stores pay is one
// nil test.
//
// Pages can outlive one CPU. ShareCode freezes the current pages
// (marking them immutable and recording the exact bytes they were decoded
// from) and AdoptCode installs frozen pages into another CPU after
// verifying the target memory still holds those bytes. Wasp uses this to
// keep one decoded cache per image across pooled shells, snapshot
// restores, and parked COW shells: decode once per image, not once per
// run. A CPU that needs to write into a shared page (new entry, different
// mode) clones it first, so frozen pages are never mutated.

import (
	"bytes"
	"sync"
	"sync/atomic"

	"repro/internal/cycles"
	"repro/internal/isa"
)

// codePageSize is the invalidation granularity. It matches vmm.PageSize
// (the dirty-page granularity); vmm imports cpu, so the constant is
// restated here.
const codePageSize = 4096

// centry is one predecoded instruction, compact enough that a full page
// of entries stays cache-friendly (16 bytes per offset).
type centry struct {
	op   isa.Op
	dst  isa.Reg
	src  isa.Reg
	sub  byte
	mode isa.Mode
	n    uint8 // encoded length; 0 marks an empty slot
	cost uint8 // precomputed base cycle cost (InstrBase + mul/div extra)
	flag uint8 // fSpecial: execute via the legacy Step path
	imm  uint64
}

const (
	fSpecial = 1
	fFused   = 2
)

// specialOp marks opcodes the fast loop delegates to the legacy Step
// path: everything that can switch modes, flush the TLB, record a boot
// event, or exit to the VMM. They are rare, and delegating keeps exactly
// one implementation of the tricky architectural transitions.
var specialOp = [isa.NumOps]bool{
	isa.HLT: true, isa.OUT: true, isa.IN: true, isa.LGDT: true,
	isa.MOVCR: true, isa.RDCR: true, isa.LJMP: true,
}

// Superinstruction opcodes, in the isa.Op space above isa.NumOps. The
// decode pass fuses the hottest adjacent pairs the fib/AES/JS corpora
// execute (see the opcode-pair histogram in `virtine-bench -exp interp`)
// into a single cache entry: one dispatch retires both instructions with
// their combined cycle cost. Only pairs whose first instruction cannot
// observe the clock mid-pair are fused, and STORE never is (it carries
// the Mode32 ident-map latch).
const (
	fopCmpJcc   isa.Op = isa.NumOps + iota // cmp a, b ; jcc t
	fopCmpiJcc                             // cmpi a, imm ; jcc t  (imm32|t32 packed)
	fopDecJnz                              // dec a ; jnz t
	fopIncJnz                              // inc a ; jnz t
	fopPushCall                            // push a ; call t
	fopSubiCall                            // subi a, imm ; call t (packed)
	fopPushSubi                            // push a ; subi b, imm
	fopPopPush                             // pop a ; push b
	fopAddRet                              // add a, b ; ret
	fopMoviCall                            // movi a, imm ; call t (packed)
)

func isJcc(op isa.Op) bool { return op >= isa.JZ && op <= isa.JAE }

// packable32 reports whether a decode-time immediate survives the round
// trip through 32 bits (it was sign-extended to 64 at decode).
func packable32(v uint64) bool { return uint64(int64(int32(uint32(v)))) == v }

// packTarget32 reports whether a branch/call target can live in 32 bits.
// In 16/32-bit modes the executing mask re-truncates, so the low half is
// always enough; in long mode the target must genuinely fit.
func packTarget32(v uint64, m isa.Mode) bool { return m != isa.Mode64 || v>>32 == 0 }

// fusePair builds the superinstruction entry replacing a when b directly
// follows it, or reports that the pair does not fuse. Specials (and
// already-fused entries) never participate; pairs with packed immediates
// fuse only when both values fit their 32-bit halves.
func fusePair(a, b centry) (centry, bool) {
	if a.flag != 0 || b.flag != 0 {
		return centry{}, false
	}
	f := centry{
		mode: a.mode, n: a.n + b.n, cost: a.cost + b.cost, flag: fFused,
	}
	switch {
	case a.op == isa.CMP && isJcc(b.op):
		f.op, f.dst, f.src, f.sub, f.imm = fopCmpJcc, a.dst, a.src, byte(b.op), b.imm
	case a.op == isa.CMPI && isJcc(b.op):
		if !packable32(a.imm) || !packTarget32(b.imm, a.mode) {
			return centry{}, false
		}
		f.op, f.dst, f.sub = fopCmpiJcc, a.dst, byte(b.op)
		f.imm = uint64(uint32(a.imm)) | uint64(uint32(b.imm))<<32
	case a.op == isa.DEC && b.op == isa.JNZ:
		f.op, f.dst, f.imm = fopDecJnz, a.dst, b.imm
	case a.op == isa.INC && b.op == isa.JNZ:
		f.op, f.dst, f.imm = fopIncJnz, a.dst, b.imm
	case a.op == isa.PUSH && b.op == isa.CALL:
		f.op, f.dst, f.sub, f.imm = fopPushCall, a.dst, a.n, b.imm
	case a.op == isa.SUBI && b.op == isa.CALL:
		if !packable32(a.imm) || !packTarget32(b.imm, a.mode) {
			return centry{}, false
		}
		f.op, f.dst, f.sub = fopSubiCall, a.dst, a.n
		f.imm = uint64(uint32(a.imm)) | uint64(uint32(b.imm))<<32
	case a.op == isa.PUSH && b.op == isa.SUBI:
		f.op, f.dst, f.src, f.imm = fopPushSubi, a.dst, b.dst, b.imm
	case a.op == isa.POP && b.op == isa.PUSH:
		f.op, f.dst, f.src, f.sub = fopPopPush, a.dst, b.dst, a.n
	case a.op == isa.ADD && b.op == isa.RET:
		f.op, f.dst, f.src, f.sub = fopAddRet, a.dst, a.src, a.n
	case a.op == isa.MOVI && b.op == isa.CALL:
		if !packable32(a.imm) || !packTarget32(b.imm, a.mode) {
			return centry{}, false
		}
		f.op, f.dst, f.sub = fopMoviCall, a.dst, a.n
		f.imm = uint64(uint32(a.imm)) | uint64(uint32(b.imm))<<32
	default:
		return centry{}, false
	}
	return f, true
}

// baseCost returns the fixed cycle cost charged before/while executing op
// that does not depend on run-time state (InstrBase, plus the multi-cycle
// ALU charges). Memory-access costs stay in loadWord/storeWord because
// their fault paths must charge exactly as the legacy interpreter does.
func baseCost(op isa.Op) uint8 {
	c := uint8(cycles.InstrBase)
	switch op {
	case isa.MUL:
		c += cycles.InstrMul
	case isa.DIV, isa.MOD:
		c += cycles.InstrDiv
	}
	return c
}

func centryFrom(in isa.Inst, m isa.Mode) centry {
	e := centry{
		op: in.Op, dst: in.Dst, src: in.Src, sub: in.Sub,
		mode: m, n: uint8(in.Len), cost: baseCost(in.Op), imm: in.Imm,
	}
	if specialOp[in.Op] {
		e.flag = fSpecial
	}
	return e
}

// codePage holds the decoded entries for one 4 KiB physical page, indexed
// by offset within the page. Entries exist only at instruction starts
// that have actually been reached.
type codePage struct {
	// shared marks the page immutable: it is referenced by a CodeCache
	// (a Wasp per-image registry entry) and possibly by other CPUs. A
	// CPU must clone a shared page before writing new entries into it.
	shared bool
	// src is the page content the entries were decoded from, recorded
	// when the page is frozen; AdoptCode compares it against the target
	// memory so a stale decode can never be installed.
	src  []byte
	ents [codePageSize]centry

	// blocks maps (offset | mode<<12) to the compiled closure block
	// starting there (jit.go). The map value is immutable; publication
	// is copy-on-write under mu so concurrent CPUs sharing a frozen page
	// read it with one atomic load. Blocks ride along with ShareCode /
	// AdoptCode, so every tenant clone of an image executes one compiled
	// form; validity is anchored to the page pointer itself — any write
	// into the page drops the page, blocks and all.
	mu     sync.Mutex
	blocks atomic.Pointer[map[uint32]*cblock]
}

// addBlock publishes a compiled block on the page. The current map is
// never mutated: readers hold no lock.
func (pg *codePage) addBlock(key uint32, blk *cblock) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	old := pg.blocks.Load()
	var nm map[uint32]*cblock
	if old == nil {
		nm = make(map[uint32]*cblock, 4)
	} else {
		nm = make(map[uint32]*cblock, len(*old)+1)
		for k, v := range *old {
			nm[k] = v
		}
	}
	nm[key] = blk
	pg.blocks.Store(&nm)
}

// ensureCode sizes the per-page table on first use.
func (c *CPU) ensureCode() {
	if c.code == nil {
		c.code = make([]*codePage, (len(c.Mem)+codePageSize-1)/codePageSize)
	}
}

// codePageFor returns a writable page for the given page index,
// allocating or cloning (copy-on-write for shared pages) as needed.
// Either way the CPU now holds decode state its last ShareCode did not
// publish, so the new-pages flag is raised.
func (c *CPU) codePageFor(page uint64) *codePage {
	pg := c.code[page]
	if pg == nil {
		pg = &codePage{}
		c.code[page] = pg
	} else if pg.shared {
		cl := &codePage{ents: pg.ents}
		// Compiled blocks stay valid across the clone: cloning happens
		// only to write entries for offsets/modes the shared page lacks,
		// never because the underlying bytes changed (a byte change
		// drops the page instead).
		cl.blocks.Store(pg.blocks.Load())
		c.code[page] = cl
		pg = cl
	}
	c.codeNew = true
	return pg
}

// CodeNew reports whether the CPU has decoded into pages that no
// ShareCode call has published yet. Wasp uses it to skip the per-run
// freeze/merge entirely on the warm path, where every page was adopted
// from the registry and nothing new was decoded.
func (c *CPU) CodeNew() bool { return c.codeNew }

// InvalidateCode drops cached decodes overlapping [addr, addr+n) of
// guest-physical memory. It is called by the CPU's own store paths and by
// the VMM's dirty-page tracker (host writes into guest memory). Dropping
// is a pointer store; shared pages are simply unreferenced, never mutated.
func (c *CPU) InvalidateCode(addr uint64, n int) {
	if n <= 0 || len(c.code) == 0 || addr >= uint64(len(c.Mem)) {
		return
	}
	first := addr / codePageSize
	last := (addr + uint64(n) - 1) / codePageSize
	for p := first; p <= last && p < uint64(len(c.code)); p++ {
		if c.code[p] != nil {
			c.code[p] = nil
			c.codeClobbered = true
		}
	}
}

// invalidateCodeOne is the single-page fast path for mode-width stores,
// which never cross a page boundary check worth a loop.
func (c *CPU) invalidateCodeOne(addr uint64, n int) {
	if len(c.code) == 0 {
		return
	}
	first := addr / codePageSize
	if first < uint64(len(c.code)) && c.code[first] != nil {
		c.code[first] = nil
		c.codeClobbered = true
	}
	if last := (addr + uint64(n) - 1) / codePageSize; last != first && last < uint64(len(c.code)) && c.code[last] != nil {
		c.code[last] = nil
		c.codeClobbered = true
	}
}

// predecode decodes forward from physical address phys, filling the
// page's entries until the page ends, an already-decoded entry is
// reached, or the bytes stop decoding — one decode pass per page, not one
// per retired instruction. It returns the entry for phys. A decode error
// at phys itself is returned (later errors just stop the fill — those
// offsets may be data that is never executed). An instruction spanning
// the page boundary is returned but not cached: invalidation of the
// second page could not find it.
func (c *CPU) predecode(phys uint64) (centry, error) {
	if phys >= uint64(len(c.Mem)) {
		// Fetch beyond physical memory: produce the decoder's error, as
		// the legacy path does (no page exists to cache into).
		_, err := isa.Decode(c.Mem, phys, c.Mode)
		return centry{}, err
	}
	c.ensureCode()
	mode := c.Mode
	page := phys / codePageSize
	pageEnd := (page + 1) * codePageSize
	var pg *codePage // materialized just before the first entry write, so
	// an uncacheable (page-spanning) instruction clones no shared page
	// and leaves the new-pages flag alone
	var ret centry
	var prevSlot *centry // previous slot in this pass, for pair fusion
	var prevOrig centry  // its original (unfused) entry
	first := true
	for p := phys; p < pageEnd; {
		in, err := isa.Decode(c.Mem, p, mode)
		if err != nil {
			if first {
				return centry{}, err
			}
			break
		}
		e := centryFrom(in, mode)
		if p+uint64(in.Len) > pageEnd {
			if first {
				return e, nil // executable, not cacheable
			}
			break
		}
		if pg == nil {
			pg = c.codePageFor(page)
		}
		slot := &pg.ents[p-page*codePageSize]
		if !first && slot.n != 0 && slot.mode == mode {
			break // rejoined an already-decoded run
		}
		*slot = e
		// Superinstruction pass: rewrite the previous entry into a fused
		// pair head. The current entry keeps its own slot, so jumps into
		// the pair's second half still hit a plain decode.
		if prevSlot != nil {
			if f, ok := fusePair(prevOrig, e); ok {
				*prevSlot = f
				c.Stats.Fused++
			}
		}
		prevSlot, prevOrig = slot, e
		if first {
			ret = e
			first = false
		}
		p += uint64(in.Len)
	}
	return ret, nil
}

// CodeCache is an immutable set of predecoded pages detached from a CPU,
// held by Wasp's per-image registry and by snapshots so later runs of the
// same image skip decoding entirely.
type CodeCache struct {
	pages []*codePage
}

// Empty reports whether the cache holds no pages.
func (cc CodeCache) Empty() bool { return len(cc.pages) == 0 }

// Pages reports the number of frozen pages (telemetry/tests).
func (cc CodeCache) Pages() int {
	n := 0
	for _, pg := range cc.pages {
		if pg != nil {
			n++
		}
	}
	return n
}

// Merge combines cc with other, returning the result. A page missing
// from cc is filled; an existing page is replaced only when the newcomer
// was decoded from the *same* source bytes and holds strictly more
// entries (an input-dependent jump reached code the first freeze never
// executed) — without the upgrade, shells adopting the sparse version
// would clone, re-decode, and re-freeze that page on every run. Pages
// frozen from different bytes (self-modified code) never displace the
// registered version: the registered one matches the image's canonical
// load content, which is what the next adopt verifies against. The
// receiver's page slice is never mutated — readers may be iterating it
// without a lock (AdoptCode runs outside the registry mutex), so a
// combined result is built on a fresh slice.
func (cc CodeCache) Merge(other CodeCache) CodeCache {
	if cc.Empty() {
		return other
	}
	better := func(cur, nw *codePage) bool {
		if nw == nil {
			return false
		}
		if cur == nil {
			return true
		}
		return cur != nw && bytes.Equal(cur.src, nw.src) &&
			nw.popCount() > cur.popCount()
	}
	changed := false
	for i, pg := range other.pages {
		if i < len(cc.pages) && better(cc.pages[i], pg) {
			changed = true
			break
		}
	}
	if !changed {
		return cc
	}
	pages := append([]*codePage(nil), cc.pages...)
	for i, pg := range other.pages {
		if i < len(pages) && better(pages[i], pg) {
			pages[i] = pg
		}
	}
	return CodeCache{pages: pages}
}

// popCount reports how many decoded entries the page holds.
func (pg *codePage) popCount() int {
	n := 0
	for i := range pg.ents {
		if pg.ents[i].n != 0 {
			n++
		}
	}
	return n
}

// ShareCode freezes the CPU's current decoded pages and returns them as a
// CodeCache. Frozen pages record the bytes they were decoded from and are
// never mutated again — this CPU clones on its next write into one. The
// caller is responsible for publishing the result with proper
// synchronization (Wasp's registries do this under their locks).
func (c *CPU) ShareCode() CodeCache {
	if len(c.code) == 0 {
		return CodeCache{}
	}
	pages := make([]*codePage, len(c.code))
	any := false
	for i, pg := range c.code {
		if pg == nil {
			continue
		}
		if !pg.shared {
			lo := i * codePageSize
			hi := lo + codePageSize
			if hi > len(c.Mem) {
				hi = len(c.Mem)
			}
			pg.src = append([]byte(nil), c.Mem[lo:hi]...)
			pg.shared = true
		}
		pages[i] = pg
		any = true
	}
	c.codeNew = false
	if !any {
		return CodeCache{}
	}
	return CodeCache{pages: pages}
}

// AdoptCode installs frozen pages into this CPU where it has none of its
// own, skipping any page whose recorded source bytes no longer match the
// CPU's memory — a stale decode is impossible by construction, whatever
// path populated the memory (image load, snapshot restore, COW reset).
func (c *CPU) AdoptCode(cc CodeCache) {
	if cc.Empty() {
		return
	}
	c.ensureCode()
	n := len(cc.pages)
	if len(c.code) < n {
		n = len(c.code)
	}
	for i := 0; i < n; i++ {
		pg := cc.pages[i]
		if pg == nil || c.code[i] != nil {
			continue
		}
		lo := i * codePageSize
		if lo+len(pg.src) > len(c.Mem) {
			continue
		}
		if !bytes.Equal(pg.src, c.Mem[lo:lo+len(pg.src)]) {
			continue
		}
		c.code[i] = pg
	}
}

// CodePages reports how many pages currently hold decoded entries
// (tests and telemetry).
func (c *CPU) CodePages() int {
	n := 0
	for _, pg := range c.code {
		if pg != nil {
			n++
		}
	}
	return n
}
