// Package cpu implements the guest CPU emulator for the VX instruction
// set. One CPU executes one virtine's code against that virtine's private
// guest-physical memory, advancing a virtual cycle clock with calibrated
// per-operation costs. The CPU is architecturally faithful where the
// paper's boot-cost analysis (§4.2, Table 1) depends on architecture:
//
//   - It powers on in 16-bit real mode at the image entry point.
//   - Writing CR0.PE transitions to protected mode (3217-cycle charge).
//   - Enabling CR0.PG with EFER.LME set activates long mode.
//   - LGDT really reads a 10-byte descriptor from guest memory; the first
//     (cold) load carries Table 1's 4118-cycle cost.
//   - LJMP completes mode switches and is validated against the control
//     registers, so a guest cannot jump to 64-bit code without paging on.
//   - In long mode the MMU walks real 4-level page tables that the guest
//     built in its own memory (2 MB large pages), with a TLB in front.
//   - OUT to a port causes a VM exit — the hypercall trap Wasp interposes
//     on (§5.1).
//
// The CPU also records event timestamps (mode transitions, GDT loads,
// first long-mode instruction, CR3 load) so the Table 1 boot breakdown is
// measured, not asserted.
package cpu

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/isa"
)

// Event identifies a boot milestone the CPU timestamps.
type Event uint8

const (
	EvLgdt Event = iota
	EvProtected
	EvLongActive
	EvLjmp32
	EvLjmp64
	EvFirstInstr64
	EvCR3Load
	EvIdentMapStart // first store after entering protected mode
	NumEvents
)

func (e Event) String() string {
	switch e {
	case EvLgdt:
		return "lgdt"
	case EvProtected:
		return "protected-transition"
	case EvLongActive:
		return "long-transition"
	case EvLjmp32:
		return "ljmp32"
	case EvLjmp64:
		return "ljmp64"
	case EvFirstInstr64:
		return "first-instr64"
	case EvCR3Load:
		return "cr3-load"
	case EvIdentMapStart:
		return "ident-map-start"
	}
	return "ev?"
}

// ExitReason explains why control returned to the VMM.
type ExitReason uint8

const (
	ExitNone  ExitReason = iota
	ExitHalt             // HLT retired
	ExitIO               // OUT/IN port access (hypercall)
	ExitFault            // architectural fault (bad fetch, page fault, ...)
)

func (r ExitReason) String() string {
	switch r {
	case ExitNone:
		return "none"
	case ExitHalt:
		return "halt"
	case ExitIO:
		return "io"
	case ExitFault:
		return "fault"
	}
	return "exit?"
}

// Exit describes one VM exit.
type Exit struct {
	Reason ExitReason
	Port   uint8   // for ExitIO
	In     bool    // true when the guest is reading (IN)
	Reg    isa.Reg // register carrying the OUT value / receiving IN
	Err    error   // for ExitFault
}

// Flags holds the condition codes.
type Flags struct {
	ZF, SF, CF, OF bool
}

// TierEvent is one execution-tier transition: a guest block entering the
// compiled-closure tier (compile) or falling back out of it (deopt).
// Recorded only under TierTrace; Cycle is the virtual time of the
// transition and PC the guest IP of the block involved.
type TierEvent struct {
	Deopt bool
	PC    uint64
	Cycle uint64
}

// tierLogCap bounds the per-run tier log; a steady-state guest compiles
// a handful of traces, so the cap only matters for pathological SMC
// loops, where dropping the tail is preferable to unbounded growth.
const tierLogCap = 256

// tier appends a transition to the tier log when tracing is on. Callers
// pass the guest IP of the affected block; the timestamp comes from the
// CPU's own clock.
func (c *CPU) tier(deopt bool, pc uint64) {
	if !c.TierTrace || len(c.TierLog) >= tierLogCap {
		return
	}
	var at uint64
	if c.Clock != nil {
		at = c.Clock.Now()
	}
	c.TierLog = append(c.TierLog, TierEvent{Deopt: deopt, PC: pc, Cycle: at})
}

// CPU is one virtual processor.
type CPU struct {
	Regs  [isa.NumRegs]uint64
	IP    uint64
	Flags Flags

	CR0, CR3, CR4, EFER uint64
	GDTBase             uint64
	GDTLimit            uint16

	Mode isa.Mode
	Mem  []byte // guest-physical memory, owned by the VM context

	Clock *cycles.Clock

	// Events holds the cycle timestamp of each boot milestone; zero
	// means "not reached" (cycle 0 cannot coincide with any milestone
	// because decoding the first instruction costs at least one cycle).
	Events [NumEvents]uint64

	// Retired counts instructions retired.
	Retired uint64

	Halted bool

	// NoTLB disables the translation cache (ablation: every long-mode
	// access pays a full page walk).
	NoTLB bool

	// Legacy selects the original decode-every-instruction interpreter
	// for Run. The differential determinism tests compare it against the
	// default cached block-execution engine; virtual-cycle results must
	// be bit-identical.
	Legacy bool

	// NoJIT disables the compiled-closure block tier (jit.go): the
	// engine still executes fused predecoded entries one dispatch at a
	// time. Ablation/bench knob; virtual cycles are identical either way.
	NoJIT bool

	// OnStore, when set, observes every guest store (physical address,
	// length) — the VMM's dirty-page tracker for copy-on-write resets.
	// The cached engine batches stores into a span log and reports them
	// at observation points (run exit, fault, delegated special); the
	// legacy engine reports every store immediately.
	OnStore func(paddr uint64, n int)

	// Stats counts decode-cache fusion and compiled-block activity.
	// Reset zeroes it alongside Retired; Wasp harvests per-run deltas.
	Stats JITStats

	// TierTrace enables the tier-transition log: when set, each trace
	// compile and deopt appends a TierEvent to TierLog (bounded at
	// tierLogCap; overflow is dropped silently — the counters in Stats
	// stay exact). Batched like the dirty-span log so the guest hot loop
	// never calls out: the embedder (Wasp's RunOn) drains TierLog into
	// its tracer at run end and clears both fields before pooling.
	TierTrace bool
	TierLog   []TierEvent

	// PairProf, when non-nil, accumulates retired opcode-pair
	// frequencies keyed prev<<8|cur. It is wired into the legacy Step
	// engine only: profiling observes the natural instruction stream,
	// before any superinstruction fusion.
	PairProf map[uint16]uint64
	prevOp   uint16 // last retired opcode + 1; 0 = none yet

	tlb        map[uint64]uint64 // 2MB page: vaddr>>21 → physical base
	gdtLoads   int
	pendFirst  bool // next retired instruction is the first in long mode
	sawStore32 bool // EvIdentMapStart latch

	// Decoded-instruction cache (cache.go), one entry per physical page;
	// codeNew marks decode state not yet published by ShareCode.
	code    []*codePage
	codeNew bool

	// codeClobbered is set whenever an invalidation actually unhooks a
	// decoded page. The trace executor's per-store self-modification
	// check tests this hint first: stores to data pages (which have no
	// decode state) never set it, so the precise page-identity check
	// runs only when some decoded page really was hit.
	codeClobbered bool

	// lateFault attribution: a fused pair closure (jit.go) that faults
	// half-way records here which half completed — extra cost to roll
	// back when the unexecuted second half was pre-batched (lateRoll),
	// extra instructions retired when the first half committed (lateRet)
	// and the mid-pair IP the fault belongs to (lateMid). blockStop
	// consumes and clears the record on the fault path only.
	lateSet  bool
	lateRoll uint8
	lateRet  uint8
	lateMid  int32

	// Dirty-span log: guest stores inside the cached engine are
	// coalesced here and reported to OnStore only at observation points,
	// mirroring the pending cycle batch. batchDirty is true only while
	// the cached engine runs.
	spans      [64]dirtySpan
	nspans     int
	batchDirty bool

	// blockEntry is the virtual IP of the compiled trace currently
	// executing; CALL/RET closures rebuild absolute return addresses
	// from it plus a compile-time relative offset.
	blockEntry uint64

	// Direct-mapped front cache for compiled-block lookup (jit.go): one
	// probe instead of an atomic load plus map lookup per block entry.
	// Entries self-invalidate: a hit requires the recorded page to still
	// be installed at the recorded index.
	bcache [bcacheSize]bcent

	// Hot-path translation caches in front of the tlb map. Both are
	// strict subsets of state the architectural paths already hold, so
	// they change no cycle accounting: the fetch window caches the
	// current code page's linear mapping across sequential instructions
	// (re-established on page cross, mode switch, CR3 write, or TLB
	// flush), and the one-entry data TLB short-circuits the map lookup
	// for the common same-page data access.
	fetchOK              bool
	fetchVBase, fetchVEnd uint64
	fetchPBase           uint64
	dtlbOK               bool
	dtlbPage, dtlbBase   uint64
}

// New returns a powered-on CPU in real mode, with IP at entry, owning mem,
// advancing clk.
func New(mem []byte, clk *cycles.Clock, entry uint64) *CPU {
	c := &CPU{
		Mem:   mem,
		Clock: clk,
		IP:    entry,
		Mode:  isa.Mode16,
		tlb:   make(map[uint64]uint64),
	}
	c.Regs[isa.RSP] = uint64(len(mem)) // stack grows down from the top
	return c
}

// Reset returns the CPU to power-on state at entry without touching
// memory. Used when replaying a snapshot, whose register file is restored
// separately.
func (c *CPU) Reset(entry uint64) {
	*c = CPU{
		Mem:       c.Mem,
		Clock:     c.Clock,
		OnStore:   c.OnStore,
		Legacy:    c.Legacy,
		NoJIT:     c.NoJIT,
		PairProf:  c.PairProf,
		TierTrace: c.TierTrace,
		TierLog:   c.TierLog,
		IP:        entry,
		Mode:      isa.Mode16,
		tlb:       make(map[uint64]uint64),
	}
	c.Regs[isa.RSP] = uint64(len(c.Mem))
}

// State snapshots the architectural register state (not memory).
type State struct {
	Regs                [isa.NumRegs]uint64
	IP                  uint64
	Flags               Flags
	CR0, CR3, CR4, EFER uint64
	GDTBase             uint64
	GDTLimit            uint16
	Mode                isa.Mode
	GDTLoads            int
}

// Save captures the architectural state for snapshotting (§5.2).
func (c *CPU) Save() State {
	return State{
		Regs: c.Regs, IP: c.IP, Flags: c.Flags,
		CR0: c.CR0, CR3: c.CR3, CR4: c.CR4, EFER: c.EFER,
		GDTBase: c.GDTBase, GDTLimit: c.GDTLimit, Mode: c.Mode,
		GDTLoads: c.gdtLoads,
	}
}

// Restore reinstates a saved architectural state. The TLB is flushed, as
// on a real mode/CR3 change. The decoded-instruction cache is kept: its
// entries are invalidated at write time, so whatever pages survive still
// match memory (parked COW shells rely on this to skip re-decoding).
func (c *CPU) Restore(s State) {
	c.Regs, c.IP, c.Flags = s.Regs, s.IP, s.Flags
	c.CR0, c.CR3, c.CR4, c.EFER = s.CR0, s.CR3, s.CR4, s.EFER
	c.GDTBase, c.GDTLimit, c.Mode = s.GDTBase, s.GDTLimit, s.Mode
	c.gdtLoads = s.GDTLoads
	c.Halted = false
	c.FlushTLB()
}

// JITStats counts decode-cache and compiled-block activity. Fused is the
// number of superinstruction entries created at predecode; BlocksCompiled,
// BlockHits and BlockDeopts track the compiled-closure tier.
type JITStats struct {
	Fused          uint64
	BlocksCompiled uint64
	BlockHits      uint64
	BlockDeopts    uint64
}

// dirtySpan is one coalesced run of stored guest-physical bytes awaiting
// the OnStore hook.
type dirtySpan struct {
	addr uint64
	n    int
}

// profPair records one retired instruction into the opcode-pair
// histogram. Callers guard on PairProf != nil.
func (c *CPU) profPair(op isa.Op) {
	if c.prevOp != 0 {
		c.PairProf[uint16(c.prevOp-1)<<8|uint16(op)]++
	}
	c.prevOp = uint16(op) + 1
}

func (c *CPU) fault(format string, args ...any) *Exit {
	return &Exit{Reason: ExitFault, Err: fmt.Errorf("cpu: "+format, args...)}
}

// mark records an event timestamp once.
func (c *CPU) mark(e Event) {
	if c.Events[e] == 0 {
		c.Events[e] = c.Clock.Now()
	}
}

// EventDelta returns the cycles between two recorded events, or 0 if
// either is missing.
func (c *CPU) EventDelta(from, to Event) uint64 {
	a, b := c.Events[from], c.Events[to]
	if a == 0 || b == 0 || b < a {
		return 0
	}
	return b - a
}
