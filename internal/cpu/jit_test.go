package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cycles"
	"repro/internal/isa"
)

// fibSrc is the recursive-fib microbenchmark: call-heavy, so it
// exercises followed calls, speculated returns and the fused stack
// pairs of the trace compiler.
const fibSrc = `
.bits 64
	movi rdi, 15
	call vx_fib
	hlt
vx_fib:
	cmp rdi, 2
	jge vx_fib_rec
	mov rax, rdi
	ret
vx_fib_rec:
	push rdi
	sub rdi, 1
	call vx_fib
	pop rdi
	push rax
	sub rdi, 2
	call vx_fib
	pop rbx
	add rax, rbx
	ret
`

// execSrc assembles src into a fresh long-mode CPU and runs it to the
// first exit under the selected engine.
func execSrc(t testing.TB, src string, legacy, noJIT bool) (*CPU, *Exit, uint64) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 1<<20)
	copy(mem[p.Origin:], p.Code)
	clk := cycles.NewClock()
	c := New(mem, clk, p.Entry)
	c.Legacy, c.NoJIT = legacy, noJIT
	c.SetupLongMode()
	ex := c.Run(100_000_000)
	return c, ex, clk.Now()
}

// The three engines — legacy decode-every-instruction, predecoded
// (NoJIT) and trace-compiled — must agree bit-for-bit on registers,
// flags, retirement count and virtual cycles.
func TestTraceEngineFibParity(t *testing.T) {
	jit, exJ, cyJ := execSrc(t, fibSrc, false, false)
	fused, exF, cyF := execSrc(t, fibSrc, false, true)
	legacy, exL, cyL := execSrc(t, fibSrc, true, false)
	for _, ex := range []*Exit{exJ, exF, exL} {
		if ex.Reason != ExitHalt {
			t.Fatalf("exit %+v", ex)
		}
	}
	if jit.Regs[isa.RAX] != 610 {
		t.Fatalf("fib(15) = %d, want 610", jit.Regs[isa.RAX])
	}
	if cyJ != cyL || cyF != cyL {
		t.Fatalf("cycles diverge: jit %d, fused %d, legacy %d", cyJ, cyF, cyL)
	}
	if jit.Regs != legacy.Regs || fused.Regs != legacy.Regs {
		t.Fatalf("registers diverge across engines")
	}
	if jit.Retired != legacy.Retired || fused.Retired != legacy.Retired {
		t.Fatalf("retired diverge: jit %d, fused %d, legacy %d",
			jit.Retired, fused.Retired, legacy.Retired)
	}
	if jit.Flags != legacy.Flags {
		t.Fatalf("flags diverge: jit %+v, legacy %+v", jit.Flags, legacy.Flags)
	}
	if jit.Stats.BlocksCompiled == 0 || jit.Stats.BlockHits == 0 {
		t.Fatalf("trace tier never engaged: %+v", jit.Stats)
	}
	if fused.Stats.BlocksCompiled != 0 {
		t.Fatalf("NoJIT compiled traces: %+v", fused.Stats)
	}
}

// A guest store into its own compiled trace must deoptimize: the store
// completes, the trace stops, and the rewritten bytes execute — with
// virtual cycles identical to the legacy engine.
func TestTraceSMCDeoptParity(t *testing.T) {
	// Five iterations: the first predecodes, the second compiles the
	// loop trace, and the patch store then lands inside the running
	// trace's own page.
	src := `
.bits 64
_start:
	movi rcx, 5
loop:
patch:
	movi rbx, 7
	movi rdi, patch
	mov rax, rcx
	store [rdi+2], rax
	add rsi, rbx
	dec rcx
	jnz loop
	hlt
`
	jit, exJ, cyJ := execSrc(t, src, false, false)
	legacy, exL, cyL := execSrc(t, src, true, false)
	if exJ.Reason != ExitHalt || exL.Reason != ExitHalt {
		t.Fatalf("exits: jit %+v legacy %+v", exJ, exL)
	}
	if cyJ != cyL {
		t.Fatalf("cycles diverge: jit %d, legacy %d", cyJ, cyL)
	}
	if jit.Regs != legacy.Regs || jit.Retired != legacy.Retired {
		t.Fatalf("state diverges: jit %v/%d, legacy %v/%d",
			jit.Regs, jit.Retired, legacy.Regs, legacy.Retired)
	}
	if jit.Stats.BlocksCompiled == 0 {
		t.Fatalf("loop trace never compiled: %+v", jit.Stats)
	}
	if jit.Stats.BlockDeopts == 0 {
		t.Fatalf("self-modifying store never deoptimized: %+v", jit.Stats)
	}
}

// A host write (WriteMem) into a compiled page must unhook its traces:
// the next entry re-decodes the patched bytes. The guest OUTs once per
// iteration so the host can patch between resumptions, and the whole
// interleaving must cost exactly the legacy cycles.
func TestTraceHostWritePatchParity(t *testing.T) {
	src := `
.bits 64
_start:
	movi rdi, patch
	out 0x08, rdi
	movi rcx, 4
loop:
patch:
	movi rbx, 5
	add rsi, rbx
	out 0x07, rbx
	dec rcx
	jnz loop
	hlt
`
	exec := func(legacy bool) (*CPU, uint64) {
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		mem := make([]byte, 1<<20)
		copy(mem[p.Origin:], p.Code)
		clk := cycles.NewClock()
		c := New(mem, clk, p.Entry)
		c.Legacy = legacy
		c.SetupLongMode()
		var patchAddr uint64
		patched := false
		for {
			ex := c.Run(1_000_000)
			if ex.Reason == ExitHalt {
				break
			}
			if ex.Reason != ExitIO {
				t.Fatalf("legacy=%v: exit %+v", legacy, ex)
			}
			switch ex.Port {
			case 0x08:
				// The guest reports the patch site's virtual address.
				patchAddr = c.Regs[ex.Reg]
			case 0x07:
				if !patched {
					// Patch the movi immediate from the host side after
					// the first iteration (the trace is compiled by then
					// in the cached engine).
					if err := c.WriteMem(patchAddr+2, []byte{9, 0, 0, 0, 0, 0, 0, 0}); err != nil {
						t.Fatal(err)
					}
					patched = true
				}
			}
		}
		return c, clk.Now()
	}
	jit, cyJ := exec(false)
	legacy, cyL := exec(true)
	if cyJ != cyL {
		t.Fatalf("cycles diverge: jit %d, legacy %d", cyJ, cyL)
	}
	if jit.Regs != legacy.Regs || jit.Retired != legacy.Retired {
		t.Fatalf("state diverges: jit %v/%d, legacy %v/%d",
			jit.Regs, jit.Retired, legacy.Regs, legacy.Retired)
	}
	// 4 iterations: 5 before the patch lands, 9 after → 5+9+9+9.
	if want := uint64(5 + 9 + 9 + 9); jit.Regs[isa.RSI] != want {
		t.Fatalf("rsi = %d, want %d (host patch not observed)", jit.Regs[isa.RSI], want)
	}
}

func BenchmarkJITProbeFib(b *testing.B) {
	src := `
.bits 64
	movi rdi, 21
	call vx_fib
	hlt
vx_fib:
	cmp rdi, 2
	jge vx_fib_rec
	mov rax, rdi
	ret
vx_fib_rec:
	push rdi
	sub rdi, 1
	call vx_fib
	pop rdi
	push rax
	sub rdi, 2
	call vx_fib
	pop rbx
	add rax, rbx
	ret
`
	p, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem := make([]byte, 1<<20)
		copy(mem[p.Origin:], p.Code)
		c := New(mem, cycles.NewClock(), p.Entry)
		c.SetupLongMode()
		c.Run(100_000_000)
		b.ReportMetric(float64(c.Retired), "instr")
	}
}
