package cpu

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/isa"
)

// maskTab and signTab are sized and masked so the compiler can elide
// bounds checks on the hot flag-computation path.
var maskTab = [4]uint64{
	isa.Mode16: 0xFFFF,
	isa.Mode32: 0xFFFF_FFFF,
	isa.Mode64: ^uint64(0),
	3:          ^uint64(0),
}

var signTab = [4]uint64{
	isa.Mode16: 1 << 15,
	isa.Mode32: 1 << 31,
	isa.Mode64: 1 << 63,
	3:          1 << 63,
}

// widthMask returns the value mask for the mode.
func widthMask(m isa.Mode) uint64 { return maskTab[m&3] }

func signBit(m isa.Mode) uint64 { return signTab[m&3] }

// signedAt interprets v as a signed integer at the mode's width.
func signedAt(v uint64, m isa.Mode) int64 {
	shift := uint(64 - m.Width()*8)
	return int64(v<<shift) >> shift
}

func (c *CPU) setArith(res, a, b uint64, sub bool) {
	m := c.Mode
	mask := widthMask(m)
	r := res & mask
	c.Flags.ZF = r == 0
	c.Flags.SF = r&signBit(m) != 0
	if sub {
		c.Flags.CF = (a & mask) < (b & mask)
		c.Flags.OF = (a^b)&(a^res)&signBit(m) != 0
	} else {
		c.Flags.CF = r < (a & mask)
		c.Flags.OF = ^(a^b)&(a^res)&signBit(m) != 0
	}
}

func (c *CPU) setLogic(res uint64) {
	mask := widthMask(c.Mode)
	r := res & mask
	c.Flags.ZF = r == 0
	c.Flags.SF = r&signBit(c.Mode) != 0
	c.Flags.CF = false
	c.Flags.OF = false
}

func (c *CPU) get(r isa.Reg) uint64    { return c.Regs[r] & widthMask(c.Mode) }
func (c *CPU) set(r isa.Reg, v uint64) { c.Regs[r] = v & widthMask(c.Mode) }

// Step executes one instruction. A nil exit means execution continues.
func (c *CPU) Step() *Exit {
	if c.Halted {
		return &Exit{Reason: ExitHalt}
	}
	fetchP, err := c.Translate(c.IP, false)
	if err != nil {
		return c.fault("instruction fetch at %#x: %v", c.IP, err)
	}
	in, derr := isa.Decode(c.Mem, fetchP, c.Mode)
	if derr != nil {
		return &Exit{Reason: ExitFault, Err: derr}
	}
	c.Clock.Advance(cycles.InstrBase)
	if c.pendFirst {
		c.Clock.Advance(cycles.FirstInstr64)
		c.mark(EvFirstInstr64)
		c.pendFirst = false
	}
	next := c.IP + uint64(in.Len)
	w := uint64(c.Mode.Width())
	mask := widthMask(c.Mode)
	// Immediates are sign-extended at decode so displacements work;
	// when an immediate is used as an address it must be re-masked to
	// the mode width (a 16-bit address 0x8000 is not negative).
	addrImm := in.Imm & mask

	switch in.Op {
	case isa.NOP, isa.CLI, isa.STI:
		// CLI/STI cost one cycle; the virtine model takes no interrupts.

	case isa.HLT:
		c.Halted = true
		if c.PairProf != nil {
			c.profPair(in.Op)
		}
		c.Retired++
		c.IP = next
		return &Exit{Reason: ExitHalt}

	case isa.MOVI:
		c.set(in.Dst, in.Imm)
	case isa.MOV:
		c.set(in.Dst, c.get(in.Src))

	case isa.LOAD:
		v, err := c.loadWord((c.get(in.Src)+in.Imm)&mask, c.Mode)
		if err != nil {
			return c.fault("%v", err)
		}
		c.set(in.Dst, v)
	case isa.STORE:
		if c.Mode == isa.Mode32 && !c.sawStore32 {
			c.sawStore32 = true
			c.mark(EvIdentMapStart)
		}
		if err := c.storeWord((c.get(in.Dst)+in.Imm)&mask, c.get(in.Src), c.Mode); err != nil {
			return c.fault("%v", err)
		}
	case isa.LOADB:
		p, err := c.Translate((c.get(in.Src)+in.Imm)&mask, false)
		if err != nil {
			return c.fault("%v", err)
		}
		if p >= uint64(len(c.Mem)) {
			return c.fault("byte load beyond memory at %#x", p)
		}
		c.Clock.Advance(cycles.MemAccess)
		c.set(in.Dst, uint64(c.Mem[p]))
	case isa.STOREB:
		p, err := c.Translate((c.get(in.Dst)+in.Imm)&mask, true)
		if err != nil {
			return c.fault("%v", err)
		}
		if p >= uint64(len(c.Mem)) {
			return c.fault("byte store beyond memory at %#x", p)
		}
		c.Clock.Advance(cycles.MemStore)
		c.Mem[p] = byte(c.get(in.Src))
		c.invalidateCodeOne(p, 1)
		c.noteStore(p, 1)

	case isa.ADD:
		a, b := c.get(in.Dst), c.get(in.Src)
		r := a + b
		c.setArith(r, a, b, false)
		c.set(in.Dst, r)
	case isa.ADDI:
		a := c.get(in.Dst)
		r := a + in.Imm
		c.setArith(r, a, in.Imm, false)
		c.set(in.Dst, r)
	case isa.SUB:
		a, b := c.get(in.Dst), c.get(in.Src)
		r := a - b
		c.setArith(r, a, b, true)
		c.set(in.Dst, r)
	case isa.SUBI:
		a := c.get(in.Dst)
		r := a - in.Imm
		c.setArith(r, a, in.Imm, true)
		c.set(in.Dst, r)
	case isa.MUL:
		c.Clock.Advance(cycles.InstrMul)
		r := c.get(in.Dst) * c.get(in.Src)
		c.setLogic(r)
		c.set(in.Dst, r)
	case isa.DIV, isa.MOD:
		c.Clock.Advance(cycles.InstrDiv)
		a := signedAt(c.get(in.Dst), c.Mode)
		b := signedAt(c.get(in.Src), c.Mode)
		if b == 0 {
			return c.fault("divide by zero at %#x", c.IP)
		}
		var r int64
		if in.Op == isa.DIV {
			r = a / b
		} else {
			r = a % b
		}
		c.setLogic(uint64(r))
		c.set(in.Dst, uint64(r))
	case isa.AND:
		r := c.get(in.Dst) & c.get(in.Src)
		c.setLogic(r)
		c.set(in.Dst, r)
	case isa.ANDI:
		r := c.get(in.Dst) & in.Imm
		c.setLogic(r)
		c.set(in.Dst, r)
	case isa.OR:
		r := c.get(in.Dst) | c.get(in.Src)
		c.setLogic(r)
		c.set(in.Dst, r)
	case isa.ORI:
		r := c.get(in.Dst) | in.Imm
		c.setLogic(r)
		c.set(in.Dst, r)
	case isa.XOR:
		r := c.get(in.Dst) ^ c.get(in.Src)
		c.setLogic(r)
		c.set(in.Dst, r)
	case isa.SHLV:
		r := c.get(in.Dst) << (c.get(in.Src) & 63)
		c.setLogic(r)
		c.set(in.Dst, r)
	case isa.SHRV:
		r := c.get(in.Dst) >> (c.get(in.Src) & 63)
		c.setLogic(r)
		c.set(in.Dst, r)
	case isa.SARV:
		r := uint64(signedAt(c.get(in.Dst), c.Mode) >> (c.get(in.Src) & 63))
		c.setLogic(r)
		c.set(in.Dst, r)
	case isa.SHL:
		r := c.get(in.Dst) << (in.Imm & 63)
		c.setLogic(r)
		c.set(in.Dst, r)
	case isa.SHR:
		r := c.get(in.Dst) >> (in.Imm & 63)
		c.setLogic(r)
		c.set(in.Dst, r)
	case isa.SAR:
		r := uint64(signedAt(c.get(in.Dst), c.Mode) >> (in.Imm & 63))
		c.setLogic(r)
		c.set(in.Dst, r)
	case isa.NEG:
		a := c.get(in.Dst)
		r := -a
		c.setArith(r, 0, a, true)
		c.set(in.Dst, r)
	case isa.NOT:
		c.set(in.Dst, ^c.get(in.Dst))
	case isa.INC:
		a := c.get(in.Dst)
		r := a + 1
		c.setArith(r, a, 1, false)
		c.set(in.Dst, r)
	case isa.DEC:
		a := c.get(in.Dst)
		r := a - 1
		c.setArith(r, a, 1, true)
		c.set(in.Dst, r)

	case isa.CMP:
		a, b := c.get(in.Dst), c.get(in.Src)
		c.setArith(a-b, a, b, true)
	case isa.CMPI:
		a := c.get(in.Dst)
		c.setArith(a-in.Imm, a, in.Imm, true)

	case isa.JMP:
		next = addrImm
	case isa.JZ:
		if c.Flags.ZF {
			next = addrImm
		}
	case isa.JNZ:
		if !c.Flags.ZF {
			next = addrImm
		}
	case isa.JL:
		if c.Flags.SF != c.Flags.OF {
			next = addrImm
		}
	case isa.JG:
		if !c.Flags.ZF && c.Flags.SF == c.Flags.OF {
			next = addrImm
		}
	case isa.JLE:
		if c.Flags.ZF || c.Flags.SF != c.Flags.OF {
			next = addrImm
		}
	case isa.JGE:
		if c.Flags.SF == c.Flags.OF {
			next = addrImm
		}
	case isa.JB:
		if c.Flags.CF {
			next = addrImm
		}
	case isa.JAE:
		if !c.Flags.CF {
			next = addrImm
		}

	case isa.CALL:
		c.Regs[isa.RSP] -= w
		if err := c.storeWord(c.Regs[isa.RSP], next, c.Mode); err != nil {
			return c.fault("call push: %v", err)
		}
		next = addrImm
	case isa.RET:
		v, err := c.loadWord(c.Regs[isa.RSP], c.Mode)
		if err != nil {
			return c.fault("ret pop: %v", err)
		}
		c.Regs[isa.RSP] += w
		next = v & widthMask(c.Mode)
	case isa.PUSH:
		c.Regs[isa.RSP] -= w
		if err := c.storeWord(c.Regs[isa.RSP], c.get(in.Dst), c.Mode); err != nil {
			return c.fault("push: %v", err)
		}
	case isa.POP:
		v, err := c.loadWord(c.Regs[isa.RSP], c.Mode)
		if err != nil {
			return c.fault("pop: %v", err)
		}
		c.Regs[isa.RSP] += w
		c.set(in.Dst, v)

	case isa.OUT:
		if c.PairProf != nil {
			c.profPair(in.Op)
		}
		c.Retired++
		c.IP = next
		return &Exit{Reason: ExitIO, Port: uint8(in.Imm), Reg: in.Dst}
	case isa.IN:
		if c.PairProf != nil {
			c.profPair(in.Op)
		}
		c.Retired++
		c.IP = next
		return &Exit{Reason: ExitIO, Port: uint8(in.Imm), Reg: in.Dst, In: true}

	case isa.LGDT:
		base, err := c.Translate(addrImm, false)
		if err != nil {
			return c.fault("lgdt: %v", err)
		}
		if base+10 > uint64(len(c.Mem)) {
			return c.fault("lgdt descriptor beyond memory at %#x", base)
		}
		c.GDTLimit = uint16(c.Mem[base]) | uint16(c.Mem[base+1])<<8
		var gb uint64
		for i := 0; i < 8; i++ {
			gb |= uint64(c.Mem[base+2+uint64(i)]) << (8 * i)
		}
		c.GDTBase = gb
		c.gdtLoads++
		if c.gdtLoads == 1 {
			c.Clock.Advance(cycles.Lgdt32)
		} else {
			c.Clock.Advance(cycles.Lgdt64)
		}
		c.mark(EvLgdt)

	case isa.MOVCR:
		cr := isa.CR(in.Dst)
		v := c.Regs[in.Src] // control registers are written full-width
		switch cr {
		case isa.CR0:
			old := c.CR0
			c.CR0 = v
			if old&isa.CR0PE == 0 && v&isa.CR0PE != 0 {
				c.Clock.Advance(cycles.ProtectedTransition)
				c.mark(EvProtected)
			}
			if old&isa.CR0PG == 0 && v&isa.CR0PG != 0 {
				if c.EFER&isa.EFERLME != 0 {
					if c.CR4&isa.CR4PAE == 0 {
						return c.fault("enabling long mode without CR4.PAE")
					}
					c.EFER |= isa.EFERLMA
					c.Clock.Advance(cycles.LongTransition)
					c.mark(EvLongActive)
				}
				c.FlushTLB()
			}
		case isa.CR3:
			c.CR3 = v
			c.Clock.Advance(cycles.CR3Load)
			c.FlushTLB()
			c.mark(EvCR3Load)
		case isa.CR4:
			c.CR4 = v
		case isa.EFER:
			c.EFER = v
		default:
			return c.fault("movcr to unknown control register %d", in.Dst)
		}

	case isa.RDCR:
		switch isa.CR(in.Src) {
		case isa.CR0:
			c.Regs[in.Dst] = c.CR0
		case isa.CR3:
			c.Regs[in.Dst] = c.CR3
		case isa.CR4:
			c.Regs[in.Dst] = c.CR4
		case isa.EFER:
			c.Regs[in.Dst] = c.EFER
		default:
			return c.fault("rdcr from unknown control register %d", in.Src)
		}

	case isa.LJMP:
		var target isa.Mode
		switch in.Sub {
		case 2:
			target = isa.Mode16
		case 4:
			target = isa.Mode32
		case 8:
			target = isa.Mode64
		default:
			return c.fault("ljmp with bad width %d", in.Sub)
		}
		switch target {
		case isa.Mode32:
			if c.CR0&isa.CR0PE == 0 {
				return c.fault("ljmp to 32-bit code with CR0.PE clear")
			}
			c.Clock.Advance(cycles.Ljmp32)
			c.mark(EvLjmp32)
		case isa.Mode64:
			if c.EFER&isa.EFERLMA == 0 {
				return c.fault("ljmp to 64-bit code without long mode active")
			}
			c.Clock.Advance(cycles.Ljmp64)
			c.mark(EvLjmp64)
			c.pendFirst = true
		}
		c.Mode = target
		c.FlushTLB()
		next = addrImm

	default:
		return c.fault("unimplemented opcode %v", in.Op)
	}

	if c.PairProf != nil {
		c.profPair(in.Op)
	}
	c.Retired++
	c.IP = next
	return nil
}

// Run executes until a VM exit or until maxSteps instructions have
// retired; exceeding the budget is a fault (runaway guest).
//
// The default engine executes straight-line blocks against the decoded-
// instruction cache (cache.go): the fetch translation is established once
// per code page and reused across sequential instructions, each
// instruction's decode is a cache hit after the first visit to its page,
// and the fixed per-instruction cycle costs are accumulated locally and
// flushed to the clock only at observation points (boot-event marks, VM
// exits, faults, delegated special instructions), so the virtual-cycle
// results are bit-identical to the legacy per-step path — enforced by the
// differential determinism tests. Setting Legacy selects the original
// Step-per-instruction interpreter.
func (c *CPU) Run(maxSteps uint64) *Exit {
	if c.Legacy {
		for i := uint64(0); i < maxSteps; i++ {
			if ex := c.Step(); ex != nil {
				return ex
			}
		}
		return c.fault("instruction budget (%d) exhausted at ip=%#x", maxSteps, c.IP)
	}
	return c.runCached(maxSteps)
}

// setFetchWindow caches the linear code mapping containing ip so
// sequential fetches skip Translate entirely. The window is a pure host-
// side cache of translations the architectural path just performed (and,
// in long mode, of a mapping the tlb map now holds), so it is cycle-
// neutral; it is invalidated by FlushTLB and after every delegated
// special instruction (mode switches, CR3 writes).
func (c *CPU) setFetchWindow(ip, phys uint64) {
	switch c.Mode {
	case isa.Mode16:
		if ip < 1<<20 {
			c.fetchOK, c.fetchVBase, c.fetchVEnd, c.fetchPBase = true, 0, 1<<20, 0
		}
	case isa.Mode32:
		if ip < 1<<32 {
			c.fetchOK, c.fetchVBase, c.fetchVEnd, c.fetchPBase = true, 0, 1<<32, 0
		}
	default:
		if c.NoTLB {
			return // every fetch must pay the full walk, as the ablation demands
		}
		vbase := ip &^ 0x1F_FFFF
		c.fetchOK = true
		c.fetchVBase = vbase
		c.fetchVEnd = vbase + 1<<21
		c.fetchPBase = phys - (ip - vbase)
	}
}

// runCached is the block-execution engine. Rare instructions — everything
// that can switch modes, flush translations, record a boot milestone, or
// exit — are delegated to the legacy Step path after flushing the pending
// cycle batch, so the tricky architectural transitions exist exactly once.
//
// While this engine runs, guest stores are batched into the dirty-span log
// (noteStore) instead of firing the OnStore hook per store; the log is
// flushed on every return path, before any caller can observe the dirty
// bitmap.
func (c *CPU) runCached(maxSteps uint64) *Exit {
	if c.OnStore != nil {
		c.batchDirty = true
		defer func() {
			c.batchDirty = false
			c.flushDirty()
		}()
	}
	return c.runCachedInner(maxSteps)
}

func (c *CPU) runCachedInner(maxSteps uint64) *Exit {
	var pending uint64 // batched fixed costs not yet on the clock
	flush := func() {
		if pending != 0 {
			c.Clock.Advance(pending)
			pending = 0
		}
	}
	// Mode-derived operand width and mask, refreshed only when the mode
	// changes (which only delegated special instructions can do).
	curMode := isa.Mode(0xFF)
	var w, mask uint64
	for steps := uint64(0); steps < maxSteps; {
		if c.Halted {
			flush()
			return &Exit{Reason: ExitHalt}
		}
		if c.NoTLB && c.Mode == isa.Mode64 {
			// TLB-off ablation: every fetch must charge a full walk, and
			// a pre-translate before delegation would double-charge
			// special instructions. Per-step execution is the ablation's
			// measured configuration; run it exactly.
			flush()
			if ex := c.Step(); ex != nil {
				return ex
			}
			steps++
			continue
		}
		if c.pendFirst {
			// First instruction after entering long mode: Step charges
			// FirstInstr64 and records the milestone at the exact legacy
			// clock position.
			flush()
			if ex := c.Step(); ex != nil {
				return ex
			}
			c.fetchOK = false
			steps++
			continue
		}
		ip := c.IP
		var phys uint64
		if c.fetchOK && ip >= c.fetchVBase && ip < c.fetchVEnd {
			phys = c.fetchPBase + (ip - c.fetchVBase)
		} else {
			p, err := c.Translate(ip, false)
			if err != nil {
				flush()
				return c.fault("instruction fetch at %#x: %v", c.IP, err)
			}
			phys = p
			c.setFetchWindow(ip, p)
		}

		var e centry
		page := phys / codePageSize
		pg := c.codeAt(page)
		if pg != nil {
			e = pg.ents[phys-page*codePageSize]
		}
		if e.n == 0 || e.mode != c.Mode {
			// First execution at this offset: predecode and run the
			// returned entry through the single-dispatch path below. A
			// compiled block is only built on a later, cached hit, so
			// code executed once (boot stubs, error paths) never pays
			// compilation.
			var derr error
			e, derr = c.predecode(phys)
			if derr != nil {
				flush()
				return &Exit{Reason: ExitFault, Err: derr}
			}
			pg = nil
		}

		if e.flag&fSpecial != 0 ||
			(e.op == isa.STORE && !c.sawStore32 && c.Mode == isa.Mode32) {
			// Delegate: Step re-translates (a cycle-free hit — the map
			// was populated when the window was established) and
			// re-decodes, then performs the full architectural sequence.
			flush()
			ex := c.Step()
			c.fetchOK = false
			if ex != nil {
				return ex
			}
			steps++
			continue
		}

		if pg != nil && !c.NoJIT {
			if blk := c.blockAt(pg, page, uint32(phys-page*codePageSize), ip); blk != nil &&
				uint64(blk.nret) <= maxSteps-steps {
				// execChain runs the trace and keeps chaining into
				// cached successors; it returns only when the dispatch
				// loop must re-examine state from scratch.
				nr, ex := c.execChain(blk, ip, page, pg, &pending, maxSteps-steps)
				steps += nr
				if ex != nil {
					flush()
					return ex
				}
				continue
			}
		}

		if e.flag&fFused != 0 {
			if maxSteps-steps < 2 {
				// Not enough budget for both halves: the legacy path
				// decodes the raw bytes and executes just the first
				// instruction of the pair, keeping the budget fault on
				// exactly the same instruction as the legacy engine.
				flush()
				ex := c.Step()
				c.fetchOK = false
				if ex != nil {
					return ex
				}
				steps++
				continue
			}
			if c.Mode != curMode {
				curMode = c.Mode
				w = uint64(curMode.Width())
				mask = widthMask(curMode)
			}
			if ex := c.execFused(e, ip, w, mask, &pending); ex != nil {
				flush()
				return ex
			}
			steps += 2
			continue
		}

		pending += uint64(e.cost)
		next := ip + uint64(e.n)
		if c.Mode != curMode {
			curMode = c.Mode
			w = uint64(curMode.Width())
			mask = widthMask(curMode)
		}
		addrImm := e.imm & mask

		switch e.op {
		case isa.NOP, isa.CLI, isa.STI:

		case isa.MOVI:
			c.set(e.dst, e.imm)
		case isa.MOV:
			c.set(e.dst, c.get(e.src))

		case isa.LOAD:
			v, err := c.loadWord((c.get(e.src)+e.imm)&mask, c.Mode)
			if err != nil {
				flush()
				return c.fault("%v", err)
			}
			c.set(e.dst, v)
		case isa.STORE:
			if err := c.storeWord((c.get(e.dst)+e.imm)&mask, c.get(e.src), c.Mode); err != nil {
				flush()
				return c.fault("%v", err)
			}
		case isa.LOADB:
			p, err := c.Translate((c.get(e.src)+e.imm)&mask, false)
			if err != nil {
				flush()
				return c.fault("%v", err)
			}
			if p >= uint64(len(c.Mem)) {
				flush()
				return c.fault("byte load beyond memory at %#x", p)
			}
			c.Clock.Advance(cycles.MemAccess)
			c.set(e.dst, uint64(c.Mem[p]))
		case isa.STOREB:
			p, err := c.Translate((c.get(e.dst)+e.imm)&mask, true)
			if err != nil {
				flush()
				return c.fault("%v", err)
			}
			if p >= uint64(len(c.Mem)) {
				flush()
				return c.fault("byte store beyond memory at %#x", p)
			}
			c.Clock.Advance(cycles.MemStore)
			c.Mem[p] = byte(c.get(e.src))
			c.invalidateCodeOne(p, 1)
			c.noteStore(p, 1)

		case isa.ADD:
			a, b := c.get(e.dst), c.get(e.src)
			r := a + b
			c.setArith(r, a, b, false)
			c.set(e.dst, r)
		case isa.ADDI:
			a := c.get(e.dst)
			r := a + e.imm
			c.setArith(r, a, e.imm, false)
			c.set(e.dst, r)
		case isa.SUB:
			a, b := c.get(e.dst), c.get(e.src)
			r := a - b
			c.setArith(r, a, b, true)
			c.set(e.dst, r)
		case isa.SUBI:
			a := c.get(e.dst)
			r := a - e.imm
			c.setArith(r, a, e.imm, true)
			c.set(e.dst, r)
		case isa.MUL:
			r := c.get(e.dst) * c.get(e.src)
			c.setLogic(r)
			c.set(e.dst, r)
		case isa.DIV, isa.MOD:
			a := signedAt(c.get(e.dst), c.Mode)
			b := signedAt(c.get(e.src), c.Mode)
			if b == 0 {
				flush()
				return c.fault("divide by zero at %#x", c.IP)
			}
			var r int64
			if e.op == isa.DIV {
				r = a / b
			} else {
				r = a % b
			}
			c.setLogic(uint64(r))
			c.set(e.dst, uint64(r))
		case isa.AND:
			r := c.get(e.dst) & c.get(e.src)
			c.setLogic(r)
			c.set(e.dst, r)
		case isa.ANDI:
			r := c.get(e.dst) & e.imm
			c.setLogic(r)
			c.set(e.dst, r)
		case isa.OR:
			r := c.get(e.dst) | c.get(e.src)
			c.setLogic(r)
			c.set(e.dst, r)
		case isa.ORI:
			r := c.get(e.dst) | e.imm
			c.setLogic(r)
			c.set(e.dst, r)
		case isa.XOR:
			r := c.get(e.dst) ^ c.get(e.src)
			c.setLogic(r)
			c.set(e.dst, r)
		case isa.SHLV:
			r := c.get(e.dst) << (c.get(e.src) & 63)
			c.setLogic(r)
			c.set(e.dst, r)
		case isa.SHRV:
			r := c.get(e.dst) >> (c.get(e.src) & 63)
			c.setLogic(r)
			c.set(e.dst, r)
		case isa.SARV:
			r := uint64(signedAt(c.get(e.dst), c.Mode) >> (c.get(e.src) & 63))
			c.setLogic(r)
			c.set(e.dst, r)
		case isa.SHL:
			r := c.get(e.dst) << (e.imm & 63)
			c.setLogic(r)
			c.set(e.dst, r)
		case isa.SHR:
			r := c.get(e.dst) >> (e.imm & 63)
			c.setLogic(r)
			c.set(e.dst, r)
		case isa.SAR:
			r := uint64(signedAt(c.get(e.dst), c.Mode) >> (e.imm & 63))
			c.setLogic(r)
			c.set(e.dst, r)
		case isa.NEG:
			a := c.get(e.dst)
			r := -a
			c.setArith(r, 0, a, true)
			c.set(e.dst, r)
		case isa.NOT:
			c.set(e.dst, ^c.get(e.dst))
		case isa.INC:
			a := c.get(e.dst)
			r := a + 1
			c.setArith(r, a, 1, false)
			c.set(e.dst, r)
		case isa.DEC:
			a := c.get(e.dst)
			r := a - 1
			c.setArith(r, a, 1, true)
			c.set(e.dst, r)

		case isa.CMP:
			a, b := c.get(e.dst), c.get(e.src)
			c.setArith(a-b, a, b, true)
		case isa.CMPI:
			a := c.get(e.dst)
			c.setArith(a-e.imm, a, e.imm, true)

		case isa.JMP:
			next = addrImm
		case isa.JZ:
			if c.Flags.ZF {
				next = addrImm
			}
		case isa.JNZ:
			if !c.Flags.ZF {
				next = addrImm
			}
		case isa.JL:
			if c.Flags.SF != c.Flags.OF {
				next = addrImm
			}
		case isa.JG:
			if !c.Flags.ZF && c.Flags.SF == c.Flags.OF {
				next = addrImm
			}
		case isa.JLE:
			if c.Flags.ZF || c.Flags.SF != c.Flags.OF {
				next = addrImm
			}
		case isa.JGE:
			if c.Flags.SF == c.Flags.OF {
				next = addrImm
			}
		case isa.JB:
			if c.Flags.CF {
				next = addrImm
			}
		case isa.JAE:
			if !c.Flags.CF {
				next = addrImm
			}

		case isa.CALL:
			c.Regs[isa.RSP] -= w
			if err := c.storeWord(c.Regs[isa.RSP], next, c.Mode); err != nil {
				flush()
				return c.fault("call push: %v", err)
			}
			next = addrImm
		case isa.RET:
			v, err := c.loadWord(c.Regs[isa.RSP], c.Mode)
			if err != nil {
				flush()
				return c.fault("ret pop: %v", err)
			}
			c.Regs[isa.RSP] += w
			next = v & widthMask(c.Mode)
		case isa.PUSH:
			c.Regs[isa.RSP] -= w
			if err := c.storeWord(c.Regs[isa.RSP], c.get(e.dst), c.Mode); err != nil {
				flush()
				return c.fault("push: %v", err)
			}
		case isa.POP:
			v, err := c.loadWord(c.Regs[isa.RSP], c.Mode)
			if err != nil {
				flush()
				return c.fault("pop: %v", err)
			}
			c.Regs[isa.RSP] += w
			c.set(e.dst, v)

		default:
			flush()
			return c.fault("unimplemented opcode %v", e.op)
		}

		c.Retired++
		c.IP = next
		steps++
	}
	flush()
	return c.fault("instruction budget (%d) exhausted at ip=%#x", maxSteps, c.IP)
}

// sext32 re-extends a packed 32-bit immediate to the decoder's 64-bit
// sign-extended form.
func sext32(v uint32) uint64 { return uint64(int64(int32(v))) }

// jccTaken evaluates a conditional branch against the flags.
func jccTaken(op isa.Op, f *Flags) bool {
	switch op {
	case isa.JZ:
		return f.ZF
	case isa.JNZ:
		return !f.ZF
	case isa.JL:
		return f.SF != f.OF
	case isa.JG:
		return !f.ZF && f.SF == f.OF
	case isa.JLE:
		return f.ZF || f.SF != f.OF
	case isa.JGE:
		return f.SF == f.OF
	case isa.JB:
		return f.CF
	case isa.JAE:
		return !f.CF
	}
	return false
}

// execFused executes one fused superinstruction pair with the legacy
// engine's exact observable semantics: each half charges, retires and
// advances IP separately, so a fault in either half leaves the clock,
// Retired and IP precisely where the per-instruction path would. On
// success both instructions are retired and IP points at the pair's
// successor (or branch/call target).
func (c *CPU) execFused(e centry, ip, w, mask uint64, pending *uint64) *Exit {
	next := ip + uint64(e.n)
	switch e.op {
	case fopCmpJcc:
		*pending += uint64(e.cost)
		a, b := c.Regs[e.dst]&mask, c.Regs[e.src]&mask
		c.setArith(a-b, a, b, true)
		t := next
		if jccTaken(isa.Op(e.sub), &c.Flags) {
			t = e.imm & mask
		}
		c.Retired += 2
		c.IP = t
	case fopCmpiJcc:
		*pending += uint64(e.cost)
		imm := sext32(uint32(e.imm))
		a := c.Regs[e.dst] & mask
		c.setArith(a-imm, a, imm, true)
		t := next
		if jccTaken(isa.Op(e.sub), &c.Flags) {
			t = uint64(uint32(e.imm>>32)) & mask
		}
		c.Retired += 2
		c.IP = t
	case fopDecJnz:
		*pending += uint64(e.cost)
		a := c.Regs[e.dst] & mask
		r := a - 1
		c.setArith(r, a, 1, true)
		c.Regs[e.dst] = r & mask
		t := next
		if !c.Flags.ZF {
			t = e.imm & mask
		}
		c.Retired += 2
		c.IP = t
	case fopIncJnz:
		*pending += uint64(e.cost)
		a := c.Regs[e.dst] & mask
		r := a + 1
		c.setArith(r, a, 1, false)
		c.Regs[e.dst] = r & mask
		t := next
		if !c.Flags.ZF {
			t = e.imm & mask
		}
		c.Retired += 2
		c.IP = t
	case fopPushCall:
		*pending += cycles.InstrBase
		c.Regs[isa.RSP] -= w
		if err := c.storeWord(c.Regs[isa.RSP], c.Regs[e.dst]&mask, c.Mode); err != nil {
			return c.fault("push: %v", err)
		}
		c.Retired++
		c.IP = ip + uint64(e.sub)
		*pending += cycles.InstrBase
		c.Regs[isa.RSP] -= w
		if err := c.storeWord(c.Regs[isa.RSP], next, c.Mode); err != nil {
			return c.fault("call push: %v", err)
		}
		c.Retired++
		c.IP = e.imm & mask
	case fopSubiCall:
		*pending += cycles.InstrBase
		imm := sext32(uint32(e.imm))
		a := c.Regs[e.dst] & mask
		r := a - imm
		c.setArith(r, a, imm, true)
		c.Regs[e.dst] = r & mask
		c.Retired++
		c.IP = ip + uint64(e.sub)
		*pending += cycles.InstrBase
		c.Regs[isa.RSP] -= w
		if err := c.storeWord(c.Regs[isa.RSP], next, c.Mode); err != nil {
			return c.fault("call push: %v", err)
		}
		c.Retired++
		c.IP = uint64(uint32(e.imm>>32)) & mask
	case fopMoviCall:
		*pending += cycles.InstrBase
		c.Regs[e.dst] = sext32(uint32(e.imm)) & mask
		c.Retired++
		c.IP = ip + uint64(e.sub)
		*pending += cycles.InstrBase
		c.Regs[isa.RSP] -= w
		if err := c.storeWord(c.Regs[isa.RSP], next, c.Mode); err != nil {
			return c.fault("call push: %v", err)
		}
		c.Retired++
		c.IP = uint64(uint32(e.imm>>32)) & mask
	case fopPushSubi:
		*pending += cycles.InstrBase
		c.Regs[isa.RSP] -= w
		if err := c.storeWord(c.Regs[isa.RSP], c.Regs[e.dst]&mask, c.Mode); err != nil {
			return c.fault("push: %v", err)
		}
		c.Retired++
		*pending += cycles.InstrBase
		a := c.Regs[e.src] & mask
		r := a - e.imm
		c.setArith(r, a, e.imm, true)
		c.Regs[e.src] = r & mask
		c.Retired++
		c.IP = next
	case fopPopPush:
		*pending += cycles.InstrBase
		v, err := c.loadWord(c.Regs[isa.RSP], c.Mode)
		if err != nil {
			return c.fault("pop: %v", err)
		}
		c.Regs[isa.RSP] += w
		c.Regs[e.dst] = v & mask
		c.Retired++
		c.IP = ip + uint64(e.sub)
		*pending += cycles.InstrBase
		c.Regs[isa.RSP] -= w
		if err := c.storeWord(c.Regs[isa.RSP], c.Regs[e.src]&mask, c.Mode); err != nil {
			return c.fault("push: %v", err)
		}
		c.Retired++
		c.IP = next
	case fopAddRet:
		*pending += cycles.InstrBase
		a, b := c.Regs[e.dst]&mask, c.Regs[e.src]&mask
		r := a + b
		c.setArith(r, a, b, false)
		c.Regs[e.dst] = r & mask
		c.Retired++
		c.IP = ip + uint64(e.sub)
		*pending += cycles.InstrBase
		v, err := c.loadWord(c.Regs[isa.RSP], c.Mode)
		if err != nil {
			return c.fault("ret pop: %v", err)
		}
		c.Regs[isa.RSP] += w
		c.Retired++
		c.IP = v & mask
	default:
		return c.fault("unimplemented fused opcode %d", e.op)
	}
	return nil
}

// codeAt returns the decoded page at index page, or nil.
func (c *CPU) codeAt(page uint64) *codePage {
	if page < uint64(len(c.code)) {
		return c.code[page]
	}
	return nil
}

// Fault is a convenience for VMM-side code to construct a fault exit.
func Fault(format string, args ...any) *Exit {
	return &Exit{Reason: ExitFault, Err: fmt.Errorf(format, args...)}
}
