package cpu

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cycles"
	"repro/internal/isa"
)

// run assembles src, loads it into a fresh 2 MB guest, and executes until
// the first exit.
func run(t *testing.T, src string) (*CPU, *Exit) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 2<<20)
	copy(mem[p.Origin:], p.Code)
	c := New(mem, cycles.NewClock(), p.Entry)
	switch p.StartMode {
	case isa.Mode32:
		c.SetupProtected()
	case isa.Mode64:
		c.SetupLongMode()
	}
	ex := c.Run(50_000_000)
	return c, ex
}

func wantHalt(t *testing.T, ex *Exit) {
	t.Helper()
	if ex.Reason != ExitHalt {
		t.Fatalf("exit = %+v, want halt", ex)
	}
}

func TestArithmetic(t *testing.T) {
	c, ex := run(t, `
.bits 64
	movi rax, 10
	movi rbx, 3
	mov rcx, rax
	add rcx, rbx    ; 13
	sub rax, rbx    ; 7
	mul rax, rbx    ; 21
	movi rdx, 21
	div rdx, rbx    ; 7
	movi rsi, 22
	mod rsi, rbx    ; 1
	hlt
`)
	wantHalt(t, ex)
	if c.Regs[isa.RCX] != 13 || c.Regs[isa.RAX] != 21 || c.Regs[isa.RDX] != 7 || c.Regs[isa.RSI] != 1 {
		t.Fatalf("regs: rcx=%d rax=%d rdx=%d rsi=%d", c.Regs[isa.RCX], c.Regs[isa.RAX], c.Regs[isa.RDX], c.Regs[isa.RSI])
	}
}

func TestLogicAndShifts(t *testing.T) {
	c, ex := run(t, `
.bits 64
	movi rax, 0xF0
	and rax, 0x3C    ; 0x30
	movi rbx, 1
	shl rbx, 8       ; 256
	movi rcx, 0x100
	shr rcx, 4       ; 16
	movi rdx, -16
	sar rdx, 2       ; -4
	movi rsi, 5
	neg rsi          ; -5
	movi rdi, 0
	not rdi          ; all ones
	hlt
`)
	wantHalt(t, ex)
	if c.Regs[isa.RAX] != 0x30 || c.Regs[isa.RBX] != 256 || c.Regs[isa.RCX] != 16 {
		t.Fatal("and/shl/shr wrong")
	}
	if int64(c.Regs[isa.RDX]) != -4 || int64(c.Regs[isa.RSI]) != -5 {
		t.Fatalf("sar/neg wrong: %d %d", int64(c.Regs[isa.RDX]), int64(c.Regs[isa.RSI]))
	}
	if c.Regs[isa.RDI] != ^uint64(0) {
		t.Fatal("not wrong")
	}
}

func TestConditionalJumps(t *testing.T) {
	c, ex := run(t, `
.bits 64
	movi rax, 0      ; result bitmask of taken branches
	movi rbx, 5
	cmp rbx, 5
	jz eq
	jmp fail
eq:
	or rax, 1
	cmp rbx, 7
	jl lt
	jmp fail
lt:
	or rax, 2
	movi rcx, -1
	cmp rcx, 1
	jl slt           ; signed: -1 < 1
	jmp fail
slt:
	or rax, 4
	cmp rcx, 1
	jae uge          ; unsigned: 0xFFFF.. >= 1
	jmp fail
uge:
	or rax, 8
	hlt
fail:
	movi rax, -1
	hlt
`)
	wantHalt(t, ex)
	if c.Regs[isa.RAX] != 15 {
		t.Fatalf("branch mask = %d, want 15", c.Regs[isa.RAX])
	}
}

func TestCallRetAndStack(t *testing.T) {
	c, ex := run(t, `
.bits 64
_start:
	movi rdi, 20
	call double
	hlt
double:
	push rbx
	mov rbx, rdi
	add rbx, rdi
	mov rax, rbx
	pop rbx
	ret
`)
	wantHalt(t, ex)
	if c.Regs[isa.RAX] != 40 {
		t.Fatalf("double(20) = %d", c.Regs[isa.RAX])
	}
	if c.Regs[isa.RSP] != uint64(len(c.Mem)) {
		t.Fatal("stack imbalanced")
	}
}

func TestFib16BitRealMode(t *testing.T) {
	// Recursive fib in real mode — the paper's Fig 3 microbenchmark.
	c, ex := run(t, fibAsm("16", 10))
	wantHalt(t, ex)
	if c.Regs[isa.RAX]&0xFFFF != 55 {
		t.Fatalf("fib(10) = %d, want 55", c.Regs[isa.RAX]&0xFFFF)
	}
}

// fibAsm builds the recursive fib benchmark at the given bit width.
func fibAsm(bits string, n int) string {
	return `
.bits ` + bits + `
_start:
	movi rdi, ` + itoa(n) + `
	call fib
	hlt
fib:
	cmp rdi, 2
	jge rec
	mov rax, rdi
	ret
rec:
	push rdi
	sub rdi, 1
	call fib
	pop rdi
	push rax
	sub rdi, 2
	call fib
	pop rbx
	add rax, rbx
	ret
`
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestMemoryLoadStore(t *testing.T) {
	c, ex := run(t, `
.bits 64
	movi rbx, 0x100000
	movi rax, 0x1122334455667788
	store [rbx], rax
	load rcx, [rbx]
	loadb rdx, [rbx+1]   ; second byte, 0x77
	movi rsi, 0xFF
	storeb [rbx+2], rsi
	loadb rdi, [rbx+2]
	hlt
`)
	wantHalt(t, ex)
	if c.Regs[isa.RCX] != 0x1122334455667788 {
		t.Fatalf("load = %#x", c.Regs[isa.RCX])
	}
	if c.Regs[isa.RDX] != 0x77 {
		t.Fatalf("loadb = %#x", c.Regs[isa.RDX])
	}
	if c.Regs[isa.RDI] != 0xFF {
		t.Fatalf("storeb/loadb = %#x", c.Regs[isa.RDI])
	}
}

func TestHypercallExit(t *testing.T) {
	c, ex := run(t, `
.bits 64
	movi rdi, 1234
	out 0x07, rdi
	hlt
`)
	if ex.Reason != ExitIO {
		t.Fatalf("exit = %+v, want IO", ex)
	}
	if ex.Port != 0x07 || ex.Reg != isa.RDI {
		t.Fatalf("port=%#x reg=%v", ex.Port, ex.Reg)
	}
	if c.Regs[ex.Reg] != 1234 {
		t.Fatal("hypercall value wrong")
	}
	// Resume: the VMM would service the call, then continue.
	ex2 := c.Run(100)
	wantHalt(t, ex2)
}

func TestDivideByZeroFaults(t *testing.T) {
	_, ex := run(t, `
.bits 64
	movi rax, 1
	movi rbx, 0
	div rax, rbx
	hlt
`)
	if ex.Reason != ExitFault {
		t.Fatalf("exit = %+v, want fault", ex)
	}
}

func TestRunawayGuestFaults(t *testing.T) {
	p, err := asm.Assemble(".bits 64\nloop:\n\tjmp loop\n")
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 1<<20)
	copy(mem[p.Origin:], p.Code)
	c := New(mem, cycles.NewClock(), p.Entry)
	c.SetupLongMode()
	ex := c.Run(1000)
	if ex.Reason != ExitFault || !strings.Contains(ex.Err.Error(), "budget") {
		t.Fatalf("exit = %+v, want budget fault", ex)
	}
}

func TestLongModeRequiresSetup(t *testing.T) {
	// Jumping to 64-bit code without long mode active must fault.
	_, ex := run(t, `
.bits 16
	ljmp64 nowhere
nowhere:
	hlt
`)
	if ex.Reason != ExitFault {
		t.Fatalf("exit = %+v, want fault", ex)
	}
}

func TestProtectedModeRequiresPE(t *testing.T) {
	_, ex := run(t, `
.bits 16
	ljmp32 x
x:
	hlt
`)
	if ex.Reason != ExitFault {
		t.Fatal("ljmp32 without CR0.PE must fault")
	}
}

func TestLongModeRequiresPAE(t *testing.T) {
	_, ex := run(t, `
.bits 16
	lgdt gdt_desc
	rdcr rax, efer
	or rax, 0x100
	movcr efer, rax
	rdcr rax, cr0
	or rax, 1
	movcr cr0, rax
	ljmp32 prot
.bits 32
prot:
	rdcr rax, cr0
	movi rbx, 0x80000000
	or rax, rbx
	movcr cr0, rax   ; PG with LME but no PAE: fault
	hlt
.align 8
gdt:
	.dq 0
	.dq 0x00CF9A000000FFFF
gdt_desc:
	.dw 15
	.dq gdt
`)
	if ex.Reason != ExitFault || !strings.Contains(ex.Err.Error(), "PAE") {
		t.Fatalf("exit = %+v, want PAE fault", ex)
	}
}

// bootToLongMode is the minimal boot sequence from §4.2: real mode →
// lgdt → protected mode → build identity-mapped page tables (2MB pages,
// first 1 GB, three 4 KiB tables = 12 KiB of stores) → long mode.
const bootToLongMode = `
.bits 16
.org 0x8000
_start:
	cli
	lgdt gdt_desc
	rdcr rax, cr0
	or rax, 1
	movcr cr0, rax
	ljmp32 prot

.bits 32
prot:
	; fill the page directory at 0x3000: 512 entries mapping 2MB pages
	movi rdi, 0x3000
	movi rcx, 512
	movi rax, 0x83        ; addr 0 | PS | W | P
	movi rbx, 0
	movi rdx, 0x200000
pdloop:
	store [rdi], rax
	store [rdi+4], rbx
	add rax, rdx
	add rdi, 8
	dec rcx
	jnz pdloop
	; zero PML4 (0x1000) and PDPT (0x2000): 1024 entries
	movi rdi, 0x1000
	movi rcx, 1024
zloop:
	store [rdi], rbx
	store [rdi+4], rbx
	add rdi, 8
	dec rcx
	jnz zloop
	; PML4[0] -> PDPT, PDPT[0] -> PD
	movi rdi, 0x1000
	movi rax, 0x2003
	store [rdi], rax
	movi rdi, 0x2000
	movi rax, 0x3003
	store [rdi], rax
	; load cr3
	movi rax, 0x1000
	movcr cr3, rax
	; CR4.PAE
	rdcr rax, cr4
	or rax, 0x20
	movcr cr4, rax
	; EFER.LME
	rdcr rax, efer
	or rax, 0x100
	movcr efer, rax
	; CR0.PG
	rdcr rax, cr0
	movi rbx, 0x80000000
	or rax, rbx
	movcr cr0, rax
	lgdt gdt_desc
	ljmp64 long

.bits 64
long:
	movi rax, 0x2A
	hlt

.align 8
gdt:
	.dq 0
	.dq 0x00CF9A000000FFFF
	.dq 0x00AF9A000000FFFF
gdt_desc:
	.dw 23
	.dq gdt
`

func TestBootToLongMode(t *testing.T) {
	c, ex := run(t, bootToLongMode)
	wantHalt(t, ex)
	if c.Mode != isa.Mode64 {
		t.Fatalf("mode = %v, want long", c.Mode)
	}
	if c.Regs[isa.RAX] != 0x2A {
		t.Fatalf("rax = %#x", c.Regs[isa.RAX])
	}
	if c.EFER&isa.EFERLMA == 0 {
		t.Fatal("LMA not set")
	}
	// Every milestone must have been recorded.
	for _, e := range []Event{EvLgdt, EvProtected, EvLjmp32, EvLongActive, EvLjmp64, EvFirstInstr64, EvCR3Load, EvIdentMapStart} {
		if c.Events[e] == 0 {
			t.Fatalf("event %v not recorded", e)
		}
	}
	// Milestones must be ordered.
	order := []Event{EvLgdt, EvProtected, EvLjmp32, EvIdentMapStart, EvCR3Load, EvLongActive, EvLjmp64, EvFirstInstr64}
	for i := 1; i < len(order); i++ {
		if c.Events[order[i]] < c.Events[order[i-1]] {
			t.Fatalf("event %v (%d) before %v (%d)", order[i], c.Events[order[i]], order[i-1], c.Events[order[i-1]])
		}
	}
}

func TestBootBreakdownMatchesTable1(t *testing.T) {
	c, ex := run(t, bootToLongMode)
	wantHalt(t, ex)
	// Identity mapping should dominate at roughly 28 K cycles (Table 1:
	// 28109). Our executed loop lands within 15%.
	ident := c.EventDelta(EvIdentMapStart, EvCR3Load)
	if ident < 24_000 || ident > 33_000 {
		t.Fatalf("ident-map = %d cycles, want ≈28K", ident)
	}
	// Total boot should be under 100K cycles but above the ident map.
	boot := c.Events[EvFirstInstr64]
	if boot < ident || boot > 100_000 {
		t.Fatalf("boot = %d cycles", boot)
	}
}

func TestLongModePagingTranslates(t *testing.T) {
	// After boot, long-mode loads/stores go through the guest-built page
	// tables; addresses beyond the mapped 1 GB fault.
	src := strings.Replace(bootToLongMode, `long:
	movi rax, 0x2A
	hlt`, `long:
	movi rbx, 0x1F0000
	movi rax, 0x5A
	store [rbx], rax
	load rcx, [rbx]
	hlt`, 1)
	c, ex := run(t, src)
	wantHalt(t, ex)
	if c.Regs[isa.RCX] != 0x5A {
		t.Fatalf("paged load = %#x", c.Regs[isa.RCX])
	}
	if c.TLBSize() == 0 {
		t.Fatal("TLB should have cached translations")
	}
}

func TestSaveRestore(t *testing.T) {
	c, ex := run(t, bootToLongMode)
	wantHalt(t, ex)
	st := c.Save()
	c2 := New(c.Mem, cycles.NewClock(), 0)
	c2.Restore(st)
	if c2.Mode != isa.Mode64 || c2.Regs[isa.RAX] != 0x2A || c2.CR3 != c.CR3 {
		t.Fatal("restore did not reinstate state")
	}
	if c2.Halted {
		t.Fatal("restore must clear halt")
	}
}

func TestWidth16Wraps(t *testing.T) {
	c, ex := run(t, `
.bits 16
	movi rax, 0x7FFF
	add rax, 1
	hlt
`)
	wantHalt(t, ex)
	if c.Regs[isa.RAX] != 0x8000 {
		t.Fatalf("rax = %#x", c.Regs[isa.RAX])
	}
	if !c.Flags.OF {
		t.Fatal("16-bit signed overflow should set OF")
	}
}

func TestClockAdvances(t *testing.T) {
	c, ex := run(t, ".bits 64\n\tnop\n\tnop\n\thlt\n")
	wantHalt(t, ex)
	if c.Clock.Now() == 0 {
		t.Fatal("clock did not advance")
	}
	if c.Retired != 3 {
		t.Fatalf("retired = %d, want 3", c.Retired)
	}
}

func TestModeCostOrdering(t *testing.T) {
	// Fig 3's structural claim: the cost to reach and run a workload is
	// 16-bit < 32-bit ≈ 64-bit, because protected/long setup dominates.
	cost := func(src string) uint64 {
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		mem := make([]byte, 2<<20)
		copy(mem[p.Origin:], p.Code)
		c := New(mem, cycles.NewClock(), p.Entry)
		if p.StartMode == isa.Mode64 {
			c.SetupLongMode()
		}
		if ex := c.Run(50_000_000); ex.Reason != ExitHalt {
			t.Fatalf("exit %+v", ex)
		}
		return c.Clock.Now()
	}
	real16 := cost(fibAsm("16", 15))
	long64 := cost(strings.Replace(bootToLongMode, `	movi rax, 0x2A
	hlt`, fibBody(15), 1))
	if real16 >= long64 {
		t.Fatalf("real-mode fib (%d) should be cheaper than long-mode boot+fib (%d)", real16, long64)
	}
}

func fibBody(n int) string {
	return `	movi rdi, ` + itoa(n) + `
	call fib
	hlt
fib:
	cmp rdi, 2
	jge fibrec
	mov rax, rdi
	ret
fibrec:
	push rdi
	sub rdi, 1
	call fib
	pop rdi
	push rax
	sub rdi, 2
	call fib
	pop rbx
	add rax, rbx
	ret`
}
