package cpu

import "repro/internal/isa"

// DefaultTableBase is where host-side setup places the identity-map page
// tables: PML4 at base, PDPT at base+0x1000, PD at base+0x2000. Guest
// boot stubs use the same layout.
const DefaultTableBase = 0x1000

// SetupProtected configures the CPU for flat 32-bit protected mode from
// the host side, the state a snapshot of a protected-mode virtine resumes
// into. No guest cycles are charged: this models the VMM writing vCPU
// state (KVM_SET_SREGS), not the guest booting.
func (c *CPU) SetupProtected() {
	c.CR0 |= isa.CR0PE
	if c.GDTLimit == 0 {
		c.GDTLimit = 23 // three flat descriptors
	}
	c.Mode = isa.Mode32
	c.FlushTLB()
}

// SetupLongMode configures the CPU for flat 64-bit long mode from the host
// side: it writes identity-mapping page tables (2 MB pages covering the
// first 1 GB) into guest memory at DefaultTableBase and sets the control
// registers the way a completed boot would have. No guest cycles are
// charged. This is the "reset state" a long-mode snapshot resumes into
// (§5.2, Fig 7): the expensive table construction happened once, on the
// first execution.
func (c *CPU) SetupLongMode() {
	base := uint64(DefaultTableBase)
	WriteIdentityTables(c.Mem, base)
	c.CR3 = base
	c.CR4 |= isa.CR4PAE
	c.EFER |= isa.EFERLME | isa.EFERLMA
	c.CR0 |= isa.CR0PE | isa.CR0PG
	if c.GDTLimit == 0 {
		c.GDTLimit = 23
	}
	c.Mode = isa.Mode64
	c.FlushTLB()
}

// WriteIdentityTables writes a 3-level identity mapping (PML4, PDPT, PD
// with 512 × 2 MB large pages = 1 GB) into mem at base. It is used both by
// host-side setup and by tests that need known-good tables.
func WriteIdentityTables(mem []byte, base uint64) {
	put := func(addr, v uint64) {
		for i := 0; i < 8; i++ {
			mem[addr+uint64(i)] = byte(v >> (8 * i))
		}
	}
	pml4, pdpt, pd := base, base+0x1000, base+0x2000
	for i := uint64(0); i < 512; i++ {
		put(pml4+i*8, 0)
		put(pdpt+i*8, 0)
		put(pd+i*8, (i<<21)|ptePS|pteWrite|ptePresent)
	}
	put(pml4, pdpt|pteWrite|ptePresent)
	put(pdpt, pd|pteWrite|ptePresent)
}
