package cpu

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/isa"
)

// Page-table entry bits (x86 layout where it matters).
const (
	ptePresent    = 1 << 0
	pteWrite      = 1 << 1
	ptePS         = 1 << 7 // large page (2 MB at the PD level)
	pteAddrMask   = 0x000F_FFFF_FFFF_F000
	largePageMask = 0x000F_FFFF_FFE0_0000
)

// Translate converts a guest-virtual address to guest-physical at the
// CPU's current mode, charging the architectural cost of the translation.
//
//   - Real mode: 20-bit wraparound, no translation.
//   - Protected mode: flat segmentation; a GDT must have been loaded.
//     (The paper's echo server runs here with paging off, §4.2.)
//   - Long mode: 4-level walk of the guest's own page tables with 2 MB
//     large pages, through a software TLB. A miss really reads the three
//     levels from guest memory, so the guest pays for the tables it built.
func (c *CPU) Translate(vaddr uint64, write bool) (uint64, error) {
	switch c.Mode {
	case isa.Mode16:
		return vaddr & 0xF_FFFF, nil
	case isa.Mode32:
		if c.GDTLimit == 0 {
			return 0, fmt.Errorf("protected-mode access at %#x with no GDT", vaddr)
		}
		return vaddr & 0xFFFF_FFFF, nil
	}
	// Long mode: paging is architecturally mandatory.
	if c.CR0&isa.CR0PG == 0 {
		return 0, fmt.Errorf("long-mode access at %#x with paging off", vaddr)
	}
	page := vaddr >> 21
	if !c.NoTLB {
		// One-entry cache in front of the map: a strict subset of the
		// map's contents, so hit/miss accounting (and therefore cycle
		// charges) are unchanged — only the host-side hash is skipped.
		if c.dtlbOK && c.dtlbPage == page {
			return c.dtlbBase | (vaddr & 0x1F_FFFF), nil
		}
		if base, ok := c.tlb[page]; ok {
			c.dtlbOK, c.dtlbPage, c.dtlbBase = true, page, base
			return base | (vaddr & 0x1F_FFFF), nil
		}
	}
	c.Clock.Advance(cycles.TLBMissWalk)
	base, err := c.walk(vaddr)
	if err != nil {
		return 0, err
	}
	if !c.NoTLB {
		c.tlb[page] = base
		c.dtlbOK, c.dtlbPage, c.dtlbBase = true, page, base
	}
	return base | (vaddr & 0x1F_FFFF), nil
}

// walk performs the 4-level page walk, reading PML4 → PDPT → PD entries
// from guest memory and charging one memory access per level.
func (c *CPU) walk(vaddr uint64) (uint64, error) {
	pml4 := c.CR3 & pteAddrMask
	idx4 := (vaddr >> 39) & 0x1FF
	e4, err := c.readPTE(pml4 + idx4*8)
	if err != nil {
		return 0, err
	}
	if e4&ptePresent == 0 {
		return 0, fmt.Errorf("page fault: PML4E not present for %#x", vaddr)
	}
	pdpt := e4 & pteAddrMask
	idx3 := (vaddr >> 30) & 0x1FF
	e3, err := c.readPTE(pdpt + idx3*8)
	if err != nil {
		return 0, err
	}
	if e3&ptePresent == 0 {
		return 0, fmt.Errorf("page fault: PDPTE not present for %#x", vaddr)
	}
	pd := e3 & pteAddrMask
	idx2 := (vaddr >> 21) & 0x1FF
	e2, err := c.readPTE(pd + idx2*8)
	if err != nil {
		return 0, err
	}
	if e2&ptePresent == 0 {
		return 0, fmt.Errorf("page fault: PDE not present for %#x", vaddr)
	}
	if e2&ptePS == 0 {
		return 0, fmt.Errorf("page fault: 4K pages unsupported by this walker (vaddr %#x)", vaddr)
	}
	return e2 & largePageMask, nil
}

func (c *CPU) readPTE(paddr uint64) (uint64, error) {
	c.Clock.Advance(cycles.MemAccess)
	if paddr+8 > uint64(len(c.Mem)) {
		return 0, fmt.Errorf("page-walk read beyond memory at %#x", paddr)
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(c.Mem[paddr+uint64(i)]) << (8 * i)
	}
	return v, nil
}

// ReadMem reads n bytes at guest-virtual vaddr, charging translation plus
// one access per word.
func (c *CPU) ReadMem(vaddr uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		p, err := c.Translate(vaddr+uint64(i), false)
		if err != nil {
			return nil, err
		}
		if p >= uint64(len(c.Mem)) {
			return nil, fmt.Errorf("read beyond memory at %#x", p)
		}
		out[i] = c.Mem[p]
	}
	c.Clock.Advance(cycles.MemAccess * uint64(1+(n-1)/8))
	return out, nil
}

// WriteMem writes b at guest-virtual vaddr.
func (c *CPU) WriteMem(vaddr uint64, b []byte) error {
	for i := range b {
		p, err := c.Translate(vaddr+uint64(i), true)
		if err != nil {
			return err
		}
		if p >= uint64(len(c.Mem)) {
			return fmt.Errorf("write beyond memory at %#x", p)
		}
		c.Mem[p] = b[i]
		c.invalidateCodeOne(p, 1)
		c.noteStore(p, 1)
	}
	c.Clock.Advance(cycles.MemStore * uint64(1+(len(b)-1)/8))
	return nil
}

// loadWord reads a mode-width word for instruction execution.
func (c *CPU) loadWord(vaddr uint64, mode isa.Mode) (uint64, error) {
	w := mode.Width()
	p, err := c.Translate(vaddr, false)
	if err != nil {
		return 0, err
	}
	if p+uint64(w) > uint64(len(c.Mem)) {
		return 0, fmt.Errorf("load beyond memory at %#x", p)
	}
	c.Clock.Advance(cycles.MemAccess)
	return isa.Word(c.Mem[p:p+uint64(w)], mode), nil
}

// storeWord writes a mode-width word.
func (c *CPU) storeWord(vaddr uint64, v uint64, mode isa.Mode) error {
	w := mode.Width()
	p, err := c.Translate(vaddr, true)
	if err != nil {
		return err
	}
	if p+uint64(w) > uint64(len(c.Mem)) {
		return fmt.Errorf("store beyond memory at %#x", p)
	}
	isa.PutWord(c.Mem[p:p+uint64(w)], mode, v)
	c.invalidateCodeOne(p, w)
	c.noteStore(p, w)
	c.Clock.Advance(cycles.MemStore)
	return nil
}

// noteStore reports a guest store to the dirty-page tracker. Inside the
// cached engine (batchDirty) stores are coalesced into the span log and
// flushed at the same observation points as the pending cycle batch;
// everywhere else the hook fires immediately, as it always did. Code-cache
// invalidation never batches — it is fetch correctness, not bookkeeping.
func (c *CPU) noteStore(p uint64, n int) {
	if c.OnStore == nil {
		return
	}
	if !c.batchDirty {
		c.OnStore(p, n)
		return
	}
	if c.nspans > 0 {
		// Coalesce with the last span when overlapping or adjacent in
		// either direction (stack pushes walk downward).
		s := &c.spans[c.nspans-1]
		if p+uint64(n) >= s.addr && p <= s.addr+uint64(s.n) {
			lo, hi := s.addr, s.addr+uint64(s.n)
			if p < lo {
				lo = p
			}
			if end := p + uint64(n); end > hi {
				hi = end
			}
			s.addr, s.n = lo, int(hi-lo)
			return
		}
	}
	if c.nspans == len(c.spans) {
		c.flushDirty()
	}
	c.spans[c.nspans] = dirtySpan{addr: p, n: n}
	c.nspans++
}

// flushDirty reports all batched spans to OnStore and empties the log.
func (c *CPU) flushDirty() {
	for i := 0; i < c.nspans; i++ {
		c.OnStore(c.spans[i].addr, c.spans[i].n)
	}
	c.nspans = 0
}

// FlushTLB drops all cached translations (CR3 writes, mode changes),
// including the fetch window and the one-entry data TLB in front of the
// map.
func (c *CPU) FlushTLB() {
	c.tlb = make(map[uint64]uint64)
	c.fetchOK = false
	c.dtlbOK = false
}

// TLBSize reports the number of cached large-page translations.
func (c *CPU) TLBSize() int { return len(c.tlb) }
