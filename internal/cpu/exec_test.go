package cpu

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cycles"
	"repro/internal/isa"
)

// Edge-case and fault-path coverage for the executor.

func TestInInstruction(t *testing.T) {
	c, ex := run(t, `
.bits 64
	in rax, 0x11
	hlt
`)
	if ex.Reason != ExitIO || !ex.In || ex.Port != 0x11 || ex.Reg != isa.RAX {
		t.Fatalf("exit = %+v", ex)
	}
	// The VMM writes the result into the destination register.
	c.Regs[ex.Reg] = 0xBEEF
	ex2 := c.Run(10)
	wantHalt(t, ex2)
	if c.Regs[isa.RAX] != 0xBEEF {
		t.Fatal("IN result lost")
	}
}

func TestModNegativeOperands(t *testing.T) {
	c, ex := run(t, `
.bits 64
	movi rax, -7
	movi rbx, 3
	mod rax, rbx
	movi rcx, 7
	movi rdx, -3
	mod rcx, rdx
	hlt
`)
	wantHalt(t, ex)
	// Go-style truncated semantics: -7 % 3 = -1, 7 % -3 = 1.
	if int64(c.Regs[isa.RAX]) != -1 || int64(c.Regs[isa.RCX]) != 1 {
		t.Fatalf("mod = %d, %d", int64(c.Regs[isa.RAX]), int64(c.Regs[isa.RCX]))
	}
}

func TestVariableShifts(t *testing.T) {
	c, ex := run(t, `
.bits 64
	movi rax, 1
	movi rbx, 12
	shlv rax, rbx      ; 4096
	movi rcx, -64
	movi rdx, 3
	sarv rcx, rdx      ; -8
	movi rsi, 0x8000
	movi rdi, 15
	shrv rsi, rdi      ; 1
	hlt
`)
	wantHalt(t, ex)
	if c.Regs[isa.RAX] != 4096 || int64(c.Regs[isa.RCX]) != -8 || c.Regs[isa.RSI] != 1 {
		t.Fatalf("shifts: %d %d %d", c.Regs[isa.RAX], int64(c.Regs[isa.RCX]), c.Regs[isa.RSI])
	}
}

func TestUnsignedBranches(t *testing.T) {
	c, ex := run(t, `
.bits 64
	movi rax, 0
	movi rbx, -1       ; unsigned max
	cmp rbx, 1
	jb below           ; must NOT take: 0xFFFF.. > 1 unsigned
	or rax, 1
below:
	cmp rbx, 1
	jae above          ; must take
	jmp done
above:
	or rax, 2
done:
	hlt
`)
	wantHalt(t, ex)
	if c.Regs[isa.RAX] != 3 {
		t.Fatalf("mask = %d, want 3", c.Regs[isa.RAX])
	}
}

func TestMemoryFaults(t *testing.T) {
	cases := []struct{ name, src string }{
		{"load beyond memory", `
.bits 64
	movi rbx, 0x10000000
	load rax, [rbx]
	hlt`},
		{"store beyond memory", `
.bits 64
	movi rbx, 0x10000000
	store [rbx], rax
	hlt`},
		{"byte load beyond memory", `
.bits 64
	movi rbx, 0x10000000
	loadb rax, [rbx]
	hlt`},
	}
	for _, tc := range cases {
		_, ex := run(t, tc.src)
		if ex.Reason != ExitFault {
			t.Errorf("%s: exit = %+v, want fault", tc.name, ex)
		}
	}
}

func TestPageFaultOnUnmappedHighAddress(t *testing.T) {
	// Long mode maps the first 1 GB; an access above that walks to a
	// non-present PDPT entry and faults.
	src := strings.Replace(bootToLongMode, `long:
	movi rax, 0x2A
	hlt`, `long:
	movi rbx, 0x40000000
	load rax, [rbx]
	hlt`, 1)
	_, ex := run(t, src)
	if ex.Reason != ExitFault || !strings.Contains(ex.Err.Error(), "not present") {
		t.Fatalf("exit = %+v, want page fault", ex)
	}
}

func TestHaltedCPUStaysHalted(t *testing.T) {
	c, ex := run(t, ".bits 64\n\thlt\n")
	wantHalt(t, ex)
	if ex2 := c.Step(); ex2.Reason != ExitHalt {
		t.Fatal("stepping a halted CPU should report halt")
	}
}

func TestEventDeltaEdgeCases(t *testing.T) {
	c, _ := run(t, bootToLongMode)
	if c.EventDelta(EvLjmp64, EvLgdt) != 0 {
		t.Fatal("reversed delta should be 0")
	}
	if c.EventDelta(EvLgdt, Event(NumEvents-1)) != 0 && c.Events[NumEvents-1] == 0 {
		t.Fatal("missing event delta should be 0")
	}
}

func TestOnStoreHookObservesGuestWrites(t *testing.T) {
	p, err := asm.Assemble(`
.bits 64
	movi rbx, 0x6000
	movi rax, 1
	store [rbx], rax
	storeb [rbx+8], rax
	push rax
	hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 1<<20)
	copy(mem[p.Origin:], p.Code)
	c := New(mem, cycles.NewClock(), p.Entry)
	c.SetupLongMode()
	// The cached engine batches stores into coalesced spans, so the hook
	// contract is byte coverage, not one callback per store: the adjacent
	// store+storeb arrive as a single span.
	dirty := map[uint64]bool{}
	c.OnStore = func(paddr uint64, n int) {
		for i := uint64(0); i < uint64(n); i++ {
			dirty[paddr+i] = true
		}
	}
	if ex := c.Run(100); ex.Reason != ExitHalt {
		t.Fatalf("exit %+v", ex)
	}
	for a := uint64(0x6000); a <= 0x6008; a++ {
		if !dirty[a] {
			t.Fatalf("store/storeb byte %#x not observed", a)
		}
	}
	sp := uint64(len(mem)) - 8 // push writes the word below the reset stack top
	for i := uint64(0); i < 8; i++ {
		if !dirty[sp+i] {
			t.Fatalf("push byte %#x not observed", sp+i)
		}
	}
	if len(dirty) != 9+8 {
		t.Fatalf("observed %d dirty bytes, want 17", len(dirty))
	}
}

func TestNoTLBChargesEveryAccess(t *testing.T) {
	prog := strings.Replace(bootToLongMode, `	movi rax, 0x2A
	hlt`, `	movi rcx, 100
	movi rbx, 0x6000
tl:
	load rax, [rbx]
	dec rcx
	jnz tl
	hlt`, 1)
	cost := func(noTLB bool) uint64 {
		p, err := asm.Assemble(prog)
		if err != nil {
			t.Fatal(err)
		}
		mem := make([]byte, 2<<20)
		copy(mem[p.Origin:], p.Code)
		c := New(mem, cycles.NewClock(), p.Entry)
		c.NoTLB = noTLB
		if ex := c.Run(50_000_000); ex.Reason != ExitHalt {
			t.Fatalf("exit %+v", ex)
		}
		return c.Clock.Now()
	}
	with := cost(false)
	without := cost(true)
	if without <= with {
		t.Fatalf("NoTLB (%d) should cost more than TLB (%d)", without, with)
	}
}

func TestWriteIdentityTablesCoversFirstGB(t *testing.T) {
	mem := make([]byte, 1<<20)
	WriteIdentityTables(mem, DefaultTableBase)
	c := New(mem, cycles.NewClock(), 0)
	c.SetupLongMode()
	// Probe translations across the first GB (virtual == physical for
	// addresses within guest memory; walks succeed beyond it too).
	for _, va := range []uint64{0, 0x1000, 0x80000, 0xFFFFF} {
		pa, err := c.Translate(va, false)
		if err != nil {
			t.Fatalf("translate %#x: %v", va, err)
		}
		if pa != va {
			t.Fatalf("identity violated: %#x -> %#x", va, pa)
		}
	}
}

func TestRestoreClearsHalt(t *testing.T) {
	c, ex := run(t, ".bits 64\n\tmovi rax, 5\n\thlt\n")
	wantHalt(t, ex)
	st := c.Save()
	c.Restore(st)
	if c.Halted {
		t.Fatal("restore must clear the halt latch")
	}
}

func TestRealModeAddressWraps(t *testing.T) {
	// Real mode masks addresses to 20 bits.
	p, err := asm.Assemble(`
.bits 16
	movi rbx, 0x1234
	movi rax, 0x42
	storeb [rbx], rax
	loadb rcx, [rbx]
	hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 1<<20)
	copy(mem[p.Origin:], p.Code)
	c := New(mem, cycles.NewClock(), p.Entry)
	if ex := c.Run(100); ex.Reason != ExitHalt {
		t.Fatalf("exit %+v", ex)
	}
	if c.Regs[isa.RCX] != 0x42 {
		t.Fatal("real-mode store/load failed")
	}
}
