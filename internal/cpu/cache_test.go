package cpu

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/cycles"
	"repro/internal/isa"
)

// Self-modifying code: a guest that rewrites an already-executed
// instruction must observe the new bytes on the next execution. This is
// the decoded-cache invalidation regression test — a stale cache would
// re-run the old instruction.
func TestSelfModifyingImmediate(t *testing.T) {
	// The loop body's first instruction is `movi rbx, 1`; the first pass
	// overwrites its 8-byte immediate with 42, so the second pass must
	// load 42.
	src := `
.bits 64
_start:
	movi rcx, 2
loop:
patch:
	movi rbx, 1
	movi rdi, patch
	movi rax, 42
	store [rdi+2], rax
	dec rcx
	jnz loop
	hlt
`
	c, ex := run(t, src)
	wantHalt(t, ex)
	if c.Regs[isa.RBX] != 42 {
		t.Fatalf("rbx = %d after self-modify, want 42 (stale decoded cache?)", c.Regs[isa.RBX])
	}
}

// Self-modifying opcode via a byte store: the first pass executes
// `inc rbx`, then patches its opcode byte to DEC; the second pass must
// decrement, leaving rbx back at 0.
func TestSelfModifyingOpcode(t *testing.T) {
	src := fmt.Sprintf(`
.bits 64
_start:
	movi rcx, 2
loop:
patch:
	inc rbx
	movi rdi, patch
	movi rax, %d
	storeb [rdi], rax
	dec rcx
	jnz loop
	hlt
`, int(isa.DEC))
	c, ex := run(t, src)
	wantHalt(t, ex)
	if c.Regs[isa.RBX] != 0 {
		t.Fatalf("rbx = %d after opcode patch, want 0", c.Regs[isa.RBX])
	}
}

// The legacy interpreter must agree with the cached engine on the
// self-modifying program, including virtual cycles.
func TestSelfModifyLegacyParity(t *testing.T) {
	src := `
.bits 64
_start:
	movi rcx, 3
loop:
patch:
	movi rbx, 7
	movi rdi, patch
	mov rax, rcx
	store [rdi+2], rax
	add rsi, rbx
	dec rcx
	jnz loop
	hlt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	exec := func(legacy bool) (*CPU, uint64) {
		mem := make([]byte, 2<<20)
		copy(mem[p.Origin:], p.Code)
		clk := cycles.NewClock()
		c := New(mem, clk, p.Entry)
		c.Legacy = legacy
		c.SetupLongMode()
		if ex := c.Run(1_000_000); ex.Reason != ExitHalt {
			t.Fatalf("legacy=%v: exit %+v", legacy, ex)
		}
		return c, clk.Now()
	}
	fast, fastCy := exec(false)
	slow, slowCy := exec(true)
	if fastCy != slowCy {
		t.Fatalf("cycles diverge: cached %d, legacy %d", fastCy, slowCy)
	}
	if fast.Regs != slow.Regs || fast.Retired != slow.Retired {
		t.Fatalf("state diverges: cached %v/%d, legacy %v/%d",
			fast.Regs, fast.Retired, slow.Regs, slow.Retired)
	}
}

// Host writes into guest memory (WriteMem is the CPU-level host path)
// must invalidate decoded code as well.
func TestHostWriteInvalidates(t *testing.T) {
	src := `
.bits 64
_start:
patch:
	movi rbx, 1
	hlt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 2<<20)
	copy(mem[p.Origin:], p.Code)
	c := New(mem, cycles.NewClock(), p.Entry)
	c.SetupLongMode()
	if ex := c.Run(100); ex.Reason != ExitHalt {
		t.Fatalf("first run: %+v", ex)
	}
	if c.CodePages() == 0 {
		t.Fatal("no decoded pages after first run")
	}
	// Host rewrites the immediate, then the guest re-executes.
	if err := c.WriteMem(p.Entry+2, []byte{99, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	c.Halted = false
	c.IP = p.Entry
	if ex := c.Run(100); ex.Reason != ExitHalt {
		t.Fatalf("second run: %+v", ex)
	}
	if c.Regs[isa.RBX] != 99 {
		t.Fatalf("rbx = %d after host write, want 99", c.Regs[isa.RBX])
	}
}

// ShareCode/AdoptCode: frozen pages install only where the target memory
// matches the bytes they were decoded from.
func TestShareAdoptVerifiesContent(t *testing.T) {
	src := `
.bits 64
_start:
	movi rbx, 5
	hlt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 1<<20)
	copy(mem[p.Origin:], p.Code)
	donor := New(mem, cycles.NewClock(), p.Entry)
	donor.SetupLongMode()
	if ex := donor.Run(100); ex.Reason != ExitHalt {
		t.Fatalf("donor: %+v", ex)
	}
	cc := donor.ShareCode()
	if cc.Empty() || cc.Pages() == 0 {
		t.Fatal("donor shared no pages")
	}

	// Same content: pages adopt.
	mem2 := make([]byte, 1<<20)
	copy(mem2[p.Origin:], p.Code)
	twin := New(mem2, cycles.NewClock(), p.Entry)
	twin.AdoptCode(cc)
	if twin.CodePages() != cc.Pages() {
		t.Fatalf("twin adopted %d pages, want %d", twin.CodePages(), cc.Pages())
	}

	// Mutated content: the touched page must be rejected.
	mem3 := make([]byte, 1<<20)
	copy(mem3[p.Origin:], p.Code)
	mem3[p.Origin+2] ^= 0xFF
	other := New(mem3, cycles.NewClock(), p.Entry)
	other.AdoptCode(cc)
	if other.CodePages() != 0 {
		t.Fatalf("stale page adopted into mismatched memory (%d pages)", other.CodePages())
	}
}

// A shared page is never mutated: a CPU that decodes into an adopted page
// clones it first, leaving the frozen copy intact for other adopters.
func TestSharedPageCloneOnWrite(t *testing.T) {
	src := `
.bits 64
_start:
	movi rbx, 5
	hlt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 1<<20)
	copy(mem[p.Origin:], p.Code)
	donor := New(mem, cycles.NewClock(), p.Entry)
	donor.SetupLongMode()
	if ex := donor.Run(100); ex.Reason != ExitHalt {
		t.Fatalf("donor: %+v", ex)
	}
	cc := donor.ShareCode()
	page := p.Origin / codePageSize
	frozen := cc.pages[page]
	before := frozen.ents

	// The donor re-executes the same bytes in protected mode. The cached
	// entries carry long-mode decodes, so the mode mismatch forces a
	// fresh decode into the shared page — which must clone, not mutate.
	donor.Halted = false
	donor.IP = p.Entry
	donor.SetupProtected()
	if ex := donor.Run(100); ex.Reason != ExitHalt {
		t.Fatalf("donor mode32 rerun: %+v", ex)
	}
	if frozen.ents != before {
		t.Fatal("frozen shared page was mutated by the donor")
	}
	if donor.code[page] == frozen {
		t.Fatal("donor still points at the frozen page after writing into it")
	}
}

// A fetch beyond physical memory must fault exactly like the legacy
// engine — not panic (regression: predecode once indexed the page table
// with an out-of-range page).
func TestFetchBeyondMemoryFaults(t *testing.T) {
	// Real-mode jump past the end of an 8-page guest: both engines must
	// fault with the same message and cycle count.
	p, err := asm.Assemble(".bits 16\n.org 0x8000\n_start:\n\tjmp 0x9000\n")
	if err != nil {
		t.Fatal(err)
	}
	run := func(legacy bool) (string, uint64) {
		mem := make([]byte, 32<<10)
		copy(mem[p.Origin:], p.Code)
		clk := cycles.NewClock()
		c := New(mem, clk, p.Entry)
		c.Legacy = legacy
		ex := c.Run(100)
		if ex.Reason != ExitFault || ex.Err == nil {
			t.Fatalf("legacy=%v: exit %+v, want fault", legacy, ex)
		}
		return ex.Err.Error(), clk.Now()
	}
	fmsg, fcy := run(false)
	smsg, scy := run(true)
	if fmsg != smsg || fcy != scy {
		t.Fatalf("divergence: cached (%q, %d) vs legacy (%q, %d)", fmsg, fcy, smsg, scy)
	}
}

// The NoTLB ablation must charge exactly the legacy cycle counts —
// including around special instructions, which would double-charge the
// fetch walk if the cached engine pre-translated before delegating.
func TestNoTLBParity(t *testing.T) {
	src := `
.bits 64
_start:
	movi rcx, 20
vx_lp:
	movi rdi, 1
	out 0x0B, rdi
	dec rcx
	jnz vx_lp
	hlt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	exec := func(legacy bool) uint64 {
		mem := make([]byte, 2<<20)
		copy(mem[p.Origin:], p.Code)
		clk := cycles.NewClock()
		c := New(mem, clk, p.Entry)
		c.Legacy = legacy
		c.NoTLB = true
		c.SetupLongMode()
		for {
			ex := c.Run(1_000_000)
			if ex.Reason == ExitIO {
				continue // resume across the hypercall exits
			}
			if ex.Reason != ExitHalt {
				t.Fatalf("legacy=%v: exit %+v", legacy, ex)
			}
			break
		}
		return clk.Now()
	}
	if fast, slow := exec(false), exec(true); fast != slow {
		t.Fatalf("NoTLB cycles diverge: cached %d, legacy %d", fast, slow)
	}
}

// Merge upgrades a sparse frozen page with a fuller one decoded from the
// same bytes (input-dependent jumps reach code the first freeze never
// executed), but never lets a page frozen from different (self-modified)
// bytes displace the registered version.
func TestMergeUpgradesSamesourcePages(t *testing.T) {
	// The 0xFF data byte is an invalid opcode: forward predecode from
	// _start stops there, so vx_extra's entries exist only in caches
	// whose CPU actually jumped into it.
	p, err := asm.Assemble(`
.bits 64
_start:
	movi rbx, 5
	hlt
	.db 0xFF
vx_extra:
	movi rdx, 9
	hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	mkCPU := func() *CPU {
		mem := make([]byte, 1<<20)
		copy(mem[p.Origin:], p.Code)
		c := New(mem, cycles.NewClock(), p.Entry)
		c.SetupLongMode()
		return c
	}
	a := mkCPU()
	if ex := a.Run(100); ex.Reason != ExitHalt {
		t.Fatalf("a: %+v", ex)
	}
	sparse := a.ShareCode()

	// b executes the extra entry point too, so its page holds strictly
	// more entries decoded from identical bytes.
	b := mkCPU()
	if ex := b.Run(100); ex.Reason != ExitHalt {
		t.Fatalf("b: %+v", ex)
	}
	b.Halted = false
	b.IP = p.Labels["vx_extra"]
	if ex := b.Run(100); ex.Reason != ExitHalt {
		t.Fatalf("b extra: %+v", ex)
	}
	fuller := b.ShareCode()

	page := p.Origin / codePageSize
	merged := sparse.Merge(fuller)
	if merged.pages[page] != fuller.pages[page] {
		t.Fatal("merge kept the sparse page despite a same-source superset")
	}
	if sparse.pages[page] == merged.pages[page] {
		t.Fatal("merge mutated the receiver's slice")
	}

	// A page frozen from modified bytes must not displace the original.
	c := mkCPU()
	c.Mem[p.Origin+2] = 77 // patch the immediate before any decode
	if ex := c.Run(100); ex.Reason != ExitHalt {
		t.Fatalf("c: %+v", ex)
	}
	c.Halted = false
	c.IP = p.Labels["vx_extra"]
	if ex := c.Run(100); ex.Reason != ExitHalt {
		t.Fatalf("c extra: %+v", ex)
	}
	modified := c.ShareCode()
	kept := merged.Merge(modified)
	if kept.pages[page] != merged.pages[page] {
		t.Fatal("merge let a modified-source page displace the canonical one")
	}
}
