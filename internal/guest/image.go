// Package guest defines the virtine image format and the pre-built
// runtime environments of §5.4: the boot stubs that bring a virtual
// context from 16-bit real mode up to 32-bit protected or 64-bit long
// mode (Fig 10's two default environments), and the memory layout every
// virtine shares with its toolchain.
//
// A virtine image is a flat binary loaded at guest address 0x8000 (§5.1:
// "Wasp simply accepts a binary image, loads it at guest virtual address
// 0x8000, and enters the VM context"). Images are small and static —
// the paper's C-extension images are ~16 KB including the mini-libc.
package guest

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Memory-layout constants shared by the toolchain, boot stubs, and Wasp.
const (
	// ArgAddr is where marshalled arguments are placed: "the argument,
	// n, is loaded into the virtine's address space at address 0x0"
	// (§6.1).
	ArgAddr = 0x0
	// ArgMax bounds the marshalled-argument region.
	ArgMax = 0x1000
	// TableBase..TableEnd hold the long-mode identity-map page tables.
	TableBase = 0x1000
	TableEnd  = 0x4000
	// RetAddr is where a virtine function stores its raw return value
	// before calling return_data.
	RetAddr = 0x4000
	// RetMax bounds the return-value region.
	RetMax = 0x1000
	// HeapBase is scratch/heap space below the image.
	HeapBase = 0x5000
	// LoadAddr is where every image is loaded.
	LoadAddr = 0x8000
	// StackReserve is the stack budget above the image footprint.
	StackReserve = 8 << 10
	// HeapReserve is the default heap budget after the image.
	HeapReserve = 16 << 10
	// MinMemory is the smallest guest memory Wasp provisions.
	MinMemory = 64 << 10
)

// NativeFunc is a host-implemented workload that runs in virtine context
// (execution environment B of Fig 10, driven through the Wasp runtime API
// directly). The concrete context type lives in internal/wasp; it is an
// any here to avoid a dependency cycle.
type NativeFunc func(ctx any) error

// Image is a packaged virtine binary plus its resource requirements.
type Image struct {
	// Name keys snapshots: all executions of the same image share one
	// snapshot (§5.2).
	Name string

	Code   []byte
	Origin uint64
	Entry  uint64
	Mode   isa.Mode // start mode (Mode16 for self-booting images)

	// Pad is synthetic zero padding counted into the image footprint —
	// the Fig 12 experiment pads a minimal image up to 16 MB.
	Pad int

	// ExtraHeap enlarges the heap reservation beyond HeapReserve for
	// workloads with real allocation needs (the JS engine).
	ExtraHeap int

	// Native, when non-nil, runs after the image's boot stub halts.
	Native NativeFunc

	// contentKey caches ContentKey for images built by the package
	// constructors; WithName/WithPad copies inherit it.
	contentKey string
}

// ContentKey identifies the image by executable content: a hash over the
// code bytes, load origin, entry point, and start mode — everything the
// decoded-code cache depends on, and nothing it does not (Name and Pad
// are excluded: renamed tenant clones and padded variants of one binary
// decode identically). The Wasp code registry keys on it, so clones made
// with WithName share one decode. Safe even under hash collision: code
// adoption verifies page content against guest memory before install.
func (im *Image) ContentKey() string {
	if im.contentKey == "" {
		return contentKey(im)
	}
	return im.contentKey
}

// contentKey computes the FNV-1a content hash with length-prefixed
// fields, mixing in the structural parameters before the code bytes.
func contentKey(im *Image) string {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(im.Origin)
	mix(im.Entry)
	mix(uint64(im.Mode))
	mix(uint64(len(im.Code)))
	for _, b := range im.Code {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}

// FromAsm assembles src into an image named name.
func FromAsm(name, src string) (*Image, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("guest: assembling %s: %w", name, err)
	}
	if p.Origin < HeapBase {
		return nil, fmt.Errorf("guest: image %s origin %#x collides with reserved layout", name, p.Origin)
	}
	im := &Image{
		Name:   name,
		Code:   p.Code,
		Origin: p.Origin,
		Entry:  p.Entry,
		Mode:   p.StartMode,
	}
	im.contentKey = contentKey(im)
	return im, nil
}

// MustFromAsm is FromAsm for static sources; it panics on error.
func MustFromAsm(name, src string) *Image {
	im, err := FromAsm(name, src)
	if err != nil {
		panic(err)
	}
	return im
}

// Footprint is the image's memory footprint in bytes: everything that a
// snapshot must capture and a load must copy (code + data + padding,
// measured from address zero so the argument page and page tables are
// included).
func (im *Image) Footprint() int {
	return int(im.Origin) + len(im.Code) + im.Pad
}

// MemBytes is the guest-physical memory Wasp provisions for this image:
// footprint + heap + stack, rounded to 4 KiB, at least MinMemory.
func (im *Image) MemBytes() int {
	n := im.Footprint() + HeapReserve + im.ExtraHeap + StackReserve
	n = (n + 4095) &^ 4095
	if n < MinMemory {
		n = MinMemory
	}
	return n
}

// WithName returns a copy of the image under a new name. Snapshots,
// COW shells, and the scheduler's per-image admission and pool-sizing
// telemetry all key on the name, so a renamed copy is an isolated
// tenant of the same binary.
func (im *Image) WithName(name string) *Image {
	out := *im
	out.Name = name
	return &out
}

// WithPad returns a copy of the image padded with extra zero bytes, for
// the Fig 12 image-size sweep. The copy gets a distinct name so it takes
// its own snapshot.
func (im *Image) WithPad(pad int) *Image {
	out := *im
	out.Pad = pad
	out.Name = fmt.Sprintf("%s+pad%d", im.Name, pad)
	return &out
}
