package guest

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestMinimalHaltAssembles(t *testing.T) {
	img := MinimalHalt()
	if img.Origin != LoadAddr {
		t.Fatalf("origin = %#x, want %#x", img.Origin, LoadAddr)
	}
	if img.Mode != isa.Mode16 {
		t.Fatal("self-booting images must start in real mode")
	}
	if len(img.Code) == 0 {
		t.Fatal("empty image")
	}
	// The paper's minimal images are ~16 KB with libc; the bare boot
	// stub must be well under 1 KB.
	if len(img.Code) > 1024 {
		t.Fatalf("minimal image is %d bytes", len(img.Code))
	}
}

func TestFootprintAndMemBytes(t *testing.T) {
	img := MinimalHalt()
	if img.Footprint() != int(img.Origin)+len(img.Code) {
		t.Fatal("footprint math wrong")
	}
	if img.MemBytes() < MinMemory {
		t.Fatal("memory below minimum")
	}
	if img.MemBytes()%4096 != 0 {
		t.Fatal("memory not page aligned")
	}
	padded := img.WithPad(1 << 20)
	if padded.Footprint() != img.Footprint()+(1<<20) {
		t.Fatal("padding not counted in footprint")
	}
	if padded.Name == img.Name {
		t.Fatal("padded image must take a distinct snapshot key")
	}
	if img.Pad != 0 {
		t.Fatal("WithPad mutated the original")
	}
}

func TestExtraHeapGrowsMemory(t *testing.T) {
	img := MinimalHalt()
	big := *img
	big.ExtraHeap = 1 << 20
	if big.MemBytes() <= img.MemBytes() {
		t.Fatal("ExtraHeap ignored")
	}
}

func TestWrapProtectedOmitsPaging(t *testing.T) {
	src := WrapProtected("\thlt\n")
	if strings.Contains(src, "vx_long64") {
		t.Fatal("protected wrapper should not include long-mode boot")
	}
	if !strings.Contains(src, "vx_prot32") {
		t.Fatal("protected wrapper missing protected entry")
	}
	src64 := WrapLongMode("\thlt\n")
	if !strings.Contains(src64, "vx_pdloop") {
		t.Fatal("long wrapper missing page-table construction")
	}
	if !strings.Contains(src64, "__image_end") {
		t.Fatal("long wrapper missing heap-start label")
	}
}

func TestFromAsmRejectsBadOrigin(t *testing.T) {
	if _, err := FromAsm("bad", ".org 0x100\n.bits 16\n\thlt\n"); err == nil {
		t.Fatal("origin inside reserved layout accepted")
	}
	if _, err := FromAsm("bad2", "not assembly"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMustFromAsmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromAsm should panic")
		}
	}()
	MustFromAsm("bad", "garbage input here")
}

func TestNativeBootStub(t *testing.T) {
	called := false
	img := NativeBootStub("n", func(any) error { called = true; return nil }, 4096)
	if img.Native == nil {
		t.Fatal("native fn not attached")
	}
	if img.ExtraHeap != 4096 {
		t.Fatal("extra heap not set")
	}
	_ = img.Native(nil)
	if !called {
		t.Fatal("native fn not invocable")
	}
}

func TestLayoutConstantsDisjoint(t *testing.T) {
	// The fixed layout regions must not overlap.
	if ArgAddr+ArgMax > TableBase {
		t.Fatal("args overlap page tables")
	}
	if TableEnd > RetAddr {
		t.Fatal("page tables overlap return region")
	}
	if RetAddr+RetMax > HeapBase {
		t.Fatal("return region overlaps heap")
	}
	if HeapBase > LoadAddr {
		t.Fatal("heap base beyond load address")
	}
}
