package guest

import "strings"

// This file holds the pre-built boot stubs — the "roughly 160 lines of
// assembly" of §4.2 that closely mirror the boot sequence of a classic OS
// kernel: configure protected mode, a GDT, paging, and finally jump to
// 64-bit code. The stubs are templates: workload assembly is spliced in
// at the workload marker, already running in the target mode.

// workloadMarker is replaced by the caller's assembly.
const workloadMarker = "@WORKLOAD@"

// bootHeader brings the machine from 16-bit real mode into 32-bit
// protected mode: interrupt disable, cold GDT load, CR0.PE flip, far jump
// (Table 1 components: lgdt 4118, protected transition 3217, ljmp 175).
const bootHeader = `
.bits 16
.org 0x8000
_start:
	cli
	lgdt gdt_desc
	rdcr rax, cr0
	or rax, 1
	movcr cr0, rax
	ljmp32 vx_prot32
.bits 32
vx_prot32:
`

// bootPaging builds the long-mode identity mapping in guest memory —
// three 4 KiB tables (12 KiB of stores, Table 1's dominant 28 K-cycle
// component), 2 MB large pages covering 1 GB — then enables PAE, LME and
// paging, reloads the GDT, and jumps to 64-bit code (long transition 681,
// ljmp 190, first instruction 74).
const bootPaging = `
	movi rdi, 0x3000
	movi rcx, 512
	movi rax, 0x83
	movi rbx, 0
	movi rdx, 0x200000
vx_pdloop:
	store [rdi], rax
	store [rdi+4], rbx
	add rax, rdx
	add rdi, 8
	dec rcx
	jnz vx_pdloop
	movi rdi, 0x1000
	movi rcx, 1024
vx_zloop:
	store [rdi], rbx
	store [rdi+4], rbx
	add rdi, 8
	dec rcx
	jnz vx_zloop
	movi rdi, 0x1000
	movi rax, 0x2003
	store [rdi], rax
	movi rdi, 0x2000
	movi rax, 0x3003
	store [rdi], rax
	movi rax, 0x1000
	movcr cr3, rax
	rdcr rax, cr4
	or rax, 0x20
	movcr cr4, rax
	rdcr rax, efer
	or rax, 0x100
	movcr efer, rax
	rdcr rax, cr0
	movi rbx, 0x80000000
	or rax, rbx
	movcr cr0, rax
	lgdt gdt_desc
	ljmp64 vx_long64
.bits 64
vx_long64:
`

// bootFooter carries the GDT: a null descriptor plus flat 32- and 64-bit
// code segments, and the 10-byte pseudo-descriptor lgdt reads. The
// __image_end label marks the end of the packaged image; the mini-libc's
// bump allocator starts its heap there (via the __image_end() intrinsic).
const bootFooter = `
.align 8
gdt:
	.dq 0
	.dq 0x00CF9A000000FFFF
	.dq 0x00AF9A000000FFFF
gdt_desc:
	.dw 23
	.dq gdt
.align 8
__image_end:
`

// WrapLongMode wraps 64-bit workload assembly in the full real→protected→
// long boot sequence. The workload starts in long mode with identity
// paging active; rsp is set by the vCPU to the top of guest memory.
func WrapLongMode(workload string) string {
	return bootHeader + bootPaging + strings.TrimSpace(workload) + "\n" + bootFooter
}

// WrapProtected wraps 32-bit workload assembly in the real→protected boot
// sequence with no paging — the environment the §4.2 echo server uses
// ("this example does not actually require 64-bit mode, so we omit paging
// and leave the context in protected mode").
func WrapProtected(workload string) string {
	return bootHeader + strings.TrimSpace(workload) + "\n" + bootFooter
}

// MinimalHalt is the smallest useful virtine: boot to long mode and halt.
// The Fig 12 image-size sweep pads this image; Table 1 instruments its
// boot.
func MinimalHalt() *Image {
	return MustFromAsm("minimal-halt", WrapLongMode("\thlt\n"))
}

// MinimalHaltProtected boots to protected mode and halts.
func MinimalHaltProtected() *Image {
	return MustFromAsm("minimal-halt32", WrapProtected("\thlt\n"))
}

// RealModeHalt halts immediately in real mode — the cheapest context of
// Fig 3's 16-bit series.
func RealModeHalt() *Image {
	return MustFromAsm("real-halt", ".bits 16\n.org 0x8000\n_start:\n\thlt\n")
}

// NativeBootStub is the boot image used for native workloads (execution
// environment B): boot to long mode, then halt; Wasp then invokes the
// registered NativeFunc with the booted context.
func NativeBootStub(name string, native NativeFunc, extraHeap int) *Image {
	im := MustFromAsm(name, WrapLongMode("\thlt\n"))
	im.Name = name
	im.Native = native
	im.ExtraHeap = extraHeap
	return im
}
