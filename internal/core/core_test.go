package core

import (
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/hypercall"
)

const fibSrc = `
virtine int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}`

func TestQuickstartFib(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(fibSrc)
	if err != nil {
		t.Fatal(err)
	}
	fib := fns["fib"]
	if fib == nil {
		t.Fatal("fib not compiled")
	}
	got, err := fib.Call(15)
	if err != nil {
		t.Fatal(err)
	}
	if got != 610 {
		t.Fatalf("fib(15) = %d, want 610", got)
	}
}

func TestRepeatCallsUseSnapshot(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(fibSrc)
	if err != nil {
		t.Fatal(err)
	}
	fib := fns["fib"]
	clk1 := cycles.NewClock()
	if _, _, err := fib.CallOn(clk1, 1); err != nil {
		t.Fatal(err)
	}
	clk2 := cycles.NewClock()
	_, res2, err := fib.CallOn(clk2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.SnapshotUsed {
		t.Fatal("second call did not use snapshot")
	}
	if clk2.Now() >= clk1.Now() {
		t.Fatalf("warm call (%d) not cheaper than cold (%d)", clk2.Now(), clk1.Now())
	}
}

func TestSnapshotDisable(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(fibSrc)
	if err != nil {
		t.Fatal(err)
	}
	fib := fns["fib"]
	fib.Snapshot = false
	if _, _, err := fib.CallOn(cycles.NewClock(), 1); err != nil {
		t.Fatal(err)
	}
	_, res, err := fib.CallOn(cycles.NewClock(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotUsed {
		t.Fatal("snapshot used despite being disabled")
	}
}

func TestArgCountChecked(t *testing.T) {
	client := NewClient()
	fns, _ := client.CompileC(fibSrc)
	if _, err := fns["fib"].Call(1, 2); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestMultipleVirtinesShareClient(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(`
virtine int double_(int n) { return n * 2; }
virtine int square(int n) { return n * n; }
`)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := fns["double_"].Call(21)
	s, _ := fns["square"].Call(9)
	if d != 42 || s != 81 {
		t.Fatalf("double_=%d square=%d", d, s)
	}
}

func TestFuncFromImage(t *testing.T) {
	client := NewClient()
	img := guest.MustFromAsm("ret7", guest.WrapLongMode(`
	movi rax, 7
	movi rbx, 0x4000
	store [rbx], rax
	movi rdi, 0
	out 0x00, rdi
	hlt
`))
	f := client.FuncFromImage(img, hypercall.DenyAll{})
	got, _, err := f.CallOn(cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("ret7 = %d", got)
	}
}

func TestPolicyViolationSurfacesToClient(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(`
virtine int sneaky(int n) { puts("x"); return n; }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fns["sneaky"].Call(1)
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("err = %v", err)
	}
}

func TestPinnedEnv(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(`
virtine_config(0x2) int hello(int n) {
	write(1, "hi", 2);
	return n;
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := fns["hello"]
	env := hypercall.NewEnv()
	f.Env = env
	if _, _, err := f.CallOn(cycles.NewClock(), 1); err != nil {
		t.Fatal(err)
	}
	if env.Stdout.String() != "hi" {
		t.Fatalf("stdout = %q", env.Stdout.String())
	}
	// Second call resets per-run state.
	if _, _, err := f.CallOn(cycles.NewClock(), 1); err != nil {
		t.Fatal(err)
	}
	if env.Stdout.String() != "hi" {
		t.Fatalf("env not reset between runs: %q", env.Stdout.String())
	}
}
