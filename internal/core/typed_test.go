package core

import (
	"strings"
	"testing"

	"repro/internal/cycles"
)

const strHashSrc = `
virtine int hash(char *s) {
	int h = 0;
	for (int i = 0; s[i]; i++) { h = h * 31 + s[i]; }
	return h;
}

virtine int weigh(char *s, int k) {
	return strlen(s) * k;
}

virtine int cat_check(char *a, char *b) {
	char buf[128];
	strcpy(buf, a);
	int n = strlen(a);
	strcpy(buf + n, b);
	return strlen(buf);
}`

func goHash(s string) int64 {
	var h int64
	for _, c := range []byte(s) {
		h = h*31 + int64(c)
	}
	return h
}

func TestStringArgumentMarshalling(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(strHashSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"", "a", "virtines at the hardware limit", strings.Repeat("x", 500)} {
		got, _, err := fns["hash"].CallTyped(cycles.NewClock(), s)
		if err != nil {
			t.Fatal(err)
		}
		if got != goHash(s) {
			t.Fatalf("hash(%q) = %d, want %d", s, got, goHash(s))
		}
	}
}

func TestMixedTypedArguments(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(strHashSrc)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := fns["weigh"].CallTyped(cycles.NewClock(), "seven77", int64(6))
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("weigh = %d", got)
	}
}

func TestTwoStringArguments(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(strHashSrc)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := fns["cat_check"].CallTyped(cycles.NewClock(), "hello ", "world")
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(len("hello world")) {
		t.Fatalf("cat_check = %d", got)
	}
}

func TestTypedSignatureChecking(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(strHashSrc)
	if err != nil {
		t.Fatal(err)
	}
	// String where an int is expected.
	if _, _, err := fns["weigh"].CallTyped(cycles.NewClock(), "s", "not-an-int"); err == nil {
		t.Fatal("string bound to int parameter")
	}
	// Int where a char* is expected.
	if _, _, err := fns["hash"].CallTyped(cycles.NewClock(), int64(5)); err == nil {
		t.Fatal("int bound to char* parameter")
	}
	// Arity.
	if _, _, err := fns["hash"].CallTyped(cycles.NewClock()); err == nil {
		t.Fatal("missing argument accepted")
	}
	// Unsupported Go type.
	if _, _, err := fns["hash"].CallTyped(cycles.NewClock(), 3.14); err == nil {
		t.Fatal("float accepted")
	}
}

func TestTypedArgumentsTooLarge(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(strHashSrc)
	if err != nil {
		t.Fatal(err)
	}
	huge := strings.Repeat("z", 8<<10) // exceeds the 4 KB argument page
	if _, _, err := fns["hash"].CallTyped(cycles.NewClock(), huge); err == nil {
		t.Fatal("oversized string accepted")
	}
}

func TestTypedArgsFreshAcrossSnapshotRuns(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(strHashSrc)
	if err != nil {
		t.Fatal(err)
	}
	h := fns["hash"]
	if got, _, _ := h.CallTyped(cycles.NewClock(), "first"); got != goHash("first") {
		t.Fatal("first call wrong")
	}
	// Snapshot-restored run must see the new string, and a shorter
	// string must not expose stale bytes of a longer previous one.
	if got, _, _ := h.CallTyped(cycles.NewClock(), "second-longer-string"); got != goHash("second-longer-string") {
		t.Fatal("second call wrong")
	}
	if got, _, _ := h.CallTyped(cycles.NewClock(), "x"); got != goHash("x") {
		t.Fatal("short-after-long call wrong (stale argument bytes)")
	}
}
