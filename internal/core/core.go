// Package core is the public face of the virtine library — the paper's
// primary contribution (§2) assembled from the substrates underneath:
//
//	core.Client     a virtine client: a program that embeds Wasp (§5.1)
//	core.Func       one virtine-annotated function, callable like a
//	                regular function but executing in its own micro-VM
//
// The quickstart mirrors Fig 9:
//
//	client := core.NewClient()
//	fns, _ := client.CompileC(`
//	    virtine int fib(int n) {
//	        if (n < 2) return n;
//	        return fib(n - 1) + fib(n - 2);
//	    }`)
//	fib := fns["fib"]
//	v, _ := fib.Call(20) // runs in an isolated virtual context
//
// Every invocation provisions (or reuses, §5.2) a hardware virtual
// context, marshals the arguments into the virtine's address space,
// executes the packaged image under the compiled hypercall policy, and
// returns the unmarshalled result.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/hypercall"
	"repro/internal/sched"
	"repro/internal/vcc"
	"repro/internal/wasp"
)

// Client embeds the Wasp runtime the way a host program links against
// libwasp. A single Client's pool, snapshot cache, and scheduler are
// shared by all of its Funcs.
type Client struct {
	W *wasp.Wasp

	mu    sync.Mutex // guards the shared clock across synchronous Calls
	clock *cycles.Clock

	// schedMu guards lazy scheduler creation separately from mu: mu is
	// held across whole synchronous runs, and an async submission must
	// not block behind one.
	schedMu sync.Mutex
	sched   *sched.Scheduler
	serials []*sched.Scheduler
	closed  bool
}

// NewClient returns a Client with the default Wasp configuration
// (pooling + snapshotting on, synchronous cleaning).
func NewClient(opts ...wasp.Option) *Client {
	return &Client{W: wasp.New(opts...), clock: cycles.NewClock()}
}

// Clock returns the client's default virtual clock (used when Call is
// invoked without an explicit clock).
func (c *Client) Clock() *cycles.Clock { return c.clock }

// Scheduler returns the client's dispatch substrate, creating it on
// first use: a bounded worker pool as wide as the host's parallelism,
// shared by every Func's asynchronous invocations.
func (c *Client) Scheduler() *sched.Scheduler {
	c.schedMu.Lock()
	defer c.schedMu.Unlock()
	if c.sched == nil {
		c.sched = sched.New(c.W, runtime.GOMAXPROCS(0))
		if c.closed {
			c.sched.Close() // Close already happened: hand out a closed scheduler
		}
	}
	return c.sched
}

// newSerial builds a width-1 scheduler — a serial execution lane for a
// Func whose invocations must not interleave (pinned Env) — and tracks
// it for Close.
func (c *Client) newSerial() *sched.Scheduler {
	s := sched.New(c.W, 1)
	c.schedMu.Lock()
	if c.closed {
		s.Close()
	}
	c.serials = append(c.serials, s)
	c.schedMu.Unlock()
	return s
}

// Close drains and stops the client's schedulers. The client remains
// usable for synchronous Calls; asynchronous submissions — outstanding
// or later — fail with sched.ErrClosed. The closed schedulers stay in
// place so every Func observes the same closed state.
func (c *Client) Close() {
	c.schedMu.Lock()
	c.closed = true
	all := append([]*sched.Scheduler(nil), c.serials...)
	if c.sched != nil {
		all = append(all, c.sched)
	}
	c.schedMu.Unlock()
	for _, s := range all {
		s.Close()
	}
}

// CompileC compiles virtine-extended C source (§5.3) and returns one Func
// per virtine-annotated function.
func (c *Client) CompileC(src string) (map[string]*Func, error) {
	prog, err := vcc.Compile(src)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Func, len(prog.Virtines))
	for name, v := range prog.Virtines {
		out[name] = &Func{
			client:   c,
			Name:     name,
			Image:    v.Image,
			Policy:   v.Policy,
			NArgs:    len(v.Fn.Params),
			compiled: v,
			Snapshot: true, // language extensions snapshot by default (§5.3)
		}
	}
	return out, nil
}

// FuncFromImage wraps a hand-built image (assembly or native workload)
// as a callable virtine — the direct Wasp runtime API path (Fig 10 B).
func (c *Client) FuncFromImage(img *guest.Image, pol hypercall.Policy) *Func {
	return &Func{client: c, Name: img.Name, Image: img, Policy: pol}
}

// Func is a callable virtine function.
type Func struct {
	client *Client

	Name   string
	Image  *guest.Image
	Policy hypercall.Policy
	NArgs  int
	// compiled carries the vcc metadata for typed-argument checking
	// (nil for hand-built images).
	compiled *vcc.Virtine

	// Snapshot toggles the §5.2 snapshot fast path (the language
	// extensions enable it by default; "this can be disabled with the
	// use of an environment variable" — here, a field).
	Snapshot bool

	// Env optionally pins a host environment across calls (for
	// filesystem-backed virtines). When nil each call gets a fresh one.
	Env *hypercall.Env

	// envMu serializes runs that share the pinned Env: a hypercall
	// environment carries per-run socket and stream state, so two
	// in-flight invocations must not interleave on it. Funcs without a
	// pinned Env dispatch fully in parallel.
	envMu sync.Mutex

	// serial is the Func's width-1 scheduler lane, created on the first
	// asynchronous invocation with a pinned Env. Queuing those on a
	// dedicated lane (instead of the shared pool) keeps tickets that
	// must serialize anyway from occupying shared workers head-of-line.
	serialOnce sync.Once
	serial     *sched.Scheduler
}

// serialSched returns the Func's serial lane, creating it on first use.
func (f *Func) serialSched() *sched.Scheduler {
	f.serialOnce.Do(func() { f.serial = f.client.newSerial() })
	return f.serial
}

// Call invokes the virtine synchronously with int64 arguments — from the
// caller's perspective it looks like a normal function call (§2). It uses
// the client's shared clock.
func (f *Func) Call(args ...int64) (int64, error) {
	v, _, err := f.CallOn(f.client.clock, args...)
	return v, err
}

// CallOn invokes the virtine advancing the supplied clock and returns the
// full run result alongside the unmarshalled return value.
func (f *Func) CallOn(clk *cycles.Clock, args ...int64) (int64, *wasp.Result, error) {
	if f.NArgs != 0 && len(args) != f.NArgs {
		return 0, nil, fmt.Errorf("core: %s wants %d args, got %d", f.Name, f.NArgs, len(args))
	}
	return f.callBlob(clk, vcc.MarshalArgs(args...))
}

// CallTyped invokes the virtine with typed Go arguments: integers bind to
// scalar parameters, strings and byte slices to char* parameters. The
// argument data is marshalled into the virtine's private address space
// (copy-restore semantics, §7.2) — the IDL-style interface of §2.
func (f *Func) CallTyped(clk *cycles.Clock, args ...any) (int64, *wasp.Result, error) {
	if f.compiled != nil {
		if err := f.compiled.CheckSignature(args...); err != nil {
			return 0, nil, err
		}
	}
	blob, err := vcc.MarshalTyped(args...)
	if err != nil {
		return 0, nil, err
	}
	return f.callBlob(clk, blob)
}

func (f *Func) callBlob(clk *cycles.Clock, blob []byte) (int64, *wasp.Result, error) {
	env := f.Env
	if env != nil {
		f.envMu.Lock()
		defer f.envMu.Unlock()
		env.ResetRun()
	}
	f.client.mu.Lock()
	defer f.client.mu.Unlock()
	res, err := f.client.W.Run(f.Image, wasp.RunConfig{
		Policy:   f.Policy,
		Env:      env,
		Args:     blob,
		RetBytes: vcc.RetSize,
		Snapshot: f.Snapshot,
	}, clk)
	if err != nil {
		return 0, nil, err
	}
	return vcc.UnmarshalRet(res.Ret), res, nil
}
