package core

import (
	"sync"
	"testing"
)

func TestAsyncVirtine(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(fibSrc)
	if err != nil {
		t.Fatal(err)
	}
	fib := fns["fib"]
	fu := fib.Go(12)
	v, res, err := fu.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if v != 144 {
		t.Fatalf("async fib(12) = %d", v)
	}
	if res == nil || res.Cycles == 0 {
		t.Fatal("missing run result")
	}
}

func TestGoAllOrderedResults(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(`
virtine int square(int n) { return n * n; }`)
	if err != nil {
		t.Fatal(err)
	}
	sq := fns["square"]
	got, err := sq.GoAll([]int64{1}, []int64{2}, []int64{3}, []int64{4}, []int64{5})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		n := int64(i + 1)
		if v != n*n {
			t.Fatalf("square(%d) = %d", n, v)
		}
	}
}

func TestConcurrentFuturesAreIsolated(t *testing.T) {
	// Many concurrent invocations mutating the same global must each see
	// their own pristine copy (§5.3 distinct-copy semantics) — the
	// multi-tenant isolation virtines exist for.
	client := NewClient()
	fns, err := client.CompileC(`
int counter = 100;
virtine int bump(int n) {
	counter += n;
	return counter;
}`)
	if err != nil {
		t.Fatal(err)
	}
	bump := fns["bump"]
	const N = 16
	var wg sync.WaitGroup
	results := make([]int64, N)
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = bump.Go(1).Wait()
		}(i)
	}
	wg.Wait()
	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != 101 {
			t.Fatalf("virtine %d observed shared state: %d", i, results[i])
		}
	}
}

func TestGoAfterCloseFailsConsistently(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(fibSrc)
	if err != nil {
		t.Fatal(err)
	}
	fib := fns["fib"]
	if _, _, err := fib.Go(10).Wait(); err != nil {
		t.Fatal(err)
	}
	client.Close()
	// Async submission after Close must fail — including on a scheduler
	// lazily created after the Close.
	if _, _, err := fib.Go(10).Wait(); err == nil {
		t.Fatal("Go after Close succeeded")
	}
	client2 := NewClient()
	fns2, err := client2.CompileC(fibSrc)
	if err != nil {
		t.Fatal(err)
	}
	client2.Close()
	if _, _, err := fns2["fib"].Go(10).Wait(); err == nil {
		t.Fatal("Go on never-started scheduler after Close succeeded")
	}
	// Synchronous Calls keep working on a closed client.
	if v, err := fib.Call(10); err != nil || v != 55 {
		t.Fatalf("Call after Close = %d, %v", v, err)
	}
}

func TestGoAllPropagatesError(t *testing.T) {
	client := NewClient()
	fns, err := client.CompileC(`
virtine int sneaky(int n) { puts("x"); return n; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fns["sneaky"].GoAll([]int64{1}, []int64{2}); err == nil {
		t.Fatal("policy violation not propagated through GoAll")
	}
}
