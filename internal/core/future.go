package core

import (
	"repro/internal/cycles"
	"repro/internal/wasp"
)

// Asynchronous virtines (§2): "virtines could, given support in the
// hypervisor, behave like asynchronous functions or futures" — the Gotee
// comparison in the paper's footnote. Func.Go launches the invocation in
// the background and returns a Future; the caller overlaps its own work
// with the virtine and collects the result with Wait.
//
// Each future advances its own virtual clock: concurrent virtines model
// independent cores, exactly like the paper's multi-tenant scenarios.

// Future is an in-flight asynchronous virtine invocation.
type Future struct {
	ch chan futureResult
}

type futureResult struct {
	val    int64
	res    *wasp.Result
	cycles uint64
	err    error
}

// Go launches the virtine asynchronously. The returned Future must be
// Waited exactly once.
func (f *Func) Go(args ...int64) *Future {
	fu := &Future{ch: make(chan futureResult, 1)}
	go func() {
		clk := cycles.NewClock()
		val, res, err := f.CallOn(clk, args...)
		fu.ch <- futureResult{val: val, res: res, cycles: clk.Now(), err: err}
	}()
	return fu
}

// Wait blocks until the virtine completes and returns its result.
func (fu *Future) Wait() (int64, *wasp.Result, error) {
	r := <-fu.ch
	return r.val, r.res, r.err
}

// GoAll launches one asynchronous invocation per argument tuple and
// waits for all of them, returning results in order. The first error
// wins, but all virtines run to completion (no cancellation — a virtine
// is destroyed with its VM, not interrupted).
func (f *Func) GoAll(argTuples ...[]int64) ([]int64, error) {
	futures := make([]*Future, len(argTuples))
	for i, args := range argTuples {
		futures[i] = f.Go(args...)
	}
	out := make([]int64, len(futures))
	var firstErr error
	for i, fu := range futures {
		v, _, err := fu.Wait()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		out[i] = v
	}
	return out, firstErr
}
