package core

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/sched"
	"repro/internal/vcc"
	"repro/internal/wasp"
)

// Asynchronous virtines (§2): "virtines could, given support in the
// hypervisor, behave like asynchronous functions or futures" — the Gotee
// comparison in the paper's footnote. Func.Go submits the invocation to
// the client's scheduler (internal/sched) and returns a Future; the
// caller overlaps its own work with the virtine and collects the result
// with Wait.
//
// Dispatch goes through the shared bounded worker pool rather than a
// raw goroutine per call: each scheduler worker owns a virtual clock,
// so concurrent virtines model independent cores — exactly the paper's
// multi-tenant scenarios — while the pool bounds host-side parallelism.

// Future is an in-flight asynchronous virtine invocation.
type Future struct {
	t   *sched.Ticket
	err error // pre-submission failure (bad arity)
}

// Go launches the virtine asynchronously on the client's scheduler. The
// returned Future may be Waited any number of times.
func (f *Func) Go(args ...int64) *Future {
	if f.NArgs != 0 && len(args) != f.NArgs {
		return &Future{err: fmt.Errorf("core: %s wants %d args, got %d", f.Name, f.NArgs, len(args))}
	}
	return f.goBlob(vcc.MarshalArgs(args...))
}

// goBlob submits one invocation with a pre-marshalled argument blob.
// Funcs with a pinned Env go to a per-Func serial lane: the environment
// carries per-run socket and stream state, so those invocations must
// not interleave — queuing them on the shared pool would only park
// shared workers head-of-line against the env lock.
func (f *Func) goBlob(blob []byte) *Future {
	cfg := wasp.RunConfig{
		Policy:   f.Policy,
		Env:      f.Env,
		Args:     blob,
		RetBytes: vcc.RetSize,
		Snapshot: f.Snapshot,
	}
	if f.Env == nil {
		return &Future{t: f.client.Scheduler().Submit(f.Image, cfg)}
	}
	t := f.serialSched().SubmitFn(func(clk *cycles.Clock) (*wasp.Result, error) {
		// The env lock coordinates with synchronous Calls sharing the
		// same pinned Env; asynchronous tickets are already serialized
		// by the width-1 lane.
		f.envMu.Lock()
		defer f.envMu.Unlock()
		f.Env.ResetRun()
		return f.client.W.Run(f.Image, cfg, clk)
	})
	return &Future{t: t}
}

// Wait blocks until the virtine completes and returns its result.
func (fu *Future) Wait() (int64, *wasp.Result, error) {
	if fu.err != nil {
		return 0, nil, fu.err
	}
	res, err := fu.t.Wait()
	if err != nil {
		return 0, nil, err
	}
	return vcc.UnmarshalRet(res.Ret), res, nil
}

// Ticket exposes the underlying scheduler ticket (queueing and service
// timing); nil if submission failed before dispatch.
func (fu *Future) Ticket() *sched.Ticket { return fu.t }

// GoAll launches one asynchronous invocation per argument tuple and
// waits for all of them, returning results in order. The first error
// wins, but all virtines run to completion (no cancellation — a virtine
// is destroyed with its VM, not interrupted).
func (f *Func) GoAll(argTuples ...[]int64) ([]int64, error) {
	futures := make([]*Future, len(argTuples))
	for i, args := range argTuples {
		futures[i] = f.Go(args...)
	}
	out := make([]int64, len(futures))
	var firstErr error
	for i, fu := range futures {
		v, _, err := fu.Wait()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		out[i] = v
	}
	return out, firstErr
}
