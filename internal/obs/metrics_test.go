package obs

import (
	"bytes"
	"sort"
	"sync"
	"testing"
)

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if r.Counter("reqs") != c || c.Value() != 5 {
		t.Fatalf("counter handle not stable or miscounted: %d", c.Value())
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	h := r.Histogram("lat")
	for _, v := range []uint64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1106 {
		t.Fatalf("histogram count/sum = %d/%d", h.Count(), h.Sum())
	}
	// p50 of {1,2,3,100,1000}: rank 3 lands in the 2-3 bucket → bound 3.
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("p50 bound = %d, want 3", got)
	}
	if got := h.Quantile(0.99); got != 1023 {
		t.Fatalf("p99 bound = %d, want 1023 (1000 is in the 512..1023 bucket)", got)
	}

	snap := r.Snapshot()
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name }) {
		t.Fatal("snapshot not sorted by name")
	}
	byName := map[string]float64{}
	for _, m := range snap {
		byName[m.Name] = m.Value
	}
	for name, want := range map[string]float64{
		"reqs": 5, "depth": 5, "lat_count": 5, "lat_sum": 1106, "lat_p50": 3, "lat_p99": 1023,
	} {
		if byName[name] != want {
			t.Errorf("%s = %g, want %g", name, byName[name], want)
		}
	}
}

func TestRegistryCollector(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(func(emit func(string, float64)) {
		emit("pulled_a", 1)
		emit("pulled_b", 2)
	})
	r.RegisterCollector(nil) // must be ignored
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "pulled_a 1\npulled_b 2\n" {
		t.Fatalf("WriteText = %q", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h").Observe(uint64(i))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 16*500 {
		t.Fatalf("counter = %d, want %d", got, 16*500)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}
