package obs

import (
	"encoding/json"
	"io"

	"repro/internal/cycles"
)

// Chrome trace_event export: the recorded rings rendered for
// chrome://tracing / Perfetto. The timeline is virtual time (cycles
// converted to microseconds at the model clock rate), so real-mode and
// deterministic virtual-mode traces read identically; host-time stamps,
// when present, ride along in each event's args. Lanes render as
// threads of one process — the control lane as "control", worker lane i
// as "worker i" — ticket service spans as complete ("X") events, and
// each ticket's journey from submission to its serving worker as a flow
// arrow bound to the span's start.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePid = 1

// laneTid maps a lane id to a Chrome thread id: control at 0, worker i
// at i+1, so the track order matches the fleet order.
func laneTid(lane int32) int { return int(lane) + 1 }

// WriteChromeTrace serializes the tracer's surviving events as Chrome
// trace JSON. The output is self-contained and deterministic given a
// deterministic event stream (map-typed args hold one key each or are
// marshalled by encoding/json's sorted-key rule).
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	if t == nil {
		return json.NewEncoder(w).Encode(&trace)
	}
	add := func(e chromeEvent) { trace.TraceEvents = append(trace.TraceEvents, e) }

	add(chromeEvent{Name: "process_name", Ph: "M", Pid: chromePid,
		Args: map[string]any{"name": "virtine-runtime"}})

	lanes := t.Events()
	for _, le := range lanes {
		name := "control"
		if le.Lane >= 0 {
			name = "worker " + itoa(le.Lane)
		}
		add(chromeEvent{Name: "thread_name", Ph: "M", Pid: chromePid,
			Tid: laneTid(int32(le.Lane)), Args: map[string]any{"name": name}})
	}

	us := cycles.Micros
	for _, le := range lanes {
		for _, e := range le.Events {
			name := t.NameOf(e.Name)
			if name == "" {
				name = e.Kind.String()
			}
			tid := laneTid(e.Lane)
			args := map[string]any{"kind": e.Kind.String(), "arg0": e.Arg0, "arg1": e.Arg1}
			if e.ID != 0 {
				args["id"] = e.ID
			}
			if e.Host != 0 {
				args["host_ns"] = e.Host
			}
			switch {
			case e.Kind == KindTicket:
				// Service span on the worker track, plus a flow arrow
				// from the submission (arrival time, control track) to
				// the span start — the ticket's life across the system.
				dur := us(e.VEnd - e.VStart)
				args["queue_us"] = us(e.VStart - e.Arg0)
				add(chromeEvent{Name: name, Cat: "ticket", Ph: "X",
					Ts: us(e.VStart), Dur: &dur, Pid: chromePid, Tid: tid, Args: args})
				if e.ID != 0 {
					add(chromeEvent{Name: name, Cat: "ticket", Ph: "s", ID: e.ID,
						Ts: us(e.Arg0), Pid: chromePid, Tid: laneTid(ControlLane)})
					add(chromeEvent{Name: name, Cat: "ticket", Ph: "f", BP: "e", ID: e.ID,
						Ts: us(e.VStart), Pid: chromePid, Tid: tid})
				}
			case e.Kind == KindFlip:
				// Args carry interned platform names: resolve them.
				args["from"] = t.NameOf(uint32(e.Arg0))
				args["to"] = t.NameOf(uint32(e.Arg1))
				delete(args, "arg0")
				delete(args, "arg1")
				add(chromeEvent{Name: name, Cat: e.Kind.String(), Ph: "i", S: "p",
					Ts: us(e.VStart), Pid: chromePid, Tid: tid, Args: args})
			case e.VEnd > e.VStart:
				dur := us(e.VEnd - e.VStart)
				add(chromeEvent{Name: name, Cat: e.Kind.String(), Ph: "X",
					Ts: us(e.VStart), Dur: &dur, Pid: chromePid, Tid: tid, Args: args})
			default:
				scope := "t"
				if e.Kind == KindAutoscale || e.Kind == KindEpoch {
					scope = "p" // fleet-wide events render process-wide
				}
				add(chromeEvent{Name: name, Cat: e.Kind.String(), Ph: "i", S: scope,
					Ts: us(e.VStart), Pid: chromePid, Tid: tid, Args: args})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&trace)
}

// itoa avoids strconv for the tiny lane labels (keeps the import set
// minimal); lanes are small non-negative ints.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
