package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetEnabled(true)
	tr.Span(0, KindTicket, "x", 1, 2, 3, 4, 5)
	tr.Instant(ControlLane, KindSubmit, "x", 1, 0, 0, 0)
	tr.Emit(0, Event{})
	if tr.Name("x") != 0 || tr.NameOf(0) != "" {
		t.Fatal("nil tracer interner not inert")
	}
	if tr.Events() != nil || tr.Marshal() != nil || tr.EventCount() != 0 {
		t.Fatal("nil tracer snapshot not empty")
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := NewTracer()
	tr.Span(0, KindTicket, "x", 1, 2, 3, 4, 5)
	if tr.EventCount() != 0 {
		t.Fatalf("disabled tracer recorded %d events", tr.EventCount())
	}
	tr.SetEnabled(true)
	tr.Span(0, KindTicket, "x", 1, 2, 3, 4, 5)
	tr.SetEnabled(false)
	tr.Span(0, KindTicket, "x", 6, 7, 8, 9, 10)
	if got := tr.EventCount(); got != 1 {
		t.Fatalf("EventCount = %d after enable/disable window, want 1", got)
	}
}

func TestRingWrapKeepsNewestOldestFirst(t *testing.T) {
	tr := NewTracer(RingSize(4), Deterministic(true))
	tr.SetEnabled(true)
	for i := uint64(1); i <= 10; i++ {
		tr.Instant(2, KindTicket, "t", i, i, 0, 0)
	}
	les := tr.Events()
	if len(les) != 4 { // lanes 0..3 exist (control + workers 0..2)
		t.Fatalf("lane count = %d, want 4", len(les))
	}
	le := les[3]
	if le.Lane != 2 {
		t.Fatalf("lane id = %d, want 2", le.Lane)
	}
	if le.Dropped != 6 || len(le.Events) != 4 {
		t.Fatalf("dropped=%d survivors=%d, want 6/4", le.Dropped, len(le.Events))
	}
	for i, e := range le.Events {
		if want := uint64(7 + i); e.VStart != want {
			t.Fatalf("event %d VStart = %d, want %d (oldest-first after wrap)", i, e.VStart, want)
		}
	}
	if tr.EventCount() != 10 {
		t.Fatalf("EventCount = %d, want 10", tr.EventCount())
	}
}

func TestInternerStableAndConcurrent(t *testing.T) {
	tr := NewTracer()
	a := tr.Name("alpha")
	b := tr.Name("beta")
	if a == b || tr.Name("alpha") != a || tr.NameOf(b) != "beta" {
		t.Fatal("interner ids unstable")
	}
	var wg sync.WaitGroup
	ids := make([]uint32, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = tr.Name("shared")
		}(g)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatal("concurrent interning returned distinct ids for one name")
		}
	}
}

func TestDeterministicSuppressesHostStamps(t *testing.T) {
	det := NewTracer(Deterministic(true))
	det.SetEnabled(true)
	det.Instant(0, KindShell, "s", 5, 0, 0, 0)
	if e := det.Events()[1].Events[0]; e.Host != 0 {
		t.Fatalf("deterministic tracer stamped host time %d", e.Host)
	}
	wall := NewTracer()
	wall.SetEnabled(true)
	wall.Instant(0, KindShell, "s", 5, 0, 0, 0)
	if e := wall.Events()[1].Events[0]; e.Host == 0 {
		t.Fatal("wall-clock tracer left host stamp zero")
	}
}

func TestMarshalExcludesHostAndResolvesNames(t *testing.T) {
	// Two tracers, identical virtual streams, only host stamping differs:
	// the canonical stream must match byte for byte.
	mk := func(opts ...TracerOption) *Tracer {
		tr := NewTracer(opts...)
		tr.SetEnabled(true)
		tr.Span(0, KindTicket, "fib", 100, 250, 1, 90, 2)
		tr.Instant(ControlLane, KindAutoscale, "fleet-resize", 300, 0, 4, 8)
		return tr
	}
	a, b := mk(Deterministic(true)), mk()
	if !bytes.Equal(a.Marshal(), b.Marshal()) {
		t.Fatalf("Marshal differs on host stamping alone:\n%s\nvs\n%s", a.Marshal(), b.Marshal())
	}
	out := string(a.Marshal())
	for _, want := range []string{"ticket fib v=100..250 id=1 a0=90 a1=2", "autoscale fleet-resize", "# lane -1", "# lane 0"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("Marshal output missing %q:\n%s", want, out)
		}
	}
}

func TestKindsCoverage(t *testing.T) {
	tr := NewTracer(Deterministic(true))
	tr.SetEnabled(true)
	tr.Instant(0, KindShell, "s", 1, 0, 0, 0)
	tr.Instant(0, KindTicket, "t", 2, 0, 0, 0)
	tr.Instant(ControlLane, KindAutoscale, "a", 3, 0, 0, 0)
	got := tr.Kinds()
	want := []Kind{KindTicket, KindShell, KindAutoscale}
	if len(got) != len(want) {
		t.Fatalf("Kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Kinds = %v, want %v (sorted by kind value)", got, want)
		}
	}
}

// TestRingStressConcurrentSnapshot is the satellite -race gate: 16
// goroutines hammer distinct and shared lanes (forcing wraps and lane
// growth) while snapshot readers, the interner, and the enable flag all
// churn concurrently.
func TestRingStressConcurrentSnapshot(t *testing.T) {
	tr := NewTracer(RingSize(64))
	tr.SetEnabled(true)
	const writers = 16
	const perWriter = 2000
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			name := fmt.Sprintf("w%d", g%5)
			for i := 0; i < perWriter; i++ {
				lane := g % 8
				if i%7 == 0 {
					lane = ControlLane // shared-lane contention
				}
				tr.Span(lane, KindTicket, name, uint64(i), uint64(i+1), uint64(g), 0, 0)
			}
		}(g)
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.Events()
			tr.Marshal()
			tr.Kinds()
			tr.Metrics.Snapshot()
			tr.SetEnabled(true)
		}
	}()
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	total := tr.EventCount()
	if want := uint64(writers * perWriter); total != want {
		t.Fatalf("EventCount = %d, want %d (no event may be lost, only ring-dropped)", total, want)
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	tr := NewTracer(Deterministic(true))
	tr.SetEnabled(true)
	// A ticket span with a flow arrow, a placement flip with interned
	// names, an autoscale instant, and a shell event.
	tr.Span(1, KindTicket, "api", 1000, 3000, 7, 500, 2)
	tr.Instant(ControlLane, KindFlip, "api",
		0, 0, uint64(tr.Name("kvm")), uint64(tr.Name("hyper-v")))
	tr.Instant(ControlLane, KindAutoscale, "fleet-resize", 4000, 0, 4, 8)
	tr.Instant(ControlLane, KindShell, "shell-pool", 900, 0, 65536, 0)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	var flipArgs map[string]any
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if ev["name"] == "api" && ph == "i" {
			flipArgs, _ = ev["args"].(map[string]any)
		}
	}
	if phases["X"] == 0 || phases["s"] == 0 || phases["f"] == 0 || phases["M"] == 0 || phases["i"] == 0 {
		t.Fatalf("exporter phase coverage incomplete: %v", phases)
	}
	if flipArgs == nil || flipArgs["from"] != "kvm" || flipArgs["to"] != "hyper-v" {
		t.Fatalf("flip args not resolved from interner: %v", flipArgs)
	}
}

func TestChromeTraceNilTracer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatalf("WriteChromeTrace(nil): %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer export invalid JSON: %v", err)
	}
}
