package obs

import "testing"

func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(Deterministic(true))
	tr.SetEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(3, KindTicket, "api", uint64(i), uint64(i+100), uint64(i), 5, 2)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	tr := NewTracer(Deterministic(true))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(3, KindTicket, "api", uint64(i), uint64(i+100), uint64(i), 5, 2)
	}
}
