package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// The metrics registry unifies the runtime's scattered stats structs
// (wasp.CodeStats, wasp.ForestStats, pool and cleaner counters, the
// scheduler's admission and backend telemetry) behind one Snapshot.
// Two ingestion models coexist:
//
//   - push: Counter/Gauge/Histogram handles are atomic and safe on hot
//     paths; and
//   - pull: RegisterCollector attaches a closure sampled at Snapshot
//     time, so existing accessors (CodeCacheStats, ForestStats, ...)
//     join the registry without changing their APIs or paying any
//     per-operation cost.

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic value.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is one bucket per power of two: bucket i counts samples v
// with bits.Len64(v) == i, i.e. 0, 1, 2-3, 4-7, ... — the same log2
// scheme the pool-sizing EWMAs quantize on.
const histBuckets = 65

// Histogram is a lock-free log2-bucket histogram of uint64 samples.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports total samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Quantile reports an upper bound for the qth quantile (0 < q <= 1):
// the top of the log2 bucket the quantile falls in. 0 for an empty
// histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return math.MaxUint64
}

// Metric is one named sample of a Snapshot.
type Metric struct {
	Name  string
	Value float64
}

// Registry holds the named instruments and collectors.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func(emit func(name string, v float64))
}

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. The
// returned handle is the hot-path interface; the lookup is not.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterCollector attaches a pull-model source: fn is invoked at
// every Snapshot with an emit callback and may emit any number of
// metrics. Collectors let existing stats accessors join the registry
// without changing shape — register a closure over the owning object.
// fn must be safe to call concurrently with the owner's operation.
func (r *Registry) RegisterCollector(fn func(emit func(name string, v float64))) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Snapshot samples every instrument and collector, returning metrics
// sorted by name — one deterministic, alphabetized view of the whole
// runtime. Histograms expand to _count, _sum, _p50 and _p99 series.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	collectors := make([]func(func(string, float64)), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	var out []Metric
	for name, c := range counters {
		out = append(out, Metric{name, float64(c.Value())})
	}
	for name, g := range gauges {
		out = append(out, Metric{name, float64(g.Value())})
	}
	for name, h := range hists {
		out = append(out,
			Metric{name + "_count", float64(h.Count())},
			Metric{name + "_sum", float64(h.Sum())},
			Metric{name + "_p50", float64(h.Quantile(0.50))},
			Metric{name + "_p99", float64(h.Quantile(0.99))},
		)
	}
	for _, fn := range collectors {
		fn(func(name string, v float64) {
			out = append(out, Metric{name, v})
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText dumps the snapshot as plain "name value" lines, one metric
// per line, sorted by name — the scrape format.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s %g\n", m.Name, m.Value); err != nil {
			return err
		}
	}
	return nil
}

// Default is the process-wide registry components register into when no
// explicit registry is wired.
var Default = NewRegistry()

// Snapshot samples the Default registry.
func Snapshot() []Metric { return Default.Snapshot() }

// WriteText dumps the Default registry as plain text.
func WriteText(w io.Writer) error { return Default.WriteText(w) }
