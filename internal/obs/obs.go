// Package obs is the runtime's flight recorder: a low-overhead tracing
// and metrics layer shared by the scheduler, the Wasp runtime, the
// placement engine, and the cluster simulator.
//
// The tracer records fixed-size events into per-lane ring buffers —
// one lane per scheduler worker plus a control lane — stamped with both
// virtual cycles and host time. Virtual-cycle stamps make the same
// spans meaningful in real mode and bit-identical in deterministic
// virtual mode: a tracer built with Deterministic(true) suppresses the
// host stamp, and the canonical Marshal stream never includes it, so
// two runs of the same seeded virtual workload serialize to identical
// bytes (the determinism suite enforces this).
//
// The disabled path is the contract that lets instrumentation live on
// hot paths permanently: every emit is guarded by one nil check plus
// one atomic load, and a nil *Tracer is a valid, always-disabled
// tracer, so call sites never need their own guards. The overhead
// benchmarks (BenchmarkTracerOverhead, BENCH_obs.json) hold the
// disabled tax under 2% on the batch-submission hot path.
//
// On top of the rings sit a counters/gauges/histograms metrics registry
// (metrics.go) unifying the runtime's scattered stats structs behind
// one Snapshot, and a Chrome trace_event exporter (chrome.go) rendering
// workers as tracks and tickets as flows.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one trace event. The set covers the full ticket
// lifecycle (submit → place/steer → dispatch/service → shell acquire →
// guest run → release → async clean) plus snapshot, migration,
// autoscaling, and cluster-epoch control events.
type Kind uint8

const (
	KindNone      Kind = iota
	KindSubmit         // a submission burst entered the scheduler (arg0 = tickets)
	KindTicket         // one ticket's service span on a worker lane
	KindPlace          // a placement/steering decision (arg0 = backend index)
	KindShell          // shell provisioning (pool hit, reclaim, cold create, COW take, prewarm)
	KindRelease        // a context returned to the pool layer
	KindClean          // async-cleaner activity (enqueue, scrub)
	KindSnapshot       // snapshot capture / restore / COW reset
	KindMigrate        // a warm snapshot shipped between backends
	KindFlip           // a Migrating placer committed a new home (args = interned from/to)
	KindGuest          // one guest run's summary (arg0 = blocks compiled, arg1 = deopts)
	KindTier           // a JIT tier transition inside a run (compile or deopt)
	KindAutoscale      // fleet width or prewarm target changed (arg0 = from, arg1 = to)
	KindEpoch          // one cluster control epoch closed (arg0 = arrivals, arg1 = width)
)

var kindNames = [...]string{
	"none", "submit", "ticket", "place", "shell", "release", "clean",
	"snapshot", "migrate", "flip", "guest", "tier", "autoscale", "epoch",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ControlLane is the lane id for events not tied to one worker:
// submissions, autoscaling, cluster epochs, and runtime-internal
// activity (pools, cleaners, snapshots).
const ControlLane = -1

// Event is one fixed-size trace record. No pointers, no variable-size
// payloads: strings are interned once per distinct value (Tracer.Name)
// and referenced by id, so the ring buffers never hold the garbage
// collector's attention and an emit never allocates.
type Event struct {
	VStart uint64 // virtual cycles at the event (span start for spans)
	VEnd   uint64 // span end; == VStart for instants
	Host   int64  // host ns at emit; 0 under Deterministic
	ID     uint64 // correlation id (ticket sequence number, epoch index)
	Arg0   uint64 // kind-specific
	Arg1   uint64 // kind-specific
	Name   uint32 // interned name id (Tracer.NameOf resolves it)
	Lane   int32  // emitting lane (ControlLane or a worker id)
	Kind   Kind
}

// DefaultRingSize is the per-lane ring capacity in events (64 KiB per
// lane at 64 B/event). Each lane keeps its newest DefaultRingSize
// events; older ones are dropped oldest-first and counted. The default
// deliberately keeps a 16-worker fleet's rings (~1 MiB) inside L2-ish
// footprint: recording shares the cache with the traced workload, and a
// larger ring buys history at a measured throughput cost (RingSize
// raises it when post-mortem depth matters more than overhead).
const DefaultRingSize = 1024

// lane is one sharded ring buffer. Its mutex is uncontended in virtual
// mode (dispatch is synchronous) and per-worker in real mode, so emits
// never serialize the fleet on one lock.
type lane struct {
	mu  sync.Mutex
	buf []Event
	n   uint64 // lifetime writes; buf[(n-1) % cap] is the newest event
}

func (l *lane) emit(e Event) {
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.n%uint64(cap(l.buf))] = e
	}
	l.n++
	l.mu.Unlock()
}

// snapshot copies the lane's events oldest-first and reports lifetime
// writes (dropped = written - len(events)).
func (l *lane) snapshot() ([]Event, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.buf))
	if len(l.buf) < cap(l.buf) || l.n == uint64(len(l.buf)) {
		copy(out, l.buf)
	} else {
		head := int(l.n % uint64(cap(l.buf))) // oldest surviving event
		copy(out, l.buf[head:])
		copy(out[len(l.buf)-head:], l.buf[:head])
	}
	return out, l.n
}

// TracerOption configures a Tracer at construction.
type TracerOption func(*Tracer)

// Deterministic makes the tracer suppress host-time stamps so virtual-
// mode event streams are bit-identical across runs. Virtual-cycle
// stamps are unaffected.
func Deterministic(on bool) TracerOption {
	return func(t *Tracer) { t.det = on }
}

// RingSize overrides the per-lane ring capacity (events).
func RingSize(n int) TracerOption {
	return func(t *Tracer) {
		if n > 0 {
			t.ringSize = n
		}
	}
}

// Tracer is the flight recorder handle instrumented components hold.
// A nil *Tracer is valid and permanently disabled; every method is
// nil-safe. Tracers start disabled — attach first, SetEnabled(true)
// when recording should begin.
type Tracer struct {
	enabled  atomic.Bool
	det      bool
	ringSize int

	// lanes is an immutable slice republished on growth (index = lane
	// id + 1, ControlLane at 0); emitters read it with one atomic load.
	lmu   sync.Mutex // guards growth
	lanes atomic.Pointer[[]*lane]

	// The interner mirrors that shape: nameIDs is a concurrent read-
	// mostly map (one atomic load per hit on the emit path), names an
	// immutable id→string slice republished under nmu on each insert.
	nmu     sync.Mutex
	nameIDs sync.Map // string → uint32
	names   atomic.Pointer[[]string]

	// Metrics is the tracer's companion registry. Emits never touch it
	// (the hot path is rings only); components register pull-model
	// collectors into it so one Snapshot covers the whole runtime.
	Metrics *Registry
}

// NewTracer builds a flight recorder with all lanes empty.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{ringSize: DefaultRingSize, Metrics: NewRegistry()}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Enabled reports whether emits currently record. This is the hot-path
// guard: one nil check and one atomic load.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled flips recording on or off. Events emitted while disabled
// are dropped before touching any lane. No-op on a nil tracer.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Deterministic reports whether host-time stamps are suppressed.
func (t *Tracer) Deterministic() bool { return t != nil && t.det }

// Name interns s and returns its id, stable for the tracer's lifetime.
// Hot call sites should resolve names they emit repeatedly once and
// cache the id; interning an already-known name is one shared-lock map
// read. Returns 0 on a nil tracer.
func (t *Tracer) Name(s string) uint32 {
	if t == nil {
		return 0
	}
	if id, ok := t.nameIDs.Load(s); ok {
		return id.(uint32)
	}
	t.nmu.Lock()
	defer t.nmu.Unlock()
	if id, ok := t.nameIDs.Load(s); ok {
		return id.(uint32)
	}
	var old []string
	if p := t.names.Load(); p != nil {
		old = *p
	}
	id := uint32(len(old))
	grown := make([]string, len(old)+1)
	copy(grown, old)
	grown[id] = s
	t.names.Store(&grown)
	t.nameIDs.Store(s, id)
	return id
}

// NameOf resolves an interned id back to its string ("" if unknown).
func (t *Tracer) NameOf(id uint32) string {
	if t == nil {
		return ""
	}
	if p := t.names.Load(); p != nil && int(id) < len(*p) {
		return (*p)[id]
	}
	return ""
}

func (t *Tracer) laneFor(id int) *lane {
	idx := id + 1
	if p := t.lanes.Load(); p != nil && idx < len(*p) {
		return (*p)[idx]
	}
	t.lmu.Lock()
	defer t.lmu.Unlock()
	var old []*lane
	if p := t.lanes.Load(); p != nil {
		old = *p
	}
	if idx < len(old) {
		return old[idx]
	}
	grown := make([]*lane, idx+1)
	copy(grown, old)
	for i := len(old); i <= idx; i++ {
		grown[i] = &lane{buf: make([]Event, 0, t.ringSize)}
	}
	t.lanes.Store(&grown)
	return grown[idx]
}

// Emit records a fully-formed event on a lane. Callers must guard with
// Enabled(); Emit itself re-checks so a lost race with SetEnabled only
// costs one extra event, never a crash.
func (t *Tracer) Emit(laneID int, e Event) {
	if !t.Enabled() {
		return
	}
	if !t.det {
		e.Host = time.Now().UnixNano()
	}
	e.Lane = int32(laneID)
	t.laneFor(laneID).emit(e)
}

// Span records a [vstart, vend] interval on a lane — a ticket's service
// window, a guest run. name is interned per call; hot sites with a
// fixed name should pre-intern and use Emit.
func (t *Tracer) Span(laneID int, kind Kind, name string, vstart, vend, id, arg0, arg1 uint64) {
	if !t.Enabled() {
		return
	}
	e := Event{
		Kind: kind, Name: t.Name(name), Lane: int32(laneID),
		VStart: vstart, VEnd: vend, ID: id, Arg0: arg0, Arg1: arg1,
	}
	if !t.det {
		e.Host = time.Now().UnixNano()
	}
	t.laneFor(laneID).emit(e)
}

// Instant records a point event at virtual time v on a lane.
func (t *Tracer) Instant(laneID int, kind Kind, name string, v, id, arg0, arg1 uint64) {
	t.Span(laneID, kind, name, v, v, id, arg0, arg1)
}

// LaneEvents is one lane's snapshot: its surviving events oldest-first
// and how many were dropped to the ring bound before them.
type LaneEvents struct {
	Lane    int
	Dropped uint64
	Events  []Event
}

// Events snapshots every lane in lane order. Safe under concurrent
// emits (each lane is copied under its own lock); the snapshot is a
// consistent prefix+suffix per lane, not a cross-lane barrier.
func (t *Tracer) Events() []LaneEvents {
	if t == nil {
		return nil
	}
	var lanes []*lane
	if p := t.lanes.Load(); p != nil {
		lanes = *p // immutable once published
	}
	out := make([]LaneEvents, 0, len(lanes))
	for i, l := range lanes {
		evs, n := l.snapshot()
		out = append(out, LaneEvents{
			Lane:    i - 1,
			Dropped: n - uint64(len(evs)),
			Events:  evs,
		})
	}
	return out
}

// Marshal serializes the recorded events as the canonical text stream:
// one header line per lane, one line per event, names resolved, host
// stamps excluded. Two deterministic virtual-mode runs of the same
// workload produce byte-identical Marshal output — the property the
// determinism suite asserts.
func (t *Tracer) Marshal() []byte {
	if t == nil {
		return nil
	}
	var b strings.Builder
	for _, le := range t.Events() {
		fmt.Fprintf(&b, "# lane %d events %d dropped %d\n", le.Lane, len(le.Events), le.Dropped)
		for _, e := range le.Events {
			fmt.Fprintf(&b, "%s %s v=%d..%d id=%d a0=%d a1=%d\n",
				e.Kind, t.NameOf(e.Name), e.VStart, e.VEnd, e.ID, e.Arg0, e.Arg1)
		}
	}
	return []byte(b.String())
}

// EventCount reports the lifetime event total across lanes (including
// events since dropped to the ring bound).
func (t *Tracer) EventCount() uint64 {
	var n uint64
	for _, le := range t.Events() {
		n += le.Dropped + uint64(len(le.Events))
	}
	return n
}

// Kinds reports which event kinds the tracer has recorded (surviving
// events only), sorted by kind value — the trace-coverage check the
// smoke tests assert.
func (t *Tracer) Kinds() []Kind {
	seen := map[Kind]bool{}
	for _, le := range t.Events() {
		for _, e := range le.Events {
			seen[e.Kind] = true
		}
	}
	out := make([]Kind, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
