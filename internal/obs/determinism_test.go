package obs_test

// Virtual-mode trace determinism: the flight recorder's contract is
// that two runs of the same seeded virtual workload record not just the
// same report but the same event stream, byte for byte. This is the
// property that makes a trace from a failed sweep replayable evidence
// rather than an approximation. The test lives in an external package
// because it drives the full stack (cluster simulator → scheduler →
// Wasp), which imports obs.

import (
	"bytes"
	"testing"

	"repro/internal/cycles"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/serverless"
	"repro/internal/wasp"
)

// runClusterTraced drives the standard seeded mix through a fresh fleet
// with a fresh deterministic tracer and returns the canonical stream.
func runClusterTraced(t *testing.T) ([]byte, *obs.Tracer) {
	t.Helper()
	const F = uint64(cycles.Frequency)
	tr := obs.NewTracer(obs.Deterministic(true))
	tr.SetEnabled(true)
	mix := serverless.ClusterMix(1, 0.5, F/2)
	pol := sched.QueueScale{TargetP99: F / 20, Min: 2, Max: 64}
	if _, err := serverless.RunCluster(wasp.New(), pol, serverless.ClusterConfig{
		Seed: 1, InitialWorkers: 4, Trace: mix, Tracer: tr,
	}); err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	return tr.Marshal(), tr
}

func TestVirtualTraceDeterminism(t *testing.T) {
	a, _ := runClusterTraced(t)
	b, _ := runClusterTraced(t)
	if len(a) == 0 {
		t.Fatal("traced cluster run recorded nothing")
	}
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo, hi := i-80, i+80
		if lo < 0 {
			lo = 0
		}
		clip := func(s []byte) []byte {
			if hi > len(s) {
				return s[lo:]
			}
			return s[lo:hi]
		}
		t.Fatalf("virtual trace streams diverge at byte %d:\n...%s...\nvs\n...%s...",
			i, clip(a), clip(b))
	}
}

// TestClusterTraceCoverage asserts the recorded flight spans the
// lifecycle layers the exporter smoke depends on: ticket service spans,
// shell provisioning underneath, and the autoscaler's decisions.
func TestClusterTraceCoverage(t *testing.T) {
	_, tr := runClusterTraced(t)
	got := map[obs.Kind]bool{}
	for _, k := range tr.Kinds() {
		got[k] = true
	}
	for _, want := range []obs.Kind{
		obs.KindSubmit, obs.KindTicket, obs.KindShell,
		obs.KindAutoscale, obs.KindEpoch,
	} {
		if !got[want] {
			t.Errorf("cluster trace missing %v events (have %v)", want, tr.Kinds())
		}
	}
	// Ticket spans carry correlation ids and land on worker lanes.
	var onWorker bool
	for _, le := range tr.Events() {
		if le.Lane < 0 {
			continue
		}
		for _, e := range le.Events {
			if e.Kind == obs.KindTicket && e.ID != 0 && e.VEnd >= e.VStart {
				onWorker = true
			}
		}
	}
	if !onWorker {
		t.Error("no ticket span with a correlation id recorded on any worker lane")
	}
}
